module kbtable

go 1.22
