package kbtable

import (
	"context"
	"fmt"
	"strings"

	"kbtable/internal/search"
	"kbtable/internal/shard"
	"kbtable/internal/text"
)

// This file is the facade's planner-loop surface: the plan cache (repeat
// query shapes skip the planner probe), prepared queries (repeat
// executions skip the whole prepare stage), and the adaptive-bias
// accumulator (observed stage timings feed the PE/LE crossover).

// NormalizeQuery canonicalizes a query string exactly as the engine's
// tokenizer will: lowercased maximal letter/digit runs joined by single
// spaces, with punctuation dropped. Two queries with equal normal forms
// produce byte-identical answers (token order is preserved — column
// order follows it), so result caches and request coalescers should key
// on this form; anything finer fragments the cache on punctuation the
// engine never sees.
func NormalizeQuery(q string) string {
	return strings.Join(text.Tokenize(q), " ")
}

// PlanCacheStats snapshots the engine chain's plan-cache effectiveness.
type PlanCacheStats = search.PlanCacheStats

// PlanCacheStats reports the plan cache shared along this engine's
// update chain (zeros when the engine predates the cache, e.g. a
// zero-value Engine).
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.plans == nil {
		return PlanCacheStats{}
	}
	return e.plans.Stats()
}

// carryPlanCache hands the predecessor's plan cache to a successor
// snapshot, invalidating word-precisely: entries depending on a touched
// word are evicted, a structural PageRank refresh flushes everything,
// and the epoch bump fences the predecessor out of the cache entirely.
func (ne *Engine) carryPlanCache(e *Engine, touched []string, flush bool) {
	if e.plans == nil {
		return
	}
	ne.plans = e.plans
	ne.planEpoch = ne.plans.Invalidate(touched, flush)
}

// planStats returns the merged prepare-stage statistics for query,
// consulting the plan cache. The cache key is the resolved canonical
// word set alone: PlanStats depend only on those words and the index
// contents — never on Options — and the plan itself is re-derived per
// request by ChoosePlan, so bias changes (including the adaptive learned
// bias) need no invalidation.
func (e *Engine) planStats(ctx context.Context, query string, so search.Options) (search.PlanStats, error) {
	words := e.QueryWords(query)
	key := search.PlanCacheKey(words)
	if e.plans != nil {
		if st, ok := e.plans.Get(key, e.planEpoch); ok {
			return st, nil
		}
	}
	var st search.PlanStats
	var err error
	if e.sh != nil {
		st, err = e.sh.PlanStats(ctx, query, so)
	} else {
		st, err = search.PlanProbe(ctx, e.ix, query, so)
	}
	if err != nil {
		return search.PlanStats{}, err
	}
	if e.plans != nil {
		e.plans.Put(key, e.planEpoch, st, words)
	}
	return st, nil
}

// cachedAutoPlan resolves an Auto query's plan from cached statistics
// without probing. auto gates it (explicit algorithms have nothing to
// resolve); a cache miss returns hit=false and the caller probes.
func (e *Engine) cachedAutoPlan(query string, so search.Options, auto bool) (search.Plan, bool) {
	if !auto || e.plans == nil {
		return search.Plan{}, false
	}
	words := e.QueryWords(query)
	st, ok := e.plans.Get(search.PlanCacheKey(words), e.planEpoch)
	if !ok {
		return search.Plan{}, false
	}
	return search.ChoosePlan(search.AlgoAuto, st, so), true
}

// rememberPlanStats caches an executed Auto query's probe statistics for
// the next request of the same shape.
func (e *Engine) rememberPlanStats(query string, st search.PlanStats) {
	if e.plans == nil {
		return
	}
	words := e.QueryWords(query)
	e.plans.Put(search.PlanCacheKey(words), e.planEpoch, st, words)
}

// --- Prepared queries -------------------------------------------------

// PreparedQuery retains one query's prepare-stage output — resolved
// words, posting handles, planner statistics — bound to the engine
// snapshot that prepared it. Executions run only enumerate → aggregate →
// rank, skipping keyword resolution and every posting lookup, and return
// answers byte-identical to a fresh search on the same snapshot.
//
// Engines are immutable, so the handle stays consistent forever; after
// an ApplyUpdate the handle still answers from the pre-update snapshot,
// exactly like an in-flight search. Callers serving live traffic should
// re-prepare on the new engine (kbserve invalidates prepared handles on
// every epoch swap). A PreparedQuery is safe for concurrent Search
// calls.
type PreparedQuery struct {
	eng   *Engine
	query string
	opts  SearchOptions
	so    search.Options
	sp    *search.Prepared
	shp   *shard.Prepared
}

// Prepare runs the prepare stage for query and retains its output for
// repeated execution. Algorithm may be Auto — the plan is then
// re-resolved per execution from the retained statistics (so a changed
// adaptive bias takes effect without re-preparing). Baseline has no
// prepare stage and is rejected.
func (e *Engine) Prepare(query string, opts SearchOptions) (*PreparedQuery, error) {
	return e.PrepareContext(context.Background(), query, opts)
}

// PrepareContext is Prepare with cancellation.
func (e *Engine) PrepareContext(ctx context.Context, query string, opts SearchOptions) (*PreparedQuery, error) {
	p := &PreparedQuery{eng: e, query: query, opts: opts, so: e.searchOptions(opts)}
	if e.sh != nil {
		algo, err := shardAlgo(opts.Algorithm)
		if err != nil {
			return nil, err
		}
		if p.shp, err = e.sh.Prepare(ctx, algo, query, p.so); err != nil {
			return nil, fmt.Errorf("kbtable: %w", err)
		}
		return p, nil
	}
	algo, err := searchAlgo(opts.Algorithm)
	if err != nil {
		return nil, err
	}
	if p.sp, err = search.PrepareQuery(ctx, e.ix, query, algo, p.so); err != nil {
		return nil, fmt.Errorf("kbtable: %w", err)
	}
	return p, nil
}

// Query returns the prepared query text.
func (p *PreparedQuery) Query() string { return p.query }

// Engine returns the snapshot the handle is bound to.
func (p *PreparedQuery) Engine() *Engine { return p.eng }

// Plan resolves the plan the prepared query would execute right now,
// without executing (stage timings are zero).
func (p *PreparedQuery) Plan() PlanInfo {
	if p.shp != nil {
		return planInfo(p.shp.Plan(p.so), search.QueryStats{})
	}
	return planInfo(p.sp.Plan(p.so), search.QueryStats{})
}

// Search executes the prepared query with the options captured at
// prepare time.
func (p *PreparedQuery) Search(ctx context.Context) ([]Answer, PlanInfo, error) {
	return p.SearchBias(ctx, p.opts.AutoBias)
}

// SearchBias is Search with an overriding AutoBias for this execution —
// the serve layer's adaptive bias drifts between executions of one
// handle. The bias steers only an Auto plan's PE/LE choice; answers are
// bit-identical under either algorithm.
func (p *PreparedQuery) SearchBias(ctx context.Context, autoBias float64) ([]Answer, PlanInfo, error) {
	so := p.so
	so.AutoBias = autoBias
	if p.shp != nil {
		res, err := p.eng.sh.SearchPrepared(ctx, p.shp, so)
		if err != nil {
			return nil, PlanInfo{}, fmt.Errorf("kbtable: %w", err)
		}
		return p.eng.shardAnswers(res), planInfo(res.Plan, res.Stats), nil
	}
	res, err := search.ExecutePrepared(ctx, p.eng.ix, p.sp, p.sp.Algo(), so)
	if err != nil {
		return nil, PlanInfo{}, fmt.Errorf("kbtable: %w", err)
	}
	return p.eng.toAnswers(res), planInfo(res.Plan, res.Stats), nil
}

// --- Adaptive planner feedback ----------------------------------------

// AdaptiveBiasStats snapshots an AdaptiveBias accumulator.
type AdaptiveBiasStats = search.AdaptiveBiasStats

// AdaptiveBias folds observed Enumerate-stage timings per resolved
// algorithm back into the Auto planner's effective bias: the cost model
// compares PatternEnum's pattern space against LinearEnum's root +
// frontier cost in abstract units, and the accumulator learns the
// nanoseconds-per-unit exchange rate from executed queries (bounded
// EWMA; see search.AdaptiveBias). Feed Effective() into
// SearchOptions.AutoBias. Answers are bit-identical at any bias — it
// steers only the PE/LE choice.
type AdaptiveBias struct {
	a *search.AdaptiveBias
}

// NewAdaptiveBias returns an accumulator around base (non-positive means
// the planner default).
func NewAdaptiveBias(base float64) *AdaptiveBias {
	return &AdaptiveBias{a: search.NewAdaptiveBias(base)}
}

// Observe folds one executed query's PlanInfo in. Only PatternEnum and
// LinearEnum executions inform the PE/LE crossover; anything else is
// ignored.
func (b *AdaptiveBias) Observe(pi PlanInfo) {
	var algo search.Algo
	switch pi.Algorithm {
	case PatternEnum:
		algo = search.AlgoPE
	case LinearEnum:
		algo = search.AlgoLE
	default:
		return
	}
	b.a.Observe(algo, search.PlanStats{
		CandidateRoots: pi.CandidateRoots,
		RootTypes:      pi.RootTypes,
		PatternSpace:   pi.PatternSpace,
		Frontier:       pi.Frontier,
	}, pi.Enumerate)
}

// Effective returns the current learned bias (the base until both
// algorithms have been observed).
func (b *AdaptiveBias) Effective() float64 { return b.a.Effective() }

// Stats snapshots the accumulator for observability surfaces.
func (b *AdaptiveBias) Stats() AdaptiveBiasStats { return b.a.Stats() }
