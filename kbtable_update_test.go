package kbtable

import (
	"reflect"
	"testing"
)

// fig1EngineForUpdate builds the Figure 1 KB and an engine over it.
func fig1EngineForUpdate(t *testing.T) (*Engine, map[string]EntityID) {
	t.Helper()
	b := NewBuilder()
	ids := map[string]EntityID{}
	ids["sql"] = b.Entity("Software", "SQL Server")
	ids["rel"] = b.Entity("Model", "Relational database")
	ids["ms"] = b.Entity("Company", "Microsoft")
	b.Attr(ids["sql"], "Genre", ids["rel"])
	b.Attr(ids["sql"], "Developer", ids["ms"])
	ids["rev"] = b.TextAttr(ids["ms"], "Revenue", "US$ 77 billion")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng, ids
}

func TestApplyUpdateEndToEnd(t *testing.T) {
	eng, ids := fig1EngineForUpdate(t)

	// Before: "oracle" is unknown.
	if ans, err := eng.Search("oracle database", 5); err != nil || len(ans) != 0 {
		t.Fatalf("pre-update search: %v answers, err=%v", ans, err)
	}

	var u Update
	oracle := u.AddEntity("Company", "Oracle Corp")
	odb := u.AddEntity("Software", "Oracle DB")
	u.AddAttr(odb, "Developer", oracle)
	u.AddAttr(odb, "Genre", int64(ids["rel"]))
	u.AddTextAttr(oracle, "Revenue", "US$ 37 billion")

	ne, res, err := eng.ApplyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NewEntities) != 2 {
		t.Fatalf("NewEntities = %v", res.NewEntities)
	}
	if res.Entities != eng.Graph().NumEntities()+3 { // oracle, odb, revenue literal
		t.Fatalf("entities = %d", res.Entities)
	}
	if res.DirtyRoots == 0 || res.EntriesAdded == 0 {
		t.Fatalf("suspicious maintenance stats: %+v", res)
	}

	// The new snapshot answers queries involving the new entities; the old
	// engine still answers from its epoch.
	ans, err := ne.Search("oracle database", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 {
		t.Fatal("updated engine has no answers for the new entity")
	}
	if old, _ := eng.Search("oracle database", 5); len(old) != 0 {
		t.Fatal("old engine sees the update")
	}

	// All three algorithms agree on the updated snapshot.
	for _, algo := range []Algorithm{PatternEnum, LinearEnum, Baseline} {
		got, err := ne.SearchOpts("software company revenue", SearchOptions{K: 10, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		// SQL Server and Oracle DB share the Software–Developer–Company–
		// Revenue pattern, so the top answer's table now has both rows.
		if len(got) == 0 || got[0].NumRows < 2 {
			t.Fatalf("%v: answers %d, top rows %v", algo, len(got), got)
		}
	}

	// Chained update: remove what we added.
	var u2 Update
	u2.RemoveEntity(int64(res.NewEntities[1])) // Oracle DB
	ne2, res2, err := ne.ApplyUpdate(u2)
	if err != nil {
		t.Fatal(err)
	}
	if ne2.Graph().NumRemoved() != 1 {
		t.Fatalf("NumRemoved = %d", ne2.Graph().NumRemoved())
	}
	if ans, _ := ne2.Search("oracle database", 5); len(ans) != 0 {
		t.Fatalf("removed entity still answers: %v", ans)
	}
	if len(res2.TouchedWords) == 0 {
		t.Fatal("removal touched no words")
	}
}

func TestApplyUpdateValidation(t *testing.T) {
	eng, ids := fig1EngineForUpdate(t)
	cases := []Update{
		{},                                    // empty
		{Ops: []UpdateOp{{Op: "frobnicate"}}}, // unknown op
		{Ops: []UpdateOp{{Op: "add_entity"}}}, // empty type
		{Ops: []UpdateOp{{Op: "set_text", Node: Ref(9999), Text: "x"}}},                          // dangling
		{Ops: []UpdateOp{{Op: "add_attr", Src: Ref(-5), Attr: "X", Dst: Ref(0)}}},                // bad backref
		{Ops: []UpdateOp{{Op: "add_attr", Src: Ref(int64(ids["rev"])), Attr: "X", Dst: Ref(0)}}}, // literal src
		{Ops: []UpdateOp{{Op: "remove_edge", Src: Ref(int64(ids["sql"])), Attr: "Publisher", Dst: Ref(int64(ids["ms"]))}}},
		{Ops: []UpdateOp{{Op: "remove_entity"}}},                    // missing node ref
		{Ops: []UpdateOp{{Op: "add_attr", Src: Ref(0), Attr: "X"}}}, // missing dst ref
	}
	for i, u := range cases {
		if _, _, err := eng.ApplyUpdate(u); err == nil {
			t.Errorf("case %d: invalid update accepted", i)
		}
	}
	// Failed updates must leave the engine usable.
	if _, err := eng.Search("database software", 5); err != nil {
		t.Fatal(err)
	}
}

func TestQueryWords(t *testing.T) {
	eng, _ := fig1EngineForUpdate(t)
	got := eng.QueryWords("Databases  SOFTWARE nonesuchword")
	// "databases" stems to the same canonical word as "database";
	// "nonesuchword" is unknown and appears as its stem.
	want := map[string]bool{}
	for _, w := range got {
		want[w] = true
	}
	if len(got) != 3 {
		t.Fatalf("QueryWords = %v", got)
	}
	if !reflect.DeepEqual(got, append([]string(nil), got...)) || !sortedStrings(got) {
		t.Fatalf("QueryWords not sorted: %v", got)
	}

	// The canonical forms line up with TouchedWords: updating an entity
	// text containing "software" must touch a word QueryWords reports.
	var u Update
	u.AddEntity("Software", "Visual FoxPro")
	_, res, err := eng.ApplyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	qw := eng.QueryWords("software visual")
	touched := map[string]bool{}
	for _, w := range res.TouchedWords {
		touched[w] = true
	}
	hit := false
	for _, w := range qw {
		if touched[w] {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no overlap between query words %v and touched words %v", qw, res.TouchedWords)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestAddEntityBackrefs: back-references stay correct when helper calls
// are interleaved with manual Ops appends, and after truncation.
func TestAddEntityBackrefs(t *testing.T) {
	var u Update
	r1 := u.AddEntity("A", "one")
	u.Ops = append(u.Ops, UpdateOp{Op: "add_entity", Type: "A", Text: "manual"})
	r3 := u.AddEntity("A", "three")
	if r1 != -1 || r3 != -3 {
		t.Fatalf("refs %d, %d; want -1, -3", r1, r3)
	}
	u.Ops = u.Ops[:0] // truncate: bookkeeping must self-heal
	if r := u.AddEntity("A", "fresh"); r != -1 {
		t.Fatalf("ref after truncation = %d, want -1", r)
	}
}
