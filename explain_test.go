package kbtable

import "testing"

func TestExplain(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := eng.Explain("database software company revenue")
	if len(ex.Keywords) != 4 || len(ex.Unknown) != 0 {
		t.Errorf("keywords wrong: %+v", ex)
	}
	if ex.CandidateRoots == 0 {
		t.Errorf("want candidate roots > 0")
	}
	if ex.Patterns < 2 {
		t.Errorf("want at least P1 and P2, got %d", ex.Patterns)
	}
	if ex.Subtrees < int64(ex.Patterns) {
		t.Errorf("subtrees (%d) must be >= patterns (%d)", ex.Subtrees, ex.Patterns)
	}
	if ex.Capped {
		t.Errorf("tiny graph must not hit the budget")
	}

	// Answer counts agree with an exhaustive search.
	answers, err := eng.SearchOpts("database software company revenue", SearchOptions{K: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != ex.Patterns {
		t.Errorf("Explain patterns %d != search answers %d", ex.Patterns, len(answers))
	}
}

func TestExplainUnknownWord(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := eng.Explain("database quasar")
	if len(ex.Unknown) != 1 || ex.Unknown[0] != "quasar" {
		t.Errorf("unknown words wrong: %+v", ex.Unknown)
	}
	if ex.Patterns != 0 || ex.Subtrees != 0 || ex.CandidateRoots != 0 {
		t.Errorf("query with unknown keyword must count zero: %+v", ex)
	}
}
