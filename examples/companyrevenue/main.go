// Company revenue research: the paper's opening motivation — "an analyst
// wants a list of companies that produce database software along with
// their annual revenues". This example builds a small tech-industry
// knowledge base and shows how one keyword query assembles that list as a
// table, including how different interpretations (tree patterns) rank.
package main

import (
	"fmt"
	"log"

	"kbtable"
)

type product struct {
	name, genre, lang string
}

type company struct {
	name, revenue, hq string
	founders          []string
	products          []product
}

var companies = []company{
	{
		name: "Microsoft", revenue: "US$ 77 billion", hq: "Redmond",
		founders: []string{"Bill Gates", "Paul Allen"},
		products: []product{
			{"SQL Server", "Relational database", "C++"},
			{"Access", "Desktop database", "C++"},
			{"Windows", "Operating system", "C"},
		},
	},
	{
		name: "Oracle Corp", revenue: "US$ 37 billion", hq: "Austin",
		founders: []string{"Larry Ellison"},
		products: []product{
			{"Oracle DB", "Relational database", "C"},
			{"MySQL", "Relational database", "C++"},
		},
	},
	{
		name: "SAP", revenue: "US$ 23 billion", hq: "Walldorf",
		founders: []string{"Hasso Plattner"},
		products: []product{
			{"HANA", "In-memory database", "C++"},
		},
	},
	{
		name: "MongoDB Inc", revenue: "US$ 1.3 billion", hq: "New York",
		founders: []string{"Dwight Merriman"},
		products: []product{
			{"MongoDB", "Document database", "C++"},
		},
	},
	{
		name: "Adobe", revenue: "US$ 19 billion", hq: "San Jose",
		founders: []string{"John Warnock"},
		products: []product{
			{"Photoshop", "Image editor", "C++"},
		},
	},
}

func main() {
	b := kbtable.NewBuilder()
	for _, c := range companies {
		cid := b.Entity("Company", c.name)
		b.TextAttr(cid, "Revenue", c.revenue)
		b.TextAttr(cid, "Headquarters", c.hq)
		for _, f := range c.founders {
			fid := b.Entity("Person", f)
			b.Attr(cid, "Founder", fid)
		}
		for _, p := range c.products {
			pid := b.Entity("Software", p.name)
			b.Attr(pid, "Developer", cid)
			b.TextAttr(pid, "Genre", p.genre)
			lid := b.Entity("Programming Language", p.lang)
			b.Attr(pid, "Written in", lid)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3})
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{
		"database software company revenue",
		"company founder",
		"relational database developer headquarters",
	} {
		answers, err := eng.Search(q, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== query: %q (%d interpretations) ===\n\n", q, len(answers))
		for _, a := range answers {
			fmt.Println(a.Render(6))
		}
	}
}
