// Movie search: the paper's "Mel Gibson movies" motivating query. A small
// movie knowledge base is queried for an actor's films; the top pattern
// aggregates every (Movie, starring, Person) match into one table instead
// of returning scattered subtrees. Also demonstrates the LinearEnum
// algorithm and its sampling knobs on the public API.
package main

import (
	"fmt"
	"log"

	"kbtable"
)

func main() {
	b := kbtable.NewBuilder()

	gibson := b.Entity("Person", "Mel Gibson")
	glover := b.Entity("Person", "Danny Glover")
	hanks := b.Entity("Person", "Tom Hanks")

	type film struct {
		title, year, genre string
		cast               []kbtable.EntityID
		director           kbtable.EntityID
	}
	films := []film{
		{"Braveheart", "1995", "drama", []kbtable.EntityID{gibson}, gibson},
		{"Lethal Weapon", "1987", "action", []kbtable.EntityID{gibson, glover}, glover},
		{"Mad Max", "1979", "action", []kbtable.EntityID{gibson}, glover},
		{"Forrest Gump", "1994", "drama", []kbtable.EntityID{hanks}, hanks},
		{"The Patriot", "2000", "war", []kbtable.EntityID{gibson}, hanks},
	}
	for _, f := range films {
		m := b.Entity("Movie", f.title)
		for _, p := range f.cast {
			b.Attr(m, "Starring", p)
		}
		b.Attr(m, "Director", f.director)
		b.TextAttr(m, "Year", f.year)
		b.TextAttr(m, "Genre", f.genre)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3})
	if err != nil {
		log.Fatal(err)
	}

	// "Mel Gibson movies" — the pattern (Movie)(Starring)(Person) wins and
	// its table lists each film as a row.
	answers, err := eng.SearchOpts("gibson movie year", kbtable.SearchOptions{
		K:         3,
		Algorithm: kbtable.LinearEnum,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: \"gibson movie year\" — %d interpretations\n\n", len(answers))
	for _, a := range answers {
		fmt.Println(a.Render(10))
	}

	// The same query with sampling enabled (Λ=1, ρ=0.5): approximate top-k
	// on large knowledge bases trades a little precision for speed
	// (Theorem 5 bounds the error).
	sampled, err := eng.SearchOpts("gibson movie year", kbtable.SearchOptions{
		K:         1,
		Algorithm: kbtable.LinearEnum,
		Lambda:    1,
		Rho:       0.5,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled run returned %d answers (scores are exact for survivors)\n", len(sampled))
}
