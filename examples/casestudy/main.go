// Case study (the paper's Figures 14-15): individual subtree ranking vs
// tree-pattern ranking on an "XBox Game"-style query. Individual top
// subtrees surface single high-PageRank matches; the top tree pattern
// instead aggregates all games of the platform into one table — the better
// answer when the intent is "a list of XBox games".
package main

import (
	"fmt"
	"log"
	"strings"

	"kbtable"
)

func main() {
	b := kbtable.NewBuilder()

	xbox := b.Entity("Information Appliance", "Xbox")
	live := b.Entity("Online Service", "Xbox Live Arcade")
	sony := b.Entity("Company", "Sony")
	dvd := b.Entity("Storage Medium", "DVD")

	games := []string{"Halo 2", "GTA: San Andreas", "Painkiller", "Fable", "Forza"}
	for _, title := range games {
		gm := b.Entity("Video Game", title)
		b.Attr(gm, "Platform", xbox)
	}
	// Extra structure mirroring Figure 14's quirky individual matches.
	halo := b.Entity("Video Game", "Halo")
	b.Attr(xbox, "Top Game", halo)
	b.Attr(dvd, "Usage", xbox)
	vg := b.Entity("Video Game", "PlayStation video game lineup")
	b.Attr(dvd, "Owners", sony)
	b.Attr(sony, "Products", vg)
	b.Attr(live, "Service For", xbox)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Uniform PageRank keeps the toy graph's contrast crisp; on a real KB
	// the default PageRank gives Figure 14's "popular entity" effect.
	eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		log.Fatal(err)
	}

	const query = "xbox game"

	fmt.Println("== Top individual valid subtrees (Figure 14 analogue) ==")
	trees, err := eng.SearchTrees(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, ta := range trees {
		fmt.Printf("Top-%d  score=%.4f\n  %s\n  %s\n\n", ta.Rank, ta.Score,
			strings.Join(ta.Columns, " | "), strings.Join(ta.Row, " | "))
	}

	fmt.Println("== Top-1 tree pattern as a table answer (Figure 15 analogue) ==")
	answers, err := eng.Search(query, 1)
	if err != nil {
		log.Fatal(err)
	}
	if len(answers) == 0 {
		log.Fatal("no pattern answers")
	}
	fmt.Println(answers[0].Render(10))
}
