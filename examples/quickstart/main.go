// Quickstart: build the paper's Figure 1 mini knowledge base through the
// public API, then ask the running example query "database software
// company revenue" and print the composed table answers (Figure 3).
package main

import (
	"fmt"
	"log"

	"kbtable"
)

func main() {
	b := kbtable.NewBuilder()

	// Entities from Figure 1(a)-(c).
	sqlServer := b.Entity("Software", "SQL Server")
	relDB := b.Entity("Model", "Relational database")
	microsoft := b.Entity("Company", "Microsoft")
	gates := b.Entity("Person", "Bill Gates")
	oracleDB := b.Entity("Software", "Oracle DB")
	orDB := b.Entity("Model", "O-R database")
	oracle := b.Entity("Company", "Oracle Corp")
	book := b.Entity("Book", "Handbook of Database Software")
	springer := b.Entity("Company", "Springer")

	// Attributes; plain-text values become literal entities automatically.
	b.Attr(sqlServer, "Genre", relDB)
	b.Attr(sqlServer, "Developer", microsoft)
	b.Attr(sqlServer, "Reference", book)
	b.TextAttr(microsoft, "Revenue", "US$ 77 billion")
	b.Attr(microsoft, "Founder", gates)
	b.Attr(oracleDB, "Genre", orDB)
	b.Attr(oracleDB, "Developer", oracle)
	b.TextAttr(oracle, "Revenue", "US$ 37 billion")
	b.Attr(book, "Publisher", springer)
	b.TextAttr(springer, "Revenue", "US$ 1 billion")

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3})
	if err != nil {
		log.Fatal(err)
	}

	query := "database software company revenue"
	answers, err := eng.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %q — %d table answers\n\n", query, len(answers))
	for _, a := range answers {
		fmt.Println(a.Render(5))
	}
}
