// Command kbserve is the long-running HTTP daemon for keyword-table
// search: it loads (or demos) a knowledge base, builds the path-pattern
// indexes once, and serves queries with parallel execution and an LRU
// result cache until terminated. The knowledge base stays live: POST
// /update applies mutations atomically, maintains the indexes
// incrementally (only the d-neighborhood of the change is re-enumerated),
// and swaps in the new snapshot without blocking in-flight searches.
//
// With -data-dir the knowledge base is durable: accepted updates are
// written to a write-ahead log (fsync) before they are published, the
// engine is checkpointed into a snapshot store in the background, and
// a restart recovers the exact pre-crash state — snapshot plus WAL
// replay — instead of rebuilding from scratch. The first run against an
// empty directory seeds it from -kb (or -demo); later runs recover from
// the directory and ignore -kb.
//
// Usage:
//
//	kbserve -kb wiki.kb -addr :8080          # serve a kbgen-built KB
//	kbserve -kb wiki.kb -shards 4            # partitioned indexes, scatter-gather
//	kbserve -kb wiki.kb -index wiki.ix       # skip index construction
//	kbserve -kb wiki.kb -data-dir ./data     # durable: WAL + snapshots
//	kbserve -data-dir ./data                 # restart: recover, no -kb needed
//	kbserve -demo                            # built-in Figure 1 KB
//	kbserve -demo -readonly                  # disable POST /update
//
// Cluster mode (-role) splits one logical server across processes over
// the same /v1 API. The coordinator holds the full engine and the WAL,
// scatters per-shard query legs to owner nodes, and ships committed WAL
// records to every follower; answers are bit-identical to standalone:
//
//	kbserve -kb wiki.kb -shards 4 -data-dir ./data \
//	        -role coordinator -node-id c0 -cluster members.txt
//	kbserve -kb wiki.kb -shards 4 -role node -node-id n0 \
//	        -shard-range 0-1 -source http://coord:8080
//	kbserve -kb wiki.kb -shards 4 -role replica -node-id r0 \
//	        -source http://coord:8080
//
// Endpoints (under /v1; unversioned aliases remain for one release):
//
//	POST /v1/search  {"query":"database software company revenue","k":5,
//	                  "algorithm":"patternenum","d":3}
//	POST /v1/update  {"ops":[{"op":"add_entity","type":"Software",
//	                  "text":"Postgres"},
//	                  {"op":"add_attr","src":-1,"attr":"Genre","dst":1}]}
//	GET  /v1/healthz
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kbtable"
	"kbtable/internal/cluster"
	"kbtable/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	kbPath := flag.String("kb", "", "knowledge base file written by kbgen")
	ixPath := flag.String("index", "", "prebuilt index file written by kbindex (optional)")
	demo := flag.Bool("demo", false, "serve the built-in Figure 1 mini knowledge base")
	d := flag.Int("d", 3, "height threshold for tree patterns")
	shards := flag.Int("shards", 1, "partition candidate roots across this many index shards (scatter-gather queries, per-shard update routing)")
	workers := flag.Int("workers", 0, "per-query worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 512, "LRU query-result cache entries (negative disables)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request search timeout")
	maxK := flag.Int("max-k", 1000, "largest k a request may ask for")
	maxRows := flag.Int("max-rows", 50, "default cap on table rows per answer")
	readOnly := flag.Bool("readonly", false, "disable POST /update (serve a frozen snapshot)")
	defaultAlgo := flag.String("default-algo", "patternenum", "algorithm for requests that omit one: patternenum, linearenum, baseline, or auto (cost-based planner)")
	dataDir := flag.String("data-dir", "", "durable data directory: WAL-log updates, checkpoint snapshots, recover on restart")
	ckptEvery := flag.Int("checkpoint-every", 64, "background-checkpoint after this many WAL records accumulate past the last snapshot (negative disables)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission control: concurrently executing searches (0 = max(8, 4*GOMAXPROCS), negative disables)")
	maxQueue := flag.Int("max-queue", 512, "admission control: queued searches before new arrivals are shed with 429")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission control: longest a search may wait for an execution slot (0 = -timeout)")
	gcBatch := flag.Int("group-commit-batch", 0, "WAL group commit: records per fsync batch (0 = default 128)")
	gcDelay := flag.Duration("group-commit-delay", 0, "WAL group commit: hold a non-full batch open this long for stragglers (0 = commit immediately)")
	adaptiveBias := flag.Bool("adaptive-bias", false, "learn the auto planner's PE/LE crossover bias from observed stage timings (applies to auto requests without an explicit auto_bias; answers are unchanged)")
	role := flag.String("role", "standalone", "cluster role: standalone, coordinator (scatter legs to owners, ship WAL), node (host -shard-range, serve legs), or replica (full engine fed by WAL shipping)")
	nodeID := flag.String("node-id", "", "this process's member id in cluster mode")
	shardRange := flag.String("shard-range", "", "shards a node role hosts: lo-hi or a,b,c (requires -shards for the partition size)")
	clusterSpec := flag.String("cluster", "", "coordinator membership: a file path or an inline \"id addr shards=lo-hi; id addr replica\" list")
	source := flag.String("source", "", "follower roles: the coordinator's base URL to pull committed WAL records from")
	pullInterval := flag.Duration("pull-interval", 500*time.Millisecond, "follower WAL pull interval")
	flag.Parse()

	// With -data-dir, the snapshot manifest is authoritative for the
	// build-time options; only explicitly passed flags may contradict it
	// (and then fail loudly).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var eng *kbtable.Engine
	var store *kbtable.Store
	var err error
	opts := kbtable.EngineOptions{D: *d, Workers: *workers, Shards: *shards}
	t0 := time.Now()

	switch *role {
	case "standalone", "coordinator", "node", "replica":
	default:
		log.Fatalf("-role %q: want standalone, coordinator, node, or replica", *role)
	}
	if *role != "standalone" && *nodeID == "" {
		log.Fatalf("-role %s requires -node-id", *role)
	}
	if *role == "coordinator" {
		if *clusterSpec == "" {
			log.Fatal("-role coordinator requires -cluster (the member table)")
		}
		if *dataDir == "" {
			log.Fatal("-role coordinator requires -data-dir (followers replay its WAL)")
		}
		// Followers bootstrap by replaying the WAL from sequence 0, so the
		// coordinator keeps its full history unless the operator explicitly
		// opted into checkpoint truncation.
		if !explicit["checkpoint-every"] {
			*ckptEvery = -1
		}
	}
	if *role == "node" || *role == "replica" {
		if *source == "" {
			log.Fatalf("-role %s requires -source (the coordinator's URL)", *role)
		}
		if *dataDir != "" {
			log.Fatal("-data-dir is for standalone/coordinator roles; followers replicate the coordinator's WAL instead")
		}
	}
	if *role == "node" {
		if *shardRange == "" {
			log.Fatal("-role node requires -shard-range")
		}
		opts.OwnedShards, err = cluster.ParseShardRange(*shardRange)
		if err != nil {
			log.Fatalf("-shard-range: %v", err)
		}
	}

	if *dataDir != "" {
		if *ixPath != "" {
			log.Fatal("-index is incompatible with -data-dir (snapshots carry their own indexes)")
		}
		ropts := opts
		if !explicit["d"] {
			ropts.D = 0
		}
		if !explicit["shards"] {
			ropts.Shards = 0
		}
		var rs kbtable.RecoverStats
		eng, store, rs, err = kbtable.OpenDirOpts(*dataDir, ropts, kbtable.StoreOptions{
			GroupCommitMaxBatch: *gcBatch,
			GroupCommitMaxDelay: *gcDelay,
		})
		switch {
		case err == nil:
			if *kbPath != "" {
				log.Printf("data dir %s already holds a snapshot; ignoring -kb", *dataDir)
			}
			torn := ""
			if rs.TornTail {
				torn = " (torn WAL tail discarded)"
			}
			log.Printf("recovered %s: snapshot seq=%d + %d wal records -> seq=%d, %d shard(s), in %v%s",
				*dataDir, rs.SnapshotSeq, rs.Replayed, rs.Seq, rs.Shards,
				(rs.SnapshotLoad + rs.Replay).Round(time.Millisecond), torn)
		case errors.Is(err, kbtable.ErrNoSnapshot):
			// Fresh directory (the store comes back open): seed it from
			// -kb / -demo.
			g := mustGraph(*kbPath, *demo)
			if eng, err = kbtable.NewEngine(g, opts); err != nil {
				log.Fatal(err)
			}
			cs, err := eng.Checkpoint(store)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("seeded %s: snapshot of %d files, %.1f MB", *dataDir, cs.Files, float64(cs.Bytes)/(1<<20))
		default:
			log.Fatal(err)
		}
		defer store.Close()
	} else {
		g := mustGraph(*kbPath, *demo)
		if *ixPath != "" {
			if *shards > 1 {
				log.Fatal("-index is incompatible with -shards > 1 (sharded engines build their partitioned indexes at startup)")
			}
			eng, err = kbtable.NewEngineFromIndex(g, *ixPath, opts)
		} else {
			eng, err = kbtable.NewEngine(g, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	{
		g := eng.Graph()
		log.Printf("graph: %d entities, %d attributes, %d types",
			g.NumEntities(), g.NumAttributes(), g.NumTypes())
	}
	st := eng.IndexStats()
	log.Printf("index: d=%d, %d patterns, %d entries, %.1f MB, ready in %v",
		st.D, st.Patterns, st.Entries, st.SizeMB, time.Since(t0).Round(time.Millisecond))
	if info := eng.ShardInfo(); info.Count > 1 {
		log.Printf("shards: %d (roots per shard %v)", info.Count, info.Roots)
	}

	if _, _, err := serve.ParseAlgorithm(*defaultAlgo); err != nil {
		log.Fatalf("-default-algo: %v", err)
	}
	cfg := serve.Config{
		Engine:           eng,
		D:                st.D,
		CacheSize:        *cacheSize,
		Timeout:          *timeout,
		MaxK:             *maxK,
		MaxRows:          *maxRows,
		ReadOnly:         *readOnly || *role == "node" || *role == "replica",
		DefaultAlgorithm: *defaultAlgo,
		Store:            store,
		CheckpointEvery:  *ckptEvery,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		QueueTimeout:     *queueTimeout,
		AdaptiveBias:     *adaptiveBias,
	}
	var srv *serve.Server
	switch *role {
	case "coordinator":
		members, err := loadMembers(*clusterSpec)
		if err != nil {
			log.Fatal(err)
		}
		router := cluster.NewRouter(*nodeID, members)
		router.SeqFn = func() uint64 { return store.Stats().LastSeq }
		cfg.Distributor = router
		cfg.Cluster = router.Health
		srv = serve.New(cfg)
		log.Printf("coordinator %s: %d members, scattering legs over /v1", *nodeID, len(members.Members))
	case "node", "replica":
		node := cluster.NewNode(cfg, *role, *nodeID)
		srv = node.Server()
		node.StartReplication(*source, *pullInterval)
		defer node.StopReplication()
		log.Printf("%s %s: replicating WAL from %s every %v", *role, *nodeID, *source, *pullInterval)
	default:
		srv = serve.New(cfg)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	mode := "live updates enabled (POST /update)"
	if *readOnly {
		mode = "read-only"
	}
	if store != nil {
		mode += fmt.Sprintf(", durable in %s (checkpoint every %d records)", store.Dir(), *ckptEvery)
	}
	log.Printf("listening on %s (POST /search, GET /healthz, GET /metrics), %s", *addr, mode)

	select {
	case err := <-errCh:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Print("shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if store != nil {
			// Final checkpoint so a clean restart replays no WAL. A
			// failure is not fatal: the WAL already holds everything.
			if err := srv.CheckpointNow(); err != nil {
				log.Printf("final checkpoint: %v", err)
			}
		}
		log.Print("drained")
	}
}

// loadMembers reads -cluster: a membership file when the path exists,
// otherwise an inline "id addr shards=lo-hi; id addr replica" list.
func loadMembers(spec string) (*cluster.Membership, error) {
	if _, err := os.Stat(spec); err == nil {
		return cluster.LoadMembership(spec)
	}
	return cluster.ParseMembership(spec)
}

// mustGraph loads the knowledge base from -kb or builds the demo.
func mustGraph(kbPath string, demo bool) *kbtable.Graph {
	switch {
	case kbPath != "":
		g, err := kbtable.LoadGraph(kbPath)
		if err != nil {
			log.Fatal(err)
		}
		return g
	case demo:
		g, err := demoGraph()
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	log.Fatal("provide -kb FILE (see cmd/kbgen), -demo, or a -data-dir holding a snapshot")
	return nil
}

// demoGraph builds the paper's Figure 1 mini knowledge base, so the
// daemon can be exercised without generating a dataset first.
func demoGraph() (*kbtable.Graph, error) {
	b := kbtable.NewBuilder()
	sqlServer := b.Entity("Software", "SQL Server")
	relDB := b.Entity("Model", "Relational database")
	microsoft := b.Entity("Company", "Microsoft")
	gates := b.Entity("Person", "Bill Gates")
	oracleDB := b.Entity("Software", "Oracle DB")
	orDB := b.Entity("Model", "O-R database")
	oracle := b.Entity("Company", "Oracle Corp")
	book := b.Entity("Book", "Handbook of Database Software")
	springer := b.Entity("Company", "Springer")
	b.Attr(sqlServer, "Genre", relDB)
	b.Attr(sqlServer, "Developer", microsoft)
	b.Attr(sqlServer, "Reference", book)
	b.TextAttr(microsoft, "Revenue", "US$ 77 billion")
	b.Attr(microsoft, "Founder", gates)
	b.Attr(oracleDB, "Genre", orDB)
	b.Attr(oracleDB, "Developer", oracle)
	b.TextAttr(oracle, "Revenue", "US$ 37 billion")
	b.Attr(book, "Publisher", springer)
	b.TextAttr(springer, "Revenue", "US$ 1 billion")
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("demo graph: %w", err)
	}
	return g, nil
}
