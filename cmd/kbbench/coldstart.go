package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kbtable"
	"kbtable/internal/bench"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// runColdStartBench checkpoints an engine over g into a throwaway data
// directory and times kbtable.OpenDir (snapshot load) against
// kbtable.NewEngine (index rebuild) — the cold_start row of
// BENCH_kbtable.json. It lives in cmd/kbbench rather than
// internal/bench because it needs the kbtable facade, which the root
// package's in-package tests would turn into an import cycle.
func runColdStartBench(g *kg.Graph) (*bench.ColdStartBenchResult, error) {
	tmp, err := os.MkdirTemp("", "kbtable-coldstart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	// The facade owns durable engines, so round-trip the graph through
	// its file format.
	kbPath := filepath.Join(tmp, "bench.kb")
	if err := g.SaveFile(kbPath); err != nil {
		return nil, err
	}
	fg, err := kbtable.LoadGraph(kbPath)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	eng, err := kbtable.NewEngine(fg, kbtable.EngineOptions{D: 3})
	if err != nil {
		return nil, err
	}
	build := time.Since(t0)

	dataDir := filepath.Join(tmp, "data")
	st, err := kbtable.OpenStore(dataDir)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	cs, err := eng.Checkpoint(st)
	if err != nil {
		return nil, err
	}
	// Release the directory lock before re-opening: OpenDir takes the
	// same exclusive flock, and a still-open first store denies it.
	if err := st.Close(); err != nil {
		return nil, err
	}

	// The load being timed must recover from the current binary wire
	// format; a gob file here would mean the benchmark silently measures
	// the legacy path.
	idxFiles, err := filepath.Glob(filepath.Join(dataDir, "snap-*", "shard-*.idx"))
	if err != nil || len(idxFiles) == 0 {
		return nil, fmt.Errorf("cold-start bench: no snapshot index files in %s: %v", dataDir, err)
	}
	wireVersion := 0
	for _, p := range idxFiles {
		v, err := index.FileWireVersion(p)
		if err != nil {
			return nil, err
		}
		if v != index.WireVersion {
			return nil, fmt.Errorf("cold-start bench: %s is wire version %d, want %d", p, v, index.WireVersion)
		}
		wireVersion = v
	}

	t1 := time.Now()
	_, st2, _, err := kbtable.OpenDir(dataDir, kbtable.EngineOptions{})
	if err != nil {
		return nil, err
	}
	load := time.Since(t1)
	st2.Close()

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	out := &bench.ColdStartBenchResult{
		SnapshotBytes:    cs.Bytes,
		IndexWireVersion: wireVersion,
		BuildMs:          ms(build),
		LoadMs:           ms(load),
	}
	if out.LoadMs > 0 {
		out.SpeedupVsBuild = out.BuildMs / out.LoadMs
	}
	return out, nil
}
