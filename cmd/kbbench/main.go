// Command kbbench runs the full experiment suite reproducing every table
// and figure of the paper's Section 5 (and Appendix C) on the synthetic
// Wiki/IMDB stand-ins, printing one formatted table per artifact.
//
// Usage:
//
//	kbbench                      # full suite at default scale
//	kbbench -only fig7,fig11     # selected experiments
//	kbbench -entities 6000 -perm 10   # smaller/faster
//	kbbench -json                # shard-scaling trajectory -> BENCH_kbtable.json
//
// With -json the paper suite is skipped and the shard-scaling benchmark
// (query ns/op, allocs, and speedup vs the serial engine for 1/2/4
// shards) is written to -json-out — the BENCH trajectory CI uploads as an
// artifact on every run. -load-report FILE additionally grafts a kbload
// soak report onto the JSON as serve_latency and group_commit rows, so
// the artifact also records the serving path's latency under load.
//
// -compare old.json new.json diffs two BENCH artifacts and exits 1 when
// any pinned metric regressed more than -threshold (default 25%): the
// CI bench-regression gate.
//
// -footprint FILE.kb builds the index for a saved knowledge base (see
// cmd/kbgen) and prints its index_footprint row — resident bytes/entry,
// v2 vs gob snapshot size, and encode/decode timings — so the wire-v2
// win can be demonstrated on corpora far larger than the checked-in
// ones (make bench-footprint).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"kbtable/internal/bench"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbbench: ")
	entities := flag.Int("entities", 12000, "SynthWiki entities")
	types := flag.Int("types", 120, "SynthWiki types")
	movies := flag.Int("movies", 6000, "SynthIMDB movies")
	perM := flag.Int("perm", 20, "queries per keyword count (paper: 50)")
	k := flag.Int("k", 100, "top-k cutoff")
	seed := flag.Int64("seed", 1, "seed")
	only := flag.String("only", "", "comma-separated subset: fig6,fig7,fig8,fig9,fig10,expk,fig11,fig12,fig13,case,fig16,ablations")
	caseQuery := flag.String("case-query", "washington city", "case-study query (Figures 14-15)")
	jsonBench := flag.Bool("json", false, "run the shard-scaling benchmark and write its JSON report instead of the paper suite")
	jsonOut := flag.String("json-out", "BENCH_kbtable.json", "output path for -json")
	benchEntities := flag.Int("bench-entities", 4000, "-json: SynthWiki entities")
	benchQueries := flag.Int("bench-queries", 12, "-json: workload queries per op")
	var loadReports []string
	flag.Func("load-report", "-json: kbload report to ingest as serve_latency/group_commit rows (repeatable; a cluster soak adds its cluster_scatter row alongside the single-node soak's)", func(v string) error {
		loadReports = append(loadReports, v)
		return nil
	})
	compare := flag.Bool("compare", false, "compare two BENCH json files (args: old.json new.json); exit 1 on regression")
	threshold := flag.Float64("threshold", bench.DefaultRegressionThreshold, "-compare: fractional regression that fails the gate")
	footprint := flag.String("footprint", "", "measure the index footprint of a saved knowledge base (kbgen output) and print the row")
	d := flag.Int("d", 3, "-footprint: index depth bound D")
	flag.Parse()

	if *compare {
		runCompare(flag.Args(), *threshold)
		return
	}

	if *footprint != "" {
		runFootprint(*footprint, *d)
		return
	}

	if *jsonBench {
		cfg := bench.ShardBenchConfig{
			Entities: *benchEntities,
			Queries:  *benchQueries,
			K:        *k,
			Seed:     *seed,
		}
		report, err := bench.RunShardBench(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if report.ColdStart, err = runColdStartBench(cfg.WikiGraph()); err != nil {
			log.Fatal(err)
		}
		for _, path := range loadReports {
			lr, err := bench.ReadLoadReport(path)
			if err != nil {
				log.Fatal(err)
			}
			report.AttachLoadReport(lr)
		}
		fmt.Println(report.String())
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}

	env := bench.NewEnv(bench.Config{
		WikiEntities: *entities,
		WikiTypes:    *types,
		IMDBMovies:   *movies,
		PerM:         *perM,
		K:            *k,
		Seed:         *seed,
	})

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	show := func(tabs ...bench.Table) {
		for _, t := range tabs {
			fmt.Println(t.String())
		}
	}
	if sel("fig6") {
		show(bench.RunFig6(env))
	}
	if sel("fig7") {
		show(bench.RunFig7(env)...)
	}
	if sel("fig8") {
		show(bench.RunFig8(env))
	}
	if sel("fig9") {
		show(bench.RunFig9(env)...)
	}
	if sel("fig10") {
		show(bench.RunFig10(env))
	}
	if sel("expk") {
		show(bench.RunExpK(env))
	}
	if sel("fig11") {
		show(bench.RunFig11(env)...)
	}
	if sel("fig12") {
		show(bench.RunFig12(env)...)
	}
	if sel("fig13") {
		show(bench.RunFig13(env))
	}
	if sel("case") {
		fmt.Println(bench.RunCaseStudy(env, *caseQuery))
	}
	if sel("fig16") {
		show(bench.RunFig16(env))
	}
	if sel("ablations") {
		show(bench.RunAblations(env)...)
	}
	fmt.Printf("suite completed in %v\n", time.Since(start).Round(time.Second))
}

// runFootprint is the opt-in scale proof behind make bench-footprint:
// build the index for a saved knowledge base and print its
// index_footprint row (human line + JSON).
func runFootprint(path string, d int) {
	g, err := kg.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("corpus %s: %d entities, %d edges; building index (d=%d)...\n", path, s.Nodes, s.Edges, d)
	ix, err := index.Build(g, index.Options{D: d})
	if err != nil {
		log.Fatal(err)
	}
	fp, err := bench.IndexFootprint(path, g, ix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("footprint: %d entries, %.1f B/entry resident, snapshot %.2f MB vs gob %.2f MB (%.0f%% smaller), encode %.0fms, decode %.0fms (%.1fx vs gob, %.1fx vs build)\n",
		fp.Entries, fp.BytesPerEntry, float64(fp.SnapshotBytes)/(1<<20), float64(fp.GobSnapshotBytes)/(1<<20),
		fp.ShrinkVsGob*100, fp.EncodeMs, fp.DecodeMs, fp.LoadSpeedupVsGob, fp.LoadSpeedupVsBuild)
	out, err := json.MarshalIndent(fp, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}

// runCompare is the bench-regression gate: kbbench -compare old.json
// new.json. A missing or unreadable baseline is a warning, not a
// failure — on CI the main-branch artifact may simply not exist yet —
// but a regression in a pinned metric exits 1.
func runCompare(args []string, threshold float64) {
	if len(args) != 2 {
		log.Fatal("-compare needs exactly two arguments: old.json new.json")
	}
	old, err := bench.ReadShardBenchReport(args[0])
	if err != nil {
		log.Printf("WARN: no usable baseline (%v); skipping regression gate", err)
		return
	}
	cur, err := bench.ReadShardBenchReport(args[1])
	if err != nil {
		log.Fatal(err)
	}
	regs := bench.CompareReports(old, cur, threshold)
	if len(regs) == 0 {
		fmt.Printf("bench gate: no regression beyond %.0f%% (%s vs %s)\n", threshold*100, args[1], args[0])
		return
	}
	for _, r := range regs {
		log.Printf("REGRESSION: %s", r)
	}
	os.Exit(1)
}
