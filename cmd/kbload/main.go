// Command kbload drives a live kbserve with a mixed search/update
// workload and reports client-observed throughput and latency
// percentiles per op type, plus the server-side counter deltas
// (coalescing, load shedding, WAL group commit) scraped from /healthz
// around the run. It is the serving-path counterpart of kbbench: where
// kbbench measures the algorithms in-process, kbload measures the HTTP
// daemon under concurrency — admission control, result-cache reuse, and
// group-commit batching included.
//
// Queries are regenerated from the same synthetic corpus parameters the
// server's KB was built with (kbgen -kind wiki -entities N -types T
// -seed S), so they hit real vocabulary; selection is Zipf-skewed so
// popular queries repeat, exercising the cache and request coalescing.
// Updates insert fresh entities (with text attributes reusing workload
// vocabulary, so cache invalidation triggers) and are order-independent,
// making any interleaving across workers valid.
//
// Usage:
//
//	kbload -addr http://127.0.0.1:8080 -duration 30s -concurrency 16 \
//	       -read-ratio 0.9 -entities 4000 -types 60 -seed 1 \
//	       -out kbload-report.json -max-error-rate 0 -max-p99 5s
//
// The process exits 1 when -max-error-rate or -max-p99 is violated, so
// CI can gate on it directly. 429 responses count as shed, not errors:
// load shedding under overload is the server doing its job.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"kbtable"
	"kbtable/internal/api"
	"kbtable/internal/bench"
	"kbtable/internal/client"
	"kbtable/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbload: ")
	addr := flag.String("addr", "http://127.0.0.1:8080", "kbserve base URL")
	duration := flag.Duration("duration", 30*time.Second, "soak length")
	concurrency := flag.Int("concurrency", 16, "concurrent workers")
	readRatio := flag.Float64("read-ratio", 0.9, "fraction of requests that are searches (rest are updates)")
	entities := flag.Int("entities", 4000, "wiki corpus size the server was built with (kbgen -entities)")
	types := flag.Int("types", 60, "wiki corpus types (kbgen -types)")
	seed := flag.Int64("seed", 1, "corpus seed (kbgen -seed); also drives workload randomness")
	queries := flag.Int("queries", 200, "distinct query texts to rotate through")
	zipfS := flag.Float64("zipf-s", 1.2, "query-popularity skew (Zipf s; <=1 = uniform)")
	k := flag.Int("k", 5, "top-k per search")
	algo := flag.String("algo", "", "search algorithm to request (empty = server default)")
	priority := flag.String("priority", "", "X-KB-Priority header for searches (high, normal, low)")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	searchOp := flag.String("search-op", "search", "op name for the search latency row in the report (cluster soaks use cluster_scatter so kbbench -compare folds them separately)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout table only)")
	maxErrRate := flag.Float64("max-error-rate", -1, "exit 1 when errors/requests exceeds this (negative disables)")
	maxP99 := flag.Duration("max-p99", 0, "exit 1 when any op's p99 exceeds this (0 disables)")
	flag.Parse()
	if *concurrency < 1 {
		log.Fatal("-concurrency must be >= 1")
	}
	if *readRatio < 0 || *readRatio > 1 {
		log.Fatal("-read-ratio must be in [0,1]")
	}

	texts := buildQueries(*entities, *types, *seed, *queries)
	vocab := harvestVocab(texts)
	log.Printf("workload: %d query texts, %d vocabulary words", len(texts), len(vocab))

	cl := client.New(*addr, client.Config{HTTPClient: &http.Client{Timeout: *reqTimeout}})
	before, err := scrapeHealth(cl)
	if err != nil {
		log.Fatalf("target not healthy: %v", err)
	}

	start := time.Now()
	deadline := start.Add(*duration)
	results := make([]workerStats, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runWorker(workerConfig{
				client: cl, deadline: deadline,
				texts: texts, vocab: vocab,
				rng:       rand.New(rand.NewSource(*seed + int64(w)*7919)),
				readRatio: *readRatio, zipfS: *zipfS, k: *k,
				algo: *algo, priority: *priority, worker: w,
			})
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := scrapeHealth(cl)
	if err != nil {
		log.Printf("post-soak /healthz scrape failed: %v", err)
	}

	report := buildReport(*addr, *searchOp, wall, *concurrency, *readRatio, results, before, after)
	fmt.Print(report.String())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}

	if code := gate(report, *maxErrRate, *maxP99); code != 0 {
		os.Exit(code)
	}
}

// buildQueries regenerates the server's corpus in-process and harvests a
// query workload from it. The corpus is only used for query text — it is
// never sent to the server — so the cost is a few hundred ms.
func buildQueries(entities, types int, seed int64, n int) []string {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: entities, Types: types, Seed: seed})
	perM := n/6 + 1
	qs := dataset.Workload(g, dataset.WorkloadConfig{PerM: perM, MaxM: 6, Seed: seed})
	texts := make([]string, 0, n)
	for _, q := range qs {
		if len(texts) == n {
			break
		}
		texts = append(texts, q.Text)
	}
	if len(texts) == 0 {
		log.Fatal("workload generation produced no queries")
	}
	return texts
}

// harvestVocab collects the distinct words of the query texts; update
// batches reuse them so invalidation actually intersects cached queries.
func harvestVocab(texts []string) []string {
	seen := map[string]bool{}
	var words []string
	for _, t := range texts {
		for _, w := range strings.Fields(t) {
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	return words
}

// workerStats is one worker's private tally, merged after the soak so
// the hot loop takes no locks.
type workerStats struct {
	searchLat, updateLat          []time.Duration
	searchErrs, updateErrs        uint64
	searchShed, updateShed        uint64
	searchCoalesced, searchCached uint64
}

type workerConfig struct {
	client    *client.Client
	deadline  time.Time
	texts     []string
	vocab     []string
	rng       *rand.Rand
	readRatio float64
	zipfS     float64
	k         int
	algo      string
	priority  string
	worker    int
}

func runWorker(cfg workerConfig) workerStats {
	var st workerStats
	var zipf *rand.Zipf
	if cfg.zipfS > 1 {
		zipf = rand.NewZipf(cfg.rng, cfg.zipfS, 1, uint64(len(cfg.texts)-1))
	}
	pick := func() string {
		if zipf != nil {
			return cfg.texts[zipf.Uint64()]
		}
		return cfg.texts[cfg.rng.Intn(len(cfg.texts))]
	}
	seq := 0
	for time.Now().Before(cfg.deadline) {
		if cfg.rng.Float64() < cfg.readRatio {
			doSearch(cfg, &st, pick())
		} else {
			doUpdate(cfg, &st, seq)
			seq++
		}
	}
	return st
}

func doSearch(cfg workerConfig, st *workerStats, query string) {
	t0 := time.Now()
	sr, err := cfg.client.Search(context.Background(), &api.SearchRequest{
		Query: query, K: cfg.k, Algorithm: cfg.algo, Priority: cfg.priority,
	})
	switch {
	case err == nil:
		st.searchLat = append(st.searchLat, time.Since(t0))
		if sr.Coalesced {
			st.searchCoalesced++
		}
		if sr.Cached {
			st.searchCached++
		}
	case client.IsShed(err):
		// 429 is the server shedding load on purpose, not a failure.
		st.searchShed++
	default:
		st.searchErrs++
	}
}

// doUpdate inserts a fresh entity with two text attributes built from
// workload vocabulary. Each batch only references entities it creates
// (negative back-references), so concurrent batches commute and any
// admission order the server picks is valid.
func doUpdate(cfg workerConfig, st *workerStats, seq int) {
	var u kbtable.Update
	word := func() string { return cfg.vocab[cfg.rng.Intn(len(cfg.vocab))] }
	e := u.AddEntity("LoadEntity", fmt.Sprintf("%s %s w%d-%d", word(), word(), cfg.worker, seq))
	u.AddTextAttr(e, "Note", word()+" "+word())
	u.AddTextAttr(e, "Origin", fmt.Sprintf("kbload worker %d", cfg.worker))
	t0 := time.Now()
	_, err := cfg.client.Update(context.Background(), &api.UpdateRequest{Ops: u.Ops})
	switch {
	case err == nil:
		st.updateLat = append(st.updateLat, time.Since(t0))
	case client.IsShed(err):
		st.updateShed++
	default:
		st.updateErrs++
	}
}

func scrapeHealth(cl *client.Client) (*api.HealthResponse, error) {
	h, err := cl.Health(context.Background())
	if err != nil {
		return nil, fmt.Errorf("/healthz: %w", err)
	}
	return h, nil
}

func buildReport(addr, searchOp string, wall time.Duration, concurrency int, readRatio float64,
	results []workerStats, before, after *api.HealthResponse) *bench.LoadReport {
	var merged workerStats
	for _, r := range results {
		merged.searchLat = append(merged.searchLat, r.searchLat...)
		merged.updateLat = append(merged.updateLat, r.updateLat...)
		merged.searchErrs += r.searchErrs
		merged.updateErrs += r.updateErrs
		merged.searchShed += r.searchShed
		merged.updateShed += r.updateShed
		merged.searchCoalesced += r.searchCoalesced
		merged.searchCached += r.searchCached
	}
	search := bench.Percentiles(searchOp, merged.searchLat, wall, merged.searchErrs, merged.searchShed)
	search.Coalesced = merged.searchCoalesced
	search.CacheHits = merged.searchCached
	update := bench.Percentiles("update", merged.updateLat, wall, merged.updateErrs, merged.updateShed)

	report := &bench.LoadReport{
		Target:      addr,
		DurationSec: wall.Seconds(),
		Concurrency: concurrency,
		ReadRatio:   readRatio,
		Ops:         []bench.LoadOpStats{search, update},
	}
	if before != nil && after != nil {
		sc := bench.LoadServerCounters{
			Coalesced:        after.Serving.Coalesced - before.Serving.Coalesced,
			ShedQueueFull:    after.Serving.ShedQueueFull - before.Serving.ShedQueueFull,
			ShedQueueTimeout: after.Serving.ShedQueueTimeout - before.Serving.ShedQueueTimeout,
			Epoch:            after.Epoch,
		}
		if bd, ad := before.Durability, after.Durability; bd != nil && ad != nil {
			sc.GroupCommitBatches = ad.GroupCommitBatches - bd.GroupCommitBatches
			sc.GroupCommitRecords = ad.GroupCommitRecords - bd.GroupCommitRecords
			sc.GroupCommitMaxBatch = ad.GroupCommitMaxBatch
			sc.WALSeq = ad.WALSeq
			if sc.GroupCommitBatches > 0 {
				sc.GroupCommitAvgBatch = float64(sc.GroupCommitRecords) / float64(sc.GroupCommitBatches)
			}
		}
		report.Server = &sc
	}
	return report
}

// gate applies the -max-error-rate / -max-p99 CI thresholds.
func gate(r *bench.LoadReport, maxErrRate float64, maxP99 time.Duration) int {
	code := 0
	var reqs, errs uint64
	for _, op := range r.Ops {
		reqs += op.Requests + op.Errors
		errs += op.Errors
		if maxP99 > 0 && op.Requests > 0 && op.P99MS > float64(maxP99.Milliseconds()) {
			log.Printf("GATE: %s p99 %.1fms exceeds -max-p99 %v", op.Op, op.P99MS, maxP99)
			code = 1
		}
	}
	if maxErrRate >= 0 && reqs > 0 {
		rate := float64(errs) / float64(reqs)
		if rate > maxErrRate {
			log.Printf("GATE: error rate %.4f (%d/%d) exceeds -max-error-rate %.4f", rate, errs, reqs, maxErrRate)
			code = 1
		}
	}
	if reqs == 0 {
		log.Print("GATE: no requests completed")
		code = 1
	}
	return code
}
