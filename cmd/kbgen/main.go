// Command kbgen generates a synthetic knowledge base and writes it to a
// gob file loadable by kbsearch and kbindex.
//
// Usage:
//
//	kbgen -kind wiki -entities 20000 -types 150 -seed 1 -o wiki.kb
//	kbgen -kind imdb -movies 8000 -o imdb.kb
//	kbgen -kind fig1 -o fig1.kb
//	kbgen -kind wiki -scale 10 -o wiki10x.kb   # footprint-bench preset
package main

import (
	"flag"
	"fmt"
	"log"

	"kbtable/internal/dataset"
	"kbtable/internal/kg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbgen: ")
	kind := flag.String("kind", "wiki", "dataset kind: wiki, imdb, or fig1")
	entities := flag.Int("entities", 20000, "wiki: number of entities")
	types := flag.Int("types", 150, "wiki: number of entity types")
	movies := flag.Int("movies", 8000, "imdb: number of movies")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Int("scale", 1, "multiply entities/movies by this factor (e.g. -scale 10 for the bench-footprint preset)")
	out := flag.String("o", "kb.gob", "output file")
	flag.Parse()

	if *scale < 1 {
		log.Fatalf("-scale must be >= 1, got %d", *scale)
	}
	var g *kg.Graph
	switch *kind {
	case "wiki":
		g = dataset.SynthWiki(dataset.WikiConfig{Entities: *entities * *scale, Types: *types, Seed: *seed})
	case "imdb":
		g = dataset.SynthIMDB(dataset.IMDBConfig{Movies: *movies * *scale, Seed: *seed})
	case "fig1":
		g, _ = dataset.Fig1()
	default:
		log.Fatalf("unknown kind %q (want wiki, imdb, or fig1)", *kind)
	}
	if err := g.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("wrote %s: %d entities, %d edges, %d types, %d attribute types\n",
		*out, s.Nodes, s.Edges, s.Types, s.Attrs)
}
