// Command kbsearch answers keyword queries over a knowledge base with
// ranked table answers, interactively or one-shot.
//
// Usage:
//
//	kbsearch -kb wiki.kb -k 5 "washington city population"
//	kbsearch -kb imdb.kb            # interactive: one query per line
//	kbsearch -kb wiki.kb -shards 4  # partitioned indexes, scatter-gather
//	kbsearch -kb wiki.kb -algo auto -explain "city population"
//	kbsearch -kind fig1 "database software company revenue"
//
// With -server it queries a running kbserve (or cluster coordinator)
// over the typed /v1 client instead of building a local engine:
//
//	kbsearch -server http://localhost:8080 "city population"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"kbtable/internal/api"
	"kbtable/internal/client"
	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
	"kbtable/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbsearch: ")
	kbPath := flag.String("kb", "", "knowledge base file written by kbgen")
	kind := flag.String("kind", "", "generate instead of loading: wiki, imdb, or fig1")
	d := flag.Int("d", 3, "height threshold for tree patterns")
	k := flag.Int("k", 5, "number of table answers")
	algo := flag.String("algo", "pe", "algorithm: pe (PATTERNENUM), le (LINEARENUM), baseline, auto (cost-based planner)")
	explain := flag.Bool("explain", false, "print the resolved plan and per-stage timings for each query")
	rows := flag.Int("rows", 8, "max table rows to print per answer")
	shards := flag.Int("shards", 1, "partition candidate roots across this many index shards")
	format := flag.String("format", "table", "output format: table, csv, json, md")
	lambda := flag.Int64("lambda", 0, "LETopK sampling threshold Λ (0 = exact)")
	rho := flag.Float64("rho", 0.1, "LETopK sampling rate ρ")
	autoBias := flag.Float64("auto-bias", 0, "-algo auto: planner PE preference multiplier (0 = default 1; larger favors PE)")
	repeat := flag.Int("repeat", 1, "re-execute each query this many times through a prepared handle (prepare once, run enumerate/aggregate/rank per iteration) and report cold vs prepared timings")
	server := flag.String("server", "", "query a running kbserve at this base URL over the /v1 API instead of building a local engine")
	flag.Parse()

	if *server != "" {
		runRemote(*server, *k, *algo, *rows, *autoBias, *explain)
		return
	}

	var g *kg.Graph
	var err error
	switch {
	case *kbPath != "":
		g, err = kg.LoadFile(*kbPath)
		if err != nil {
			log.Fatal(err)
		}
	case *kind == "wiki":
		g = dataset.SynthWiki(dataset.WikiConfig{})
	case *kind == "imdb":
		g = dataset.SynthIMDB(dataset.IMDBConfig{})
	case *kind == "fig1":
		g, _ = dataset.Fig1()
	default:
		log.Fatal("provide -kb FILE or -kind {wiki,imdb,fig1}")
	}
	s := g.Stats()
	fmt.Printf("graph: %d entities, %d edges, %d types\n", s.Nodes, s.Edges, s.Types)

	t0 := time.Now()
	var ix *index.Index
	var se *shard.Engine
	if *shards > 1 {
		if se, err = shard.NewEngine(g, *shards, index.Options{D: *d}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("index: %d shards built in %v\n", *shards, time.Since(t0).Round(time.Millisecond))
	} else {
		if ix, err = index.Build(g, index.Options{D: *d}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("index: built in %v (%s)\n", time.Since(t0).Round(time.Millisecond), ix.Stats())
	}

	var salgo search.Algo
	var shalgo shard.Algo
	switch *algo {
	case "pe":
		salgo, shalgo = search.AlgoPE, shard.PatternEnum
	case "le":
		salgo, shalgo = search.AlgoLE, shard.LinearEnum
	case "baseline":
		salgo, shalgo = search.AlgoBaseline, shard.Baseline
	case "auto":
		salgo, shalgo = search.AlgoAuto, shard.Auto
	default:
		log.Fatalf("unknown -algo %q (want pe, le, baseline or auto)", *algo)
	}

	ex := search.Executor{Ix: ix}
	if salgo == search.AlgoBaseline && se == nil {
		if ex.BL, err = search.NewBaseline(g, search.BaselineOptions{D: *d}); err != nil {
			log.Fatal(err)
		}
	}

	// answer is one ranked pattern in algorithm- and shard-neutral form
	// (pattern IDs resolve in pt, which is per-shard under -shards).
	type answer struct {
		pattern core.TreePattern
		pt      *core.PatternTable
		score   float64
		count   int
		trees   []core.Subtree
	}
	// runPrepared re-executes q through a prepared handle: the prepare
	// stage (keyword resolution, posting lookups, planner probe) runs
	// once, each iteration runs only enumerate → aggregate → rank. The
	// report compares against the cold end-to-end elapsed time.
	runPrepared := func(q string, n int, cold time.Duration) {
		opts := search.Options{K: *k, Lambda: *lambda, Rho: *rho, MaxTreesPerPattern: *rows, AutoBias: *autoBias}
		ctx := context.Background()
		var exec func() (time.Duration, error)
		if se != nil {
			p, err := se.Prepare(ctx, shalgo, q, opts)
			if err != nil {
				log.Fatal(err)
			}
			exec = func() (time.Duration, error) {
				res, err := se.SearchPrepared(ctx, p, opts)
				if err != nil {
					return 0, err
				}
				return res.Stats.Elapsed, nil
			}
		} else {
			p, err := search.PrepareQuery(ctx, ix, q, salgo, opts)
			if err != nil {
				log.Fatal(err)
			}
			exec = func() (time.Duration, error) {
				res, err := search.ExecutePrepared(ctx, ix, p, p.Algo(), opts)
				if err != nil {
					return 0, err
				}
				return res.Stats.Elapsed, nil
			}
		}
		var total, min time.Duration
		for i := 0; i < n; i++ {
			d, err := exec()
			if err != nil {
				log.Fatal(err)
			}
			total += d
			if i == 0 || d < min {
				min = d
			}
		}
		avg := total / time.Duration(n)
		speedup := float64(cold) / float64(avg)
		fmt.Printf("prepared: %d executions, avg=%v min=%v (cold=%v, %.1fx)\n",
			n, avg.Round(time.Microsecond), min.Round(time.Microsecond),
			cold.Round(time.Microsecond), speedup)
	}

	run := func(q string) {
		opts := search.Options{K: *k, Lambda: *lambda, Rho: *rho, MaxTreesPerPattern: *rows, AutoBias: *autoBias}
		var answers []answer
		var surfaces []string
		var elapsed time.Duration
		var plan search.Plan
		var stages search.StageTimings
		if se != nil {
			res, err := se.Search(context.Background(), shalgo, q, opts)
			if err != nil {
				log.Fatal(err)
			}
			surfaces, elapsed = res.Stats.Surfaces, res.Stats.Elapsed
			plan, stages = res.Plan, res.Stats.Stages
			for _, rp := range res.Patterns {
				answers = append(answers, answer{pattern: rp.Pattern, pt: rp.Table, score: rp.Score, count: rp.Agg.Count, trees: rp.Trees})
			}
		} else {
			res, err := ex.Search(context.Background(), q, salgo, opts)
			if err != nil {
				log.Fatal(err)
			}
			surfaces, elapsed = res.Stats.Surfaces, res.Stats.Elapsed
			plan, stages = res.Plan, res.Stats.Stages
			pt := res.Table
			if pt == nil {
				pt = ix.PatternTable()
			}
			for _, rp := range res.Patterns {
				answers = append(answers, answer{pattern: rp.Pattern, pt: pt, score: rp.Score, count: rp.Agg.Count, trees: rp.Trees})
			}
		}
		fmt.Printf("\n%d pattern answers in %v\n", len(answers), elapsed.Round(time.Microsecond))
		if *explain {
			fmt.Printf("plan: algorithm=%s auto=%t\n", plan.Algo, plan.Auto)
			if plan.Reason != "" {
				fmt.Printf("      %s\n", plan.Reason)
			}
			fmt.Printf("      candidate_roots=%d root_types=%d pattern_space=%d frontier=%d\n",
				plan.Stats.CandidateRoots, plan.Stats.RootTypes, plan.Stats.PatternSpace, plan.Stats.Frontier)
			fmt.Printf("stages: prepare=%v enumerate=%v aggregate=%v rank=%v\n",
				stages.Prepare.Round(time.Microsecond), stages.Enumerate.Round(time.Microsecond),
				stages.Aggregate.Round(time.Microsecond), stages.Rank.Round(time.Microsecond))
		}
		if *repeat > 1 && salgo != search.AlgoBaseline {
			runPrepared(q, *repeat, elapsed)
		}
		for i, rp := range answers {
			tab := core.ComposeTable(g, rp.pt, rp.pattern, rp.trees)
			fmt.Printf("\n#%d  score=%.4f  rows=%d\n%s\n", i+1, rp.score, rp.count,
				rp.pattern.Render(g, rp.pt, surfaces))
			switch *format {
			case "table":
				fmt.Print(tab.Render(*rows))
			case "csv":
				if err := tab.WriteCSV(os.Stdout); err != nil {
					log.Fatal(err)
				}
			case "json":
				if err := tab.WriteJSON(os.Stdout); err != nil {
					log.Fatal(err)
				}
			case "md":
				fmt.Print(tab.Markdown(*rows))
			default:
				log.Fatalf("unknown -format %q", *format)
			}
		}
	}

	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	fmt.Println("enter keyword queries, one per line (ctrl-D to exit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		run(q)
	}
}

// runRemote drives queries through the typed /v1 client against a
// running server, one-shot or interactively.
func runRemote(base string, k int, algo string, rows int, autoBias float64, explain bool) {
	cl := client.New(base)
	wireAlgo := map[string]string{"pe": "patternenum", "le": "linearenum"}[algo]
	if wireAlgo == "" {
		wireAlgo = algo
	}
	run := func(q string) {
		resp, err := cl.Search(context.Background(), &api.SearchRequest{
			Query: q, K: k, Algorithm: wireAlgo, MaxRows: rows, AutoBias: autoBias,
		})
		if err != nil {
			log.Fatal(err)
		}
		cached := ""
		if resp.Cached {
			cached = " (cached)"
		}
		fmt.Printf("\n%d answers in %.3fms, epoch %d, algorithm %s%s\n",
			len(resp.Answers), resp.ElapsedMS, resp.Epoch, resp.Algorithm, cached)
		if explain && resp.Plan != nil {
			p := resp.Plan
			fmt.Printf("plan: algorithm=%s auto=%t\n", p.Algorithm, p.Auto)
			if p.Reason != "" {
				fmt.Printf("      %s\n", p.Reason)
			}
			fmt.Printf("      candidate_roots=%d root_types=%d pattern_space=%d frontier=%d\n",
				p.CandidateRoots, p.RootTypes, p.PatternSpace, p.Frontier)
			fmt.Printf("stages: prepare=%.3fms enumerate=%.3fms aggregate=%.3fms rank=%.3fms\n",
				p.PrepareMS, p.EnumerateMS, p.AggregateMS, p.RankMS)
		}
		for _, a := range resp.Answers {
			fmt.Printf("\n#%d  score=%.4f  rows=%d\n%s\n", a.Rank, a.Score, a.NumRows, a.Pattern)
			fmt.Println(strings.Join(a.Columns, " | "))
			for _, row := range a.Rows {
				fmt.Println(strings.Join(row, " | "))
			}
		}
	}
	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	fmt.Println("enter keyword queries, one per line (ctrl-D to exit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		run(q)
	}
}
