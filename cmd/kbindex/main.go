// Command kbindex builds the path-pattern indexes for a knowledge base at
// one or more height thresholds and reports construction cost — the
// quantities of the paper's Figure 6.
//
// Usage:
//
//	kbindex -kb wiki.kb -d 2,3,4
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"kbtable/internal/index"
	"kbtable/internal/kg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbindex: ")
	kbPath := flag.String("kb", "kb.gob", "knowledge base file written by kbgen")
	ds := flag.String("d", "3", "comma-separated height thresholds")
	workers := flag.Int("workers", 0, "construction workers (0 = GOMAXPROCS)")
	flag.Parse()

	g, err := kg.LoadFile(*kbPath)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("graph: %d entities, %d edges, %d types\n", s.Nodes, s.Edges, s.Types)
	fmt.Printf("%-4s %-10s %-10s %-12s %-10s\n", "d", "time", "size(MB)", "entries", "patterns")
	for _, part := range strings.Split(*ds, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -d value %q: %v", part, err)
		}
		ix, err := index.Build(g, index.Options{D: d, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		st := ix.Stats()
		fmt.Printf("%-4d %-10s %-10.1f %-12d %-10d\n",
			d, st.BuildTime.Round(1e6), float64(st.Bytes)/(1<<20), st.NumEntries, st.NumPatterns)
	}
}
