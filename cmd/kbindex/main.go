// Command kbindex builds the path-pattern indexes for a knowledge base at
// one or more height thresholds and reports construction cost — the
// quantities of the paper's Figure 6.
//
// With -snapshot it instead emits a durable snapshot directory (the
// format kbserve -data-dir recovers from): the serialized graph plus one
// checksummed index file per shard under a manifest, so a server cold
// start loads the index instead of rebuilding it.
//
// Usage:
//
//	kbindex -kb wiki.kb -d 2,3,4                  # report build costs
//	kbindex -kb wiki.kb -d 3 -snapshot ./data     # emit a snapshot
//	kbindex -kb wiki.kb -d 3 -shards 4 -snapshot ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"kbtable"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbindex: ")
	kbPath := flag.String("kb", "kb.gob", "knowledge base file written by kbgen")
	ds := flag.String("d", "3", "comma-separated height thresholds")
	workers := flag.Int("workers", 0, "construction workers (0 = GOMAXPROCS)")
	snapshot := flag.String("snapshot", "", "emit a durable snapshot directory (kbserve -data-dir format) instead of the cost report")
	shards := flag.Int("shards", 1, "-snapshot: partition candidate roots across this many index shards")
	uniformPR := flag.Bool("uniform-pr", false, "-snapshot: score with uniform PageRank")
	flag.Parse()

	if *snapshot != "" {
		emitSnapshot(*kbPath, *ds, *snapshot, *shards, *workers, *uniformPR)
		return
	}

	g, err := kg.LoadFile(*kbPath)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("graph: %d entities, %d edges, %d types\n", s.Nodes, s.Edges, s.Types)
	fmt.Printf("%-4s %-10s %-10s %-9s %-12s %-10s\n", "d", "time", "size(MB)", "B/entry", "entries", "patterns")
	for _, part := range strings.Split(*ds, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -d value %q: %v", part, err)
		}
		ix, err := index.Build(g, index.Options{D: d, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		st := ix.Stats()
		fmt.Printf("%-4d %-10s %-10.1f %-9.1f %-12d %-10d\n",
			d, st.BuildTime.Round(1e6), float64(st.Bytes)/(1<<20), st.BytesPerEntry(), st.NumEntries, st.NumPatterns)
	}
}

// emitSnapshot builds the engine once and checkpoints it into dir.
func emitSnapshot(kbPath, ds, dir string, shards, workers int, uniformPR bool) {
	d, err := strconv.Atoi(strings.TrimSpace(ds))
	if err != nil {
		log.Fatalf("-snapshot needs a single -d value, got %q", ds)
	}
	g, err := kbtable.LoadGraph(kbPath)
	if err != nil {
		log.Fatal(err)
	}
	st, err := kbtable.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if st.HasSnapshot() {
		log.Fatalf("%s already holds a snapshot; refusing to overwrite (serve it with kbserve -data-dir, or pick a fresh directory)", dir)
	}
	t0 := time.Now()
	eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{
		D: d, Shards: shards, Workers: workers, UniformPageRank: uniformPR,
	})
	if err != nil {
		log.Fatal(err)
	}
	build := time.Since(t0)
	cs, err := eng.Checkpoint(st)
	if err != nil {
		log.Fatal(err)
	}
	is := eng.IndexStats()
	fmt.Printf("graph: %d entities, %d attributes\n", g.NumEntities(), g.NumAttributes())
	fmt.Printf("index: d=%d, %d shard(s), %d entries, %.1f MB resident (%.1f B/entry), built in %v\n",
		d, max(1, shards), is.Entries, is.SizeMB, is.BytesPerEntry, build.Round(time.Millisecond))
	fmt.Printf("snapshot: %s — %d files, %.1f MB, written in %v\n",
		dir, cs.Files, float64(cs.Bytes)/(1<<20), cs.Elapsed.Round(time.Millisecond))
}
