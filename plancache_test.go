package kbtable

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kbtable/internal/search"
)

// The plan-cache / prepared-query property suite. The cache's one
// correctness obligation is that it never serves a stale plan: after any
// update, cached statistics must agree with a cache-bypassing probe of
// the NEW index, and prepared handles must answer exactly the bytes of
// the snapshot they are bound to. These tests drive random accepted
// update chains through both corpora and every shard width and pin those
// properties, plus the deterministic word-precise eviction granularity on
// the Figure 1 KB.

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"database, software; company (revenue)!", "database software company revenue"},
		{"  Foo   BAR  ", "foo bar"},
		{"foo,", "foo"},
		{"foo", "foo"},
		{"US$ 77 billion", "us 77 billion"},
		{"", ""},
		{"!!!", ""},
	}
	for _, c := range cases {
		if got := NormalizeQuery(c.in); got != c.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// probePlanStats recomputes a query's prepare-stage statistics directly
// against the engine's index, bypassing the plan cache — the oracle the
// cached path must always agree with.
func probePlanStats(t *testing.T, e *Engine, q string, opts SearchOptions) search.PlanStats {
	t.Helper()
	so := e.searchOptions(opts)
	var st search.PlanStats
	var err error
	if e.sh != nil {
		st, err = e.sh.PlanStats(context.Background(), q, so)
	} else {
		st, err = search.PlanProbe(context.Background(), e.ix, q, so)
	}
	if err != nil {
		t.Fatalf("probe %q: %v", q, err)
	}
	return st
}

func corpusQueries(name string) []string {
	for _, spec := range goldenCorpora() {
		if spec.name == name {
			return spec.queries
		}
	}
	return nil
}

// TestPlanCacheInvalidationProperty drives random accepted update batches
// through engine chains and asserts, after every update: (a) the cached
// statistics for every query equal a cache-bypassing probe of the new
// index, (b) the new chain's answers are byte-identical to a from-scratch
// engine over the same graph, (c) handles prepared on the superseded
// snapshot still answer that snapshot's bytes (snapshot semantics), while
// handles re-prepared on the successor answer the new bytes.
func TestPlanCacheInvalidationProperty(t *testing.T) {
	ctx := context.Background()
	for name, g := range autoCorpora(t) {
		queries := corpusQueries(name)
		for _, shards := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s/shards=%d", name, shards)
			rng := rand.New(rand.NewSource(int64(1000*len(name) + shards)))
			opts := SearchOptions{K: 10, Algorithm: Auto, MaxRowsPerTable: 6}
			eopts := EngineOptions{D: 3, Shards: shards, UniformPageRank: true}
			e, err := NewEngine(g, eopts)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 4; step++ {
				// Warm every shape on this snapshot and record its bytes.
				oldBytes := map[string]string{}
				oldPrep := map[string]*PreparedQuery{}
				for _, q := range queries {
					st, err := e.planStats(ctx, q, e.searchOptions(opts))
					if err != nil {
						t.Fatal(err)
					}
					if direct := probePlanStats(t, e, q, opts); !reflect.DeepEqual(st, direct) {
						t.Fatalf("%s/step %d/%q: cached stats diverge from probe:\n  cached %+v\n  probe  %+v",
							label, step, q, st, direct)
					}
					ans, _, err := e.SearchPlan(ctx, q, opts)
					if err != nil {
						t.Fatal(err)
					}
					oldBytes[q] = renderGolden(q, ans)
					p, err := e.Prepare(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					oldPrep[q] = p
				}
				// Repeat lookups on the warm snapshot must hit.
				pre := e.PlanCacheStats()
				if _, err := e.planStats(ctx, queries[0], e.searchOptions(opts)); err != nil {
					t.Fatal(err)
				}
				if post := e.PlanCacheStats(); post.Hits <= pre.Hits {
					t.Fatalf("%s/step %d: warm lookup missed (hits %d -> %d)", label, step, pre.Hits, post.Hits)
				}

				epochBefore := e.PlanCacheStats().Epoch
				u := randomBatchAccepted(t, rng, e)
				ne, _, err := e.ApplyUpdate(u)
				if err != nil {
					t.Fatal(err)
				}
				if ep := ne.PlanCacheStats().Epoch; ep <= epochBefore {
					t.Fatalf("%s/step %d: update did not fence the cache (epoch %d -> %d)",
						label, step, epochBefore, ep)
				}
				// From-scratch oracle over the updated graph: no cache,
				// no incremental state.
				fresh, err := NewEngine(ne.Graph(), eopts)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range queries {
					st, err := ne.planStats(ctx, q, ne.searchOptions(opts))
					if err != nil {
						t.Fatal(err)
					}
					if direct := probePlanStats(t, ne, q, opts); !reflect.DeepEqual(st, direct) {
						t.Fatalf("%s/step %d/%q: post-update cached stats stale:\n  cached %+v\n  probe  %+v",
							label, step, q, st, direct)
					}
					ans, _, err := ne.SearchPlan(ctx, q, opts)
					if err != nil {
						t.Fatal(err)
					}
					got := renderGolden(q, ans)
					fa, _, err := fresh.SearchPlan(ctx, q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if want := renderGolden(q, fa); got != want {
						t.Fatalf("%s/step %d/%q: updated chain diverges from rebuilt engine:\n%s",
							label, step, q, diffHint(want, got))
					}
					// Superseded handles keep answering the superseded
					// snapshot's bytes, exactly like an in-flight search.
					pa, _, err := oldPrep[q].Search(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if renderGolden(q, pa) != oldBytes[q] {
						t.Fatalf("%s/step %d/%q: superseded prepared handle changed its answers", label, step, q)
					}
					// A handle re-prepared on the successor answers the
					// new bytes — never the pre-update plan or answer.
					np, err := ne.Prepare(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					na, _, err := np.Search(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if renderGolden(q, na) != got {
						t.Fatalf("%s/step %d/%q: re-prepared handle diverges from fresh search", label, step, q)
					}
				}
				e = ne
			}
		}
	}
}

// TestPlanCacheWordPreciseInvalidation pins the eviction granularity: an
// update's touched words cover the D-neighborhood it changes, so a shape
// over a disconnected region of the KB survives the epoch bump and still
// hits — unrelated repeat traffic keeps skipping the probe — while the
// shape whose words were touched is evicted and must re-probe. Two
// disconnected islands make "unrelated" exact.
func TestPlanCacheWordPreciseInvalidation(t *testing.T) {
	ctx := context.Background()
	b := NewBuilder()
	sql := b.Entity("Software", "SQL Server")
	ms := b.Entity("Company", "Microsoft")
	b.Attr(sql, "Developer", ms)
	acme := b.Entity("Maker", "Acme")
	widget := b.Entity("Product", "Widget")
	b.Attr(widget, "Origin", acme)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{K: 5, Algorithm: Auto}
	const touchedQ = "acme widget"
	const disjointQ = "sql server microsoft"
	for _, q := range []string{touchedQ, disjointQ} {
		if _, err := e.planStats(ctx, q, e.searchOptions(opts)); err != nil {
			t.Fatal(err)
		}
	}

	var u Update
	u.AddTextAttr(int64(acme), "Output", "5 million units")
	ne, res, err := e.ApplyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScoresRefreshed {
		t.Fatalf("fixture update unexpectedly refreshed scores (flushes everything): %+v", res)
	}
	touched := map[string]struct{}{}
	for _, w := range res.TouchedWords {
		touched[w] = struct{}{}
	}
	overlaps := func(q string) bool {
		for _, w := range ne.QueryWords(q) {
			if _, ok := touched[w]; ok {
				return true
			}
		}
		return false
	}
	if !overlaps(touchedQ) || overlaps(disjointQ) {
		t.Fatalf("fixture update touched %v; want overlap with %q only", res.TouchedWords, touchedQ)
	}
	if st := ne.PlanCacheStats(); st.Invalidated == 0 {
		t.Fatalf("update touching a cached word evicted nothing: %+v", st)
	}

	// The disjoint shape survived the invalidation: hit at the new epoch.
	pre := ne.PlanCacheStats()
	if _, err := ne.planStats(ctx, disjointQ, ne.searchOptions(opts)); err != nil {
		t.Fatal(err)
	}
	mid := ne.PlanCacheStats()
	if mid.Hits != pre.Hits+1 {
		t.Fatalf("disjoint shape was evicted (hits %d -> %d)", pre.Hits, mid.Hits)
	}
	// The touched shape was evicted: its next lookup must re-probe.
	if _, err := ne.planStats(ctx, touchedQ, ne.searchOptions(opts)); err != nil {
		t.Fatal(err)
	}
	if post := ne.PlanCacheStats(); post.Misses != mid.Misses+1 {
		t.Fatalf("touched shape served a stale entry (misses %d -> %d)", mid.Misses, post.Misses)
	}
	// The superseded snapshot is fenced out entirely: even the surviving
	// disjoint entry is refused to the old epoch.
	preOld := e.PlanCacheStats()
	if _, err := e.planStats(ctx, disjointQ, e.searchOptions(opts)); err != nil {
		t.Fatal(err)
	}
	if post := e.PlanCacheStats(); post.Hits != preOld.Hits {
		t.Fatalf("superseded snapshot hit the post-update cache (hits %d -> %d)", preOld.Hits, post.Hits)
	}
}

// TestPlanCacheFlushOnScoreRefresh: a structural update under real
// PageRank rewrites score terms everywhere, so the whole cache flushes —
// even shapes word-disjoint from the update.
func TestPlanCacheFlushOnScoreRefresh(t *testing.T) {
	ctx := context.Background()
	seed, _ := fig1EngineForUpdate(t)
	e, err := NewEngine(seed.Graph(), EngineOptions{D: 3}) // real PageRank
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{K: 5, Algorithm: Auto}
	if _, err := e.planStats(ctx, "sql server", e.searchOptions(opts)); err != nil {
		t.Fatal(err)
	}
	var u Update
	oracle := u.AddEntity("Company", "Oracle Corp")
	odb := u.AddEntity("Software", "Oracle DB")
	u.AddAttr(odb, "Developer", oracle)
	ne, res, err := e.ApplyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScoresRefreshed {
		t.Fatalf("structural update under real PageRank did not refresh scores: %+v", res)
	}
	st := ne.PlanCacheStats()
	if st.Size != 0 {
		t.Fatalf("score refresh left %d cached entries", st.Size)
	}
	if st.Invalidated == 0 {
		t.Fatalf("score refresh invalidated nothing: %+v", st)
	}
	// Word-disjoint or not, the old entry is gone: the lookup re-probes.
	if _, err := ne.planStats(ctx, "sql server", ne.searchOptions(opts)); err != nil {
		t.Fatal(err)
	}
	if post := ne.PlanCacheStats(); post.Misses <= st.Misses {
		t.Fatalf("post-flush lookup did not re-probe (misses %d -> %d)", st.Misses, post.Misses)
	}
}

// TestPreparedMatchesFreshProperty: executing a prepared handle
// repeatedly yields answers byte-identical to a fresh end-to-end search
// with the same options, for every corpus, shard width, and preparable
// algorithm — and the resolved plan names the same algorithm. Baseline
// has no prepare stage and is rejected.
func TestPreparedMatchesFreshProperty(t *testing.T) {
	ctx := context.Background()
	for name, g := range autoCorpora(t) {
		queries := corpusQueries(name)
		for _, shards := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s/shards=%d", name, shards)
			e, err := NewEngine(g, EngineOptions{D: 3, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []Algorithm{PatternEnum, LinearEnum, Auto} {
				for _, q := range queries {
					opts := SearchOptions{K: 10, Algorithm: algo, MaxRowsPerTable: 6}
					p, err := e.Prepare(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					fresh, fpi, err := e.SearchPlan(ctx, q, opts)
					if err != nil {
						t.Fatal(err)
					}
					want := renderGolden(q, fresh)
					for i := 0; i < 3; i++ {
						ans, pi, err := p.Search(ctx)
						if err != nil {
							t.Fatal(err)
						}
						if pi.Algorithm != fpi.Algorithm {
							t.Fatalf("%s/%v/%q: prepared ran %v, fresh ran %v",
								label, algo, q, pi.Algorithm, fpi.Algorithm)
						}
						if got := renderGolden(q, ans); got != want {
							t.Errorf("%s/%v/%q execution %d: prepared diverges from fresh:\n%s",
								label, algo, q, i, diffHint(want, got))
						}
					}
				}
			}
			if _, err := e.Prepare(queries[0], SearchOptions{K: 5, Algorithm: Baseline}); err == nil {
				t.Fatalf("%s: Prepare accepted Baseline, which has no prepare stage", label)
			}
		}
	}
}
