package kbtable

// Multi-process cluster soak: a real coordinator, two shard owners, and
// a WAL-shipped replica as separate kbserve processes, a kbload soak
// through the coordinator, the full golden workload byte-diffed against
// the single-node answer files, then a SIGKILL of one owner (answers
// must not change) and of the coordinator (the replica must keep
// serving). The harness execs and SIGKILLs real processes, so it is
// opt-in like the cold-start matrix:
//
//	KBTABLE_CLUSTER=1 go test -run TestClusterSoak -v .

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestClusterSoak(t *testing.T) {
	if os.Getenv("KBTABLE_CLUSTER") == "" {
		t.Skip("set KBTABLE_CLUSTER=1 to run the cluster soak (execs 4 kbserve processes plus kbload, SIGKILLs members)")
	}
	serveBin := buildKBServe(t)
	loadBin := buildTool(t, "kbload")
	for _, spec := range goldenCorpora() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			runClusterSoak(t, serveBin, loadBin, spec)
		})
	}
}

func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runClusterSoak(t *testing.T, serveBin, loadBin string, spec corpusSpec) {
	work := t.TempDir()
	g := loadCorpus(t, filepath.Join("testdata", "corpus", spec.name+".txt"))
	kbPath := filepath.Join(work, spec.name+".kb")
	if err := g.Save(kbPath); err != nil {
		t.Fatal(err)
	}

	// Pick every member's address up front so the coordinator's
	// membership file can name followers that start later.
	coordAddr, n0Addr, n1Addr, r0Addr := freeAddr(t), freeAddr(t), freeAddr(t), freeAddr(t)
	memberFile := filepath.Join(work, "members")
	membership := fmt.Sprintf("n0 http://%s shards=0-1\nn1 http://%s shards=2\nr0 http://%s replica\n",
		n0Addr, n1Addr, r0Addr)
	if err := os.WriteFile(memberFile, []byte(membership), 0o644); err != nil {
		t.Fatal(err)
	}

	// The coordinator result cache is disabled so every post-kill rerun
	// actually re-executes the scatter instead of replaying the cache.
	coord := startKBServeAt(t, serveBin, coordAddr,
		"-kb", kbPath, "-shards", "3", "-cache", "-1",
		"-role", "coordinator", "-node-id", "c0", "-cluster", memberFile,
		"-data-dir", filepath.Join(work, "coord-data"))
	defer coord.kill()
	n0 := startKBServeAt(t, serveBin, n0Addr,
		"-kb", kbPath, "-shards", "3", "-cache", "-1",
		"-role", "node", "-node-id", "n0", "-shard-range", "0-1",
		"-source", coord.base, "-pull-interval", "50ms")
	defer n0.kill()
	n1 := startKBServeAt(t, serveBin, n1Addr,
		"-kb", kbPath, "-shards", "3", "-cache", "-1",
		"-role", "node", "-node-id", "n1", "-shard-range", "2",
		"-source", coord.base, "-pull-interval", "50ms")
	defer n1.kill()
	r0 := startKBServeAt(t, serveBin, r0Addr,
		"-kb", kbPath, "-shards", "3", "-cache", "-1",
		"-role", "replica", "-node-id", "r0",
		"-source", coord.base, "-pull-interval", "50ms")
	defer r0.kill()

	// kbload soak through the coordinator: search-only (the golden
	// byte-diff below needs the corpus unmodified), with the search
	// latency row named cluster_scatter so kbbench -compare folds it as
	// its own op.
	soakOut := filepath.Join(work, "cluster_soak.json")
	soak := exec.Command(loadBin,
		"-addr", coord.base, "-duration", "3s", "-concurrency", "8",
		"-read-ratio", "1", "-entities", "160", "-types", "12", "-seed", "42",
		"-k", "5", "-search-op", "cluster_scatter", "-out", soakOut,
		"-max-error-rate", "0.01")
	if out, err := soak.CombinedOutput(); err != nil {
		t.Fatalf("kbload soak: %v\n%s", err, out)
	}

	// Full golden workload through the scattering coordinator: the
	// answers must be byte-identical to the checked-in single-node
	// files, for every algorithm.
	checkGoldens := func(stage string) {
		for qi, q := range spec.queries {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", answerFileName(spec, qi)))
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []string{"patternenum", "linearenum", "auto"} {
				got := searchV1Rendered(t, coord.base, q, algo)
				if got != string(want) {
					t.Errorf("%s: %s (%s) diverges from the single-node golden:\n%s",
						stage, answerFileName(spec, qi), algo, diffHint(string(want), got))
				}
			}
		}
	}
	checkGoldens("full cluster")
	if remote := clusterRemoteLegs(t, coord.base); remote == 0 {
		t.Fatal("coordinator executed no remote shard legs — the cluster was never exercised")
	}

	// SIGKILL the owner of shard 2: its legs fail over (replica, then
	// coordinator-local) and answers must not change by a byte.
	n1.kill()
	checkGoldens("owner n1 killed")

	// An update through the coordinator ships over the WAL; the replica
	// must reach the coordinator's sequence.
	var u Update
	e := u.AddEntity("Company", "Soak Test Co")
	u.AddTextAttr(e, "Revenue", "US$ 1 billion")
	coord.update(t, u.Ops)
	wantSeq := shardsV1(t, coord.base).Seq
	if wantSeq == 0 {
		t.Fatal("coordinator reports seq 0 after an update")
	}
	deadline := time.Now().Add(10 * time.Second)
	for shardsV1(t, r0.base).Seq != wantSeq {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, want %d", shardsV1(t, r0.base).Seq, wantSeq)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Coordinator failover: kill it and read from the replica directly.
	coord.kill()
	resp := searchV1(t, r0.base, spec.queries[0], "patternenum")
	if resp.Epoch != wantSeq {
		t.Fatalf("replica serves epoch %d after coordinator death, want %d", resp.Epoch, wantSeq)
	}
	if sh := shardsV1(t, r0.base); sh.Role != "replica" || !sh.Complete {
		t.Fatalf("replica /v1/shards after failover: %+v", sh)
	}
}

type v1SearchResponse struct {
	Epoch   uint64 `json:"epoch"`
	Answers []struct {
		Rank        int        `json:"rank"`
		Score       float64    `json:"score"`
		NumRows     int        `json:"num_rows"`
		Pattern     string     `json:"pattern"`
		FullColumns []string   `json:"full_columns"`
		Rows        [][]string `json:"rows"`
	} `json:"answers"`
}

func searchV1(t *testing.T, base, query, algo string) v1SearchResponse {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"query": query, "k": goldenK, "max_rows": goldenRows, "algorithm": algo,
	})
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("search %q: %v", query, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("search %q: %d %s", query, resp.StatusCode, buf.String())
	}
	var sr v1SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("search %q: %v", query, err)
	}
	return sr
}

// searchV1Rendered renders a /v1/search response in the golden-file
// byte format (rank, %.17g score, formal columns, rows).
func searchV1Rendered(t *testing.T, base, query, algo string) string {
	t.Helper()
	sr := searchV1(t, base, query, algo)
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\nanswers: %d\n", query, len(sr.Answers))
	for _, a := range sr.Answers {
		fmt.Fprintf(&sb, "\n#%d score=%.17g rows=%d\n%s\n", a.Rank, a.Score, a.NumRows, a.Pattern)
		sb.WriteString(strings.Join(a.FullColumns, " | "))
		sb.WriteByte('\n')
		for _, row := range a.Rows {
			sb.WriteString(strings.Join(row, " | "))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

type v1ShardsResponse struct {
	Role     string `json:"role"`
	Complete bool   `json:"complete"`
	Seq      uint64 `json:"seq"`
}

func shardsV1(t *testing.T, base string) v1ShardsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sh v1ShardsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sh); err != nil {
		t.Fatal(err)
	}
	return sh
}

// clusterRemoteLegs sums the remote-leg counters from the coordinator's
// /healthz cluster block.
func clusterRemoteLegs(t *testing.T, base string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr struct {
		Cluster *struct {
			Nodes []struct {
				Remote uint64 `json:"remote"`
			} `json:"nodes"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Cluster == nil {
		t.Fatal("coordinator /healthz has no cluster block")
	}
	var remote uint64
	for _, n := range hr.Cluster.Nodes {
		remote += n.Remote
	}
	return remote
}
