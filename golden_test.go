package kbtable

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/kg"
)

// The golden-corpus regression suite pins end-to-end behavior — keyword
// resolution, enumeration, scoring, ranking, tie-breaks, table
// composition, rendering — against checked-in answer files over small
// fixed corpora. Every execution mode the engine offers (PATTERNENUM,
// LINEARENUM-TOPK, baseline × serial, parallel, sharded) must reproduce
// the same bytes: the engine's equivalence claims are not "close", they
// are exact, so the goldens hold for all of them.
//
// Regenerate (after an intentional behavior change) with:
//
//	go test -run TestGoldenCorpus -update
//
// which rewrites both the corpus dumps (testdata/corpus) and the answer
// files (testdata/golden) deterministically.

var updateGolden = flag.Bool("update", false, "rewrite golden corpus and answer files")

// goldenK and goldenRows fix the answer shape the goldens pin.
const (
	goldenK    = 10
	goldenRows = 6
)

// corpusSpec is one checked-in corpus with its frozen query workload.
type corpusSpec struct {
	name    string
	queries []string
	gen     func() *kg.Graph // -update regenerates the dump from this
}

func goldenCorpora() []corpusSpec {
	return []corpusSpec{
		{
			name: "wiki",
			gen: func() *kg.Graph {
				return dataset.SynthWiki(dataset.WikiConfig{Entities: 160, Types: 12, AttrVocab: 30, Vocab: 60, Seed: 42})
			},
			queries: []string{
				"washington",
				"washington city",
				"population river",
				"software company revenue",
				"database university",
				"album band",
				"movie actor director",
				"capital state",
				"book author publisher",
				"school season",
			},
		},
		{
			name: "imdb",
			gen: func() *kg.Graph {
				return dataset.SynthIMDB(dataset.IMDBConfig{Movies: 60, Seed: 42})
			},
			queries: []string{
				"taylor",
				"night star",
				"king taylor",
				"star man",
				"man secret",
				"story movie",
				"king movie",
				"star wilson",
				"night moore",
				"man director",
			},
		},
	}
}

// dumpCorpus writes g in the line-oriented corpus format:
//
//	E <id> <Type> <entity text>
//	A <src> <Attr> <dst>
//	T <src> <Attr> <literal text>
//
// E ids are the generator's node ids; loadCorpus remaps them, so only the
// file is authoritative, never the generator's numbering.
func dumpCorpus(g *kg.Graph) string {
	var sb strings.Builder
	sb.WriteString("# kbtable golden corpus — regenerate with `go test -run TestGoldenCorpus -update`\n")
	for v := 0; v < g.NumNodes(); v++ {
		id := kg.NodeID(v)
		if g.Type(id) == kg.LiteralType {
			continue // literals are emitted as T lines from their parent edge
		}
		fmt.Fprintf(&sb, "E %d %s %s\n", v, g.TypeName(g.Type(id)), g.Text(id))
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(kg.EdgeID(e))
		if g.Type(ed.Dst) == kg.LiteralType {
			fmt.Fprintf(&sb, "T %d %s %s\n", ed.Src, g.AttrName(ed.Attr), g.Text(ed.Dst))
		} else {
			fmt.Fprintf(&sb, "A %d %s %d\n", ed.Src, g.AttrName(ed.Attr), ed.Dst)
		}
	}
	return sb.String()
}

// loadCorpus rebuilds a Graph from a corpus dump through the public
// Builder API.
func loadCorpus(t *testing.T, path string) *Graph {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read corpus: %v (regenerate with -update)", err)
	}
	b := NewBuilder()
	ids := map[int64]EntityID{}
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, " ", 4)
		bad := func() { t.Fatalf("corpus line %d malformed: %q", ln+1, line) }
		if len(parts) < 3 {
			bad()
		}
		switch parts[0] {
		case "E":
			if len(parts) != 4 {
				bad()
			}
			id, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				bad()
			}
			ids[id] = b.Entity(parts[2], parts[3])
		case "A":
			if len(parts) != 4 {
				bad()
			}
			src, err1 := strconv.ParseInt(parts[1], 10, 64)
			dst, err2 := strconv.ParseInt(parts[3], 10, 64)
			if err1 != nil || err2 != nil {
				bad()
			}
			b.Attr(ids[src], parts[2], ids[dst])
		case "T":
			if len(parts) != 4 {
				bad()
			}
			src, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				bad()
			}
			b.TextAttr(ids[src], parts[2], parts[3])
		default:
			bad()
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// renderGolden snapshots answers at full fidelity: exact score bits, the
// resolved pattern, and the composed table.
func renderGolden(query string, answers []Answer) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\nanswers: %d\n", query, len(answers))
	for _, a := range answers {
		fmt.Fprintf(&sb, "\n#%d score=%.17g rows=%d\n%s\n", a.Rank, a.Score, a.NumRows, a.Pattern)
		sb.WriteString(strings.Join(a.FullColumns, " | "))
		sb.WriteByte('\n')
		for _, row := range a.Rows {
			sb.WriteString(strings.Join(row, " | "))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// goldenVariants are the execution modes that must reproduce the golden
// bytes exactly. Workers=1 vs 4 pins serial/parallel; Shards pins the
// scatter-gather engine; all three algorithms are exercised for each, and
// the staged variants pin the streaming executor (the default) against
// the staged ablation baseline byte-for-byte.
type goldenVariant struct {
	label   string
	workers int
	shards  int
	algo    Algorithm
	staged  bool
}

func goldenVariants() []goldenVariant {
	return []goldenVariant{
		{"pe-serial", 1, 0, PatternEnum, false}, // the reference that writes the goldens
		{"pe-parallel", 4, 0, PatternEnum, false},
		{"le-serial", 1, 0, LinearEnum, false},
		{"le-parallel", 4, 0, LinearEnum, false},
		{"baseline-serial", 1, 0, Baseline, false},
		{"baseline-parallel", 4, 0, Baseline, false},
		{"pe-sharded2", 0, 2, PatternEnum, false},
		{"pe-sharded5", 0, 5, PatternEnum, false},
		{"le-sharded3", 0, 3, LinearEnum, false},
		{"baseline-sharded4", 0, 4, Baseline, false},
		// The planner may pick either algorithm per query; whatever it
		// picks must reproduce the same golden bytes.
		{"auto-serial", 1, 0, Auto, false},
		{"auto-parallel", 4, 0, Auto, false},
		{"auto-sharded3", 0, 3, Auto, false},
		// The staged baseline must reproduce the streaming goldens across
		// serial, parallel and sharded execution for every algorithm.
		{"pe-serial-staged", 1, 0, PatternEnum, true},
		{"pe-parallel-staged", 4, 0, PatternEnum, true},
		{"le-serial-staged", 1, 0, LinearEnum, true},
		{"le-parallel-staged", 4, 0, LinearEnum, true},
		{"pe-sharded2-staged", 0, 2, PatternEnum, true},
		{"le-sharded3-staged", 0, 3, LinearEnum, true},
		{"auto-serial-staged", 1, 0, Auto, true},
		{"auto-sharded3-staged", 0, 3, Auto, true},
	}
}

func TestGoldenCorpus(t *testing.T) {
	for _, spec := range goldenCorpora() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			corpusPath := filepath.Join("testdata", "corpus", spec.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(corpusPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(corpusPath, []byte(dumpCorpus(spec.gen())), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			g := loadCorpus(t, corpusPath)

			// One engine per (workers, shards) configuration, shared
			// across queries and algorithms.
			engines := map[string]*Engine{}
			engineFor := func(v goldenVariant) *Engine {
				key := fmt.Sprintf("w%d-s%d", v.workers, v.shards)
				if e, ok := engines[key]; ok {
					return e
				}
				e, err := NewEngine(g, EngineOptions{D: 3, Workers: v.workers, Shards: v.shards})
				if err != nil {
					t.Fatal(err)
				}
				engines[key] = e
				return e
			}

			for qi, q := range spec.queries {
				goldenPath := filepath.Join("testdata", "golden",
					fmt.Sprintf("%s_%02d_%s.golden", spec.name, qi+1, strings.ReplaceAll(q, " ", "-")))
				var want string
				for _, v := range goldenVariants() {
					answers, err := engineFor(v).SearchOpts(q, SearchOptions{
						K: goldenK, Algorithm: v.algo, MaxRowsPerTable: goldenRows, Staged: v.staged,
					})
					if err != nil {
						t.Fatal(err)
					}
					got := renderGolden(q, answers)
					if v.label == "pe-serial" {
						if *updateGolden {
							if len(answers) == 0 {
								t.Fatalf("query %q has no answers; pick a different golden query", q)
							}
							if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
								t.Fatal(err)
							}
							if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
								t.Fatal(err)
							}
						}
						data, err := os.ReadFile(goldenPath)
						if err != nil {
							t.Fatalf("read golden: %v (regenerate with -update)", err)
						}
						want = string(data)
					}
					if got != want {
						t.Errorf("%s diverges from golden %s:\n%s", v.label, goldenPath, diffHint(want, got))
					}
				}
			}
		})
	}
}

// diffHint points at the first differing line to keep failures readable.
func diffHint(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: golden %d lines, got %d lines", len(wl), len(gl))
}
