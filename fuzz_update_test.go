package kbtable

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fuzzUpdateState is the shared immutable ground truth FuzzUpdateOps
// checks rejected updates against: the base engine plus its rendered
// answers for a fixed probe workload. Engines are copy-on-write, so many
// fuzz workers can share one.
var (
	fuzzUpdOnce    sync.Once
	fuzzUpdEng     *Engine
	fuzzUpdProbes  = []string{"database software", "software company revenue", "revenue"}
	fuzzUpdAnswers map[string]string
)

func fuzzUpdateEngine(t testing.TB) (*Engine, map[string]string) {
	fuzzUpdOnce.Do(func() {
		b := NewBuilder()
		sql := b.Entity("Software", "SQL Server")
		ms := b.Entity("Company", "Microsoft")
		model := b.Entity("Model", "Relational database")
		b.Attr(sql, "Developer", ms)
		b.Attr(sql, "Genre", model)
		b.TextAttr(ms, "Revenue", "US$ 77 billion")
		g, err := b.Build()
		if err != nil {
			return
		}
		eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
		if err != nil {
			return
		}
		answers := make(map[string]string, len(fuzzUpdProbes))
		for _, q := range fuzzUpdProbes {
			answers[q] = renderAll(eng, q)
		}
		fuzzUpdEng, fuzzUpdAnswers = eng, answers
	})
	if fuzzUpdEng == nil {
		t.Fatal("engine build failed")
	}
	return fuzzUpdEng, fuzzUpdAnswers
}

// renderAll snapshots an engine's answers for one probe query at full
// fidelity.
func renderAll(eng *Engine, q string) string {
	answers, err := eng.Search(q, 10)
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	for _, a := range answers {
		sb.WriteString(a.Render(-1))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FuzzUpdateOps decodes arbitrary bytes as an update-op batch and applies
// it: malformed JSON and invalid batches must be rejected without panics
// AND without side effects — the original engine must keep answering
// exactly as before (ApplyUpdate promises atomicity and copy-on-write).
// Accepted batches must yield a functioning new engine.
func FuzzUpdateOps(f *testing.F) {
	seed := func(u Update) {
		data, err := json.Marshal(u.Ops)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	var ok Update
	pg := ok.AddEntity("Software", "Postgres")
	ok.AddAttr(pg, "Genre", 2)
	ok.AddTextAttr(pg, "License", "open source")
	seed(ok)
	var rm Update
	rm.RemoveEdge(0, "Developer", 1)
	rm.SetText(1, "Microsoft Corporation")
	seed(rm)
	var bad Update
	bad.RemoveEntity(99999) // out of range: must reject atomically
	bad.AddEntity("Software", "never applied")
	seed(bad)
	f.Add([]byte(`[{"op":"add_attr","src":-5,"attr":"Genre","dst":0}]`))
	f.Add([]byte(`[{"op":"nonsense"}]`))
	f.Add([]byte(`[{"op":"add_entity","type":"","text":""}]`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`[{"op":"remove_entity"}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		eng, golden := fuzzUpdateEngine(t)
		var ops []UpdateOp
		if err := json.Unmarshal(data, &ops); err != nil {
			return // not an op batch; decoding itself must not panic
		}
		ne, res, err := eng.ApplyUpdate(Update{Ops: ops})
		if err != nil {
			// Rejected: the receiver must answer byte-identically to its
			// pre-update ground truth.
			if ne != nil {
				t.Fatalf("rejected update returned an engine: %v", err)
			}
			for _, q := range fuzzUpdProbes {
				if got := renderAll(eng, q); got != golden[q] {
					t.Fatalf("rejected update (%v) changed answers for %q:\nbefore:\n%s\nafter:\n%s",
						err, q, golden[q], got)
				}
			}
			return
		}
		// Accepted: the new engine must answer without panicking and
		// report a consistent result, while the old engine still serves
		// its snapshot unchanged.
		if ne == nil {
			t.Fatal("accepted update returned nil engine")
		}
		if res.Entities != ne.Graph().NumEntities() || res.Attributes != ne.Graph().NumAttributes() {
			t.Fatalf("result totals %d/%d disagree with graph %d/%d",
				res.Entities, res.Attributes, ne.Graph().NumEntities(), ne.Graph().NumAttributes())
		}
		for _, q := range fuzzUpdProbes {
			_ = renderAll(ne, q)
			if got := renderAll(eng, q); got != golden[q] {
				t.Fatalf("applied update mutated the OLD engine's answers for %q", q)
			}
		}
	})
}
