package kbtable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
	"kbtable/internal/shard"
	"kbtable/internal/store"
)

// Durability: a Store pairs an engine with a data directory holding a
// snapshot store and a write-ahead update log (internal/store). The
// contract mirrors the in-memory engine exactly:
//
//   - Engine.Checkpoint serializes the engine — graph, per-shard
//     indexes, ownership table, shard epochs — into a checksummed
//     snapshot directory and truncates the WAL it covers.
//   - Engine.ApplyLogged applies an update batch and, on success,
//     appends it to the WAL (fsync) before returning; the batch is
//     durable when ApplyLogged returns.
//   - OpenDir / Store.Recover loads the newest snapshot and replays the
//     WAL suffix through the same ApplyUpdate code path the live engine
//     ran, arriving at a bit-identical engine: searches over the
//     recovered engine produce byte-identical answers. A torn final WAL
//     record (crash mid-append) is discarded cleanly — it was never
//     acknowledged — and never double-applied.
//
// Updates applied with plain ApplyUpdate are NOT logged and will not
// survive a restart; a durable serving path must use ApplyLogged for
// every mutation.

// ErrNoSnapshot reports that a data directory holds no snapshot yet:
// recover by building an Engine from its source (NewEngine) and
// Checkpoint-ing it into the store.
var ErrNoSnapshot = store.ErrNoSnapshot

// ErrDurability marks failures of the durable layer itself (a WAL
// append that could not be made durable), as opposed to an invalid
// update batch: the batch was valid, but could not be persisted.
var ErrDurability = errors.New("kbtable: durability failure")

// Store is an open durable data directory.
type Store struct {
	s *store.Store

	mu sync.Mutex // serializes ApplyLogged chains against each other
}

// StoreOptions tunes the durable layer. The zero value is the default
// configuration (group commit on, batch cap 128, no artificial delay).
type StoreOptions struct {
	// GroupCommitMaxBatch caps how many WAL records share one fsync
	// (<=0 = default 128).
	GroupCommitMaxBatch int
	// GroupCommitMaxDelay is how long the committer holds a non-full
	// batch open for stragglers before paying the fsync (0 = commit
	// immediately; a solo append sees no added latency either way).
	GroupCommitMaxDelay time.Duration
}

func (o StoreOptions) storeOpts() []store.Option {
	var opts []store.Option
	if o.GroupCommitMaxBatch > 0 || o.GroupCommitMaxDelay > 0 {
		opts = append(opts, store.WithGroupCommit(o.GroupCommitMaxBatch, o.GroupCommitMaxDelay))
	}
	return opts
}

// OpenStore opens (creating if needed) a durable data directory. The
// WAL tail is scanned and any torn suffix truncated, so the store is
// immediately ready for appends.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreOpts(dir, StoreOptions{})
}

// OpenStoreOpts is OpenStore with explicit durable-layer tuning.
func OpenStoreOpts(dir string, so StoreOptions) (*Store, error) {
	s, err := store.Open(dir, so.storeOpts()...)
	if err != nil {
		return nil, fmt.Errorf("kbtable: %w", err)
	}
	return &Store{s: s}, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.s.Dir() }

// Close releases the store's WAL tail. All acknowledged updates are
// already durable; Close is not a flush point.
func (s *Store) Close() error { return s.s.Close() }

// HasSnapshot reports whether the directory holds a loadable snapshot.
func (s *Store) HasSnapshot() bool { return s.s.Stats().HasSnapshot }

// StoreStats describes the store for monitoring surfaces (kbserve's
// /healthz durability block).
type StoreStats struct {
	// Dir is the data directory.
	Dir string
	// LastSeq is the last durable WAL sequence (0 before any append).
	LastSeq uint64
	// SnapshotSeq is the newest snapshot's WAL position; WAL records in
	// (SnapshotSeq, LastSeq] would replay on recovery.
	SnapshotSeq uint64
	// HasSnapshot reports whether any snapshot exists yet.
	HasSnapshot bool
	// WALBytes is the live WAL size in bytes.
	WALBytes int64
	// TornOnOpen / DroppedBytes report that opening found (and
	// truncated) an invalid WAL suffix — the signature of a crash
	// mid-append.
	TornOnOpen   bool
	DroppedBytes int64
	// Broken reports a failed WAL append: every further ApplyLogged is
	// refused (ErrDurability) until the process restarts. Surface it —
	// a "healthy" server that rejects all writes is an outage.
	Broken bool
	// Group-commit batching: how many fsyncs covered how many records
	// (Records/Batches is the average batch size), the largest batch,
	// and a batch-size histogram with upper bounds 1,2,4,...,64,+Inf.
	GroupCommitBatches  uint64
	GroupCommitRecords  uint64
	GroupCommitMaxBatch int
	GroupCommitHist     [8]uint64
}

// Stats returns current store counters.
func (s *Store) Stats() StoreStats {
	st := s.s.Stats()
	return StoreStats{
		Dir:                 s.s.Dir(),
		LastSeq:             st.LastSeq,
		SnapshotSeq:         st.SnapshotSeq,
		HasSnapshot:         st.HasSnapshot,
		WALBytes:            st.WALBytes,
		TornOnOpen:          st.TornOnOpen,
		DroppedBytes:        st.DroppedBytes,
		Broken:              st.Broken,
		GroupCommitBatches:  st.GroupCommit.Batches,
		GroupCommitRecords:  st.GroupCommit.Records,
		GroupCommitMaxBatch: st.GroupCommit.MaxBatch,
		GroupCommitHist:     st.GroupCommit.Hist,
	}
}

// Seq returns the last WAL sequence number reflected in this engine
// snapshot (0 for engines never attached to a Store).
func (e *Engine) Seq() uint64 { return e.seq }

// walRecord is the WAL payload: one accepted update batch as JSON (the
// same declarative UpdateOp schema the HTTP API speaks).
type walRecord struct {
	Ops []UpdateOp `json:"ops"`
}

// ErrWALGap reports that a WAL read cursor points at history the store
// no longer holds: a checkpoint GC'd the segments past the cursor, so a
// follower at that position cannot catch up incrementally and must be
// reseeded from a snapshot.
var ErrWALGap = errors.New("kbtable: wal history gap")

// WALRecord is one committed update batch read back from the WAL — the
// unit of replication a cluster follower pulls and replays through
// ApplyUpdate (the exact path the coordinator applied it through).
type WALRecord struct {
	Seq uint64     `json:"seq"`
	Ops []UpdateOp `json:"ops"`
}

// ReadWAL returns up to max committed records with sequence > after, in
// order (max <= 0 means a default batch of 512). Safe to call while the
// store is appending: the scan stops cleanly before any record that is
// still in flight. Returns ErrWALGap when records past the cursor were
// checkpointed away.
func (s *Store) ReadWAL(after uint64, max int) ([]WALRecord, error) {
	if max <= 0 {
		max = 512
	}
	var out []WALRecord
	errLimit := errors.New("kbtable: wal read limit")
	st, err := s.s.Replay(after, func(seq uint64, payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("kbtable: decode wal record %d: %w", seq, err)
		}
		out = append(out, WALRecord{Seq: seq, Ops: rec.Ops})
		if len(out) >= max {
			return errLimit
		}
		return nil
	})
	if err != nil && !errors.Is(err, errLimit) {
		return nil, err
	}
	if st.Torn && st.Records == 0 && after < s.s.Stats().SnapshotSeq {
		return nil, fmt.Errorf("%w: records after seq %d were checkpointed away", ErrWALGap, after)
	}
	return out, nil
}

// ApplyLogged is ApplyUpdate plus durability: the batch is validated
// and applied in memory first, and only an accepted batch is appended
// to the write-ahead log (fsync) before ApplyLogged returns — so the
// WAL holds exactly the update history that executed, and a batch is
// durable by the time any caller can observe its engine. On a WAL
// append failure the new engine is discarded (the receiver keeps
// serving) and the store refuses further appends, because the tail can
// no longer be trusted.
func (e *Engine) ApplyLogged(s *Store, u Update) (*Engine, UpdateResult, error) {
	if s == nil {
		return nil, UpdateResult{}, errors.New("kbtable: ApplyLogged needs a store")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ne, res, err := e.ApplyUpdate(u)
	if err != nil {
		return nil, res, err
	}
	payload, err := json.Marshal(walRecord{Ops: u.Ops})
	if err != nil {
		return nil, res, fmt.Errorf("kbtable: encode update for wal: %w", err)
	}
	seq, err := s.s.Append(payload)
	if err != nil {
		return nil, res, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	ne.seq = seq
	return ne, res, nil
}

// Commit is an in-flight durable update from ApplyLoggedAsync: the
// batch is applied in memory but not yet fsynced. Wait blocks until the
// WAL record is durable (possibly group-committed alongside other
// in-flight updates) and stamps the engine with its sequence number.
type Commit struct {
	p   *store.Pending
	eng *Engine
}

// Wait blocks until the update is durable. On success the engine
// returned by ApplyLoggedAsync carries the assigned WAL sequence; on
// failure that engine must be discarded (its update never became
// durable and the store refuses further appends).
func (c *Commit) Wait() (uint64, error) {
	seq, err := c.p.Wait()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	c.eng.seq = seq
	return seq, nil
}

// ApplyLoggedAsync is the pipelined form of ApplyLogged: it applies the
// batch in memory and ENQUEUES the WAL record for group commit, but
// returns before the record is durable. The caller must not publish the
// new engine (or acknowledge the update) until Commit.Wait succeeds.
//
// Unlike ApplyLogged it does not serialize callers: the caller owns the
// apply chain and must call ApplyLoggedAsync serially, each call on the
// engine returned by the previous one — enqueue order is WAL order.
// This is what lets a serving layer overlap the in-memory apply of
// update N+1 with the fsync of update N, the core of the group-commit
// throughput win.
func (e *Engine) ApplyLoggedAsync(s *Store, u Update) (*Engine, UpdateResult, *Commit, error) {
	if s == nil {
		return nil, UpdateResult{}, nil, errors.New("kbtable: ApplyLoggedAsync needs a store")
	}
	ne, res, err := e.ApplyUpdate(u)
	if err != nil {
		return nil, res, nil, err
	}
	payload, err := json.Marshal(walRecord{Ops: u.Ops})
	if err != nil {
		return nil, res, nil, fmt.Errorf("kbtable: encode update for wal: %w", err)
	}
	return ne, res, &Commit{p: s.s.AppendAsync(payload), eng: ne}, nil
}

// CheckpointStats reports what one Checkpoint wrote.
type CheckpointStats struct {
	// Seq is the WAL position the snapshot covers.
	Seq uint64
	// Bytes is the snapshot's total size (0 when skipped).
	Bytes int64
	// Files counts the snapshot's data files (graph + indexes + owners).
	Files int
	// Skipped reports that a snapshot at Seq already existed.
	Skipped bool
	// Elapsed is the wall-clock time spent writing.
	Elapsed time.Duration
}

// Checkpoint writes the engine's full state — graph, per-shard indexes,
// ownership table, shard epochs — as a new snapshot covering the
// engine's WAL position, then truncates the WAL records the snapshot
// absorbed and removes the snapshot it supersedes. The engine is
// immutable, so Checkpoint can run concurrently with searches and with
// ApplyLogged on NEWER engines in the chain (the background-checkpoint
// pattern kbserve uses); it must not run on an engine carrying unlogged
// ApplyUpdate results.
func (e *Engine) Checkpoint(s *Store) (CheckpointStats, error) {
	if s == nil {
		return CheckpointStats{}, errors.New("kbtable: Checkpoint needs a store")
	}
	start := time.Now()
	cs := CheckpointStats{Seq: e.seq}
	if st := s.s.Stats(); st.HasSnapshot && st.SnapshotSeq == e.seq {
		cs.Skipped = true
		return cs, nil
	}
	m := store.Manifest{
		Seq:              e.seq,
		D:                e.o.D,
		Shards:           e.o.Shards,
		Nodes:            e.g.g.NumNodes(),
		Edges:            e.g.g.NumEdges(),
		UniformPR:        e.o.UniformPageRank,
		Synonyms:         e.o.Synonyms,
		IndexWireVersion: index.WireVersion,
	}
	files := map[string]func(io.Writer) error{
		store.GraphFileName: e.g.g.Encode,
	}
	if e.sh != nil {
		m.Epochs = e.sh.Epochs()
		owners := e.sh.Owners()
		files[store.OwnersFileName] = func(w io.Writer) error {
			_, err := w.Write(owners)
			return err
		}
		for si := 0; si < e.sh.NumShards(); si++ {
			si := si
			files[store.IndexFileName(si)] = func(w io.Writer) error {
				return e.sh.EncodeShard(si, w)
			}
		}
	} else {
		files[store.IndexFileName(0)] = e.ix.Encode
	}
	n, err := s.s.Checkpoint(m, files)
	if errors.Is(err, store.ErrSnapshotCurrent) {
		// A concurrent checkpoint covering the same sequence won the
		// race past the pre-check above; that is a skip, not a failure.
		cs.Skipped = true
		return cs, nil
	}
	if err != nil {
		return cs, fmt.Errorf("kbtable: checkpoint: %w", err)
	}
	cs.Bytes = n
	cs.Files = len(files)
	cs.Elapsed = time.Since(start)
	return cs, nil
}

// RecoverStats describes one recovery: where the snapshot stood, how
// much WAL replayed on top, and whether a torn tail was discarded.
type RecoverStats struct {
	// SnapshotSeq is the loaded snapshot's WAL position.
	SnapshotSeq uint64
	// Seq is the recovered engine's final WAL position.
	Seq uint64
	// Replayed counts the WAL update batches re-applied.
	Replayed int
	// TornTail reports that the WAL ended in an invalid record (the
	// signature of a crash mid-append) that was discarded; recovery
	// stopped cleanly at the last good record.
	TornTail bool
	// Shards is the recovered engine's shard count (1 = unsharded).
	Shards int
	// SnapshotLoad / Replay split the recovery wall-clock time.
	SnapshotLoad time.Duration
	Replay       time.Duration
}

// Recover rebuilds the engine from the newest snapshot plus the WAL
// suffix. The recovered engine is equivalent to the in-memory engine
// that executed the same logged history: searches produce byte-
// identical answers, and further ApplyLogged chains continue where the
// log left off. Returns ErrNoSnapshot (wrapped) for a fresh directory.
//
// opts.Workers (and other runtime-only options) come from the caller;
// the build-time options — D, Shards, UniformPageRank, Synonyms — come
// from the snapshot manifest, and a non-zero caller value that
// contradicts the manifest is an error rather than a silent rebuild.
func (s *Store) Recover(opts EngineOptions) (*Engine, RecoverStats, error) {
	var rs RecoverStats
	sn, err := s.s.Snapshot()
	if err != nil {
		return nil, rs, fmt.Errorf("kbtable: %w", err)
	}
	m := sn.Manifest
	if opts.D != 0 && opts.D != m.D {
		return nil, rs, fmt.Errorf("kbtable: snapshot was built with d=%d, requested d=%d", m.D, opts.D)
	}
	if opts.Shards != 0 && opts.Shards != m.Shards && !(opts.Shards == 1 && m.Shards == 0) {
		return nil, rs, fmt.Errorf("kbtable: snapshot has %d shards, requested %d (re-shard by rebuilding and checkpointing)", m.Shards, opts.Shards)
	}
	opts.D = m.D
	opts.Shards = m.Shards
	opts.UniformPageRank = m.UniformPR
	opts.Synonyms = m.Synonyms

	t0 := time.Now()
	eng, err := loadSnapshot(sn, opts)
	if err != nil {
		return nil, rs, err
	}
	rs.SnapshotSeq = m.Seq
	rs.Shards = 1
	if m.Shards > 1 {
		rs.Shards = m.Shards
	}
	rs.SnapshotLoad = time.Since(t0)

	t1 := time.Now()
	st, err := s.s.Replay(m.Seq, func(seq uint64, payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("kbtable: wal record %d: %w", seq, err)
		}
		ne, _, err := eng.ApplyUpdate(Update{Ops: rec.Ops})
		if err != nil {
			return fmt.Errorf("kbtable: wal record %d does not apply: %w", seq, err)
		}
		ne.seq = seq
		eng = ne
		return nil
	})
	if err != nil {
		return nil, rs, err
	}
	rs.Replayed = st.Records
	rs.TornTail = st.Torn || s.s.Stats().TornOnOpen
	rs.Seq = eng.seq
	rs.Replay = time.Since(t1)
	return eng, rs, nil
}

// loadSnapshot materializes an engine from a verified snapshot, loading
// shard indexes in parallel.
func loadSnapshot(sn *store.Snapshot, opts EngineOptions) (*Engine, error) {
	m := sn.Manifest
	gb, err := sn.ReadFile(store.GraphFileName)
	if err != nil {
		return nil, fmt.Errorf("kbtable: %w", err)
	}
	g, err := kg.ReadFrom(bytes.NewReader(gb))
	if err != nil {
		return nil, fmt.Errorf("kbtable: %w", err)
	}
	if g.NumNodes() != m.Nodes || g.NumEdges() != m.Edges {
		return nil, fmt.Errorf("kbtable: snapshot graph has %d nodes/%d edges, manifest says %d/%d",
			g.NumNodes(), g.NumEdges(), m.Nodes, m.Edges)
	}

	nix := sn.NumIndexFiles()
	want := 1
	if m.Shards > 1 {
		want = m.Shards
	}
	if nix != want {
		return nil, fmt.Errorf("kbtable: snapshot holds %d index files for %d shards", nix, want)
	}

	// Every shard file is independent: read + verify + decode in parallel.
	ixs := make([]*index.Index, want)
	errs := make([]error, want)
	var wg sync.WaitGroup
	for si := 0; si < want; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			data, err := sn.ReadFile(store.IndexFileName(si))
			if err != nil {
				errs[si] = err
				return
			}
			ixs[si], errs[si] = index.Load(bytes.NewReader(data), g)
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("kbtable: %w", err)
		}
	}
	for si, ix := range ixs {
		if ix.D() != m.D {
			return nil, fmt.Errorf("kbtable: shard %d index has d=%d, manifest says d=%d", si, ix.D(), m.D)
		}
	}

	eng := &Engine{g: &Graph{g: g}, o: opts, seq: m.Seq, plans: search.NewPlanCache(0)}
	if m.Shards > 1 {
		owners, err := sn.ReadFile(store.OwnersFileName)
		if err != nil {
			return nil, fmt.Errorf("kbtable: %w", err)
		}
		sh, err := shard.FromParts(g, owners, ixs, m.Epochs, index.Options{
			D:         opts.D,
			UniformPR: opts.UniformPageRank,
			Synonyms:  opts.Synonyms,
			Workers:   opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("kbtable: %w", err)
		}
		eng.sh = sh
	} else {
		eng.ix = ixs[0]
	}
	return eng, nil
}

// OpenDir opens a data directory and recovers its engine in one step:
// load the newest snapshot, replay the WAL suffix, return the engine
// ready to serve plus the store for further ApplyLogged/Checkpoint
// calls. For a fresh directory it returns ErrNoSnapshot (wrapped) with
// a nil engine and the store still OPEN, so the caller seeds without
// re-scanning the directory:
//
//	eng, st, rs, err := kbtable.OpenDir(dir, opts)
//	if errors.Is(err, kbtable.ErrNoSnapshot) {
//		eng, _ = kbtable.NewEngine(g, opts)
//		_, err = eng.Checkpoint(st)
//	}
//
// Any other error closes the store before returning.
func OpenDir(dir string, opts EngineOptions) (*Engine, *Store, RecoverStats, error) {
	return OpenDirOpts(dir, opts, StoreOptions{})
}

// OpenDirOpts is OpenDir with explicit durable-layer tuning.
func OpenDirOpts(dir string, opts EngineOptions, so StoreOptions) (*Engine, *Store, RecoverStats, error) {
	s, err := OpenStoreOpts(dir, so)
	if err != nil {
		return nil, nil, RecoverStats{}, err
	}
	eng, rs, err := s.Recover(opts)
	if err != nil {
		if errors.Is(err, ErrNoSnapshot) {
			return nil, s, rs, err
		}
		s.Close()
		return nil, nil, rs, err
	}
	return eng, s, rs, nil
}
