package kbtable

import (
	"strings"
	"testing"
)

// buildFig1Public rebuilds the paper's Figure 1 graph through the public
// API only.
func buildFig1Public(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder()
	sql := b.Entity("Software", "SQL Server")
	rel := b.Entity("Model", "Relational database")
	ms := b.Entity("Company", "Microsoft")
	gates := b.Entity("Person", "Bill Gates")
	odb := b.Entity("Software", "Oracle DB")
	ordb := b.Entity("Model", "O-R database")
	oc := b.Entity("Company", "Oracle Corp")
	book := b.Entity("Book", "Handbook of Database Software")
	spr := b.Entity("Company", "Springer")
	b.Attr(sql, "Genre", rel)
	b.Attr(sql, "Developer", ms)
	b.Attr(sql, "Reference", book)
	b.TextAttr(ms, "Revenue", "US$ 77 billion")
	b.Attr(ms, "Founder", gates)
	b.Attr(odb, "Genre", ordb)
	b.Attr(odb, "Developer", oc)
	b.TextAttr(oc, "Revenue", "US$ 37 billion")
	b.Attr(book, "Publisher", spr)
	b.TextAttr(spr, "Revenue", "US$ 1 billion")
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestEngineQuickstart(t *testing.T) {
	g := buildFig1Public(t)
	if g.NumEntities() != 12 || g.NumTypes() == 0 {
		t.Errorf("graph shape wrong: %d entities", g.NumEntities())
	}
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	answers, err := eng.Search("database software company revenue", 10)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(answers) == 0 {
		t.Fatalf("no answers")
	}
	top := answers[0]
	if top.Rank != 1 || top.NumRows != 2 || len(top.Rows) != 2 {
		t.Errorf("top answer should be the two-row P1 table: %+v", top)
	}
	rendered := top.Render(-1)
	for _, want := range []string{"SQL Server", "Oracle DB", "US$ 77 billion", "US$ 37 billion"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
	if !strings.Contains(top.Pattern, "(Software) (Developer) (Company) (Revenue)") {
		t.Errorf("pattern description wrong:\n%s", top.Pattern)
	}
}

func TestEngineAlgorithmsAgree(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	q := "database software company revenue"
	pe, err := eng.SearchOpts(q, SearchOptions{K: 50, Algorithm: PatternEnum})
	if err != nil {
		t.Fatal(err)
	}
	le, err := eng.SearchOpts(q, SearchOptions{K: 50, Algorithm: LinearEnum})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := eng.SearchOpts(q, SearchOptions{K: 50, Algorithm: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if len(pe) != len(le) || len(pe) != len(bl) {
		t.Fatalf("answer counts differ: %d %d %d", len(pe), len(le), len(bl))
	}
	for i := range pe {
		if pe[i].Score != le[i].Score {
			t.Errorf("rank %d: PE score %v != LE score %v", i, pe[i].Score, le[i].Score)
		}
		if pe[i].Score != bl[i].Score {
			t.Errorf("rank %d: PE score %v != BL score %v", i, pe[i].Score, bl[i].Score)
		}
	}
}

func TestEngineUnknownKeyword(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := eng.Search("quasar", 5)
	if err != nil {
		t.Fatalf("unknown keyword must not error: %v", err)
	}
	if len(answers) != 0 {
		t.Errorf("unknown keyword should give no answers")
	}
}

func TestEngineStats(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 2, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.IndexStats()
	if s.D != 2 || s.Entries == 0 || s.Patterns == 0 || s.SizeMB <= 0 {
		t.Errorf("stats look wrong: %+v", s)
	}
}

func TestEngineMaxRows(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := eng.SearchOpts("database software company revenue", SearchOptions{K: 1, MaxRowsPerTable: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || len(answers[0].Rows) != 1 {
		t.Fatalf("row cap not applied")
	}
	if answers[0].NumRows != 2 {
		t.Errorf("NumRows should report the uncapped count, got %d", answers[0].NumRows)
	}
}

func TestGraphSaveLoad(t *testing.T) {
	g := buildFig1Public(t)
	path := t.TempDir() + "/kb.gob"
	if err := g.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	if g2.NumEntities() != g.NumEntities() || g2.NumAttributes() != g.NumAttributes() {
		t.Errorf("roundtrip changed the graph")
	}
	// The loaded graph is queryable.
	eng, err := NewEngine(g2, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := eng.Search("microsoft founder", 5)
	if err != nil || len(answers) == 0 {
		t.Errorf("loaded graph not queryable: %v, %d answers", err, len(answers))
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := NewEngine(nil, EngineOptions{}); err == nil {
		t.Errorf("nil graph must error")
	}
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SearchOpts("x", SearchOptions{Algorithm: Algorithm(42)}); err == nil {
		t.Errorf("unknown algorithm must error")
	}
}

func TestAlgorithmString(t *testing.T) {
	if PatternEnum.String() != "PETopK" || LinearEnum.String() != "LETopK" ||
		Baseline.String() != "Baseline" || Algorithm(9).String() != "unknown" {
		t.Errorf("Algorithm.String wrong")
	}
}

func TestEngineSampling(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sampling on a tiny graph must still return correct exact scores for
	// survivors (they are re-scored exactly). A survivor may fall outside
	// the exact top-3 — that is the sampling error Theorem 5 bounds — but
	// its reported score must match the pattern's true score, so compare
	// against the scores of ALL exact patterns.
	exact, _ := eng.SearchOpts("database software", SearchOptions{K: 10000, Algorithm: LinearEnum})
	sampled, _ := eng.SearchOpts("database software", SearchOptions{K: 3, Algorithm: LinearEnum, Lambda: 1, Rho: 0.9, Seed: 5})
	exactScores := map[float64]bool{}
	for _, a := range exact {
		exactScores[a.Score] = true
	}
	for _, a := range sampled {
		if !exactScores[a.Score] {
			t.Errorf("sampled survivor has non-exact score %v", a.Score)
		}
	}
}
