package kbtable

import (
	"path/filepath"
	"sync"
	"testing"
)

var (
	fuzzEngOnce sync.Once
	fuzzEng     *Engine
)

func fuzzEngine(t testing.TB) *Engine {
	fuzzEngOnce.Do(func() {
		b := NewBuilder()
		sql := b.Entity("Software", "SQL Server")
		ms := b.Entity("Company", "Microsoft")
		model := b.Entity("Model", "Relational database")
		b.Attr(sql, "Developer", ms)
		b.Attr(sql, "Genre", model)
		b.TextAttr(ms, "Revenue", "US$ 77 billion")
		g, err := b.Build()
		if err != nil {
			return
		}
		fuzzEng, _ = NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	})
	if fuzzEng == nil {
		t.Fatal("engine build failed")
	}
	return fuzzEng
}

// FuzzSearchNeverPanics: arbitrary query strings (any bytes) must never
// panic any of the three algorithms, and results must be rank-consistent.
func FuzzSearchNeverPanics(f *testing.F) {
	f.Add("database software", int64(0))
	f.Add("", int64(1))
	f.Add("revenue revenue revenue", int64(2))
	f.Add("\x00\xff\xfe", int64(3))
	f.Add("a b c d e f g h i j k l m n o p q r s", int64(4))
	f.Fuzz(func(t *testing.T, q string, mode int64) {
		eng := fuzzEngine(t)
		algo := Algorithm(uint64(mode) % 3)
		answers, err := eng.SearchOpts(q, SearchOptions{K: 5, Algorithm: algo})
		if err != nil {
			t.Fatalf("SearchOpts(%q, %v) errored: %v", q, algo, err)
		}
		for i, a := range answers {
			if a.Rank != i+1 {
				t.Fatalf("rank %d mislabeled as %d", i+1, a.Rank)
			}
			if i > 0 && a.Score > answers[i-1].Score {
				t.Fatalf("answers not sorted at %d", i)
			}
			for _, row := range a.Rows {
				if len(row) != len(a.Columns) {
					t.Fatalf("ragged table for %q", q)
				}
			}
		}
		if _, err := eng.SearchTrees(q, 3); err != nil {
			t.Fatalf("SearchTrees(%q): %v", q, err)
		}
		_ = eng.Explain(q)
	})
}

// fuzzGraph deterministically decodes arbitrary bytes into a small valid
// knowledge base, so the fuzzer explores graph shapes rather than builder
// error paths.
func fuzzGraph(data []byte) (*Graph, error) {
	types := []string{"Doc", "Tag", "User"}
	attrs := []string{"links", "cites", "owns"}
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	i := 0
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := int(data[i%len(data)])
		i++
		return b + i // mix the cursor in so runs of equal bytes still vary
	}
	b := NewBuilder()
	n := 2 + next()%10
	ids := make([]EntityID, n)
	for v := 0; v < n; v++ {
		txt := vocab[next()%len(vocab)]
		if next()%3 == 0 {
			txt += " " + vocab[next()%len(vocab)]
		}
		ids[v] = b.Entity(types[next()%len(types)], txt)
	}
	ne := next() % (2 * n)
	for e := 0; e < ne; e++ {
		src := ids[next()%n]
		if next()%5 == 0 {
			b.TextAttr(src, attrs[next()%len(attrs)], vocab[next()%len(vocab)])
		} else {
			b.Attr(src, attrs[next()%len(attrs)], ids[next()%n])
		}
	}
	return b.Build()
}

// FuzzIndexRoundTrip: for arbitrary graphs, saving the path-pattern index
// and loading it back (through internal/index's wire format) must yield an
// engine whose search results are identical to the original's, for both
// index-driven algorithms.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, "alpha")
	f.Add([]byte{0xff, 0x00, 0x7f, 0x10}, "alpha beta")
	f.Add([]byte("abcdefghij"), "gamma links")
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, "")
	f.Fuzz(func(t *testing.T, data []byte, q string) {
		g, err := fuzzGraph(data)
		if err != nil {
			t.Fatalf("fuzzGraph: %v", err)
		}
		d := 2 + len(data)%2
		eng, err := NewEngine(g, EngineOptions{D: d, UniformPageRank: true})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		path := filepath.Join(t.TempDir(), "ix")
		if err := eng.SaveIndex(path); err != nil {
			t.Fatalf("SaveIndex: %v", err)
		}
		loaded, err := NewEngineFromIndex(g, path, EngineOptions{UniformPageRank: true})
		if err != nil {
			t.Fatalf("NewEngineFromIndex: %v", err)
		}
		if a, b := eng.IndexStats(), loaded.IndexStats(); a.Entries != b.Entries || a.Patterns != b.Patterns || a.D != b.D {
			t.Fatalf("index stats differ after round-trip: %+v vs %+v", a, b)
		}
		for _, query := range []string{q, "alpha", "beta gamma", "alpha links"} {
			for _, algo := range []Algorithm{PatternEnum, LinearEnum} {
				want, err := eng.SearchOpts(query, SearchOptions{K: 5, Algorithm: algo})
				if err != nil {
					t.Fatalf("original %v(%q): %v", algo, query, err)
				}
				got, err := loaded.SearchOpts(query, SearchOptions{K: 5, Algorithm: algo})
				if err != nil {
					t.Fatalf("loaded %v(%q): %v", algo, query, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v(%q): %d vs %d answers after round-trip", algo, query, len(got), len(want))
				}
				for i := range want {
					if got[i].Render(-1) != want[i].Render(-1) {
						t.Fatalf("%v(%q) answer %d differs after round-trip:\n%s\nvs\n%s",
							algo, query, i, got[i].Render(-1), want[i].Render(-1))
					}
				}
			}
		}
	})
}
