package kbtable

import (
	"sync"
	"testing"
)

var (
	fuzzEngOnce sync.Once
	fuzzEng     *Engine
)

func fuzzEngine(t testing.TB) *Engine {
	fuzzEngOnce.Do(func() {
		b := NewBuilder()
		sql := b.Entity("Software", "SQL Server")
		ms := b.Entity("Company", "Microsoft")
		model := b.Entity("Model", "Relational database")
		b.Attr(sql, "Developer", ms)
		b.Attr(sql, "Genre", model)
		b.TextAttr(ms, "Revenue", "US$ 77 billion")
		g, err := b.Build()
		if err != nil {
			return
		}
		fuzzEng, _ = NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	})
	if fuzzEng == nil {
		t.Fatal("engine build failed")
	}
	return fuzzEng
}

// FuzzSearchNeverPanics: arbitrary query strings (any bytes) must never
// panic any of the three algorithms, and results must be rank-consistent.
func FuzzSearchNeverPanics(f *testing.F) {
	f.Add("database software", int64(0))
	f.Add("", int64(1))
	f.Add("revenue revenue revenue", int64(2))
	f.Add("\x00\xff\xfe", int64(3))
	f.Add("a b c d e f g h i j k l m n o p q r s", int64(4))
	f.Fuzz(func(t *testing.T, q string, mode int64) {
		eng := fuzzEngine(t)
		algo := Algorithm(uint64(mode) % 3)
		answers, err := eng.SearchOpts(q, SearchOptions{K: 5, Algorithm: algo})
		if err != nil {
			t.Fatalf("SearchOpts(%q, %v) errored: %v", q, algo, err)
		}
		for i, a := range answers {
			if a.Rank != i+1 {
				t.Fatalf("rank %d mislabeled as %d", i+1, a.Rank)
			}
			if i > 0 && a.Score > answers[i-1].Score {
				t.Fatalf("answers not sorted at %d", i)
			}
			for _, row := range a.Rows {
				if len(row) != len(a.Columns) {
					t.Fatalf("ragged table for %q", q)
				}
			}
		}
		if _, err := eng.SearchTrees(q, 3); err != nil {
			t.Fatalf("SearchTrees(%q): %v", q, err)
		}
		_ = eng.Explain(q)
	})
}
