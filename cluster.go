package kbtable

// Cluster facade: the engine-level surfaces a multi-node deployment is
// built from. An owner node hosts a PARTIAL sharded engine (only its
// owned shards' indexes, built over the full graph so each is
// content-identical to the same shard of a full engine) and serves
// per-shard query legs; a coordinator holds a FULL sharded engine,
// scatters the planner probe and the enumerate→aggregate legs to owners,
// and gathers the per-shard per-root partials with the same Theorem-5
// fold the in-process scatter uses — so cluster answers are bit-identical
// to a single-node run. The HTTP transport lives in internal/cluster;
// everything exactness-critical lives here and in internal/shard.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kbtable/internal/search"
	"kbtable/internal/shard"
)

// ErrPartialEngine reports a whole-query operation on an engine that
// hosts only a subset of its shard partition (EngineOptions.OwnedShards).
var ErrPartialEngine = errors.New("kbtable: partial engine hosts only its owned shards")

// ShardPartial is one shard's complete scatter output in wire form: the
// patterns it discovered (as content-keyed path sequences, independent of
// any shard-local interning) with their per-root partial aggregates.
type ShardPartial = shard.WirePartial

// ShardPlanStats is one shard's planner-probe statistics in wire form.
type ShardPlanStats = shard.WirePlanStats

// OwnedShards returns the sorted list of shards resident on this engine
// (nil for unsharded engines; all shards for a full sharded engine).
func (e *Engine) OwnedShards() []int {
	if e.sh == nil {
		return nil
	}
	var out []int
	for si := 0; si < e.sh.NumShards(); si++ {
		if e.sh.Resident(si) {
			out = append(out, si)
		}
	}
	return out
}

// Complete reports whether the engine can answer whole queries (every
// shard resident, or unsharded).
func (e *Engine) Complete() bool {
	return e.sh == nil || e.sh.Complete()
}

// ProbeShard runs the prepare-only planner probe on one resident shard —
// an owner node's leg of a scattered cluster probe. Per-shard statistics
// merged in ascending shard order (MergeShardPlanStats) equal the full
// engine's own probe merge.
func (e *Engine) ProbeShard(ctx context.Context, si int, query string, opts SearchOptions) (ShardPlanStats, error) {
	if e.sh == nil {
		return ShardPlanStats{}, errors.New("kbtable: ProbeShard requires a sharded engine")
	}
	st, err := e.sh.ProbeShard(ctx, si, query, e.searchOptions(opts))
	if err != nil {
		return ShardPlanStats{}, fmt.Errorf("kbtable: %w", err)
	}
	return st, nil
}

// MergeShardPlanStats folds per-shard probe statistics in ascending
// shard order, exactly as an in-process probe merges them.
func MergeShardPlanStats(parts []ShardPlanStats) ShardPlanStats {
	return shard.MergeWirePlanStats(parts)
}

// ScatterShard runs one resident shard's scatter leg under an already
// resolved algorithm (never Auto; Baseline stays in process) and returns
// the wire partial an exact cluster gather consumes.
func (e *Engine) ScatterShard(ctx context.Context, si int, algorithm Algorithm, query string, opts SearchOptions) (*ShardPartial, error) {
	if e.sh == nil {
		return nil, errors.New("kbtable: ScatterShard requires a sharded engine")
	}
	algo, err := shardAlgo(algorithm)
	if err != nil {
		return nil, err
	}
	p, err := e.sh.ScatterShard(ctx, si, algo, query, e.searchOptions(opts))
	if err != nil {
		return nil, fmt.Errorf("kbtable: %w", err)
	}
	return p, nil
}

// ShardExecutor runs one shard's leg of a distributed query, possibly on
// a remote owner node. An error from either method makes the coordinator
// fall back to executing that leg on its own resident shard, so a
// transport-level executor never has to be correct — only fast.
type ShardExecutor interface {
	ProbeShard(ctx context.Context, si int, query string, opts SearchOptions) (ShardPlanStats, error)
	ScatterShard(ctx context.Context, si int, algorithm Algorithm, query string, opts SearchOptions) (*ShardPartial, error)
}

// SearchDistributed answers a query by scattering the planner probe and
// the per-shard enumerate→aggregate legs through exec, then gathering
// the partials with the canonical fold on the local (full) engine.
// Answers are bit-identical to SearchPlan on the same engine: remote
// legs return the exact partial the local scatter would have produced
// (content-identical indexes), and any leg that fails — node down, stale
// replica, transport error — is re-run locally. Baseline queries gather
// concrete trees rather than per-root aggregates and execute entirely
// locally.
func (e *Engine) SearchDistributed(ctx context.Context, exec ShardExecutor, query string, opts SearchOptions) ([]Answer, PlanInfo, error) {
	if e.sh == nil {
		return nil, PlanInfo{}, errors.New("kbtable: SearchDistributed requires a sharded engine")
	}
	if !e.sh.Complete() {
		return nil, PlanInfo{}, ErrPartialEngine
	}
	algo, err := shardAlgo(opts.Algorithm)
	if err != nil {
		return nil, PlanInfo{}, err
	}
	so := e.searchOptions(opts)
	start := time.Now()
	n := e.sh.NumShards()

	// Resolve Auto once, coordinator-side: plan-cache hit, else a probe
	// scattered to the owners (merged ascending — the planner's choice
	// over scattered statistics equals its choice over a local probe).
	var plan search.Plan
	if algo == shard.Auto {
		if cached, hit := e.cachedAutoPlan(query, so, true); hit {
			plan = cached
		} else {
			st, err := e.scatterProbe(ctx, exec, query, opts, so)
			if err != nil {
				return nil, PlanInfo{}, err
			}
			plan = search.ChoosePlan(search.AlgoAuto, st, so)
			e.rememberPlanStats(query, st)
		}
		algo, err = shardAlgo(facadeAlgo(plan.Algo))
		if err != nil {
			return nil, PlanInfo{}, err
		}
	} else {
		salgo, err := searchAlgo(opts.Algorithm)
		if err != nil {
			return nil, PlanInfo{}, err
		}
		plan = search.Plan{Algo: salgo}
	}

	// The baseline's scatter gathers concrete trees, not per-root
	// aggregates; it stays a local execution.
	if algo == shard.Baseline {
		res, err := e.sh.SearchWithPlan(ctx, plan, query, so)
		if err != nil {
			return nil, PlanInfo{}, fmt.Errorf("kbtable: %w", err)
		}
		return e.shardAnswers(res), planInfo(res.Plan, res.Stats), nil
	}
	probed := time.Now()

	resolved := facadeAlgo(plan.Algo)
	partials := make([]*ShardPartial, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			p, err := exec.ScatterShard(ctx, si, resolved, query, opts)
			if err != nil {
				p, err = e.ScatterShard(ctx, si, resolved, query, opts)
			}
			partials[si], errs[si] = p, err
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, PlanInfo{}, fmt.Errorf("kbtable: %w", err)
		}
	}

	res, err := e.sh.GatherPartials(ctx, start, probed, plan, query, partials, so)
	if err != nil {
		return nil, PlanInfo{}, fmt.Errorf("kbtable: %w", err)
	}
	return e.shardAnswers(res), planInfo(res.Plan, res.Stats), nil
}

// scatterProbe runs the per-shard planner probe through exec (failed
// legs fall back to the local resident shard) and merges the statistics
// in ascending shard order — the exact fold an in-process probe uses.
func (e *Engine) scatterProbe(ctx context.Context, exec ShardExecutor, query string, opts SearchOptions, so search.Options) (search.PlanStats, error) {
	n := e.sh.NumShards()
	parts := make([]ShardPlanStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			st, err := exec.ProbeShard(ctx, si, query, opts)
			if err != nil {
				st, err = e.sh.ProbeShard(ctx, si, query, so)
			}
			parts[si], errs[si] = st, err
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return search.PlanStats{}, fmt.Errorf("kbtable: %w", err)
		}
	}
	return shard.FromWirePlanStats(shard.MergeWirePlanStats(parts)), nil
}

// PlanDistributed mirrors Plan — resolve the execution plan without
// executing — with the per-shard prepare probe scattered through exec.
// A plan-cache hit for the query's word set skips the scatter entirely;
// a miss populates the cache, so the following SearchDistributed reuses
// the scattered statistics instead of probing again.
func (e *Engine) PlanDistributed(ctx context.Context, exec ShardExecutor, query string, opts SearchOptions) (PlanInfo, error) {
	if e.sh == nil {
		return e.Plan(ctx, query, opts)
	}
	if !e.sh.Complete() {
		return PlanInfo{}, ErrPartialEngine
	}
	so := e.searchOptions(opts)
	algo, err := searchAlgo(opts.Algorithm)
	if err != nil {
		return PlanInfo{}, err
	}
	words := e.QueryWords(query)
	key := search.PlanCacheKey(words)
	if e.plans != nil {
		if st, ok := e.plans.Get(key, e.planEpoch); ok {
			return planInfo(search.ChoosePlan(algo, st, so), search.QueryStats{}), nil
		}
	}
	st, err := e.scatterProbe(ctx, exec, query, opts, so)
	if err != nil {
		return PlanInfo{}, err
	}
	if e.plans != nil {
		e.plans.Put(key, e.planEpoch, st, words)
	}
	return planInfo(search.ChoosePlan(algo, st, so), search.QueryStats{}), nil
}
