package kbtable

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// The cluster facade's exactness contract: scattering per-shard legs to
// owner engines (through a JSON wire round-trip, as internal/cluster
// does over HTTP) and gathering the partials on a full coordinator
// engine reproduces SearchPlan's answers bit for bit — including when
// some legs fail and fall back to local execution.

// wireExec routes shard legs to partial owner engines through a JSON
// encode/decode of every wire value, like the HTTP transport does.
type wireExec struct {
	owners map[int]*Engine // shard -> owner engine
	failed map[int]bool    // shards whose owner is "down"
	calls  atomic.Int64    // legs run concurrently
}

func (x *wireExec) ownerFor(si int) (*Engine, error) {
	if x.failed[si] {
		return nil, errors.New("owner down")
	}
	e, ok := x.owners[si]
	if !ok {
		return nil, fmt.Errorf("no owner for shard %d", si)
	}
	return e, nil
}

func (x *wireExec) ProbeShard(ctx context.Context, si int, query string, opts SearchOptions) (ShardPlanStats, error) {
	x.calls.Add(1)
	e, err := x.ownerFor(si)
	if err != nil {
		return ShardPlanStats{}, err
	}
	st, err := e.ProbeShard(ctx, si, query, opts)
	if err != nil {
		return ShardPlanStats{}, err
	}
	var rt ShardPlanStats
	return rt, roundTrip(st, &rt)
}

func (x *wireExec) ScatterShard(ctx context.Context, si int, algorithm Algorithm, query string, opts SearchOptions) (*ShardPartial, error) {
	x.calls.Add(1)
	e, err := x.ownerFor(si)
	if err != nil {
		return nil, err
	}
	p, err := e.ScatterShard(ctx, si, algorithm, query, opts)
	if err != nil {
		return nil, err
	}
	var rt ShardPartial
	if err := roundTrip(p, &rt); err != nil {
		return nil, err
	}
	return &rt, nil
}

func roundTrip(in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

func TestSearchDistributedMatchesLocal(t *testing.T) {
	const shards = 3
	g := loadCorpus(t, "testdata/corpus/wiki.txt")
	coord, err := NewEngine(g, EngineOptions{D: 3, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	ownerA, err := NewEngine(g, EngineOptions{D: 3, Shards: shards, OwnedShards: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ownerB, err := NewEngine(g, EngineOptions{D: 3, Shards: shards, OwnedShards: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	exec := &wireExec{owners: map[int]*Engine{0: ownerA, 1: ownerA, 2: ownerB}}

	queries := goldenCorpora()[0].queries
	for _, algo := range []Algorithm{PatternEnum, LinearEnum, Auto} {
		for _, q := range queries {
			opts := SearchOptions{K: goldenK, Algorithm: algo, MaxRowsPerTable: goldenRows}
			want, wantPlan, err := coord.SearchPlan(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("%v %q local: %v", algo, q, err)
			}
			got, gotPlan, err := coord.SearchDistributed(context.Background(), exec, q, opts)
			if err != nil {
				t.Fatalf("%v %q distributed: %v", algo, q, err)
			}
			if lw, lg := renderGolden(q, want), renderGolden(q, got); lw != lg {
				t.Fatalf("%v %q: distributed answers differ\nlocal:\n%s\ndistributed:\n%s", algo, q, lw, lg)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%v %q: answer structs differ", algo, q)
			}
			if gotPlan.Algorithm != wantPlan.Algorithm {
				t.Fatalf("%v %q: resolved %v distributed vs %v local", algo, q, gotPlan.Algorithm, wantPlan.Algorithm)
			}
		}
	}
	if exec.calls.Load() == 0 {
		t.Fatal("executor never consulted")
	}
}

func TestSearchDistributedFallback(t *testing.T) {
	const shards = 3
	g := loadCorpus(t, "testdata/corpus/imdb.txt")
	coord, err := NewEngine(g, EngineOptions{D: 3, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewEngine(g, EngineOptions{D: 3, Shards: shards, OwnedShards: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1's owner is down: its probe and scatter legs must fall back
	// to the coordinator's local execution without changing any byte.
	exec := &wireExec{
		owners: map[int]*Engine{0: owner, 1: owner, 2: owner},
		failed: map[int]bool{1: true},
	}
	for _, q := range goldenCorpora()[1].queries {
		opts := SearchOptions{K: goldenK, Algorithm: Auto, MaxRowsPerTable: goldenRows}
		want, _, err := coord.SearchPlan(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := coord.SearchDistributed(context.Background(), exec, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if lw, lg := renderGolden(q, want), renderGolden(q, got); lw != lg {
			t.Fatalf("%q: fallback answers differ\nlocal:\n%s\ndistributed:\n%s", q, lw, lg)
		}
	}
}

func TestPartialEngineGuards(t *testing.T) {
	g := loadCorpus(t, "testdata/corpus/imdb.txt")
	part, err := NewEngine(g, EngineOptions{D: 3, Shards: 3, OwnedShards: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if part.Complete() {
		t.Fatal("partial engine claims completeness")
	}
	if got := part.OwnedShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OwnedShards = %v, want [1]", got)
	}
	if _, err := part.Search("taylor", 5); !errors.Is(err, ErrPartialEngine) {
		t.Fatalf("Search on partial engine: err = %v, want ErrPartialEngine", err)
	}
	if _, err := part.ScatterShard(context.Background(), 0, PatternEnum, "taylor", SearchOptions{K: 5}); err == nil {
		t.Fatal("scatter of non-resident shard succeeded")
	}
	if _, err := part.ScatterShard(context.Background(), 1, PatternEnum, "taylor", SearchOptions{K: 5}); err != nil {
		t.Fatalf("scatter of resident shard: %v", err)
	}
	// Updates must route through partial engines too (replication replay).
	var u Update
	id := u.AddEntity("Person", "gather test person")
	u.AddTextAttr(id, "note", "taylor night")
	if _, _, err := part.ApplyUpdate(u); err != nil {
		t.Fatalf("ApplyUpdate on partial engine: %v", err)
	}
}
