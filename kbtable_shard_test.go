package kbtable

import (
	"reflect"
	"testing"
)

// shardedPair builds an unsharded and a sharded engine over the same
// graph.
func shardedPair(t *testing.T, shards int) (*Engine, *Engine) {
	t.Helper()
	g := buildFig1Public(t)
	flat, err := NewEngine(g, EngineOptions{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewEngine(g, EngineOptions{D: 3, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return flat, sh
}

// TestShardedEngineMatchesUnsharded pins the public-API contract: a
// sharded engine renders byte-identical answers for every algorithm.
func TestShardedEngineMatchesUnsharded(t *testing.T) {
	flat, sh := shardedPair(t, 4)
	queries := []string{"database software", "software company revenue", "founder person"}
	for _, algo := range []Algorithm{PatternEnum, LinearEnum, Baseline} {
		for _, q := range queries {
			want, err := flat.SearchOpts(q, SearchOptions{K: 10, Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.SearchOpts(q, SearchOptions{K: 10, Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(got) {
				t.Fatalf("%v %q: %d vs %d answers", algo, q, len(want), len(got))
			}
			for i := range want {
				if want[i].Render(-1) != got[i].Render(-1) {
					t.Fatalf("%v %q answer %d:\nflat:\n%s\nsharded:\n%s",
						algo, q, i, want[i].Render(-1), got[i].Render(-1))
				}
			}
		}
	}
}

// TestShardedUpdateAndInfo exercises ApplyUpdate routing and ShardInfo
// through the public API.
func TestShardedUpdateAndInfo(t *testing.T) {
	flat, sh := shardedPair(t, 4)
	info := sh.ShardInfo()
	if info.Count != 4 || len(info.Epochs) != 4 {
		t.Fatalf("ShardInfo = %+v", info)
	}
	total := 0
	for _, r := range info.Roots {
		total += r
	}
	if total != sh.Graph().NumEntities() {
		t.Fatalf("shard roots sum to %d, want %d", total, sh.Graph().NumEntities())
	}
	if fi := flat.ShardInfo(); fi.Count != 1 || fi.Epochs != nil {
		t.Fatalf("unsharded ShardInfo = %+v", fi)
	}

	var u Update
	pg := u.AddEntity("Software", "Postgres")
	u.AddTextAttr(pg, "License", "open source license")
	nf, fres, err := flat.ApplyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	ns, sres, err := sh.ApplyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fres.NewEntities, sres.NewEntities) {
		t.Fatalf("new entity IDs diverge: %v vs %v", fres.NewEntities, sres.NewEntities)
	}
	if sres.AffectedShards < 1 || sres.AffectedShards > 4 {
		t.Fatalf("AffectedShards = %d", sres.AffectedShards)
	}
	if fres.AffectedShards != 0 {
		t.Fatalf("unsharded AffectedShards = %d", fres.AffectedShards)
	}
	if !reflect.DeepEqual(fres.TouchedWords, sres.TouchedWords) {
		t.Fatalf("touched words diverge: %v vs %v", fres.TouchedWords, sres.TouchedWords)
	}
	for _, q := range []string{"postgres license", "database software"} {
		want, err := nf.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ns.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("%q after update: %d vs %d answers", q, len(want), len(got))
		}
		for i := range want {
			if want[i].Render(-1) != got[i].Render(-1) {
				t.Fatalf("%q after update differs at %d", q, i)
			}
		}
	}
	// The old sharded engine still serves its snapshot.
	if ans, err := sh.Search("postgres license", 5); err != nil || len(ans) != 0 {
		t.Fatalf("old snapshot sees the update: %v, %v", ans, err)
	}
}

// TestShardedExplainAndTrees pins the auxiliary query surfaces.
func TestShardedExplainAndTrees(t *testing.T) {
	flat, sh := shardedPair(t, 3)
	fx, sx := flat.Explain("database software revenue"), sh.Explain("database software revenue")
	if fx.CandidateRoots != sx.CandidateRoots || fx.Patterns != sx.Patterns || fx.Subtrees != sx.Subtrees {
		t.Fatalf("Explain diverges: %+v vs %+v", fx, sx)
	}
	if !reflect.DeepEqual(flat.QueryWords("Databases SOFTWARE"), sh.QueryWords("Databases SOFTWARE")) {
		t.Fatal("QueryWords diverges")
	}
	ft, err := flat.SearchTrees("database software", 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sh.SearchTrees("database software", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ft, st) {
		t.Fatalf("SearchTrees diverges:\nflat:    %+v\nsharded: %+v", ft, st)
	}
}

// TestShardedEngineErrors pins the unsupported-surface errors.
func TestShardedEngineErrors(t *testing.T) {
	g := buildFig1Public(t)
	if _, err := NewEngine(g, EngineOptions{Shards: 1000}); err == nil {
		t.Fatal("absurd shard count accepted")
	}
	_, sh := shardedPair(t, 2)
	if err := sh.SaveIndex(t.TempDir() + "/ix"); err == nil {
		t.Fatal("sharded SaveIndex should fail")
	}
	if _, err := NewEngineFromIndex(g, "nope", EngineOptions{Shards: 2}); err == nil {
		t.Fatal("sharded NewEngineFromIndex should fail")
	}
}
