package kbtable

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild compiles every example program with the ambient Go
// toolchain, so examples drifting from the public API fail tier-1
// (`go test ./...`) with a readable compiler error, not just a later CI
// step. The examples are real main packages in this module; `go build`
// here is cheap (warm build cache) and exact.
func TestExamplesBuild(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command(gobin, "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("examples do not compile: %v\n%s", err, out)
	}
}
