package kbtable

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func topAnswer(t *testing.T, eng *Engine) Answer {
	t.Helper()
	answers, err := eng.Search("database software company revenue", 1)
	if err != nil || len(answers) == 0 {
		t.Fatalf("no answers: %v", err)
	}
	return answers[0]
}

func TestAnswerCSV(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	a := topAnswer(t, eng)
	recs, err := csv.NewReader(strings.NewReader(a.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("CSV reparse: %v", err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("CSV rows = %d, want 3", len(recs))
	}
	if recs[0][0] != "Software" {
		t.Errorf("CSV header wrong: %v", recs[0])
	}
}

func TestAnswerJSON(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	a := topAnswer(t, eng)
	var parsed struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(a.JSON()), &parsed); err != nil {
		t.Fatalf("JSON reparse: %v", err)
	}
	if len(parsed.Rows) != 2 || len(parsed.Columns) != 4 {
		t.Errorf("JSON shape wrong: %+v", parsed)
	}
}

func TestAnswerMarkdown(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	a := topAnswer(t, eng)
	md := a.Markdown(-1)
	if !strings.Contains(md, "| SQL Server |") {
		t.Errorf("markdown missing row:\n%s", md)
	}
}

func TestEngineIndexPersistence(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/fig1.idx"
	if err := eng.SaveIndex(path); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	eng2, err := NewEngineFromIndex(g, path, EngineOptions{UniformPageRank: true})
	if err != nil {
		t.Fatalf("NewEngineFromIndex: %v", err)
	}
	a1 := topAnswer(t, eng)
	a2 := topAnswer(t, eng2)
	if a1.Score != a2.Score || a1.NumRows != a2.NumRows {
		t.Errorf("loaded engine answers differently: %v vs %v", a1.Score, a2.Score)
	}
	if len(a1.Rows) != len(a2.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range a1.Rows {
		for j := range a1.Rows[i] {
			if a1.Rows[i][j] != a2.Rows[i][j] {
				t.Errorf("cell (%d,%d) differs", i, j)
			}
		}
	}
	// D mismatch is rejected.
	if _, err := NewEngineFromIndex(g, path, EngineOptions{D: 2}); err == nil {
		t.Errorf("D mismatch should be rejected")
	}
	// Wrong graph is rejected.
	b := NewBuilder()
	b.Entity("T", "only")
	g2, _ := b.Build()
	if _, err := NewEngineFromIndex(g2, path, EngineOptions{}); err == nil {
		t.Errorf("wrong graph should be rejected")
	}
	if _, err := NewEngineFromIndex(nil, path, EngineOptions{}); err == nil {
		t.Errorf("nil graph should be rejected")
	}
}

func TestSearchTreesFacade(t *testing.T) {
	g := buildFig1Public(t)
	eng, err := NewEngine(g, EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	trees, err := eng.SearchTrees("database software", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatalf("no tree answers")
	}
	for i, ta := range trees {
		if ta.Rank != i+1 {
			t.Errorf("rank %d wrong", i)
		}
		if len(ta.Columns) == 0 || len(ta.Row) != len(ta.Columns) {
			t.Errorf("tree answer table malformed: %+v", ta)
		}
		if i > 0 && ta.Score > trees[i-1].Score {
			t.Errorf("tree answers not sorted")
		}
	}
	// k<=0 defaults sensibly.
	if _, err := eng.SearchTrees("database", 0); err != nil {
		t.Errorf("default k failed: %v", err)
	}
}
