package kbtable

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"kbtable/internal/kg"
)

// The durable-recovery equivalence suite: for random UpdateOp chains on
// the golden corpora (sharded and unsharded), snapshot + WAL recovery
// must produce byte-identical golden answers to the in-memory engine
// that executed the same history — including after a simulated torn
// final WAL record.

// randomBatch stages 1..4 random UpdateOps against the engine's current
// graph. Some batches fail validation (removed nodes, literal sources);
// the driver skips those on both chains, which keeps the histories
// identical.
func randomBatch(rng *rand.Rand, g *kg.Graph) Update {
	var u Update
	// Texts overlap the golden queries' vocabulary so updates actually
	// move answers, not just the graph.
	texts := []string{
		"washington river", "software revenue", "night star", "king taylor",
		"cobalt drift", "database capital", "movie director", "quartz",
	}
	typeName := func() string {
		return g.TypeName(kg.TypeID(1 + rng.Intn(g.NumTypes()-1))) // skip Literal
	}
	attrName := func() string { return g.AttrName(kg.AttrID(rng.Intn(g.NumAttrs()))) }
	node := func() int64 { return int64(rng.Intn(g.NumNodes())) }
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(7) {
		case 0:
			u.AddEntity(typeName(), texts[rng.Intn(len(texts))])
		case 1:
			u.AddAttr(node(), attrName(), node())
		case 2:
			u.AddTextAttr(node(), attrName(), texts[rng.Intn(len(texts))])
		case 3:
			if g.NumEdges() > 0 {
				e := g.Edge(kg.EdgeID(rng.Intn(g.NumEdges())))
				u.RemoveEdge(int64(e.Src), g.AttrName(e.Attr), int64(e.Dst))
			}
		case 4:
			u.RemoveEntity(node())
		case 5:
			u.SetText(node(), texts[rng.Intn(len(texts))])
		case 6:
			// Back-reference chain: new entity immediately wired in.
			ref := u.AddEntity(typeName(), texts[rng.Intn(len(texts))])
			u.AddAttr(ref, attrName(), node())
		}
	}
	if len(u.Ops) == 0 {
		u.AddEntity(typeName(), texts[0])
	}
	return u
}

// answersFingerprint renders every golden query at full fidelity.
func answersFingerprint(t *testing.T, e *Engine, queries []string) string {
	t.Helper()
	out := ""
	for _, q := range queries {
		answers, err := e.SearchOpts(q, SearchOptions{K: goldenK, MaxRowsPerTable: goldenRows})
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		out += renderGolden(q, answers) + "\n===\n"
	}
	return out
}

func TestDurableRecoveryEquivalence(t *testing.T) {
	for _, spec := range goldenCorpora() {
		for _, shards := range []int{0, 3} {
			spec, shards := spec, shards
			t.Run(fmt.Sprintf("%s-shards%d", spec.name, shards), func(t *testing.T) {
				t.Parallel()
				g := loadCorpus(t, filepath.Join("testdata", "corpus", spec.name+".txt"))
				opts := EngineOptions{D: 3, Shards: shards}
				dir := t.TempDir()

				st, err := OpenStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				live, err := NewEngine(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				ref := live // pure in-memory chain over the same history
				if cs, err := live.Checkpoint(st); err != nil || cs.Skipped {
					t.Fatalf("seed checkpoint: %+v err=%v", cs, err)
				}

				rng := rand.New(rand.NewSource(int64(len(spec.name)*100 + shards)))
				const steps = 24
				for step := 1; step <= steps; step++ {
					u := randomBatch(rng, live.g.g)
					nref, _, err := ref.ApplyUpdate(u)
					if err != nil {
						continue // invalid batch: skipped on both chains
					}
					nlive, _, err := live.ApplyLogged(st, u)
					if err != nil {
						t.Fatalf("step %d: in-memory accepted but ApplyLogged failed: %v", step, err)
					}
					if nlive.Seq() == 0 {
						t.Fatalf("step %d: logged engine has no seq", step)
					}
					ref, live = nref, nlive

					// Mid-chain checkpoint: later recoveries must combine
					// this snapshot with the WAL suffix after it.
					if step == steps/2 {
						if cs, err := live.Checkpoint(st); err != nil || cs.Skipped || cs.Bytes == 0 {
							t.Fatalf("mid-chain checkpoint: %+v err=%v", cs, err)
						}
					}
					if step%8 != 0 && step != steps {
						continue
					}

					rec, rs, err := st.Recover(EngineOptions{})
					if err != nil {
						t.Fatalf("step %d: recover: %v", step, err)
					}
					if rs.Seq != live.Seq() {
						t.Fatalf("step %d: recovered to seq %d, live is at %d (stats %+v)", step, rs.Seq, live.Seq(), rs)
					}
					if rs.TornTail {
						t.Fatalf("step %d: clean log reported torn: %+v", step, rs)
					}
					want := answersFingerprint(t, ref, spec.queries)
					if got := answersFingerprint(t, rec, spec.queries); got != want {
						t.Fatalf("step %d: recovered engine diverges from in-memory history:\n%s",
							step, diffHint(want, got))
					}
				}

				// Torn final record: append one more batch, then chop
				// bytes off its WAL record. Recovery must land exactly on
				// the history minus the torn batch — i.e. on the state the
				// step loop just validated (preTorn), never a partial or
				// doubled application.
				want := answersFingerprint(t, ref, spec.queries)
				preTornSeq := live.Seq()
				u := randomBatchAccepted(t, rng, live)
				var err2 error
				if live, _, err2 = live.ApplyLogged(st, u); err2 != nil {
					t.Fatal(err2)
				}
				st.Close()
				chopWALTail(t, dir, 5)

				rec2, st2, rs2, err := OpenDir(dir, EngineOptions{})
				if err != nil {
					t.Fatalf("recover after torn tail: %v", err)
				}
				defer st2.Close()
				if !rs2.TornTail {
					t.Fatalf("torn tail not reported: %+v", rs2)
				}
				if rs2.Seq != preTornSeq {
					t.Fatalf("torn recovery at seq %d, want %d", rs2.Seq, preTornSeq)
				}
				if got := answersFingerprint(t, rec2, spec.queries); got != want {
					t.Fatalf("torn-tail recovery diverges:\n%s", diffHint(want, got))
				}
			})
		}
	}
}

// randomBatchAccepted draws batches until one passes validation.
func randomBatchAccepted(t *testing.T, rng *rand.Rand, e *Engine) Update {
	t.Helper()
	for i := 0; i < 100; i++ {
		u := randomBatch(rng, e.g.g)
		if _, _, err := e.ApplyUpdate(u); err == nil {
			return u
		}
	}
	t.Fatal("could not draw a valid batch")
	return Update{}
}

// chopWALTail truncates the last WAL segment that has content by n
// bytes, simulating a crash mid-append.
func chopWALTail(t *testing.T, dir string, n int64) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range ents {
		name := e.Name()
		if len(name) > 4 && name[:4] == "wal-" {
			if fi, err := e.Info(); err == nil && fi.Size() > 0 {
				last = filepath.Join(dir, name)
			}
		}
	}
	if last == "" {
		t.Fatal("no non-empty wal segment to corrupt")
	}
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirFreshDirectory(t *testing.T) {
	dir := t.TempDir()
	_, st, _, err := OpenDir(dir, EngineOptions{})
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("fresh dir: want ErrNoSnapshot, got %v", err)
	}
	if st == nil {
		t.Fatal("fresh dir: OpenDir should hand back the open store for seeding")
	}

	// Seeding: build, checkpoint into the returned store, reopen.
	g := loadCorpus(t, filepath.Join("testdata", "corpus", "wiki.txt"))
	eng, err := NewEngine(g, EngineOptions{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := eng.Checkpoint(st)
	if err != nil || cs.Skipped {
		t.Fatalf("seed checkpoint: %+v err=%v", cs, err)
	}
	if cs.Files < 2 || cs.Bytes == 0 {
		t.Fatalf("checkpoint wrote nothing: %+v", cs)
	}
	// Same-seq re-checkpoint skips.
	if cs2, err := eng.Checkpoint(st); err != nil || !cs2.Skipped {
		t.Fatalf("re-checkpoint: %+v err=%v", cs2, err)
	}
	st.Close()

	rec, st2, rs, err := OpenDir(dir, EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rs.SnapshotSeq != 0 || rs.Replayed != 0 || rs.Shards != 1 {
		t.Fatalf("recover stats: %+v", rs)
	}
	q := "washington city"
	want, err := eng.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if renderGolden(q, want) != renderGolden(q, got) {
		t.Fatal("recovered answers diverge from the built engine")
	}
}

func TestRecoverOptionValidation(t *testing.T) {
	dir := t.TempDir()
	g := loadCorpus(t, filepath.Join("testdata", "corpus", "imdb.txt"))
	eng, err := NewEngine(g, EngineOptions{D: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := eng.Checkpoint(st); err != nil {
		t.Fatal(err)
	}

	if _, _, err := st.Recover(EngineOptions{D: 3}); err == nil {
		t.Error("d mismatch accepted")
	}
	if _, _, err := st.Recover(EngineOptions{Shards: 4}); err == nil {
		t.Error("shard mismatch accepted")
	}
	rec, rs, err := st.Recover(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Shards != 2 || rec.ShardInfo().Count != 2 {
		t.Fatalf("recovered shard layout: stats %+v, info %+v", rs, rec.ShardInfo())
	}
	if rec.o.D != 2 {
		t.Fatalf("recovered d=%d", rec.o.D)
	}
}

func TestApplyLoggedRequiresStore(t *testing.T) {
	g := loadCorpus(t, filepath.Join("testdata", "corpus", "imdb.txt"))
	eng, err := NewEngine(g, EngineOptions{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	var u Update
	u.AddEntity("Movie", "midnight star")
	if _, _, err := eng.ApplyLogged(nil, u); err == nil {
		t.Fatal("nil store accepted")
	}
	// A rejected batch must not reach the WAL.
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var bad Update
	bad.RemoveEntity(1 << 40)
	if _, _, err := eng.ApplyLogged(st, bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if s := st.Stats(); s.LastSeq != 0 {
		t.Fatalf("rejected batch was logged: %+v", s)
	}
}
