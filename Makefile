# Same entry points CI uses (.github/workflows/ci.yml), so a green
# `make check` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench fmt vet check cover fuzz golden bench-json bench-plan bench-footprint serve clean ci-local cold-start snapshot-fixture load-soak cluster-soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

check: vet build race bench
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@echo "all checks passed"

# Coverage with the CI floor over the mutation + maintenance layers.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/index,./internal/kg ./...
	$(GO) tool cover -func=cover.out | tail -1

# The same short fuzz bursts CI runs.
fuzz:
	$(GO) test -fuzz='^FuzzSearchNeverPanics$$' -fuzztime=10s -run='^$$' .
	$(GO) test -fuzz='^FuzzUpdateOps$$' -fuzztime=10s -run='^$$' .
	$(GO) test -fuzz='^FuzzIndexRoundTrip$$' -fuzztime=10s -run='^$$' .
	$(GO) test -fuzz='^FuzzWALReplay$$' -fuzztime=10s -run='^$$' ./internal/store
	$(GO) test -fuzz='^FuzzDictQueryTokens$$' -fuzztime=10s -run='^$$' ./internal/text

# Mirror of the GitHub `test` + `coverage` jobs, step for step, so a CI
# failure can be reproduced (and fixed) without pushing: gofmt, vet,
# build, examples, race tests (incl. the snapshot format gate), bench
# smoke, coverage floor.
ci-local:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) build ./examples/...
	$(GO) test -race ./...
	$(GO) test -run TestSnapshotFixture -v .
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/index,./internal/kg ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	  echo "coverage: $${total}% (floor 85%)"; \
	  awk -v t="$$total" 'BEGIN { exit (t+0 < 85) ? 1 : 0 }'
	@echo "ci-local passed"

# The cold-start crash-recovery matrix (the CI job of the same name):
# seed, update, SIGKILL, restart from -data-dir, byte-diff the golden
# answers against an uninterrupted in-memory run — plus the group-commit
# variant (concurrent writers batched into shared fsyncs, killed
# mid-batch, every acknowledged update must survive).
cold-start:
	KBTABLE_COLDSTART=1 $(GO) test -run 'TestColdStart' -v -timeout 15m .

# The serving-path soak (the CI `load-soak` job, shortened): a real
# kbserve (2 shards, durable, group commit) under ~10s of mixed
# search/update load from kbload, report folded into BENCH_kbtable.json
# as serve_latency + group_commit rows. CI runs the same recipe at 30s.
LOAD_SOAK_DURATION ?= 10s
load-soak:
	KBTABLE_PERF=1 $(GO) test -run TestGroupCommitThroughput -v ./internal/store
	$(GO) build -o bin/ ./cmd/kbgen ./cmd/kbserve ./cmd/kbload ./cmd/kbbench
	./bin/kbgen -kind wiki -entities 4000 -types 60 -seed 1 -o /tmp/kbload-wiki.kb
	rm -rf /tmp/kbload-soak-data
	./bin/kbserve -kb /tmp/kbload-wiki.kb -shards 2 -data-dir /tmp/kbload-soak-data \
	  -addr 127.0.0.1:18080 -group-commit-delay 1ms >/tmp/kbload-serve.log 2>&1 & \
	echo $$! > /tmp/kbload-serve.pid
	@for i in $$(seq 1 120); do \
	  curl -fsS http://127.0.0.1:18080/healthz >/dev/null 2>&1 && break; sleep 0.5; done
	./bin/kbload -addr http://127.0.0.1:18080 -duration $(LOAD_SOAK_DURATION) \
	  -concurrency 16 -read-ratio 0.85 -entities 4000 -types 60 -seed 1 \
	  -out kbload-report.json -max-error-rate 0 -max-p99 5s; \
	status=$$?; kill -TERM $$(cat /tmp/kbload-serve.pid) 2>/dev/null; exit $$status
	./bin/kbbench -json -bench-entities 2500 -bench-queries 8 \
	  -load-report kbload-report.json -json-out BENCH_kbtable.json

# The multi-node cluster soak (the CI `cluster-soak` job): coordinator +
# 2 shard owners + WAL-shipped replica as real processes, kbload through
# the coordinator, all 20 golden answer files byte-diffed against the
# single-node goldens, one owner SIGKILLed (answers must not change),
# then the coordinator killed with the replica required to keep serving.
cluster-soak:
	KBTABLE_CLUSTER=1 $(GO) test -run TestClusterSoak -v -timeout 15m .

# Regenerate the checked-in snapshot fixture (testdata/snapshot) after
# an intentional snapshot/WAL/index wire-format change. Bump
# store.FormatVersion (and/or index.WireVersion) in the same PR.
snapshot-fixture:
	$(GO) test -run TestSnapshotFixture -update .

# Refresh the golden-corpus answer files after an intentional behavior
# change (regenerates testdata/corpus and testdata/golden).
golden:
	$(GO) test -run TestGoldenCorpus -update .

# The BENCH trajectory CI uploads as an artifact: shard-scaling ns/op,
# allocs, and speedup vs the serial engine, plus the planner ablation
# (PE vs LE vs Auto per corpus), written to BENCH_kbtable.json.
bench-json:
	$(GO) run ./cmd/kbbench -json -bench-entities 2500 -bench-queries 8

# The planner-focused run of the same report at a scale where the PE/LE
# split is visible: compare the auto rows' ns/op and chose_pe/chose_le
# against the explicit pe/le rows to judge the cost model.
bench-plan:
	$(GO) run ./cmd/kbbench -json -bench-entities 4000 -bench-queries 12

# Opt-in scale proof for the wire-v2 footprint win: generate a wiki
# corpus ~10x the standard bench corpus with kbgen -scale, build its
# index, and print the index_footprint row (resident B/entry, v2 vs gob
# snapshot bytes, decode speedup). Takes minutes and a few GB of RAM;
# not part of check/ci-local.
FOOTPRINT_KB ?= /tmp/kbtable-footprint-wiki.kb
bench-footprint:
	$(GO) build -o bin/ ./cmd/kbgen ./cmd/kbbench
	./bin/kbgen -kind wiki -entities 2000 -types 40 -seed 1 -scale 10 -o $(FOOTPRINT_KB)
	./bin/kbbench -footprint $(FOOTPRINT_KB)

# Run the HTTP daemon on the built-in demo knowledge base.
serve:
	$(GO) run ./cmd/kbserve -demo -addr :8080

clean:
	$(GO) clean ./...
	rm -rf bin cover.out BENCH_kbtable.json kbload-report.json
