package kbtable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kbtable/internal/index"
)

// The cold-start matrix (the CI job of the same name): build a snapshot
// from a golden corpus, stream updates at a durable kbserve, SIGKILL it
// mid-stream, restart from -data-dir, finish the stream, and byte-diff
// the golden answer files against an always-in-memory kbserve that ran
// the identical stream uninterrupted. The diff covers all 20 golden
// queries (10 per corpus), sharded and unsharded.
//
// The harness execs real kbserve processes (SIGKILL must hit a real
// process, not an httptest server), so it is opt-in:
//
//	KBTABLE_COLDSTART=1 go test -run TestColdStartRecovery -v .

func TestColdStartRecovery(t *testing.T) {
	if os.Getenv("KBTABLE_COLDSTART") == "" {
		t.Skip("set KBTABLE_COLDSTART=1 to run the cold-start matrix (execs kbserve, SIGKILLs it)")
	}
	bin := buildKBServe(t)
	for _, spec := range goldenCorpora() {
		for _, shards := range []int{1, 3} {
			spec, shards := spec, shards
			t.Run(fmt.Sprintf("%s-shards%d", spec.name, shards), func(t *testing.T) {
				runColdStart(t, bin, spec, shards)
			})
		}
	}
}

func runColdStart(t *testing.T, bin string, spec corpusSpec, shards int) {
	work := t.TempDir()
	g := loadCorpus(t, filepath.Join("testdata", "corpus", spec.name+".txt"))
	kbPath := filepath.Join(work, spec.name+".kb")
	if err := g.Save(kbPath); err != nil {
		t.Fatal(err)
	}

	// One deterministic update stream, pre-filtered to batches the
	// engine accepts, so both servers execute the identical history.
	batches := acceptedBatches(t, g, shards, 12)
	mid := len(batches) / 2

	// Reference: always-in-memory server, never restarted.
	ref := startKBServe(t, bin, "-kb", kbPath, "-shards", fmt.Sprint(shards))
	defer ref.kill()
	for _, b := range batches {
		ref.update(t, b)
	}
	want := ref.goldenAnswers(t, spec.queries)
	wantDir := filepath.Join(work, "want")
	writeAnswerFiles(t, wantDir, spec, want)

	// Durable run: seed the data dir, stream half the updates, SIGKILL
	// mid-stream, restart from the directory, stream the rest.
	dataDir := filepath.Join(work, "data")
	crash := startKBServe(t, bin, "-kb", kbPath, "-shards", fmt.Sprint(shards),
		"-data-dir", dataDir, "-checkpoint-every", "4")
	for _, b := range batches[:mid] {
		crash.update(t, b)
	}
	crash.kill() // SIGKILL: no drain, no final checkpoint

	// The restart below recovers from whichever snapshot the checkpointer
	// left last; every index file in the data dir must carry the current
	// binary wire format (v2), not legacy gob.
	idxFiles, err := filepath.Glob(filepath.Join(dataDir, "snap-*", "shard-*.idx"))
	if err != nil || len(idxFiles) == 0 {
		t.Fatalf("no snapshot index files under %s (glob error: %v)", dataDir, err)
	}
	for _, p := range idxFiles {
		v, err := index.FileWireVersion(p)
		if err != nil {
			t.Fatal(err)
		}
		if v != index.WireVersion {
			t.Fatalf("%s: snapshot index is wire version %d, want %d", p, v, index.WireVersion)
		}
	}

	restarted := startKBServe(t, bin, "-data-dir", dataDir, "-checkpoint-every", "4")
	defer restarted.kill()
	hz := restarted.healthz(t)
	if hz.Durability == nil {
		t.Fatal("restarted server reports no durability block")
	}
	if hz.Durability.WALSeq != uint64(mid) {
		t.Fatalf("restarted at wal_seq %d, want %d (stream position lost)", hz.Durability.WALSeq, mid)
	}
	for _, b := range batches[mid:] {
		restarted.update(t, b)
	}
	got := restarted.goldenAnswers(t, spec.queries)
	gotDir := filepath.Join(work, "got")
	writeAnswerFiles(t, gotDir, spec, got)

	for qi := range spec.queries {
		name := answerFileName(spec, qi)
		w, err := os.ReadFile(filepath.Join(wantDir, name))
		if err != nil {
			t.Fatal(err)
		}
		g, err := os.ReadFile(filepath.Join(gotDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: crash-recovered answers diverge from the in-memory run:\n%s",
				name, diffHint(string(w), string(g)))
		}
	}
}

// TestColdStartGroupCommitCrash is the group-commit member of the
// cold-start matrix: hammer a durable kbserve with CONCURRENT updates so
// the WAL committer is forced to batch multiple records per fsync
// (-group-commit-delay holds batches open), SIGKILL it with writes still
// in flight — maximizing the odds the kill lands mid-batch — and verify
// the restart honors every acknowledged update: wal_seq >= acks, no torn
// record survives, and the server keeps serving and accepting updates.
func TestColdStartGroupCommitCrash(t *testing.T) {
	if os.Getenv("KBTABLE_COLDSTART") == "" {
		t.Skip("set KBTABLE_COLDSTART=1 to run the cold-start matrix (execs kbserve, SIGKILLs it)")
	}
	bin := buildKBServe(t)
	spec := goldenCorpora()[0]
	work := t.TempDir()
	g := loadCorpus(t, filepath.Join("testdata", "corpus", spec.name+".txt"))
	kbPath := filepath.Join(work, spec.name+".kb")
	if err := g.Save(kbPath); err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(work, "data")
	crash := startKBServe(t, bin, "-kb", kbPath, "-data-dir", dataDir,
		"-checkpoint-every", "8", "-group-commit-delay", "2ms")

	// Concurrent updaters, each batch self-contained (new entity + text
	// attribute on it via back-reference), so any admission order is a
	// valid history and acks from different workers commute.
	const writers = 8
	var acked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var u Update
				e := u.AddEntity("CrashEntity", fmt.Sprintf("crash w%d i%d", w, i))
				u.AddTextAttr(e, "Note", fmt.Sprintf("payload %d-%d", w, i))
				body, _ := json.Marshal(map[string]any{"ops": u.Ops})
				resp, err := http.Post(crash.base+"/update", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server killed mid-request
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					acked.Add(1)
				}
			}
		}(w)
	}

	// Let batches form, then SIGKILL with writers still running.
	time.Sleep(1500 * time.Millisecond)
	crash.kill()
	close(stop)
	wg.Wait()
	acks := acked.Load()
	if acks == 0 {
		t.Fatal("no update was acknowledged before the kill; crash window missed")
	}

	restarted := startKBServe(t, bin, "-data-dir", dataDir, "-checkpoint-every", "8")
	defer restarted.kill()
	hz := restarted.healthz(t)
	if hz.Durability == nil {
		t.Fatal("restarted server reports no durability block")
	}
	// Every acknowledged update was group-committed before its 200, so
	// recovery must land at or past the ack count (unacked tail records
	// that happened to reach disk may push it higher; a torn tail is
	// discarded silently and never counted).
	if hz.Durability.WALSeq < acks {
		t.Fatalf("restarted at wal_seq %d < %d acknowledged updates: durable acks lost", hz.Durability.WALSeq, acks)
	}

	// The recovered server still answers queries and accepts updates.
	restarted.goldenAnswers(t, spec.queries[:1])
	var u Update
	e := u.AddEntity("CrashEntity", "post recovery probe")
	u.AddTextAttr(e, "Note", "alive")
	restarted.update(t, u.Ops)
	if hz2 := restarted.healthz(t); hz2.Durability.WALSeq != hz.Durability.WALSeq+1 {
		t.Fatalf("post-recovery update did not advance wal_seq: %d -> %d",
			hz.Durability.WALSeq, hz2.Durability.WALSeq)
	}
}

// acceptedBatches derives a deterministic accepted-update stream by
// simulating the chain in process.
func acceptedBatches(t *testing.T, g *Graph, shards int, n int) [][]UpdateOp {
	t.Helper()
	sh := 0
	if shards > 1 {
		sh = shards
	}
	eng, err := NewEngine(g, EngineOptions{D: 3, Shards: sh})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(1000*shards + n)))
	var out [][]UpdateOp
	for len(out) < n {
		u := randomBatch(rng, eng.g.g)
		ne, _, err := eng.ApplyUpdate(u)
		if err != nil {
			continue
		}
		eng = ne
		out = append(out, u.Ops)
	}
	return out
}

func answerFileName(spec corpusSpec, qi int) string {
	return fmt.Sprintf("%s_%02d_%s.golden", spec.name, qi+1, strings.ReplaceAll(spec.queries[qi], " ", "-"))
}

// writeAnswerFiles materializes one golden-style answer file per query
// (mirroring testdata/golden's naming) so failures leave a diffable
// artifact in the test's temp dir.
func writeAnswerFiles(t *testing.T, dir string, spec corpusSpec, rendered []string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for qi := range spec.queries {
		if err := os.WriteFile(filepath.Join(dir, answerFileName(spec, qi)), []byte(rendered[qi]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// --- kbserve process harness -----------------------------------------

func buildKBServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kbserve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/kbserve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build kbserve: %v\n%s", err, out)
	}
	return bin
}

type kbProc struct {
	cmd  *exec.Cmd
	base string
	logf string
	done chan struct{} // closed when the process exits (Wait returns)
}

// startKBServe launches kbserve on a fresh port and waits for /healthz.
func startKBServe(t *testing.T, bin string, args ...string) *kbProc {
	t.Helper()
	return startKBServeAt(t, bin, freeAddr(t), args...)
}

// startKBServeAt launches kbserve on a caller-chosen address — cluster
// tests pick every member's port up front so the coordinator's
// membership file and the followers' -source flag can reference peers
// that have not started yet.
func startKBServeAt(t *testing.T, bin, addr string, args ...string) *kbProc {
	t.Helper()
	logf := filepath.Join(t.TempDir(), "kbserve.log")
	lf, err := os.Create(logf)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout, cmd.Stderr = lf, lf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &kbProc{cmd: cmd, base: "http://" + addr, logf: logf, done: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(p.done)
	}()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		select {
		case <-p.done:
			// Fail in milliseconds when kbserve dies at startup instead
			// of burning the whole health-poll deadline.
			out, _ := os.ReadFile(logf)
			t.Fatalf("kbserve (%v) exited during startup: %s", args, out)
		default:
		}
		if time.Now().After(deadline) {
			out, _ := os.ReadFile(logf)
			t.Fatalf("kbserve (%v) did not come up: %s", args, out)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *kbProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill() // SIGKILL
		<-p.done                 // reaped by the Wait goroutine
	}
}

func (p *kbProc) update(t *testing.T, ops []UpdateOp) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("update: %d %s", resp.StatusCode, buf.String())
	}
}

// goldenAnswers renders each query's wire answers in the golden-file
// style (rank, full-precision score, rows) for byte comparison.
func (p *kbProc) goldenAnswers(t *testing.T, queries []string) []string {
	t.Helper()
	out := make([]string, len(queries))
	for i, q := range queries {
		body, _ := json.Marshal(map[string]any{"query": q, "k": goldenK, "max_rows": goldenRows})
		resp, err := http.Post(p.base+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		var sr struct {
			Answers []struct {
				Rank    int        `json:"rank"`
				Score   float64    `json:"score"`
				NumRows int        `json:"num_rows"`
				Pattern string     `json:"pattern"`
				Columns []string   `json:"columns"`
				Rows    [][]string `json:"rows"`
			} `json:"answers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		resp.Body.Close()
		var sb strings.Builder
		fmt.Fprintf(&sb, "query: %s\nanswers: %d\n", q, len(sr.Answers))
		for _, a := range sr.Answers {
			fmt.Fprintf(&sb, "\n#%d score=%.17g rows=%d\n%s\n", a.Rank, a.Score, a.NumRows, a.Pattern)
			sb.WriteString(strings.Join(a.Columns, " | "))
			sb.WriteByte('\n')
			for _, row := range a.Rows {
				sb.WriteString(strings.Join(row, " | "))
				sb.WriteByte('\n')
			}
		}
		out[i] = sb.String()
	}
	return out
}

type healthResp struct {
	Durability *struct {
		WALSeq      uint64 `json:"wal_seq"`
		SnapshotSeq uint64 `json:"snapshot_seq"`
	} `json:"durability"`
}

func (p *kbProc) healthz(t *testing.T) healthResp {
	t.Helper()
	resp, err := http.Get(p.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthResp
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return hr
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
