package kbtable

import (
	"os"
	"path/filepath"
	"testing"

	"kbtable/internal/index"
	"kbtable/internal/store"
)

// The snapshot format-compatibility gate: a small snapshot + WAL
// fixture is checked in under testdata/snapshot, and every build must
// keep loading it byte-for-byte — or bump the manifest/index format
// versions and regenerate with `make snapshot-fixture` (an explicit,
// reviewed act). This is what lets a node restart onto a newer binary
// without rebuilding its indexes.
//
// Regenerate: go test -run TestSnapshotFixture -update .

const fixtureDir = "testdata/snapshot"

// fixtureQueries are pinned by testdata/snapshot/answers.golden.
var fixtureQueries = []string{"software company revenue", "database developer"}

// fixtureGraph builds the deterministic mini knowledge base the fixture
// snapshots (a Figure 1 variant).
func fixtureGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	sql := b.Entity("Software", "SQL Server database")
	ms := b.Entity("Company", "Microsoft")
	gates := b.Entity("Person", "Bill Gates")
	odb := b.Entity("Software", "Oracle DB database")
	oc := b.Entity("Company", "Oracle Corp")
	book := b.Entity("Book", "Handbook of Database Software")
	sp := b.Entity("Company", "Springer")
	b.Attr(sql, "Developer", ms)
	b.Attr(odb, "Developer", oc)
	b.Attr(sql, "Reference", book)
	b.Attr(book, "Publisher", sp)
	b.Attr(ms, "Founder", gates)
	b.TextAttr(ms, "Revenue", "US$ 77 billion")
	b.TextAttr(oc, "Revenue", "US$ 37 billion")
	b.TextAttr(sp, "Revenue", "US$ 1 billion")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fixtureUpdates are the two deterministic batches the fixture's WAL
// holds beyond its snapshot (so the gate also covers WAL decoding).
func fixtureUpdates() []Update {
	var u1 Update
	pg := u1.AddEntity("Software", "Postgres database")
	u1.AddTextAttr(pg, "License", "open source")
	var u2 Update
	u2.SetText(2, "William Gates")
	u2.AddAttr(int64(3), "Rival", int64(0))
	return []Update{u1, u2}
}

func regenerateFixture(t *testing.T) {
	t.Helper()
	if err := os.RemoveAll(fixtureDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(fixtureDir, 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng, err := NewEngine(fixtureGraph(t), EngineOptions{D: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	for _, u := range fixtureUpdates() {
		if eng, _, err = eng.ApplyLogged(st, u); err != nil {
			t.Fatal(err)
		}
	}
	golden := answersFingerprint(t, eng, fixtureQueries)
	if err := os.WriteFile(filepath.Join(fixtureDir, "answers.golden"), []byte(golden), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFixture(t *testing.T) {
	if *updateGolden {
		regenerateFixture(t)
	}
	if _, err := os.Stat(filepath.Join(fixtureDir)); err != nil {
		t.Fatalf("fixture missing: %v (regenerate with `make snapshot-fixture`)", err)
	}

	// The manifest's format version must be exactly what this build
	// writes: a version bump without a regenerated fixture fails here,
	// and a regenerated fixture without a version bump fails the other
	// branch — so either way the incompatibility is an explicit choice.
	raw, err := store.Open(fixtureDir)
	if err != nil {
		t.Fatalf("open fixture store: %v", err)
	}
	sn, err := raw.Snapshot()
	raw.Close()
	if err != nil {
		t.Fatalf("fixture snapshot: %v", err)
	}
	if sn.Manifest.FormatVersion != store.FormatVersion {
		t.Fatalf("fixture has manifest format %d, this build writes %d — regenerate with `make snapshot-fixture`",
			sn.Manifest.FormatVersion, store.FormatVersion)
	}
	if sn.Manifest.IndexWireVersion != index.WireVersion {
		t.Fatalf("fixture snapshot carries index wire version %d, this build writes %d — regenerate with `make snapshot-fixture`",
			sn.Manifest.IndexWireVersion, index.WireVersion)
	}
	// The manifest claim must match the bytes on disk: every index file
	// in the fixture snapshot must sniff as the current wire format.
	for si := 0; si < max(sn.Manifest.Shards, 1); si++ {
		v, err := index.FileWireVersion(filepath.Join(sn.Dir, store.IndexFileName(si)))
		if err != nil {
			t.Fatalf("sniff fixture index %d: %v", si, err)
		}
		if v != index.WireVersion {
			t.Fatalf("fixture index file %d is wire version %d, want %d — regenerate with `make snapshot-fixture`",
				si, v, index.WireVersion)
		}
	}

	eng, st, rs, err := OpenDir(fixtureDir, EngineOptions{})
	if err != nil {
		t.Fatalf("this build can no longer load the checked-in snapshot fixture: %v\n"+
			"If the format change is intentional, bump store.FormatVersion (and/or index.WireVersion) and run `make snapshot-fixture`.", err)
	}
	defer st.Close()
	if rs.Replayed != len(fixtureUpdates()) || rs.TornTail {
		t.Fatalf("fixture recovery: %+v", rs)
	}
	if rs.Shards != 2 {
		t.Fatalf("fixture shard count: %+v", rs)
	}

	want, err := os.ReadFile(filepath.Join(fixtureDir, "answers.golden"))
	if err != nil {
		t.Fatalf("read answers.golden: %v (regenerate with `make snapshot-fixture`)", err)
	}
	if got := answersFingerprint(t, eng, fixtureQueries); got != string(want) {
		t.Fatalf("fixture answers diverge from answers.golden:\n%s", diffHint(string(want), got))
	}
}
