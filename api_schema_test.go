package kbtable_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"kbtable/internal/api"
)

var updateAPIGolden = flag.Bool("update-api", false, "rewrite the v1 API schema golden")

// renderAPISchema flattens the versioned wire contract — error codes,
// endpoints, and every wire struct with its JSON tags — into a stable
// text form. Any field rename, tag change, or type change shows up as a
// diff against testdata/api/v1.golden, which is the tripwire for
// accidental wire-format breaks: the schema may only change alongside a
// deliberate golden update.
func renderAPISchema() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kbtable wire API schema (version %s)\n", api.Version)

	sb.WriteString("\nerror codes:\n")
	codes := []string{
		api.CodeBadRequest, api.CodeShed, api.CodeStaleEpoch,
		api.CodePreparedGone, api.CodeDurability, api.CodeMethodNotAllowed,
		api.CodeNotFound, api.CodeCanceled, api.CodeTimeout,
		api.CodeReadOnly, api.CodeNotImplemented, api.CodeWALGap,
		api.CodeInternal,
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&sb, "  %s\n", c)
	}

	sb.WriteString("\nendpoints (each also served at its unversioned legacy alias, except /v1/shards, /v1/wal/segments, and the cluster leg endpoints):\n")
	for _, ep := range []string{
		"POST /v1/search",
		"POST /v1/prepare",
		"POST /v1/update",
		"GET  /v1/healthz",
		"GET  /v1/metrics",
		"GET  /v1/shards",
		"GET  /v1/wal/segments?after=<seq>&max=<n>",
		"POST /v1/cluster/probe   (cluster nodes only)",
		"POST /v1/cluster/scatter (cluster nodes only)",
	} {
		fmt.Fprintf(&sb, "  %s\n", ep)
	}

	types := []any{
		api.ErrorBody{}, api.ErrorResponse{},
		api.SearchRequest{}, api.SearchAnswer{}, api.SearchResponse{},
		api.PlanOut{},
		api.PrepareRequest{}, api.PrepareResponse{},
		api.UpdateRequest{}, api.UpdateResponse{},
		api.CacheStats{}, api.ShardHealth{}, api.IndexHealth{},
		api.PlannerHealth{}, api.PlanCacheHealth{}, api.AdaptiveBiasHealth{},
		api.PreparedHealth{}, api.DurabilityHealth{}, api.ServingHealth{},
		api.HealthResponse{},
		api.ShardsResponse{}, api.WALSegmentsResponse{},
		api.ClusterProbeRequest{}, api.ClusterProbeResponse{},
		api.ClusterScatterRequest{}, api.ClusterScatterResponse{},
		api.ClusterHealth{}, api.ClusterNodeHealth{}, api.ReplicationHealth{},
	}
	for _, v := range types {
		rt := reflect.TypeOf(v)
		fmt.Fprintf(&sb, "\n%s:\n", rt.Name())
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			if tag == "" {
				tag = "-"
			}
			fmt.Fprintf(&sb, "  %-18s %-28s json:%q\n", f.Name, f.Type.String(), tag)
		}
	}
	return sb.String()
}

// TestAPISchemaGolden pins the /v1 wire contract byte-for-byte.
func TestAPISchemaGolden(t *testing.T) {
	got := renderAPISchema()
	path := filepath.Join("testdata", "api", "v1.golden")
	if *updateAPIGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestAPISchemaGolden -update-api` after a deliberate wire change)", err)
	}
	if got != string(want) {
		t.Fatalf("wire API schema drifted from %s — if the change is deliberate, rerun with -update-api and call it out in the changelog.\ngot:\n%s", path, got)
	}
}
