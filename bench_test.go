package kbtable

// One testing.B benchmark per table/figure of the paper (Figures 6-16,
// Exp-IV), wrapping the drivers in internal/bench at a reduced scale so
// `go test -bench=.` completes on a laptop, plus micro-benchmarks of the
// individual components and ablation benches for the design choices
// DESIGN.md calls out. cmd/kbbench runs the full-scale suite.

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"kbtable/internal/bench"
	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/rank"
	"kbtable/internal/search"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *bench.Env
)

// env returns the shared reduced-scale experiment environment.
func env() *bench.Env {
	benchEnvOnce.Do(func() {
		benchEnv = bench.NewEnv(bench.Config{
			WikiEntities: 4000,
			WikiTypes:    60,
			IMDBMovies:   1500,
			PerM:         5,
			MaxM:         8,
			K:            100,
			Ds:           []int{2, 3},
		})
	})
	return benchEnv
}

func BenchmarkFig6IndexConstruction(b *testing.B) {
	e := env()
	g := e.Wiki()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := index.Build(g, index.Options{D: 3})
		if err != nil {
			b.Fatal(err)
		}
		_ = ix.Stats()
	}
}

func BenchmarkFig7TimeVsPatternsWiki(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs := bench.RunFig7(e)
		if len(tabs) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkFig8TimeVsPatternsIMDB(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		t := bench.RunFig8(e)
		if len(t.Header) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig9TimeVsSubtrees(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs := bench.RunFig9(e)
		if len(tabs) != 2 {
			b.Fatal("want 2 tables")
		}
	}
}

func BenchmarkFig10Scalability(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		t := bench.RunFig10(e)
		if len(t.Rows) != 10 {
			b.Fatal("want 10 rows")
		}
	}
}

func BenchmarkExpKVaryK(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		t := bench.RunExpK(e)
		if len(t.Rows) != 4 {
			b.Fatal("want 4 rows")
		}
	}
}

func BenchmarkFig11SamplingThreshold(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs := bench.RunFig11(e)
		if len(tabs) != 2 {
			b.Fatal("want time+precision tables")
		}
	}
}

func BenchmarkFig12SamplingRate(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs := bench.RunFig12(e)
		if len(tabs) != 2 {
			b.Fatal("want time+precision tables")
		}
	}
}

func BenchmarkFig13Coverage(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		t := bench.RunFig13(e)
		if len(t.Header) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig14_15CaseStudy(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		out := bench.RunCaseStudy(e, "washington city")
		if len(out) == 0 {
			b.Fatal("empty case study")
		}
	}
}

func BenchmarkFig16VaryKeywords(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		t := bench.RunFig16(e)
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- micro-benchmarks of the individual components ---

// benchQueries picks a few answerable workload queries per keyword count.
func benchQueries(e *bench.Env) []string {
	ix := e.WikiIndex(3)
	var out []string
	for _, q := range e.WikiQueries() {
		if p, _ := search.CountAll(ix, q.Text); p > 0 {
			out = append(out, q.Text)
		}
		if len(out) == 8 {
			break
		}
	}
	return out
}

func BenchmarkQueryPETopK(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchQueries(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := search.PETopK(ix, qs[i%len(qs)], search.Options{K: 100, SkipTrees: true})
		_ = res.Stats.PatternsFound
	}
}

// --- parallel query execution ---

// benchHeavyQueries ranks the answerable workload queries by valid-subtree
// count and keeps the heaviest n, so the parallel worker pool has a
// frontier worth sharding (trivial queries only measure pool overhead).
func benchHeavyQueries(e *bench.Env, n int) []string {
	ix := e.WikiIndex(3)
	type hq struct {
		q     string
		trees int64
	}
	var hqs []hq
	for _, q := range e.WikiQueries() {
		if p, tr := search.CountAll(ix, q.Text); p > 0 && tr < 2_000_000 {
			hqs = append(hqs, hq{q: q.Text, trees: tr})
		}
	}
	sort.Slice(hqs, func(i, j int) bool { return hqs[i].trees > hqs[j].trees })
	if len(hqs) > n {
		hqs = hqs[:n]
	}
	out := make([]string, len(hqs))
	for i, h := range hqs {
		out[i] = h.q
	}
	return out
}

// BenchmarkParallelPETopK measures the parallel-vs-serial speedup of
// PATTERNENUM's sharded frontier: compare workers=1 with workers=4
// (workers=4 should be ≥2× faster on a 4-core machine; with a single
// core the sub-benchmarks simply coincide).
func BenchmarkParallelPETopK(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchHeavyQueries(e, 4)
	if len(qs) == 0 {
		b.Skip("no heavy queries in the reduced workload")
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := search.PETopK(ix, qs[i%len(qs)], search.Options{K: 100, SkipTrees: true, Workers: workers})
				_ = res.Stats.PatternsFound
			}
		})
	}
}

// BenchmarkParallelLETopK is the LINEARENUM-TOPK counterpart (sharded by
// root type, so the attainable speedup is bounded by type skew).
func BenchmarkParallelLETopK(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchHeavyQueries(e, 4)
	if len(qs) == 0 {
		b.Skip("no heavy queries in the reduced workload")
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := search.LETopK(ix, qs[i%len(qs)], search.Options{K: 100, SkipTrees: true, Workers: workers})
				_ = res.Stats.PatternsFound
			}
		})
	}
}

func BenchmarkQueryLETopK(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchQueries(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := search.LETopK(ix, qs[i%len(qs)], search.Options{K: 100, SkipTrees: true})
		_ = res.Stats.PatternsFound
	}
}

func BenchmarkQueryLETopKSampled(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchQueries(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := search.LETopK(ix, qs[i%len(qs)], search.Options{
			K: 100, SkipTrees: true, Lambda: 1000, Rho: 0.1,
		})
		_ = res.Stats.PatternsFound
	}
}

func BenchmarkQueryBaseline(b *testing.B) {
	e := env()
	bl := e.WikiBaseline(3)
	qs := benchQueries(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bl.Search(qs[i%len(qs)], search.Options{K: 100, SkipTrees: true, MaxTreesPerPattern: 8})
		_ = res.Stats.PatternsFound
	}
}

func BenchmarkQueryTopTrees(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchQueries(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trees, _ := search.TopTrees(ix, qs[i%len(qs)], 100, search.Options{})
		_ = trees
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := env().Wiki()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := rank.PageRank(g, rank.Options{})
		_ = pr[0]
	}
}

func BenchmarkComposeTable(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchQueries(e)
	res := search.LETopK(ix, qs[0], search.Options{K: 1})
	if len(res.Patterns) == 0 {
		b.Skip("query has no answers")
	}
	rp := res.Patterns[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := core.ComposeTable(ix.Graph(), ix.PatternTable(), rp.Pattern, rp.Trees)
		_ = t.Rows
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationTreeShape compares tuple semantics (the paper's
// counting) against strict tree-shape filtering.
func BenchmarkAblationTreeShape(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchQueries(e)
	for _, strict := range []bool{false, true} {
		b.Run(fmt.Sprintf("requireTree=%v", strict), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := search.LETopK(ix, qs[i%len(qs)], search.Options{
					K: 100, SkipTrees: true, RequireTreeShape: strict,
				})
				_ = res.Stats.TreesFound
			}
		})
	}
}

// BenchmarkAblationAggregation compares the four pattern-score
// aggregation functions of Section 2.2.3.
func BenchmarkAblationAggregation(b *testing.B) {
	e := env()
	ix := e.WikiIndex(3)
	qs := benchQueries(e)
	for _, agg := range []core.Agg{core.AggSum, core.AggCount, core.AggAvg, core.AggMax} {
		b.Run(agg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := search.PETopK(ix, qs[i%len(qs)], search.Options{
					K: 100, SkipTrees: true, Agg: agg,
				})
				_ = res.Stats.PatternsFound
			}
		})
	}
}

// BenchmarkAblationIndexWorkers measures parallel index construction.
func BenchmarkAblationIndexWorkers(b *testing.B) {
	g := env().Wiki()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := index.Build(g, index.Options{D: 3, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				_ = ix.Stats()
			}
		})
	}
}

// BenchmarkAblationHeightThreshold shows query cost growth with d on a
// fixed query set (the driver behind Figure 7's per-d panels).
func BenchmarkAblationHeightThreshold(b *testing.B) {
	e := env()
	qs := benchQueries(e)
	for _, d := range []int{2, 3} {
		ix := e.WikiIndex(d)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := search.PETopK(ix, qs[i%len(qs)], search.Options{K: 100, SkipTrees: true})
				_ = res.Stats.PatternsFound
			}
		})
	}
}

// BenchmarkEndToEndEngine measures the public API path including table
// composition, per answerable query.
func BenchmarkEndToEndEngine(b *testing.B) {
	gd, _ := dataset.Fig1()
	_ = gd
	bld := NewBuilder()
	sql := bld.Entity("Software", "SQL Server")
	ms := bld.Entity("Company", "Microsoft")
	bld.Attr(sql, "Developer", ms)
	bld.TextAttr(ms, "Revenue", "US$ 77 billion")
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(g, EngineOptions{D: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		answers, err := eng.Search("software company revenue", 5)
		if err != nil || len(answers) == 0 {
			b.Fatal("no answers")
		}
	}
}
