package kbtable

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
)

// The Auto-equivalence property suite: on both golden corpora, across
// unsharded and sharded engines and both scoring modes, a query run with
// Algorithm: Auto must (a) report a concrete resolved algorithm with a
// planner rationale and (b) produce answers BYTE-identical — via the same
// full-fidelity rendering the golden suite pins — to explicitly
// requesting the algorithm the plan names. The planner may choose freely;
// it may never change a single bit of the answer.

func autoCorpora(t *testing.T) map[string]*Graph {
	t.Helper()
	out := map[string]*Graph{}
	for _, name := range []string{"wiki", "imdb"} {
		out[name] = loadCorpus(t, filepath.Join("testdata", "corpus", name+".txt"))
	}
	return out
}

func TestAutoEquivalenceProperty(t *testing.T) {
	for name, g := range autoCorpora(t) {
		queries := map[string][]string{}
		for _, spec := range goldenCorpora() {
			queries[spec.name] = spec.queries
		}
		for _, shards := range []int{1, 2, 4} {
			for _, uniform := range []bool{false, true} {
				label := fmt.Sprintf("%s/shards=%d/uniform=%t", name, shards, uniform)
				e, err := NewEngine(g, EngineOptions{D: 3, Shards: shards, UniformPageRank: uniform})
				if err != nil {
					t.Fatal(err)
				}
				// A tiny bias forces LinearEnum, the default lets the
				// cost model decide — both planner branches are
				// exercised and both must be answer-preserving. The
				// learned biases replay the adaptive feedback loop:
				// every query is observed under both algorithms, then
				// the property is re-checked at the accumulator's
				// effective bias and at its clamp extremes, pinning
				// that NO learned value can change an answer bit.
				ab := NewAdaptiveBias(0)
				for _, algo := range []Algorithm{PatternEnum, LinearEnum} {
					for _, q := range queries[name] {
						_, pi, err := e.SearchPlan(context.Background(), q, SearchOptions{K: 10, Algorithm: algo, MaxRowsPerTable: 6})
						if err != nil {
							t.Fatal(err)
						}
						ab.Observe(pi)
					}
				}
				learned := ab.Effective()
				if learned <= 0 {
					t.Fatalf("%s: learned bias %g not positive", label, learned)
				}
				for _, bias := range []float64{0, 1e-12, learned, learned / 8, learned * 8} {
					for _, q := range queries[name] {
						opts := SearchOptions{K: 10, Algorithm: Auto, MaxRowsPerTable: 6, AutoBias: bias}
						auto, pi, err := e.SearchPlan(context.Background(), q, opts)
						if err != nil {
							t.Fatal(err)
						}
						if !pi.Auto {
							t.Fatalf("%s/%q: plan not marked auto", label, q)
						}
						if pi.Algorithm != PatternEnum && pi.Algorithm != LinearEnum {
							t.Fatalf("%s/%q: auto resolved to %v", label, q, pi.Algorithm)
						}
						if pi.Reason == "" {
							t.Fatalf("%s/%q: auto plan has no reason", label, q)
						}
						opts.Algorithm = pi.Algorithm
						explicit, xpi, err := e.SearchPlan(context.Background(), q, opts)
						if err != nil {
							t.Fatal(err)
						}
						if xpi.Auto {
							t.Fatalf("%s/%q: explicit plan marked auto", label, q)
						}
						if got, want := renderGolden(q, auto), renderGolden(q, explicit); got != want {
							t.Errorf("%s/%q: auto (%v, bias %g) diverges from explicit:\n%s",
								label, q, pi.Algorithm, bias, diffHint(want, got))
						}
					}
				}
			}
		}
	}
}

// TestStreamingMatchesStagedProperty is the facade-level half of the
// streaming executor's guarantee: on both golden corpora, across
// unsharded and sharded engines and every algorithm, the streaming
// default's answers are BYTE-identical — via the same full-fidelity
// rendering the golden suite pins — to the staged ablation baseline's.
// Small K makes the top-k bound pushdown actually fire on the unsharded
// engines (sharded scatters disable it by design).
func TestStreamingMatchesStagedProperty(t *testing.T) {
	for name, g := range autoCorpora(t) {
		queries := map[string][]string{}
		for _, spec := range goldenCorpora() {
			queries[spec.name] = spec.queries
		}
		for _, shards := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s/shards=%d", name, shards)
			e, err := NewEngine(g, EngineOptions{D: 3, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []Algorithm{PatternEnum, LinearEnum, Auto} {
				for _, k := range []int{2, 10} {
					for _, q := range queries[name] {
						opts := SearchOptions{K: k, Algorithm: algo, MaxRowsPerTable: 6}
						stream, err := e.SearchContext(context.Background(), q, opts)
						if err != nil {
							t.Fatal(err)
						}
						opts.Staged = true
						staged, err := e.SearchContext(context.Background(), q, opts)
						if err != nil {
							t.Fatal(err)
						}
						if got, want := renderGolden(q, stream), renderGolden(q, staged); got != want {
							t.Errorf("%s/%v/k=%d/%q: streaming diverges from staged:\n%s",
								label, algo, k, q, diffHint(want, got))
						}
					}
				}
			}
		}
	}
}

// TestPlanMatchesSearchPlan pins that the execution-free Plan API
// resolves exactly the algorithm a subsequent Auto search runs as — the
// property the serve layer's cache keying relies on.
func TestPlanMatchesSearchPlan(t *testing.T) {
	for name, g := range autoCorpora(t) {
		for _, shards := range []int{1, 3} {
			e, err := NewEngine(g, EngineOptions{D: 3, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range goldenCorpora() {
				if spec.name != name {
					continue
				}
				for _, q := range spec.queries {
					opts := SearchOptions{K: 10, Algorithm: Auto}
					planned, err := e.Plan(context.Background(), q, opts)
					if err != nil {
						t.Fatal(err)
					}
					_, executed, err := e.SearchPlan(context.Background(), q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if planned.Algorithm != executed.Algorithm {
						t.Errorf("%s/shards=%d/%q: Plan says %v, SearchPlan ran %v",
							name, shards, q, planned.Algorithm, executed.Algorithm)
					}
					if planned.Reason != executed.Reason {
						t.Errorf("%s/shards=%d/%q: plan reasons differ:\n  %s\n  %s",
							name, shards, q, planned.Reason, executed.Reason)
					}
				}
			}
		}
	}
}
