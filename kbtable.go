// Package kbtable composes table answers to keyword queries over a
// knowledge base, implementing Yang, Ding, Chaudhuri and Chakrabarti,
// "Finding Patterns in a Knowledge Base using Keywords to Compose Table
// Answers" (PVLDB 7(14), 2014).
//
// A knowledge base is modeled as a typed directed graph. For a keyword
// query like "database software company revenue", the engine finds the
// top-k d-height *tree patterns* — aggregations of subtrees that contain
// every keyword with identical structure, node/edge types, and keyword
// positions — and renders each pattern as a table whose rows are the
// matching entity joins:
//
//	b := kbtable.NewBuilder()
//	sql := b.Entity("Software", "SQL Server")
//	ms := b.Entity("Company", "Microsoft")
//	b.Attr(sql, "Developer", ms)
//	b.TextAttr(ms, "Revenue", "US$ 77 billion")
//	g, _ := b.Build()
//	eng, _ := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3})
//	answers, _ := eng.Search("software company revenue", 10)
//	fmt.Print(answers[0].Render(5))
//
// Three query algorithms are available: PatternEnum (the paper's
// PATTERNENUM, default, fastest in practice), LinearEnum (LINEARENUM-TOPK,
// linear in index + answer size, with optional root sampling), and
// Baseline (the enumeration–aggregation adaption of prior subtree search,
// for comparison).
package kbtable

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
	"kbtable/internal/shard"
	"kbtable/internal/text"
)

// EntityID identifies an entity added through a Builder.
type EntityID = kg.NodeID

// Builder assembles a knowledge base: entities with types and text, and
// attributes connecting them (or holding plain text values).
type Builder struct {
	b *kg.Builder
}

// NewBuilder returns an empty knowledge-base builder.
func NewBuilder() *Builder { return &Builder{b: kg.NewBuilder()} }

// Entity adds an entity with a type name and text description.
func (b *Builder) Entity(typeName, text string) EntityID { return b.b.Entity(typeName, text) }

// Attr sets src.attr = dst, adding a typed directed edge. Call repeatedly
// with the same attr for multi-valued attributes.
func (b *Builder) Attr(src EntityID, attr string, dst EntityID) { b.b.Attr(src, attr, dst) }

// TextAttr sets src.attr to a plain-text value, creating a dummy literal
// entity that holds the text, and returns the literal's ID.
func (b *Builder) TextAttr(src EntityID, attr, value string) EntityID {
	return b.b.TextAttr(src, attr, value)
}

// Build freezes the knowledge base into an immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	g, err := b.b.Freeze()
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Graph is an immutable knowledge graph.
type Graph struct {
	g *kg.Graph
}

// NumEntities returns the number of entities (including text literals).
func (g *Graph) NumEntities() int { return g.g.NumNodes() }

// NumAttributes returns the number of attribute edges.
func (g *Graph) NumAttributes() int { return g.g.NumEdges() }

// NumTypes returns the number of entity types.
func (g *Graph) NumTypes() int { return g.g.NumTypes() }

// Save writes the graph to a file.
func (g *Graph) Save(path string) error { return g.g.SaveFile(path) }

// LoadGraph reads a graph written by Save.
func LoadGraph(path string) (*Graph, error) {
	g, err := kg.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Algorithm selects the query-processing strategy.
type Algorithm int

// Available algorithms.
const (
	// PatternEnum is PATTERNENUM (Section 4.1): usually fastest,
	// exponential worst case on empty pattern combinations.
	PatternEnum Algorithm = iota
	// LinearEnum is LINEARENUM-TOPK (Section 4.2): linear in index and
	// answer size; supports sampling via SearchOptions.Lambda/Rho.
	LinearEnum
	// Baseline is the enumeration-aggregation adaption of prior subtree
	// search (Section 2.3); built lazily on first use.
	Baseline
	// Auto defers the PatternEnum/LinearEnum choice to the cost-based
	// planner: the prepare stage's statistics (pattern-combination space,
	// candidate-root frontier, valid-subtree count) pick the cheaper
	// algorithm per query, and the answers are bit-identical to running
	// that algorithm explicitly. The returned PlanInfo (SearchPlan, Plan)
	// names the choice and why.
	Auto
)

func (a Algorithm) String() string {
	switch a {
	case PatternEnum:
		return "PETopK"
	case LinearEnum:
		return "LETopK"
	case Baseline:
		return "Baseline"
	case Auto:
		return "Auto"
	}
	return "unknown"
}

// searchAlgo maps the facade algorithm onto the staged executor's.
func searchAlgo(a Algorithm) (search.Algo, error) {
	switch a {
	case PatternEnum:
		return search.AlgoPE, nil
	case LinearEnum:
		return search.AlgoLE, nil
	case Baseline:
		return search.AlgoBaseline, nil
	case Auto:
		return search.AlgoAuto, nil
	}
	return 0, fmt.Errorf("kbtable: unknown algorithm %d", a)
}

// shardAlgo maps the facade algorithm onto the scatter-gather engine's.
func shardAlgo(a Algorithm) (shard.Algo, error) {
	switch a {
	case PatternEnum:
		return shard.PatternEnum, nil
	case LinearEnum:
		return shard.LinearEnum, nil
	case Baseline:
		return shard.Baseline, nil
	case Auto:
		return shard.Auto, nil
	}
	return 0, fmt.Errorf("kbtable: unknown algorithm %d", a)
}

// facadeAlgo maps a resolved executor strategy back to the facade enum.
func facadeAlgo(a search.Algo) Algorithm {
	switch a {
	case search.AlgoLE:
		return LinearEnum
	case search.AlgoBaseline:
		return Baseline
	default:
		return PatternEnum
	}
}

// EngineOptions configure index construction.
type EngineOptions struct {
	// D is the height threshold for tree patterns (max nodes on any
	// root-to-keyword path). Default 3, the paper's recommended setting.
	D int
	// UniformPageRank disables PageRank and scores every node equally.
	UniformPageRank bool
	// Synonyms maps alias words to canonical words sharing postings.
	Synonyms map[string]string
	// Workers sizes the worker pools for index construction and query
	// execution: each query's candidate-root frontier is sharded across
	// this many goroutines with per-worker top-k heaps merged into the
	// global queue. Parallel queries return exactly the serial results.
	// 0 (or negative) means GOMAXPROCS; 1 forces serial execution.
	Workers int
	// Shards partitions the knowledge base's candidate roots across this
	// many independent index shards (type-aware root hash, fixed at
	// entity creation). Queries scatter to every shard and gather
	// exactly: merged answers — scores, pattern signatures, table rows —
	// are identical to an unsharded engine's, and updates route only to
	// the shards owning affected roots, each with its own epoch. 0 or 1
	// disables sharding. Sharded engines build their indexes in parallel
	// and cannot currently Save/load prebuilt index files. LinearEnum's
	// Λ/ρ sampling becomes shard-local (still unbiased, no longer
	// bit-identical to unsharded sampling); exact queries are unaffected.
	Shards int
	// OwnedShards restricts a sharded engine (Shards > 1) to building
	// only the listed shards' indexes — a cluster owner node's view. The
	// ownership hash, PageRank and root filters still span the full
	// graph, so each resident shard is content-identical to the same
	// shard of a full engine. Partial engines only serve per-shard
	// cluster legs (ScatterShard / ProbeShard) and updates; whole-query
	// Search returns ErrPartialEngine. Empty means all shards.
	OwnedShards []int
}

// SearchOptions configure one query beyond the basic top-k.
type SearchOptions struct {
	// K is the number of patterns to return (default 100).
	K int
	// Algorithm defaults to PatternEnum; Auto lets the planner pick.
	Algorithm Algorithm
	// Lambda and Rho enable LinearEnum's root sampling: when a root type
	// has at least Lambda valid subtrees, only a Rho fraction of its roots
	// are expanded and scores are estimated (then re-scored exactly for
	// the estimated top-k). Lambda <= 0 disables sampling. Under Auto,
	// sampling applies only when the planner resolves to LinearEnum.
	Lambda int64
	Rho    float64
	// Seed fixes the sampling randomness (default 1).
	Seed int64
	// MaxRowsPerTable caps materialized rows per answer (0 = all).
	MaxRowsPerTable int
	// AutoBias overrides the Auto planner's PatternEnum preference: PE is
	// chosen iff its estimated cost (pattern-combination space) is at most
	// AutoBias times LinearEnum's (candidate roots + half the subtree
	// frontier). 0 means the default (search.DefaultAutoBias); larger
	// values favor PatternEnum.
	AutoBias float64
	// Staged reverts to the staged (non-streaming) executor: no top-k
	// bound pushdown, no predicate pushdown, allocating fetches. Answers
	// are bit-identical to the streaming default — the flag exists as the
	// ablation baseline for benchmarks and equivalence tests.
	Staged bool
}

// PlanInfo reports how a query executed (or, from Plan, would execute):
// the resolved algorithm, the planner's statistics and rationale, and the
// staged pipeline's per-stage wall-clock times (zero when no execution
// happened).
type PlanInfo struct {
	// Algorithm is the resolved strategy — never Auto.
	Algorithm Algorithm
	// Auto reports that the planner (not the caller) chose Algorithm.
	Auto bool
	// Reason is the planner's one-line cost rationale (empty for explicit
	// algorithm requests).
	Reason string
	// CandidateRoots is |∩ Roots(wi)| (-1 when the plan did not need it:
	// explicit PatternEnum skips the intersection).
	CandidateRoots int
	// RootTypes counts distinct root types common to every keyword.
	RootTypes int
	// PatternSpace is the pattern-combination count PatternEnum would
	// enumerate; Frontier is the total valid-subtree count LinearEnum
	// would expand. Both saturate at MaxInt64.
	PatternSpace int64
	Frontier     int64
	// Prepare/Enumerate/Aggregate/Rank are the staged executor's stage
	// wall-clock times for the run that produced the answers.
	Prepare   time.Duration
	Enumerate time.Duration
	Aggregate time.Duration
	Rank      time.Duration
	// BoundPruned counts enumeration units the streaming executor's top-k
	// bound pushdown cut before any path was fetched (0 when the run had
	// no execution, pruning was disabled, or the bound never fired).
	BoundPruned int64
}

// planInfo converts an executor plan + the run's query statistics to the
// facade view (pass a zero QueryStats when nothing executed).
func planInfo(p search.Plan, qs search.QueryStats) PlanInfo {
	return PlanInfo{
		Algorithm:      facadeAlgo(p.Algo),
		Auto:           p.Auto,
		Reason:         p.Reason,
		CandidateRoots: p.Stats.CandidateRoots,
		RootTypes:      p.Stats.RootTypes,
		PatternSpace:   p.Stats.PatternSpace,
		Frontier:       p.Stats.Frontier,
		Prepare:        qs.Stages.Prepare,
		Enumerate:      qs.Stages.Enumerate,
		Aggregate:      qs.Stages.Aggregate,
		Rank:           qs.Stages.Rank,
		BoundPruned:    qs.BoundPruned,
	}
}

// Engine answers keyword queries over one graph using prebuilt path
// indexes. With EngineOptions.Shards > 1 the indexes are partitioned by
// candidate root and queries run scatter-gather (sh is set, ix is nil).
type Engine struct {
	g  *Graph
	ix *index.Index
	sh *shard.Engine
	o  EngineOptions

	// seq is the last write-ahead-log sequence number reflected in this
	// snapshot (0 when the engine is not attached to a Store, or holds
	// only the initial state). See ApplyLogged / Checkpoint in durable.go.
	seq uint64

	// plans is the plan cache shared along this engine's whole update
	// chain (ApplyUpdate carries the pointer forward); planEpoch is the
	// cache epoch this snapshot was created at. A superseded snapshot's
	// epoch is stale, so its lookups miss and its puts are dropped — a
	// slow request racing an update can never install pre-update
	// statistics. See search.PlanCache.
	plans     *search.PlanCache
	planEpoch uint64

	blOnce sync.Once // lazy baseline build, safe under concurrent Search
	bl     *search.BaselineIndex
	blErr  error
}

// NewEngine builds the path-pattern indexes (Section 3) for g. Building
// cost grows steeply with D (see EXPERIMENTS.md Figure 6); D=3 is a good
// default balance of answer quality and cost.
func NewEngine(g *Graph, opts EngineOptions) (*Engine, error) {
	if g == nil {
		return nil, errors.New("kbtable: nil graph")
	}
	if opts.D == 0 {
		opts.D = 3
	}
	iopts := index.Options{
		D:         opts.D,
		UniformPR: opts.UniformPageRank,
		Synonyms:  opts.Synonyms,
		Workers:   opts.Workers,
	}
	if opts.Shards > 1 {
		var sh *shard.Engine
		var err error
		if len(opts.OwnedShards) > 0 {
			sh, err = shard.NewPartialEngine(g.g, opts.Shards, opts.OwnedShards, iopts)
		} else {
			sh, err = shard.NewEngine(g.g, opts.Shards, iopts)
		}
		if err != nil {
			return nil, fmt.Errorf("kbtable: %w", err)
		}
		return &Engine{g: g, sh: sh, o: opts, plans: search.NewPlanCache(0)}, nil
	}
	if len(opts.OwnedShards) > 0 {
		return nil, errors.New("kbtable: OwnedShards requires Shards > 1")
	}
	ix, err := index.Build(g.g, iopts)
	if err != nil {
		return nil, fmt.Errorf("kbtable: %w", err)
	}
	return &Engine{g: g, ix: ix, o: opts, plans: search.NewPlanCache(0)}, nil
}

// IndexStats describe the built index (the quantities of Figure 6).
type IndexStats struct {
	BuildSeconds float64
	// Bytes is the exact resident size of the columnar posting arenas
	// (summed across shards); SizeMB is the same quantity in MB.
	Bytes  int64
	SizeMB float64
	// BytesPerEntry is Bytes / Entries, the headline footprint figure.
	BytesPerEntry float64
	Entries       int64
	Patterns      int
	D             int
}

// IndexStats returns construction statistics. For a sharded engine the
// sizes sum across shards and BuildSeconds is the slowest shard (the
// builds run in parallel).
func (e *Engine) IndexStats() IndexStats {
	if e.sh != nil {
		out := IndexStats{D: e.o.D}
		for i := 0; i < e.sh.NumShards(); i++ {
			ix := e.sh.Index(i)
			if ix == nil { // unowned shard of a partial engine
				continue
			}
			s := ix.Stats()
			if bs := s.BuildTime.Seconds(); bs > out.BuildSeconds {
				out.BuildSeconds = bs
			}
			out.Bytes += s.Bytes
			out.Entries += s.NumEntries
			out.Patterns += s.NumPatterns
		}
		out.SizeMB = float64(out.Bytes) / (1 << 20)
		if out.Entries > 0 {
			out.BytesPerEntry = float64(out.Bytes) / float64(out.Entries)
		}
		return out
	}
	s := e.ix.Stats()
	return IndexStats{
		BuildSeconds:  s.BuildTime.Seconds(),
		Bytes:         s.Bytes,
		SizeMB:        float64(s.Bytes) / (1 << 20),
		BytesPerEntry: s.BytesPerEntry(),
		Entries:       s.NumEntries,
		Patterns:      s.NumPatterns,
		D:             s.D,
	}
}

// Answer is one ranked tree pattern rendered as a table.
type Answer struct {
	// Rank starts at 1.
	Rank int
	// Score is the pattern's aggregate relevance.
	Score float64
	// NumRows is the total number of valid subtrees of the pattern (the
	// table may be truncated to MaxRowsPerTable).
	NumRows int
	// Pattern describes the interpretation, one line per keyword.
	Pattern string
	// Columns and Rows are the composed table (Figure 3).
	Columns []string
	// FullColumns are the paper's formal column names τ(v)α(e)τ(u).
	FullColumns []string
	Rows        [][]string
}

// Render formats the answer as an ASCII table with at most maxRows rows
// (negative = all).
func (a Answer) Render(maxRows int) string {
	cols := make([]core.Column, len(a.Columns))
	for i := range a.Columns {
		cols[i] = core.Column{Name: a.Columns[i], Full: a.FullColumns[i]}
	}
	t := core.Table{Columns: cols, Rows: a.Rows}
	return fmt.Sprintf("#%d score=%.4f rows=%d\n%s\n%s", a.Rank, a.Score, a.NumRows, a.Pattern, t.Render(maxRows))
}

// Search returns the top-k table answers for a keyword query using the
// default algorithm (PatternEnum).
func (e *Engine) Search(query string, k int) ([]Answer, error) {
	return e.SearchOpts(query, SearchOptions{K: k})
}

// SearchOpts runs a query with full control over algorithm and sampling.
// An unknown keyword simply yields no answers (never an error): every
// answer must contain every keyword.
func (e *Engine) SearchOpts(query string, opts SearchOptions) ([]Answer, error) {
	return e.SearchContext(context.Background(), query, opts)
}

// SearchContext is SearchOpts with cancellation: a canceled or expired
// context stops the query between frontier shards and returns the
// context's error. Engines are safe for concurrent SearchContext calls —
// queries only read the index — and each query additionally fans out
// across EngineOptions.Workers goroutines internally.
func (e *Engine) SearchContext(ctx context.Context, query string, opts SearchOptions) ([]Answer, error) {
	answers, _, err := e.SearchPlan(ctx, query, opts)
	return answers, err
}

// searchOptions lowers facade options onto the executor's.
func (e *Engine) searchOptions(opts SearchOptions) search.Options {
	if opts.K <= 0 {
		opts.K = 100
	}
	return search.Options{
		K:                  opts.K,
		Lambda:             opts.Lambda,
		Rho:                opts.Rho,
		Seed:               opts.Seed,
		MaxTreesPerPattern: opts.MaxRowsPerTable,
		Workers:            e.o.Workers,
		AutoBias:           opts.AutoBias,
		Staged:             opts.Staged,
	}
}

// SearchPlan is SearchContext plus plan observability: it additionally
// returns how the query executed — the resolved algorithm (for
// Algorithm: Auto, the planner's per-query choice, whose answers are
// bit-identical to requesting that algorithm explicitly), the statistics
// the decision was based on, and per-stage timings.
func (e *Engine) SearchPlan(ctx context.Context, query string, opts SearchOptions) ([]Answer, PlanInfo, error) {
	so := e.searchOptions(opts)
	if e.sh != nil {
		if !e.sh.Complete() {
			return nil, PlanInfo{}, ErrPartialEngine
		}
		algo, err := shardAlgo(opts.Algorithm)
		if err != nil {
			return nil, PlanInfo{}, err
		}
		var res *shard.Result
		if plan, hit := e.cachedAutoPlan(query, so, algo == shard.Auto); hit {
			// Plan-cache hit: skip the per-shard planner probe and scatter
			// the resolved algorithm directly (answers are bit-identical —
			// the Auto-equivalence property).
			res, err = e.sh.SearchWithPlan(ctx, plan, query, so)
		} else {
			res, err = e.sh.Search(ctx, algo, query, so)
			if err == nil && algo == shard.Auto {
				e.rememberPlanStats(query, res.Plan.Stats)
			}
		}
		if err != nil {
			return nil, PlanInfo{}, fmt.Errorf("kbtable: %w", err)
		}
		return e.shardAnswers(res), planInfo(res.Plan, res.Stats), nil
	}
	algo, err := searchAlgo(opts.Algorithm)
	if err != nil {
		return nil, PlanInfo{}, err
	}
	ex := search.Executor{Ix: e.ix}
	if algo == search.AlgoBaseline {
		if ex.BL, err = e.baseline(); err != nil {
			return nil, PlanInfo{}, err
		}
	}
	var res *search.Result
	if plan, hit := e.cachedAutoPlan(query, so, algo == search.AlgoAuto); hit {
		// Plan-cache hit: execute the resolved algorithm explicitly (its
		// prepare needs less than a planner probe) and report the cached
		// auto plan. Bit-identical to resolving via a fresh probe.
		res, err = ex.Search(ctx, query, plan.Algo, so)
		if err == nil {
			res.Plan = plan
		}
	} else {
		res, err = ex.Search(ctx, query, algo, so)
		if err == nil && algo == search.AlgoAuto {
			// An Auto execution's plan statistics are exactly a probe's
			// (the prepare ran with the planner's full needs).
			e.rememberPlanStats(query, res.Plan.Stats)
		}
	}
	if err != nil {
		return nil, PlanInfo{}, fmt.Errorf("kbtable: %w", err)
	}
	return e.toAnswers(res), planInfo(res.Plan, res.Stats), nil
}

// Plan resolves a query's execution plan without running it: the prepare
// stage's statistics plus, for Algorithm: Auto, the planner's choice. A
// subsequent search with the returned PlanInfo.Algorithm produces exactly
// the answers Auto would. Stage timings are zero (nothing executed).
func (e *Engine) Plan(ctx context.Context, query string, opts SearchOptions) (PlanInfo, error) {
	so := e.searchOptions(opts)
	algo, err := searchAlgo(opts.Algorithm)
	if err != nil {
		return PlanInfo{}, err
	}
	st, err := e.planStats(ctx, query, so)
	if err != nil {
		return PlanInfo{}, fmt.Errorf("kbtable: %w", err)
	}
	return planInfo(search.ChoosePlan(algo, st, so), search.QueryStats{}), nil
}

// baseline lazily builds the enumeration–aggregation baseline index.
func (e *Engine) baseline() (*search.BaselineIndex, error) {
	e.blOnce.Do(func() {
		e.bl, e.blErr = search.NewBaseline(e.g.g, search.BaselineOptions{
			D:         e.o.D,
			UniformPR: e.o.UniformPageRank,
			Synonyms:  e.o.Synonyms,
		})
	})
	if e.blErr != nil {
		return nil, fmt.Errorf("kbtable: %w", e.blErr)
	}
	return e.bl, nil
}

func (e *Engine) toAnswers(res *search.Result) []Answer {
	pt := res.Table // the baseline interns its own patterns per query
	if pt == nil {
		pt = e.ix.PatternTable()
	}
	out := make([]Answer, 0, len(res.Patterns))
	for i, rp := range res.Patterns {
		tab := core.ComposeTable(e.g.g, pt, rp.Pattern, rp.Trees)
		out = append(out, answerFrom(i, rp, tab, rp.Pattern.Render(e.g.g, pt, res.Stats.Surfaces)))
	}
	return out
}

func (e *Engine) shardAnswers(res *shard.Result) []Answer {
	out := make([]Answer, 0, len(res.Patterns))
	for i, rp := range res.Patterns {
		tab := core.ComposeTable(e.g.g, rp.Table, rp.Pattern, rp.Trees)
		sp := search.RankedPattern{Pattern: rp.Pattern, Agg: rp.Agg, Score: rp.Score}
		out = append(out, answerFrom(i, sp, tab, rp.Pattern.Render(e.g.g, rp.Table, res.Stats.Surfaces)))
	}
	return out
}

// SaveIndex persists the engine's path indexes so future engines over the
// same graph can skip Algorithm 1 (NewEngineFromIndex). The graph is not
// included; pair the file with Graph.Save's output. Sharded engines do
// not support index persistence yet (each shard is a separate index).
func (e *Engine) SaveIndex(path string) error {
	if e.sh != nil {
		return errors.New("kbtable: sharded engines cannot save indexes yet")
	}
	return e.ix.SaveFile(path)
}

// NewEngineFromIndex loads previously saved indexes for g instead of
// rebuilding them. Loading verifies the index matches the graph.
func NewEngineFromIndex(g *Graph, path string, opts EngineOptions) (*Engine, error) {
	if g == nil {
		return nil, errors.New("kbtable: nil graph")
	}
	if opts.Shards > 1 {
		return nil, errors.New("kbtable: prebuilt index files are incompatible with sharding; build with NewEngine")
	}
	ix, err := index.LoadFile(path, g.g)
	if err != nil {
		return nil, fmt.Errorf("kbtable: %w", err)
	}
	if opts.D == 0 {
		opts.D = ix.D()
	}
	if opts.D != ix.D() {
		return nil, fmt.Errorf("kbtable: index was built with D=%d, requested D=%d", ix.D(), opts.D)
	}
	return &Engine{g: g, ix: ix, o: opts, plans: search.NewPlanCache(0)}, nil
}

// Graph returns the engine's knowledge-graph snapshot.
func (e *Engine) Graph() *Graph { return e.g }

// ShardInfo describes the engine's shard layout for monitoring surfaces
// like kbserve's /healthz.
type ShardInfo struct {
	// Count is the number of shards (1 for an unsharded engine).
	Count int
	// Epochs, Roots and Entries are per-shard: the shard's update epoch
	// (how many updates spliced its postings), its live owned roots, and
	// its index posting count. Nil on unsharded engines.
	Epochs  []uint64
	Roots   []int
	Entries []int64
}

// ShardInfo reports the current shard layout.
func (e *Engine) ShardInfo() ShardInfo {
	if e.sh == nil {
		return ShardInfo{Count: 1}
	}
	sts := e.sh.Stats()
	info := ShardInfo{
		Count:   e.sh.NumShards(),
		Epochs:  make([]uint64, len(sts)),
		Roots:   make([]int, len(sts)),
		Entries: make([]int64, len(sts)),
	}
	for i, st := range sts {
		info.Epochs[i] = st.Epoch
		info.Roots[i] = st.Roots
		info.Entries[i] = st.Entries
	}
	return info
}

// NumRemoved returns the number of tombstoned (removed) entities; their
// IDs stay reserved so surviving entity IDs never shift.
func (g *Graph) NumRemoved() int { return g.g.NumRemoved() }

// --- Live updates -----------------------------------------------------

// UpdateOp is one declarative knowledge-base mutation. Op selects the
// operation; the other fields are interpreted per op:
//
//	add_entity     Type, Text            — append an entity
//	add_attr       Src, Attr, Dst        — add the edge Src.Attr = Dst
//	add_text_attr  Src, Attr, Text       — add Src.Attr = "Text" (literal)
//	remove_edge    Src, Attr, Dst        — cut every matching edge
//	remove_entity  Node                  — tombstone Node and its edges
//	set_text       Node, Text            — replace Node's text description
//
// Entity references (Src, Dst, Node) are either non-negative EntityIDs of
// existing entities, or negative back-references into the same update:
// -(i+1) denotes the entity created by the i-th add_entity op of this
// batch (add_text_attr literals cannot be referenced). They are pointers
// so that an absent (or misspelled) JSON field fails validation instead of
// silently resolving to entity 0 — remove_entity on the wrong entity is
// not a mistake to paper over.
type UpdateOp struct {
	Op   string `json:"op"`
	Type string `json:"type,omitempty"`
	Text string `json:"text,omitempty"`
	Attr string `json:"attr,omitempty"`
	Src  *int64 `json:"src,omitempty"`
	Dst  *int64 `json:"dst,omitempty"`
	Node *int64 `json:"node,omitempty"`
}

// Update is an atomic batch of mutations: it either applies completely,
// yielding one new engine snapshot, or fails without side effects.
type Update struct {
	Ops []UpdateOp `json:"ops"`

	// adds counts the add_entity ops among Ops[:counted], maintained
	// incrementally so AddEntity back-references cost O(1) amortized.
	// Appending to Ops by hand between helper calls is picked up by the
	// catch-up scan; truncation triggers a full rescan. (Reordering Ops
	// invalidates already-returned back-references regardless — they are
	// positional — so no bookkeeping can support it.)
	adds    int64
	counted int
}

// Ref wraps an entity reference for an UpdateOp literal: an EntityID, or a
// negative back-reference as returned by AddEntity.
func Ref(v int64) *int64 { return &v }

// AddEntity stages an entity and returns a negative back-reference usable
// as Src/Dst/Node in later ops of the same update.
func (u *Update) AddEntity(typeName, text string) int64 {
	if u.counted > len(u.Ops) {
		u.adds, u.counted = 0, 0
	}
	for ; u.counted < len(u.Ops); u.counted++ {
		if u.Ops[u.counted].Op == "add_entity" {
			u.adds++
		}
	}
	u.Ops = append(u.Ops, UpdateOp{Op: "add_entity", Type: typeName, Text: text})
	u.counted++
	u.adds++
	return -u.adds
}

// AddAttr stages the attribute edge src.attr = dst.
func (u *Update) AddAttr(src int64, attr string, dst int64) {
	u.Ops = append(u.Ops, UpdateOp{Op: "add_attr", Src: Ref(src), Attr: attr, Dst: Ref(dst)})
}

// AddTextAttr stages src.attr = value for a plain-text value.
func (u *Update) AddTextAttr(src int64, attr, value string) {
	u.Ops = append(u.Ops, UpdateOp{Op: "add_text_attr", Src: Ref(src), Attr: attr, Text: value})
}

// RemoveEdge stages the removal of every edge src.attr = dst.
func (u *Update) RemoveEdge(src int64, attr string, dst int64) {
	u.Ops = append(u.Ops, UpdateOp{Op: "remove_edge", Src: Ref(src), Attr: attr, Dst: Ref(dst)})
}

// RemoveEntity stages the removal of an entity and all its edges.
func (u *Update) RemoveEntity(node int64) {
	u.Ops = append(u.Ops, UpdateOp{Op: "remove_entity", Node: Ref(node)})
}

// SetText stages a replacement text description for an entity.
func (u *Update) SetText(node int64, text string) {
	u.Ops = append(u.Ops, UpdateOp{Op: "set_text", Node: Ref(node), Text: text})
}

// UpdateResult reports what one applied update did.
type UpdateResult struct {
	// NewEntities are the resolved IDs of this update's add_entity ops, in
	// op order (what the negative back-references resolved to).
	NewEntities []EntityID
	// Entities / Attributes are the new snapshot's totals (tombstones
	// included in Entities).
	Entities   int
	Attributes int
	// DirtyRoots is how many roots were re-enumerated; a full index
	// rebuild would have enumerated every entity.
	DirtyRoots int
	// EntriesRemoved / EntriesAdded count spliced index postings.
	EntriesRemoved int64
	EntriesAdded   int64
	// TouchedWords are the canonical words whose posting lists changed —
	// exactly the queries whose cached answers may now be stale, unless
	// ScoresRefreshed is set.
	TouchedWords []string
	// ScoresRefreshed reports that PageRank scoring rewrote score terms
	// globally (any structural change under non-uniform PageRank): cached
	// answers for ALL queries may be stale, not just TouchedWords'.
	ScoresRefreshed bool
	// AffectedShards counts the shards whose postings this update
	// actually touched (0 on unsharded engines; untouched shards rebind
	// to the new snapshot without re-enumerating anything).
	AffectedShards int
	// Elapsed is the wall-clock time of graph apply + index maintenance.
	Elapsed time.Duration
}

// ApplyUpdate applies a batch of mutations and returns a NEW engine over
// the updated knowledge base. The receiver is not modified and remains
// fully usable, so in-flight searches (and callers holding the old engine)
// keep a consistent snapshot; the path-pattern index is maintained
// incrementally by re-enumerating only roots whose d-neighborhood the
// update touched. The update is validated eagerly (dangling references,
// edges out of literals, double removals, …) and applies atomically or
// not at all.
func (e *Engine) ApplyUpdate(u Update) (*Engine, UpdateResult, error) {
	start := time.Now()
	var res UpdateResult
	if len(u.Ops) == 0 {
		return nil, res, errors.New("kbtable: update has no ops")
	}
	d := kg.NewDelta(e.g.g)
	var created []kg.NodeID
	resolve := func(r *int64, what string) (kg.NodeID, error) {
		if r == nil {
			return -1, fmt.Errorf("kbtable: missing %s", what)
		}
		ref := *r
		if ref >= 0 {
			if ref > int64(e.g.g.NumNodes())+int64(len(u.Ops)) {
				return -1, fmt.Errorf("kbtable: %s %d out of range", what, ref)
			}
			return kg.NodeID(ref), nil
		}
		i := -ref - 1
		if int(i) >= len(created) {
			return -1, fmt.Errorf("kbtable: %s %d references add_entity #%d, but only %d precede it", what, ref, i, len(created))
		}
		return created[i], nil
	}
	for i, op := range u.Ops {
		var err error
		switch op.Op {
		case "add_entity":
			var id kg.NodeID
			if id, err = d.AddEntity(op.Type, op.Text); err == nil {
				created = append(created, id)
			}
		case "add_attr":
			var src, dst kg.NodeID
			if src, err = resolve(op.Src, "src"); err == nil {
				if dst, err = resolve(op.Dst, "dst"); err == nil {
					err = d.AddAttr(src, op.Attr, dst)
				}
			}
		case "add_text_attr":
			var src kg.NodeID
			if src, err = resolve(op.Src, "src"); err == nil {
				_, err = d.AddTextAttr(src, op.Attr, op.Text)
			}
		case "remove_edge":
			var src, dst kg.NodeID
			if src, err = resolve(op.Src, "src"); err == nil {
				if dst, err = resolve(op.Dst, "dst"); err == nil {
					_, err = d.RemoveEdge(src, op.Attr, dst)
				}
			}
		case "remove_entity":
			var v kg.NodeID
			if v, err = resolve(op.Node, "node"); err == nil {
				err = d.RemoveEntity(v)
			}
		case "set_text":
			var v kg.NodeID
			if v, err = resolve(op.Node, "node"); err == nil {
				err = d.SetText(v, op.Text)
			}
		default:
			err = fmt.Errorf("kbtable: unknown op %q", op.Op)
		}
		if err != nil {
			return nil, res, fmt.Errorf("kbtable: op %d (%s): %w", i, op.Op, err)
		}
	}
	ch, err := d.Apply()
	if err != nil {
		return nil, res, fmt.Errorf("kbtable: %w", err)
	}
	res = UpdateResult{
		NewEntities: created,
		Entities:    ch.New.NumNodes(),
		Attributes:  ch.New.NumEdges(),
	}
	if e.sh != nil {
		nsh, us, err := e.sh.ApplyDelta(ch)
		if err != nil {
			return nil, res, fmt.Errorf("kbtable: %w", err)
		}
		ne := &Engine{g: &Graph{g: ch.New}, sh: nsh, o: e.o, seq: e.seq}
		ne.carryPlanCache(e, us.TouchedWords, us.ScoresRefreshed)
		res.DirtyRoots = us.DirtyRoots
		res.EntriesRemoved = us.EntriesRemoved
		res.EntriesAdded = us.EntriesAdded
		res.TouchedWords = us.TouchedWords
		res.ScoresRefreshed = us.ScoresRefreshed
		res.AffectedShards = us.AffectedShards
		res.Elapsed = time.Since(start)
		return ne, res, nil
	}
	nix, ds, err := e.ix.ApplyDelta(ch, index.Options{
		D:         e.o.D,
		UniformPR: e.o.UniformPageRank,
		Workers:   e.o.Workers,
	})
	if err != nil {
		return nil, res, fmt.Errorf("kbtable: %w", err)
	}
	ne := &Engine{g: &Graph{g: ch.New}, ix: nix, o: e.o, seq: e.seq}
	ne.carryPlanCache(e, ds.TouchedWords, ds.ScoresRefreshed)
	res.DirtyRoots = ds.DirtyRoots
	res.EntriesRemoved = ds.EntriesRemoved
	res.EntriesAdded = ds.EntriesAdded
	res.TouchedWords = ds.TouchedWords
	res.ScoresRefreshed = ds.ScoresRefreshed
	res.Elapsed = time.Since(start)
	return ne, res, nil
}

// dict returns the engine's query dictionary. A sharded engine uses shard
// 0's: every shard tokenizes the full corpus in the same deterministic
// order, so the dictionaries agree on canonical words.
func (e *Engine) dict() *text.Dict {
	if e.sh != nil {
		return e.sh.AnyIndex().Dict()
	}
	return e.ix.Dict()
}

// resolveIndex returns an index suitable for query-word resolution.
func (e *Engine) resolveIndex() *index.Index {
	if e.sh != nil {
		return e.sh.AnyIndex()
	}
	return e.ix
}

// QueryWords returns the sorted canonical words a query resolves to
// (known words through stemming and synonym aliasing, unknown words as
// their stem). Matched against UpdateResult.TouchedWords, it tells a
// cache whether an update could have changed this query's answers.
func (e *Engine) QueryWords(query string) []string {
	d := e.dict()
	ids, surfaces := d.QueryTokens(query)
	seen := make(map[string]struct{}, len(ids))
	out := make([]string, 0, len(ids))
	for i, id := range ids {
		w := ""
		if id == text.NoWord {
			// Unknown today — but an update may introduce it, and its
			// postings would then live under the stem.
			w = text.Stem(surfaces[i])
		} else {
			w = d.Word(id)
		}
		if _, ok := seen[w]; ok {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// CSV renders the answer's table as CSV.
func (a Answer) CSV() string {
	var sb strings.Builder
	_ = a.table().WriteCSV(&sb)
	return sb.String()
}

// JSON renders the answer's table as a JSON object.
func (a Answer) JSON() string {
	var sb strings.Builder
	_ = a.table().WriteJSON(&sb)
	return sb.String()
}

// Markdown renders the answer's table as GitHub-flavored Markdown with at
// most maxRows rows (negative = all).
func (a Answer) Markdown(maxRows int) string {
	return a.table().Markdown(maxRows)
}

func (a Answer) table() core.Table {
	cols := make([]core.Column, len(a.Columns))
	for i := range a.Columns {
		cols[i] = core.Column{Name: a.Columns[i], Full: a.FullColumns[i]}
	}
	return core.Table{Columns: cols, Rows: a.Rows}
}

// Explanation describes what a query would cost and return, without
// ranking: how the keywords resolved, how many candidate roots, tree
// patterns and valid subtrees exist at the engine's height threshold.
// Useful for deciding between exact and sampled execution.
type Explanation struct {
	// Keywords as resolved against the corpus (stemmed, deduplicated).
	Keywords []string
	// Unknown lists query words with no postings; if non-empty the query
	// has no answers.
	Unknown []string
	// CandidateRoots is the number of nodes that reach every keyword.
	CandidateRoots int
	// Patterns and Subtrees are the total answer counts (before top-k).
	// When Subtrees exceeds ExplainBudget, Patterns is -1 and Capped is
	// true (counting patterns is #P-complete in general — Theorem 1 — and
	// costs up to one pass over all subtree combinations).
	Patterns int
	Subtrees int64
	Capped   bool
}

// ExplainBudget bounds the work Explain spends counting patterns.
const ExplainBudget = 5_000_000

// Explain analyzes a query without ranking answers. On a sharded engine
// candidate roots and subtrees sum across the shards' disjoint root
// partitions and patterns are unioned by content.
func (e *Engine) Explain(query string) Explanation {
	words, surfaces := search.ResolveQuery(e.resolveIndex(), query)
	ex := Explanation{}
	for i, w := range words {
		if w < 0 {
			ex.Unknown = append(ex.Unknown, surfaces[i])
		} else {
			ex.Keywords = append(ex.Keywords, surfaces[i])
		}
	}
	if e.sh != nil {
		ex.CandidateRoots = e.sh.NumCandidateRoots(query)
		ex.Patterns, ex.Subtrees, ex.Capped = e.sh.CountAllContent(query, ExplainBudget)
		return ex
	}
	ex.CandidateRoots = search.NumCandidateRoots(e.ix, query)
	ex.Patterns, ex.Subtrees, ex.Capped = search.CountAllCapped(e.ix, query, ExplainBudget)
	return ex
}

// TreeAnswer is one individually-ranked valid subtree, the alternative
// result granularity the paper compares against in Section 5.3 (a single
// row rather than a table).
type TreeAnswer struct {
	Rank    int
	Score   float64
	Pattern string
	Columns []string
	Row     []string
}

// SearchTrees ranks individual valid subtrees instead of tree patterns —
// useful when the query intent is a single best answer ("popular XBox
// game") rather than a list ("list of XBox games"). See EXPERIMENTS.md's
// case study for the contrast.
func (e *Engine) SearchTrees(query string, k int) ([]TreeAnswer, error) {
	if k <= 0 {
		k = 10
	}
	type rankedTree struct {
		tree    core.Subtree
		pattern core.TreePattern
		table   *core.PatternTable
		score   float64
	}
	var trees []rankedTree
	var stats search.QueryStats
	if e.sh != nil {
		sts, st := e.sh.TopTrees(query, k, search.Options{})
		stats = st
		for _, rt := range sts {
			trees = append(trees, rankedTree{tree: rt.Tree, pattern: rt.Pattern, table: rt.Table, score: rt.Score})
		}
	} else {
		sts, st := search.TopTrees(e.ix, query, k, search.Options{})
		stats = st
		for _, rt := range sts {
			trees = append(trees, rankedTree{tree: rt.Tree, pattern: rt.Pattern, table: e.ix.PatternTable(), score: rt.Score})
		}
	}
	out := make([]TreeAnswer, 0, len(trees))
	for i, rt := range trees {
		tab := core.ComposeTable(e.g.g, rt.table, rt.pattern, []core.Subtree{rt.tree})
		ta := TreeAnswer{
			Rank:    i + 1,
			Score:   rt.score,
			Pattern: rt.pattern.Render(e.g.g, rt.table, stats.Surfaces),
		}
		for _, c := range tab.Columns {
			ta.Columns = append(ta.Columns, c.Name)
		}
		if len(tab.Rows) > 0 {
			ta.Row = tab.Rows[0]
		}
		out = append(out, ta)
	}
	return out, nil
}

func answerFrom(i int, rp search.RankedPattern, tab core.Table, pattern string) Answer {
	a := Answer{
		Rank:    i + 1,
		Score:   rp.Score,
		NumRows: rp.Agg.Count,
		Pattern: pattern,
		Rows:    tab.Rows,
	}
	for _, c := range tab.Columns {
		a.Columns = append(a.Columns, c.Name)
		a.FullColumns = append(a.FullColumns, c.Full)
	}
	return a
}
