package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kbtable"
	"kbtable/internal/api"
	"kbtable/internal/client"
	"kbtable/internal/serve"
)

// shardLeg is the engine surface a node executes cluster legs against
// (*kbtable.Engine implements it).
type shardLeg interface {
	ProbeShard(ctx context.Context, si int, query string, opts kbtable.SearchOptions) (kbtable.ShardPlanStats, error)
	ScatterShard(ctx context.Context, si int, algorithm kbtable.Algorithm, query string, opts kbtable.SearchOptions) (*kbtable.ShardPartial, error)
}

// Node wraps a serve.Server as a cluster member: it adds the
// coordinator-facing /v1/cluster/probe and /v1/cluster/scatter
// endpoints and (on followers) a WAL puller that replays the
// coordinator's committed records through the server's full update
// pipeline. The node's replication cursor — the WAL sequence its
// engine state reflects — is the consistency anchor: a leg pinned to a
// different sequence is refused with 409 stale_epoch, and the
// RWMutex holding the cursor makes applying a record and executing a
// leg mutually exclusive, so a leg never observes a half-applied
// state.
type Node struct {
	role string
	id   string
	srv  *serve.Server

	// mu guards cursor: read-held across seq check + leg execution,
	// write-held across apply + cursor advance.
	mu     sync.RWMutex
	cursor uint64

	// Replication state (followers only).
	pullSource string
	pullStop   chan struct{}
	pullDone   chan struct{}
	sourceSeq  atomic.Uint64
	pulls      atomic.Uint64
	records    atomic.Uint64
	pullErrs   atomic.Uint64
	lastErrMu  sync.Mutex
	lastErr    string
}

// NewNode builds the serve.Server from cfg and wraps it as a cluster
// member with the given role ("node" for a shard owner, "replica") and
// id. cfg.Cluster is overridden to report this node's state.
func NewNode(cfg serve.Config, role, id string) *Node {
	n := &Node{role: role, id: id}
	cfg.Cluster = n.Health
	n.srv = serve.New(cfg)
	n.srv.SetHandler(n.Handler())
	return n
}

// Server returns the wrapped serve.Server (for shutdown and
// checkpoint hooks).
func (n *Node) Server() *serve.Server { return n.srv }

// Seq returns the node's applied WAL cursor.
func (n *Node) Seq() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.cursor
}

// Handler serves the node's full HTTP surface: the regular /v1 API
// plus the coordinator-facing cluster leg endpoints.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/"+api.Version+"/cluster/probe", n.handleProbe)
	mux.HandleFunc("/"+api.Version+"/cluster/scatter", n.handleScatter)
	mux.Handle("/", n.srv.Handler())
	return mux
}

// engine returns the published engine's shard-leg surface.
func (n *Node) engine() (shardLeg, error) {
	eng, _ := n.srv.CurrentEngine()
	leg, ok := eng.(shardLeg)
	if !ok {
		return nil, fmt.Errorf("cluster: engine does not expose shard legs")
	}
	return leg, nil
}

func (n *Node) handleProbe(w http.ResponseWriter, r *http.Request) {
	var req api.ClusterProbeRequest
	if !decodeLeg(w, r, &req) {
		return
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if req.Seq != n.cursor {
		writeClusterError(w, http.StatusConflict, api.CodeStaleEpoch,
			fmt.Sprintf("node is at seq %d, leg pinned seq %d", n.cursor, req.Seq))
		return
	}
	leg, err := n.engine()
	if err != nil {
		writeClusterError(w, http.StatusNotImplemented, api.CodeNotImplemented, err.Error())
		return
	}
	stats, err := leg.ProbeShard(r.Context(), req.Shard, req.Query, legOptions(req.K, req.MaxRows, req.AutoBias))
	if err != nil {
		writeClusterError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	writeClusterJSON(w, &api.ClusterProbeResponse{Shard: req.Shard, Seq: n.cursor, Stats: stats})
}

func (n *Node) handleScatter(w http.ResponseWriter, r *http.Request) {
	var req api.ClusterScatterRequest
	if !decodeLeg(w, r, &req) {
		return
	}
	algo, err := api.ParseAlgorithm(req.Algorithm)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if req.Seq != n.cursor {
		writeClusterError(w, http.StatusConflict, api.CodeStaleEpoch,
			fmt.Sprintf("node is at seq %d, leg pinned seq %d", n.cursor, req.Seq))
		return
	}
	leg, err := n.engine()
	if err != nil {
		writeClusterError(w, http.StatusNotImplemented, api.CodeNotImplemented, err.Error())
		return
	}
	partial, err := leg.ScatterShard(r.Context(), req.Shard, algo, req.Query, legOptions(req.K, req.MaxRows, req.AutoBias))
	if err != nil {
		writeClusterError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	writeClusterJSON(w, &api.ClusterScatterResponse{Shard: req.Shard, Seq: n.cursor, Partial: partial})
}

// legOptions reconstructs the options a leg runs under. Only the
// fields the wire carries cross the cluster; both sides' engines fill
// in identical defaults for the rest, which is what keeps a remote leg
// bit-identical to the coordinator-local one.
func legOptions(k, maxRows int, autoBias float64) kbtable.SearchOptions {
	return kbtable.SearchOptions{K: k, MaxRowsPerTable: maxRows, AutoBias: autoBias}
}

// Apply replays one shipped WAL record through the server's full
// update pipeline and advances the cursor — atomically with respect to
// leg execution.
func (n *Node) Apply(rec kbtable.WALRecord) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rec.Seq <= n.cursor {
		return nil // already applied (duplicate pull)
	}
	if rec.Seq != n.cursor+1 {
		return fmt.Errorf("cluster: WAL gap: have seq %d, got record %d", n.cursor, rec.Seq)
	}
	if _, err := n.srv.Apply(kbtable.Update{Ops: rec.Ops}); err != nil {
		return err
	}
	n.cursor = rec.Seq
	return nil
}

// StartReplication begins pulling committed WAL records from source
// (the coordinator's base URL) every interval, replaying each through
// Apply. Call StopReplication to end it.
func (n *Node) StartReplication(source string, interval time.Duration) {
	n.pullSource = normalizeAddr(source)
	n.pullStop = make(chan struct{})
	n.pullDone = make(chan struct{})
	go n.pullLoop(client.New(n.pullSource), interval)
}

// StopReplication stops the puller and waits for it to exit.
func (n *Node) StopReplication() {
	if n.pullStop == nil {
		return
	}
	close(n.pullStop)
	<-n.pullDone
	n.pullStop = nil
}

func (n *Node) pullLoop(cl *client.Client, interval time.Duration) {
	defer close(n.pullDone)
	for {
		more := n.pullOnce(cl)
		if more {
			// The batch was truncated at the origin's limit: drain the
			// backlog before sleeping.
			select {
			case <-n.pullStop:
				return
			default:
				continue
			}
		}
		select {
		case <-n.pullStop:
			return
		case <-time.After(interval):
		}
	}
}

// pullOnce performs one replication round and reports whether the
// origin has more records ready.
func (n *Node) pullOnce(cl *client.Client) bool {
	n.pulls.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := cl.WALSegments(ctx, n.Seq(), 0)
	if err != nil {
		n.pullErrs.Add(1)
		n.setLastErr(err.Error())
		return false
	}
	n.sourceSeq.Store(resp.LastSeq)
	for _, rec := range resp.Records {
		if err := n.Apply(rec); err != nil {
			n.pullErrs.Add(1)
			n.setLastErr(err.Error())
			return false
		}
		n.records.Add(1)
	}
	n.setLastErr("")
	return resp.More
}

func (n *Node) setLastErr(msg string) {
	n.lastErrMu.Lock()
	n.lastErr = msg
	n.lastErrMu.Unlock()
}

// Health is the node's /v1/healthz cluster section.
func (n *Node) Health() *api.ClusterHealth {
	ch := &api.ClusterHealth{Role: n.role, NodeID: n.id, Seq: n.Seq()}
	if n.pullSource != "" {
		n.lastErrMu.Lock()
		lastErr := n.lastErr
		n.lastErrMu.Unlock()
		rep := &api.ReplicationHealth{
			Source:    n.pullSource,
			Seq:       ch.Seq,
			SourceSeq: n.sourceSeq.Load(),
			Pulls:     n.pulls.Load(),
			Records:   n.records.Load(),
			Errors:    n.pullErrs.Load(),
			LastError: lastErr,
		}
		if rep.SourceSeq > rep.Seq {
			rep.Lag = rep.SourceSeq - rep.Seq
		}
		ch.Replication = rep
	}
	return ch
}

// decodeLeg validates and decodes a cluster leg request body.
func decodeLeg(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		writeClusterError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeClusterError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeClusterJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

func writeClusterError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorBody{Code: code, Message: msg}})
}
