// Package cluster turns single-process kbtable servers into a static
// multi-node deployment: a coordinator that scatters the planner probe
// and the per-shard enumerate→aggregate legs to owner nodes over the
// /v1 API and gathers their partials with the engine's canonical
// Theorem-5 fold (internal/shard), owner nodes that host a subset of
// the shard partition, and read replicas that replay the coordinator's
// WAL through the full serving pipeline. Everything exactness-critical
// lives in the engine (kbtable.SearchDistributed); this package is only
// membership, transport, and replication plumbing — which is why a
// cluster answer is bit-identical to a single-node one.
package cluster

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Member is one process in a static cluster membership.
type Member struct {
	// ID names the node (unique within the membership).
	ID string
	// Addr is the node's base URL ("http://" is assumed when no scheme
	// is given).
	Addr string
	// Replica marks a read replica: a node hosting the complete engine,
	// fed by WAL shipping, eligible as a fallback for any shard leg.
	Replica bool
	// Shards are the owned shards of an owner node, ascending.
	Shards []int
}

// Membership is a parsed static member table.
type Membership struct {
	Members []Member
}

// ParseMembership parses a membership spec: one entry per line (or
// separated by ',' / ';'), each
//
//	<id> <addr> shards=<lo>-<hi>   — an owner hosting shards lo..hi
//	<id> <addr> shards=<a>,<b>,…   — an owner hosting an explicit list
//	<id> <addr> replica            — a read replica (complete engine)
//
// '#' starts a comment. Within an entry, fields are whitespace-
// separated; shard lists use ',' inside the shards= value, which is
// why ';' (or a newline) separates entries in inline specs.
func ParseMembership(spec string) (*Membership, error) {
	m := &Membership{}
	seen := map[string]bool{}
	for _, line := range strings.FieldsFunc(spec, func(r rune) bool { return r == '\n' || r == ';' }) {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("cluster: bad member %q (want \"id addr shards=lo-hi\" or \"id addr replica\")", strings.TrimSpace(line))
		}
		mem := Member{ID: fields[0], Addr: normalizeAddr(fields[1])}
		if seen[mem.ID] {
			return nil, fmt.Errorf("cluster: duplicate member id %q", mem.ID)
		}
		seen[mem.ID] = true
		switch {
		case fields[2] == "replica":
			mem.Replica = true
		case strings.HasPrefix(fields[2], "shards="):
			shards, err := parseShardSet(strings.TrimPrefix(fields[2], "shards="))
			if err != nil {
				return nil, fmt.Errorf("cluster: member %q: %w", mem.ID, err)
			}
			mem.Shards = shards
		default:
			return nil, fmt.Errorf("cluster: member %q: unknown role %q (want shards=… or replica)", mem.ID, fields[2])
		}
		m.Members = append(m.Members, mem)
	}
	if len(m.Members) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	return m, nil
}

// LoadMembership reads a membership file (ParseMembership syntax).
func LoadMembership(path string) (*Membership, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return ParseMembership(string(b))
}

// ParseShardRange parses the -shard-range flag value: "lo-hi" or an
// explicit "a,b,c" list, as in a membership entry's shards= field.
func ParseShardRange(s string) ([]int, error) {
	return parseShardSet(s)
}

func parseShardSet(s string) ([]int, error) {
	var out []int
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 0 || b < a {
			return nil, fmt.Errorf("bad shard range %q", s)
		}
		for si := a; si <= b; si++ {
			out = append(out, si)
		}
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad shard list %q", s)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// Owners returns the members hosting shard si in membership order,
// owners first, then replicas (which host every shard) as fallbacks.
func (m *Membership) Owners(si int) []Member {
	var out []Member
	for _, mem := range m.Members {
		for _, s := range mem.Shards {
			if s == si {
				out = append(out, mem)
				break
			}
		}
	}
	for _, mem := range m.Members {
		if mem.Replica {
			out = append(out, mem)
		}
	}
	return out
}
