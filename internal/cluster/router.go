package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"kbtable"
	"kbtable/internal/api"
	"kbtable/internal/client"
)

// Router is the coordinator's kbtable.ShardExecutor: it routes each
// shard's probe and scatter leg to a remote owner (then any replica)
// over the /v1 cluster API. A leg whose every candidate fails returns
// an error, which makes the engine re-run that leg on the
// coordinator's own resident shard — the router only ever has to be
// fast, never correct. Requests carry the WAL sequence the serving
// layer pinned (api.SeqFrom), so a node that has not applied exactly
// that state refuses the leg (409 stale_epoch) rather than answer from
// a different snapshot.
type Router struct {
	nodeID  string
	members *Membership
	// SeqFn reports the coordinator's own applied WAL sequence for
	// Health (nil = 0).
	SeqFn func() uint64

	mu      sync.Mutex
	clients map[string]*client.Client
	stats   map[string]*nodeStats
}

type nodeStats struct {
	remote   atomic.Uint64
	fallback atomic.Uint64
	mu       sync.Mutex
	healthy  bool
	lastErr  string
}

// NewRouter returns a router over a static membership. nodeID names
// the coordinator itself in health output.
func NewRouter(nodeID string, m *Membership) *Router {
	r := &Router{
		nodeID:  nodeID,
		members: m,
		clients: make(map[string]*client.Client),
		stats:   make(map[string]*nodeStats),
	}
	for _, mem := range m.Members {
		r.clients[mem.ID] = client.New(mem.Addr)
		r.stats[mem.ID] = &nodeStats{healthy: true}
	}
	return r
}

// ProbeShard runs shard si's planner-probe leg on its first reachable
// candidate node.
func (r *Router) ProbeShard(ctx context.Context, si int, query string, opts kbtable.SearchOptions) (kbtable.ShardPlanStats, error) {
	seq, _ := api.SeqFrom(ctx)
	req := &api.ClusterProbeRequest{
		Shard: si, Query: query, Seq: seq,
		K: opts.K, MaxRows: opts.MaxRowsPerTable, AutoBias: opts.AutoBias,
	}
	var out kbtable.ShardPlanStats
	err := r.leg(ctx, si, func(cl *client.Client) error {
		resp, err := cl.ProbeShard(ctx, req)
		if err != nil {
			return err
		}
		out = resp.Stats
		return nil
	})
	return out, err
}

// ScatterShard runs shard si's enumerate→aggregate leg on its first
// reachable candidate node.
func (r *Router) ScatterShard(ctx context.Context, si int, algorithm kbtable.Algorithm, query string, opts kbtable.SearchOptions) (*kbtable.ShardPartial, error) {
	seq, _ := api.SeqFrom(ctx)
	req := &api.ClusterScatterRequest{
		Shard: si, Query: query, Algorithm: api.AlgorithmName(algorithm), Seq: seq,
		K: opts.K, MaxRows: opts.MaxRowsPerTable, AutoBias: opts.AutoBias,
	}
	var out *kbtable.ShardPartial
	err := r.leg(ctx, si, func(cl *client.Client) error {
		resp, err := cl.ScatterShard(ctx, req)
		if err != nil {
			return err
		}
		if resp.Partial == nil {
			return fmt.Errorf("node returned no partial for shard %d", si)
		}
		out = resp.Partial
		return nil
	})
	return out, err
}

// leg tries shard si's candidates in membership order (owners, then
// replicas) and records per-node outcomes. When every candidate fails,
// the designated (first) owner is charged with the local fallback the
// engine is about to perform.
func (r *Router) leg(ctx context.Context, si int, call func(*client.Client) error) error {
	cands := r.members.Owners(si)
	if len(cands) == 0 {
		return fmt.Errorf("cluster: no member owns shard %d", si)
	}
	var lastErr error
	for _, mem := range cands {
		st := r.stats[mem.ID]
		err := call(r.clients[mem.ID])
		if err == nil {
			st.remote.Add(1)
			st.setHealth(true, "")
			return nil
		}
		st.setHealth(false, err.Error())
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	r.stats[cands[0].ID].fallback.Add(1)
	return fmt.Errorf("cluster: shard %d: all %d candidates failed: %w", si, len(cands), lastErr)
}

func (s *nodeStats) setHealth(healthy bool, errMsg string) {
	s.mu.Lock()
	s.healthy, s.lastErr = healthy, errMsg
	s.mu.Unlock()
}

// Health is the coordinator's /v1/healthz cluster section (wire it as
// serve.Config.Cluster).
func (r *Router) Health() *api.ClusterHealth {
	ch := &api.ClusterHealth{Role: "coordinator", NodeID: r.nodeID}
	if r.SeqFn != nil {
		ch.Seq = r.SeqFn()
	}
	for _, mem := range r.members.Members {
		st := r.stats[mem.ID]
		st.mu.Lock()
		healthy, lastErr := st.healthy, st.lastErr
		st.mu.Unlock()
		role := "node"
		if mem.Replica {
			role = "replica"
		}
		ch.Nodes = append(ch.Nodes, api.ClusterNodeHealth{
			ID: mem.ID, Addr: mem.Addr, Role: role, Shards: mem.Shards,
			Healthy: healthy, LastError: lastErr,
			Remote: st.remote.Load(), LocalFallback: st.fallback.Load(),
		})
	}
	return ch
}
