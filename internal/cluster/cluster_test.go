package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"kbtable"
	"kbtable/internal/api"
	"kbtable/internal/client"
	"kbtable/internal/serve"
)

// demoGraph builds the small Figure 1 knowledge base used by the serve
// tests: two software vendors with revenue literals.
func demoGraph(t *testing.T) *kbtable.Graph {
	t.Helper()
	b := kbtable.NewBuilder()
	sql := b.Entity("Software", "SQL Server")
	ms := b.Entity("Company", "Microsoft")
	or := b.Entity("Company", "Oracle Corp")
	odb := b.Entity("Software", "Oracle DB")
	b.Attr(sql, "Developer", ms)
	b.Attr(odb, "Developer", or)
	b.TextAttr(ms, "Revenue", "US$ 77 billion")
	b.TextAttr(or, "Revenue", "US$ 37 billion")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// loadCorpus rebuilds a golden corpus dump (testdata/corpus at the
// module root) through the public Builder API — the same format the
// module-level golden suite uses.
func loadCorpus(t *testing.T, path string) *kbtable.Graph {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	b := kbtable.NewBuilder()
	ids := map[int64]kbtable.EntityID{}
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, " ", 4)
		if len(parts) != 4 {
			t.Fatalf("corpus line %d malformed: %q", ln+1, line)
		}
		switch parts[0] {
		case "E":
			id, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				t.Fatalf("corpus line %d: %v", ln+1, err)
			}
			ids[id] = b.Entity(parts[2], parts[3])
		case "A":
			src, err1 := strconv.ParseInt(parts[1], 10, 64)
			dst, err2 := strconv.ParseInt(parts[3], 10, 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("corpus line %d malformed: %q", ln+1, line)
			}
			b.Attr(ids[src], parts[2], ids[dst])
		case "T":
			src, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				t.Fatalf("corpus line %d: %v", ln+1, err)
			}
			b.TextAttr(ids[src], parts[2], parts[3])
		default:
			t.Fatalf("corpus line %d malformed: %q", ln+1, line)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// renderWire reproduces the module-level golden rendering from wire
// answers: the response's full_columns field carries the formal column
// names, and encoding/json round-trips float64 scores exactly, so the
// bytes can match the checked-in goldens bit for bit.
func renderWire(query string, answers []api.SearchAnswer) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\nanswers: %d\n", query, len(answers))
	for _, a := range answers {
		fmt.Fprintf(&sb, "\n#%d score=%.17g rows=%d\n%s\n", a.Rank, a.Score, a.NumRows, a.Pattern)
		sb.WriteString(strings.Join(a.FullColumns, " | "))
		sb.WriteByte('\n')
		for _, row := range a.Rows {
			sb.WriteString(strings.Join(row, " | "))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// goldenQueries mirrors the module-level golden workload (golden_test.go).
var goldenQueries = map[string][]string{
	"wiki": {
		"washington", "washington city", "population river",
		"software company revenue", "database university", "album band",
		"movie actor director", "capital state", "book author publisher",
		"school season",
	},
	"imdb": {
		"taylor", "night star", "king taylor", "star man", "man secret",
		"story movie", "king movie", "star wilson", "night moore",
		"man director",
	},
}

const (
	goldenK    = 10
	goldenRows = 6
)

// testCluster is an in-process 3-node cluster (2 owners + 1 replica)
// plus a coordinator, all over real HTTP.
type testCluster struct {
	coord   *httptest.Server
	owners  []*httptest.Server
	replica *httptest.Server
	router  *Router
	nodes   []*Node
	cl      *client.Client
}

// startCluster partitions g into 3 shards: owner n0 hosts shards 0-1,
// owner n1 hosts shard 2, r0 is a complete replica, and the
// coordinator holds the full engine and scatters legs through the
// router. The coordinator's result cache is disabled so every search
// exercises the scatter path.
func startCluster(t *testing.T, g *kbtable.Graph) *testCluster {
	t.Helper()
	const shards = 3
	build := func(owned []int) *kbtable.Engine {
		eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3, Shards: shards, OwnedShards: owned})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	tc := &testCluster{}
	for i, owned := range [][]int{{0, 1}, {2}} {
		node := NewNode(serve.Config{Engine: build(owned), D: 3, CacheSize: -1, ReadOnly: true}, "node", fmt.Sprintf("n%d", i))
		ts := httptest.NewServer(node.Handler())
		t.Cleanup(ts.Close)
		tc.nodes = append(tc.nodes, node)
		tc.owners = append(tc.owners, ts)
	}
	replica := NewNode(serve.Config{Engine: build(nil), D: 3, CacheSize: -1, ReadOnly: true}, "replica", "r0")
	tc.replica = httptest.NewServer(replica.Handler())
	t.Cleanup(tc.replica.Close)
	tc.nodes = append(tc.nodes, replica)

	members, err := ParseMembership(fmt.Sprintf("n0 %s shards=0-1; n1 %s shards=2; r0 %s replica",
		tc.owners[0].URL, tc.owners[1].URL, tc.replica.URL))
	if err != nil {
		t.Fatal(err)
	}
	tc.router = NewRouter("c0", members)
	coordSrv := serve.New(serve.Config{
		Engine: build(nil), D: 3, CacheSize: -1,
		Distributor: tc.router, Cluster: tc.router.Health,
	})
	tc.coord = httptest.NewServer(coordSrv.Handler())
	t.Cleanup(tc.coord.Close)
	tc.cl = client.New(tc.coord.URL)
	return tc
}

// TestClusterGoldenByteIdentical scatters every golden query through a
// 3-node cluster and byte-compares the HTTP answers against the
// checked-in golden files — then kills one owner and requires the same
// bytes again via local fallback.
func TestClusterGoldenByteIdentical(t *testing.T) {
	for _, corpus := range []string{"wiki", "imdb"} {
		corpus := corpus
		t.Run(corpus, func(t *testing.T) {
			g := loadCorpus(t, filepath.Join("..", "..", "testdata", "corpus", corpus+".txt"))
			tc := startCluster(t, g)

			check := func(stage string) {
				for qi, q := range goldenQueries[corpus] {
					goldenPath := filepath.Join("..", "..", "testdata", "golden",
						fmt.Sprintf("%s_%02d_%s.golden", corpus, qi+1, strings.ReplaceAll(q, " ", "-")))
					want, err := os.ReadFile(goldenPath)
					if err != nil {
						t.Fatal(err)
					}
					for _, algo := range []string{"patternenum", "linearenum", "auto", "baseline"} {
						resp, err := tc.cl.Search(context.Background(), &api.SearchRequest{
							Query: q, K: goldenK, MaxRows: goldenRows, Algorithm: algo,
						})
						if err != nil {
							t.Fatalf("%s: %q (%s): %v", stage, q, algo, err)
						}
						if got := renderWire(q, resp.Answers); got != string(want) {
							t.Errorf("%s: %q (%s) diverges from %s", stage, q, algo, goldenPath)
						}
					}
				}
			}

			check("full cluster")
			health := tc.router.Health()
			var remote, fallback uint64
			for _, n := range health.Nodes {
				remote += n.Remote
				fallback += n.LocalFallback
			}
			if remote == 0 {
				t.Fatal("no shard legs executed remotely — the scatter path was not exercised")
			}
			if fallback != 0 {
				t.Fatalf("healthy cluster fell back locally %d times", fallback)
			}

			// Kill owner n1: its shard legs fail over to the replica (or
			// re-run on the coordinator), with identical bytes.
			tc.owners[1].Close()
			check("owner n1 down")

			// Kill the replica too: now shard 2 has no live candidate and
			// the coordinator re-runs those legs on its own engine.
			tc.replica.Close()
			check("owner n1 and replica down")
			health = tc.router.Health()
			fallback = 0
			for _, n := range health.Nodes {
				fallback += n.LocalFallback
			}
			if fallback == 0 {
				t.Fatal("expected local fallbacks after killing shard 2's owners")
			}
		})
	}
}

// TestClusterReplicationAndFailover ships WAL records from a durable
// coordinator to owners and a replica, verifies followers converge and
// scatter legs work at the advanced sequence, then kills an owner and
// the coordinator and asserts the replica still serves epoch-consistent
// reads.
func TestClusterReplicationAndFailover(t *testing.T) {
	graph := demoGraph(t)

	const shards = 2
	build := func(owned []int) *kbtable.Engine {
		eng, err := kbtable.NewEngine(graph, kbtable.EngineOptions{D: 3, Shards: shards, OwnedShards: owned})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	// Durable coordinator: WAL from seq 0, checkpoints disabled so the
	// full history stays shippable.
	dir := t.TempDir()
	coordEng := build(nil)
	store, err := kbtable.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := coordEng.Checkpoint(store); err != nil {
		t.Fatal(err)
	}

	var owners []*httptest.Server
	var nodes []*Node
	for i, owned := range [][]int{{0}, {1}} {
		node := NewNode(serve.Config{Engine: build(owned), D: 3, CacheSize: -1, ReadOnly: true}, "node", fmt.Sprintf("n%d", i))
		ts := httptest.NewServer(node.Handler())
		t.Cleanup(ts.Close)
		nodes = append(nodes, node)
		owners = append(owners, ts)
	}
	replica := NewNode(serve.Config{Engine: build(nil), D: 3, CacheSize: -1, ReadOnly: true}, "replica", "r0")
	replicaTS := httptest.NewServer(replica.Handler())
	t.Cleanup(replicaTS.Close)
	nodes = append(nodes, replica)

	members, err := ParseMembership(fmt.Sprintf("n0 %s shards=0; n1 %s shards=1; r0 %s replica",
		owners[0].URL, owners[1].URL, replicaTS.URL))
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter("c0", members)
	router.SeqFn = func() uint64 { return store.Stats().LastSeq }
	coordSrv := serve.New(serve.Config{
		Engine: coordEng, D: 3, CacheSize: -1, Store: store, CheckpointEvery: -1,
		Distributor: router, Cluster: router.Health,
	})
	coordTS := httptest.NewServer(coordSrv.Handler())
	t.Cleanup(coordTS.Close)

	for _, n := range nodes {
		n.StartReplication(coordTS.URL, 5*time.Millisecond)
		defer n.StopReplication()
	}

	// Three update batches through the coordinator.
	cl := client.New(coordTS.URL)
	for i := 0; i < 3; i++ {
		var u kbtable.Update
		e := u.AddEntity("Software", fmt.Sprintf("ClusterDB %d", i))
		u.AddTextAttr(e, "Revenue", "US$ 1 billion")
		resp, err := cl.Update(context.Background(), &api.UpdateRequest{Ops: u.Ops})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Epoch != uint64(i+1) {
			t.Fatalf("update %d published epoch %d", i, resp.Epoch)
		}
	}

	// Followers converge on the coordinator's WAL position.
	wantSeq := store.Stats().LastSeq
	deadline := time.Now().Add(5 * time.Second)
	for _, n := range nodes {
		for n.Seq() != wantSeq {
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at seq %d, want %d (health %+v)", n.Seq(), wantSeq, n.Health().Replication)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// A scattered search at the advanced sequence: the nodes accept the
	// pinned seq and serve their legs remotely.
	req := &api.SearchRequest{Query: "software revenue", K: 5, Algorithm: "patternenum"}
	coordResp, err := cl.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var remote uint64
	for _, n := range router.Health().Nodes {
		remote += n.Remote
	}
	if remote == 0 {
		t.Fatal("no remote legs after replication converged")
	}

	// The replica answers the same reads on its replayed state.
	repResp, err := client.New(replicaTS.URL).Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if repResp.Epoch != coordResp.Epoch {
		t.Fatalf("replica epoch %d, coordinator epoch %d", repResp.Epoch, coordResp.Epoch)
	}
	if got, want := renderWire(req.Query, repResp.Answers), renderWire(req.Query, coordResp.Answers); got != want {
		t.Fatalf("replica answers diverge from coordinator:\nreplica:\n%s\ncoordinator:\n%s", got, want)
	}

	// Replica health reports the replication position.
	rh := replica.Health()
	if rh.Replication == nil || rh.Replication.Seq != wantSeq || rh.Replication.Lag != 0 {
		t.Fatalf("replica replication health: %+v", rh.Replication)
	}

	// Failover: owner n0 and the coordinator die; the replica keeps
	// serving the same epoch-consistent reads, and its update surface
	// stays off (it is read-only — writes belonged to the coordinator).
	owners[0].Close()
	coordTS.Close()
	repResp2, err := client.New(replicaTS.URL).Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if repResp2.Epoch != coordResp.Epoch {
		t.Fatalf("replica epoch drifted to %d after coordinator death", repResp2.Epoch)
	}
	if got, want := renderWire(req.Query, repResp2.Answers), renderWire(req.Query, coordResp.Answers); got != want {
		t.Fatal("replica answers changed after coordinator death")
	}
	var u kbtable.Update
	u.AddEntity("Software", "should not land")
	_, err = client.New(replicaTS.URL).Update(context.Background(), &api.UpdateRequest{Ops: u.Ops})
	if client.Code(err) != api.CodeReadOnly {
		t.Fatalf("replica accepted a write (err=%v)", err)
	}
}

// TestStaleSeqRefused pins the consistency handshake: a leg pinned to
// a sequence the node has not applied is refused with stale_epoch.
func TestStaleSeqRefused(t *testing.T) {
	eng, err := kbtable.NewEngine(demoGraph(t), kbtable.EngineOptions{D: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(serve.Config{Engine: eng, D: 3, ReadOnly: true}, "node", "n0")
	ts := httptest.NewServer(node.Handler())
	t.Cleanup(ts.Close)

	cl := client.New(ts.URL)
	_, err = cl.ProbeShard(context.Background(), &api.ClusterProbeRequest{
		Shard: 0, Query: "software", K: 5, Seq: 7,
	})
	if !client.IsStaleEpoch(err) {
		t.Fatalf("want stale_epoch, got %v", err)
	}
	if _, err := cl.ProbeShard(context.Background(), &api.ClusterProbeRequest{
		Shard: 0, Query: "software", K: 5, Seq: 0,
	}); err != nil {
		t.Fatalf("matching seq refused: %v", err)
	}
}
