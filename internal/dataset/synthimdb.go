package dataset

import (
	"fmt"
	"math/rand"

	"kbtable/internal/kg"
)

// IMDBConfig parameterizes SynthIMDB, the stand-in for the paper's IMDB
// knowledge base (7 types, 6.58M entities, 79.42M edges). The two
// IMDB-specific properties Section 5 relies on hold by construction:
// exactly 7 entity types, and directed paths of at most 3 nodes (so d=3
// covers every tree pattern and larger d changes nothing).
type IMDBConfig struct {
	// Movies is the number of movie entities; other types scale with it.
	// Default 8000.
	Movies int
	// Seed drives all randomness; default 1.
	Seed int64
}

func (c IMDBConfig) withDefaults() IMDBConfig {
	if c.Movies == 0 {
		c.Movies = 8000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

var (
	imdbTitleWords = []string{
		"dark", "night", "love", "war", "return", "king", "star", "dead",
		"city", "girl", "man", "story", "last", "first", "blood", "house",
		"game", "summer", "winter", "ghost", "dragon", "lost", "blue",
		"red", "black", "white", "secret", "dream", "fire", "moon",
	}
	imdbFirstNames = []string{
		"mel", "tom", "julia", "brad", "emma", "james", "mary", "robert",
		"linda", "michael", "susan", "david", "karen", "john", "nancy",
	}
	imdbLastNames = []string{
		"gibson", "hanks", "roberts", "pitt", "stone", "dean", "smith",
		"jones", "brown", "davis", "miller", "wilson", "moore", "taylor",
	}
	imdbGenres = []string{
		"action", "comedy", "drama", "thriller", "romance", "horror",
		"western", "animation", "documentary", "crime", "fantasy", "war",
	}
	imdbCompanies = []string{
		"paramount", "universal", "warner", "columbia", "fox", "mgm",
		"lionsgate", "miramax", "dreamworks", "pixar",
	}
	imdbCountries = []string{
		"usa", "uk", "france", "germany", "italy", "japan", "canada",
		"australia", "spain", "india",
	}
	imdbTags = []string{
		"revenge", "heist", "sequel", "superhero", "space", "robot",
		"vampire", "detective", "road trip", "time travel", "zombie",
		"courtroom", "boxing", "chess", "prison",
	}
)

// SynthIMDB generates the IMDB-like knowledge graph with the 7-type schema
//
//	Movie -> starring/director/writer -> Person -> role -> Character
//	Movie -> genre -> Genre, Movie -> producedBy -> Company,
//	Movie -> country -> Country, Movie -> tag -> KeywordTag,
//	Movie -> year -> (Literal)
//
// Person/Character/Genre/Company/Country/KeywordTag are sinks or one hop
// from one, so every directed path has at most 3 nodes. Including the
// reserved Literal type this gives exactly the paper's 7 entity types.
func SynthIMDB(cfg IMDBConfig) *kg.Graph {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	b := kg.NewBuilder()

	nPersons := c.Movies / 2
	if nPersons < 10 {
		nPersons = 10
	}
	nChars := c.Movies / 3
	if nChars < 10 {
		nChars = 10
	}

	persons := make([]kg.NodeID, nPersons)
	for i := range persons {
		persons[i] = b.Entity("Person", fmt.Sprintf("%s %s",
			imdbFirstNames[rng.Intn(len(imdbFirstNames))],
			imdbLastNames[rng.Intn(len(imdbLastNames))]))
	}
	chars := make([]kg.NodeID, nChars)
	for i := range chars {
		chars[i] = b.Entity("Character", fmt.Sprintf("%s %s",
			imdbTitleWords[rng.Intn(len(imdbTitleWords))],
			imdbLastNames[rng.Intn(len(imdbLastNames))]))
	}
	genres := make([]kg.NodeID, len(imdbGenres))
	for i, gname := range imdbGenres {
		genres[i] = b.Entity("Genre", gname)
	}
	companies := make([]kg.NodeID, len(imdbCompanies))
	for i, cname := range imdbCompanies {
		companies[i] = b.Entity("Company", cname+" pictures")
	}
	countries := make([]kg.NodeID, len(imdbCountries))
	for i, cn := range imdbCountries {
		countries[i] = b.Entity("Country", cn)
	}
	tags := make([]kg.NodeID, len(imdbTags))
	for i, tg := range imdbTags {
		tags[i] = b.Entity("KeywordTag", tg)
	}

	// Person -> role -> Character (one hop from a sink).
	for _, p := range persons {
		nroles := rng.Intn(3)
		for r := 0; r < nroles; r++ {
			b.Attr(p, "role", chars[rng.Intn(len(chars))])
		}
	}

	for i := 0; i < c.Movies; i++ {
		title := imdbTitleWords[rng.Intn(len(imdbTitleWords))]
		for w := 0; w < rng.Intn(3); w++ {
			title += " " + imdbTitleWords[rng.Intn(len(imdbTitleWords))]
		}
		m := b.Entity("Movie", title)
		ncast := 1 + rng.Intn(4)
		for j := 0; j < ncast; j++ {
			b.Attr(m, "starring", persons[rng.Intn(len(persons))])
		}
		b.Attr(m, "director", persons[rng.Intn(len(persons))])
		if rng.Float64() < 0.5 {
			b.Attr(m, "writer", persons[rng.Intn(len(persons))])
		}
		b.Attr(m, "genre", genres[rng.Intn(len(genres))])
		if rng.Float64() < 0.8 {
			b.Attr(m, "producedBy", companies[rng.Intn(len(companies))])
		}
		if rng.Float64() < 0.8 {
			b.Attr(m, "country", countries[rng.Intn(len(countries))])
		}
		ntags := rng.Intn(3)
		for j := 0; j < ntags; j++ {
			b.Attr(m, "tag", tags[rng.Intn(len(tags))])
		}
		b.TextAttr(m, "year", fmt.Sprintf("%d", 1950+rng.Intn(75)))
	}
	return b.MustFreeze()
}
