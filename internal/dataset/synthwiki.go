package dataset

import (
	"fmt"
	"math/rand"

	"kbtable/internal/kg"
)

// WikiConfig parameterizes SynthWiki, the laptop-scale stand-in for the
// paper's Wikipedia-infobox knowledge base (1.89M entities, 3,424 types,
// 34.99M edges). The defaults give a graph whose query-time behaviour
// (pattern counts, subtree counts, their spread across queries) scales the
// same way; experiments vary these knobs directly.
type WikiConfig struct {
	// Entities is |V| before literal dummy nodes; default 20000.
	Entities int
	// Types is the number of entity types; default 150.
	Types int
	// AttrVocab is the number of distinct attribute types; default 120.
	AttrVocab int
	// Vocab is the word vocabulary size for entity texts; default 900.
	Vocab int
	// MaxAttrsPerType bounds each type's schema width; default 5.
	MaxAttrsPerType int
	// FillProb is the probability an entity instantiates each schema slot;
	// default 0.75.
	FillProb float64
	// Seed drives all randomness; default 1.
	Seed int64
}

func (c WikiConfig) withDefaults() WikiConfig {
	if c.Entities == 0 {
		c.Entities = 20000
	}
	if c.Types == 0 {
		c.Types = 150
	}
	if c.AttrVocab == 0 {
		c.AttrVocab = 120
	}
	if c.Vocab == 0 {
		c.Vocab = 900
	}
	if c.MaxAttrsPerType == 0 {
		c.MaxAttrsPerType = 7
	}
	if c.FillProb == 0 {
		c.FillProb = 0.85
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// wikiWords is the root word list entity texts draw from; combined with
// numeric suffixes it yields a vocabulary of any requested size while
// keeping words pronounceable (useful when reading experiment output).
var wikiWords = []string{
	"washington", "city", "population", "river", "university", "county",
	"software", "database", "company", "revenue", "album", "band", "song",
	"movie", "actor", "director", "president", "state", "capital", "lake",
	"mountain", "village", "school", "college", "football", "club", "league",
	"season", "airport", "station", "railway", "museum", "church", "bridge",
	"island", "province", "district", "region", "party", "election", "book",
	"author", "publisher", "novel", "journal", "professor", "physics",
	"chemistry", "biology", "history", "science", "engine", "car", "ship",
}

// wikiTypeNames seeds entity-type names.
var wikiTypeNames = []string{
	"Settlement", "Person", "Company", "Software", "Film", "Album", "Book",
	"University", "River", "Mountain", "Airline", "Team", "Station",
	"Building", "Event", "Award", "Language", "Food", "Game", "Ship",
}

// wikiAttrNames seeds attribute-type names.
var wikiAttrNames = []string{
	"Location", "Founder", "Developer", "Population", "Revenue", "Genre",
	"Author", "Publisher", "Director", "Starring", "Capital", "Country",
	"Established", "Elevation", "Length", "Owner", "Products", "Industry",
	"Spouse", "Residence", "Employer", "Operator", "Manufacturer", "Label",
}

// SynthWiki generates the Wiki-like knowledge graph. Entity texts are 1-3
// words Zipf-sampled from the vocabulary, so common words ("city",
// "washington") match many entities, like real infobox titles. Each type
// has a schema of attribute slots pointing at other types or at literal
// text; entities fill slots with FillProb and occasionally multiple values.
func SynthWiki(cfg WikiConfig) *kg.Graph {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	b := kg.NewBuilder()

	vocab := makeVocab(wikiWords, c.Vocab)
	typeNames := makeVocab(wikiTypeNames, c.Types)
	attrNames := makeVocab(wikiAttrNames, c.AttrVocab)

	// Zipf samplers: rank-skewed usage of words and types.
	wordZipf := rand.NewZipf(rng, 1.4, 4, uint64(len(vocab)-1))
	typeZipf := rand.NewZipf(rng, 1.2, 8, uint64(len(typeNames)-1))

	// Per-type schema: slots of (attr, target type or literal).
	type slot struct {
		attr   string
		target int // type index, or -1 for literal text
		multi  bool
	}
	schemas := make([][]slot, len(typeNames))
	for t := range schemas {
		ns := 2 + rng.Intn(c.MaxAttrsPerType-1)
		for s := 0; s < ns; s++ {
			sl := slot{attr: attrNames[rng.Intn(len(attrNames))]}
			switch {
			case rng.Float64() < 0.3:
				sl.target = -1 // literal value
			default:
				// Bias targets toward the populous head types so that
				// entity-to-entity chains (and thus deep patterns) are
				// common, like infobox links to Person/Settlement/Company.
				sl.target = int(float64(len(typeNames)) * rng.Float64() * rng.Float64())
			}
			sl.multi = rng.Float64() < 0.35
			schemas[t] = append(schemas[t], sl)
		}
	}

	// Entities, bucketed by type for edge targeting.
	entType := make([]int, c.Entities)
	byType := make([][]kg.NodeID, len(typeNames))
	nodes := make([]kg.NodeID, c.Entities)
	for i := 0; i < c.Entities; i++ {
		t := int(typeZipf.Uint64())
		entType[i] = t
		nodes[i] = b.Entity(typeNames[t], randText(rng, wordZipf, vocab, 1+rng.Intn(3)))
		byType[t] = append(byType[t], nodes[i])
	}

	// Edges per schema slot.
	for i := 0; i < c.Entities; i++ {
		for _, sl := range schemas[entType[i]] {
			if rng.Float64() >= c.FillProb {
				continue
			}
			nvals := 1
			if sl.multi {
				nvals += rng.Intn(3)
			}
			for v := 0; v < nvals; v++ {
				if sl.target < 0 {
					b.TextAttr(nodes[i], sl.attr, randText(rng, wordZipf, vocab, 1+rng.Intn(3)))
					continue
				}
				pool := byType[sl.target]
				if len(pool) == 0 {
					continue
				}
				b.Attr(nodes[i], sl.attr, pool[rng.Intn(len(pool))])
			}
		}
	}
	return b.MustFreeze()
}

// makeVocab extends a base word list to size n with numbered variants.
func makeVocab(base []string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w := base[i%len(base)]
		if i >= len(base) {
			w = fmt.Sprintf("%s%d", w, i/len(base))
		}
		out = append(out, w)
	}
	return out
}

// randText samples k Zipf-distributed words.
func randText(rng *rand.Rand, z *rand.Zipf, vocab []string, k int) string {
	s := ""
	for i := 0; i < k; i++ {
		if i > 0 {
			s += " "
		}
		s += vocab[z.Uint64()]
	}
	return s
}
