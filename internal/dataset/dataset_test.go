package dataset

import (
	"strings"
	"testing"

	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
	"kbtable/internal/text"
)

func TestFig1Shape(t *testing.T) {
	g, n := Fig1()
	if g.NumNodes() != 15 { // 12 entities + 3 revenue literals
		t.Errorf("nodes = %d, want 15", g.NumNodes())
	}
	if g.Type(n.MSRevenue) != kg.LiteralType {
		t.Errorf("revenue node should be a literal")
	}
	if g.TypeName(g.Type(n.SQLServer)) != "Software" {
		t.Errorf("SQL Server type wrong")
	}
	if !strings.Contains(strings.ToLower(g.Text(n.Book)), "software") {
		t.Errorf("book title must contain 'software' for pattern P2")
	}
	// Deterministic: two builds identical.
	g2, _ := Fig1()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("Fig1 not deterministic")
	}
}

func TestSynthWikiShape(t *testing.T) {
	cfg := WikiConfig{Entities: 1500, Types: 40, Seed: 7}
	g := SynthWiki(cfg)
	if g.NumNodes() < 1500 {
		t.Errorf("nodes = %d, want >= 1500 (entities plus literals)", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatalf("no edges")
	}
	if g.NumTypes() < 10 {
		t.Errorf("too few types: %d", g.NumTypes())
	}
	// Deterministic for equal seeds, different for different seeds.
	g2 := SynthWiki(cfg)
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("SynthWiki not deterministic")
	}
	g3 := SynthWiki(WikiConfig{Entities: 1500, Types: 40, Seed: 8})
	if g3.NumEdges() == g.NumEdges() && g3.NumNodes() == g.NumNodes() {
		t.Logf("warning: different seeds produced identical sizes (possible but unlikely)")
	}
}

func TestSynthWikiQueryable(t *testing.T) {
	g := SynthWiki(WikiConfig{Entities: 1200, Types: 30, Seed: 3})
	ix, err := index.Build(g, index.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := Workload(g, WorkloadConfig{PerM: 4, MaxM: 4, Seed: 3})
	answered := 0
	for _, q := range qs {
		res := search.PETopK(ix, q.Text, search.Options{K: 10, SkipTrees: true})
		if len(res.Patterns) > 0 {
			answered++
		}
	}
	if answered < len(qs)/3 {
		t.Errorf("only %d/%d workload queries have answers; workload too disconnected", answered, len(qs))
	}
}

func TestSynthIMDBShape(t *testing.T) {
	g := SynthIMDB(IMDBConfig{Movies: 800, Seed: 5})
	// Exactly 7 non-literal types + Literal = 8 registered type names.
	if g.NumTypes() != 8 {
		t.Errorf("types = %d, want 8 (7 IMDB types + Literal)", g.NumTypes())
	}
	for _, want := range []string{"Movie", "Person", "Character", "Company", "Genre", "Country"} {
		if g.LookupType(want) < 0 {
			t.Errorf("missing type %s", want)
		}
	}
}

// TestSynthIMDBMaxPathLength verifies the defining property: no directed
// path has more than 3 nodes, so d=3 captures every tree pattern (the
// paper's rationale for fixing d=3 on IMDB).
func TestSynthIMDBMaxPathLength(t *testing.T) {
	g := SynthIMDB(IMDBConfig{Movies: 300, Seed: 2})
	// longest path from each node via DFS with memoization (graph is a DAG
	// by construction; a cycle would overflow the recursion guard).
	memo := make([]int, g.NumNodes())
	for i := range memo {
		memo[i] = -1
	}
	var depth func(v kg.NodeID, guard int) int
	depth = func(v kg.NodeID, guard int) int {
		if guard > 10 {
			t.Fatalf("cycle detected at node %d", v)
		}
		if memo[v] >= 0 {
			return memo[v]
		}
		best := 1
		for _, e := range g.OutEdgeSlice(v) {
			if d := 1 + depth(e.Dst, guard+1); d > best {
				best = d
			}
		}
		memo[v] = best
		return best
	}
	maxLen := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := depth(kg.NodeID(v), 0); d > maxLen {
			maxLen = d
		}
	}
	if maxLen != 3 {
		t.Errorf("longest directed path has %d nodes, want exactly 3", maxLen)
	}
}

func TestSynthIMDBQueryable(t *testing.T) {
	g := SynthIMDB(IMDBConfig{Movies: 500, Seed: 4})
	ix, err := index.Build(g, index.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := search.PETopK(ix, "gibson movie", search.Options{K: 10})
	if len(res.Patterns) == 0 {
		t.Errorf("'gibson movie' should have table answers on SynthIMDB")
	}
}

func TestWorkloadShape(t *testing.T) {
	g := SynthWiki(WikiConfig{Entities: 800, Types: 20, Seed: 1})
	qs := Workload(g, WorkloadConfig{PerM: 5, MaxM: 6, Seed: 1})
	if len(qs) != 30 {
		t.Fatalf("got %d queries, want 30", len(qs))
	}
	counts := map[int]int{}
	for _, q := range qs {
		counts[q.M]++
		words := strings.Fields(q.Text)
		if len(words) != q.M {
			t.Errorf("query %q labeled m=%d", q.Text, q.M)
		}
		for _, w := range words {
			if toks := text.Tokenize(w); len(toks) != 1 || toks[0] != w {
				t.Errorf("keyword %q is not a clean token", w)
			}
		}
	}
	for m := 1; m <= 6; m++ {
		if counts[m] != 5 {
			t.Errorf("m=%d has %d queries, want 5", m, counts[m])
		}
	}
	// Deterministic.
	qs2 := Workload(g, WorkloadConfig{PerM: 5, MaxM: 6, Seed: 1})
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatalf("workload not deterministic at %d", i)
		}
	}
}

func TestWorkloadEmptyGraph(t *testing.T) {
	g := kg.NewBuilder().MustFreeze()
	if qs := Workload(g, WorkloadConfig{PerM: 2, MaxM: 2}); qs != nil {
		t.Errorf("empty graph should yield no workload")
	}
}

func TestRandomEntitySubset(t *testing.T) {
	g := SynthWiki(WikiConfig{Entities: 500, Types: 10, Seed: 1})
	sub := RandomEntitySubset(g, 0.25, 42)
	want := g.NumNodes() / 4
	if len(sub) != want {
		t.Errorf("subset size = %d, want %d", len(sub), want)
	}
	seen := map[kg.NodeID]bool{}
	for _, v := range sub {
		if seen[v] {
			t.Fatalf("duplicate node in subset")
		}
		seen[v] = true
		if int(v) >= g.NumNodes() {
			t.Fatalf("node out of range")
		}
	}
	// Deterministic by seed.
	sub2 := RandomEntitySubset(g, 0.25, 42)
	for i := range sub {
		if sub[i] != sub2[i] {
			t.Fatalf("subset not deterministic")
		}
	}
	// Induced graph works end-to-end.
	ind, _ := kg.Induce(g, sub)
	if ind.NumNodes() != len(sub) {
		t.Errorf("induced nodes = %d, want %d", ind.NumNodes(), len(sub))
	}
}
