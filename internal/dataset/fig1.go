// Package dataset provides the knowledge graphs and query workloads used by
// tests, examples and the experiment harness: the paper's Figure 1 toy
// graph, and synthetic stand-ins for the Wiki and IMDB knowledge bases
// (see DESIGN.md for the substitution rationale).
package dataset

import "kbtable/internal/kg"

// Fig1Nodes names the interesting nodes of the Figure 1 graph.
type Fig1Nodes struct {
	SQLServer, RelDB, Microsoft, MSRevenue kg.NodeID
	Cpp, BillGates                         kg.NodeID
	OracleDB, ORDB, Oracle, OracleRevenue  kg.NodeID
	Book, Springer, SpringerRevenue        kg.NodeID
	Windows, Bing                          kg.NodeID
}

// Fig1 builds the knowledge graph of the paper's Figure 1(d): SQL Server
// and Oracle DB with their genres, developers and revenues, Microsoft's
// founder and products, and the "Handbook of Database Systems" book path
// that yields tree pattern P2.
func Fig1() (*kg.Graph, Fig1Nodes) {
	b := kg.NewBuilder()
	var n Fig1Nodes
	n.SQLServer = b.Entity("Software", "SQL Server")
	n.RelDB = b.Entity("Model", "Relational database")
	n.Microsoft = b.Entity("Company", "Microsoft")
	n.Cpp = b.Entity("Programming Language", "C++")
	n.BillGates = b.Entity("Person", "Bill Gates")
	n.OracleDB = b.Entity("Software", "Oracle DB")
	n.ORDB = b.Entity("Model", "O-R database")
	n.Oracle = b.Entity("Company", "Oracle Corp")
	// The title contains both "database" and "software" so that tree
	// pattern P2 of Figure 2(b) exists, as in the paper's figure.
	n.Book = b.Entity("Book", "Handbook of Database Software")
	n.Springer = b.Entity("Company", "Springer")
	n.Windows = b.Entity("Software", "Windows")
	n.Bing = b.Entity("Software", "Bing")

	b.Attr(n.SQLServer, "Genre", n.RelDB)
	b.Attr(n.SQLServer, "Developer", n.Microsoft)
	b.Attr(n.SQLServer, "Written in", n.Cpp)
	b.Attr(n.SQLServer, "Reference", n.Book)
	n.MSRevenue = b.TextAttr(n.Microsoft, "Revenue", "US$ 77 billion")
	b.Attr(n.Microsoft, "Founder", n.BillGates)
	b.Attr(n.Microsoft, "Products", n.Windows)
	b.Attr(n.Microsoft, "Products", n.Bing)
	b.Attr(n.OracleDB, "Genre", n.ORDB)
	b.Attr(n.OracleDB, "Developer", n.Oracle)
	b.Attr(n.OracleDB, "Written in", n.Cpp)
	n.OracleRevenue = b.TextAttr(n.Oracle, "Revenue", "US$ 37 billion")
	b.Attr(n.Book, "Publisher", n.Springer)
	n.SpringerRevenue = b.TextAttr(n.Springer, "Revenue", "US$ 1 billion")

	return b.MustFreeze(), n
}
