package dataset

import (
	"math/rand"
	"strings"

	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// Query is one workload query.
type Query struct {
	Text string
	M    int // number of keywords
}

// WorkloadConfig parameterizes query generation, standing in for the
// paper's 500 Bing-log queries (Wiki) and 500 vocabulary-sampled queries
// (IMDB): 1..MaxM keywords, PerM queries each.
type WorkloadConfig struct {
	// PerM is the number of queries per keyword count; default 50.
	PerM int
	// MaxM is the largest keyword count; default 10.
	MaxM int
	// D bounds the random walks that harvest co-occurring keywords;
	// default 3.
	D int
	// RandomFrac is the fraction of keywords drawn uniformly from the
	// graph vocabulary instead of a grounded walk (such words often make
	// the query empty or selective, diversifying the workload); default 0.2.
	RandomFrac float64
	// Seed drives generation; default 1.
	Seed int64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.PerM == 0 {
		c.PerM = 50
	}
	if c.MaxM == 0 {
		c.MaxM = 10
	}
	if c.D == 0 {
		c.D = 3
	}
	if c.RandomFrac == 0 {
		c.RandomFrac = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Workload generates PerM queries for each keyword count 1..MaxM. Grounded
// keywords are harvested from random forward walks out of a shared root, so
// most queries have valid subtrees (a root reaching every keyword), with
// result sizes spread over orders of magnitude — the x-axes of Figures 7–9.
func Workload(g *kg.Graph, cfg WorkloadConfig) []Query {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	if g.NumNodes() == 0 {
		return nil
	}
	vocab := graphVocabulary(g)
	if len(vocab) == 0 {
		return nil
	}
	var out []Query
	for m := 1; m <= c.MaxM; m++ {
		for q := 0; q < c.PerM; q++ {
			words := groundedKeywords(g, rng, m, c)
			for len(words) < m { // top up from the vocabulary
				words = append(words, vocab[rng.Intn(len(vocab))])
			}
			out = append(out, Query{Text: strings.Join(words[:m], " "), M: m})
		}
	}
	return out
}

// groundedKeywords picks a random root and harvests up to m keywords from
// random paths of at most cfg.D nodes out of it.
func groundedKeywords(g *kg.Graph, rng *rand.Rand, m int, cfg WorkloadConfig) []string {
	if g.NumNodes() == 0 {
		return nil
	}
	root := kg.NodeID(rng.Intn(g.NumNodes()))
	// Prefer roots with some fan-out so multi-keyword queries can ground.
	for tries := 0; tries < 10 && g.OutDegree(root) == 0; tries++ {
		root = kg.NodeID(rng.Intn(g.NumNodes()))
	}
	seen := map[string]bool{}
	var words []string
	add := func(w string) {
		if w != "" && !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	vocab := graphVocabulary(g)
	// At most one uniformly-random keyword per query (probability
	// RandomFrac): injecting it per keyword would make almost every
	// large-m query empty, while the paper's log queries mostly have
	// answers at every m.
	randomAt := -1
	if rng.Float64() < cfg.RandomFrac {
		randomAt = rng.Intn(m)
	}
	for i := 0; len(words) < m && i < m*8; i++ {
		if len(words) == randomAt && len(vocab) > 0 {
			add(vocab[rng.Intn(len(vocab))])
			continue
		}
		// Random walk of up to D-1 edges; harvest from the stop position.
		cur := root
		steps := rng.Intn(cfg.D)
		var lastAttr string
		for s := 0; s < steps; s++ {
			deg := g.OutDegree(cur)
			if deg == 0 {
				break
			}
			first, _ := g.OutEdges(cur)
			e := g.Edge(first + kg.EdgeID(rng.Intn(deg)))
			lastAttr = g.AttrName(e.Attr)
			cur = e.Dst
		}
		var src string
		switch rng.Intn(3) {
		case 0:
			src = g.Text(cur)
		case 1:
			src = g.TypeName(g.Type(cur))
		default:
			if lastAttr != "" {
				src = lastAttr
			} else {
				src = g.Text(cur)
			}
		}
		toks := text.Tokenize(src)
		if len(toks) > 0 {
			add(toks[rng.Intn(len(toks))])
		}
	}
	return words
}

// graphVocabulary collects the distinct tokens of all node texts, type
// names and attribute names (the paper's "IMDB vocabulary" sampling pool).
// Deterministic order: first occurrence during the scan.
func graphVocabulary(g *kg.Graph) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		for _, t := range text.Tokenize(s) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	for t := 0; t < g.NumTypes(); t++ {
		add(g.TypeName(kg.TypeID(t)))
	}
	for a := 0; a < g.NumAttrs(); a++ {
		add(g.AttrName(kg.AttrID(a)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		add(g.Text(kg.NodeID(v)))
	}
	return out
}

// RandomEntitySubset picks a fraction of the nodes uniformly at random,
// for the induced-subgraph scalability experiment (Figure 10 / Exp-III).
func RandomEntitySubset(g *kg.Graph, frac float64, seed int64) []kg.NodeID {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	k := int(float64(n) * frac)
	perm := rng.Perm(n)
	out := make([]kg.NodeID, 0, k)
	for _, v := range perm[:k] {
		out = append(out, kg.NodeID(v))
	}
	return out
}
