package shard

import (
	"fmt"
	"io"

	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/rank"
)

// Persistence hooks for the durable snapshot store (internal/store):
// a sharded engine is fully determined by its graph snapshot, the
// ownership table (which CANNOT be recomputed from the graph — a
// tombstoned node is retyped, so its recorded assignment is the only
// witness of its owner), the per-shard indexes, and the per-shard
// epochs. PageRank is a pure function of the graph and is recomputed on
// load.

// Owners returns a copy of the node → shard ownership table.
func (e *Engine) Owners() []uint8 {
	out := make([]uint8, len(e.owner))
	copy(out, e.owner)
	return out
}

// EncodeShard serializes shard si's index in the index wire format.
func (e *Engine) EncodeShard(si int, w io.Writer) error {
	u, err := e.resident(si)
	if err != nil {
		return err
	}
	return u.ix.Encode(w)
}

// FromParts reassembles an engine from persisted state: the graph, the
// ownership table, one loaded index per shard, and the shards' update
// epochs (nil = all zero). The result behaves identically to the engine
// that was saved: searches, plans and further ApplyDelta chains produce
// the same bytes. opts must carry the build-time options (D, UniformPR,
// Synonyms); RootFilter/DirtyRoots/PageRank stay reserved for the shard
// layer, and PageRank is recomputed from the graph when not uniform.
func FromParts(g *kg.Graph, owner []uint8, ixs []*index.Index, epochs []uint64, opts index.Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	n := len(ixs)
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", n, MaxShards)
	}
	if opts.RootFilter != nil || opts.DirtyRoots != nil || opts.PageRank != nil {
		return nil, fmt.Errorf("shard: RootFilter/DirtyRoots/PageRank are managed by the shard layer")
	}
	if len(owner) != g.NumNodes() {
		return nil, fmt.Errorf("shard: ownership table covers %d of %d nodes", len(owner), g.NumNodes())
	}
	for v, o := range owner {
		if int(o) >= n {
			return nil, fmt.Errorf("shard: node %d owned by shard %d of %d", v, o, n)
		}
	}
	if epochs != nil && len(epochs) != n {
		return nil, fmt.Errorf("shard: %d epochs for %d shards", len(epochs), n)
	}
	if opts.D == 0 {
		opts.D = 3
	}
	e := &Engine{g: g, n: n, opts: opts, owner: owner}
	if !opts.UniformPR {
		e.pr = rank.PageRank(g, rank.Options{})
	}
	e.units = make([]*unit, n)
	for si, ix := range ixs {
		if ix == nil {
			return nil, fmt.Errorf("shard: shard %d has no index", si)
		}
		if ix.D() != opts.D {
			return nil, fmt.Errorf("shard: shard %d index built with d=%d, engine wants d=%d", si, ix.D(), opts.D)
		}
		if ix.Graph() != g {
			return nil, fmt.Errorf("shard: shard %d index bound to a different graph", si)
		}
		u := &unit{ix: ix}
		if epochs != nil {
			u.epoch = epochs[si]
		}
		e.units[si] = u
	}
	return e, nil
}
