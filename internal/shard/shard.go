// Package shard partitions a knowledge base's candidate roots across N
// independent index shards and answers queries scatter-gather.
//
// The unit of partitioning is the candidate root: the paper's three
// algorithms all aggregate a tree pattern from per-root subtree sets
// (Theorem 5 decomposes every pattern score per candidate root), and a
// valid subtree lives entirely under its root, so assigning each root —
// with read access to its d-neighborhood — to exactly one shard splits a
// query into N disjoint sub-queries. Each shard runs the existing
// serial/parallel executors over a root-filtered index; the gather stage
// re-folds per-root partial aggregates in ascending root order, which
// reproduces the unsharded engine's two-level fold bit for bit (see
// search.Options.CollectRootAggs). The same tree pattern discovered on two
// shards — its roots hash apart — merges into ONE pattern (content-keyed:
// per-shard pattern tables intern IDs independently) with one table.
//
// Roots are assigned by a type-aware hash of (τ(v), v), fixed at node
// creation time and never reassigned (removal retypes tombstones, so the
// assignment is recorded, not recomputed). Updates route to the shards
// owning dirty roots; untouched shards rebind to the new snapshot without
// copying postings, and each shard keeps its own epoch counter.
//
// Shards currently share the immutable *kg.Graph in process; because every
// shard is a self-contained index (own dictionary, own pattern table) and
// the gather protocol only exchanges per-root aggregates, trees, and
// content keys, shards can move behind process or machine boundaries
// without changing the merge.
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/rank"
	"kbtable/internal/search"
)

// MaxShards bounds the shard count (ownership is stored in one byte per
// node).
const MaxShards = 256

// ownerOf assigns a node to a shard by a type-aware hash: the node's type
// participates so that IDs clustered by insertion order (generators emit
// whole types consecutively) still spread evenly. The splitmix64 finalizer
// scrambles the combined key.
func ownerOf(t kg.TypeID, v kg.NodeID, n int) uint8 {
	x := uint64(uint32(t))<<32 | uint64(uint32(v))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint8(x % uint64(n))
}

// unit is one shard: a root-filtered path index plus the lazily built
// root-filtered baseline, and the shard's epoch (bumped whenever an update
// splices this shard's postings).
type unit struct {
	ix    *index.Index
	epoch uint64

	blOnce sync.Once
	bl     *search.BaselineIndex
	blErr  error
}

// Engine is a sharded knowledge-base engine over one graph snapshot.
// Engines are immutable: searches may run concurrently, and ApplyDelta
// returns a new Engine while the receiver keeps serving its snapshot.
type Engine struct {
	g     *kg.Graph
	n     int
	opts  index.Options // base build options; RootFilter/DirtyRoots/PageRank are per-call
	owner []uint8       // node -> shard, fixed at node creation
	pr    []float64     // PageRank of g, shared by shards and baselines (nil under UniformPR)
	units []*unit
}

// NewEngine partitions g's roots across n shards and builds the per-shard
// indexes in parallel. opts applies to every shard; opts.RootFilter,
// opts.DirtyRoots and opts.PageRank are reserved for the shard layer
// itself. PageRank (a whole-graph property) is computed once and shared.
func NewEngine(g *kg.Graph, n int, opts index.Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", n, MaxShards)
	}
	if opts.RootFilter != nil || opts.DirtyRoots != nil || opts.PageRank != nil {
		return nil, fmt.Errorf("shard: RootFilter/DirtyRoots/PageRank are managed by the shard layer")
	}
	if opts.D == 0 {
		opts.D = 3
	}
	owner := make([]uint8, g.NumNodes())
	for v := range owner {
		owner[v] = ownerOf(g.Type(kg.NodeID(v)), kg.NodeID(v), n)
	}
	e := &Engine{g: g, n: n, opts: opts, owner: owner}
	if !opts.UniformPR {
		e.pr = rank.PageRank(g, rank.Options{})
	}

	// Build the shards in parallel; each build also parallelizes
	// internally, so split the worker budget across shards.
	perShard := e.splitWorkers(opts.Workers)
	e.units = make([]*unit, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			so := opts
			so.Workers = perShard
			so.RootFilter = e.filter(si)
			so.PageRank = e.pr
			ix, err := index.Build(g, so)
			if err != nil {
				errs[si] = err
				return
			}
			e.units[si] = &unit{ix: ix}
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
	}
	return e, nil
}

// splitWorkers divides a per-query worker budget (0 = GOMAXPROCS) across
// the N-way shard scatter.
func (e *Engine) splitWorkers(w int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w = w / e.n; w < 1 {
		w = 1
	}
	return w
}

// filter returns the ownership test for shard si over the engine's owner
// table. The closure captures the table by reference; owner tables are
// append-only per engine, so concurrent readers are safe.
func (e *Engine) filter(si int) func(kg.NodeID) bool {
	owner := e.owner
	return func(v kg.NodeID) bool {
		return int(v) < len(owner) && owner[v] == uint8(si)
	}
}

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return e.n }

// Graph returns the engine's graph snapshot.
func (e *Engine) Graph() *kg.Graph { return e.g }

// D returns the height threshold shared by every shard.
func (e *Engine) D() int { return e.opts.D }

// Index returns shard si's path index (read-only), or nil when the
// shard is not resident on this engine (partial engines).
func (e *Engine) Index(si int) *index.Index {
	if u := e.units[si]; u != nil {
		return u.ix
	}
	return nil
}

// Owner returns the shard owning node v.
func (e *Engine) Owner(v kg.NodeID) int { return int(e.owner[v]) }

// Epochs returns each shard's update epoch: the number of updates that
// actually spliced that shard's postings since the engine chain began.
func (e *Engine) Epochs() []uint64 {
	out := make([]uint64, e.n)
	for i, u := range e.units {
		if u != nil {
			out[i] = u.epoch
		}
	}
	return out
}

// ShardStat describes one shard for monitoring.
type ShardStat struct {
	Roots   int    // live nodes owned by the shard
	Entries int64  // postings in the shard's index
	Epoch   uint64 // update epoch
}

// Stats returns per-shard statistics; roots are counted over live nodes.
func (e *Engine) Stats() []ShardStat {
	out := make([]ShardStat, e.n)
	for si, u := range e.units {
		if u == nil {
			continue // not resident (partial engine)
		}
		out[si].Entries = u.ix.Stats().NumEntries
		out[si].Epoch = u.epoch
	}
	for v := 0; v < e.g.NumNodes(); v++ {
		if !e.g.Removed(kg.NodeID(v)) {
			out[e.owner[v]].Roots++
		}
	}
	return out
}

// baseline returns shard si's lazily built baseline index.
func (e *Engine) baseline(si int) (*search.BaselineIndex, error) {
	u := e.units[si]
	if u == nil {
		return nil, fmt.Errorf("shard: shard %d is not resident on this engine", si)
	}
	u.blOnce.Do(func() {
		u.bl, u.blErr = search.NewBaseline(e.g, search.BaselineOptions{
			D:          e.opts.D,
			UniformPR:  e.opts.UniformPR,
			PageRank:   e.pr,
			Synonyms:   e.opts.Synonyms,
			RootFilter: e.filter(si),
		})
	})
	return u.bl, u.blErr
}
