package shard

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
)

// updateSequences is the number of randomized update batches each dataset
// chain is driven through (the acceptance floor is 100+). Every sharded
// engine applies the same delta chain as the unsharded reference and must
// answer identically after every batch.
const updateSequences = 110

// randomUpdate stages 1..4 random valid mutations against g (mirroring
// internal/search's update property workload).
func randomUpdate(rng *rand.Rand, g *kg.Graph) (*kg.Changed, error) {
	d := kg.NewDelta(g)
	typeName := func() string {
		return g.TypeName(kg.TypeID(1 + rng.Intn(g.NumTypes()-1))) // never Literal
	}
	attrName := func() string { return g.AttrName(kg.AttrID(rng.Intn(g.NumAttrs()))) }
	node := func() kg.NodeID { return kg.NodeID(rng.Intn(g.NumNodes())) }
	texts := []string{"nova blend", "quartz", "ember field", "cobalt", "drift"}
	staged := 0
	for op := 0; op < 1+rng.Intn(4) || staged == 0; op++ {
		if op > 40 {
			break
		}
		switch rng.Intn(6) {
		case 0:
			if _, err := d.AddEntity(typeName(), texts[rng.Intn(len(texts))]); err == nil {
				staged++
			}
		case 1:
			if d.AddAttr(node(), attrName(), node()) == nil {
				staged++
			}
		case 2:
			if _, err := d.AddTextAttr(node(), attrName(), texts[rng.Intn(len(texts))]); err == nil {
				staged++
			}
		case 3:
			if g.NumEdges() > 0 {
				e := g.Edge(kg.EdgeID(rng.Intn(g.NumEdges())))
				if _, err := d.RemoveEdge(e.Src, g.AttrName(e.Attr), e.Dst); err == nil {
					staged++
				}
			}
		case 4:
			if d.RemoveEntity(node()) == nil {
				staged++
			}
		case 5:
			if d.SetText(node(), texts[rng.Intn(len(texts))]) == nil {
				staged++
			}
		}
	}
	return d.Apply()
}

// TestShardUpdateEquivalence drives the unsharded index and every sharded
// engine through the same randomized delta chain; after every batch the
// sharded top-k (scores, signatures, composed tables) must equal the
// incrementally maintained unsharded engine's for PE and LE, and for the
// baseline on a sampling of the chain (it is rebuilt from the graph, so
// it also vouches for the shared snapshot itself).
func TestShardUpdateEquivalence(t *testing.T) {
	datasets := map[string]*kg.Graph{
		"wiki": dataset.SynthWiki(dataset.WikiConfig{Entities: 260, Types: 14, Seed: 3}),
		"imdb": dataset.SynthIMDB(dataset.IMDBConfig{Movies: 90, Seed: 3}),
	}
	for name, base := range datasets {
		iopts := index.Options{D: 3, UniformPR: name == "imdb"} // one dataset per PageRank mode
		ix, err := index.Build(base, iopts)
		if err != nil {
			t.Fatal(err)
		}
		engines := make([]*Engine, len(shardCounts))
		for i, n := range shardCounts {
			if engines[i], err = NewEngine(base, n, iopts); err != nil {
				t.Fatal(err)
			}
		}
		queries := testQueries(base)[:3]
		opts := search.Options{K: 8, MaxTreesPerPattern: 4}

		rng := rand.New(rand.NewSource(99))
		cur := ix
		for seq := 0; seq < updateSequences; seq++ {
			ch, err := randomUpdate(rng, cur.Graph())
			if err != nil {
				t.Fatalf("%s seq %d: %v", name, seq, err)
			}
			next, _, err := cur.ApplyDelta(ch, iopts)
			if err != nil {
				t.Fatalf("%s seq %d: %v", name, seq, err)
			}
			cur = next
			for i := range engines {
				ne, us, err := engines[i].ApplyDelta(ch)
				if err != nil {
					t.Fatalf("%s seq %d shards=%d: %v", name, seq, shardCounts[i], err)
				}
				if us.AffectedShards > shardCounts[i] {
					t.Fatalf("%s seq %d: %d affected shards out of %d", name, seq, us.AffectedShards, shardCounts[i])
				}
				engines[i] = ne
			}

			algos := []Algo{PatternEnum, LinearEnum}
			if seq%10 == 9 {
				algos = append(algos, Baseline)
			}
			g := cur.Graph()
			for _, algo := range algos {
				var bl *search.BaselineIndex
				if algo == Baseline {
					if bl, err = search.NewBaseline(g, search.BaselineOptions{D: iopts.D, UniformPR: iopts.UniformPR}); err != nil {
						t.Fatal(err)
					}
				}
				for _, q := range queries {
					want := unshardedResult(t, g, cur, bl, algo, q, opts)
					for i, e := range engines {
						got := shardedResult(t, e, algo, q, opts)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%s seq %d algo=%d shards=%d query=%q diverged:\nunsharded:\n%s\nsharded:\n%s",
								name, seq, algo, shardCounts[i], q,
								strings.Join(want, "\n---\n"), strings.Join(got, "\n---\n"))
						}
					}
				}
			}
		}
	}
}

// TestShardRoutingSkipsUntouchedShards pins the routing contract: a
// text-only update re-enumerates only the shards owning affected roots,
// everyone else rebinds (same epoch, shared postings).
func TestShardRoutingSkipsUntouchedShards(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 400, Types: 16, Seed: 5})
	e, err := NewEngine(g, 4, index.Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find a node whose affected-root set provably lands on a proper
	// subset of the shards (one always exists: some node's backward
	// d-neighborhood is small).
	var ch *kg.Changed
	owners := map[int]bool{}
	for v := 0; v < g.NumNodes(); v++ {
		d := kg.NewDelta(g)
		if err := d.SetText(kg.NodeID(v), "renamed thing"); err != nil {
			continue
		}
		c, err := d.Apply()
		if err != nil {
			t.Fatal(err)
		}
		dirty := kg.AffectedRoots(c, e.D()-1)
		owners = map[int]bool{}
		for _, r := range dirty {
			owners[e.Owner(r)] = true
		}
		if len(owners) > 0 && len(owners) < e.NumShards() {
			ch = c
			break
		}
	}
	if ch == nil {
		t.Fatal("no node with a proper-subset blast radius found")
	}
	ne, us, err := e.ApplyDelta(ch)
	if err != nil {
		t.Fatal(err)
	}
	if us.AffectedShards != len(owners) {
		t.Fatalf("text edit should touch exactly the %d shards owning dirty roots, got %d (dirty=%d)",
			len(owners), us.AffectedShards, us.DirtyRoots)
	}
	before, after := e.Epochs(), ne.Epochs()
	bumped := 0
	for i := range after {
		if after[i] != before[i] {
			bumped++
		} else if ne.Index(i).Graph() != ch.New {
			t.Fatalf("untouched shard %d not rebound to the new snapshot", i)
		}
	}
	if bumped != us.AffectedShards {
		t.Fatalf("epoch bumps (%d) != affected shards (%d)", bumped, us.AffectedShards)
	}
}

// TestOwnershipPartition pins that every live node is owned by exactly one
// shard and assignments survive updates (tombstoned nodes keep their
// shard).
func TestOwnershipPartition(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 300, Types: 12, Seed: 9})
	e, err := NewEngine(g, 7, index.Options{D: 2, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := kg.NodeID(42)
	ownerBefore := e.Owner(victim)
	d := kg.NewDelta(g)
	if err := d.RemoveEntity(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEntity(g.TypeName(2), "fresh node"); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	ne, _, err := e.ApplyDelta(ch)
	if err != nil {
		t.Fatal(err)
	}
	if ne.Owner(victim) != ownerBefore {
		t.Fatalf("tombstoned node moved shards: %d -> %d", ownerBefore, ne.Owner(victim))
	}
	added := kg.NodeID(ch.New.NumNodes() - 1)
	if o := ne.Owner(added); o < 0 || o >= 7 {
		t.Fatalf("added node owner out of range: %d", o)
	}
	// Per-shard stats partition the live nodes.
	total := 0
	for _, st := range ne.Stats() {
		total += st.Roots
	}
	live := ch.New.NumNodes() - ch.New.NumRemoved()
	if total != live {
		t.Fatalf("shard root counts sum to %d, want %d live nodes", total, live)
	}
}
