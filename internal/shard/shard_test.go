package shard

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
)

// shardCounts are the partition widths the acceptance criteria pin,
// including a prime that never divides the synthetic type counts.
var shardCounts = []int{1, 2, 4, 7}

// testDatasets builds the reduced-scale synthetic corpora.
func testDatasets(t testing.TB) map[string]*kg.Graph {
	t.Helper()
	return map[string]*kg.Graph{
		"wiki": dataset.SynthWiki(dataset.WikiConfig{Entities: 600, Types: 24, Seed: 7}),
		"imdb": dataset.SynthIMDB(dataset.IMDBConfig{Movies: 220, Seed: 7}),
	}
}

// testQueries derives a deterministic workload from the graph's texts.
func testQueries(g *kg.Graph) []string {
	var words []string
	seen := map[string]bool{}
	for v := 0; v < g.NumNodes() && len(words) < 10; v++ {
		for _, f := range strings.Fields(strings.ToLower(g.Text(kg.NodeID(v)))) {
			if len(f) > 2 && !seen[f] {
				seen[f] = true
				words = append(words, f)
			}
			if len(words) >= 10 {
				break
			}
		}
	}
	qs := append([]string(nil), words[:min(3, len(words))]...)
	if len(words) >= 5 {
		qs = append(qs, words[0]+" "+words[4])
	}
	if len(words) >= 7 {
		qs = append(qs, words[2]+" "+words[6])
	}
	if len(words) >= 9 {
		qs = append(qs, words[1]+" "+words[5]+" "+words[8])
	}
	return qs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// renderPattern snapshots one ranked pattern at full user-visible
// fidelity: exact score bits, aggregate, pattern text and composed table.
func renderPattern(g *kg.Graph, pt *core.PatternTable, p core.TreePattern, score float64, agg core.PatternScore, trees []core.Subtree, surfaces []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "score=%.17g sum=%.17g max=%.17g count=%d\n", score, agg.Sum, agg.Max, agg.Count)
	sb.WriteString(p.Render(g, pt, surfaces))
	sb.WriteByte('\n')
	sb.WriteString(core.ComposeTable(g, pt, p, trees).Render(-1))
	return sb.String()
}

// unshardedResult runs the reference single-index engine.
func unshardedResult(t testing.TB, g *kg.Graph, ix *index.Index, bl *search.BaselineIndex, algo Algo, query string, opts search.Options) []string {
	t.Helper()
	var out []string
	switch algo {
	case PatternEnum, LinearEnum:
		var res *search.Result
		var err error
		if algo == PatternEnum {
			res, err = search.PETopKCtx(context.Background(), ix, query, opts)
		} else {
			res, err = search.LETopKCtx(context.Background(), ix, query, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, rp := range res.Patterns {
			out = append(out, renderPattern(g, ix.PatternTable(), rp.Pattern, rp.Score, rp.Agg, rp.Trees, res.Stats.Surfaces))
		}
	default:
		res, err := bl.SearchCtx(context.Background(), query, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, rp := range res.Patterns {
			out = append(out, renderPattern(g, res.Table, rp.Pattern, rp.Score, rp.Agg, rp.Trees, res.Stats.Surfaces))
		}
	}
	return out
}

// shardedResult runs the scatter-gather engine at the same fidelity.
func shardedResult(t testing.TB, e *Engine, algo Algo, query string, opts search.Options) []string {
	t.Helper()
	res, err := e.Search(context.Background(), algo, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Patterns))
	for _, rp := range res.Patterns {
		out = append(out, renderPattern(e.Graph(), rp.Table, rp.Pattern, rp.Score, rp.Agg, rp.Trees, res.Stats.Surfaces))
	}
	return out
}

// TestShardEquivalence: for every synthetic dataset, algorithm and shard
// count, the sharded top-k — scores (exact bits), pattern signatures, and
// row multisets (in fact full row order) — is identical to the unsharded
// engine's.
func TestShardEquivalence(t *testing.T) {
	for name, g := range testDatasets(t) {
		for _, uniform := range []bool{true, false} {
			iopts := index.Options{D: 3, UniformPR: uniform}
			ix, err := index.Build(g, iopts)
			if err != nil {
				t.Fatal(err)
			}
			bl, err := search.NewBaseline(g, search.BaselineOptions{D: 3, UniformPR: uniform})
			if err != nil {
				t.Fatal(err)
			}
			engines := make([]*Engine, 0, len(shardCounts))
			for _, n := range shardCounts {
				e, err := NewEngine(g, n, iopts)
				if err != nil {
					t.Fatal(err)
				}
				engines = append(engines, e)
			}
			opts := search.Options{K: 10, MaxTreesPerPattern: 8}
			for _, algo := range []Algo{PatternEnum, LinearEnum, Baseline} {
				for _, q := range testQueries(g) {
					want := unshardedResult(t, g, ix, bl, algo, q, opts)
					for ei, e := range engines {
						got := shardedResult(t, e, algo, q, opts)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%s uniform=%v algo=%d shards=%d query=%q:\nunsharded (%d):\n%s\nsharded (%d):\n%s",
								name, uniform, algo, shardCounts[ei], q, len(want), strings.Join(want, "\n---\n"), len(got), strings.Join(got, "\n---\n"))
						}
					}
				}
			}
		}
	}
}
