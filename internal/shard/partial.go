package shard

import (
	"context"
	"fmt"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/rank"
	"kbtable/internal/search"
)

// Cluster scatter/gather: one shard's contribution to a query in a
// shard-table-independent wire form, plus partial engines that host only
// a subset of a cluster's shards.
//
// Exactness across process boundaries follows the same Theorem-5 argument
// as the in-process scatter: a shard's contribution is fully described by
// its per-pattern per-root partial aggregates (search.RootAgg) keyed by
// pattern CONTENT (the path patterns' type/attr sequences), never by
// shard-local interned PatternIDs. A coordinator holding content-identical
// per-shard indexes interns the wire paths into its own tables and re-runs
// the canonical gather fold — answers are bit-identical to a single-node
// run. Scores travel as float64 and Go's encoding/json round-trips float64
// exactly, so serialization adds no drift.

// WirePath is one root-to-keyword path pattern in content form
// (core.PathPattern without the interning table).
type WirePath struct {
	Types   []int32 `json:"types"`
	Attrs   []int32 `json:"attrs,omitempty"`
	EdgeEnd bool    `json:"edge_end,omitempty"`
}

// WireRootAgg is one candidate root's partial aggregate of a pattern:
// the exact per-root decomposition of the pattern score (Theorem 5).
type WireRootAgg struct {
	Root  int64   `json:"root"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// WirePattern is one tree pattern discovered on one shard: its member
// path patterns (index i matches query keyword i) and its per-root
// partial aggregates in ascending root order.
type WirePattern struct {
	Paths    []WirePath    `json:"paths"`
	RootAggs []WireRootAgg `json:"root_aggs,omitempty"`
}

// WirePlanStats is search.PlanStats in wire form: the prepare-stage
// statistics a shard's planner probe produced. Per-shard stats merge in
// ascending shard order exactly as the in-process probe merges them.
type WirePlanStats struct {
	CandidateRoots int   `json:"candidate_roots"`
	RootTypes      int   `json:"root_types"`
	PatternSpace   int64 `json:"pattern_space"`
	Frontier       int64 `json:"frontier"`
	PostingRoots   []int `json:"posting_roots,omitempty"`
}

// WirePartial is one shard's complete scatter output: every pattern the
// shard discovered (retention is unbounded during a scatter — the global
// cut happens at the gather) plus the per-shard statistics the gather
// folds.
type WirePartial struct {
	Shard    int           `json:"shard"`
	Patterns []WirePattern `json:"patterns"`

	// QueryStats counters the gather sums across shards.
	CandidateRoots int   `json:"candidate_roots"`
	SampledRoots   int   `json:"sampled_roots,omitempty"`
	TreesFound     int64 `json:"trees_found"`
	EmptyChecked   int64 `json:"empty_checked,omitempty"`
	BoundPruned    int64 `json:"bound_pruned,omitempty"`
	// PrepareNS is the shard's own prepare-stage wall clock; the gather
	// charges the slowest shard's prepare to the merged Prepare stage.
	PrepareNS int64 `json:"prepare_ns,omitempty"`
	// PlanStats are the shard's prepare statistics, folded into the
	// result plan for observability (non-Auto plans only).
	PlanStats WirePlanStats `json:"plan_stats"`
}

// toWirePlanStats lowers planner-probe statistics to wire form.
func toWirePlanStats(st search.PlanStats) WirePlanStats {
	return WirePlanStats{
		CandidateRoots: st.CandidateRoots,
		RootTypes:      st.RootTypes,
		PatternSpace:   st.PatternSpace,
		Frontier:       st.Frontier,
		PostingRoots:   st.PostingRoots,
	}
}

// FromWirePlanStats restores planner-probe statistics from wire form.
func FromWirePlanStats(w WirePlanStats) search.PlanStats {
	return search.PlanStats{
		CandidateRoots: w.CandidateRoots,
		RootTypes:      w.RootTypes,
		PatternSpace:   w.PatternSpace,
		Frontier:       w.Frontier,
		PostingRoots:   w.PostingRoots,
	}
}

// MergeWirePlanStats folds per-shard probe statistics in ascending shard
// order — the exact merge PlanStats performs in process, so a plan chosen
// from scattered probes equals the local planner's choice.
func MergeWirePlanStats(parts []WirePlanStats) WirePlanStats {
	var merged search.PlanStats
	for i, p := range parts {
		if i == 0 {
			merged = FromWirePlanStats(p)
			continue
		}
		merged.Merge(FromWirePlanStats(p))
	}
	return toWirePlanStats(merged)
}

// resident returns shard si's unit or an error when this engine does not
// host it.
func (e *Engine) resident(si int) (*unit, error) {
	if si < 0 || si >= e.n {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", si, e.n)
	}
	u := e.units[si]
	if u == nil {
		return nil, fmt.Errorf("shard: shard %d is not resident on this engine", si)
	}
	return u, nil
}

// AnyIndex returns the first resident shard's index — the dictionary
// and tokenizer source for facade surfaces on partial engines (every
// shard shares the full corpus dictionary).
func (e *Engine) AnyIndex() *index.Index {
	for _, u := range e.units {
		if u != nil {
			return u.ix
		}
	}
	return nil
}

// Resident reports whether shard si's index is hosted by this engine.
func (e *Engine) Resident(si int) bool {
	return si >= 0 && si < e.n && e.units[si] != nil
}

// Complete reports whether every shard is resident (a full engine, able
// to search and gather; partial engines only serve per-shard legs).
func (e *Engine) Complete() bool {
	for _, u := range e.units {
		if u == nil {
			return false
		}
	}
	return true
}

// NewPartialEngine builds an engine hosting only the owned subset of an
// n-shard partition — a cluster owner node's view. The ownership hash,
// PageRank vector and per-shard root filters are computed over the full
// graph exactly as NewEngine computes them, so each resident shard's
// index is content-identical to the corresponding shard of a full n-way
// engine over the same graph.
func NewPartialEngine(g *kg.Graph, n int, owned []int, opts index.Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", n, MaxShards)
	}
	if opts.RootFilter != nil || opts.DirtyRoots != nil || opts.PageRank != nil {
		return nil, fmt.Errorf("shard: RootFilter/DirtyRoots/PageRank are managed by the shard layer")
	}
	if len(owned) == 0 {
		return nil, fmt.Errorf("shard: partial engine owns no shards")
	}
	seen := map[int]bool{}
	for _, si := range owned {
		if si < 0 || si >= n {
			return nil, fmt.Errorf("shard: owned shard %d out of range [0,%d)", si, n)
		}
		if seen[si] {
			return nil, fmt.Errorf("shard: owned shard %d listed twice", si)
		}
		seen[si] = true
	}
	if opts.D == 0 {
		opts.D = 3
	}
	owner := make([]uint8, g.NumNodes())
	for v := range owner {
		owner[v] = ownerOf(g.Type(kg.NodeID(v)), kg.NodeID(v), n)
	}
	e := &Engine{g: g, n: n, opts: opts, owner: owner}
	if !opts.UniformPR {
		e.pr = rank.PageRank(g, rank.Options{})
	}
	perShard := e.splitWorkers(opts.Workers)
	e.units = make([]*unit, n)
	errs := make([]error, len(owned))
	done := make(chan struct{})
	for i, si := range owned {
		go func(i, si int) {
			defer func() { done <- struct{}{} }()
			so := opts
			so.Workers = perShard
			so.RootFilter = e.filter(si)
			so.PageRank = e.pr
			ix, err := index.Build(g, so)
			if err != nil {
				errs[i] = err
				return
			}
			e.units[si] = &unit{ix: ix}
		}(i, si)
	}
	for range owned {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
	}
	return e, nil
}

// ProbeShard runs the prepare-only planner probe on one resident shard
// and returns its statistics in wire form — one leg of a scattered
// cluster probe.
func (e *Engine) ProbeShard(ctx context.Context, si int, query string, opts search.Options) (WirePlanStats, error) {
	u, err := e.resident(si)
	if err != nil {
		return WirePlanStats{}, err
	}
	st, err := search.PlanProbe(ctx, u.ix, query, opts)
	if err != nil {
		return WirePlanStats{}, err
	}
	return toWirePlanStats(st), nil
}

// ScatterShard runs one resident shard's leg of a resolved-algorithm
// scatter and returns it in wire form. The options lowering is exactly
// the in-process scatter's (unbounded retention, CollectRootAggs, split
// worker budget), so the partial a remote owner produces is the partial
// the coordinator's own scatter would have produced for that shard.
// Baseline queries gather concrete trees, not per-root aggregates, and
// stay in-process; Auto must be resolved by the coordinator first.
func (e *Engine) ScatterShard(ctx context.Context, si int, algo Algo, query string, opts search.Options) (*WirePartial, error) {
	if algo == Auto {
		return nil, fmt.Errorf("shard: scatter requires a resolved algorithm, not Auto")
	}
	if algo == Baseline {
		return nil, fmt.Errorf("shard: the baseline gathers trees in process and cannot scatter over the wire")
	}
	if _, err := e.resident(si); err != nil {
		return nil, err
	}
	so := e.scatterOptions(algo, opts)
	out := e.searchShard(ctx, si, algo, query, so)
	if out.err != nil {
		return nil, out.err
	}
	p := &WirePartial{
		Shard:          si,
		Patterns:       make([]WirePattern, 0, len(out.patterns)),
		CandidateRoots: out.stats.CandidateRoots,
		SampledRoots:   out.stats.SampledRoots,
		TreesFound:     out.stats.TreesFound,
		EmptyChecked:   out.stats.EmptyChecked,
		BoundPruned:    out.stats.BoundPruned,
		PrepareNS:      int64(out.stats.Stages.Prepare),
		PlanStats:      toWirePlanStats(out.plan.Stats),
	}
	for _, rp := range out.patterns {
		wp := WirePattern{
			Paths:    make([]WirePath, len(rp.Pattern.Paths)),
			RootAggs: make([]WireRootAgg, len(rp.RootAggs)),
		}
		for i, pid := range rp.Pattern.Paths {
			pp := out.table.Get(pid)
			w := WirePath{EdgeEnd: pp.EdgeEnd, Types: make([]int32, len(pp.Types))}
			for j, t := range pp.Types {
				w.Types[j] = int32(t)
			}
			if len(pp.Attrs) > 0 {
				w.Attrs = make([]int32, len(pp.Attrs))
				for j, a := range pp.Attrs {
					w.Attrs[j] = int32(a)
				}
			}
			wp.Paths[i] = w
		}
		for i, ra := range rp.RootAggs {
			wp.RootAggs[i] = WireRootAgg{Root: int64(ra.Root), Sum: ra.Agg.Sum, Max: ra.Agg.Max, Count: ra.Agg.Count}
		}
		p.Patterns = append(p.Patterns, wp)
	}
	return p, nil
}

// GatherPartials reassembles per-shard wire partials — one per shard, in
// any mix of remote and locally produced — and runs the canonical gather
// fold plus the local tree-materialization pass. The receiver must be a
// complete engine whose per-shard indexes are content-identical to the
// producers' (same graph snapshot, same shard count): wire paths are
// interned into the coordinator's own per-shard pattern tables, and
// winner trees come from the coordinator's indexes. plan must already be
// resolved (never Auto); start/probed bound the stage accounting.
func (e *Engine) GatherPartials(ctx context.Context, start, probed time.Time, plan search.Plan, query string, partials []*WirePartial, opts search.Options) (*Result, error) {
	algo := fromSearchAlgo(plan.Algo)
	if algo == Auto || algo == Baseline {
		return nil, fmt.Errorf("shard: gather requires a resolved non-baseline plan")
	}
	if len(partials) != e.n {
		return nil, fmt.Errorf("shard: gather needs %d partials, got %d", e.n, len(partials))
	}
	outs := make([]shardOut, e.n)
	for si := 0; si < e.n; si++ {
		p := partials[si]
		if p == nil {
			return nil, fmt.Errorf("shard: missing partial for shard %d", si)
		}
		if p.Shard != si {
			return nil, fmt.Errorf("shard: partial %d labeled shard %d", si, p.Shard)
		}
		u, err := e.resident(si)
		if err != nil {
			return nil, err
		}
		table := u.ix.PatternTable()
		patterns := make([]search.RankedPattern, len(p.Patterns))
		for i, wp := range p.Patterns {
			tp := core.TreePattern{Paths: make([]core.PatternID, len(wp.Paths))}
			for j, w := range wp.Paths {
				pp := core.PathPattern{EdgeEnd: w.EdgeEnd, Types: make([]kg.TypeID, len(w.Types))}
				for x, t := range w.Types {
					pp.Types[x] = kg.TypeID(t)
				}
				if len(w.Attrs) > 0 {
					pp.Attrs = make([]kg.AttrID, len(w.Attrs))
					for x, a := range w.Attrs {
						pp.Attrs[x] = kg.AttrID(a)
					}
				}
				tp.Paths[j] = table.Intern(pp)
			}
			aggs := make([]search.RootAgg, len(wp.RootAggs))
			for x, ra := range wp.RootAggs {
				aggs[x] = search.RootAgg{Root: kg.NodeID(ra.Root), Agg: core.PatternScore{Sum: ra.Sum, Max: ra.Max, Count: ra.Count}}
			}
			patterns[i] = search.RankedPattern{Pattern: tp, RootAggs: aggs}
		}
		words, surfaces := search.ResolveQuery(u.ix, query)
		outs[si] = shardOut{
			patterns: patterns,
			table:    table,
			stats: search.QueryStats{
				Surfaces:       surfaces,
				Words:          words,
				CandidateRoots: p.CandidateRoots,
				SampledRoots:   p.SampledRoots,
				TreesFound:     p.TreesFound,
				EmptyChecked:   p.EmptyChecked,
				BoundPruned:    p.BoundPruned,
				Stages:         search.StageTimings{Prepare: time.Duration(p.PrepareNS)},
			},
			plan:  search.Plan{Algo: plan.Algo, Stats: FromWirePlanStats(p.PlanStats)},
			words: words,
		}
	}
	return e.gather(ctx, start, probed, plan, algo, outs, opts)
}
