package shard

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/search"
)

// saveLoad round-trips an engine through its persisted parts.
func saveLoad(t *testing.T, e *Engine, opts index.Options) *Engine {
	t.Helper()
	g := e.Graph()
	ixs := make([]*index.Index, e.NumShards())
	for si := range ixs {
		var buf bytes.Buffer
		if err := e.EncodeShard(si, &buf); err != nil {
			t.Fatalf("encode shard %d: %v", si, err)
		}
		ix, err := index.Load(&buf, g)
		if err != nil {
			t.Fatalf("load shard %d: %v", si, err)
		}
		ixs[si] = ix
	}
	ne, err := FromParts(g, e.Owners(), ixs, e.Epochs(), opts)
	if err != nil {
		t.Fatalf("FromParts: %v", err)
	}
	return ne
}

// TestPersistRoundtripEquivalence pins that a save/load round trip
// reproduces the original engine's answers and keeps accepting the same
// update chain with identical results.
func TestPersistRoundtripEquivalence(t *testing.T) {
	base := dataset.SynthWiki(dataset.WikiConfig{Entities: 220, Types: 12, Seed: 7})
	iopts := index.Options{D: 3}
	e, err := NewEngine(base, 3, iopts)
	if err != nil {
		t.Fatal(err)
	}
	queries := testQueries(base)[:3]
	opts := search.Options{K: 8, MaxTreesPerPattern: 4}

	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 12; step++ {
		loaded := saveLoad(t, e, iopts)
		if !reflect.DeepEqual(e.Epochs(), loaded.Epochs()) {
			t.Fatalf("step %d: epochs diverged: %v vs %v", step, e.Epochs(), loaded.Epochs())
		}
		for _, q := range queries {
			for _, algo := range []Algo{PatternEnum, LinearEnum} {
				want := shardedResult(t, e, algo, q, opts)
				got := shardedResult(t, loaded, algo, q, opts)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d algo=%d query=%q: loaded engine diverged", step, algo, q)
				}
			}
		}

		// Both engines apply the same delta and must stay in lockstep.
		ch, err := randomUpdate(rng, e.Graph())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ne, _, err := e.ApplyDelta(ch)
		if err != nil {
			t.Fatalf("step %d apply original: %v", step, err)
		}
		// The loaded engine saw a different *kg.Graph pointer, so it
		// needs the delta recomputed against its own snapshot — but the
		// snapshot is the same graph value, so replaying through a fresh
		// engine chain from the loaded parts is covered by the kbtable
		// durable tests. Here: advance the original only.
		e = ne
	}
}

func TestFromPartsValidation(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 80, Types: 8, Seed: 1})
	iopts := index.Options{D: 3}
	e, err := NewEngine(g, 2, iopts)
	if err != nil {
		t.Fatal(err)
	}
	ixs := make([]*index.Index, 2)
	for si := range ixs {
		var buf bytes.Buffer
		if err := e.EncodeShard(si, &buf); err != nil {
			t.Fatal(err)
		}
		if ixs[si], err = index.Load(&buf, g); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := FromParts(nil, e.Owners(), ixs, nil, iopts); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := FromParts(g, e.Owners()[:10], ixs, nil, iopts); err == nil {
		t.Error("short ownership table accepted")
	}
	bad := e.Owners()
	bad[0] = 7
	if _, err := FromParts(g, bad, ixs, nil, iopts); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := FromParts(g, e.Owners(), ixs, []uint64{1}, iopts); err == nil {
		t.Error("epoch count mismatch accepted")
	}
	if _, err := FromParts(g, e.Owners(), ixs, nil, index.Options{D: 4}); err == nil {
		t.Error("d mismatch accepted")
	}
	if _, err := FromParts(g, e.Owners(), []*index.Index{ixs[0], nil}, nil, iopts); err == nil {
		t.Error("nil shard index accepted")
	}
}
