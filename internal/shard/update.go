package shard

import (
	"fmt"
	"sort"
	"sync"

	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/rank"
)

// UpdateStats reports how one delta routed across the shards.
type UpdateStats struct {
	// DirtyRoots is the total number of re-enumerated roots (the dirty
	// sets of the individual shards partition kg.AffectedRoots).
	DirtyRoots int
	// AffectedShards counts shards whose postings were actually spliced;
	// the remaining shards rebound to the new snapshot without copying.
	AffectedShards int
	// EntriesRemoved / EntriesAdded sum the spliced postings.
	EntriesRemoved int64
	EntriesAdded   int64
	// TouchedWords is the sorted union of the shards' touched posting
	// lists.
	TouchedWords []string
	// ScoresRefreshed reports that PageRank scoring rewrote score terms
	// (set on any structural change under non-uniform PageRank; such
	// updates necessarily touch every shard).
	ScoresRefreshed bool
}

// ApplyDelta routes a graph change to the shards owning its dirty roots
// and returns a NEW engine over ch.New; the receiver keeps serving its
// snapshot. Shards with no owned dirty roots skip re-enumeration entirely;
// when the delta also kept edge IDs and PageRank terms intact they share
// their postings with the old epoch via Rebind and their epoch counter
// does not advance. PageRank (whole-graph) and kg.AffectedRoots (one
// backward BFS) are computed once, not per shard.
func (e *Engine) ApplyDelta(ch *kg.Changed) (*Engine, UpdateStats, error) {
	var us UpdateStats
	if ch == nil || ch.Old == nil || ch.New == nil {
		return nil, us, fmt.Errorf("shard: nil change")
	}
	if ch.Old != e.g {
		return nil, us, fmt.Errorf("shard: change was computed against a different graph snapshot")
	}

	// Extend the ownership table for appended nodes; existing assignments
	// never move (a tombstoned node keeps its shard so the owner cuts its
	// postings).
	owner := e.owner
	if n := ch.New.NumNodes(); n > len(owner) {
		owner = make([]uint8, n)
		copy(owner, e.owner)
		for v := len(e.owner); v < n; v++ {
			owner[v] = ownerOf(ch.New.Type(kg.NodeID(v)), kg.NodeID(v), e.n)
		}
	}

	dirty := kg.AffectedRoots(ch, e.opts.D-1)
	ownedDirty := make([]int, e.n)
	for _, r := range dirty {
		ownedDirty[owner[r]]++
	}
	structural := ch.AddedNodes > 0 || ch.RemovedNodes > 0 || ch.AddedEdges > 0 || ch.RemovedEdges > 0
	refreshPR := structural && !e.opts.UniformPR
	identityEdges := ch.EdgeMap == nil

	ne := &Engine{g: ch.New, n: e.n, opts: e.opts, owner: owner}
	if !e.opts.UniformPR {
		if structural {
			ne.pr = rank.PageRank(ch.New, rank.Options{})
		} else {
			// Text edits cannot move PageRank; the vector is unchanged.
			ne.pr = e.pr
		}
	}

	ne.units = make([]*unit, e.n)
	stats := make([]index.DeltaStats, e.n)
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	for si := 0; si < e.n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			u := e.units[si]
			if u == nil {
				return // not resident (partial engine): nothing to splice
			}
			if ownedDirty[si] == 0 && identityEdges && !refreshPR {
				// Untouched shard: same postings, new snapshot.
				ne.units[si] = &unit{ix: u.ix.Rebind(ch.New), epoch: u.epoch}
				return
			}
			so := e.opts
			so.RootFilter = ne.filter(si)
			so.DirtyRoots = dirty
			so.PageRank = ne.pr
			nix, ds, err := u.ix.ApplyDelta(ch, so)
			if err != nil {
				errs[si] = err
				return
			}
			epoch := u.epoch
			if ds.DirtyRoots > 0 || ds.WordsTouched > 0 || ds.ScoresRefreshed {
				// Postings or scores actually moved. A pure edge-ID remap
				// (another shard's structural change re-sorted the CSR)
				// rewrites storage but no observable answer, so the epoch
				// holds.
				epoch++
			}
			ne.units[si] = &unit{ix: nix, epoch: epoch}
			stats[si] = ds
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, us, fmt.Errorf("shard: %w", err)
		}
	}

	words := map[string]struct{}{}
	for si := range stats {
		ds := &stats[si]
		if ne.units[si] == nil {
			continue // not resident on either snapshot
		}
		if ne.units[si].epoch != e.units[si].epoch {
			us.AffectedShards++
		}
		us.DirtyRoots += ds.DirtyRoots
		us.EntriesRemoved += ds.EntriesRemoved
		us.EntriesAdded += ds.EntriesAdded
		us.ScoresRefreshed = us.ScoresRefreshed || ds.ScoresRefreshed
		for _, w := range ds.TouchedWords {
			words[w] = struct{}{}
		}
	}
	us.TouchedWords = make([]string, 0, len(words))
	for w := range words {
		us.TouchedWords = append(us.TouchedWords, w)
	}
	sort.Strings(us.TouchedWords)
	return ne, us, nil
}
