package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/search"
	"kbtable/internal/text"
)

// Algo selects the per-shard query algorithm.
type Algo int

// The paper's three algorithms, run shard-locally and gathered exactly,
// plus Auto: the cost-based planner decides PE vs LE once — from
// prepare-stage statistics merged across every shard — and the scatter
// carries the resolved algorithm, so all shards execute the same plan.
const (
	PatternEnum Algo = iota
	LinearEnum
	Baseline
	Auto
)

// searchAlgo maps a shard Algo onto the staged executor's strategy.
func searchAlgo(a Algo) search.Algo {
	switch a {
	case LinearEnum:
		return search.AlgoLE
	case Baseline:
		return search.AlgoBaseline
	case Auto:
		return search.AlgoAuto
	default:
		return search.AlgoPE
	}
}

// fromSearchAlgo maps a resolved executor strategy back to a shard Algo.
func fromSearchAlgo(a search.Algo) Algo {
	switch a {
	case search.AlgoLE:
		return LinearEnum
	case search.AlgoBaseline:
		return Baseline
	default:
		return PatternEnum
	}
}

// allK makes per-shard executors retain every pattern they find. Local
// top-k pruning would be incorrect here: a pattern whose roots split
// across shards can rank below each shard's k-th local score yet inside
// the global top-k once its partials merge, so shards must surface every
// pattern and the cut happens only after the gather. The flip side is
// that a sharded query's transient memory is proportional to the full
// pattern/root answer set, not to k (the same regime as LINEARENUM's
// aggregation dictionary); explosion queries should be fenced with
// Engine.CountAllContent / kbtable.Explain before execution, exactly as
// the paper fences exact enumeration. A bounded two-phase gather with
// score upper bounds is the known follow-up if this bites in production.
//
// For the same reason the streaming executor's top-k bound pushdown must
// not fire inside a shard — a locally dominated pattern can win globally —
// and it does not: search.peEnumerate gates pruning on !CollectRootAggs,
// which this engine always sets. Per-shard runs still get streaming's
// predicate pushdown and scratch reuse; only the score cut is disabled.
const allK = 1 << 30

// RankedPattern is one globally ranked pattern after the gather. Pattern's
// IDs resolve in Table — the pattern table of the lowest-numbered
// contributing shard (for the baseline, that shard's per-query online
// table); Trees are merged across all contributing shards in ascending
// root order.
type RankedPattern struct {
	Shard   int
	Pattern core.TreePattern
	Table   *core.PatternTable
	Agg     core.PatternScore
	Score   float64
	Trees   []core.Subtree
}

// Result is the gathered output of one sharded query.
type Result struct {
	Patterns []RankedPattern
	Stats    search.QueryStats
	// Plan is the resolved execution plan. For Auto it is the planner's
	// decision over the merged per-shard statistics; for explicit
	// algorithms its statistics are the merged per-shard prepare stats.
	Plan search.Plan
}

// shardOut is one shard's scatter result in algorithm-neutral form.
type shardOut struct {
	patterns []search.RankedPattern
	table    *core.PatternTable
	stats    search.QueryStats
	plan     search.Plan
	words    []text.WordID // the shard's resolution of the query
	err      error
}

// PlanStats scatters the prepare-only probe to every shard and merges the
// per-shard statistics: candidate roots, frontier and posting lengths sum
// exactly (root partitions are disjoint); the pattern space sums too,
// over-counting patterns whose roots span shards — acceptable for a cost
// estimate and deterministic for a given engine.
func (e *Engine) PlanStats(ctx context.Context, query string, opts search.Options) (search.PlanStats, error) {
	stats := make([]search.PlanStats, e.n)
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	for si := 0; si < e.n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			stats[si], errs[si] = search.PlanProbe(ctx, e.units[si].ix, query, opts)
		}(si)
	}
	wg.Wait()
	var merged search.PlanStats
	for si := range stats {
		if errs[si] != nil {
			return merged, errs[si]
		}
		if si == 0 {
			merged = stats[si]
			continue
		}
		merged.Merge(stats[si])
	}
	return merged, nil
}

// Plan resolves the execution plan for a query without running it: for
// Auto, the planner's decision over the merged per-shard statistics. Every
// shard of a subsequent Search(ctx, resolved, …) executes exactly this
// plan.
func (e *Engine) Plan(ctx context.Context, algo Algo, query string, opts search.Options) (search.Plan, error) {
	st, err := e.PlanStats(ctx, query, opts)
	if err != nil {
		return search.Plan{}, err
	}
	return search.ChoosePlan(searchAlgo(algo), st, opts), nil
}

// mergedPat accumulates one pattern signature across shards.
type mergedPat struct {
	rep      int
	pattern  core.TreePattern
	table    *core.PatternTable
	rootAggs []search.RootAgg
	agg      core.PatternScore // fold of rootAggs in ascending root order
	contrib  []contribRef
	trees    []core.Subtree // baseline only: gathered during the scatter
}

// contribRef names a contributing shard and the pattern's local identity
// there (PatternIDs are shard-local).
type contribRef struct {
	shard   int
	pattern core.TreePattern
}

// Search scatters the query across every shard, merges same-signature
// patterns exactly, and returns the global top-k.
//
// Exactness: every valid subtree roots at exactly one shard, so per-shard
// per-root partial aggregates (search.RootAgg) partition the unsharded
// engine's two-level fold; re-folding them in ascending root order yields
// bit-identical scores, and the (score, content-key) total order makes the
// global top-k independent of gather order. LinearEnum's Λ/ρ sampling is
// the one shard-local behavior: per-type subtree counts and sample draws
// happen within each shard, so a sampled sharded run is a different (still
// unbiased) estimate than a sampled unsharded run; exact mode (Lambda <=
// 0) is identical to the unsharded engine.
func (e *Engine) Search(ctx context.Context, algo Algo, query string, opts search.Options) (*Result, error) {
	start := time.Now()

	// Auto: one planner decision over merged per-shard statistics; the
	// scatter below carries the resolved algorithm so every shard agrees.
	var plan search.Plan
	if algo == Auto {
		p, err := e.Plan(ctx, algo, query, opts)
		if err != nil {
			return nil, err
		}
		plan = p
		algo = fromSearchAlgo(p.Algo)
	} else {
		plan = search.Plan{Algo: searchAlgo(algo)}
	}
	return e.searchResolved(ctx, start, plan, algo, query, opts)
}

// SearchWithPlan executes query under a pre-resolved plan — the facade's
// plan-cache hit path for Auto queries: the cached merged statistics
// already fed ChoosePlan, so the scatter skips the per-shard planner
// probe entirely and carries plan.Algo. The result reports the given
// plan. Answers are bit-identical to Search(ctx, Auto, …) resolving to
// the same algorithm (the Auto-equivalence property).
func (e *Engine) SearchWithPlan(ctx context.Context, plan search.Plan, query string, opts search.Options) (*Result, error) {
	return e.searchResolved(ctx, time.Now(), plan, fromSearchAlgo(plan.Algo), query, opts)
}

// searchResolved is the scatter-gather body shared by Search and
// SearchWithPlan: algo is already resolved (never Auto) and probe time,
// if any, is already spent.
func (e *Engine) searchResolved(ctx context.Context, start time.Time, plan search.Plan, algo Algo, query string, opts search.Options) (*Result, error) {
	probed := time.Now()

	so := e.scatterOptions(algo, opts)

	outs := make([]shardOut, e.n)
	var wg sync.WaitGroup
	for si := 0; si < e.n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			outs[si] = e.searchShard(ctx, si, algo, query, so)
		}(si)
	}
	wg.Wait()
	return e.gather(ctx, start, probed, plan, algo, outs, opts)
}

// scatterOptions lowers the caller's options into the per-shard scatter
// options shared by every execution path.
func (e *Engine) scatterOptions(algo Algo, opts search.Options) search.Options {
	so := opts
	so.K = allK
	so.CollectRootAggs = true
	// The per-query worker budget is split across the shard scatter (like
	// the build path): N shard goroutines each running a pool of
	// Workers/N, not N full pools competing for the same cores. Parallel
	// execution is result-identical at any pool size, so this is purely a
	// scheduling choice.
	so.Workers = e.splitWorkers(opts.Workers)
	// LINEARENUM's sampled path selects its estimated local top-k for
	// exact re-scoring; selection must stay at the caller's k (per shard,
	// mirroring the unsharded per-type selection) rather than the
	// unbounded retention heap, or sampling would re-score everything and
	// stop saving work. Sharded sampling is shard-local and approximate
	// either way.
	if opts.Lambda > 0 {
		so.SampleSelectK = opts.K
		if so.SampleSelectK <= 0 {
			so.SampleSelectK = 100
		}
	}
	// Trees for PE/LE are materialized after the global cut; the baseline
	// necessarily collects trees while enumerating (its dictionary IS the
	// materialization), so its per-shard caps are merged instead.
	so.SkipTrees = algo != Baseline
	return so
}

// gather merges the scatter's per-shard outputs into the global top-k:
// the exact cross-shard fold shared by Search, SearchWithPlan and
// SearchPrepared.
func (e *Engine) gather(ctx context.Context, start, probed time.Time, plan search.Plan, algo Algo, outs []shardOut, opts search.Options) (*Result, error) {
	scattered := time.Now()
	for si := range outs {
		if outs[si].err != nil {
			return nil, outs[si].err
		}
	}

	// Stage accounting for the scatter: the planner probe plus the slowest
	// shard's own prepare stage count as prepare; the rest of the scatter
	// wall time is enumeration (each shard's aggregate/rank under
	// SkipTrees is noise).
	var shardPrep time.Duration
	for si := range outs {
		if p := outs[si].stats.Stages.Prepare; p > shardPrep {
			shardPrep = p
		}
		if !outs[si].plan.Auto {
			// Fold per-shard prepare statistics into the plan for
			// observability; an Auto plan already carries the (richer)
			// merged probe statistics.
			if plan.Auto {
				continue
			}
			if si == 0 {
				plan.Stats = outs[si].plan.Stats
			} else {
				plan.Stats.Merge(outs[si].plan.Stats)
			}
		}
	}
	var stages search.StageTimings
	stages.Prepare = probed.Sub(start) + shardPrep
	if stages.Enumerate = scattered.Sub(probed) - shardPrep; stages.Enumerate < 0 {
		stages.Enumerate = 0
	}

	// Gather: merge pattern signatures across shards by content key.
	tAgg := time.Now()
	byKey := map[string]*mergedPat{}
	for si := range outs {
		for _, rp := range outs[si].patterns {
			key := rp.Pattern.ContentKey(outs[si].table)
			mp, ok := byKey[key]
			if !ok {
				mp = &mergedPat{rep: si, pattern: rp.Pattern, table: outs[si].table}
				byKey[key] = mp
			}
			mp.rootAggs = append(mp.rootAggs, rp.RootAggs...)
			mp.contrib = append(mp.contrib, contribRef{shard: si, pattern: rp.Pattern})
			mp.trees = append(mp.trees, rp.Trees...)
		}
	}

	// Fold each pattern's per-root partials in ascending root order — the
	// exact sequence the unsharded engine folds — then cut to the global
	// top-k.
	k := opts.K
	if k == 0 {
		k = 100
	}
	top := core.NewTopK[*mergedPat](k)
	for key, mp := range byKey {
		sort.SliceStable(mp.rootAggs, func(i, j int) bool { return mp.rootAggs[i].Root < mp.rootAggs[j].Root })
		for _, ra := range mp.rootAggs {
			mp.agg.Merge(ra.Agg)
		}
		top.Offer(mp.agg.Value(opts.Agg), key, mp)
	}
	stages.Aggregate = time.Since(tAgg)

	stats := e.mergeStats(algo, outs)
	stats.PatternsFound = len(byKey)

	tRank := time.Now()
	res := &Result{Patterns: make([]RankedPattern, 0, top.Len()), Plan: plan}
	for _, mp := range top.Results() {
		res.Patterns = append(res.Patterns, RankedPattern{
			Shard:   mp.rep,
			Pattern: mp.pattern,
			Table:   mp.table,
			Agg:     mp.agg,
			Score:   mp.agg.Value(opts.Agg),
		})
	}

	// Materialize tables for the winners only. Baseline trees were
	// gathered above; PE/LE trees come from each contributing shard's
	// pattern-first index now.
	if !opts.SkipTrees {
		if err := e.fillTrees(ctx, algo, outs, top.Results(), res.Patterns, opts); err != nil {
			return nil, err
		}
	}
	stages.Rank = time.Since(tRank)
	stats.Stages = stages
	stats.Elapsed = time.Since(start)
	res.Stats = stats
	return res, nil
}

// searchShard runs one shard's local query.
func (e *Engine) searchShard(ctx context.Context, si int, algo Algo, query string, so search.Options) shardOut {
	switch algo {
	case PatternEnum, LinearEnum:
		ix := e.units[si].ix
		var res *search.Result
		var err error
		if algo == PatternEnum {
			res, err = search.PETopKCtx(ctx, ix, query, so)
		} else {
			res, err = search.LETopKCtx(ctx, ix, query, so)
		}
		if err != nil {
			return shardOut{err: err}
		}
		// Stats.Words is this shard's resolution of the query; keep it for
		// the tree-materialization pass instead of resolving again.
		return shardOut{patterns: res.Patterns, table: ix.PatternTable(), stats: res.Stats, plan: res.Plan, words: res.Stats.Words}
	default:
		bl, err := e.baseline(si)
		if err != nil {
			return shardOut{err: err}
		}
		res, err := bl.SearchCtx(ctx, query, so)
		if err != nil {
			return shardOut{err: err}
		}
		return shardOut{patterns: res.Patterns, table: res.Table, stats: res.Stats, plan: res.Plan}
	}
}

// Prepared retains one query's prepare-stage output on every shard plus
// the merged planner statistics, bound to the engine snapshot it was
// built from. Executions run only enumerate→aggregate→rank per shard;
// Auto resolves once per execution from the merged statistics (with that
// execution's bias), exactly as Search resolves from a probe.
type Prepared struct {
	algo  Algo
	query string
	units []*search.Prepared
	stats search.PlanStats
}

// Stats returns the merged prepare-stage statistics.
func (p *Prepared) Stats() search.PlanStats { return p.stats }

// Plan resolves the plan the prepared query would execute under opts.
func (p *Prepared) Plan(opts search.Options) search.Plan {
	return search.ChoosePlan(searchAlgo(p.algo), p.stats, opts)
}

// Prepare scatters the prepare stage to every shard and retains the
// per-shard output. The merged statistics are identical to PlanStats'
// (same per-shard probes, same merge order), so a prepared Auto query
// resolves exactly as Search would. The baseline has no prepare stage.
func (e *Engine) Prepare(ctx context.Context, algo Algo, query string, opts search.Options) (*Prepared, error) {
	if algo == Baseline {
		return nil, fmt.Errorf("shard: the baseline has no prepare stage")
	}
	p := &Prepared{algo: algo, query: query, units: make([]*search.Prepared, e.n)}
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	for si := 0; si < e.n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			p.units[si], errs[si] = search.PrepareQuery(ctx, e.units[si].ix, query, searchAlgo(algo), opts)
		}(si)
	}
	wg.Wait()
	for si := range errs {
		if errs[si] != nil {
			return nil, errs[si]
		}
		if si == 0 {
			p.stats = p.units[si].Stats()
			continue
		}
		p.stats.Merge(p.units[si].Stats())
	}
	return p, nil
}

// SearchPrepared executes a prepared query: Auto is resolved once from
// the retained merged statistics, then every shard runs stages 2-4 of
// the pipeline over its retained prepare. The gather is Search's —
// answers are bit-identical to a fresh Search of the same query on the
// same engine snapshot.
func (e *Engine) SearchPrepared(ctx context.Context, p *Prepared, opts search.Options) (*Result, error) {
	start := time.Now()
	algo := p.algo
	var plan search.Plan
	if algo == Auto {
		plan = search.ChoosePlan(search.AlgoAuto, p.stats, opts)
		algo = fromSearchAlgo(plan.Algo)
	} else {
		plan = search.Plan{Algo: searchAlgo(algo)}
	}
	probed := time.Now()
	so := e.scatterOptions(algo, opts)

	outs := make([]shardOut, e.n)
	var wg sync.WaitGroup
	for si := 0; si < e.n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			res, err := search.ExecutePrepared(ctx, e.units[si].ix, p.units[si], searchAlgo(algo), so)
			if err != nil {
				outs[si] = shardOut{err: err}
				return
			}
			outs[si] = shardOut{patterns: res.Patterns, table: e.units[si].ix.PatternTable(), stats: res.Stats, plan: res.Plan, words: res.Stats.Words}
		}(si)
	}
	wg.Wait()
	return e.gather(ctx, start, probed, plan, algo, outs, opts)
}

// mergeStats folds the per-shard counters. Candidate-root partitions are
// disjoint, so counts add; EmptyChecked is the summed per-shard waste (a
// combination can be empty on one shard and populated on another, so it is
// not comparable to an unsharded run's counter).
func (e *Engine) mergeStats(algo Algo, outs []shardOut) search.QueryStats {
	stats := search.QueryStats{Surfaces: outs[0].stats.Surfaces, Words: outs[0].stats.Words}
	stats.CandidateRoots = -1
	if algo != PatternEnum {
		stats.CandidateRoots = 0
		for i := range outs {
			stats.CandidateRoots += outs[i].stats.CandidateRoots
		}
	}
	for i := range outs {
		stats.SampledRoots += outs[i].stats.SampledRoots
		stats.TreesFound += outs[i].stats.TreesFound
		stats.EmptyChecked += outs[i].stats.EmptyChecked
		stats.BoundPruned += outs[i].stats.BoundPruned
	}
	return stats
}

// fillTrees merges each winning pattern's table rows across its
// contributing shards in ascending root order, truncated to the
// per-pattern cap — exactly the rows an unsharded materialization pass
// produces, which walks roots ascending and stops at the cap.
func (e *Engine) fillTrees(ctx context.Context, algo Algo, outs []shardOut, winners []*mergedPat, patterns []RankedPattern, opts search.Options) error {
	maxTrees := opts.MaxTreesPerPattern
	finish := func(trees []core.Subtree) []core.Subtree {
		sort.SliceStable(trees, func(i, j int) bool { return trees[i].Root < trees[j].Root })
		if maxTrees > 0 && len(trees) > maxTrees {
			trees = trees[:maxTrees]
		}
		return trees
	}
	if algo == Baseline {
		for i, mp := range winners {
			patterns[i].Trees = finish(mp.trees)
		}
		return nil
	}
	var wg sync.WaitGroup
	for i, mp := range winners {
		wg.Add(1)
		go func(i int, mp *mergedPat) {
			defer wg.Done()
			var trees []core.Subtree
			for _, c := range mp.contrib {
				trees = append(trees, search.MaterializeTrees(ctx, e.units[c.shard].ix, outs[c.shard].words, c.pattern, opts)...)
			}
			patterns[i].Trees = finish(trees)
		}(i, mp)
	}
	wg.Wait()
	return ctx.Err()
}

// RankedTree is one globally ranked subtree; Pattern's IDs resolve in
// Table (the owning shard's pattern table).
type RankedTree struct {
	search.RankedTree
	Table *core.PatternTable
}

// TopTrees ranks individual valid subtrees across all shards. A subtree
// lives wholly on the shard owning its root, so per-shard top-k lists
// merge exactly under the same (score, content key) order a single engine
// uses.
func (e *Engine) TopTrees(query string, k int, opts search.Options) ([]RankedTree, search.QueryStats) {
	type out struct {
		trees []search.RankedTree
		keys  []string
		table *core.PatternTable
		stats search.QueryStats
	}
	outs := make([]out, e.n)
	var wg sync.WaitGroup
	for si := 0; si < e.n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			ix := e.units[si].ix
			trees, stats := search.TopTrees(ix, query, k, opts)
			keys := make([]string, len(trees))
			for i, rt := range trees {
				keys[i] = search.TreeMergeKey(ix, rt)
			}
			outs[si] = out{trees: trees, keys: keys, table: ix.PatternTable(), stats: stats}
		}(si)
	}
	wg.Wait()
	top := core.NewTopK[RankedTree](k)
	stats := search.QueryStats{Surfaces: outs[0].stats.Surfaces, Words: outs[0].stats.Words}
	for si := range outs {
		for i, rt := range outs[si].trees {
			top.Offer(rt.Score, outs[si].keys[i], RankedTree{RankedTree: rt, Table: outs[si].table})
		}
		stats.CandidateRoots += outs[si].stats.CandidateRoots
		stats.TreesFound += outs[si].stats.TreesFound
		stats.BoundPruned += outs[si].stats.BoundPruned
	}
	return top.Results(), stats
}

// NumCandidateRoots sums the per-shard candidate-root counts (the shards
// partition the unsharded candidate set).
func (e *Engine) NumCandidateRoots(query string) int {
	n := 0
	for si := 0; si < e.n; si++ {
		n += search.NumCandidateRoots(e.units[si].ix, query)
	}
	return n
}

// CountAllContent unions the per-shard pattern content-key sets and sums
// subtree counts (for query explanation), with search.CountAllCapped's
// budget semantics: the full subtree count — cheap, no enumeration — is
// computed first across all shards, and only when it fits the budget is
// pattern enumeration (whose cost the subtree count bounds) attempted.
func (e *Engine) CountAllContent(query string, budget int64) (patterns int, trees int64, exceeded bool) {
	for si := 0; si < e.n; si++ {
		t := search.SubtreeCount(e.units[si].ix, query)
		if t > math.MaxInt64-trees { // per-shard counts saturate; so does the sum
			trees = math.MaxInt64
			break
		}
		trees += t
	}
	if budget > 0 && trees > budget {
		return -1, trees, true
	}
	seen := map[string]struct{}{}
	for si := 0; si < e.n; si++ {
		keys, _, _ := search.CountAllContent(e.units[si].ix, query, 0)
		for k := range keys {
			seen[k] = struct{}{}
		}
	}
	return len(seen), trees, false
}
