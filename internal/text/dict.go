package text

import (
	"fmt"
	"sort"
)

// WordID identifies a distinct surface word in a Dict. IDs are dense and
// start at 0, so they can index into per-word slices (e.g. the path index
// keeps one posting list per WordID).
type WordID int32

// NoWord is returned by Lookup when a word is unknown.
const NoWord WordID = -1

// Dict interns words to dense WordIDs and maintains the stem / synonym
// normal forms that Section 3 of the paper requires ("every word has its
// stemmed version and synonyms in our index pointing to the same
// path-pattern entry").
//
// Dict is not safe for concurrent mutation; build it single-threaded (or
// behind the index builder's lock) and read it freely afterwards.
type Dict struct {
	ids   map[string]WordID
	words []string
	// stemOf[id] is the WordID of the stemmed form of word id (possibly id
	// itself). Posting lists are keyed by stem IDs plus synonym aliases.
	stemOf []WordID
	// synonyms maps a word ID to the canonical ID whose postings it shares.
	synonyms map[WordID]WordID
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]WordID), synonyms: make(map[WordID]WordID)}
}

// Intern returns the WordID for w, creating it if necessary. The stemmed
// form of w is interned as well so that query-time stemming always lands on
// a known ID.
//
// Invariant: stemOf[x] is always a terminal ID (stemOf[t] == t). Porter
// stems are not fixpoints of Stem ("databases" → "databas" → "databa"), so
// stem entries are registered as terminal rather than re-stemmed; corpus
// and query words then normalize identically with a single hop.
func (d *Dict) Intern(w string) WordID {
	if id, ok := d.ids[w]; ok {
		return id
	}
	id := d.newEntry(w)
	if st := Stem(w); st != w {
		d.stemOf[id] = d.internStem(st)
	}
	return id
}

// internStem interns s as a terminal stem and returns the terminal ID its
// postings live under.
func (d *Dict) internStem(s string) WordID {
	if id, ok := d.ids[s]; ok {
		return d.stemOf[id]
	}
	return d.newEntry(s)
}

// newEntry registers w with stemOf pointing at itself.
func (d *Dict) newEntry(w string) WordID {
	id := WordID(len(d.words))
	d.ids[w] = id
	d.words = append(d.words, w)
	d.stemOf = append(d.stemOf, id)
	return id
}

// Lookup returns the WordID of w, or NoWord if w was never interned.
func (d *Dict) Lookup(w string) WordID {
	if id, ok := d.ids[w]; ok {
		return id
	}
	return NoWord
}

// Word returns the surface string for id.
func (d *Dict) Word(id WordID) string { return d.words[id] }

// Stemmed returns the WordID of id's stem (id itself if already a stem).
func (d *Dict) Stemmed(id WordID) WordID { return d.stemOf[id] }

// Canonical resolves id through synonym aliasing and stemming to the ID
// under which postings are stored: synonyms first, then stem.
func (d *Dict) Canonical(id WordID) WordID {
	if c, ok := d.synonyms[id]; ok {
		id = c
	}
	return d.stemOf[id]
}

// AddSynonym declares that alias shares the postings of canonical. Both
// words are interned. Chains are flattened at registration time.
func (d *Dict) AddSynonym(alias, canonical string) {
	a := d.Intern(alias)
	c := d.Intern(canonical)
	if cc, ok := d.synonyms[c]; ok {
		c = cc
	}
	if a == c {
		return
	}
	d.synonyms[a] = c
}

// Len returns the number of interned words.
func (d *Dict) Len() int { return len(d.words) }

// CanonicalTokens tokenizes s and maps each token to its canonical WordID,
// interning unseen words. Used at index-build time.
func (d *Dict) CanonicalTokens(s string) []WordID {
	toks := TokenSet(s)
	out := make([]WordID, 0, len(toks))
	seen := make(map[WordID]struct{}, len(toks))
	for _, t := range toks {
		id := d.Canonical(d.Intern(t))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// QueryTokens tokenizes a query and maps tokens to canonical WordIDs without
// interning: unknown words map to NoWord (the query then has no answers for
// that keyword). The returned surface slice is parallel to the IDs.
func (d *Dict) QueryTokens(q string) (ids []WordID, surfaces []string) {
	for _, t := range Tokenize(q) {
		id := d.Lookup(t)
		if id == NoWord {
			// Try the stemmed form: "cities" should reach "citi" postings
			// even if the surface word never occurred in the corpus.
			id = d.Lookup(Stem(t))
		}
		if id != NoWord {
			id = d.Canonical(id)
		}
		ids = append(ids, id)
		surfaces = append(surfaces, t)
	}
	return ids, surfaces
}

// SortedWords returns all interned surface words sorted lexicographically;
// used by tooling and tests that need a stable vocabulary view.
func (d *Dict) SortedWords() []string {
	out := make([]string, len(d.words))
	copy(out, d.words)
	sort.Strings(out)
	return out
}

// Snapshot is the serializable state of a Dict (for index persistence).
type Snapshot struct {
	Words    []string
	StemOf   []WordID
	Synonyms map[WordID]WordID
}

// Snapshot captures the dictionary state. The returned slices/maps are
// copies; mutating them does not affect the dictionary.
func (d *Dict) Snapshot() Snapshot {
	s := Snapshot{
		Words:    append([]string(nil), d.words...),
		StemOf:   append([]WordID(nil), d.stemOf...),
		Synonyms: make(map[WordID]WordID, len(d.synonyms)),
	}
	for k, v := range d.synonyms {
		s.Synonyms[k] = v
	}
	return s
}

// FromSnapshot reconstructs a Dict captured by Snapshot.
func FromSnapshot(s Snapshot) (*Dict, error) {
	if len(s.Words) != len(s.StemOf) {
		return nil, fmt.Errorf("text: snapshot words/stems length mismatch: %d vs %d", len(s.Words), len(s.StemOf))
	}
	d := NewDict()
	d.words = append([]string(nil), s.Words...)
	d.stemOf = append([]WordID(nil), s.StemOf...)
	for i, w := range d.words {
		d.ids[w] = WordID(i)
	}
	for i, st := range d.stemOf {
		if st < 0 || int(st) >= len(d.words) {
			return nil, fmt.Errorf("text: snapshot stem %d of word %d out of range", st, i)
		}
	}
	for k, v := range s.Synonyms {
		if int(k) >= len(d.words) || int(v) >= len(d.words) || k < 0 || v < 0 {
			return nil, fmt.Errorf("text: snapshot synonym %d->%d out of range", k, v)
		}
		d.synonyms[k] = v
	}
	return d, nil
}
