// Package text provides the text-processing substrate for the knowledge
// graph: tokenization, Porter stemming, synonym expansion, a global word
// dictionary, and the Jaccard similarity used by the paper's score3.
//
// The paper (Section 3) stores, for every word, its stemmed version and
// synonyms pointing at the same path-pattern entries; this package supplies
// those normal forms.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. A token is a maximal run of
// letters or digits; everything else (punctuation, currency signs, spaces)
// separates tokens. "US$ 77 billion" tokenizes to ["us", "77", "billion"].
func Tokenize(s string) []string {
	var toks []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, lower[start:])
	}
	return toks
}

// TokenSet returns the set of distinct tokens of s, preserving first-seen
// order. The Jaccard similarity of score3 is defined over token sets, so
// repeated words in an entity description count once.
func TokenSet(s string) []string {
	toks := Tokenize(s)
	seen := make(map[string]struct{}, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// JaccardWord computes the Jaccard similarity between the single-word set
// {w} and the token set of description text. Per the paper's Example 2.4,
// sim("database", "Relational database") = 1/2: the intersection is {w} when
// w appears, and the union is the token set plus w if absent.
func JaccardWord(w string, tokens []string) float64 {
	if len(tokens) == 0 {
		return 0
	}
	n := len(tokens)
	found := false
	for _, t := range tokens {
		if t == w {
			found = true
			break
		}
	}
	if found {
		return 1.0 / float64(n)
	}
	return 0
}

// Jaccard computes the Jaccard similarity |A∩B| / |A∪B| of two token sets.
// Inputs need not be deduplicated; duplicates are ignored.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	sa := make(map[string]struct{}, len(a))
	for _, t := range a {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, t := range b {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
