package text

// Stem reduces an English word to its stem using the classic Porter (1980)
// algorithm. The input must already be lowercase (Tokenize guarantees this).
// Words of length <= 2 are returned unchanged, per the original paper.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := stemmer{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

// stemmer holds the working buffer. All steps operate on b in place,
// truncating or rewriting the suffix.
type stemmer struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// a, e, i, o, u are vowels; y is a vowel iff preceded by a consonant.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:end], where the word
// has the form C?(VC){m}V?.
func (s *stemmer) measure(end int) int {
	m := 0
	i := 0
	// Skip initial consonant run.
	for i < end && s.isConsonant(i) {
		i++
	}
	for {
		// Skip vowel run.
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			return m
		}
		// Skip consonant run; each VC boundary increments m.
		for i < end && s.isConsonant(i) {
			i++
		}
		m++
	}
}

// hasSuffix reports whether the buffer ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if len(suf) > n {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// stemEnd returns the length of the stem once suf is removed.
func (s *stemmer) stemEnd(suf string) int { return len(s.b) - len(suf) }

// containsVowel reports whether b[:end] contains a vowel.
func (s *stemmer) containsVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b[:end] ends with a doubled consonant.
func (s *stemmer) endsDoubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	if s.b[end-1] != s.b[end-2] {
		return false
	}
	return s.isConsonant(end - 1)
}

// endsCVC reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x or y ("*o" condition in Porter's notation).
func (s *stemmer) endsCVC(end int) bool {
	if end < 3 {
		return false
	}
	if !s.isConsonant(end-3) || s.isConsonant(end-2) || !s.isConsonant(end-1) {
		return false
	}
	switch s.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// replace replaces suffix suf (already verified present) with rep if the
// measure of the remaining stem is greater than m. Returns whether replaced.
func (s *stemmer) replace(suf, rep string, m int) bool {
	end := s.stemEnd(suf)
	if s.measure(end) > m {
		s.b = append(s.b[:end], rep...)
		return true
	}
	return false
}

func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.b = s.b[:len(s.b)-2] // sses -> ss
	case s.hasSuffix("ies"):
		s.b = s.b[:len(s.b)-2] // ies -> i
	case s.hasSuffix("ss"):
		// ss -> ss (no change)
	case s.hasSuffix("s"):
		s.b = s.b[:len(s.b)-1] // s ->
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(s.stemEnd("eed")) > 0 {
			s.b = s.b[:len(s.b)-1] // eed -> ee
		}
		return
	}
	trimmed := false
	if s.hasSuffix("ed") && s.containsVowel(s.stemEnd("ed")) {
		s.b = s.b[:s.stemEnd("ed")]
		trimmed = true
	} else if s.hasSuffix("ing") && s.containsVowel(s.stemEnd("ing")) {
		s.b = s.b[:s.stemEnd("ing")]
		trimmed = true
	}
	if !trimmed {
		return
	}
	switch {
	case s.hasSuffix("at"), s.hasSuffix("bl"), s.hasSuffix("iz"):
		s.b = append(s.b, 'e')
	case s.endsDoubleConsonant(len(s.b)):
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.endsCVC(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.containsVowel(len(s.b)-1) {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m(stem) > 0.
func (s *stemmer) step2() {
	pairs := []struct{ suf, rep string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
		{"biliti", "ble"},
	}
	for _, p := range pairs {
		if s.hasSuffix(p.suf) {
			s.replace(p.suf, p.rep, 0)
			return
		}
	}
}

func (s *stemmer) step3() {
	pairs := []struct{ suf, rep string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, p := range pairs {
		if s.hasSuffix(p.suf) {
			s.replace(p.suf, p.rep, 0)
			return
		}
	}
}

// step4 drops residual suffixes when m(stem) > 1.
func (s *stemmer) step4() {
	sufs := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
		"ous", "ive", "ize",
	}
	for _, suf := range sufs {
		if !s.hasSuffix(suf) {
			continue
		}
		end := s.stemEnd(suf)
		if suf == "ion" {
			// "ion" only drops after s or t.
			if end == 0 || (s.b[end-1] != 's' && s.b[end-1] != 't') {
				return
			}
		}
		if s.measure(end) > 1 {
			s.b = s.b[:end]
		}
		return
	}
}

func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	end := len(s.b) - 1
	m := s.measure(end)
	if m > 1 || (m == 1 && !s.endsCVC(end)) {
		s.b = s.b[:end]
	}
}

func (s *stemmer) step5b() {
	if s.measure(len(s.b)) > 1 && s.endsDoubleConsonant(len(s.b)) && s.b[len(s.b)-1] == 'l' {
		s.b = s.b[:len(s.b)-1]
	}
}
