package text

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SQL Server", []string{"sql", "server"}},
		{"US$ 77 billion", []string{"us", "77", "billion"}},
		{"O-R database", []string{"o", "r", "database"}},
		{"", nil},
		{"   ", nil},
		{"Bill Gates", []string{"bill", "gates"}},
		{"C++", []string{"c"}},
		{"Halo 2", []string{"halo", "2"}},
		{"Written in", []string{"written", "in"}},
		{"GTA: San Andreas", []string{"gta", "san", "andreas"}},
		{"a,b;c", []string{"a", "b", "c"}},
		{"ÜBER straße", []string{"über", "straße"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenSetDeduplicates(t *testing.T) {
	got := TokenSet("database database systems Database")
	want := []string{"database", "systems"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenSet = %v, want %v", got, want)
	}
}

func TestJaccardWordPaperExamples(t *testing.T) {
	// Example 2.4: sim("database", "Relational database") = 1/2.
	if got := JaccardWord("database", TokenSet("Relational database")); got != 0.5 {
		t.Errorf("sim(database, Relational database) = %v, want 0.5", got)
	}
	// T3's six-token book title gives 1/6.
	toks := TokenSet("Handbook of Database Systems and Applications x")
	if len(toks) != 7 {
		t.Fatalf("fixture should have 7 tokens, got %v", toks)
	}
	if got := JaccardWord("database", toks); got != 1.0/7 {
		t.Errorf("sim = %v, want 1/7", got)
	}
	if got := JaccardWord("zebra", toks); got != 0 {
		t.Errorf("sim of absent word = %v, want 0", got)
	}
	if got := JaccardWord("software", TokenSet("Software")); got != 1 {
		t.Errorf("sim(software, Software) = %v, want 1", got)
	}
}

func TestJaccardWordEmpty(t *testing.T) {
	if got := JaccardWord("x", nil); got != 0 {
		t.Errorf("JaccardWord on empty tokens = %v, want 0", got)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"a b c", "b c d", 0.5},
		{"a", "a", 1},
		{"a", "b", 0},
		{"", "", 0},
		{"a a b", "a b", 1}, // duplicates ignored
	}
	for _, c := range cases {
		got := Jaccard(Tokenize(c.a), Tokenize(c.b))
		if got != c.want {
			t.Errorf("Jaccard(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(a, b []string) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardBounds(t *testing.T) {
	f := func(a, b []string) bool {
		j := Jaccard(a, b)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStemKnownWords(t *testing.T) {
	// Reference pairs from Porter's published vocabulary.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		"movies":       "movi",
		"databases":    "databas",
		"companies":    "compani",
		"cities":       "citi",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"a", "is", "go", ""} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	words := []string{"database", "software", "company", "revenue", "movie",
		"population", "washington", "university", "enrollment", "gibson"}
	for _, w := range words {
		s1 := Stem(w)
		s2 := Stem(s1)
		// Porter is not idempotent in general, but it must be stable on
		// these corpus words since the dictionary chases stems once.
		if Stem(s2) != s2 {
			t.Errorf("Stem not stable after two applications for %q: %q -> %q -> %q", w, s1, s2, Stem(s2))
		}
	}
}

func TestStemNeverPanicsAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := "abcdefghijklmnopqrstuvwxyz"
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		w := sb.String()
		got := Stem(w)
		if len(got) > len(w)+1 {
			t.Fatalf("Stem(%q) = %q grew by more than one rune", w, got)
		}
	}
}

func TestDictInternLookup(t *testing.T) {
	d := NewDict()
	id1 := d.Intern("database")
	id2 := d.Intern("database")
	if id1 != id2 {
		t.Errorf("Intern not stable: %d vs %d", id1, id2)
	}
	if d.Lookup("database") != id1 {
		t.Errorf("Lookup mismatch")
	}
	if d.Lookup("nonexistent") != NoWord {
		t.Errorf("Lookup of unknown word should be NoWord")
	}
	if d.Word(id1) != "database" {
		t.Errorf("Word roundtrip failed")
	}
}

func TestDictStemming(t *testing.T) {
	d := NewDict()
	movies := d.Intern("movies")
	movi := d.Lookup("movi")
	if movi == NoWord {
		t.Fatalf("stem should be auto-interned")
	}
	if d.Canonical(movies) != movi {
		t.Errorf("Canonical(movies) = %d, want stem id %d", d.Canonical(movies), movi)
	}
	// A stem maps to itself.
	if d.Canonical(movi) != movi {
		t.Errorf("Canonical of stem should be identity")
	}
}

func TestDictSynonyms(t *testing.T) {
	d := NewDict()
	d.AddSynonym("film", "movie")
	film := d.Lookup("film")
	movie := d.Lookup("movie")
	if film == NoWord || movie == NoWord {
		t.Fatalf("synonym words should be interned")
	}
	if d.Canonical(film) != d.Canonical(movie) {
		t.Errorf("synonyms should share canonical id")
	}
	// Chains flatten: picture -> film -> movie.
	d.AddSynonym("picture", "film")
	pic := d.Lookup("picture")
	if d.Canonical(pic) != d.Canonical(movie) {
		t.Errorf("synonym chain should flatten to movie's canonical id")
	}
}

func TestDictSelfSynonymIgnored(t *testing.T) {
	d := NewDict()
	d.AddSynonym("x", "x")
	id := d.Lookup("x")
	if d.Canonical(id) != id {
		t.Errorf("self-synonym should be ignored")
	}
}

func TestCanonicalTokens(t *testing.T) {
	d := NewDict()
	ids := d.CanonicalTokens("Movies and movie")
	// "movies" and "movie" share the stem "movi", "and" is separate.
	if len(ids) != 2 {
		t.Fatalf("CanonicalTokens = %v (len %d), want 2 distinct ids", ids, len(ids))
	}
}

func TestQueryTokensUnknown(t *testing.T) {
	d := NewDict()
	d.Intern("database")
	ids, surf := d.QueryTokens("database zebra")
	if len(ids) != 2 || len(surf) != 2 {
		t.Fatalf("QueryTokens lengths wrong: %v %v", ids, surf)
	}
	if ids[0] == NoWord {
		t.Errorf("known word should resolve")
	}
	if ids[1] != NoWord {
		t.Errorf("unknown word should be NoWord")
	}
}

func TestQueryTokensStemsFallback(t *testing.T) {
	d := NewDict()
	d.Intern("cities") // interns "citi" too
	ids, _ := d.QueryTokens("city")
	// "city" itself unseen; its stem "citi" is known.
	if len(ids) != 1 || ids[0] == NoWord {
		t.Errorf("stem fallback failed: %v", ids)
	}
}

func TestDictLenAndSortedWords(t *testing.T) {
	d := NewDict()
	d.Intern("b")
	d.Intern("a")
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if got := d.SortedWords(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("SortedWords = %v", got)
	}
}
