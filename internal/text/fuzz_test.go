package text

import (
	"testing"
	"unicode"
)

// FuzzTokenize: tokens contain only letters/digits, are lowercase, and
// re-tokenizing a token is the identity.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"SQL Server", "US$ 77 billion", "O-R database", "", "C++",
		"GTA: San Andreas", "ÜBER straße", "\x00\xff", "a b\tc\nd",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatalf("empty token from %q", s)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q from %q contains separator rune %q", tok, s, r)
				}
				if unicode.IsUpper(r) {
					t.Fatalf("token %q from %q not lowercase", tok, s)
				}
			}
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				t.Fatalf("re-tokenizing %q gave %v", tok, again)
			}
		}
	})
}

// FuzzStem: stemming never panics, never grows the word by more than one
// byte, and output stays non-empty for non-empty ASCII-letter input.
func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"databases", "caresses", "ponies", "agreed", "sky", "a", "",
		"relational", "xxxyyy", "ied", "sses",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := Stem(s)
		if len(got) > len(s)+1 {
			t.Fatalf("Stem(%q) = %q grew", s, got)
		}
		if s != "" && got == "" {
			t.Fatalf("Stem(%q) erased the word", s)
		}
	})
}

// FuzzDictQueryTokens: resolving arbitrary query strings against a small
// dictionary never panics and maps every token to NoWord or a valid ID.
func FuzzDictQueryTokens(f *testing.F) {
	f.Add("database software")
	f.Add("zebra!!!")
	f.Add("")
	f.Fuzz(func(t *testing.T, q string) {
		d := NewDict()
		d.Intern("database")
		d.Intern("movies")
		d.AddSynonym("film", "movie")
		ids, surfaces := d.QueryTokens(q)
		if len(ids) != len(surfaces) {
			t.Fatalf("parallel slices diverge")
		}
		for _, id := range ids {
			if id == NoWord {
				continue
			}
			if int(id) >= d.Len() || id < 0 {
				t.Fatalf("id %d out of range", id)
			}
			if d.Canonical(id) != d.Canonical(d.Canonical(id)) {
				t.Fatalf("Canonical not idempotent for %d", id)
			}
		}
	})
}
