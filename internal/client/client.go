// Package client is the typed Go client for the kbtable /v1 HTTP API.
// Every binary and the cluster router speak the API through it: requests
// and responses are the internal/api structs, non-2xx replies surface as
// *APIError carrying the envelope's stable machine code, and retries
// (opt-in) honor the server's Retry-After. The client pins the API
// version — it only ever calls /v1 paths.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"kbtable/internal/api"
)

// APIError is a non-2xx reply decoded from the structured error
// envelope. Dispatch on Code (one of the api.Code* constants), not on
// Message text.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine code from the envelope ("" when the
	// body was not a valid envelope — e.g. a proxy error page).
	Code string
	// Message is human-readable detail (not stable).
	Message string
	// RetryAfter is the server-advised backoff (zero when none given).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("kbtable api: %s (%s, http %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("kbtable api: %s (http %d)", e.Message, e.Status)
}

// Code returns err's stable machine code ("" when err is not an
// *APIError).
func Code(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// IsShed reports that the server shed the request under overload; the
// caller should back off (see *APIError.RetryAfter) and retry.
func IsShed(err error) bool { return Code(err) == api.CodeShed }

// IsStaleEpoch reports a pinned-state mismatch (cluster leg or prepare
// racing an update): retry against current state.
func IsStaleEpoch(err error) bool { return Code(err) == api.CodeStaleEpoch }

// IsPreparedGone reports an expired prepared handle: re-prepare.
func IsPreparedGone(err error) bool { return Code(err) == api.CodePreparedGone }

// Config tunes a Client beyond its base URL.
type Config struct {
	// HTTPClient overrides the transport (default: a dedicated client
	// with a 30s overall timeout; per-request contexts still apply).
	HTTPClient *http.Client
	// MaxRetries enables retrying shed (429) responses and transport
	// errors up to this many times, sleeping the server's Retry-After
	// (or a doubling backoff from 50ms when absent) between attempts.
	// Zero — the default — performs no retries: load generators and the
	// cluster router want to see every shed themselves.
	MaxRetries int
}

// Client speaks the /v1 API against one base URL. It is safe for
// concurrent use.
type Client struct {
	base string
	http *http.Client
	cfg  Config
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"; any trailing slash is trimmed).
func New(base string, cfg ...Config) *Client {
	c := &Client{base: strings.TrimRight(base, "/")}
	if len(cfg) > 0 {
		c.cfg = cfg[0]
	}
	c.http = c.cfg.HTTPClient
	if c.http == nil {
		c.http = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

// Search runs POST /v1/search.
func (c *Client) Search(ctx context.Context, req *api.SearchRequest) (*api.SearchResponse, error) {
	var out api.SearchResponse
	if err := c.post(ctx, "/search", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Prepare runs POST /v1/prepare.
func (c *Client) Prepare(ctx context.Context, req *api.PrepareRequest) (*api.PrepareResponse, error) {
	var out api.PrepareResponse
	if err := c.post(ctx, "/prepare", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Update runs POST /v1/update.
func (c *Client) Update(ctx context.Context, req *api.UpdateRequest) (*api.UpdateResponse, error) {
	var out api.UpdateResponse
	if err := c.post(ctx, "/update", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health runs GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.get(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Shards runs GET /v1/shards.
func (c *Client) Shards(ctx context.Context) (*api.ShardsResponse, error) {
	var out api.ShardsResponse
	if err := c.get(ctx, "/shards", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WALSegments runs GET /v1/wal/segments?after=N[&max=M] (max <= 0 uses
// the server default). A 410 wal_gap *APIError means the cursor
// precedes retained history and the follower must reseed.
func (c *Client) WALSegments(ctx context.Context, after uint64, max int) (*api.WALSegmentsResponse, error) {
	path := "/wal/segments?after=" + strconv.FormatUint(after, 10)
	if max > 0 {
		path += "&max=" + strconv.Itoa(max)
	}
	var out api.WALSegmentsResponse
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ProbeShard runs POST /v1/cluster/probe — one shard's planner-probe
// leg on an owner node.
func (c *Client) ProbeShard(ctx context.Context, req *api.ClusterProbeRequest) (*api.ClusterProbeResponse, error) {
	var out api.ClusterProbeResponse
	if err := c.post(ctx, "/cluster/probe", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ScatterShard runs POST /v1/cluster/scatter — one shard's
// enumerate→aggregate leg on an owner node.
func (c *Client) ScatterShard(ctx context.Context, req *api.ClusterScatterRequest) (*api.ClusterScatterResponse, error) {
	var out api.ClusterScatterResponse
	if err := c.post(ctx, "/cluster/scatter", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition from GET /v1/metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/"+api.Version+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp, body)
	}
	return string(body), nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, body, out)
}

// do performs one API call with the retry policy. Only sheds (which
// carry an explicit server backoff) and transport-level failures are
// retried; every other *APIError is a definitive answer.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	u := c.base + "/" + api.Version + path
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, u, body, out)
		if err == nil {
			return nil
		}
		if attempt >= c.cfg.MaxRetries {
			return err
		}
		wait := backoff
		var ae *APIError
		if errors.As(err, &ae) {
			if ae.Code != api.CodeShed {
				return err
			}
			if ae.RetryAfter > 0 {
				wait = ae.RetryAfter
			}
		}
		backoff *= 2
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

func (c *Client) once(ctx context.Context, method, u string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp, raw)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("kbtable api: decoding %s reply: %w", urlPath(u), err)
	}
	return nil
}

// decodeError turns a non-2xx response into *APIError, preferring the
// structured envelope and falling back to raw body text (truncated) for
// replies that did not come from a kbtable server.
func decodeError(resp *http.Response, body []byte) error {
	ae := &APIError{Status: resp.StatusCode}
	var env api.ErrorResponse
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		if env.Error.RetryAfterMS > 0 {
			ae.RetryAfter = time.Duration(env.Error.RetryAfterMS) * time.Millisecond
		}
	} else {
		msg := strings.TrimSpace(string(body))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		ae.Message = msg
	}
	if ae.RetryAfter == 0 {
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return ae
}

func urlPath(u string) string {
	if p, err := url.Parse(u); err == nil {
		return p.Path
	}
	return u
}
