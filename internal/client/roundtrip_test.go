package client_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kbtable"
	"kbtable/internal/api"
	"kbtable/internal/client"
	"kbtable/internal/serve"
)

// demoServer starts a serve.Server over the small Figure 1 knowledge
// base behind httptest and returns a typed client for it.
func demoServer(t *testing.T, mutate func(*serve.Config)) (*client.Client, *httptest.Server) {
	t.Helper()
	b := kbtable.NewBuilder()
	sql := b.Entity("Software", "SQL Server")
	ms := b.Entity("Company", "Microsoft")
	or := b.Entity("Company", "Oracle Corp")
	odb := b.Entity("Software", "Oracle DB")
	b.Attr(sql, "Developer", ms)
	b.Attr(odb, "Developer", or)
	b.TextAttr(ms, "Revenue", "US$ 77 billion")
	b.TextAttr(or, "Revenue", "US$ 37 billion")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{Engine: eng, D: 3, CacheSize: -1}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), ts
}

func wantCode(t *testing.T, err error, status int, code string) {
	t.Helper()
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("want *client.APIError %d/%s, got %T: %v", status, code, err, err)
	}
	if apiErr.Status != status || apiErr.Code != code {
		t.Fatalf("want %d/%s, got %d/%s (%s)", status, code, apiErr.Status, apiErr.Code, apiErr.Message)
	}
}

// TestRoundTripHappyPaths drives every client method against a live
// server: search, prepare+prepared search, update, health, shards, and
// metrics.
func TestRoundTripHappyPaths(t *testing.T) {
	cl, _ := demoServer(t, nil)
	ctx := context.Background()

	sr, err := cl.Search(ctx, &api.SearchRequest{Query: "software company revenue", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Answers) == 0 || sr.Algorithm == "" || sr.Epoch != 0 {
		t.Fatalf("search response: %+v", sr)
	}
	if len(sr.Answers[0].FullColumns) == 0 {
		t.Fatal("search answers missing full_columns")
	}

	pr, err := cl.Prepare(ctx, &api.PrepareRequest{Query: "software company", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pr.ID == "" {
		t.Fatalf("prepare returned no handle: %+v", pr)
	}
	psr, err := cl.Search(ctx, &api.SearchRequest{PreparedID: pr.ID})
	if err != nil {
		t.Fatal(err)
	}
	if psr.PreparedID != pr.ID {
		t.Fatalf("prepared search echoed %q, want %q", psr.PreparedID, pr.ID)
	}

	var u kbtable.Update
	e := u.AddEntity("Company", "Initrode")
	u.AddTextAttr(e, "Revenue", "US$ 2 billion")
	ur, err := cl.Update(ctx, &api.UpdateRequest{Ops: u.Ops})
	if err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 || len(ur.NewEntities) != 1 {
		t.Fatalf("update response: %+v", ur)
	}

	// The handle was bound to epoch 0 and expired with the update.
	_, err = cl.Search(ctx, &api.SearchRequest{PreparedID: pr.ID})
	if !client.IsPreparedGone(err) {
		t.Fatalf("want prepared_gone after update, got %v", err)
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 1 || !h.Updatable {
		t.Fatalf("health: %+v", h)
	}

	sh, err := cl.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Role != "standalone" || !sh.Complete || sh.Epoch != 1 {
		t.Fatalf("shards: %+v", sh)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "kbserve_requests_total") {
		t.Fatalf("metrics output unrecognized:\n%s", m)
	}
}

// TestRoundTripErrorCodes exercises every structured error the server
// emits through the typed client and raw HTTP where the client cannot
// construct the malformed request itself.
func TestRoundTripErrorCodes(t *testing.T) {
	cl, ts := demoServer(t, nil)
	ctx := context.Background()

	// 400 bad_request: empty query.
	_, err := cl.Search(ctx, &api.SearchRequest{Query: ""})
	wantCode(t, err, http.StatusBadRequest, api.CodeBadRequest)

	// 400 bad_request: unknown algorithm.
	_, err = cl.Search(ctx, &api.SearchRequest{Query: "software", Algorithm: "bogus"})
	wantCode(t, err, http.StatusBadRequest, api.CodeBadRequest)

	// 400 bad_request: prepare of baseline.
	_, err = cl.Prepare(ctx, &api.PrepareRequest{Query: "software", Algorithm: "baseline"})
	wantCode(t, err, http.StatusBadRequest, api.CodeBadRequest)

	// 400 bad_request: update with no ops.
	_, err = cl.Update(ctx, &api.UpdateRequest{})
	wantCode(t, err, http.StatusBadRequest, api.CodeBadRequest)

	// 410 prepared_gone: unknown handle.
	_, err = cl.Search(ctx, &api.SearchRequest{PreparedID: "nope"})
	wantCode(t, err, http.StatusGone, api.CodePreparedGone)
	if !client.IsPreparedGone(err) {
		t.Fatalf("IsPreparedGone(%v) = false", err)
	}

	// 404 not_found envelope on unknown paths, versioned or not.
	for _, path := range []string{"/v1/nope", "/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), api.CodeNotFound) {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, body)
		}
	}

	// 405 method_not_allowed: GET on a POST endpoint, POST on a GET one.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/search"},
		{http.MethodGet, "/v1/prepare"},
		{http.MethodGet, "/v1/update"},
		{http.MethodPost, "/v1/shards"},
		{http.MethodPost, "/v1/wal/segments"},
		{http.MethodDelete, "/v1/healthz"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || !strings.Contains(string(body), api.CodeMethodNotAllowed) {
			t.Fatalf("%s %s: %d %s", probe.method, probe.path, resp.StatusCode, body)
		}
	}

	// 415 bad_request: POST with a non-JSON Content-Type.
	resp, err := http.Post(ts.URL+"/v1/search", "text/plain", strings.NewReader(`{"query":"software"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType || !strings.Contains(string(body), api.CodeBadRequest) {
		t.Fatalf("non-JSON POST: %d %s", resp.StatusCode, body)
	}

	// 400 bad_request: malformed JSON body.
	resp, err = http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(`{"query":`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), api.CodeBadRequest) {
		t.Fatalf("bad JSON POST: %d %s", resp.StatusCode, body)
	}

	// 501 not_implemented: WAL endpoint without a store.
	_, err = cl.WALSegments(ctx, 0, 0)
	wantCode(t, err, http.StatusNotImplemented, api.CodeNotImplemented)

	// 501 read_only: update against a read-only server.
	roCl, _ := demoServer(t, func(c *serve.Config) { c.ReadOnly = true })
	var u kbtable.Update
	u.AddEntity("Company", "Nope Inc")
	_, err = roCl.Update(ctx, &api.UpdateRequest{Ops: u.Ops})
	wantCode(t, err, http.StatusNotImplemented, api.CodeReadOnly)
}

// TestLegacyAliasParity pins that the unversioned paths answer with the
// same bytes (modulo timings) as their /v1 twins.
func TestLegacyAliasParity(t *testing.T) {
	_, ts := demoServer(t, nil)

	// Error responses are deterministic — compare raw bytes.
	for _, path := range []string{"/search", "/prepare", "/update"} {
		var bodies [2]string
		var statuses [2]int
		for i, p := range []string{path, "/v1" + path} {
			req, _ := http.NewRequest(http.MethodGet, ts.URL+p, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			bodies[i], statuses[i] = string(raw), resp.StatusCode
		}
		if bodies[0] != bodies[1] || statuses[0] != statuses[1] {
			t.Fatalf("%s alias diverges: %d %q vs %d %q", path, statuses[0], bodies[0], statuses[1], bodies[1])
		}
	}

	// Success responses: decode and compare after zeroing wall-clock
	// timings (the only legitimately volatile fields).
	normalize := func(r *api.SearchResponse) {
		r.ElapsedMS = 0
		if r.Plan != nil {
			r.Plan.PrepareMS, r.Plan.EnumerateMS = 0, 0
			r.Plan.AggregateMS, r.Plan.RankMS = 0, 0
		}
	}
	var got [2]*api.SearchResponse
	for i, p := range []string{"/search", "/v1/search"} {
		resp, err := client.New(ts.URL).Search(context.Background(), &api.SearchRequest{Query: "software company revenue", K: 3})
		_ = p
		if err != nil {
			t.Fatal(err)
		}
		got[i] = resp
	}
	normalize(got[0])
	normalize(got[1])
	if !reflect.DeepEqual(got[0], got[1]) {
		t.Fatalf("search alias diverges:\n%+v\nvs\n%+v", got[0], got[1])
	}
}

// TestWALSegmentsRoundTrip reads shipped WAL records back through the
// client from a durable server, including the empty tail and the
// wal_gap signal after a checkpoint truncates history.
func TestWALSegmentsRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	var store *kbtable.Store
	cl, _ := demoServer(t, func(c *serve.Config) {
		st, err := kbtable.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Engine.(*kbtable.Engine).Checkpoint(st); err != nil {
			t.Fatal(err)
		}
		c.Store = st
		c.CheckpointEvery = -1
		store = st
	})
	t.Cleanup(func() { store.Close() })

	for i := 0; i < 3; i++ {
		var u kbtable.Update
		u.AddEntity("Company", "WAL Co "+string(rune('A'+i)))
		if _, err := cl.Update(ctx, &api.UpdateRequest{Ops: u.Ops}); err != nil {
			t.Fatal(err)
		}
	}

	ws, err := cl.WALSegments(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Records) != 3 || ws.LastSeq != 3 || ws.More {
		t.Fatalf("wal segments: %+v", ws)
	}
	for i, rec := range ws.Records {
		if rec.Seq != uint64(i+1) || len(rec.Ops) == 0 {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}

	// Paged read: one record at a time, More set until the tail.
	ws, err = cl.WALSegments(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Records) != 1 || ws.LastSeq != 1 || !ws.More {
		t.Fatalf("paged wal segments: %+v", ws)
	}

	// Empty tail.
	ws, err = cl.WALSegments(ctx, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Records) != 0 || ws.More {
		t.Fatalf("tail read: %+v", ws)
	}

	// A checkpoint truncates history: on a server checkpointing every
	// update, cursors before the snapshot now 410 wal_gap.
	gapDir := t.TempDir()
	var gapStore *kbtable.Store
	gapCl, _ := demoServer(t, func(c *serve.Config) {
		st, err := kbtable.OpenStore(gapDir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Engine.(*kbtable.Engine).Checkpoint(st); err != nil {
			t.Fatal(err)
		}
		c.Store = st
		c.CheckpointEvery = 1
		gapStore = st
	})
	t.Cleanup(func() { gapStore.Close() })
	var u kbtable.Update
	u.AddEntity("Company", "Gap Co")
	if _, err := gapCl.Update(ctx, &api.UpdateRequest{Ops: u.Ops}); err != nil {
		t.Fatal(err)
	}
	var gapErr error
	for deadline := time.Now().Add(5 * time.Second); ; {
		_, gapErr = gapCl.WALSegments(ctx, 0, 0)
		if gapErr != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond) // checkpointing is asynchronous
	}
	wantCode(t, gapErr, http.StatusGone, api.CodeWALGap)
}

// TestClientShedRetry pins the retry contract: the client retries sheds
// honoring Retry-After and surfaces them unretried by default.
func TestClientShedRetry(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"shed","message":"overloaded","retry_after_ms":1}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"query":"q","answers":[]}`))
	}))
	t.Cleanup(ts.Close)

	// Default client: no retries, the shed surfaces typed.
	_, err := client.New(ts.URL).Search(context.Background(), &api.SearchRequest{Query: "q"})
	if !client.IsShed(err) {
		t.Fatalf("want shed, got %v", err)
	}
	apiErr := err.(*client.APIError)
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("shed carried no retry hint: %+v", apiErr)
	}

	// Retrying client: two sheds then success.
	hits.Store(0)
	start := time.Now()
	if _, err := client.New(ts.URL, client.Config{MaxRetries: 3}).Search(context.Background(), &api.SearchRequest{Query: "q"}); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("retries did not honor the retry-after hint")
	}
}
