package store

import (
	"os"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitThroughput pins the point of group commit: at write
// concurrency 8 the shared-fsync path must sustain at least 2x the
// appends/s of the single-writer baseline (which degenerates to one
// fsync per record, the pre-group-commit behavior). Timing-based, so
// opt-in — CI runs it inside the load-soak job where a flake reruns
// cheaply, not in the race matrix:
//
//	KBTABLE_PERF=1 go test -run TestGroupCommitThroughput -v ./internal/store
func TestGroupCommitThroughput(t *testing.T) {
	if os.Getenv("KBTABLE_PERF") == "" {
		t.Skip("set KBTABLE_PERF=1 to run the group-commit throughput floor (timing-based)")
	}
	payload := []byte(`{"ops":[{"op":"add_entity","type":"T","text":"hello world"}]}`)
	run := func(workers, per int) float64 {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		t0 := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := s.Append(payload); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		return float64(workers*per) / time.Since(t0).Seconds()
	}

	// Warm both paths once so filesystem cache state is comparable.
	run(1, 20)
	base := run(1, 300) // one fsync per append: the old behavior
	conc := run(8, 300) // 8 concurrent writers share fsync batches
	t.Logf("baseline 1 writer: %.0f appends/s; 8 writers: %.0f appends/s; speedup %.1fx",
		base, conc, conc/base)
	if conc < 2*base {
		t.Fatalf("group commit speedup %.2fx < 2x at concurrency 8", conc/base)
	}
}
