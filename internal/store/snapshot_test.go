package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fill(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func checkpointAt(t *testing.T, s *Store, seq uint64, body string) {
	t.Helper()
	m := Manifest{Seq: seq, D: 3, Nodes: 10, Edges: 9}
	files := map[string]func(io.Writer) error{
		GraphFileName:    fill("graph:" + body),
		IndexFileName(0): fill("index:" + body),
	}
	if _, err := s.Checkpoint(m, files); err != nil {
		t.Fatalf("checkpoint at %d: %v", seq, err)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 4)
	checkpointAt(t, s, 4, "v4")

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m := sn.Manifest
	if m.Seq != 4 || m.FormatVersion != FormatVersion || m.D != 3 {
		t.Fatalf("manifest: %+v", m)
	}
	g, err := sn.ReadFile(GraphFileName)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != "graph:v4" {
		t.Fatalf("graph file: %q", g)
	}
	if sn.NumIndexFiles() != 1 {
		t.Fatalf("index files: %d", sn.NumIndexFiles())
	}

	// Reopen: snapshot seq is rediscovered, replay resumes after it.
	s.Close()
	s2 := openStore(t, dir)
	if st := s2.Stats(); st.SnapshotSeq != 4 || !st.HasSnapshot {
		t.Fatalf("reopened stats: %+v", st)
	}
	got, _ := collect(t, s2, 4)
	if len(got) != 0 {
		t.Fatalf("records beyond the snapshot: %v", got)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 10)
	before := s.Stats().WALBytes
	checkpointAt(t, s, 10, "v10")
	after := s.Stats().WALBytes
	if after >= before {
		t.Fatalf("checkpoint did not reclaim WAL bytes: %d -> %d", before, after)
	}
	// Appends continue after the rotation; suffix replay sees only them.
	if seq, err := s.Append([]byte("post")); err != nil || seq != 11 {
		t.Fatalf("append after checkpoint: seq=%d err=%v", seq, err)
	}
	got, st := collect(t, s, 10)
	if len(got) != 1 || got[0] != "11:post" || st.Torn {
		t.Fatalf("suffix after checkpoint: %v %+v", got, st)
	}
}

func TestCheckpointKeepsSuffixRecords(t *testing.T) {
	// Snapshot at seq 3 while records 4..6 exist: they must survive GC.
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 6)
	checkpointAt(t, s, 3, "v3")
	got, st := collect(t, s, 3)
	if len(got) != 3 || got[0] != "4:rec-3" || st.Torn {
		t.Fatalf("suffix lost by checkpoint GC: %v %+v", got, st)
	}

	// And a crash-reopen still sees them.
	s.Close()
	s2 := openStore(t, dir)
	got, _ = collect(t, s2, 3)
	if len(got) != 3 {
		t.Fatalf("suffix lost across reopen: %v", got)
	}
}

func TestCheckpointSupersedesOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 2)
	checkpointAt(t, s, 2, "v2")
	appendN(t, s, 2) // seq 3,4
	checkpointAt(t, s, 4, "v4")

	sn, err := s.Snapshot()
	if err != nil || sn.Manifest.Seq != 4 {
		t.Fatalf("latest snapshot: %+v err=%v", sn, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range ents {
		if _, ok := parseSnapDirName(e.Name()); ok && e.IsDir() {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("old snapshot not garbage-collected: %d snapshot dirs", snaps)
	}

	// Re-checkpointing at the same seq reports ErrSnapshotCurrent (a
	// skip, distinguishable from success and from failure).
	if n, err := s.Checkpoint(Manifest{Seq: 4}, nil); err != ErrSnapshotCurrent || n != 0 {
		t.Fatalf("same-seq checkpoint: n=%d err=%v", n, err)
	}
	// A checkpoint behind the snapshot is refused.
	if _, err := s.Checkpoint(Manifest{Seq: 1}, nil); err == nil {
		t.Fatal("regressing checkpoint accepted")
	}
}

func TestReopenAfterWALLossResumesAfterSnapshot(t *testing.T) {
	// Double failure: the snapshot survives but every WAL segment is
	// lost. Appends must resume AFTER the snapshot's sequence — reusing
	// absorbed sequence numbers would make replay skip new records.
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 4)
	checkpointAt(t, s, 4, "v4")
	s.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range segs {
		if err := os.Remove(filepath.Join(dir, walSegName(st))); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openStore(t, dir)
	seq, err := s2.Append([]byte("resumed"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("append after WAL loss got seq %d, want 5", seq)
	}
	got, st := collect(t, s2, 4)
	if len(got) != 1 || got[0] != "5:resumed" || st.Torn {
		t.Fatalf("replay after WAL loss: %v %+v", got, st)
	}
}

func TestCheckpointSweepsOrphanSnapshots(t *testing.T) {
	// A crash between a snapshot's rename and its GC pass leaves an
	// orphan older snapshot; the next checkpoint must sweep ALL older
	// snapshots, not just its immediate predecessor.
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 4)
	checkpointAt(t, s, 2, "v2")
	orphan := filepath.Join(dir, snapDirName(1))
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	checkpointAt(t, s, 4, "v4")
	for _, old := range []uint64{1, 2} {
		if _, err := os.Stat(filepath.Join(dir, snapDirName(old))); !os.IsNotExist(err) {
			t.Fatalf("snapshot %d survived the sweep (err=%v)", old, err)
		}
	}
}

func TestManifestCorruptionIgnoresSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 2)
	checkpointAt(t, s, 2, "v2")
	s.Close()

	// Flip a byte in the manifest body: the snapshot must be rejected.
	mp := filepath.Join(dir, snapDirName(2), "MANIFEST")
	flipByte(t, mp, 3)
	if _, err := Open(dir); err == nil {
		if _, err := latestSnapshot(dir); err == nil {
			t.Fatal("corrupt manifest accepted")
		}
	}
}

func TestSnapshotFileChecksumVerified(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 2)
	checkpointAt(t, s, 2, "v2")

	gp := filepath.Join(dir, snapDirName(2), GraphFileName)
	flipByte(t, gp, 1)
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sn.ReadFile(GraphFileName); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt snapshot file read succeeded (err=%v)", err)
	}
}

func TestInterruptedCheckpointLeavesOldSnapshotUsable(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 2)
	checkpointAt(t, s, 2, "v2")
	s.Close()

	// Simulate a crash mid-checkpoint: a half-written .tmp directory.
	tmp := filepath.Join(dir, snapDirName(5)+".tmp")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, GraphFileName), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	sn, err := s2.Snapshot()
	if err != nil || sn.Manifest.Seq != 2 {
		t.Fatalf("tmp dir shadowed the real snapshot: %+v err=%v", sn, err)
	}
	// The next checkpoint clears the stray tmp dir.
	appendN(t, s2, 1)
	checkpointAt(t, s2, 3, "v3")
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray .tmp survived GC: %v", err)
	}
}

func TestWriteSnapshotFileError(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 1)
	m := Manifest{Seq: 1}
	_, err := s.Checkpoint(m, map[string]func(io.Writer) error{
		GraphFileName: func(io.Writer) error { return fmt.Errorf("boom") },
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want fill error, got %v", err)
	}
	if _, err := s.Snapshot(); err != ErrNoSnapshot {
		t.Fatalf("failed checkpoint left a snapshot: %v", err)
	}
}
