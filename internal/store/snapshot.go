package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A snapshot is a directory snap-<seq> holding a checksummed MANIFEST
// plus the files the manifest names (the serialized graph and one index
// file per shard). <seq> is the last WAL sequence number the snapshot
// includes: recovery loads the snapshot and replays only records with
// larger sequence numbers. Snapshots are written to a .tmp directory
// and renamed into place, so a half-written snapshot is never eligible
// for recovery.

// FormatVersion is the snapshot manifest format this build writes.
// Readers refuse manifests with a larger version; bumping it requires
// regenerating the checked-in fixture (make snapshot-fixture).
const FormatVersion = 1

// manifestMagic leads the MANIFEST file: "kbsnap1 <crc32c> <len>\n<json>".
const manifestMagic = "kbsnap1"

// ErrNoSnapshot reports that a data directory holds no loadable
// snapshot (a fresh directory, before the first checkpoint).
var ErrNoSnapshot = errors.New("store: no snapshot")

// Manifest describes one snapshot: the engine configuration needed to
// reload it, the WAL position it includes, and a checksum per file.
type Manifest struct {
	// FormatVersion is the snapshot format (see FormatVersion).
	FormatVersion int `json:"format_version"`
	// IndexWireVersion records the index wire format the snapshot's
	// index files were written in (index.WireVersion at checkpoint
	// time; 0 in manifests from builds that predate the field). The
	// store treats it as opaque metadata — index.Load sniffs the actual
	// container — but recovery tooling and the fixture gate use it to
	// assert which format a snapshot actually carries.
	IndexWireVersion int `json:"index_wire_version,omitempty"`
	// Seq is the last WAL sequence number reflected in the snapshot
	// (0 = the initial state, before any logged update).
	Seq uint64 `json:"seq"`
	// D is the engine's height threshold.
	D int `json:"d"`
	// Shards is the engine's shard count (0 or 1 = unsharded; the
	// snapshot then holds exactly one index file).
	Shards int `json:"shards"`
	// Epochs are the per-shard update epochs (nil when unsharded).
	Epochs []uint64 `json:"epochs,omitempty"`
	// Nodes / Edges fingerprint the graph; loading cross-checks them.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// UniformPR records EngineOptions.UniformPageRank.
	UniformPR bool `json:"uniform_pagerank,omitempty"`
	// Synonyms records EngineOptions.Synonyms (they steer incremental
	// maintenance and baseline builds after recovery).
	Synonyms map[string]string `json:"synonyms,omitempty"`
	// Files maps each snapshot file to its hex SHA-256; loads verify.
	Files map[string]string `json:"files"`
}

// Snapshot is a loadable snapshot directory.
type Snapshot struct {
	// Dir is the snapshot directory path.
	Dir string
	// Manifest is the verified manifest.
	Manifest Manifest
}

func snapDirName(seq uint64) string { return fmt.Sprintf("snap-%020d", seq) }

func parseSnapDirName(name string) (uint64, bool) {
	const prefix = "snap-"
	if !strings.HasPrefix(name, prefix) || strings.Contains(name, ".") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeManifest renders the MANIFEST file bytes.
func encodeManifest(m *Manifest) ([]byte, error) {
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	crc := crc32.Checksum(body, walCRC)
	head := fmt.Sprintf("%s %08x %d\n", manifestMagic, crc, len(body))
	return append([]byte(head), body...), nil
}

// decodeManifest parses and verifies MANIFEST bytes.
func decodeManifest(data []byte) (*Manifest, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, errors.New("store: manifest: missing header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != manifestMagic {
		return nil, fmt.Errorf("store: manifest: bad header %q", string(data[:nl]))
	}
	wantCRC, err1 := strconv.ParseUint(fields[1], 16, 32)
	wantLen, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		return nil, errors.New("store: manifest: malformed header")
	}
	body := data[nl+1:]
	if len(body) != wantLen {
		return nil, fmt.Errorf("store: manifest: body is %d bytes, header says %d", len(body), wantLen)
	}
	if crc32.Checksum(body, walCRC) != uint32(wantCRC) {
		return nil, errors.New("store: manifest: checksum mismatch")
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.FormatVersion < 1 || m.FormatVersion > FormatVersion {
		return nil, fmt.Errorf("store: manifest format version %d not supported (this build reads up to %d)", m.FormatVersion, FormatVersion)
	}
	return &m, nil
}

// writeSnapshot materializes a snapshot directory under dir: every file
// is produced by its writer callback, checksummed, and fsynced; the
// manifest is finalized with the checksums; the .tmp directory is then
// atomically renamed to snap-<seq>. Returns the total bytes written.
// An existing snap-<seq> is left untouched (same seq = same contents).
func writeSnapshot(dir string, m Manifest, files map[string]func(io.Writer) error) (int64, error) {
	final := filepath.Join(dir, snapDirName(m.Seq))
	if _, err := os.Stat(final); err == nil {
		return 0, fmt.Errorf("store: snapshot %s already exists", final)
	}
	m.FormatVersion = FormatVersion
	m.Files = make(map[string]string, len(files))

	tmp := final + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("store: clear %s: %w", tmp, err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return 0, fmt.Errorf("store: mkdir %s: %w", tmp, err)
	}
	var total int64
	// Deterministic write order keeps failures reproducible.
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n, sum, err := writeChecksummed(filepath.Join(tmp, name), files[name])
		if err != nil {
			return 0, err
		}
		m.Files[name] = sum
		total += n
	}
	mb, err := encodeManifest(&m)
	if err != nil {
		return 0, err
	}
	if err := writeFileSync(filepath.Join(tmp, "MANIFEST"), mb); err != nil {
		return 0, err
	}
	total += int64(len(mb))
	if err := syncDir(tmp); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return total, nil
}

// writeChecksummed streams fill's output to path through SHA-256,
// fsyncs, and returns the byte count and hex digest.
func writeChecksummed(path string, fill func(io.Writer) error) (int64, string, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, "", fmt.Errorf("store: create %s: %w", path, err)
	}
	h := sha256.New()
	cw := &countingWriter{w: io.MultiWriter(f, h)}
	if err := fill(cw); err != nil {
		f.Close()
		return 0, "", fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, "", fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return 0, "", fmt.Errorf("store: close %s: %w", path, err)
	}
	return cw.n, hex.EncodeToString(h.Sum(nil)), nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable (best effort on filesystems that reject directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// latestSnapshot finds the highest-seq snapshot with a valid manifest.
func latestSnapshot(dir string) (*Snapshot, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if seq, ok := parseSnapDirName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	var firstErr error
	for _, seq := range seqs {
		sd := filepath.Join(dir, snapDirName(seq))
		data, err := os.ReadFile(filepath.Join(sd, "MANIFEST"))
		if err == nil {
			var m *Manifest
			if m, err = decodeManifest(data); err == nil {
				if m.Seq != seq {
					err = fmt.Errorf("store: %s: manifest claims seq %d", sd, m.Seq)
				} else {
					return &Snapshot{Dir: sd, Manifest: *m}, nil
				}
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("store: snapshot %s unreadable: %w", sd, err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, ErrNoSnapshot
}

// ReadFile returns a named snapshot file's contents after verifying its
// manifest checksum.
func (sn *Snapshot) ReadFile(name string) ([]byte, error) {
	want, ok := sn.Manifest.Files[name]
	if !ok {
		return nil, fmt.Errorf("store: snapshot %s has no file %q", sn.Dir, name)
	}
	data, err := os.ReadFile(filepath.Join(sn.Dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != want {
		return nil, fmt.Errorf("store: snapshot file %s/%s fails its checksum", sn.Dir, name)
	}
	return data, nil
}

// NumIndexFiles returns how many shard-NNN.idx files the snapshot holds.
func (sn *Snapshot) NumIndexFiles() int {
	n := 0
	for name := range sn.Manifest.Files {
		if strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".idx") {
			n++
		}
	}
	return n
}

// IndexFileName names shard si's index file inside a snapshot.
func IndexFileName(si int) string { return fmt.Sprintf("shard-%03d.idx", si) }

// GraphFileName is the serialized graph's name inside a snapshot.
const GraphFileName = "graph.bin"

// OwnersFileName is the shard-ownership table's name (sharded only).
const OwnersFileName = "owners.bin"
