package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitHammer fires many concurrent Appends and asserts the
// committer's core contract under -race: every acked record got a
// unique sequence number, the sequences are exactly 1..N with no gaps
// or duplicates, and a reopen replays every record in order with
// byte-identical payloads.
func TestGroupCommitHammer(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 16
	const perWriter = 50
	type acked struct {
		seq     uint64
		payload string
	}
	results := make(chan acked, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				payload := fmt.Sprintf("writer=%d record=%d", w, i)
				seq, err := s.Append([]byte(payload))
				if err != nil {
					t.Errorf("append w%d/%d: %v", w, i, err)
					return
				}
				results <- acked{seq, payload}
			}
		}(w)
	}
	wg.Wait()
	close(results)

	want := make(map[uint64]string, writers*perWriter)
	for a := range results {
		if prev, dup := want[a.seq]; dup {
			t.Fatalf("seq %d acked twice (%q and %q)", a.seq, prev, a.payload)
		}
		want[a.seq] = a.payload
	}
	if len(want) != writers*perWriter {
		t.Fatalf("acked %d records, want %d", len(want), writers*perWriter)
	}
	for seq := uint64(1); seq <= uint64(writers*perWriter); seq++ {
		if _, ok := want[seq]; !ok {
			t.Fatalf("sequence gap at %d", seq)
		}
	}

	st := s.Stats()
	if st.GroupCommit.Records != uint64(writers*perWriter) {
		t.Fatalf("group-commit stats cover %d records, want %d", st.GroupCommit.Records, writers*perWriter)
	}
	if st.GroupCommit.Batches == 0 || st.GroupCommit.Batches > st.GroupCommit.Records {
		t.Fatalf("implausible batch count %d for %d records", st.GroupCommit.Batches, st.GroupCommit.Records)
	}
	if st.GroupCommit.MaxBatch > DefaultGroupMaxBatch {
		t.Fatalf("batch of %d exceeds the %d cap", st.GroupCommit.MaxBatch, DefaultGroupMaxBatch)
	}
	var histTotal uint64
	for _, c := range st.GroupCommit.Hist {
		histTotal += c
	}
	if histTotal != st.GroupCommit.Batches {
		t.Fatalf("histogram counts %d batches, stats say %d", histTotal, st.GroupCommit.Batches)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: replay must yield every acked record, in seq order.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	next := uint64(1)
	_, err = s2.Replay(0, func(seq uint64, payload []byte) error {
		if seq != next {
			return fmt.Errorf("replayed seq %d, want %d", seq, next)
		}
		if got := string(payload); got != want[seq] {
			return fmt.Errorf("seq %d replayed %q, want %q", seq, got, want[seq])
		}
		next = seq + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != uint64(writers*perWriter)+1 {
		t.Fatalf("replay stopped at seq %d, want %d records", next, writers*perWriter)
	}
}

// TestGroupCommitMaxDelayBatches checks that a positive MaxDelay
// actually merges appends that arrive within the window: with the
// committer holding each batch open, concurrent appends should land in
// far fewer fsyncs than records.
func TestGroupCommitMaxDelayBatches(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithGroupCommit(64, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 8
	const perWriter = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.GroupCommit.Records != writers*perWriter {
		t.Fatalf("records = %d, want %d", st.GroupCommit.Records, writers*perWriter)
	}
	if st.GroupCommit.Batches >= st.GroupCommit.Records {
		t.Fatalf("no batching happened: %d batches for %d records", st.GroupCommit.Batches, st.GroupCommit.Records)
	}
}

// TestGroupCommitMaxBatchCap pins the MaxBatch bound: even with a huge
// queue, no batch may exceed the configured cap.
func TestGroupCommitMaxBatchCap(t *testing.T) {
	dir := t.TempDir()
	const cap = 4
	s, err := Open(dir, WithGroupCommit(cap, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 64
	pending := make([]*Pending, n)
	for i := 0; i < n; i++ {
		pending[i] = s.AppendAsync([]byte(fmt.Sprintf("r%d", i)))
	}
	for i, p := range pending {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if got := s.Stats().GroupCommit.MaxBatch; got > cap {
		t.Fatalf("batch of %d exceeds cap %d", got, cap)
	}
}

// TestAppendAfterCloseErrClosed pins the shutdown contract: appends
// racing or following Close resolve with ErrClosed, never hang.
func TestAppendAfterCloseErrClosed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("after")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// TestAsyncOrdering pins the enqueue-order = commit-order contract a
// serialized caller relies on: AppendAsync calls made in sequence get
// consecutive, increasing sequence numbers.
func TestAsyncOrdering(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithGroupCommit(8, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 40
	pending := make([]*Pending, n)
	for i := 0; i < n; i++ {
		pending[i] = s.AppendAsync([]byte(fmt.Sprintf("ordered-%d", i)))
	}
	for i, p := range pending {
		seq, err := p.Wait()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(i)+1 {
			t.Fatalf("record %d committed as seq %d", i, seq)
		}
	}
}
