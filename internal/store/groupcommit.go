package store

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// WAL group commit: concurrent Appends are handed to a single committer
// goroutine that frames every queued record into ONE buffer, writes it
// with one syscall, and makes the whole batch durable with ONE fsync.
// Each caller is unblocked only once its own record is on stable
// storage, so the durability contract is unchanged — a record is
// durable when Append (or Pending.Wait) returns — while the fsync cost
// under concurrency is amortized across the batch. Sequence numbers are
// assigned in queue order by the committer, so the on-disk log is
// strictly consecutive exactly as with single-record appends, and the
// torn-tail recovery semantics are untouched: a crash mid-batch leaves
// a prefix of the batch on disk (never acknowledged — Wait never
// returned for any record of an unsynced batch), and recovery truncates
// at the first invalid frame.

// ErrClosed reports an append against a store that has been Closed.
var ErrClosed = errors.New("store: closed")

// DefaultGroupMaxBatch is the default cap on records per fsync batch.
const DefaultGroupMaxBatch = 128

// Option tunes Open.
type Option func(*Store)

// WithGroupCommit bounds the committer's batching: at most maxBatch
// records share one fsync, and the committer waits at most maxDelay
// after dequeuing the first record to let more arrive (0 = commit
// whatever is already queued, adding no latency to a solo append).
func WithGroupCommit(maxBatch int, maxDelay time.Duration) Option {
	return func(s *Store) {
		if maxBatch > 0 {
			s.gcMaxBatch = maxBatch
		}
		if maxDelay > 0 {
			s.gcMaxDelay = maxDelay
		}
	}
}

// Pending is one in-flight append: Wait blocks until the record is
// durable (fsynced) or the append failed, mirroring Append's contract.
type Pending struct {
	done chan struct{}
	seq  uint64
	err  error
}

// Wait blocks until the record is durable and returns its sequence
// number, or the append error.
func (p *Pending) Wait() (uint64, error) {
	<-p.done
	return p.seq, p.err
}

// failedPending returns an already-resolved Pending carrying err.
func failedPending(err error) *Pending {
	p := &Pending{done: make(chan struct{}), err: err}
	close(p.done)
	return p
}

// appendReq is one queued record awaiting group commit.
type appendReq struct {
	payload []byte
	p       *Pending
}

// GroupCommitStats describes the committer's batching since Open.
type GroupCommitStats struct {
	// Batches is the number of fsyncs; Records the records they covered.
	// Records/Batches is the average batch size — 1.0 means no append
	// ever overlapped another.
	Batches uint64
	Records uint64
	// MaxBatch is the largest batch committed so far.
	MaxBatch int
	// Hist counts batches by size: bucket i holds batches of size in
	// (2^(i-1), 2^i] — upper bounds 1, 2, 4, 8, 16, 32, 64, +Inf.
	Hist [8]uint64
}

// histBucket maps a batch size onto its GroupCommitStats.Hist index.
func histBucket(n int) int {
	b, bound := 0, 1
	for b < len(GroupCommitStats{}.Hist)-1 && n > bound {
		b++
		bound *= 2
	}
	return b
}

// AppendAsync enqueues one record for group commit and returns
// immediately; the record is durable when the returned Pending's Wait
// resolves without error. The payload must not be modified until then.
// Enqueue order is commit order, so callers needing a specific
// interleaving (a serialized update chain) must serialize their
// AppendAsync calls; the sequence numbers are assigned in that order.
func (s *Store) AppendAsync(payload []byte) *Pending {
	if len(payload) > MaxWALRecord {
		return failedPending(fmt.Errorf("store: record of %d bytes exceeds the %d limit", len(payload), MaxWALRecord))
	}
	p := &Pending{done: make(chan struct{})}
	s.gcMu.Lock()
	if s.gcClosing {
		s.gcMu.Unlock()
		return failedPending(ErrClosed)
	}
	s.gcQueue = append(s.gcQueue, appendReq{payload: payload, p: p})
	s.gcCond.Signal()
	s.gcMu.Unlock()
	return p
}

// Append adds one record to the WAL and returns once it is durable
// (fsynced). Concurrent Appends are group-committed: they share a
// single write+fsync but each still blocks until its own record is on
// stable storage. After a failed append the tail's contents are
// suspect, so the store turns read-only for appends (every later Append
// returns the original error).
func (s *Store) Append(payload []byte) (uint64, error) {
	return s.AppendAsync(payload).Wait()
}

// startCommitter launches the group-commit goroutine (end of Open).
func (s *Store) startCommitter() {
	s.gcCond = sync.NewCond(&s.gcMu)
	if s.gcMaxBatch <= 0 {
		s.gcMaxBatch = DefaultGroupMaxBatch
	}
	s.gcWG.Add(1)
	go s.committer()
}

// stopCommitter signals shutdown and waits until the committer has
// flushed (or failed) every queued record. Later AppendAsync calls
// resolve with ErrClosed.
func (s *Store) stopCommitter() {
	s.gcMu.Lock()
	if s.gcCond == nil {
		s.gcMu.Unlock()
		return // Open failed before the committer started
	}
	if !s.gcClosing {
		s.gcClosing = true
		s.gcCond.Broadcast()
	}
	s.gcMu.Unlock()
	s.gcWG.Wait()
}

// takeLocked pops up to n queued requests (gcMu held).
func (s *Store) takeLocked(n int) []appendReq {
	if n > len(s.gcQueue) {
		n = len(s.gcQueue)
	}
	batch := make([]appendReq, n)
	copy(batch, s.gcQueue[:n])
	rest := copy(s.gcQueue, s.gcQueue[n:])
	for i := rest; i < len(s.gcQueue); i++ {
		s.gcQueue[i] = appendReq{} // release payload refs
	}
	s.gcQueue = s.gcQueue[:rest]
	return batch
}

// committer is the single goroutine that turns queued appends into
// group-committed batches until the store closes.
func (s *Store) committer() {
	defer s.gcWG.Done()
	for {
		s.gcMu.Lock()
		for len(s.gcQueue) == 0 && !s.gcClosing {
			s.gcCond.Wait()
		}
		if len(s.gcQueue) == 0 {
			s.gcMu.Unlock()
			return // closing and fully drained
		}
		batch := s.takeLocked(s.gcMaxBatch)
		s.gcMu.Unlock()
		if s.gcMaxDelay > 0 && len(batch) < s.gcMaxBatch {
			// Trade bounded latency for bigger batches: let stragglers
			// pile up before paying the fsync.
			time.Sleep(s.gcMaxDelay)
			s.gcMu.Lock()
			batch = append(batch, s.takeLocked(s.gcMaxBatch-len(batch))...)
			s.gcMu.Unlock()
		}
		s.commitBatch(batch)
	}
}

// commitBatch frames the whole batch into one buffer, writes it, fsyncs
// once, and resolves every waiter. On any failure the store turns
// read-only for appends (the tail is suspect) and the entire batch —
// including records whose bytes may have reached the file — fails:
// nothing unacknowledged is ever reported durable, and recovery
// truncates whatever prefix landed.
func (s *Store) commitBatch(batch []appendReq) {
	s.mu.Lock()
	fail := func(err error) {
		s.mu.Unlock()
		for _, r := range batch {
			r.p.err = err
			close(r.p.done)
		}
	}
	if s.broken != nil {
		fail(fmt.Errorf("store: wal is read-only after an append failure: %w", s.broken))
		return
	}
	if s.seg == nil {
		if err := s.newSegmentLocked(); err != nil {
			fail(err)
			return
		}
	}
	total := 0
	for _, r := range batch {
		total += walHeaderLen + len(r.payload) + walTrailerLen
	}
	buf := make([]byte, 0, total)
	seq0 := s.nextSeq
	for i, r := range batch {
		buf = frameRecord(buf, seq0+uint64(i), r.payload)
	}
	if _, err := s.seg.Write(buf); err != nil {
		s.broken = err
		fail(fmt.Errorf("store: append: %w", err))
		return
	}
	if err := s.seg.Sync(); err != nil {
		s.broken = err
		fail(fmt.Errorf("store: sync: %w", err))
		return
	}
	s.nextSeq = seq0 + uint64(len(batch))
	s.walBytes += int64(total)
	s.gcStats.Batches++
	s.gcStats.Records += uint64(len(batch))
	if len(batch) > s.gcStats.MaxBatch {
		s.gcStats.MaxBatch = len(batch)
	}
	s.gcStats.Hist[histBucket(len(batch))]++
	s.mu.Unlock()
	for i, r := range batch {
		r.p.seq = seq0 + uint64(i)
		close(r.p.done)
	}
}
