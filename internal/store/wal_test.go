package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collect replays everything after fromSeq into a slice.
func collect(t *testing.T, s *Store, fromSeq uint64) ([]string, ReplayStats) {
	t.Helper()
	var got []string
	st, err := s.Replay(fromSeq, func(seq uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", seq, payload))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func appendN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// tailSegment returns the path of the highest-seq segment.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	return filepath.Join(dir, walSegName(segs[len(segs)-1]))
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 5)
	got, st := collect(t, s, 0)
	if len(got) != 5 || st.Torn || st.LastSeq != 5 {
		t.Fatalf("replay: got %v, stats %+v", got, st)
	}
	if got[0] != "1:rec-0" || got[4] != "5:rec-4" {
		t.Fatalf("bad records: %v", got)
	}
	// Suffix replay skips covered records.
	got, st = collect(t, s, 3)
	if len(got) != 2 || got[0] != "4:rec-3" || st.Records != 2 {
		t.Fatalf("suffix replay: got %v, stats %+v", got, st)
	}
}

func TestWALReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 3)
	s.Close()

	s2 := openStore(t, dir)
	seq, err := s2.Append([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("reopened store continued at %d, want 4", seq)
	}
	got, st := collect(t, s2, 0)
	if len(got) != 4 || st.Torn {
		t.Fatalf("got %v, stats %+v", got, st)
	}
}

// corrupt truncates or mutates a file at the given offset from the end.
func chopTail(t *testing.T, path string, bytesOff int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-bytesOff); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, offFromEnd int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[int64(len(data))-offFromEnd] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornFinalRecord(t *testing.T) {
	for _, chop := range []int64{1, 3, 9, 14} { // trailer, body, header cuts
		t.Run(fmt.Sprintf("chop-%d", chop), func(t *testing.T) {
			dir := t.TempDir()
			s := openStore(t, dir)
			appendN(t, s, 4)
			s.Close()
			chopTail(t, tailSegment(t, dir), chop)

			s2 := openStore(t, dir)
			got, st := collect(t, s2, 0)
			if len(got) != 3 || got[2] != "3:rec-2" {
				t.Fatalf("replay after torn tail: %v (stats %+v)", got, st)
			}
			// The torn suffix was truncated on open: appends continue at 4
			// and a fresh replay sees a clean log.
			if seq, err := s2.Append([]byte("new-4")); err != nil || seq != 4 {
				t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
			}
			got, st = collect(t, s2, 0)
			if len(got) != 4 || st.Torn || got[3] != "4:new-4" {
				t.Fatalf("post-recovery replay: %v (stats %+v)", got, st)
			}
		})
	}
}

func TestWALFlippedCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 4)
	s.Close()
	flipByte(t, tailSegment(t, dir), 2) // inside the last record's CRC

	s2 := openStore(t, dir)
	got, st := collect(t, s2, 0)
	if len(got) != 3 {
		t.Fatalf("flipped CRC: replayed %v", got)
	}
	_ = st
}

func TestWALMidFileCorruptionStopsAtLastGood(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 5)
	s.Close()

	// Flip a byte inside record 2's payload: replay must stop after 1.
	path := tailSegment(t, dir)
	recLen := int64(walHeaderLen + len("rec-0") + walTrailerLen)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recLen+walHeaderLen] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	got, _ := collect(t, s2, 0)
	if len(got) != 1 || got[0] != "1:rec-0" {
		t.Fatalf("mid-file corruption: replayed %v, want just record 1", got)
	}
}

func TestWALDuplicateRecordNeverDoubleApplied(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 3)
	s.Close()

	// Append a byte-exact copy of the last record (seq 3 again).
	path := tailSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := walHeaderLen + len("rec-2") + walTrailerLen
	dup := append(append([]byte{}, data...), data[len(data)-recLen:]...)
	if err := os.WriteFile(path, dup, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	got, _ := collect(t, s2, 0)
	if len(got) != 3 {
		t.Fatalf("duplicate record double-applied: %v", got)
	}
	if st := s2.Stats(); !st.TornOnOpen || st.DroppedBytes == 0 {
		t.Fatalf("duplicate suffix should surface as a torn open: %+v", st)
	}
}

func TestWALSequenceGapStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 2)
	s.Close()

	// Hand-craft a record with seq 7 (gap after 2).
	path := tailSegment(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := appendRecord(f, 7, []byte("gap")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir)
	got, _ := collect(t, s2, 0)
	if len(got) != 2 {
		t.Fatalf("gap: replayed %v", got)
	}
	if st := s2.Stats(); !st.TornOnOpen {
		t.Fatalf("gap suffix should surface as a torn open: %+v", st)
	}
}

func TestWALOversizedLengthIsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	appendN(t, s, 1)
	s.Close()

	path := tailSegment(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], MaxWALRecord+1)
	binary.BigEndian.PutUint64(hdr[4:12], 2)
	f.Write(hdr[:])
	f.Write(bytes.Repeat([]byte{0xaa}, 32))
	f.Close()

	s2 := openStore(t, dir)
	got, _ := collect(t, s2, 0)
	if len(got) != 1 {
		t.Fatalf("oversized length: replayed %v", got)
	}
}

func TestWALEmptyDir(t *testing.T) {
	s := openStore(t, t.TempDir())
	got, st := collect(t, s, 0)
	if len(got) != 0 || st.Torn || st.Records != 0 {
		t.Fatalf("empty dir replay: %v %+v", got, st)
	}
	if _, err := s.Snapshot(); err != ErrNoSnapshot {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
}

func TestOpenExcludesConcurrentOpener(t *testing.T) {
	// flock scopes to the open file description, so a second Open in
	// the same process exercises the same conflict a second process
	// would hit.
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("second opener admitted to a live data dir (err=%v)", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	s2.Close()
}

func TestAppendRejectsOversizedPayload(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Append(make([]byte, MaxWALRecord+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
}

// FuzzWALReplay feeds arbitrary bytes as a WAL segment: replay must
// never panic, never deliver an out-of-order or duplicate sequence, and
// always terminate.
func FuzzWALReplay(f *testing.F) {
	// Seed with a valid 2-record log plus mutations of it.
	var buf bytes.Buffer
	appendRecord(&buf, 1, []byte("alpha"))
	appendRecord(&buf, 2, []byte("beta"))
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walSegName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			return // open may reject the dir; it must not panic
		}
		defer s.Close()
		last := uint64(0)
		if _, err := s.Replay(0, func(seq uint64, payload []byte) error {
			if seq != last+1 {
				t.Fatalf("out-of-order seq %d after %d", seq, last)
			}
			last = seq
			return nil
		}); err != nil {
			t.Fatalf("replay errored on fuzz input: %v", err)
		}
	})
}
