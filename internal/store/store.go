// Package store implements the durable layer of the knowledge-base
// engine: a snapshot store plus a write-ahead update log.
//
// A data directory holds at most a handful of snapshot directories
// (snap-<seq>, each a checksummed manifest + serialized graph + one
// index file per shard) and a chain of WAL segments (wal-<seq>.log,
// length-prefix + CRC framed records, fsync on commit). The durability
// contract: a record is durable when Append returns; recovery loads
// the newest valid snapshot and replays the WAL suffix, stopping
// cleanly at the last good record (a torn final record — the signature
// of a crash mid-append — is discarded, never applied partially).
// Checkpointing writes a new snapshot, rotates the WAL, and garbage
// collects snapshots and segments the new snapshot covers.
//
// The package is deliberately engine-agnostic: payloads are opaque
// bytes and snapshot files are produced by caller callbacks, so the
// kbtable facade owns the encoding (UpdateOp batches as JSON, graphs
// and indexes in their existing wire formats) without an import cycle.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrSnapshotCurrent reports that Checkpoint had nothing to do: a
// snapshot at exactly the requested sequence already exists. Callers
// treat it as a skip, not a failure.
var ErrSnapshotCurrent = errors.New("store: snapshot already current")

// Store is an open data directory: the WAL tail for appending plus the
// snapshot inventory. One Store owns the directory; concurrent Append
// and Checkpoint calls are serialized internally.
type Store struct {
	dir  string
	lock *os.File // flock-held LOCK file; released on Close or process death

	mu       sync.Mutex // guards the WAL tail, counters, and snapshot state
	seg      *os.File   // open tail segment (nil until first append)
	segStart uint64     // first sequence of the tail segment
	nextSeq  uint64     // sequence the next Append will use
	walBytes int64      // framed bytes across live segments
	broken   error      // sticky append failure: the tail is suspect
	snapSeq  uint64     // newest valid snapshot's seq (0 = none/initial)
	hasSnap  bool
	tornOpen bool  // Open found (and truncated) an invalid WAL suffix
	dropped  int64 // bytes that truncation discarded at Open
	gcStats  GroupCommitStats

	ckptMu sync.Mutex // serializes whole Checkpoint calls

	// Group-commit machinery (groupcommit.go): appends queue under gcMu
	// and a single committer goroutine batches them into shared fsyncs.
	gcMu       sync.Mutex
	gcCond     *sync.Cond
	gcQueue    []appendReq
	gcClosing  bool
	gcWG       sync.WaitGroup
	gcMaxBatch int
	gcMaxDelay time.Duration
}

// Open opens (creating if needed) a data directory. An exclusive flock
// on <dir>/LOCK fences out concurrent processes — a second opener would
// interleave appends into the shared tail, and its torn-tail recovery
// could truncate records the first process already acknowledged. The
// kernel releases the lock when the holder dies, so a SIGKILLed server
// never wedges the directory. The WAL is then scanned to find its valid
// end; an invalid suffix (torn tail from a crash) is truncated so new
// appends land after the last good record.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, lock: lock, nextSeq: 1}
	for _, o := range opts {
		o(s)
	}
	if sn, err := latestSnapshot(dir); err == nil {
		s.snapSeq, s.hasSnap = sn.Manifest.Seq, true
	} else if !errors.Is(err, ErrNoSnapshot) {
		lock.Close()
		return nil, err
	}
	if err := s.recoverWAL(); err != nil {
		lock.Close()
		return nil, err
	}
	if s.hasSnap && s.nextSeq <= s.snapSeq {
		// Double-failure corner: WAL truncation landed behind the
		// snapshot (records the snapshot already absorbed were the only
		// readable ones). Appending there would collide with absorbed
		// sequence numbers and be skipped on replay, so restart the log
		// cleanly right after the snapshot.
		segs, err := listSegments(s.dir)
		if err != nil {
			return nil, err
		}
		if s.seg != nil {
			s.seg.Close()
			s.seg = nil
		}
		if err := s.dropSegments(segs); err != nil {
			return nil, err
		}
		s.nextSeq = s.snapSeq + 1
		s.walBytes = 0
	}
	s.startCommitter()
	return s, nil
}

// lockDir takes the exclusive, non-blocking advisory lock on <dir>/LOCK.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process (flock: %w)", dir, err)
	}
	return f, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// recoverWAL scans the segments, truncates any invalid suffix, removes
// unreachable later segments, and positions the tail for appending.
func (s *Store) recoverWAL() error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[0]
	}
	for i, start := range segs {
		if start != next {
			// Gap or overlap between segments: records from here on are
			// not contiguous with the log; drop them.
			s.tornOpen = true
			if err := s.dropSegments(segs[i:]); err != nil {
				return err
			}
			return s.setTailFor(segs[:i], next)
		}
		path := filepath.Join(s.dir, walSegName(start))
		valid, nseq, dirty, err := segScan(path, start, nil)
		if err != nil {
			return err
		}
		s.walBytes += valid
		next = nseq
		if dirty {
			// Invalid suffix: truncate it, and drop any later segments —
			// their records are unreachable across the sequence gap.
			s.tornOpen = true
			if fi, err := os.Stat(path); err == nil {
				s.dropped += fi.Size() - valid
			}
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("store: truncate %s: %w", path, err)
			}
			if err := syncDir(s.dir); err != nil {
				return err
			}
			if i+1 < len(segs) {
				if err := s.dropSegments(segs[i+1:]); err != nil {
					return err
				}
			}
			return s.setTail(start, next)
		}
	}
	return s.setTailFor(segs, next)
}

// setTailFor opens the last surviving segment for appending, or (with
// none) just records the next sequence so the first append creates one.
func (s *Store) setTailFor(segs []uint64, next uint64) error {
	if len(segs) > 0 {
		return s.setTail(segs[len(segs)-1], next)
	}
	s.nextSeq = next
	return nil
}

// dropSegments deletes segments that recovery decided are unreachable.
func (s *Store) dropSegments(starts []uint64) error {
	for _, st := range starts {
		p := filepath.Join(s.dir, walSegName(st))
		if fi, err := os.Stat(p); err == nil {
			s.dropped += fi.Size()
		}
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("store: remove %s: %w", p, err)
		}
	}
	return syncDir(s.dir)
}

// setTail opens the segment starting at segStart for appending records
// from nextSeq on.
func (s *Store) setTail(segStart, nextSeq uint64) error {
	path := filepath.Join(s.dir, walSegName(segStart))
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: open wal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: seek wal tail: %w", err)
	}
	s.seg, s.segStart, s.nextSeq = f, segStart, nextSeq
	return nil
}

// newSegmentLocked starts a fresh tail segment at nextSeq.
func (s *Store) newSegmentLocked() error {
	if s.seg != nil {
		if err := s.seg.Close(); err != nil {
			return fmt.Errorf("store: close wal segment: %w", err)
		}
		s.seg = nil
	}
	path := filepath.Join(s.dir, walSegName(s.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create wal segment: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.seg, s.segStart = f, s.nextSeq
	return nil
}

// ReplayStats describes one Replay pass.
type ReplayStats struct {
	// Records is the number of records delivered to the callback.
	Records int
	// LastSeq is the last delivered sequence (fromSeq if none).
	LastSeq uint64
	// Torn reports that the log ended in an invalid record (torn tail,
	// flipped CRC, duplicate or gap) that was dropped; replay stopped
	// cleanly at the last good record.
	Torn bool
}

// Replay streams every durable record with sequence > fromSeq, in
// order, to fn. Replay never delivers a record twice, out of order, or
// partially; it stops cleanly at the first invalid record. An fn error
// aborts the replay and is returned as-is.
func (s *Store) Replay(fromSeq uint64, fn func(seq uint64, payload []byte) error) (ReplayStats, error) {
	st := ReplayStats{LastSeq: fromSeq}
	segs, err := listSegments(s.dir)
	if err != nil {
		return st, err
	}
	next := uint64(0)
	for _, start := range segs {
		if next == 0 {
			if start > fromSeq+1 {
				// Records (fromSeq, start) are missing: applying later
				// ones would skip part of the history. Stop cleanly.
				st.Torn = true
				return st, nil
			}
			next = start
		} else if start != next {
			st.Torn = true
			return st, nil
		}
		path := filepath.Join(s.dir, walSegName(start))
		var ferr error
		_, nseq, dirty, err := segScan(path, start, func(seq uint64, payload []byte) error {
			if seq <= fromSeq {
				return nil // covered by the snapshot
			}
			if err := fn(seq, payload); err != nil {
				ferr = err
				return err
			}
			st.Records++
			st.LastSeq = seq
			return nil
		})
		if ferr != nil {
			return st, ferr
		}
		if err != nil {
			return st, err
		}
		if dirty {
			st.Torn = true
			return st, nil
		}
		next = nseq
	}
	return st, nil
}

// Checkpoint writes a snapshot covering WAL sequence m.Seq (the files
// produced by the callbacks must reflect exactly the state after
// applying records 1..m.Seq), rotates the WAL, and garbage-collects
// snapshots and segments the new snapshot makes redundant. Returns the
// snapshot's total bytes.
func (s *Store) Checkpoint(m Manifest, files map[string]func(io.Writer) error) (int64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	prev, hadPrev := s.snapSeq, s.hasSnap
	s.mu.Unlock()
	if hadPrev && m.Seq < prev {
		return 0, fmt.Errorf("store: checkpoint at seq %d behind existing snapshot %d", m.Seq, prev)
	}
	if hadPrev && m.Seq == prev {
		return 0, ErrSnapshotCurrent // nothing new since the last checkpoint
	}
	total, err := writeSnapshot(s.dir, m, files)
	if err != nil {
		return 0, err
	}

	// Publish, then rotate so future appends land in a segment the GC
	// below can keep, then drop segments and snapshots the new snapshot
	// made redundant.
	s.mu.Lock()
	s.snapSeq, s.hasSnap = m.Seq, true
	if s.broken == nil && s.seg != nil && s.segStart < s.nextSeq {
		// Rotate only a tail that holds records; an empty tail (from a
		// previous rotation with no appends since) is already the
		// segment a fresh checkpoint would create.
		if err := s.newSegmentLocked(); err != nil {
			s.mu.Unlock()
			return total, err
		}
	}
	s.mu.Unlock()
	if err := s.gc(m.Seq); err != nil {
		return total, err
	}
	return total, nil
}

// gc removes snapshots older than the one at seq and WAL segments whose
// records are all <= seq. Failures are returned but the snapshot that
// triggered the GC is already durable, so callers may treat them as
// warnings.
func (s *Store) gc(seq uint64) error {
	// Every older snapshot goes, not just the immediately previous one:
	// a crash between a snapshot's rename and its GC pass leaves an
	// orphan that only a sweep like this reclaims. Stray .tmp
	// directories from interrupted checkpoints go the same way.
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: read dir: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if old, ok := parseSnapDirName(e.Name()); ok && old < seq {
			if err := os.RemoveAll(filepath.Join(s.dir, e.Name())); err != nil {
				return fmt.Errorf("store: gc %s: %w", e.Name(), err)
			}
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.RemoveAll(filepath.Join(s.dir, e.Name()))
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	var reclaimed int64
	for i, start := range segs {
		// Segment i spans [start, next_start); it is redundant iff every
		// record it can hold is <= seq and it is not the open tail.
		if start == s.segStart && s.seg != nil {
			continue
		}
		end := s.nextSeq // records strictly below nextSeq exist
		if i+1 < len(segs) {
			end = segs[i+1]
		}
		if end <= seq+1 {
			p := filepath.Join(s.dir, walSegName(start))
			if fi, err := os.Stat(p); err == nil {
				reclaimed += fi.Size()
			}
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("store: gc %s: %w", p, err)
			}
		}
	}
	s.walBytes -= reclaimed
	if s.walBytes < 0 {
		s.walBytes = 0
	}
	return syncDir(s.dir)
}

// Snapshot returns the newest valid snapshot, or ErrNoSnapshot.
func (s *Store) Snapshot() (*Snapshot, error) {
	return latestSnapshot(s.dir)
}

// Stats describes the store for monitoring surfaces.
type Stats struct {
	// LastSeq is the last appended (durable) WAL sequence; 0 before the
	// first append.
	LastSeq uint64
	// SnapshotSeq is the newest snapshot's sequence (0 with HasSnapshot
	// false when none exists).
	SnapshotSeq uint64
	// HasSnapshot reports whether any snapshot exists.
	HasSnapshot bool
	// WALBytes is the framed size of the live WAL segments.
	WALBytes int64
	// TornOnOpen reports that Open found an invalid WAL suffix — the
	// signature of a crash mid-append or bit rot — and truncated it to
	// the last good record; DroppedBytes is how much it discarded.
	TornOnOpen   bool
	DroppedBytes int64
	// Broken reports a failed append: the WAL tail can no longer be
	// trusted, every further append is refused, and the process needs a
	// restart (which re-truncates to the last good record).
	Broken bool
	// GroupCommit describes the committer's batching: how many fsyncs
	// covered how many records, the largest batch, and a batch-size
	// histogram.
	GroupCommit GroupCommitStats
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		LastSeq:      s.nextSeq - 1,
		SnapshotSeq:  s.snapSeq,
		HasSnapshot:  s.hasSnap,
		WALBytes:     s.walBytes,
		TornOnOpen:   s.tornOpen,
		DroppedBytes: s.dropped,
		Broken:       s.broken != nil,
		GroupCommit:  s.gcStats,
	}
}

// Close flushes the group-commit queue (acknowledged records are
// already durable — every commit fsyncs before acking — so this only
// resolves stragglers), then releases the WAL tail and the directory
// lock. Appends racing Close resolve with ErrClosed.
func (s *Store) Close() error {
	s.stopCommitter()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.seg != nil {
		err = s.seg.Close()
		s.seg = nil
	}
	if s.lock != nil {
		if lerr := s.lock.Close(); err == nil {
			err = lerr
		}
		s.lock = nil
	}
	return err
}
