package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The write-ahead log is a sequence of segment files named
// wal-<firstseq>.log. Each segment holds length-prefixed, CRC-framed
// records with strictly consecutive sequence numbers; appends fsync
// before returning (a record is durable exactly when Append returns).
//
// Record framing (all integers big-endian):
//
//	[4] payload length N
//	[8] sequence number
//	[N] payload
//	[4] CRC-32C over the previous 12+N bytes
//
// Replay applies records in sequence order and stops cleanly at the
// first invalid record: a torn tail (partial write at the moment of a
// crash), a flipped CRC, a non-consecutive sequence number (duplicate
// or gap), or an oversized length all end the replay at the last good
// record — corruption is never applied and never panics. Opening the
// log for appending truncates the invalid suffix so new records land
// directly after the last good one.

const (
	walHeaderLen  = 12
	walTrailerLen = 4
	// MaxWALRecord bounds one record's payload; larger lengths are
	// treated as corruption on replay and rejected on append.
	MaxWALRecord = 64 << 20

	walPrefix = "wal-"
	walSuffix = ".log"
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walSegName names the segment whose first record is seq.
func walSegName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", walPrefix, seq, walSuffix)
}

// parseSegName extracts the first-record sequence from a segment name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	mid := name[len(walPrefix) : len(name)-len(walSuffix)]
	if len(mid) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the dir's WAL segments sorted by first sequence.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir %s: %w", dir, err)
	}
	var segs []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// frameRecord appends one framed record to buf and returns the
// extended slice; group commit uses it to pack a whole batch into a
// single write.
func frameRecord(buf []byte, seq uint64, payload []byte) []byte {
	start := len(buf)
	var hdr [walHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], seq)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf[start:], walCRC)
	var tr [walTrailerLen]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	return append(buf, tr[:]...)
}

// appendRecord frames and writes one record (no sync).
func appendRecord(w io.Writer, seq uint64, payload []byte) error {
	buf := frameRecord(make([]byte, 0, walHeaderLen+len(payload)+walTrailerLen), seq, payload)
	_, err := w.Write(buf)
	return err
}

// segScan reads one segment's records starting at expected sequence
// `next`, invoking fn for each valid record. It returns the number of
// bytes of valid prefix, the next expected sequence, whether the scan
// ended on invalid data (torn/corrupt suffix), and fn's error if any.
// fn may be nil (pure validation scan).
func segScan(path string, next uint64, fn func(seq uint64, payload []byte) error) (validBytes int64, nextSeq uint64, dirty bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, next, false, fmt.Errorf("store: open %s: %w", path, err)
	}
	defer f.Close()

	var off int64
	header := make([]byte, walHeaderLen)
	var body []byte
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			// io.EOF: clean end. ErrUnexpectedEOF: torn header.
			return off, next, err != io.EOF, nil
		}
		n := binary.BigEndian.Uint32(header[0:4])
		seq := binary.BigEndian.Uint64(header[4:12])
		if n > MaxWALRecord || seq != next {
			// Oversized length, duplicate, or gap: stop before it. A
			// duplicate in particular must never be applied twice.
			return off, next, true, nil
		}
		if cap(body) < int(n)+walTrailerLen {
			body = make([]byte, int(n)+walTrailerLen)
		}
		body = body[:int(n)+walTrailerLen]
		if _, err := io.ReadFull(f, body); err != nil {
			return off, next, true, nil // torn body or trailer
		}
		crc := crc32.Checksum(header, walCRC)
		crc = crc32.Update(crc, walCRC, body[:n])
		if crc != binary.BigEndian.Uint32(body[n:]) {
			return off, next, true, nil // flipped bits
		}
		if fn != nil {
			if err := fn(seq, body[:n]); err != nil {
				return off, next, false, err
			}
		}
		off += int64(walHeaderLen + int(n) + walTrailerLen)
		next = seq + 1
	}
}
