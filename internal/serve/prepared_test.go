package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"kbtable"
)

// postPrepare POSTs /prepare and decodes the reply (nil on non-200).
func postPrepare(t *testing.T, url string, req PrepareRequest) (*http.Response, *PrepareResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/prepare", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var pr PrepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return resp, &pr
}

// TestCacheKeyInjective pins the non-forgeable key encoding: under the
// old plain "|" join, a query containing the separator re-parsed as a
// different (query, algo) split — cacheKey("a|b","c",...) and
// cacheKey("a","b|c",...) were the SAME string — so two different
// request shapes shared one result entry. The length-prefixed encoding
// keeps every field boundary explicit.
func TestCacheKeyInjective(t *testing.T) {
	pairs := [][2]string{
		{cacheKey("a|b", "c", 1, 2, 3), cacheKey("a", "b|c", 1, 2, 3)},
		{cacheKey("x|patternenum", "patternenum", 10, 3, 50), cacheKey("x", "patternenum|patternenum", 10, 3, 50)},
		{cacheKey("q", "patternenum", 10, 3, 50), cacheKey("q", "patternenum", 1, 3, 50)},
		{cacheKey("", "patternenum", 1, 1, 1), cacheKey("patternenum", "", 1, 1, 1)},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d: distinct inputs encode to the same key %q", i, p[0])
		}
	}
	// Identical inputs still share an entry.
	if cacheKey("software", "patternenum", 5, 3, 50) != cacheKey("software", "patternenum", 5, 3, 50) {
		t.Error("identical inputs must encode identically")
	}
}

// TestCacheKeyNoForgery is the behavioral half: the adversarial query
// from the key-forgery report and the innocent request it aimed to
// impersonate must never serve each other's bytes.
func TestCacheKeyNoForgery(t *testing.T) {
	_, ts := newTestServer(t)
	_, adv := postSearch(t, ts.URL, SearchRequest{Query: "x|patternenum"})
	if adv == nil {
		t.Fatal("adversarial query rejected")
	}
	resp, innocent := postSearch(t, ts.URL, SearchRequest{Query: "x", Algorithm: "patternenum"})
	if innocent == nil {
		t.Fatalf("innocent query rejected: %v", resp.Status)
	}
	if innocent.Cached {
		t.Fatalf("innocent request served from the adversarial query's cache entry: %+v", innocent)
	}
	if innocent.Query == adv.Query {
		t.Fatalf("both requests normalized onto one query %q", adv.Query)
	}
}

// TestPunctuationSharesCacheEntry pins the tokenized normalization fix:
// the engine drops punctuation during keyword resolution, so "foo," and
// "foo" produce byte-identical answers and must occupy ONE cache entry
// instead of fragmenting the result cache.
func TestPunctuationSharesCacheEntry(t *testing.T) {
	srv, ts := newTestServer(t)
	_, first := postSearch(t, ts.URL, SearchRequest{Query: "database, software; company (revenue)!"})
	if first == nil || first.Cached {
		t.Fatalf("first spelling: %+v", first)
	}
	if first.Query != "database software company revenue" {
		t.Fatalf("normalized query = %q, want the engine's token form", first.Query)
	}
	_, second := postSearch(t, ts.URL, SearchRequest{Query: "database software company revenue"})
	if second == nil || !second.Cached {
		t.Fatalf("punctuation-free spelling missed the shared entry: %+v", second)
	}
	if len(second.Answers) != len(first.Answers) {
		t.Fatalf("answers differ across spellings: %d vs %d", len(second.Answers), len(first.Answers))
	}
	if st := srv.cache.Stats(); st.Hits == 0 {
		t.Fatalf("no cache hit recorded: %+v", st)
	}
}

// TestAutoBiasValidation pins the 400 on invalid auto_bias. NaN and
// ±Inf cannot cross the JSON decoder (it rejects them earlier, also as
// 400), so the checkAutoBias unit cases cover them directly.
func TestAutoBiasValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postSearch(t, ts.URL, SearchRequest{Query: "software", Algorithm: "auto", AutoBias: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("auto_bias=-1: status %d, want 400", resp.StatusCode)
	}
	for _, b := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.001} {
		if checkAutoBias(b) == "" {
			t.Errorf("checkAutoBias(%v) accepted an invalid bias", b)
		}
	}
	for _, b := range []float64{0, 0.5, 1, 8} {
		if msg := checkAutoBias(b); msg != "" {
			t.Errorf("checkAutoBias(%v) rejected a valid bias: %s", b, msg)
		}
	}
	// A raw NaN in the body is malformed JSON: still a 400, never a 500.
	resp2, err := http.Post(ts.URL+"/search", "application/json",
		bytes.NewReader([]byte(`{"query":"software","algorithm":"auto","auto_bias":NaN}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN body: status %d, want 400", resp2.StatusCode)
	}
}

// TestPrepareAndExecute drives the full prepared-query flow: prepare,
// execute by handle, byte-identical answers vs a fresh search, and the
// request-shape validation around prepared_id.
func TestPrepareAndExecute(t *testing.T) {
	const query = "database software company revenue"
	_, ts := newTestServer(t)

	resp, pr := postPrepare(t, ts.URL, PrepareRequest{Query: query, K: 3, Algorithm: "auto"})
	if pr == nil {
		t.Fatalf("prepare failed: %v", resp.Status)
	}
	if pr.ID == "" || pr.Epoch != 0 || pr.Plan == nil || pr.Algorithm != "auto" {
		t.Fatalf("prepare response: %+v", pr)
	}

	_, fresh := postSearch(t, ts.URL, SearchRequest{Query: query, K: 3, Algorithm: "auto"})
	if fresh == nil || len(fresh.Answers) == 0 {
		t.Fatalf("fresh search: %+v", fresh)
	}

	for i := 0; i < 3; i++ {
		_, prep := postSearch(t, ts.URL, SearchRequest{PreparedID: pr.ID})
		if prep == nil {
			t.Fatalf("prepared execution %d failed", i)
		}
		if prep.PreparedID != pr.ID || prep.Cached || prep.Epoch != 0 {
			t.Fatalf("prepared response %d: %+v", i, prep)
		}
		if !reflect.DeepEqual(prep.Answers, fresh.Answers) {
			t.Fatalf("prepared answers diverge from fresh search:\nprepared: %+v\nfresh:    %+v", prep.Answers, fresh.Answers)
		}
		if prep.Plan == nil || prep.Plan.Algorithm != fresh.Plan.Algorithm {
			t.Fatalf("prepared plan %+v vs fresh %+v", prep.Plan, fresh.Plan)
		}
	}

	// prepared_id fixes the shape: combining it with a query is an error.
	respBad, _ := postSearch(t, ts.URL, SearchRequest{PreparedID: pr.ID, Query: "software"})
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("prepared_id+query: status %d, want 400", respBad.StatusCode)
	}
	// Unknown handles are Gone, not an internal error.
	respGone, _ := postSearch(t, ts.URL, SearchRequest{PreparedID: "p0-999"})
	if respGone.StatusCode != http.StatusGone {
		t.Fatalf("unknown prepared_id: status %d, want 410", respGone.StatusCode)
	}
	// Baseline has no prepare stage.
	respBase, _ := postPrepare(t, ts.URL, PrepareRequest{Query: query, Algorithm: "baseline"})
	if respBase.StatusCode != http.StatusBadRequest {
		t.Fatalf("baseline prepare: status %d, want 400", respBase.StatusCode)
	}
}

// TestPreparedExpiresOnUpdate pins handle invalidation: an epoch swap
// expires every outstanding handle (410 Gone), and re-preparing binds to
// the new epoch and sees the update.
func TestPreparedExpiresOnUpdate(t *testing.T) {
	_, ts := newTestServer(t)
	_, pr := postPrepare(t, ts.URL, PrepareRequest{Query: "postgres database", Algorithm: "patternenum"})
	if pr == nil {
		t.Fatal("prepare failed")
	}
	if _, got := postSearch(t, ts.URL, SearchRequest{PreparedID: pr.ID}); got == nil || len(got.Answers) != 0 {
		t.Fatalf("pre-update prepared execution: %+v", got)
	}

	var u kbtable.Update
	pg := u.AddEntity("Software", "Postgres")
	u.AddAttr(pg, "Genre", 1)
	if resp, ur := postUpdate(t, ts.URL, UpdateRequest{Ops: u.Ops}); ur == nil {
		t.Fatalf("update failed: %v", resp.Status)
	}

	resp, _ := postSearch(t, ts.URL, SearchRequest{PreparedID: pr.ID})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("expired handle: status %d, want 410", resp.StatusCode)
	}

	_, pr2 := postPrepare(t, ts.URL, PrepareRequest{Query: "postgres database", Algorithm: "patternenum"})
	if pr2 == nil || pr2.Epoch != 1 {
		t.Fatalf("re-prepare: %+v", pr2)
	}
	_, got := postSearch(t, ts.URL, SearchRequest{PreparedID: pr2.ID})
	if got == nil || len(got.Answers) == 0 || got.Epoch != 1 {
		t.Fatalf("post-update prepared execution must see the new entity: %+v", got)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	p := h.Planner.Prepared
	if p.Expired != 1 || p.Live != 1 || p.Prepares != 2 || p.Searches != 2 {
		t.Fatalf("prepared health: %+v", p)
	}
	if h.Planner.PlanCache == nil {
		t.Fatal("healthz omits the plan cache on a real engine")
	}
}

// TestAdaptiveBiasServer exercises the feedback loop end to end: with
// AdaptiveBias on, executed searches feed the accumulator, /healthz
// exposes the learned state, and auto answers stay byte-identical to
// explicit requests at the learned bias.
func TestAdaptiveBiasServer(t *testing.T) {
	srv := New(Config{Engine: fig1Engine(t), D: 3, AdaptiveBias: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const query = "database software company revenue"

	// Feed both algorithms so the accumulator can learn an exchange rate.
	for i := 0; i < 4; i++ {
		for _, algo := range []string{"patternenum", "linearenum"} {
			if resp, sr := postSearch(t, ts.URL, SearchRequest{Query: query, K: 2 + i, Algorithm: algo}); sr == nil {
				t.Fatalf("%s: %v", algo, resp.Status)
			}
		}
	}
	bs := srv.abias.Stats()
	if bs.PEObservations == 0 || bs.LEObservations == 0 {
		t.Fatalf("executions were not observed: %+v", bs)
	}
	if bs.Effective <= 0 {
		t.Fatalf("learned bias must stay positive: %+v", bs)
	}

	// The learned bias steers only the choice: an auto request answers
	// byte-identically to the explicit algorithm it resolves to.
	_, auto := postSearch(t, ts.URL, SearchRequest{Query: query, K: 7, Algorithm: "auto"})
	if auto == nil || auto.Plan == nil || !auto.Plan.Auto {
		t.Fatalf("auto response: %+v", auto)
	}
	_, explicit := postSearch(t, ts.URL, SearchRequest{Query: query, K: 7, Algorithm: auto.Algorithm})
	if explicit == nil || !reflect.DeepEqual(auto.Answers, explicit.Answers) {
		t.Fatalf("auto at learned bias diverges from explicit %s", auto.Algorithm)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	ab := h.Planner.AdaptiveBias
	if ab == nil || ab.Effective <= 0 || ab.PEObservations < bs.PEObservations || ab.LEObservations < bs.LEObservations {
		t.Fatalf("healthz adaptive bias: %+v (earlier snapshot %+v)", ab, bs)
	}
}

// TestPreparedConcurrentWithUpdates hammers prepared handles from many
// goroutines while updates swap epochs underneath — the -race guard for
// the registry and for shared Prepared executions. Every outcome must be
// a clean 200, 409 (prepare lost the race to a swap) or 410 (handle
// expired); anything else is a correctness failure.
func TestPreparedConcurrentWithUpdates(t *testing.T) {
	srv := New(Config{Engine: fig1Engine(t), D: 3, AdaptiveBias: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	stop := make(chan struct{})

	// Updaters: each swap expires all handles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			var u kbtable.Update
			e := u.AddEntity("Software", fmt.Sprintf("DB-%d", i))
			u.AddAttr(e, "Genre", 1)
			if resp, ur := postUpdate(t, ts.URL, UpdateRequest{Ops: u.Ops}); ur == nil {
				errs <- fmt.Errorf("update %d: %v", i, resp.Status)
			}
		}
		close(stop)
	}()

	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var id string
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if id == "" || i%4 == 0 {
					body, _ := json.Marshal(PrepareRequest{Query: "database software", K: 3, Algorithm: "auto"})
					resp, err := http.Post(ts.URL+"/prepare", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode == http.StatusOK {
						var pr PrepareResponse
						if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
							errs <- err
						} else {
							id = pr.ID
						}
					} else if resp.StatusCode != http.StatusConflict {
						errs <- fmt.Errorf("prepare: unexpected status %d", resp.StatusCode)
					}
					resp.Body.Close()
					continue
				}
				body, _ := json.Marshal(SearchRequest{PreparedID: id})
				resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var sr SearchResponse
					if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
						errs <- err
					} else if sr.PreparedID != id {
						errs <- fmt.Errorf("prepared response for %q carries id %q", id, sr.PreparedID)
					}
				case http.StatusGone:
					id = "" // expired by a swap: re-prepare
				default:
					errs <- fmt.Errorf("prepared search: unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
