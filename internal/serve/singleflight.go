package serve

import (
	"context"
	"sync"
)

// Read coalescing: identical in-flight searches — same normalized cache
// key AND same pinned epoch — join one execution instead of each paying
// for it. The epoch is part of the flight key, so a request that loaded
// epoch N+1 never receives bytes computed on epoch N: coalescing
// preserves exactly the freshness guarantee an uncached execution gives.
//
// This is a minimal singleflight. The leader (first arrival) runs the
// search; followers block until the leader resolves and share its
// response. The flight is removed from the table BEFORE its done channel
// closes, so a request arriving after completion always starts a fresh
// flight — results are never served across epochs or re-served stale.

// flight is one in-progress shared execution.
type flight struct {
	done chan struct{}
	resp *SearchResponse // set before done closes; nil on error
	err  error
}

// flightGroup deduplicates concurrent executions by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do returns the shared result for key, executing fn exactly once per
// key among concurrent callers. The second return reports whether this
// caller was a follower (joined an existing flight). A follower whose
// own ctx expires stops waiting and returns the ctx error; the flight
// itself continues for the remaining callers.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*SearchResponse, error)) (*SearchResponse, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.resp, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.resp, f.err = fn()
	g.mu.Lock()
	delete(g.m, key) // remove before close: later arrivals start fresh
	g.mu.Unlock()
	close(f.done)
	return f.resp, false, f.err
}
