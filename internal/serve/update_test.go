package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"kbtable"
)

// fig1UniformEngine is fig1Engine with uniform PageRank, so update score
// effects stay local to the touched posting lists.
func fig1UniformEngine(t *testing.T) *kbtable.Engine {
	t.Helper()
	eng := fig1Engine(t)
	g := eng.Graph()
	uni, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3, UniformPageRank: true})
	if err != nil {
		t.Fatal(err)
	}
	return uni
}

func postUpdate(t *testing.T, url string, req UpdateRequest) (*http.Response, *UpdateResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var ur UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	return resp, &ur
}

func TestUpdateEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)

	// Before the update, "postgres" is unknown.
	_, sr := postSearch(t, ts.URL, SearchRequest{Query: "postgres database"})
	if len(sr.Answers) != 0 || sr.Epoch != 0 {
		t.Fatalf("pre-update: %+v", sr)
	}

	var u kbtable.Update
	pg := u.AddEntity("Software", "Postgres")
	u.AddAttr(pg, "Genre", 1) // Relational database
	resp, ur := postUpdate(t, ts.URL, UpdateRequest{Ops: u.Ops})
	if ur == nil {
		t.Fatalf("update failed: %v", resp.Status)
	}
	if ur.Epoch != 1 || len(ur.NewEntities) != 1 || ur.EntriesAdded == 0 {
		t.Fatalf("update response: %+v", ur)
	}
	if srv.Epoch() != 1 {
		t.Fatalf("published epoch = %d", srv.Epoch())
	}

	// The new entity answers; the response carries the new epoch.
	_, sr = postSearch(t, ts.URL, SearchRequest{Query: "postgres database"})
	if len(sr.Answers) == 0 || sr.Epoch != 1 {
		t.Fatalf("post-update: %+v", sr)
	}

	// Health reflects the swap.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Epoch != 1 || h.Updates != 1 || !h.Updatable {
		t.Fatalf("health: %+v", h)
	}
}

func TestUpdateEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for name, req := range map[string]UpdateRequest{
		"empty":       {},
		"unknown op":  {Ops: []kbtable.UpdateOp{{Op: "zap"}}},
		"dangling":    {Ops: []kbtable.UpdateOp{{Op: "remove_entity", Node: kbtable.Ref(4096)}}},
		"missing ref": {Ops: []kbtable.UpdateOp{{Op: "remove_entity"}}},
	} {
		resp, _ := postUpdate(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /update: status %d", resp.StatusCode)
	}
	// A failed update must not advance the epoch.
	_, sr := postSearch(t, ts.URL, SearchRequest{Query: "database"})
	if sr.Epoch != 0 {
		t.Fatalf("epoch advanced to %d after failed updates", sr.Epoch)
	}
}

func TestUpdateReadOnly(t *testing.T) {
	srv := New(Config{Engine: fig1Engine(t), D: 3, ReadOnly: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var u kbtable.Update
	u.AddEntity("Software", "Postgres")
	resp, _ := postUpdate(t, ts.URL, UpdateRequest{Ops: u.Ops})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("read-only server accepted update: %d", resp.StatusCode)
	}
}

// TestUpdateInvalidatesOnlyAffectedCacheEntries: after an update, cached
// queries whose words the update touched are recomputed on the new epoch,
// while unrelated cached queries keep serving (with their original epoch).
// Uniform-PR scoring keeps answer scores local to the touched postings,
// which is what makes word-precise retention sound.
func TestUpdateInvalidatesOnlyAffectedCacheEntries(t *testing.T) {
	srv := New(Config{Engine: fig1UniformEngine(t), D: 3})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Warm the cache with two disjoint queries.
	_, sr1 := postSearch(t, ts.URL, SearchRequest{Query: "founder person"})
	_, sr2 := postSearch(t, ts.URL, SearchRequest{Query: "publisher book"})
	if sr1.Cached || sr2.Cached {
		t.Fatal("first hits must not be cached")
	}

	// Update touches "founder" (adds a founder edge) but nothing near
	// "publisher".
	var u kbtable.Update
	ell := u.AddEntity("Person", "Larry Ellison")
	u.AddAttr(6 /* Oracle Corp */, "Founder", ell)
	_, ur := postUpdate(t, ts.URL, UpdateRequest{Ops: u.Ops})
	if ur == nil {
		t.Fatal("update failed")
	}
	if ur.InvalidatedCache != 1 {
		t.Fatalf("invalidated %d cache entries, want exactly 1", ur.InvalidatedCache)
	}

	// The unrelated query still serves from cache (epoch 0 result is
	// provably unchanged); the touched query was recomputed on epoch 1.
	_, sr2b := postSearch(t, ts.URL, SearchRequest{Query: "publisher book"})
	if !sr2b.Cached || sr2b.Epoch != 0 {
		t.Fatalf("unrelated query: cached=%v epoch=%d", sr2b.Cached, sr2b.Epoch)
	}
	_, sr1b := postSearch(t, ts.URL, SearchRequest{Query: "founder person"})
	if sr1b.Cached || sr1b.Epoch != 1 {
		t.Fatalf("touched query: cached=%v epoch=%d", sr1b.Cached, sr1b.Epoch)
	}
	if len(sr1b.Answers) == 0 {
		t.Fatal("founder query lost its answers")
	}
}

// TestUpdateFlushesCacheWhenPageRankMoves: under real PageRank scoring a
// structural update shifts scores globally, so no cached entry may
// survive — word precision would under-invalidate.
func TestUpdateFlushesCacheWhenPageRankMoves(t *testing.T) {
	_, ts := newTestServer(t) // fig1Engine scores with real PageRank

	_, sr1 := postSearch(t, ts.URL, SearchRequest{Query: "founder person"})
	_, sr2 := postSearch(t, ts.URL, SearchRequest{Query: "publisher book"})
	if sr1.Cached || sr2.Cached {
		t.Fatal("first hits must not be cached")
	}

	var u kbtable.Update
	ell := u.AddEntity("Person", "Larry Ellison")
	u.AddAttr(6 /* Oracle Corp */, "Founder", ell)
	_, ur := postUpdate(t, ts.URL, UpdateRequest{Ops: u.Ops})
	if ur == nil {
		t.Fatal("update failed")
	}
	if ur.InvalidatedCache != 2 {
		t.Fatalf("invalidated %d cache entries, want all 2 (PageRank moved)", ur.InvalidatedCache)
	}
	// Both queries recompute on the new epoch.
	for _, q := range []string{"founder person", "publisher book"} {
		_, sr := postSearch(t, ts.URL, SearchRequest{Query: q})
		if sr.Cached || sr.Epoch != 1 {
			t.Fatalf("%q: cached=%v epoch=%d after global score shift", q, sr.Cached, sr.Epoch)
		}
	}

	// A pure text edit cannot move PageRank: word precision applies again.
	// The edit happens in the Oracle corner of the graph, whose d-1
	// backward neighborhood (Oracle DB) shares no postings with
	// "publisher book".
	_, sr2b := postSearch(t, ts.URL, SearchRequest{Query: "publisher book"})
	if !sr2b.Cached {
		t.Fatal("warm-up for text-edit phase not cached")
	}
	var u2 kbtable.Update
	u2.SetText(5 /* O-R database */, "Object relational model")
	_, ur2 := postUpdate(t, ts.URL, UpdateRequest{Ops: u2.Ops})
	if ur2 == nil {
		t.Fatal("text update failed")
	}
	_, sr2c := postSearch(t, ts.URL, SearchRequest{Query: "publisher book"})
	if !sr2c.Cached || sr2c.Epoch != 1 {
		t.Fatalf("text-only update flushed an unrelated entry: cached=%v epoch=%d", sr2c.Cached, sr2c.Epoch)
	}
}
