package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"kbtable"
)

// newHTTPServer wraps a configured Server in an httptest listener.
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// stubSearcher is a bare Searcher (no planner surface): it records the
// algorithm it was asked for and answers nothing.
type stubSearcher struct {
	got kbtable.Algorithm
}

func (s *stubSearcher) SearchContext(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, error) {
	s.got = opts.Algorithm
	return nil, nil
}

// TestSearchAutoOnWire: "auto" requests succeed, report the resolved
// algorithm (never "auto"), and carry a plan with the planner's rationale
// and per-stage timings.
func TestSearchAutoOnWire(t *testing.T) {
	_, ts := newTestServer(t)
	resp, sr := postSearch(t, ts.URL, SearchRequest{Query: "database software company revenue", Algorithm: "auto"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if sr.Algorithm != "patternenum" && sr.Algorithm != "linearenum" {
		t.Fatalf("auto resolved to %q on the wire", sr.Algorithm)
	}
	if sr.Plan == nil {
		t.Fatal("auto response has no plan")
	}
	if !sr.Plan.Auto || sr.Plan.Reason == "" {
		t.Errorf("plan = %+v, want auto with a reason", sr.Plan)
	}
	if sr.Plan.Algorithm != sr.Algorithm {
		t.Errorf("plan algorithm %q != response algorithm %q", sr.Plan.Algorithm, sr.Algorithm)
	}
	if sr.Plan.CandidateRoots < 0 || sr.Plan.PatternSpace <= 0 || sr.Plan.Frontier <= 0 {
		t.Errorf("plan statistics missing: %+v", sr.Plan)
	}
	if len(sr.Answers) == 0 {
		t.Error("auto search returned no answers")
	}
}

// TestExplicitRequestsCarryPlan: plan observability is not auto-only —
// explicit algorithm requests report their stage timings too, with
// Auto=false.
func TestExplicitRequestsCarryPlan(t *testing.T) {
	_, ts := newTestServer(t)
	_, sr := postSearch(t, ts.URL, SearchRequest{Query: "software company", Algorithm: "le"})
	if sr == nil || sr.Plan == nil {
		t.Fatal("explicit request has no plan")
	}
	if sr.Plan.Auto {
		t.Error("explicit request marked auto")
	}
	if sr.Plan.Algorithm != "linearenum" {
		t.Errorf("plan algorithm = %q", sr.Plan.Algorithm)
	}
}

// TestAutoSharesCacheWithExplicit pins the resolved-algorithm cache
// keying: an "auto" request that resolves to algorithm X and an explicit
// X request occupy ONE cache entry, in both request orders.
func TestAutoSharesCacheWithExplicit(t *testing.T) {
	_, ts := newTestServer(t)
	q := "database software company revenue"

	// auto first → explicit hit.
	_, first := postSearch(t, ts.URL, SearchRequest{Query: q, Algorithm: "auto"})
	if first.Cached {
		t.Fatal("first request cached")
	}
	_, second := postSearch(t, ts.URL, SearchRequest{Query: q, Algorithm: first.Algorithm})
	if !second.Cached {
		t.Errorf("explicit %q after auto missed the cache", first.Algorithm)
	}
	if !reflect.DeepEqual(first.Answers, second.Answers) {
		t.Error("cached answers differ from auto answers")
	}
	// The explicit request did not ask the planner, even though the entry
	// was populated by one that did: its plan must not claim auto.
	if second.Plan == nil || second.Plan.Auto || second.Plan.Reason != "" {
		t.Errorf("explicit hit on auto-populated entry carries plan %+v, want auto=false without reason", second.Plan)
	}

	// explicit first → auto hit (different query to dodge the warm entry).
	q2 := "company revenue"
	_, e1 := postSearch(t, ts.URL, SearchRequest{Query: q2, Algorithm: "pe"})
	if e1.Cached {
		t.Fatal("first explicit request cached")
	}
	_, a2 := postSearch(t, ts.URL, SearchRequest{Query: q2, Algorithm: "auto"})
	if a2.Algorithm == "patternenum" && !a2.Cached {
		t.Error("auto resolving to patternenum missed the explicit entry")
	}
	if a2.Cached {
		if a2.Plan == nil || !a2.Plan.Auto || a2.Plan.Reason == "" {
			t.Errorf("cached auto hit should reflect this request's planner decision, plan = %+v", a2.Plan)
		}
		// The hit overlays this request's probe statistics, so hit and
		// miss responses agree (the explicit-PE entry's own plan had
		// candidate_roots -1 and no pattern space).
		if a2.Plan.CandidateRoots < 0 || a2.Plan.PatternSpace <= 0 || a2.Plan.Frontier <= 0 {
			t.Errorf("cached auto hit missing probe statistics: %+v", a2.Plan)
		}
	}
}

// TestAutoBiasOnWire: the auto_bias request field steers the planner
// (tiny bias forces linearenum) without changing the answers.
func TestAutoBiasOnWire(t *testing.T) {
	_, ts := newTestServer(t)
	q := "database software company revenue"
	_, forced := postSearch(t, ts.URL, SearchRequest{Query: q, Algorithm: "auto", AutoBias: 1e-12})
	if forced.Algorithm != "linearenum" {
		t.Fatalf("bias 1e-12 resolved to %q, want linearenum", forced.Algorithm)
	}
	_, def := postSearch(t, ts.URL, SearchRequest{Query: q, Algorithm: "auto"})
	if !reflect.DeepEqual(forced.Answers, def.Answers) {
		t.Error("auto_bias changed the answers, not just the plan")
	}
}

// TestCacheKeyNormalization pins the normalization satellite: requests
// that differ only in defaulted fields or query spelling share an entry.
func TestCacheKeyNormalization(t *testing.T) {
	_, ts := newTestServer(t)

	// k omitted (0) vs the default it resolves to (10).
	_, r1 := postSearch(t, ts.URL, SearchRequest{Query: "software company"})
	if r1.Cached {
		t.Fatal("first request cached")
	}
	if r1.K != 10 {
		t.Fatalf("k defaulted to %d, want 10", r1.K)
	}
	_, r2 := postSearch(t, ts.URL, SearchRequest{Query: "software company", K: 10})
	if !r2.Cached {
		t.Error(`{"k":0} and {"k":10} occupied separate cache entries`)
	}

	// Whitespace and case folding.
	_, r3 := postSearch(t, ts.URL, SearchRequest{Query: "  Software\t COMPANY ", K: 10})
	if !r3.Cached {
		t.Error("whitespace/case variant occupied a separate cache entry")
	}

	// Defaulted d and max_rows.
	_, r4 := postSearch(t, ts.URL, SearchRequest{Query: "software company", D: 3, MaxRows: 50})
	if !r4.Cached {
		t.Error("explicit defaults occupied a separate cache entry")
	}
}

// TestHealthzPlannerCounters: /healthz aggregates auto traffic and the
// planner's decisions.
func TestHealthzPlannerCounters(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		postSearch(t, ts.URL, SearchRequest{Query: "software company", Algorithm: "auto"})
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Planner.AutoRequests != 3 {
		t.Errorf("auto_requests = %d, want 3", hr.Planner.AutoRequests)
	}
	if hr.Planner.ChosePatternEnum+hr.Planner.ChoseLinearEnum != 3 {
		t.Errorf("planner decisions %d + %d don't sum to 3",
			hr.Planner.ChosePatternEnum, hr.Planner.ChoseLinearEnum)
	}
}

// TestDefaultAlgorithmConfig: requests that omit "algorithm" use the
// configured default — here "auto", so the response names a resolved
// algorithm and the planner counters move.
func TestDefaultAlgorithmConfig(t *testing.T) {
	srv := New(Config{Engine: fig1Engine(t), D: 3, DefaultAlgorithm: "auto"})
	ts := newHTTPServer(t, srv)
	_, sr := postSearch(t, ts.URL, SearchRequest{Query: "software company"})
	if sr.Algorithm != "patternenum" && sr.Algorithm != "linearenum" {
		t.Fatalf("default-auto request resolved to %q", sr.Algorithm)
	}
	if sr.Plan == nil || !sr.Plan.Auto {
		t.Errorf("default-auto request should carry an auto plan, got %+v", sr.Plan)
	}
	if srv.autoRequests.Load() != 1 {
		t.Errorf("auto_requests = %d, want 1", srv.autoRequests.Load())
	}
}

// TestAutoWithoutPlanner: a bare Searcher engine (no Plan/SearchPlan)
// still serves "auto" requests — passed through to the engine, keyed
// under "auto", no plan attached.
func TestAutoWithoutPlanner(t *testing.T) {
	eng := &stubSearcher{}
	srv := New(Config{Engine: eng, D: 3})
	ts := newHTTPServer(t, srv)
	resp, sr := postSearch(t, ts.URL, SearchRequest{Query: "anything", Algorithm: "auto"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if sr.Algorithm != "auto" {
		t.Errorf("algorithm = %q, want auto (no planner to resolve it)", sr.Algorithm)
	}
	if sr.Plan != nil {
		t.Errorf("planless engine attached a plan: %+v", sr.Plan)
	}
	if eng.got != kbtable.Auto {
		t.Errorf("engine saw algorithm %v, want Auto", eng.got)
	}
}
