package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kbtable/internal/api"
)

// GET /metrics: Prometheus text exposition (version 0.0.4), hand-rolled
// so the server stays dependency-free. Latency is recorded in HDR-style
// fixed histograms — enough resolution that a scraper can recover
// p50/p99/p999 via the standard histogram_quantile estimate — and the
// WAL group-commit batch-size histogram is re-exposed from the store.

// latencyBounds are the histogram bucket upper bounds, in seconds:
// roughly exponential from 0.5ms to 10s, matching the engine's observed
// range from cache hits (~µs) to cold sharded queries.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numLatencyBuckets = len(latencyBounds) + 1 (the +Inf bucket).
const numLatencyBuckets = 15

// latencyHist is one concurrent-safe fixed-bucket latency histogram.
type latencyHist struct {
	counts [numLatencyBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Uint64
}

// observe records one duration.
func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
}

// write emits the histogram in Prometheus text form under name with one
// fixed label pair (empty label omits it).
func (h *latencyHist) write(b *bytes.Buffer, name, label, value string) {
	sel := ""
	if label != "" {
		sel = fmt.Sprintf("%s=%q,", label, value)
	}
	var cum uint64
	for i, bound := range latencyBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, sel, trimFloat(bound), cum)
	}
	cum += h.counts[len(latencyBounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sel, cum)
	tail := ""
	if label != "" {
		tail = fmt.Sprintf("{%s=%q}", label, value)
	}
	fmt.Fprintf(b, "%s_sum%s %g\n", name, tail, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(b, "%s_count%s %d\n", name, tail, h.count.Load())
}

// trimFloat renders a bucket bound without trailing zeros (0.5, 1, 2.5).
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// statusKey identifies one (handler, status code) request counter.
type statusKey struct {
	handler string
	code    int
}

// metrics aggregates the server's Prometheus-visible counters.
type metrics struct {
	search    latencyHist
	update    latencyHist
	statuses  sync.Map // statusKey -> *atomic.Uint64
	coalesced atomic.Uint64
}

// countStatus bumps the (handler, status code) request counter.
func (m *metrics) countStatus(handler string, code int) {
	key := statusKey{handler, code}
	v, ok := m.statuses.Load(key)
	if !ok {
		v, _ = m.statuses.LoadOrStore(key, &atomic.Uint64{})
	}
	v.(*atomic.Uint64).Add(1)
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with latency + status-code accounting.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	var hist *latencyHist
	switch name {
	case "search":
		hist = &s.metrics.search
	case "update":
		hist = &s.metrics.update
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		if hist != nil {
			hist.observe(time.Since(t0))
		}
		s.metrics.countStatus(name, rec.code)
	})
}

// handleMetrics renders GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	var b bytes.Buffer

	fmt.Fprintf(&b, "# HELP kbserve_requests_total Requests by handler and status code.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_requests_total counter\n")
	type statusRow struct {
		key statusKey
		n   uint64
	}
	var rows []statusRow
	s.metrics.statuses.Range(func(k, v any) bool {
		rows = append(rows, statusRow{k.(statusKey), v.(*atomic.Uint64).Load()})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key.handler != rows[j].key.handler {
			return rows[i].key.handler < rows[j].key.handler
		}
		return rows[i].key.code < rows[j].key.code
	})
	for _, row := range rows {
		fmt.Fprintf(&b, "kbserve_requests_total{handler=%q,code=\"%d\"} %d\n", row.key.handler, row.key.code, row.n)
	}

	fmt.Fprintf(&b, "# HELP kbserve_request_duration_seconds Request latency by operation.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_request_duration_seconds histogram\n")
	s.metrics.search.write(&b, "kbserve_request_duration_seconds", "op", "search")
	s.metrics.update.write(&b, "kbserve_request_duration_seconds", "op", "update")

	fmt.Fprintf(&b, "# HELP kbserve_searches_coalesced_total Searches that joined another identical in-flight execution.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_searches_coalesced_total counter\n")
	fmt.Fprintf(&b, "kbserve_searches_coalesced_total %d\n", s.metrics.coalesced.Load())

	if s.gate != nil {
		inFlight, queued := s.gate.depth()
		fmt.Fprintf(&b, "# HELP kbserve_admission_in_flight Searches currently executing.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_admission_in_flight gauge\n")
		fmt.Fprintf(&b, "kbserve_admission_in_flight %d\n", inFlight)
		fmt.Fprintf(&b, "# HELP kbserve_admission_queue_depth Searches waiting for an execution slot.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_admission_queue_depth gauge\n")
		fmt.Fprintf(&b, "kbserve_admission_queue_depth %d\n", queued)
		fmt.Fprintf(&b, "# HELP kbserve_admission_shed_total Requests rejected with 429, by reason.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_admission_shed_total counter\n")
		fmt.Fprintf(&b, "kbserve_admission_shed_total{reason=\"queue_full\"} %d\n", s.gate.shedFull.Load())
		fmt.Fprintf(&b, "kbserve_admission_shed_total{reason=\"queue_timeout\"} %d\n", s.gate.shedTimeout.Load())
	}

	cs := s.cache.Stats()
	fmt.Fprintf(&b, "# HELP kbserve_cache_hits_total Result-cache hits.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_cache_hits_total counter\n")
	fmt.Fprintf(&b, "kbserve_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(&b, "# HELP kbserve_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_cache_misses_total counter\n")
	fmt.Fprintf(&b, "kbserve_cache_misses_total %d\n", cs.Misses)

	fmt.Fprintf(&b, "# HELP kbserve_bound_pruned_total Enumeration units cut by the executor's top-k bound pushdown, across executed searches.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_bound_pruned_total counter\n")
	fmt.Fprintf(&b, "kbserve_bound_pruned_total %d\n", s.boundPruned.Load())

	if pcs, ok := s.cur.Load().eng.(planCacheStatser); ok {
		if ps := pcs.PlanCacheStats(); ps.Capacity > 0 {
			fmt.Fprintf(&b, "# HELP kbserve_plan_cache_hits_total Plan-cache hits (planner probes skipped).\n")
			fmt.Fprintf(&b, "# TYPE kbserve_plan_cache_hits_total counter\n")
			fmt.Fprintf(&b, "kbserve_plan_cache_hits_total %d\n", ps.Hits)
			fmt.Fprintf(&b, "# HELP kbserve_plan_cache_misses_total Plan-cache misses (planner probes executed).\n")
			fmt.Fprintf(&b, "# TYPE kbserve_plan_cache_misses_total counter\n")
			fmt.Fprintf(&b, "kbserve_plan_cache_misses_total %d\n", ps.Misses)
			fmt.Fprintf(&b, "# HELP kbserve_plan_cache_invalidated_total Plan-cache entries evicted by updates.\n")
			fmt.Fprintf(&b, "# TYPE kbserve_plan_cache_invalidated_total counter\n")
			fmt.Fprintf(&b, "kbserve_plan_cache_invalidated_total %d\n", ps.Invalidated)
			fmt.Fprintf(&b, "# HELP kbserve_plan_cache_size Plan-cache entries currently resident.\n")
			fmt.Fprintf(&b, "# TYPE kbserve_plan_cache_size gauge\n")
			fmt.Fprintf(&b, "kbserve_plan_cache_size %d\n", ps.Size)
		}
	}

	fmt.Fprintf(&b, "# HELP kbserve_prepared_total Prepared-query events: handles created, executions served, handles expired by epoch swaps.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_prepared_total counter\n")
	fmt.Fprintf(&b, "kbserve_prepared_total{event=\"prepare\"} %d\n", s.prepares.Load())
	fmt.Fprintf(&b, "kbserve_prepared_total{event=\"search\"} %d\n", s.preparedSearches.Load())
	fmt.Fprintf(&b, "kbserve_prepared_total{event=\"expired\"} %d\n", s.preparedExpired.Load())
	fmt.Fprintf(&b, "# HELP kbserve_prepared_live Prepared handles valid on the current epoch.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_prepared_live gauge\n")
	fmt.Fprintf(&b, "kbserve_prepared_live %d\n", s.preparedLive())

	if s.abias != nil {
		bs := s.abias.Stats()
		fmt.Fprintf(&b, "# HELP kbserve_planner_effective_bias Learned Auto-planner bias applied to auto requests without an explicit auto_bias.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_planner_effective_bias gauge\n")
		fmt.Fprintf(&b, "kbserve_planner_effective_bias %g\n", bs.Effective)
		fmt.Fprintf(&b, "# HELP kbserve_planner_bias_observations_total Executions folded into the adaptive bias, by algorithm.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_planner_bias_observations_total counter\n")
		fmt.Fprintf(&b, "kbserve_planner_bias_observations_total{algo=\"patternenum\"} %d\n", bs.PEObservations)
		fmt.Fprintf(&b, "kbserve_planner_bias_observations_total{algo=\"linearenum\"} %d\n", bs.LEObservations)
	}

	fmt.Fprintf(&b, "# HELP kbserve_epoch Currently published KB epoch.\n")
	fmt.Fprintf(&b, "# TYPE kbserve_epoch gauge\n")
	fmt.Fprintf(&b, "kbserve_epoch %d\n", s.cur.Load().epoch)

	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		fmt.Fprintf(&b, "# HELP kbserve_wal_seq Last durable WAL sequence number.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_wal_seq gauge\n")
		fmt.Fprintf(&b, "kbserve_wal_seq %d\n", ss.LastSeq)
		fmt.Fprintf(&b, "# HELP kbserve_wal_group_commit_batches_total WAL fsync batches committed.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_wal_group_commit_batches_total counter\n")
		fmt.Fprintf(&b, "kbserve_wal_group_commit_batches_total %d\n", ss.GroupCommitBatches)
		fmt.Fprintf(&b, "# HELP kbserve_wal_group_commit_records_total WAL records covered by group commits.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_wal_group_commit_records_total counter\n")
		fmt.Fprintf(&b, "kbserve_wal_group_commit_records_total %d\n", ss.GroupCommitRecords)
		fmt.Fprintf(&b, "# HELP kbserve_wal_group_commit_batch_size Records per fsync batch.\n")
		fmt.Fprintf(&b, "# TYPE kbserve_wal_group_commit_batch_size histogram\n")
		var cum uint64
		bound := 1
		for i := 0; i < len(ss.GroupCommitHist)-1; i++ {
			cum += ss.GroupCommitHist[i]
			fmt.Fprintf(&b, "kbserve_wal_group_commit_batch_size_bucket{le=\"%d\"} %d\n", bound, cum)
			bound *= 2
		}
		cum += ss.GroupCommitHist[len(ss.GroupCommitHist)-1]
		fmt.Fprintf(&b, "kbserve_wal_group_commit_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(&b, "kbserve_wal_group_commit_batch_size_sum %d\n", ss.GroupCommitRecords)
		fmt.Fprintf(&b, "kbserve_wal_group_commit_batch_size_count %d\n", ss.GroupCommitBatches)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}
