package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kbtable"
)

// demoEngine builds a small engine over the Figure 1 knowledge base.
func demoEngine(t *testing.T, shards int) *kbtable.Engine {
	t.Helper()
	b := kbtable.NewBuilder()
	sql := b.Entity("Software", "SQL Server")
	ms := b.Entity("Company", "Microsoft")
	or := b.Entity("Company", "Oracle Corp")
	odb := b.Entity("Software", "Oracle DB")
	b.Attr(sql, "Developer", ms)
	b.Attr(odb, "Developer", or)
	b.TextAttr(ms, "Revenue", "US$ 77 billion")
	b.TextAttr(or, "Revenue", "US$ 37 billion")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kbtable.NewEngine(g, kbtable.EngineOptions{D: 3, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// post round-trips a JSON request against a handler.
func postJSON(t *testing.T, h http.Handler, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s response: %v (%s)", path, err, w.Body.String())
		}
	}
	return w
}

func getHealth(t *testing.T, h http.Handler) HealthResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var hr HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	return hr
}

func addSoftwareOp(name string) map[string]any {
	return map[string]any{"ops": []map[string]any{
		{"op": "add_entity", "type": "Software", "text": name},
		{"op": "add_attr", "src": -1, "attr": "Developer", "dst": 1},
	}}
}

// TestServeDurableUpdateAndRecovery drives a durable server through
// updates, then "crashes" it (drops it on the floor) and recovers a
// second server from the data directory: answers must match, and the
// healthz durability block must account for the WAL.
func TestServeDurableUpdateAndRecovery(t *testing.T) {
	dir := t.TempDir()
	eng := demoEngine(t, 0)
	st, err := kbtable.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Engine: eng, D: 3, Store: st, CheckpointEvery: 1000})
	h := srv.Handler()

	hr := getHealth(t, h)
	if hr.Durability == nil || hr.Durability.DataDir != dir {
		t.Fatalf("healthz durability block missing: %+v", hr.Durability)
	}
	if hr.Index == nil || hr.Index.Bytes <= 0 || hr.Index.Entries <= 0 ||
		hr.Index.BytesPerEntry <= 0 || hr.Index.BytesPerEntry > 1024 {
		t.Fatalf("healthz index footprint block missing or implausible: %+v", hr.Index)
	}
	if hr.Durability.WALSeq != 0 || hr.Durability.SnapshotSeq != 0 {
		t.Fatalf("fresh store healthz: %+v", hr.Durability)
	}

	const updates = 5
	for i := 0; i < updates; i++ {
		var ur UpdateResponse
		if w := postJSON(t, h, "/update", addSoftwareOp(fmt.Sprintf("Postgres %d", i)), &ur); w.Code != http.StatusOK {
			t.Fatalf("update %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	hr = getHealth(t, h)
	if hr.Durability.WALSeq != updates || hr.Durability.PendingRecords != updates {
		t.Fatalf("after %d updates: %+v", updates, hr.Durability)
	}

	var live SearchResponse
	if w := postJSON(t, h, "/search", map[string]any{"query": "software company revenue"}, &live); w.Code != http.StatusOK {
		t.Fatalf("search: %d %s", w.Code, w.Body.String())
	}

	// Crash: no shutdown, no final checkpoint. Recover from the dir.
	st.Close()
	rec, st2, rs, err := kbtable.OpenDir(dir, kbtable.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rs.Replayed != updates || rs.TornTail {
		t.Fatalf("recovery stats: %+v", rs)
	}
	srv2 := New(Config{Engine: rec, D: 3, Store: st2})
	var recovered SearchResponse
	if w := postJSON(t, srv2.Handler(), "/search", map[string]any{"query": "software company revenue"}, &recovered); w.Code != http.StatusOK {
		t.Fatalf("recovered search: %d %s", w.Code, w.Body.String())
	}
	la, _ := json.Marshal(live.Answers)
	ra, _ := json.Marshal(recovered.Answers)
	if !bytes.Equal(la, ra) {
		t.Fatalf("recovered answers diverge:\nlive: %s\nrecovered: %s", la, ra)
	}
}

// TestServeBackgroundCheckpoint pins the WAL-lag trigger: with
// CheckpointEvery=2, the third update must eventually produce a
// snapshot that truncates the log.
func TestServeBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	eng := demoEngine(t, 2) // sharded: checkpoint covers per-shard files
	st, err := kbtable.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := eng.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Engine: eng, D: 3, Store: st, CheckpointEvery: 2})
	h := srv.Handler()

	for i := 0; i < 4; i++ {
		if w := postJSON(t, h, "/update", addSoftwareOp(fmt.Sprintf("DB %d", i)), nil); w.Code != http.StatusOK {
			t.Fatalf("update %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		hr := getHealth(t, h)
		if hr.Durability.Checkpoints >= 1 && hr.Durability.SnapshotSeq >= 2 {
			if hr.Durability.CheckpointErrors != 0 {
				t.Fatalf("checkpoint errors: %+v", hr.Durability)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint never landed: %+v", hr.Durability)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// CheckpointNow catches the rest; a recovery then replays little.
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ss := st.Stats()
	if ss.SnapshotSeq != 4 {
		t.Fatalf("CheckpointNow did not cover the log: %+v", ss)
	}
	rec, rs, err := st.Recover(kbtable.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replayed != 0 || rs.Shards != 2 {
		t.Fatalf("post-checkpoint recovery: %+v", rs)
	}
	if rec.ShardInfo().Count != 2 {
		t.Fatalf("recovered shard count: %+v", rec.ShardInfo())
	}
}

// TestServeNonDurableEngineIgnoresStore pins that a fake engine without
// the durable surface still serves updates when a store is configured.
func TestServeNonDurableEngineIgnoresStore(t *testing.T) {
	dir := t.TempDir()
	st, err := kbtable.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := New(Config{Engine: fakeUpdater{demoEngine(t, 0)}, D: 3, Store: st})
	h := srv.Handler()
	if w := postJSON(t, h, "/update", addSoftwareOp("X"), nil); w.Code != http.StatusOK {
		t.Fatalf("update through fake: %d %s", w.Code, w.Body.String())
	}
	if ss := st.Stats(); ss.LastSeq != 0 {
		t.Fatalf("fake engine logged to the WAL: %+v", ss)
	}
	hr := getHealth(t, h)
	if hr.Durability == nil {
		t.Fatal("durability block should still render (store is open)")
	}
}

// fakeUpdater hides *kbtable.Engine's durable methods behind a plain
// Searcher+Updater so the server sees a non-durable engine.
type fakeUpdater struct{ e *kbtable.Engine }

func (f fakeUpdater) SearchContext(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, error) {
	return f.e.SearchContext(ctx, query, opts)
}

func (f fakeUpdater) ApplyUpdate(u kbtable.Update) (*kbtable.Engine, kbtable.UpdateResult, error) {
	return f.e.ApplyUpdate(u)
}
