package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kbtable"
)

// blockingEngine is a Searcher whose executions park on release,
// counting how many times SearchContext actually ran — the probe for
// coalescing (it should run once for N identical concurrent queries)
// and admission control (it holds slots occupied at will).
type blockingEngine struct {
	executions atomic.Int64
	release    chan struct{}

	mu      sync.Mutex
	started []string // queries in execution-start order
}

func (e *blockingEngine) SearchContext(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, error) {
	e.executions.Add(1)
	e.mu.Lock()
	e.started = append(e.started, query)
	e.mu.Unlock()
	select {
	case <-e.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return []kbtable.Answer{{
		Rank: 1, Score: 0.5, NumRows: 1, Pattern: "p",
		Columns: []string{"c"}, Rows: [][]string{{query}},
	}}, nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCoalescingSharesExecution pins the read-coalescing contract:
// N identical concurrent queries (cache disabled, so none is a cache
// hit) execute the search ONCE; every caller receives byte-identical
// answers, and all but the leader are marked coalesced.
func TestCoalescingSharesExecution(t *testing.T) {
	const n = 8
	eng := &blockingEngine{release: make(chan struct{})}
	srv := New(Config{Engine: eng, D: 3, CacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	type result struct {
		sr   SearchResponse
		code int
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(SearchRequest{Query: "database software", K: 5})
			resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var sr SearchResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Error(err)
				return
			}
			results <- result{sr, resp.StatusCode}
		}()
	}

	// Every request holds an admission slot while it executes or waits
	// on the shared flight, so gate occupancy reaching n means all n are
	// in place — exactly one of them in the engine. Only then release.
	waitFor(t, "all requests admitted", func() bool {
		inFlight, _ := srv.gate.depth()
		return inFlight == n
	})
	if got := eng.executions.Load(); got != 1 {
		t.Fatalf("%d executions before release, want 1", got)
	}
	close(eng.release)
	wg.Wait()
	close(results)

	if got := eng.executions.Load(); got != 1 {
		t.Fatalf("%d executions, want 1", got)
	}
	var coalesced int
	var first *SearchResponse
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("status %d", r.code)
		}
		if r.sr.Coalesced {
			coalesced++
		}
		if first == nil {
			first = &r.sr
			continue
		}
		if !reflect.DeepEqual(r.sr.Answers, first.Answers) {
			t.Fatal("coalesced answers diverge")
		}
		if r.sr.Epoch != first.Epoch {
			t.Fatalf("coalesced epochs diverge: %d vs %d", r.sr.Epoch, first.Epoch)
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d coalesced responses, want %d", coalesced, n-1)
	}
	if h := healthz(t, ts.URL); h.Serving.Coalesced != n-1 {
		t.Fatalf("healthz coalesced = %d, want %d", h.Serving.Coalesced, n-1)
	}
}

// healthz fetches and decodes GET /healthz.
func healthz(t *testing.T, url string) *HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return &h
}

// TestAdmissionShedsWithRetryAfter pins load shedding: with one
// execution slot and a one-deep queue, a third concurrent request is
// rejected 429 with a Retry-After header, and the first two complete
// normally once the engine unblocks.
func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	eng := &blockingEngine{release: make(chan struct{})}
	srv := New(Config{Engine: eng, D: 3, CacheSize: -1, MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	post := func(query string) (*http.Response, error) {
		body, _ := json.Marshal(SearchRequest{Query: query, K: 5})
		return client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	}

	codes := make(chan int, 2)
	// First request occupies the only slot (distinct queries: no flight
	// sharing). Second queues.
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			resp, err := post(fmt.Sprintf("query number %d", i))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	waitFor(t, "one executing, one queued", func() bool {
		inFlight, queued := srv.gate.depth()
		return inFlight == 1 && queued == 1
	})

	// Third request: queue full, shed immediately.
	resp, err := post("query number 2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if _, err := strconv.Atoi(ra); err != nil {
		t.Fatalf("Retry-After %q is not a number", ra)
	}

	close(eng.release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("blocked request finished with %d", code)
		}
	}
	if h := healthz(t, ts.URL); h.Serving.ShedQueueFull != 1 {
		t.Fatalf("healthz shed_queue_full = %d, want 1", h.Serving.ShedQueueFull)
	}
}

// TestAdmissionQueueTimeout pins the queue-wait bound: a queued request
// whose wait exceeds QueueTimeout is shed with 429.
func TestAdmissionQueueTimeout(t *testing.T) {
	eng := &blockingEngine{release: make(chan struct{})}
	defer close(eng.release)
	srv := New(Config{
		Engine: eng, D: 3, CacheSize: -1,
		MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	go func() {
		body, _ := json.Marshal(SearchRequest{Query: "holds the slot", K: 5})
		resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, "slot occupied", func() bool {
		inFlight, _ := srv.gate.depth()
		return inFlight == 1
	})

	body, _ := json.Marshal(SearchRequest{Query: "times out in queue", K: 5})
	resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestPriorityOrdersQueue pins priority admission: with the single slot
// busy and a high- and a low-priority request queued, releasing the
// slot serves the high-priority one first even though low arrived
// earlier.
func TestPriorityOrdersQueue(t *testing.T) {
	eng := &blockingEngine{release: make(chan struct{})}
	srv := New(Config{Engine: eng, D: 3, CacheSize: -1, MaxConcurrent: 1, MaxQueue: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	post := func(query, prio string) (*http.Response, error) {
		body, _ := json.Marshal(SearchRequest{Query: query, K: 5})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if prio != "" {
			req.Header.Set("X-KB-Priority", prio)
		}
		return client.Do(req)
	}

	go func() {
		if resp, err := post("slot holder", ""); err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, "slot occupied", func() bool {
		inFlight, _ := srv.gate.depth()
		return inFlight == 1
	})

	order := make(chan string, 2)
	launch := func(query, prio string) {
		go func() {
			resp, err := post(query, prio)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			order <- prio
		}()
	}
	launch("low priority probe", "low")
	waitFor(t, "low queued", func() bool {
		_, queued := srv.gate.depth()
		return queued == 1
	})
	launch("high priority probe", "high")
	waitFor(t, "high queued", func() bool {
		_, queued := srv.gate.depth()
		return queued == 2
	})

	// Unblock everyone. The slot holder finishes first and hands its
	// slot to the highest-priority waiter, so the server STARTS the high
	// search strictly before the low one. Client-observed completion
	// order is deliberately not asserted — once the engine is released
	// both responses land microseconds apart and their delivery races on
	// goroutine scheduling.
	close(eng.release)
	<-order
	<-order
	eng.mu.Lock()
	started := append([]string(nil), eng.started...)
	eng.mu.Unlock()
	want := []string{"slot holder", "high priority probe", "low priority probe"}
	if len(started) != len(want) || started[1] != want[1] || started[2] != want[2] {
		t.Fatalf("execution start order = %q, want %q", started, want)
	}
}

// TestMetricsEndpoint runs real traffic and then checks that /metrics
// parses as Prometheus text: every sample line matches the exposition
// grammar, required families are present, histogram buckets are
// cumulative, and the +Inf bucket equals the count.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{Engine: fig1Engine(t), D: 3, CacheSize: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	postSearch(t, ts.URL, SearchRequest{Query: "database software", K: 5})
	postSearch(t, ts.URL, SearchRequest{Query: "database software", K: 5}) // cache hit
	var u kbtable.Update
	sw := u.AddEntity("Software", "metrics probe tool")
	u.AddTextAttr(sw, "License", "MIT license")
	postUpdate(t, ts.URL, UpdateRequest{Ops: u.Ops})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="[^"]*",?)*\})? [0-9.eE+-]+( [0-9]+)?$`)
	families := map[string]bool{}
	type histState struct {
		prev  uint64
		inf   uint64
		count uint64
	}
	hists := map[string]*histState{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("line does not parse as a Prometheus sample: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		families[name] = true

		// Histogram integrity: cumulative buckets, +Inf == count.
		if strings.HasSuffix(name, "_bucket") {
			base := strings.TrimSuffix(name, "_bucket")
			// One series per label-set prefix before le=.
			le := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(line)
			series := base
			if i := strings.Index(line, `le="`); i >= 0 {
				series = line[:i]
			}
			h := hists[series]
			if h == nil {
				h = &histState{}
				hists[series] = h
			}
			val, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if val < h.prev {
				t.Fatalf("non-cumulative histogram bucket: %q", line)
			}
			h.prev = val
			if le != nil && le[1] == "+Inf" {
				h.inf = val
			}
		}
		if strings.HasSuffix(name, "_count") {
			val, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err == nil {
				base := strings.TrimSuffix(name, "_count")
				for series, h := range hists {
					if strings.HasPrefix(series, base) && h.count == 0 {
						h.count = val
					}
				}
			}
		}
	}
	for _, want := range []string{
		"kbserve_requests_total",
		"kbserve_request_duration_seconds_bucket",
		"kbserve_request_duration_seconds_count",
		"kbserve_searches_coalesced_total",
		"kbserve_admission_in_flight",
		"kbserve_admission_queue_depth",
		"kbserve_admission_shed_total",
		"kbserve_cache_hits_total",
		"kbserve_bound_pruned_total",
		"kbserve_plan_cache_hits_total",
		"kbserve_plan_cache_misses_total",
		"kbserve_prepared_total",
		"kbserve_prepared_live",
		"kbserve_epoch",
	} {
		if !families[want] {
			t.Fatalf("metric family %q missing; got %v", want, families)
		}
	}
	// The search histogram must have observed our two searches.
	if !strings.Contains(text, `kbserve_request_duration_seconds_count{op="search"} 2`) {
		t.Fatalf("search duration count missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, `kbserve_request_duration_seconds_count{op="update"} 1`) {
		t.Fatalf("update duration count missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, "kbserve_cache_hits_total 1") {
		t.Fatalf("cache hit count missing:\n%s", text)
	}
}

// TestPriorityRejectsUnknown pins request validation for the new field.
func TestPriorityRejectsUnknown(t *testing.T) {
	srv := New(Config{Engine: fig1Engine(t), D: 3})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	body, _ := json.Marshal(SearchRequest{Query: "database", K: 5, Priority: "urgent"})
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
