package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kbtable"
)

// fig1Engine builds an engine over the paper's Figure 1 knowledge base.
func fig1Engine(t *testing.T) *kbtable.Engine {
	t.Helper()
	eng, err := kbtable.NewEngine(fig1Graph(t), kbtable.EngineOptions{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// fig1Graph builds the paper's Figure 1 knowledge base.
func fig1Graph(t *testing.T) *kbtable.Graph {
	t.Helper()
	b := kbtable.NewBuilder()
	sqlServer := b.Entity("Software", "SQL Server")
	relDB := b.Entity("Model", "Relational database")
	microsoft := b.Entity("Company", "Microsoft")
	gates := b.Entity("Person", "Bill Gates")
	oracleDB := b.Entity("Software", "Oracle DB")
	orDB := b.Entity("Model", "O-R database")
	oracle := b.Entity("Company", "Oracle Corp")
	book := b.Entity("Book", "Handbook of Database Software")
	springer := b.Entity("Company", "Springer")
	b.Attr(sqlServer, "Genre", relDB)
	b.Attr(sqlServer, "Developer", microsoft)
	b.Attr(sqlServer, "Reference", book)
	b.TextAttr(microsoft, "Revenue", "US$ 77 billion")
	b.Attr(microsoft, "Founder", gates)
	b.Attr(oracleDB, "Genre", orDB)
	b.Attr(oracleDB, "Developer", oracle)
	b.TextAttr(oracle, "Revenue", "US$ 37 billion")
	b.Attr(book, "Publisher", springer)
	b.TextAttr(springer, "Revenue", "US$ 1 billion")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Engine: fig1Engine(t), D: 3})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSearch(t *testing.T, url string, req SearchRequest) (*http.Response, *SearchResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return resp, &sr
}

func TestSearchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for _, algo := range []string{"patternenum", "linearenum", "baseline"} {
		resp, sr := postSearch(t, ts.URL, SearchRequest{Query: "database software company revenue", K: 3, Algorithm: algo})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", algo, resp.StatusCode)
		}
		if len(sr.Answers) == 0 {
			t.Fatalf("%s: no answers for the running example query", algo)
		}
		a := sr.Answers[0]
		if a.Rank != 1 || a.Score == 0 || len(a.Columns) == 0 || len(a.Rows) == 0 {
			t.Errorf("%s: malformed top answer %+v", algo, a)
		}
		if sr.Cached {
			t.Errorf("%s: first run must not be cached", algo)
		}
	}
}

func TestSearchCacheHit(t *testing.T) {
	srv, ts := newTestServer(t)
	req := SearchRequest{Query: "Database  SOFTWARE company revenue", K: 2}
	_, first := postSearch(t, ts.URL, req)
	if first.Cached {
		t.Fatal("first response claims cached")
	}
	// Same keyword set modulo case/whitespace must hit the cache.
	req.Query = "database software company revenue"
	_, second := postSearch(t, ts.URL, req)
	if !second.Cached {
		t.Fatal("identical normalized query missed the cache")
	}
	if len(second.Answers) != len(first.Answers) {
		t.Fatalf("cached answers differ: %d vs %d", len(second.Answers), len(first.Answers))
	}
	if st := srv.cache.Stats(); st.Hits == 0 {
		t.Fatalf("cache stats recorded no hit: %+v", st)
	}
	// Different k is a different result; must miss.
	req.K = 3
	_, third := postSearch(t, ts.URL, req)
	if third.Cached {
		t.Fatal("different k must not share a cache entry")
	}
}

func TestSearchValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		req  SearchRequest
		want int
	}{
		{"empty query", SearchRequest{}, http.StatusBadRequest},
		{"bad algorithm", SearchRequest{Query: "software", Algorithm: "dijkstra"}, http.StatusBadRequest},
		{"wrong d", SearchRequest{Query: "software", D: 5}, http.StatusBadRequest},
		{"k too large", SearchRequest{Query: "software", K: 100000}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postSearch(t, ts.URL, c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// GET on /search is not allowed.
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
}

// slowSearcher blocks until its context expires, standing in for an
// explosive query that must be cut off by the per-request timeout.
type slowSearcher struct{}

func (slowSearcher) SearchContext(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestSearchTimeout(t *testing.T) {
	srv := New(Config{Engine: slowSearcher{}, D: 3, Timeout: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(SearchRequest{Query: "software"})
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestConcurrentStress mixes direct Engine.Search calls with HTTP traffic
// through the handler and LRU cache from many goroutines — the check the
// daemon's concurrency claims rest on. Run with -race.
func TestConcurrentStress(t *testing.T) {
	eng := fig1Engine(t)
	srv := New(Config{Engine: eng, D: 3, CacheSize: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{
		"database software company revenue",
		"database software",
		"company revenue",
		"software company",
		"microsoft founder",
	}
	algos := []string{"patternenum", "linearenum", "baseline"}
	want := map[string]int{}
	for _, q := range queries {
		answers, err := eng.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = len(answers)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				switch i % 3 {
				case 0: // direct engine call, parallel execution
					answers, err := eng.Search(q, 5)
					if err != nil {
						errs <- err
						continue
					}
					if len(answers) != want[q] {
						errs <- fmt.Errorf("engine diverged on %q: %d != %d", q, len(answers), want[q])
					}
				case 1: // engine call with context and explicit algorithm
					_, err := eng.SearchContext(context.Background(), q, kbtable.SearchOptions{
						K: 5, Algorithm: kbtable.LinearEnum,
					})
					if err != nil {
						errs <- err
					}
				default: // full HTTP round trip, exercising the cache
					body, _ := json.Marshal(SearchRequest{Query: q, K: 5, Algorithm: algos[(w+i)%len(algos)]})
					resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						continue
					}
					var sr SearchResponse
					err = json.NewDecoder(resp.Body).Decode(&sr)
					resp.Body.Close()
					if err != nil {
						errs <- err
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("HTTP %d for %q", resp.StatusCode, q)
						continue
					}
					if sr.Algorithm == "patternenum" && len(sr.Answers) != want[q] {
						errs <- fmt.Errorf("HTTP diverged on %q: %d != %d", q, len(sr.Answers), want[q])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.cache.Stats()
	if st.Hits == 0 {
		t.Error("stress run never hit the cache; repeated identical queries should")
	}
}

// TestGracefulShutdown starts a real listener, issues a request, then
// shuts down and verifies the listener refuses further traffic.
func TestGracefulShutdown(t *testing.T) {
	srv := New(Config{Engine: fig1Engine(t), D: 3})
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe("127.0.0.1:0") }()
	// The ephemeral port is not exposed; drive the handler directly and
	// then check Shutdown unblocks ListenAndServe cleanly.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("ListenAndServe returned %v after graceful shutdown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ListenAndServe did not return after Shutdown")
	}
}
