package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a should survive eviction, got %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 2 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestLRURefresh(t *testing.T) {
	c := NewLRU[string](2)
	c.Put("a", "old")
	c.Put("b", "x")
	c.Put("a", "new") // refresh value and recency
	c.Put("c", "y")   // evicts b, not a
	if v, ok := c.Get("a"); !ok || v != "new" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU[int](-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must never hit")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

// TestLRUConcurrent hammers one cache from many goroutines; run with
// -race. Correctness here is "no race, no panic, bounded size".
func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if v, ok := c.Get(key); ok && v < 0 {
					t.Error("impossible cached value")
				}
				c.Put(key, i)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

func TestLRUDeleteFunc(t *testing.T) {
	c := NewLRU[int](8)
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	n := c.DeleteFunc(func(_ string, v int) bool { return v%2 == 0 })
	if n != 3 || c.Len() != 3 {
		t.Fatalf("deleted %d, kept %d", n, c.Len())
	}
	for i := 0; i < 6; i++ {
		_, ok := c.Get(fmt.Sprintf("k%d", i))
		if ok != (i%2 == 1) {
			t.Fatalf("k%d: cached=%v", i, ok)
		}
	}
	if n := c.DeleteFunc(func(string, int) bool { return false }); n != 0 {
		t.Fatalf("no-op pass deleted %d", n)
	}
}
