// Package serve turns a kbtable engine into a long-running HTTP search
// service: a JSON POST /search endpoint with per-request timeouts, a
// POST /update endpoint that applies live knowledge-base mutations with an
// atomic epoch swap (in-flight searches finish on their snapshot), a
// GET /healthz endpoint, an LRU cache over normalized queries with
// word-precise invalidation, and graceful shutdown. cmd/kbserve is the
// daemon entry point.
package serve

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used cache safe for concurrent
// use. Reads promote the entry, so hot queries stay resident under churn.
// The zero value is unusable; construct with NewLRU.
type LRU[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU returns an empty cache holding at most capacity entries;
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func NewLRU[V any](capacity int) *LRU[V] {
	return &LRU[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, promoting it to most recent.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *LRU[V]) Put(key string, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
}

// DeleteFunc removes every entry for which pred returns true and reports
// how many were removed. Used by live updates to invalidate exactly the
// queries whose posting lists an update touched.
func (c *LRU[V]) DeleteFunc(pred func(key string, val V) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*lruEntry[V])
		if pred(ent.key, ent.val) {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			n++
		}
		el = next
	}
	return n
}

// Len returns the number of cached entries.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots size and hit/miss counters. CacheStats is aliased
// from internal/api — it appears verbatim in the /v1/healthz reply.
func (c *LRU[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Size: c.ll.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses}
}
