package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"kbtable"
)

// fig1Sharded builds a sharded engine over the Figure 1 knowledge base.
func fig1Sharded(t *testing.T, shards int) *kbtable.Engine {
	t.Helper()
	eng, err := kbtable.NewEngine(fig1Graph(t), kbtable.EngineOptions{D: 3, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestShardedServerMatchesUnsharded pins that a server backed by a sharded
// engine returns byte-identical /search responses to an unsharded one, and
// that /healthz reports the shard layout.
func TestShardedServerMatchesUnsharded(t *testing.T) {
	flat := httptest.NewServer(New(Config{Engine: fig1Engine(t), D: 3}).Handler())
	t.Cleanup(flat.Close)
	sharded := httptest.NewServer(New(Config{Engine: fig1Sharded(t, 3), D: 3}).Handler())
	t.Cleanup(sharded.Close)

	for _, req := range []SearchRequest{
		{Query: "database software", K: 10},
		{Query: "database software", K: 10, Algorithm: "linearenum"},
		{Query: "software company revenue", K: 10, Algorithm: "baseline"},
	} {
		_, want := postSearch(t, flat.URL, req)
		_, got := postSearch(t, sharded.URL, req)
		if !reflect.DeepEqual(want.Answers, got.Answers) {
			t.Fatalf("%q (%s): sharded answers diverge:\nflat:    %+v\nsharded: %+v",
				req.Query, req.Algorithm, want.Answers, got.Answers)
		}
	}

	resp, err := http.Get(sharded.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Shards == nil || hr.Shards.Count != 3 {
		t.Fatalf("healthz shard info = %+v, want count 3", hr.Shards)
	}
	if len(hr.Shards.Epochs) != 3 || len(hr.Shards.Roots) != 3 {
		t.Fatalf("healthz missing per-shard details: %+v", hr.Shards)
	}
	total := 0
	for _, r := range hr.Shards.Roots {
		total += r
	}
	if want := fig1Graph(t).NumEntities(); total != want {
		t.Fatalf("shard roots sum to %d, want %d", total, want)
	}
}

// TestShardedConcurrentSearchAndUpdateConsistency is the sharded flavor of
// the epoch-consistency hammer: many searchers race updates against a
// 3-shard engine, and — under -race — every response must be
// byte-identical to the ground truth of the epoch it names, while per-
// shard epochs advance only on the shards an update touched.
func TestShardedConcurrentSearchAndUpdateConsistency(t *testing.T) {
	const (
		numUpdates   = 6
		numSearchers = 6
		perSearcher  = 40
	)
	queries := []SearchRequest{
		{Query: "database software", K: 10},
		{Query: "database software", K: 10, Algorithm: "linearenum"},
		{Query: "software company revenue", K: 10},
	}
	updates := epochUpdates(numUpdates)

	// Ground truth: replay the same chain offline on an identical sharded
	// engine (ApplyUpdate is deterministic and copy-on-write).
	base := fig1Sharded(t, 3)
	expected := make([]map[string][]SearchAnswer, numUpdates+1)
	eng := base
	for ep := 0; ep <= numUpdates; ep++ {
		expected[ep] = make(map[string][]SearchAnswer)
		for _, q := range queries {
			key := q.Query + "|" + q.Algorithm
			algo, _, err := parseAlgorithm(q.Algorithm)
			if err != nil {
				t.Fatal(err)
			}
			answers, err := eng.SearchOpts(normalizeQuery(q.Query), kbtable.SearchOptions{
				K: q.K, Algorithm: algo, MaxRowsPerTable: 50,
			})
			if err != nil {
				t.Fatal(err)
			}
			was := make([]SearchAnswer, 0, len(answers))
			for _, a := range answers {
				was = append(was, SearchAnswer{
					Rank: a.Rank, Score: a.Score, NumRows: a.NumRows,
					Pattern: a.Pattern, Columns: a.Columns, FullColumns: a.FullColumns, Rows: a.Rows,
				})
			}
			expected[ep][key] = was
		}
		if ep < numUpdates {
			next, _, err := eng.ApplyUpdate(updates[ep])
			if err != nil {
				t.Fatal(err)
			}
			eng = next
		}
	}

	srv := New(Config{Engine: base, D: 3, CacheSize: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	var published atomic.Uint64
	var wg sync.WaitGroup
	errc := make(chan error, numSearchers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, u := range updates {
			body, _ := json.Marshal(UpdateRequest{Ops: u.Ops})
			resp, err := client.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			var ur UpdateResponse
			err = json.NewDecoder(resp.Body).Decode(&ur)
			resp.Body.Close()
			if err != nil {
				errc <- err
				return
			}
			if ur.Epoch != uint64(i+1) {
				errc <- fmt.Errorf("update %d published epoch %d", i, ur.Epoch)
				return
			}
			if ur.AffectedShards < 1 || ur.AffectedShards > 3 {
				errc <- fmt.Errorf("update %d touched %d shards", i, ur.AffectedShards)
				return
			}
			published.Store(ur.Epoch)
		}
	}()

	for s := 0; s < numSearchers; s++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < perSearcher; i++ {
				q := queries[(worker+i)%len(queries)]
				low := published.Load()
				body, _ := json.Marshal(q)
				resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var sr SearchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				key := q.Query + "|" + q.Algorithm
				want := expected[sr.Epoch][key]
				if !reflect.DeepEqual(sr.Answers, want) {
					errc <- fmt.Errorf("worker %d: %q@epoch %d diverges from sharded ground truth", worker, q.Query, sr.Epoch)
					return
				}
				if !sr.Cached && sr.Epoch < low {
					errc <- fmt.Errorf("uncached response from epoch %d after %d was published", sr.Epoch, low)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if got := srv.Epoch(); got != numUpdates {
		t.Fatalf("final epoch = %d, want %d", got, numUpdates)
	}
	// The update chain only ever touched the Figure 1 software cluster;
	// per-shard epochs must reflect routed work, not blanket rebuilds.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Shards == nil || hr.Shards.Count != 3 {
		t.Fatalf("healthz shard info = %+v", hr.Shards)
	}
	var bumps uint64
	for _, e := range hr.Shards.Epochs {
		bumps += e
	}
	if bumps == 0 {
		t.Fatal("no shard epoch ever advanced across 6 updates")
	}
}
