package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: a bounded concurrency gate in front of /search.
// At most MaxConcurrent searches execute at once; the next MaxQueue
// wait in priority order (high before normal before low, FIFO within a
// class); everything beyond that is shed immediately with 429 so
// overload degrades into fast, honest rejections instead of a pile-up
// of slow timeouts. A waiter that outlives QueueTimeout (or its own
// request context) is also shed.

// Request priorities, ordered: lower value is served first.
const (
	prioHigh   = 0
	prioNormal = 1
	prioLow    = 2
	numPrios   = 3
)

// parsePriority maps the X-KB-Priority header / request field onto a
// priority class. Empty means normal.
func parsePriority(s string) (int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "normal":
		return prioNormal, nil
	case "high":
		return prioHigh, nil
	case "low":
		return prioLow, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want high, normal or low)", s)
}

// errShedFull / errShedTimeout report why admission failed; both map to
// 429 with a Retry-After.
var (
	errShedFull    = errors.New("serve: queue full")
	errShedTimeout = errors.New("serve: queue wait timed out")
)

// waiter is one queued request; ready is closed (under gate.mu) when a
// slot is transferred to it.
type waiter struct {
	ready chan struct{}
}

// gate is the admission-control gate.
type gate struct {
	mu     sync.Mutex
	cap    int // concurrent execution slots
	maxQ   int // waiters across all classes before shedding
	inUse  int
	queues [numPrios][]*waiter
	queued int

	// Shed counters (for /healthz and /metrics).
	shedFull    atomic.Uint64
	shedTimeout atomic.Uint64
}

func newGate(capacity, maxQueue int) *gate {
	return &gate{cap: capacity, maxQ: maxQueue}
}

// acquire blocks until an execution slot is available, the queue is
// full (errShedFull), the wait exceeds timeout (errShedTimeout), or ctx
// ends (its error). A nil error means the caller holds a slot and must
// release() it.
func (g *gate) acquire(ctx context.Context, prio int, timeout time.Duration) error {
	g.mu.Lock()
	if g.inUse < g.cap {
		g.inUse++
		g.mu.Unlock()
		return nil
	}
	if g.queued >= g.maxQ {
		g.mu.Unlock()
		g.shedFull.Add(1)
		return errShedFull
	}
	w := &waiter{ready: make(chan struct{})}
	g.queues[prio] = append(g.queues[prio], w)
	g.queued++
	g.mu.Unlock()

	var timer *time.Timer
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeoutC = timer.C
		defer timer.Stop()
	}
	select {
	case <-w.ready:
		return nil // slot transferred by release()
	case <-timeoutC:
		if g.abandon(prio, w) {
			g.shedTimeout.Add(1)
			return errShedTimeout
		}
		return nil // lost the race: a slot was granted, keep it
	case <-ctx.Done():
		if g.abandon(prio, w) {
			return ctx.Err()
		}
		return nil
	}
}

// abandon removes w from its queue; false means a grant won the race
// (w.ready already closed) and the caller holds a slot after all.
func (g *gate) abandon(prio int, w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-w.ready:
		return false
	default:
	}
	q := g.queues[prio]
	for i, cand := range q {
		if cand == w {
			g.queues[prio] = append(q[:i], q[i+1:]...)
			g.queued--
			return true
		}
	}
	// Not in the queue and not granted: unreachable, but claim shed to
	// fail safe (a slot is never leaked by abandoning).
	return true
}

// release frees the caller's slot, transferring it to the
// highest-priority waiter if one is queued.
func (g *gate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for p := 0; p < numPrios; p++ {
		if len(g.queues[p]) > 0 {
			w := g.queues[p][0]
			g.queues[p] = g.queues[p][1:]
			g.queued--
			close(w.ready) // slot moves to w; inUse is unchanged
			return
		}
	}
	g.inUse--
}

// depth returns (executing, queued) for monitoring.
func (g *gate) depth() (int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse, g.queued
}
