package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"kbtable"
)

// epochUpdates builds the deterministic update sequence the consistency
// test replays: each update adds a software entity wired to the Figure 1
// graph, so the "database software" answer set grows epoch by epoch.
func epochUpdates(n int) []kbtable.Update {
	out := make([]kbtable.Update, n)
	for i := range out {
		var u kbtable.Update
		sw := u.AddEntity("Software", fmt.Sprintf("DBMS mark%d", i))
		u.AddAttr(sw, "Genre", 1)     // Relational database
		u.AddAttr(sw, "Developer", 2) // Microsoft
		out[i] = u
	}
	return out
}

// TestConcurrentSearchAndUpdateConsistency hammers POST /search from many
// goroutines while POST /update publishes a known sequence of epochs, and
// checks — under -race — that every single response is byte-identical to
// the precomputed ground truth of the epoch it claims to belong to: no
// torn reads, no half-applied updates, no stale cache entries leaking
// across an invalidation.
func TestConcurrentSearchAndUpdateConsistency(t *testing.T) {
	const (
		numUpdates   = 6
		numSearchers = 8
		perSearcher  = 60
	)
	queries := []SearchRequest{
		{Query: "database software", K: 10},
		{Query: "database software", K: 10, Algorithm: "linearenum"},
		{Query: "software company revenue", K: 10},
		{Query: "founder person", K: 10},
	}
	updates := epochUpdates(numUpdates)

	// Ground truth: replay the same update chain offline. ApplyUpdate is
	// deterministic and copy-on-write, so engine i here is bit-identical
	// to the server's engine at epoch i.
	base := fig1Engine(t)
	expected := make([]map[string][]SearchAnswer, numUpdates+1)
	eng := base
	for ep := 0; ep <= numUpdates; ep++ {
		expected[ep] = make(map[string][]SearchAnswer)
		for _, q := range queries {
			key := q.Query + "|" + q.Algorithm
			algo, _, err := parseAlgorithm(q.Algorithm)
			if err != nil {
				t.Fatal(err)
			}
			answers, err := eng.SearchOpts(normalizeQuery(q.Query), kbtable.SearchOptions{
				K: q.K, Algorithm: algo, MaxRowsPerTable: 50,
			})
			if err != nil {
				t.Fatal(err)
			}
			was := make([]SearchAnswer, 0, len(answers))
			for _, a := range answers {
				was = append(was, SearchAnswer{
					Rank: a.Rank, Score: a.Score, NumRows: a.NumRows,
					Pattern: a.Pattern, Columns: a.Columns, FullColumns: a.FullColumns, Rows: a.Rows,
				})
			}
			expected[ep][key] = was
		}
		if ep < numUpdates {
			next, _, err := eng.ApplyUpdate(updates[ep])
			if err != nil {
				t.Fatal(err)
			}
			eng = next
		}
	}

	srv := New(Config{Engine: base, D: 3, CacheSize: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	var published atomic.Uint64 // highest epoch the updater has seen acked
	var wg sync.WaitGroup
	errc := make(chan error, numSearchers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, u := range updates {
			body, _ := json.Marshal(UpdateRequest{Ops: u.Ops})
			resp, err := client.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			var ur UpdateResponse
			err = json.NewDecoder(resp.Body).Decode(&ur)
			resp.Body.Close()
			if err != nil {
				errc <- err
				return
			}
			if ur.Epoch != uint64(i+1) {
				errc <- fmt.Errorf("update %d published epoch %d", i, ur.Epoch)
				return
			}
			published.Store(ur.Epoch)
		}
	}()

	for s := 0; s < numSearchers; s++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < perSearcher; i++ {
				q := queries[(worker+i)%len(queries)]
				low := published.Load() // epochs acked before we sent
				body, _ := json.Marshal(q)
				resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var sr SearchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if sr.Epoch > numUpdates {
					errc <- fmt.Errorf("response names unpublished epoch %d", sr.Epoch)
					return
				}
				key := q.Query + "|" + q.Algorithm
				want := expected[sr.Epoch][key]
				if !reflect.DeepEqual(sr.Answers, want) {
					errc <- fmt.Errorf("worker %d: %q@epoch %d: answers diverge from ground truth (%d vs %d answers)",
						worker, q.Query, sr.Epoch, len(sr.Answers), len(want))
					return
				}
				// Freshness: an uncached response must come from an epoch
				// at least as new as the last one acked before the request
				// was sent. (A cached response may legitimately be older —
				// it is retained only while provably unchanged.)
				if !sr.Cached && sr.Epoch < low {
					errc <- fmt.Errorf("uncached response from epoch %d after %d was published", sr.Epoch, low)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the dust settles the server must be on the final epoch and a
	// fresh query must see the fully updated KB.
	if got := srv.Epoch(); got != numUpdates {
		t.Fatalf("final epoch = %d, want %d", got, numUpdates)
	}
	_, sr := postSearch(t, ts.URL, SearchRequest{Query: "mark0 mark1 database", K: 5})
	if sr.Epoch != numUpdates {
		t.Fatalf("fresh query on epoch %d", sr.Epoch)
	}
}

// TestConcurrentUpdatersDontCorrupt lets several writers race each other
// (updates are serialized internally) along with readers, asserting only
// structural sanity: all updates are acked with distinct epochs and the
// final epoch equals the number of updates applied.
func TestConcurrentUpdatersDontCorrupt(t *testing.T) {
	const writers, perWriter, readers = 4, 5, 4
	srv := New(Config{Engine: fig1Engine(t), D: 3, CacheSize: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	var wg sync.WaitGroup
	epochs := make(chan uint64, writers*perWriter)
	errc := make(chan error, writers+readers)
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var u kbtable.Update
				sw := u.AddEntity("Software", fmt.Sprintf("tool w%dn%d", wr, i))
				u.AddTextAttr(sw, "License", "MIT license")
				body, _ := json.Marshal(UpdateRequest{Ops: u.Ops})
				resp, err := client.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var ur UpdateResponse
				err = json.NewDecoder(resp.Body).Decode(&ur)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				epochs <- ur.Epoch
			}
		}(wr)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				body, _ := json.Marshal(SearchRequest{Query: "software license", K: 5})
				resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var sr SearchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				for j, a := range sr.Answers {
					if a.Rank != j+1 {
						errc <- fmt.Errorf("rank %d mislabeled", j)
						return
					}
					for _, row := range a.Rows {
						if len(row) != len(a.Columns) {
							errc <- fmt.Errorf("torn table: %d cells for %d columns", len(row), len(a.Columns))
							return
						}
					}
				}
			}
		}(rd)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	close(epochs)
	seen := map[uint64]bool{}
	for e := range epochs {
		if seen[e] {
			t.Fatalf("epoch %d acked twice", e)
		}
		seen[e] = true
	}
	if len(seen) != writers*perWriter || srv.Epoch() != uint64(writers*perWriter) {
		t.Fatalf("acked %d distinct epochs, final %d", len(seen), srv.Epoch())
	}
}
