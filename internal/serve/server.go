package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kbtable"
)

// Searcher is the query surface the server needs. *kbtable.Engine
// implements it; tests substitute fakes.
type Searcher interface {
	SearchContext(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, error)
}

// Updater is the mutation surface: applying a batch of KB updates yields a
// NEW engine over the updated snapshot (the old one keeps serving until
// the swap). *kbtable.Engine implements it; a Config.Engine that does not
// leaves POST /update disabled.
type Updater interface {
	Searcher
	ApplyUpdate(u kbtable.Update) (*kbtable.Engine, kbtable.UpdateResult, error)
}

// wordResolver lets the server tag cached responses with the canonical
// words their query resolved to, enabling word-precise invalidation.
// Engines that do not implement it still work; their cached entries are
// simply dropped on every update.
type wordResolver interface {
	QueryWords(query string) []string
}

// shardInfoer lets GET /healthz report the engine's shard layout.
// *kbtable.Engine implements it; fakes that do not simply omit the field.
type shardInfoer interface {
	ShardInfo() kbtable.ShardInfo
}

// durableEngine is the durability surface: logging accepted updates to
// the write-ahead log before they become visible, and checkpointing the
// engine into the snapshot store. *kbtable.Engine implements it; fakes
// that do not simply run without durability even when Config.Store is
// set.
type durableEngine interface {
	ApplyLogged(s *kbtable.Store, u kbtable.Update) (*kbtable.Engine, kbtable.UpdateResult, error)
	Checkpoint(s *kbtable.Store) (kbtable.CheckpointStats, error)
	Seq() uint64
}

// asyncDurableEngine is the pipelined durability surface: applying a
// batch in memory while only ENQUEUEING its WAL record, so concurrent
// updates share one group-committed fsync. *kbtable.Engine implements
// it; fakes that implement only durableEngine fall back to the serial
// apply+fsync path.
type asyncDurableEngine interface {
	ApplyLoggedAsync(s *kbtable.Store, u kbtable.Update) (*kbtable.Engine, kbtable.UpdateResult, *kbtable.Commit, error)
}

// planner is the plan-observability surface: resolving a plan without
// executing (Plan — the server uses it to key "auto" requests under the
// algorithm they resolve to) and searching with plan + stage timings
// attached (SearchPlan). *kbtable.Engine implements it; fakes that do not
// still serve explicit algorithms, with "auto" passed through untouched
// and plans omitted from responses.
type planner interface {
	Plan(ctx context.Context, query string, opts kbtable.SearchOptions) (kbtable.PlanInfo, error)
	SearchPlan(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, kbtable.PlanInfo, error)
}

// preparer is the prepared-query surface: retaining one query's
// prepare-stage output so repeat executions run only enumerate →
// aggregate → rank. *kbtable.Engine implements it; fakes that do not
// leave POST /prepare disabled (501).
type preparer interface {
	PrepareContext(ctx context.Context, query string, opts kbtable.SearchOptions) (*kbtable.PreparedQuery, error)
}

// planCacheStatser exposes the engine chain's plan-cache counters for
// /healthz and /metrics. *kbtable.Engine implements it.
type planCacheStatser interface {
	PlanCacheStats() kbtable.PlanCacheStats
}

// Config configures a Server.
type Config struct {
	// Engine answers the queries. Required.
	Engine Searcher
	// D is the engine's height threshold; requests naming a different d
	// are rejected (the index is built for exactly one d).
	D int
	// CacheSize bounds the LRU result cache (entries); default 512,
	// negative disables caching.
	CacheSize int
	// Timeout bounds one search request; default 10s.
	Timeout time.Duration
	// MaxK caps the k a request may ask for; default 1000.
	MaxK int
	// MaxRows caps table rows materialized per answer when the request
	// does not set max_rows; default 50 (0 would materialize every row).
	MaxRows int
	// ReadOnly disables POST /update even when the engine supports it.
	ReadOnly bool
	// MaxUpdateOps caps the ops in one update batch; default 10000.
	MaxUpdateOps int
	// DefaultAlgorithm answers requests that omit "algorithm"; accepts
	// the same wire names as the request field ("patternenum", "le",
	// "auto", …). Empty means "patternenum".
	DefaultAlgorithm string
	// Store, when non-nil, makes updates durable: every accepted
	// /update batch is appended to the store's write-ahead log (fsync)
	// before the new epoch is published, and a background checkpoint
	// rewrites the snapshot — truncating the WAL — whenever the log
	// grows CheckpointEvery records past the last snapshot. The engine
	// must support durability (see durableEngine) for Store to engage.
	Store *kbtable.Store
	// CheckpointEvery is the WAL-records-behind-snapshot threshold that
	// triggers a background checkpoint; default 64, negative disables
	// automatic checkpoints (CheckpointNow still works).
	CheckpointEvery int
	// MaxConcurrent bounds how many searches execute at once (admission
	// control); default max(8, 4×GOMAXPROCS), negative disables the gate.
	MaxConcurrent int
	// MaxQueue bounds searches waiting for an execution slot before new
	// arrivals are shed with 429; default 512.
	MaxQueue int
	// QueueTimeout bounds one search's wait for an execution slot
	// (shed with 429 beyond it); default Timeout.
	QueueTimeout time.Duration
	// AdaptiveBias enables the planner feedback loop: observed
	// enumerate-stage timings, per resolved algorithm, are folded into
	// the effective AutoBias applied to "auto" requests that do not set
	// an explicit auto_bias. Off by default; the learned bias steers
	// only the PE/LE choice, never the answer bytes.
	AdaptiveBias bool
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 50
	}
	if c.MaxUpdateOps <= 0 {
		c.MaxUpdateOps = 10000
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
		if c.MaxConcurrent < 8 {
			c.MaxConcurrent = 8
		}
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 512
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = c.Timeout
	}
	return c
}

// engineState is one published epoch: an immutable engine snapshot plus
// its sequence number. Searches load it once and use it end to end, so an
// in-flight query keeps its snapshot even while an update swaps in the
// next epoch.
type engineState struct {
	eng      Searcher
	upd      Updater            // nil if the engine cannot apply updates
	words    wordResolver       // nil if the engine cannot resolve query words
	shards   shardInfoer        // nil if the engine cannot describe its shards
	plans    planner            // nil if the engine cannot resolve plans
	preps    preparer           // nil if the engine cannot prepare queries
	dur      durableEngine      // nil if the engine cannot log/checkpoint
	durAsync asyncDurableEngine // nil if the engine cannot pipeline durable updates
	epoch    uint64
}

// preparedHandle is one registered prepared query: the normalized
// request captured at prepare time, the engine-level handle, and the
// epoch it is bound to. Handles are invalidated wholesale on every epoch
// swap — a prepared execution must answer from the snapshot the client
// prepared against or not at all (410 Gone, re-prepare).
type preparedHandle struct {
	id    string
	epoch uint64
	req   SearchRequest // normalized at prepare time
	auto  bool          // the prepare-time request asked for "auto"
	pq    *kbtable.PreparedQuery
}

// cacheEntry is one cached response tagged with the canonical words its
// query resolved to (nil when unknown: such entries are invalidated by
// every update).
type cacheEntry struct {
	resp  *SearchResponse
	words []string
}

// Server is the HTTP search daemon: POST /search, POST /update,
// GET /healthz.
type Server struct {
	cfg      Config
	cache    *LRU[*cacheEntry]
	start    time.Time
	requests atomic.Uint64
	updates  atomic.Uint64
	hs       *http.Server

	// Planner counters for /healthz: how many searches asked for "auto"
	// and what the planner resolved them to.
	autoRequests atomic.Uint64
	autoChosePE  atomic.Uint64
	autoChoseLE  atomic.Uint64

	// boundPruned accumulates PlanInfo.BoundPruned across executed
	// searches (leader runs and prepared executions; cache hits and
	// coalesced followers did no enumeration).
	boundPruned atomic.Int64

	// abias is the adaptive planner-feedback accumulator (nil = off):
	// leader and prepared executions feed their stage timings in, and
	// "auto" requests without an explicit auto_bias read the learned
	// effective bias out.
	abias *kbtable.AdaptiveBias

	// Prepared-query registry. Handles live exactly one epoch: the
	// publish path drops every handle bound to a superseded epoch, and
	// registration re-checks the published epoch under preparedMu so a
	// prepare racing an update can never leave a stale handle behind.
	preparedMu       sync.Mutex
	preparedByID     map[string]*preparedHandle
	preparedSeq      uint64
	prepares         atomic.Uint64
	preparedSearches atomic.Uint64
	preparedExpired  atomic.Uint64

	// Durability counters: completed background/explicit checkpoints,
	// failures, the busy latch that keeps at most one background
	// checkpoint goroutine alive, and the mutex that serializes actual
	// checkpoint work (background vs CheckpointNow on shutdown).
	checkpoints  atomic.Uint64
	ckptErrors   atomic.Uint64
	ckptBusy     atomic.Bool
	ckptRunMu    sync.Mutex
	lastCkptUnix atomic.Int64

	// cur is the published epoch. swapMu fences cache writes against the
	// invalidate-then-publish sequence so a result computed on epoch N
	// can never enter the cache after the invalidation pass for epoch
	// N+1 ran (which would leak a stale answer into the new epoch).
	//
	// Updates are pipelined: applyMu serializes the in-memory apply
	// chain (tail is the newest applied-but-unpublished engine), the
	// WAL fsync happens OUTSIDE applyMu so concurrent updates share one
	// group commit, and pubMu/pubCond re-serialize publication in epoch
	// order — searches always observe epochs 1, 2, 3, … with no gaps.
	cur     atomic.Pointer[engineState]
	applyMu sync.Mutex
	tail    *engineState // nil = no unpublished state; rebase off cur
	pubMu   sync.Mutex
	pubCond *sync.Cond
	swapMu  sync.RWMutex

	// Serving-path machinery: read coalescing and admission control.
	flights flightGroup
	gate    *gate // nil = admission control disabled
	metrics metrics
}

// New returns a Server ready to ListenAndServe.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		cache:        NewLRU[*cacheEntry](cfg.CacheSize),
		start:        time.Now(),
		preparedByID: make(map[string]*preparedHandle),
	}
	s.pubCond = sync.NewCond(&s.pubMu)
	if cfg.AdaptiveBias {
		s.abias = kbtable.NewAdaptiveBias(0)
	}
	if cfg.MaxConcurrent > 0 {
		s.gate = newGate(cfg.MaxConcurrent, cfg.MaxQueue)
	}
	st := &engineState{eng: cfg.Engine, epoch: 0}
	if !cfg.ReadOnly {
		st.upd, _ = cfg.Engine.(Updater)
	}
	st.words, _ = cfg.Engine.(wordResolver)
	st.shards, _ = cfg.Engine.(shardInfoer)
	st.plans, _ = cfg.Engine.(planner)
	st.preps, _ = cfg.Engine.(preparer)
	st.dur, _ = cfg.Engine.(durableEngine)
	st.durAsync, _ = cfg.Engine.(asyncDurableEngine)
	s.cur.Store(st)
	// A server recovered with a long WAL suffix should not wait for the
	// next update to reclaim it: evaluate the checkpoint lag once at
	// startup too.
	s.maybeCheckpoint()
	s.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.Timeout + 5*time.Second,
		WriteTimeout:      cfg.Timeout + 5*time.Second,
	}
	return s
}

// Handler returns the route table, usable directly in tests or behind
// custom middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/search", s.instrument("search", s.handleSearch))
	mux.Handle("/prepare", s.instrument("prepare", s.handlePrepare))
	mux.Handle("/update", s.instrument("update", s.handleUpdate))
	mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("/metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// Epoch returns the currently published epoch number.
func (s *Server) Epoch() uint64 { return s.cur.Load().epoch }

// ListenAndServe blocks serving on addr until Shutdown or a listener
// error; it returns nil after a clean shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	err := s.hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests and stops the listener, bounded by
// ctx (the graceful-shutdown half of ListenAndServe).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// SearchRequest is the POST /search body.
type SearchRequest struct {
	// Query is the keyword query, e.g. "database software company revenue".
	Query string `json:"query"`
	// K is the number of table answers; default 10.
	K int `json:"k,omitempty"`
	// Algorithm is "patternenum"/"pe" (default), "linearenum"/"le",
	// "baseline", or "auto" (the cost-based planner picks patternenum or
	// linearenum per query; answers are bit-identical to requesting the
	// resolved algorithm explicitly).
	Algorithm string `json:"algorithm,omitempty"`
	// D must be 0 or the engine's height threshold.
	D int `json:"d,omitempty"`
	// MaxRows caps materialized rows per answer; default Config.MaxRows.
	MaxRows int `json:"max_rows,omitempty"`
	// AutoBias overrides the planner's PATTERNENUM preference for "auto"
	// requests (0 = default; larger favors patternenum). It steers only
	// the choice, never the answer bytes, so it does not participate in
	// the cache key — the resolved algorithm it influenced does.
	AutoBias float64 `json:"auto_bias,omitempty"`
	// Priority is the admission-control class: "high", "normal"
	// (default), or "low". The X-KB-Priority header takes precedence.
	// Priority orders only queue admission under load; it never changes
	// the answer bytes and does not participate in the cache key.
	Priority string `json:"priority,omitempty"`
	// PreparedID executes a handle from POST /prepare instead of
	// planning from scratch: query/k/algorithm/d/max_rows come from the
	// prepare-time request (and must be omitted here), only auto_bias
	// and priority may be set per execution. A handle whose epoch has
	// been superseded by an update answers 410 Gone — re-prepare.
	PreparedID string `json:"prepared_id,omitempty"`
}

// SearchAnswer is one ranked table answer on the wire.
type SearchAnswer struct {
	Rank    int        `json:"rank"`
	Score   float64    `json:"score"`
	NumRows int        `json:"num_rows"`
	Pattern string     `json:"pattern"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// SearchResponse is the POST /search reply. Epoch names the KB snapshot
// that computed the answers: every response is consistent with exactly
// that published epoch (cached responses keep the epoch they were
// computed under — they are only retained while still valid).
type SearchResponse struct {
	Query string `json:"query"`
	K     int    `json:"k"`
	// Algorithm is the algorithm that computed (or would compute) the
	// answers — for "auto" requests, the planner's resolution, never
	// "auto" itself.
	Algorithm string `json:"algorithm"`
	D         int    `json:"d"`
	Epoch     uint64 `json:"epoch"`
	Cached    bool   `json:"cached"`
	// Coalesced reports that this response shares an execution with an
	// identical concurrent request (same normalized query, options, and
	// epoch) instead of having run the search itself.
	Coalesced bool `json:"coalesced,omitempty"`
	// PreparedID echoes the handle a prepared execution ran (prepared
	// searches bypass the result cache; Epoch is the handle's).
	PreparedID string  `json:"prepared_id,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// Plan reports the resolved execution plan and per-stage timings
	// (omitted when the engine does not expose plans). On cache hits the
	// stage timings are those of the run that populated the entry.
	Plan    *PlanOut       `json:"plan,omitempty"`
	Answers []SearchAnswer `json:"answers"`
}

// PlanOut is the wire form of a resolved execution plan.
type PlanOut struct {
	// Algorithm is the resolved algorithm's wire name.
	Algorithm string `json:"algorithm"`
	// Auto reports that the planner (not the request) chose Algorithm.
	Auto bool `json:"auto"`
	// Reason is the planner's cost rationale (auto only).
	Reason string `json:"reason,omitempty"`
	// CandidateRoots is -1 when the plan did not need the intersection.
	CandidateRoots int   `json:"candidate_roots"`
	RootTypes      int   `json:"root_types"`
	PatternSpace   int64 `json:"pattern_space"`
	Frontier       int64 `json:"frontier"`
	// Per-stage wall clock of the staged executor, in milliseconds.
	PrepareMS   float64 `json:"prepare_ms"`
	EnumerateMS float64 `json:"enumerate_ms"`
	AggregateMS float64 `json:"aggregate_ms"`
	RankMS      float64 `json:"rank_ms"`
	// BoundPruned counts enumeration units the executor's top-k bound
	// pushdown cut before materialization (0 when pruning was off or
	// never fired).
	BoundPruned int64 `json:"bound_pruned"`
}

// planOut converts a facade PlanInfo to the wire form.
func planOut(pi kbtable.PlanInfo) *PlanOut {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return &PlanOut{
		Algorithm:      wireName(pi.Algorithm),
		Auto:           pi.Auto,
		Reason:         pi.Reason,
		CandidateRoots: pi.CandidateRoots,
		RootTypes:      pi.RootTypes,
		PatternSpace:   pi.PatternSpace,
		Frontier:       pi.Frontier,
		PrepareMS:      ms(pi.Prepare),
		EnumerateMS:    ms(pi.Enumerate),
		AggregateMS:    ms(pi.Aggregate),
		RankMS:         ms(pi.Rank),
		BoundPruned:    pi.BoundPruned,
	}
}

// UpdateRequest is the POST /update body: an atomic batch of mutations
// (see kbtable.UpdateOp for the op schema).
type UpdateRequest struct {
	Ops []kbtable.UpdateOp `json:"ops"`
}

// UpdateResponse is the POST /update reply.
type UpdateResponse struct {
	// Epoch is the newly published epoch; searches answered after this
	// reply reflect the update (or carry an older epoch from cache only
	// if the update could not have changed them).
	Epoch uint64 `json:"epoch"`
	// NewEntities resolves this batch's add_entity back-references.
	NewEntities []int64 `json:"new_entities,omitempty"`
	Entities    int     `json:"entities"`
	Attributes  int     `json:"attributes"`
	// DirtyRoots / entry counts describe the incremental index splice.
	EntriesRemoved int64 `json:"entries_removed"`
	EntriesAdded   int64 `json:"entries_added"`
	DirtyRoots     int   `json:"dirty_roots"`
	// TouchedWords and InvalidatedCache size the blast radius: how many
	// posting lists changed and how many cached results were dropped.
	TouchedWords     int `json:"touched_words"`
	InvalidatedCache int `json:"invalidated_cache"`
	// AffectedShards counts shards whose postings the update touched
	// (0 on unsharded engines).
	AffectedShards int     `json:"affected_shards,omitempty"`
	ElapsedMS      float64 `json:"elapsed_ms"`
}

// ShardHealth is the /healthz view of the engine's shard layout.
type ShardHealth struct {
	Count int `json:"count"`
	// Epochs / Roots / Entries are per-shard (absent on unsharded
	// engines): the shard's update epoch, live owned roots, and index
	// postings.
	Epochs  []uint64 `json:"epochs,omitempty"`
	Roots   []int    `json:"roots,omitempty"`
	Entries []int64  `json:"entries,omitempty"`
}

// IndexHealth is the /healthz view of the resident index footprint:
// exact columnar-arena bytes (summed across shards) and the bytes/entry
// figure the footprint benchmarks track.
type IndexHealth struct {
	Bytes         int64   `json:"bytes"`
	BytesPerEntry float64 `json:"bytes_per_entry"`
	Entries       int64   `json:"entries"`
	Patterns      int     `json:"patterns"`
	D             int     `json:"d"`
}

// indexStatser is the optional engine facet exposing footprint stats.
type indexStatser interface {
	IndexStats() kbtable.IndexStats
}

// PlannerHealth aggregates the Auto planner's decisions since startup.
type PlannerHealth struct {
	// AutoRequests counts searches that asked for "auto".
	AutoRequests uint64 `json:"auto_requests"`
	// ChosePatternEnum / ChoseLinearEnum split the resolutions.
	ChosePatternEnum uint64 `json:"chose_patternenum"`
	ChoseLinearEnum  uint64 `json:"chose_linearenum"`
	// PlanCache reports the engine chain's plan cache (absent when the
	// engine does not expose one): repeat query shapes resolve their
	// Auto plan from cached statistics instead of re-probing.
	PlanCache *PlanCacheHealth `json:"plan_cache,omitempty"`
	// AdaptiveBias reports the learned planner bias (absent when
	// Config.AdaptiveBias is off).
	AdaptiveBias *AdaptiveBiasHealth `json:"adaptive_bias,omitempty"`
	// Prepared reports prepared-query traffic.
	Prepared PreparedHealth `json:"prepared"`
}

// PlanCacheHealth is the /healthz view of the engine's plan cache.
type PlanCacheHealth struct {
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Epoch is the cache's invalidation epoch — it advances on every
	// applied update, fencing superseded snapshots out of the cache.
	Epoch       uint64 `json:"epoch"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Invalidated uint64 `json:"invalidated"`
}

// AdaptiveBiasHealth is the /healthz view of the adaptive planner
// feedback accumulator.
type AdaptiveBiasHealth struct {
	// Base is the static bias the learned scale applies to; Effective
	// is the bias "auto" requests without an explicit auto_bias run
	// under right now (== Base until both algorithms were observed).
	Base      float64 `json:"base"`
	Effective float64 `json:"effective"`
	// PEObservations / LEObservations count folded executions, and the
	// NsPerUnit pair is the learned cost-model exchange rate.
	PEObservations uint64  `json:"pe_observations"`
	LEObservations uint64  `json:"le_observations"`
	PENsPerUnit    float64 `json:"pe_ns_per_unit"`
	LENsPerUnit    float64 `json:"le_ns_per_unit"`
}

// PreparedHealth is the /healthz view of the prepared-query registry.
type PreparedHealth struct {
	// Live counts handles valid on the current epoch.
	Live int `json:"live"`
	// Prepares / Searches / Expired count handles created, prepared
	// executions served, and handles invalidated by epoch swaps.
	Prepares uint64 `json:"prepares"`
	Searches uint64 `json:"searches"`
	Expired  uint64 `json:"expired"`
}

// DurabilityHealth is the /healthz view of the snapshot + WAL store.
type DurabilityHealth struct {
	// DataDir is the store's directory.
	DataDir string `json:"data_dir"`
	// WALSeq is the last durable WAL sequence; SnapshotSeq is the WAL
	// position of the newest snapshot. PendingRecords = WALSeq −
	// SnapshotSeq is how many update batches a cold start would replay.
	WALSeq         uint64 `json:"wal_seq"`
	SnapshotSeq    uint64 `json:"snapshot_seq"`
	PendingRecords uint64 `json:"wal_pending_records"`
	// WALBytes is the live WAL size on disk.
	WALBytes int64 `json:"wal_bytes"`
	// Checkpoints / CheckpointErrors count completed and failed
	// checkpoints since startup; CheckpointEvery is the trigger
	// threshold (-1 = automatic checkpoints disabled).
	Checkpoints      uint64 `json:"checkpoints"`
	CheckpointErrors uint64 `json:"checkpoint_errors,omitempty"`
	CheckpointEvery  int    `json:"checkpoint_every"`
	// LastCheckpointUnix is the wall-clock second of the last completed
	// checkpoint (0 = none since startup).
	LastCheckpointUnix int64 `json:"last_checkpoint_unix,omitempty"`
	// TornOnOpen reports that this process found (and truncated) a torn
	// WAL suffix when it opened the store — evidence of a crash.
	TornOnOpen bool `json:"torn_on_open,omitempty"`
	// WALBroken reports a failed WAL append: the server now rejects
	// every update (503) until restarted. The top-level status turns
	// "degraded" so health probes catch it.
	WALBroken bool `json:"wal_broken,omitempty"`
	// Group-commit batching: GroupCommitBatches fsyncs covered
	// GroupCommitRecords WAL records (their ratio is the average batch
	// size; 1.0 means updates never overlapped), and the largest batch.
	GroupCommitBatches  uint64 `json:"group_commit_batches"`
	GroupCommitRecords  uint64 `json:"group_commit_records"`
	GroupCommitMaxBatch int    `json:"group_commit_max_batch"`
}

// ServingHealth is the /healthz view of the serving path: read
// coalescing and admission control.
type ServingHealth struct {
	// Coalesced counts searches that joined another identical in-flight
	// execution instead of running the search themselves.
	Coalesced uint64 `json:"coalesced"`
	// MaxConcurrent is the execution-slot bound (0 = gate disabled).
	MaxConcurrent int `json:"max_concurrent"`
	// InFlight / QueueDepth are the gate's current occupancy.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
	// ShedQueueFull / ShedQueueTimeout count 429s by cause.
	ShedQueueFull    uint64 `json:"shed_queue_full"`
	ShedQueueTimeout uint64 `json:"shed_queue_timeout"`
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	Status        string            `json:"status"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      uint64            `json:"requests"`
	Epoch         uint64            `json:"epoch"`
	Updates       uint64            `json:"updates"`
	Updatable     bool              `json:"updatable"`
	Cache         CacheStats        `json:"cache"`
	Planner       PlannerHealth     `json:"planner"`
	Serving       ServingHealth     `json:"serving"`
	Index         *IndexHealth      `json:"index,omitempty"`
	Shards        *ShardHealth      `json:"shards,omitempty"`
	Durability    *DurabilityHealth `json:"durability,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ParseAlgorithm maps a wire name ("pe", "patternenum", "le",
// "linearenum", "baseline", "auto", "") onto the kbtable algorithm and
// its canonical wire name. Exposed so kbserve can validate its
// -default-algo flag at startup.
func ParseAlgorithm(s string) (kbtable.Algorithm, string, error) {
	return parseAlgorithm(s)
}

// parseAlgorithm maps the wire names onto kbtable algorithms.
func parseAlgorithm(s string) (kbtable.Algorithm, string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "pe", "patternenum":
		return kbtable.PatternEnum, "patternenum", nil
	case "le", "linearenum":
		return kbtable.LinearEnum, "linearenum", nil
	case "baseline":
		return kbtable.Baseline, "baseline", nil
	case "auto":
		return kbtable.Auto, "auto", nil
	}
	return 0, "", fmt.Errorf("unknown algorithm %q (want patternenum, linearenum, baseline or auto)", s)
}

// wireName is parseAlgorithm's inverse for resolved algorithms.
func wireName(a kbtable.Algorithm) string {
	switch a {
	case kbtable.LinearEnum:
		return "linearenum"
	case kbtable.Baseline:
		return "baseline"
	case kbtable.Auto:
		return "auto"
	}
	return "patternenum"
}

// normalizeQuery canonicalizes a query through the engine's own
// tokenization: lowercased maximal letter/digit runs joined by single
// spaces. Punctuation the tokenizer drops never reaches the cache key, so
// "foo," and "foo" (and every punctuation variant between them) occupy
// ONE cache entry instead of fragmenting the result cache. Keyword order
// is preserved: it determines answer column order.
func normalizeQuery(q string) string {
	return kbtable.NormalizeQuery(q)
}

// normalizeRequest canonicalizes a request before it reaches the cache
// key: the query's whitespace and case fold, and the K/D/MaxRows defaults
// are applied, so logically identical requests — {"k":0} and {"k":10},
// "  Foo  Bar" and "foo bar" — occupy ONE cache entry. Validation that
// depends on the normalized values (limits, the engine's d) happens here
// too. Returns an HTTP error message and status, or status 0 when valid.
func (s *Server) normalizeRequest(req *SearchRequest) (string, int) {
	req.Query = normalizeQuery(req.Query)
	if req.Query == "" {
		return "query must not be empty", http.StatusBadRequest
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > s.cfg.MaxK {
		return fmt.Sprintf("k=%d exceeds the maximum %d", req.K, s.cfg.MaxK), http.StatusBadRequest
	}
	if req.D == 0 {
		req.D = s.cfg.D
	}
	if req.D != s.cfg.D {
		return fmt.Sprintf("this engine is indexed for d=%d, not d=%d", s.cfg.D, req.D), http.StatusBadRequest
	}
	if req.MaxRows <= 0 {
		req.MaxRows = s.cfg.MaxRows
	}
	if req.Algorithm == "" {
		req.Algorithm = s.cfg.DefaultAlgorithm
	}
	if msg := checkAutoBias(req.AutoBias); msg != "" {
		return msg, http.StatusBadRequest
	}
	return "", 0
}

// checkAutoBias validates the auto_bias request field: 0 means "planner
// default", any positive finite value is a legal crossover override, and
// everything else (negative, NaN, ±Inf) would silently corrupt the
// planner's comparison, so it is rejected up front. Returns an error
// message, or "" when valid.
func checkAutoBias(b float64) string {
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return fmt.Sprintf("auto_bias must be a finite non-negative number, got %v", b)
	}
	return ""
}

// cacheKey identifies one (query, options) result in the LRU. algo is the
// *resolved* algorithm name: an "auto" request whose plan resolves to
// patternenum shares its entry with explicit patternenum requests (the
// answers are bit-identical by the planner's equivalence guarantee).
//
// The variable-length fields are length-prefixed, making the encoding
// injective: a query containing the field separator (or any future algo
// name) can never re-parse as a different (query, algo) split the way a
// plain join would ("a|b"+"c" vs "a"+"b|c"). The numeric tail needs no
// prefixes — "|%d" never contains another separator.
func cacheKey(query, algo string, k, d, maxRows int) string {
	return fmt.Sprintf("%d:%s|%d:%s|%d|%d|%d", len(query), query, len(algo), algo, k, d, maxRows)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SearchRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.PreparedID != "" {
		s.servePrepared(w, r, &req)
		return
	}
	if msg, status := s.normalizeRequest(&req); status != 0 {
		writeError(w, status, msg)
		return
	}
	algo, algoName, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	prioName := r.Header.Get("X-KB-Priority")
	if prioName == "" {
		prioName = req.Priority
	}
	prio, err := parsePriority(prioName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Admission control: hold an execution slot for the rest of the
	// request. Under overload the wait is bounded and the queue finite,
	// so excess load turns into prompt 429s the client can back off on.
	if s.gate != nil {
		if err := s.gate.acquire(r.Context(), prio, s.cfg.QueueTimeout); err != nil {
			switch {
			case errors.Is(err, errShedFull), errors.Is(err, errShedTimeout):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, err.Error())
			default:
				writeError(w, http.StatusServiceUnavailable, "request canceled while queued")
			}
			return
		}
		defer s.gate.release()
	}

	// Pin this request to the currently published snapshot: even if an
	// update lands mid-query, we keep searching (and report) this epoch.
	st := s.cur.Load()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	opts := kbtable.SearchOptions{
		K:               req.K,
		Algorithm:       algo,
		MaxRowsPerTable: req.MaxRows,
		AutoBias:        req.AutoBias,
	}

	// Resolve "auto" before touching the cache: the planner names the
	// algorithm the query would run as, the cache is keyed under that
	// name, and execution (on a miss) requests it explicitly — so auto
	// answers share entries with explicit requests in both directions,
	// and are byte-identical to them. Engines without a planner run
	// "auto" end to end and key under "auto" (no sharing, still correct).
	// The probe repeats prepare-stage lookups that a miss's execution
	// redoes; that double work is the price of knowing the key before the
	// lookup, and is small next to enumeration (it is exactly the
	// prepare_ms share of the plan's stage timings).
	var chosen *kbtable.PlanInfo
	if algo == kbtable.Auto {
		s.autoRequests.Add(1)
		if s.abias != nil && opts.AutoBias == 0 {
			// Adaptive feedback: requests without an explicit bias run
			// under the learned crossover. The bias steers only the PE/LE
			// choice — the resolved algorithm still keys the cache, so a
			// drifting bias can never serve mismatched bytes.
			opts.AutoBias = s.abias.Effective()
		}
		if st.plans != nil {
			pi, err := st.plans.Plan(ctx, req.Query, opts)
			if err != nil {
				s.writeSearchError(w, err)
				return
			}
			chosen = &pi
			algo, algoName = pi.Algorithm, wireName(pi.Algorithm)
			opts.Algorithm = algo
			if algo == kbtable.LinearEnum {
				s.autoChoseLE.Add(1)
			} else {
				s.autoChosePE.Add(1)
			}
		}
	}

	key := cacheKey(req.Query, algoName, req.K, req.D, req.MaxRows)
	if hit, ok := s.cache.Get(key); ok {
		resp := *hit.resp // shallow copy: answers are shared read-only
		resp.Cached = true
		// The plan must reflect THIS request, not whichever request
		// populated the shared entry: an auto hit carries this request's
		// planner decision and probe statistics, an explicit hit carries
		// neither, even when the entry was computed the other way
		// around. Stage timings stay those of the run that computed it.
		resp.Plan = personalizePlan(resp.Plan, chosen)
		writeJSON(w, http.StatusOK, &resp)
		return
	}

	// Read coalescing: identical concurrent misses — same cache key AND
	// same pinned epoch — share one execution. The epoch in the flight
	// key keeps the freshness contract intact: a request that loaded
	// epoch N+1 never receives bytes computed on epoch N.
	flightKey := fmt.Sprintf("%d|%s", st.epoch, key)
	resp, joined, err := s.flights.do(ctx, flightKey, func() (*SearchResponse, error) {
		// The leader runs detached from its own request context:
		// followers depend on this execution, so one impatient client
		// disconnecting must not fail everyone sharing the flight.
		lctx, lcancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
		defer lcancel()

		t0 := time.Now()
		var answers []kbtable.Answer
		var plan *PlanOut
		var lerr error
		if st.plans != nil {
			var pi kbtable.PlanInfo
			answers, pi, lerr = st.plans.SearchPlan(lctx, req.Query, opts)
			if lerr == nil {
				if chosen != nil {
					// The run executed the resolved algorithm explicitly;
					// surface the planner's decision and the (richer)
					// statistics it was based on, keeping the run's timings.
					pi.Auto, pi.Reason = true, chosen.Reason
					pi.CandidateRoots = chosen.CandidateRoots
					pi.RootTypes = chosen.RootTypes
					pi.PatternSpace = chosen.PatternSpace
					pi.Frontier = chosen.Frontier
				}
				s.observePlan(pi)
				plan = planOut(pi)
			}
		} else {
			answers, lerr = st.eng.SearchContext(lctx, req.Query, opts)
		}
		if lerr != nil {
			return nil, lerr
		}

		resp := &SearchResponse{
			Query:     req.Query,
			K:         req.K,
			Algorithm: algoName,
			D:         req.D,
			Epoch:     st.epoch,
			ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
			Plan:      plan,
			Answers:   wireAnswers(answers),
		}
		ent := &cacheEntry{resp: resp}
		if st.words != nil {
			ent.words = st.words.QueryWords(req.Query)
		}
		s.cachePut(st.epoch, key, ent)
		return resp, nil
	})
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	if joined {
		// A follower shares the leader's bytes but not its request
		// shape: copy, mark, and personalize the plan exactly like a
		// cache hit (the flight's response is shared read-only).
		s.metrics.coalesced.Add(1)
		out := *resp
		out.Coalesced = true
		out.Plan = personalizePlan(out.Plan, chosen)
		writeJSON(w, http.StatusOK, &out)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// personalizePlan adapts a shared (cached or coalesced) response's plan
// to the requesting side's planner decision: chosen non-nil marks an
// auto request and grafts its probe statistics, nil marks an explicit
// request. The input is not mutated.
func personalizePlan(plan *PlanOut, chosen *kbtable.PlanInfo) *PlanOut {
	if plan == nil {
		return nil
	}
	p := *plan
	if chosen != nil {
		p.Auto, p.Reason = true, chosen.Reason
		p.CandidateRoots, p.RootTypes = chosen.CandidateRoots, chosen.RootTypes
		p.PatternSpace, p.Frontier = chosen.PatternSpace, chosen.Frontier
	} else {
		p.Auto, p.Reason = false, ""
	}
	return &p
}

// wireAnswers converts engine answers to the wire form.
func wireAnswers(answers []kbtable.Answer) []SearchAnswer {
	out := make([]SearchAnswer, 0, len(answers))
	for _, a := range answers {
		out = append(out, SearchAnswer{
			Rank:    a.Rank,
			Score:   a.Score,
			NumRows: a.NumRows,
			Pattern: a.Pattern,
			Columns: a.Columns,
			Rows:    a.Rows,
		})
	}
	return out
}

// observePlan folds one executed query's plan into the server's
// execution-side accounting: the bound-pruned counter and, when enabled,
// the adaptive-bias accumulator. Only runs that actually enumerated call
// it — cache hits and coalesced followers carry another run's timings.
func (s *Server) observePlan(pi kbtable.PlanInfo) {
	s.boundPruned.Add(pi.BoundPruned)
	if s.abias != nil {
		s.abias.Observe(pi)
	}
}

// PrepareRequest is the POST /prepare body: the search shape to retain.
// The fields mirror SearchRequest (auto_bias here becomes the handle's
// default bias; baseline cannot be prepared — it has no prepare stage).
type PrepareRequest struct {
	Query     string  `json:"query"`
	K         int     `json:"k,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	D         int     `json:"d,omitempty"`
	MaxRows   int     `json:"max_rows,omitempty"`
	AutoBias  float64 `json:"auto_bias,omitempty"`
}

// PrepareResponse is the POST /prepare reply: the handle to pass as
// prepared_id to POST /search. Handles are bound to the epoch that
// prepared them and expire on the next update (410 Gone).
type PrepareResponse struct {
	ID        string `json:"id"`
	Epoch     uint64 `json:"epoch"`
	Query     string `json:"query"`
	K         int    `json:"k"`
	Algorithm string `json:"algorithm"`
	D         int    `json:"d"`
	MaxRows   int    `json:"max_rows"`
	// Plan is the plan the handle would execute right now (stage
	// timings zero — nothing has run). An "auto" handle re-resolves it
	// per execution, so a later search may legally run the other
	// algorithm if the adaptive bias drifted across the crossover.
	Plan *PlanOut `json:"plan,omitempty"`
}

// handlePrepare runs the prepare stage for a query and registers a
// handle for repeated execution via /search {"prepared_id": ...}.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var preq PrepareRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&preq); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req := SearchRequest{
		Query:     preq.Query,
		K:         preq.K,
		Algorithm: preq.Algorithm,
		D:         preq.D,
		MaxRows:   preq.MaxRows,
		AutoBias:  preq.AutoBias,
	}
	if msg, status := s.normalizeRequest(&req); status != 0 {
		writeError(w, status, msg)
		return
	}
	algo, algoName, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if algo == kbtable.Baseline {
		writeError(w, http.StatusBadRequest, "baseline has no prepare stage and cannot be prepared")
		return
	}
	req.Algorithm = algoName

	st := s.cur.Load()
	if st.preps == nil {
		writeError(w, http.StatusNotImplemented, "this engine does not support prepared queries")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	pq, err := st.preps.PrepareContext(ctx, req.Query, kbtable.SearchOptions{
		K:               req.K,
		Algorithm:       algo,
		MaxRowsPerTable: req.MaxRows,
		AutoBias:        req.AutoBias,
	})
	if err != nil {
		s.writeSearchError(w, err)
		return
	}

	// Register under preparedMu, re-checking the published epoch inside
	// the same critical section the invalidation pass uses: if an update
	// published while we prepared, the handle answers from a superseded
	// snapshot and must not be handed out.
	s.preparedMu.Lock()
	if s.cur.Load().epoch != st.epoch {
		s.preparedMu.Unlock()
		writeError(w, http.StatusConflict, "knowledge base updated during prepare; retry")
		return
	}
	s.preparedSeq++
	h := &preparedHandle{
		id:    fmt.Sprintf("p%d-%d", st.epoch, s.preparedSeq),
		epoch: st.epoch,
		req:   req,
		auto:  algo == kbtable.Auto,
		pq:    pq,
	}
	s.preparedByID[h.id] = h
	s.preparedMu.Unlock()
	s.prepares.Add(1)

	writeJSON(w, http.StatusOK, &PrepareResponse{
		ID:        h.id,
		Epoch:     h.epoch,
		Query:     req.Query,
		K:         req.K,
		Algorithm: algoName,
		D:         req.D,
		MaxRows:   req.MaxRows,
		Plan:      planOut(pq.Plan()),
	})
}

// servePrepared answers a /search carrying prepared_id: look the handle
// up, execute only enumerate → aggregate → rank on the snapshot it was
// prepared against, and bypass the result cache and read coalescing (the
// execution IS the fast path). Admission control still applies.
func (s *Server) servePrepared(w http.ResponseWriter, r *http.Request, req *SearchRequest) {
	if req.Query != "" || req.Algorithm != "" || req.K != 0 || req.D != 0 || req.MaxRows != 0 {
		writeError(w, http.StatusBadRequest, "prepared_id fixes query/k/algorithm/d/max_rows at prepare time; only auto_bias and priority may accompany it")
		return
	}
	if msg := checkAutoBias(req.AutoBias); msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	prioName := r.Header.Get("X-KB-Priority")
	if prioName == "" {
		prioName = req.Priority
	}
	prio, err := parsePriority(prioName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.gate != nil {
		if err := s.gate.acquire(r.Context(), prio, s.cfg.QueueTimeout); err != nil {
			switch {
			case errors.Is(err, errShedFull), errors.Is(err, errShedTimeout):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, err.Error())
			default:
				writeError(w, http.StatusServiceUnavailable, "request canceled while queued")
			}
			return
		}
		defer s.gate.release()
	}

	s.preparedMu.Lock()
	h := s.preparedByID[req.PreparedID]
	s.preparedMu.Unlock()
	if h == nil {
		writeError(w, http.StatusGone, fmt.Sprintf("unknown or expired prepared query %q: POST /prepare again on the current epoch", req.PreparedID))
		return
	}

	bias := h.req.AutoBias
	if req.AutoBias != 0 {
		bias = req.AutoBias
	}
	if h.auto && bias == 0 && s.abias != nil {
		bias = s.abias.Effective()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	t0 := time.Now()
	answers, pi, err := h.pq.SearchBias(ctx, bias)
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	s.observePlan(pi)
	s.preparedSearches.Add(1)
	writeJSON(w, http.StatusOK, &SearchResponse{
		Query:      h.req.Query,
		K:          h.req.K,
		Algorithm:  wireName(pi.Algorithm),
		D:          h.req.D,
		Epoch:      h.epoch,
		PreparedID: h.id,
		ElapsedMS:  float64(time.Since(t0).Microseconds()) / 1000,
		Plan:       planOut(pi),
		Answers:    wireAnswers(answers),
	})
}

// dropPrepared expires every prepared handle bound to a superseded
// epoch. Called after each epoch publish; a prepare racing the publish
// either registered before (and is dropped here) or re-checks the epoch
// under the same mutex and refuses to register.
func (s *Server) dropPrepared() {
	cur := s.cur.Load().epoch
	s.preparedMu.Lock()
	for id, h := range s.preparedByID {
		if h.epoch != cur {
			delete(s.preparedByID, id)
			s.preparedExpired.Add(1)
		}
	}
	s.preparedMu.Unlock()
}

// writeSearchError maps a search failure onto an HTTP status.
func (s *Server) writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query timed out")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// cachePut inserts a computed result unless its epoch has been superseded.
// The read-lock excludes the invalidate-and-publish critical section: if
// the published epoch still equals the computing epoch, the next update's
// invalidation pass has not run yet and will see (and judge) this entry;
// if it no longer does, the invalidation already ran and inserting would
// smuggle a stale result past it, so the insert is dropped.
func (s *Server) cachePut(epoch uint64, key string, ent *cacheEntry) {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	if s.cur.Load().epoch == epoch {
		s.cache.Put(key, ent)
	}
}

// handleUpdate applies an atomic batch of KB mutations and publishes the
// next epoch. Updates are serialized; searches are never blocked — they
// run on the old snapshot until the new one is atomically swapped in, and
// only cached entries whose query words the update touched are dropped.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req UpdateRequest
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "update has no ops")
		return
	}
	if len(req.Ops) > s.cfg.MaxUpdateOps {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("update has %d ops, limit is %d", len(req.Ops), s.cfg.MaxUpdateOps))
		return
	}

	// Apply in memory on the newest state in the chain — published or
	// not. applyMu serializes only the (fast, copy-on-write) apply and
	// the WAL enqueue; the fsync happens after it is released, so
	// concurrent updates overlap their applies with each other's fsyncs
	// and the store group-commits their WAL records together.
	s.applyMu.Lock()
	base := s.tail
	if base == nil {
		base = s.cur.Load()
	}
	if base.upd == nil {
		s.applyMu.Unlock()
		writeError(w, http.StatusNotImplemented, "this server is read-only")
		return
	}
	t0 := time.Now()
	var newEng *kbtable.Engine
	var res kbtable.UpdateResult
	var commit *kbtable.Commit
	var err error
	durable := s.cfg.Store != nil && base.dur != nil
	switch {
	case durable && base.durAsync != nil:
		// Pipelined durable path: the accepted batch still reaches the
		// write-ahead log (fsync) before the epoch swap publishes it —
		// commit.Wait() below resolves before publication — so by the
		// time any search can observe this update, a crash can no
		// longer lose it. The wait just no longer serializes fsyncs.
		newEng, res, commit, err = base.durAsync.ApplyLoggedAsync(s.cfg.Store, kbtable.Update{Ops: req.Ops})
	case durable:
		// Serial durable fallback (engines exposing only ApplyLogged):
		// apply + fsync under applyMu, exactly the pre-group-commit path.
		newEng, res, err = base.dur.ApplyLogged(s.cfg.Store, kbtable.Update{Ops: req.Ops})
	default:
		newEng, res, err = base.upd.ApplyUpdate(kbtable.Update{Ops: req.Ops})
	}
	if err != nil {
		s.applyMu.Unlock()
		if errors.Is(err, kbtable.ErrDurability) {
			// The batch was valid but could not be persisted; nothing was
			// published, and the store refuses further appends.
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	next := &engineState{eng: newEng, upd: newEng, words: newEng, shards: newEng, plans: newEng, preps: newEng, epoch: base.epoch + 1}
	if base.dur != nil {
		// Durability stays engaged only when the whole chain was durable:
		// an engine wrapped by a non-durable fake produced an unlogged
		// first update, so logging later ones would leave a WAL that
		// replays into a different history.
		next.dur = newEng
	}
	if base.durAsync != nil {
		next.durAsync = newEng
	}
	s.tail = next
	s.applyMu.Unlock()

	if commit != nil {
		if _, err := commit.Wait(); err != nil {
			// The batch never became durable: unpublish the poisoned
			// chain so later applies rebase off the published state.
			// Every WAL record enqueued after this one fails too (the
			// store is read-only after an append failure), so no handler
			// downstream of this epoch is left waiting to publish.
			s.applyMu.Lock()
			s.tail = nil
			s.applyMu.Unlock()
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
	}

	touched := make(map[string]bool, len(res.TouchedWords))
	for _, wd := range res.TouchedWords {
		touched[wd] = true
	}
	// Publish strictly in epoch order: a handler whose predecessor is
	// still fsyncing parks here until that epoch lands, so searches
	// observe epochs 1, 2, 3, … with no gaps and every response's epoch
	// matches exactly the update history it reflects.
	s.pubMu.Lock()
	for s.cur.Load().epoch+1 != next.epoch {
		s.pubCond.Wait()
	}
	s.swapMu.Lock()
	invalidated := s.cache.DeleteFunc(func(_ string, ent *cacheEntry) bool {
		if res.ScoresRefreshed {
			// PageRank moved globally: no cached answer is provably
			// unchanged, word precision does not apply.
			return true
		}
		if ent.words == nil {
			return true // untagged: cannot prove it unaffected
		}
		for _, wd := range ent.words {
			if touched[wd] {
				return true
			}
		}
		return false
	})
	s.cur.Store(next)
	s.swapMu.Unlock()
	s.pubCond.Broadcast()
	s.pubMu.Unlock()
	// Prepared handles are bound to their snapshot: every one from a
	// superseded epoch now answers 410 and the client re-prepares.
	s.dropPrepared()
	s.updates.Add(1)
	s.maybeCheckpoint()

	ids := make([]int64, 0, len(res.NewEntities))
	for _, id := range res.NewEntities {
		ids = append(ids, int64(id))
	}
	writeJSON(w, http.StatusOK, &UpdateResponse{
		Epoch:            next.epoch,
		NewEntities:      ids,
		Entities:         res.Entities,
		Attributes:       res.Attributes,
		EntriesRemoved:   res.EntriesRemoved,
		EntriesAdded:     res.EntriesAdded,
		DirtyRoots:       res.DirtyRoots,
		TouchedWords:     len(res.TouchedWords),
		InvalidatedCache: invalidated,
		AffectedShards:   res.AffectedShards,
		ElapsedMS:        float64(time.Since(t0).Microseconds()) / 1000,
	})
}

// maybeCheckpoint starts a background checkpoint when the WAL has
// grown CheckpointEvery records past the last snapshot. At most one
// checkpoint runs at a time; the engine snapshot it serializes is
// immutable, so searches and further updates are never blocked (the
// WAL suffix appended meanwhile simply survives the truncation).
func (s *Server) maybeCheckpoint() {
	if s.cfg.Store == nil || s.cfg.CheckpointEvery < 0 {
		return
	}
	st := s.cur.Load()
	if st.dur == nil {
		return
	}
	ss := s.cfg.Store.Stats()
	seq := st.dur.Seq()
	if seq < ss.SnapshotSeq {
		// The engine is behind the store's snapshot (a Config pairing an
		// engine with a store it was not recovered from). Unsigned
		// subtraction would wrap and fire a doomed checkpoint on every
		// update; there is nothing useful to snapshot, so stand down.
		return
	}
	if seq-ss.SnapshotSeq < uint64(s.cfg.CheckpointEvery) {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return // one goroutine at a time; the next update re-evaluates
	}
	go func() {
		defer s.ckptBusy.Store(false)
		_ = s.runCheckpoint()
	}()
}

// runCheckpoint serializes the CURRENT engine into the store and
// maintains the /healthz counters. The run mutex orders concurrent
// callers (background goroutine vs shutdown's CheckpointNow), and the
// published engine is loaded inside it: the second runner then sees a
// seq >= the snapshot the first one wrote, so it either skips or
// checkpoints strictly newer state — never a spurious regression error
// or a double count.
func (s *Server) runCheckpoint() error {
	s.ckptRunMu.Lock()
	defer s.ckptRunMu.Unlock()
	st := s.cur.Load()
	if st.dur == nil {
		return nil
	}
	cs, err := st.dur.Checkpoint(s.cfg.Store)
	if err != nil {
		s.ckptErrors.Add(1)
		return err
	}
	if !cs.Skipped {
		s.checkpoints.Add(1)
		s.lastCkptUnix.Store(time.Now().Unix())
	}
	return nil
}

// CheckpointNow synchronously checkpoints the currently published
// engine (kbserve calls it on graceful shutdown, so a clean restart
// replays no WAL). Without a store or a durable engine it is a no-op.
func (s *Server) CheckpointNow() error {
	if s.cfg.Store == nil {
		return nil
	}
	return s.runCheckpoint()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.cur.Load()
	resp := &HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Epoch:         st.epoch,
		Updates:       s.updates.Load(),
		Updatable:     st.upd != nil,
		Cache:         s.cache.Stats(),
		Planner: PlannerHealth{
			AutoRequests:     s.autoRequests.Load(),
			ChosePatternEnum: s.autoChosePE.Load(),
			ChoseLinearEnum:  s.autoChoseLE.Load(),
			Prepared: PreparedHealth{
				Live:     s.preparedLive(),
				Prepares: s.prepares.Load(),
				Searches: s.preparedSearches.Load(),
				Expired:  s.preparedExpired.Load(),
			},
		},
		Serving: ServingHealth{Coalesced: s.metrics.coalesced.Load()},
	}
	if pcs, ok := st.eng.(planCacheStatser); ok {
		if cs := pcs.PlanCacheStats(); cs.Capacity > 0 {
			resp.Planner.PlanCache = &PlanCacheHealth{
				Size:        cs.Size,
				Capacity:    cs.Capacity,
				Epoch:       cs.Epoch,
				Hits:        cs.Hits,
				Misses:      cs.Misses,
				Invalidated: cs.Invalidated,
			}
		}
	}
	if s.abias != nil {
		bs := s.abias.Stats()
		resp.Planner.AdaptiveBias = &AdaptiveBiasHealth{
			Base:           bs.Base,
			Effective:      bs.Effective,
			PEObservations: bs.PEObservations,
			LEObservations: bs.LEObservations,
			PENsPerUnit:    bs.PENsPerUnit,
			LENsPerUnit:    bs.LENsPerUnit,
		}
	}
	if s.gate != nil {
		resp.Serving.MaxConcurrent = s.cfg.MaxConcurrent
		resp.Serving.InFlight, resp.Serving.QueueDepth = s.gate.depth()
		resp.Serving.ShedQueueFull = s.gate.shedFull.Load()
		resp.Serving.ShedQueueTimeout = s.gate.shedTimeout.Load()
	}
	if is, ok := st.eng.(indexStatser); ok {
		ixs := is.IndexStats()
		resp.Index = &IndexHealth{
			Bytes:         ixs.Bytes,
			BytesPerEntry: ixs.BytesPerEntry,
			Entries:       ixs.Entries,
			Patterns:      ixs.Patterns,
			D:             ixs.D,
		}
	}
	if st.shards != nil {
		info := st.shards.ShardInfo()
		resp.Shards = &ShardHealth{
			Count:   info.Count,
			Epochs:  info.Epochs,
			Roots:   info.Roots,
			Entries: info.Entries,
		}
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		resp.Durability = &DurabilityHealth{
			DataDir:             ss.Dir,
			WALSeq:              ss.LastSeq,
			SnapshotSeq:         ss.SnapshotSeq,
			PendingRecords:      ss.LastSeq - ss.SnapshotSeq,
			WALBytes:            ss.WALBytes,
			Checkpoints:         s.checkpoints.Load(),
			CheckpointErrors:    s.ckptErrors.Load(),
			CheckpointEvery:     s.cfg.CheckpointEvery,
			LastCheckpointUnix:  s.lastCkptUnix.Load(),
			TornOnOpen:          ss.TornOnOpen,
			WALBroken:           ss.Broken,
			GroupCommitBatches:  ss.GroupCommitBatches,
			GroupCommitRecords:  ss.GroupCommitRecords,
			GroupCommitMaxBatch: ss.GroupCommitMaxBatch,
		}
		if ss.Broken {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// preparedLive counts the currently registered prepared handles.
func (s *Server) preparedLive() int {
	s.preparedMu.Lock()
	defer s.preparedMu.Unlock()
	return len(s.preparedByID)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
