package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"kbtable"
)

// Searcher is the query surface the server needs. *kbtable.Engine
// implements it; tests substitute fakes.
type Searcher interface {
	SearchContext(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, error)
}

// Config configures a Server.
type Config struct {
	// Engine answers the queries. Required.
	Engine Searcher
	// D is the engine's height threshold; requests naming a different d
	// are rejected (the index is built for exactly one d).
	D int
	// CacheSize bounds the LRU result cache (entries); default 512,
	// negative disables caching.
	CacheSize int
	// Timeout bounds one search request; default 10s.
	Timeout time.Duration
	// MaxK caps the k a request may ask for; default 1000.
	MaxK int
	// MaxRows caps table rows materialized per answer when the request
	// does not set max_rows; default 50 (0 would materialize every row).
	MaxRows int
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 50
	}
	return c
}

// Server is the HTTP search daemon: POST /search, GET /healthz.
type Server struct {
	cfg      Config
	cache    *LRU[*SearchResponse]
	start    time.Time
	requests atomic.Uint64
	hs       *http.Server
}

// New returns a Server ready to ListenAndServe.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewLRU[*SearchResponse](cfg.CacheSize),
		start: time.Now(),
	}
	s.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.Timeout + 5*time.Second,
		WriteTimeout:      cfg.Timeout + 5*time.Second,
	}
	return s
}

// Handler returns the route table, usable directly in tests or behind
// custom middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// ListenAndServe blocks serving on addr until Shutdown or a listener
// error; it returns nil after a clean shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	err := s.hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests and stops the listener, bounded by
// ctx (the graceful-shutdown half of ListenAndServe).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// SearchRequest is the POST /search body.
type SearchRequest struct {
	// Query is the keyword query, e.g. "database software company revenue".
	Query string `json:"query"`
	// K is the number of table answers; default 10.
	K int `json:"k,omitempty"`
	// Algorithm is "patternenum"/"pe" (default), "linearenum"/"le", or
	// "baseline".
	Algorithm string `json:"algorithm,omitempty"`
	// D must be 0 or the engine's height threshold.
	D int `json:"d,omitempty"`
	// MaxRows caps materialized rows per answer; default Config.MaxRows.
	MaxRows int `json:"max_rows,omitempty"`
}

// SearchAnswer is one ranked table answer on the wire.
type SearchAnswer struct {
	Rank    int        `json:"rank"`
	Score   float64    `json:"score"`
	NumRows int        `json:"num_rows"`
	Pattern string     `json:"pattern"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// SearchResponse is the POST /search reply.
type SearchResponse struct {
	Query     string         `json:"query"`
	K         int            `json:"k"`
	Algorithm string         `json:"algorithm"`
	D         int            `json:"d"`
	Cached    bool           `json:"cached"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Answers   []SearchAnswer `json:"answers"`
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	Status        string     `json:"status"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Requests      uint64     `json:"requests"`
	Cache         CacheStats `json:"cache"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// parseAlgorithm maps the wire names onto kbtable algorithms.
func parseAlgorithm(s string) (kbtable.Algorithm, string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "pe", "patternenum":
		return kbtable.PatternEnum, "patternenum", nil
	case "le", "linearenum":
		return kbtable.LinearEnum, "linearenum", nil
	case "baseline":
		return kbtable.Baseline, "baseline", nil
	}
	return 0, "", fmt.Errorf("unknown algorithm %q (want patternenum, linearenum or baseline)", s)
}

// normalizeQuery canonicalizes whitespace and case so trivially different
// spellings of the same keyword set share a cache entry. Keyword order is
// preserved: it determines answer column order.
func normalizeQuery(q string) string {
	return strings.ToLower(strings.Join(strings.Fields(q), " "))
}

// cacheKey identifies one (query, options) result in the LRU.
func cacheKey(query, algo string, k, d, maxRows int) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d", query, algo, k, d, maxRows)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SearchRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	query := normalizeQuery(req.Query)
	if query == "" {
		writeError(w, http.StatusBadRequest, "query must not be empty")
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k=%d exceeds the maximum %d", req.K, s.cfg.MaxK))
		return
	}
	if req.D == 0 {
		req.D = s.cfg.D
	}
	if req.D != s.cfg.D {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("this engine is indexed for d=%d, not d=%d", s.cfg.D, req.D))
		return
	}
	if req.MaxRows <= 0 {
		req.MaxRows = s.cfg.MaxRows
	}
	algo, algoName, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	key := cacheKey(query, algoName, req.K, req.D, req.MaxRows)
	if hit, ok := s.cache.Get(key); ok {
		resp := *hit // shallow copy: answers are shared read-only
		resp.Cached = true
		writeJSON(w, http.StatusOK, &resp)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	t0 := time.Now()
	answers, err := s.cfg.Engine.SearchContext(ctx, query, kbtable.SearchOptions{
		K:               req.K,
		Algorithm:       algo,
		MaxRowsPerTable: req.MaxRows,
	})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "query timed out")
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "request canceled")
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}

	resp := &SearchResponse{
		Query:     query,
		K:         req.K,
		Algorithm: algoName,
		D:         req.D,
		ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
		Answers:   make([]SearchAnswer, 0, len(answers)),
	}
	for _, a := range answers {
		resp.Answers = append(resp.Answers, SearchAnswer{
			Rank:    a.Rank,
			Score:   a.Score,
			NumRows: a.NumRows,
			Pattern: a.Pattern,
			Columns: a.Columns,
			Rows:    a.Rows,
		})
	}
	s.cache.Put(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, &HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Cache:         s.cache.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
