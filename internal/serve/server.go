package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kbtable"
	"kbtable/internal/api"
)

// Searcher is the query surface the server needs. *kbtable.Engine
// implements it; tests substitute fakes.
type Searcher interface {
	SearchContext(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, error)
}

// Updater is the mutation surface: applying a batch of KB updates yields a
// NEW engine over the updated snapshot (the old one keeps serving until
// the swap). *kbtable.Engine implements it; a Config.Engine that does not
// leaves POST /update disabled.
type Updater interface {
	Searcher
	ApplyUpdate(u kbtable.Update) (*kbtable.Engine, kbtable.UpdateResult, error)
}

// wordResolver lets the server tag cached responses with the canonical
// words their query resolved to, enabling word-precise invalidation.
// Engines that do not implement it still work; their cached entries are
// simply dropped on every update.
type wordResolver interface {
	QueryWords(query string) []string
}

// shardInfoer lets GET /healthz report the engine's shard layout.
// *kbtable.Engine implements it; fakes that do not simply omit the field.
type shardInfoer interface {
	ShardInfo() kbtable.ShardInfo
}

// durableEngine is the durability surface: logging accepted updates to
// the write-ahead log before they become visible, and checkpointing the
// engine into the snapshot store. *kbtable.Engine implements it; fakes
// that do not simply run without durability even when Config.Store is
// set.
type durableEngine interface {
	ApplyLogged(s *kbtable.Store, u kbtable.Update) (*kbtable.Engine, kbtable.UpdateResult, error)
	Checkpoint(s *kbtable.Store) (kbtable.CheckpointStats, error)
	Seq() uint64
}

// asyncDurableEngine is the pipelined durability surface: applying a
// batch in memory while only ENQUEUEING its WAL record, so concurrent
// updates share one group-committed fsync. *kbtable.Engine implements
// it; fakes that implement only durableEngine fall back to the serial
// apply+fsync path.
type asyncDurableEngine interface {
	ApplyLoggedAsync(s *kbtable.Store, u kbtable.Update) (*kbtable.Engine, kbtable.UpdateResult, *kbtable.Commit, error)
}

// planner is the plan-observability surface: resolving a plan without
// executing (Plan — the server uses it to key "auto" requests under the
// algorithm they resolve to) and searching with plan + stage timings
// attached (SearchPlan). *kbtable.Engine implements it; fakes that do not
// still serve explicit algorithms, with "auto" passed through untouched
// and plans omitted from responses.
type planner interface {
	Plan(ctx context.Context, query string, opts kbtable.SearchOptions) (kbtable.PlanInfo, error)
	SearchPlan(ctx context.Context, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, kbtable.PlanInfo, error)
}

// preparer is the prepared-query surface: retaining one query's
// prepare-stage output so repeat executions run only enumerate →
// aggregate → rank. *kbtable.Engine implements it; fakes that do not
// leave POST /prepare disabled (501).
type preparer interface {
	PrepareContext(ctx context.Context, query string, opts kbtable.SearchOptions) (*kbtable.PreparedQuery, error)
}

// planCacheStatser exposes the engine chain's plan-cache counters for
// /healthz and /metrics. *kbtable.Engine implements it.
type planCacheStatser interface {
	PlanCacheStats() kbtable.PlanCacheStats
}

// distributedSearcher is the cluster-coordinator surface: scatter the
// planner probe and the per-shard enumerate→aggregate legs through a
// kbtable.ShardExecutor, gather exactly. *kbtable.Engine implements it
// for complete sharded engines; it engages only when Config.Distributor
// is set.
type distributedSearcher interface {
	PlanDistributed(ctx context.Context, exec kbtable.ShardExecutor, query string, opts kbtable.SearchOptions) (kbtable.PlanInfo, error)
	SearchDistributed(ctx context.Context, exec kbtable.ShardExecutor, query string, opts kbtable.SearchOptions) ([]kbtable.Answer, kbtable.PlanInfo, error)
}

// shardOwner describes which slice of the shard partition the engine
// hosts, for GET /v1/shards. *kbtable.Engine implements it.
type shardOwner interface {
	OwnedShards() []int
	Complete() bool
}

// Config configures a Server.
type Config struct {
	// Engine answers the queries. Required.
	Engine Searcher
	// D is the engine's height threshold; requests naming a different d
	// are rejected (the index is built for exactly one d).
	D int
	// CacheSize bounds the LRU result cache (entries); default 512,
	// negative disables caching.
	CacheSize int
	// Timeout bounds one search request; default 10s.
	Timeout time.Duration
	// MaxK caps the k a request may ask for; default 1000.
	MaxK int
	// MaxRows caps table rows materialized per answer when the request
	// does not set max_rows; default 50 (0 would materialize every row).
	MaxRows int
	// ReadOnly disables POST /update even when the engine supports it.
	ReadOnly bool
	// MaxUpdateOps caps the ops in one update batch; default 10000.
	MaxUpdateOps int
	// DefaultAlgorithm answers requests that omit "algorithm"; accepts
	// the same wire names as the request field ("patternenum", "le",
	// "auto", …). Empty means "patternenum".
	DefaultAlgorithm string
	// Store, when non-nil, makes updates durable: every accepted
	// /update batch is appended to the store's write-ahead log (fsync)
	// before the new epoch is published, and a background checkpoint
	// rewrites the snapshot — truncating the WAL — whenever the log
	// grows CheckpointEvery records past the last snapshot. The engine
	// must support durability (see durableEngine) for Store to engage.
	Store *kbtable.Store
	// CheckpointEvery is the WAL-records-behind-snapshot threshold that
	// triggers a background checkpoint; default 64, negative disables
	// automatic checkpoints (CheckpointNow still works).
	CheckpointEvery int
	// MaxConcurrent bounds how many searches execute at once (admission
	// control); default max(8, 4×GOMAXPROCS), negative disables the gate.
	MaxConcurrent int
	// MaxQueue bounds searches waiting for an execution slot before new
	// arrivals are shed with 429; default 512.
	MaxQueue int
	// QueueTimeout bounds one search's wait for an execution slot
	// (shed with 429 beyond it); default Timeout.
	QueueTimeout time.Duration
	// AdaptiveBias enables the planner feedback loop: observed
	// enumerate-stage timings, per resolved algorithm, are folded into
	// the effective AutoBias applied to "auto" requests that do not set
	// an explicit auto_bias. Off by default; the learned bias steers
	// only the PE/LE choice, never the answer bytes.
	AdaptiveBias bool
	// Distributor, when non-nil, turns leader executions into cluster
	// scatter-gather: each shard's planner probe and enumerate→aggregate
	// leg is routed through the executor (internal/cluster's Router) to
	// remote owner nodes, and the partials gather on the local engine.
	// Legs that fail re-run locally inside the engine, so answers stay
	// bit-identical to single-node execution regardless of node health.
	// Requires an Engine exposing SearchDistributed (a complete sharded
	// *kbtable.Engine); ignored otherwise.
	Distributor kbtable.ShardExecutor
	// Cluster, when non-nil, is consulted per /healthz and /v1/shards
	// request for this process's cluster role, identity, and
	// replication position.
	Cluster func() *api.ClusterHealth
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 50
	}
	if c.MaxUpdateOps <= 0 {
		c.MaxUpdateOps = 10000
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
		if c.MaxConcurrent < 8 {
			c.MaxConcurrent = 8
		}
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 512
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = c.Timeout
	}
	return c
}

// engineState is one published epoch: an immutable engine snapshot plus
// its sequence number. Searches load it once and use it end to end, so an
// in-flight query keeps its snapshot even while an update swaps in the
// next epoch.
type engineState struct {
	eng      Searcher
	upd      Updater             // nil if the engine cannot apply updates
	words    wordResolver        // nil if the engine cannot resolve query words
	shards   shardInfoer         // nil if the engine cannot describe its shards
	plans    planner             // nil if the engine cannot resolve plans
	preps    preparer            // nil if the engine cannot prepare queries
	dur      durableEngine       // nil if the engine cannot log/checkpoint
	durAsync asyncDurableEngine  // nil if the engine cannot pipeline durable updates
	dist     distributedSearcher // nil if the engine cannot scatter-gather
	epoch    uint64
}

// preparedHandle is one registered prepared query: the normalized
// request captured at prepare time, the engine-level handle, and the
// epoch it is bound to. Handles are invalidated wholesale on every epoch
// swap — a prepared execution must answer from the snapshot the client
// prepared against or not at all (410 Gone, re-prepare).
type preparedHandle struct {
	id    string
	epoch uint64
	req   SearchRequest // normalized at prepare time
	auto  bool          // the prepare-time request asked for "auto"
	pq    *kbtable.PreparedQuery
}

// cacheEntry is one cached response tagged with the canonical words its
// query resolved to (nil when unknown: such entries are invalidated by
// every update).
type cacheEntry struct {
	resp  *SearchResponse
	words []string
}

// Server is the HTTP search daemon: POST /search, POST /update,
// GET /healthz.
type Server struct {
	cfg      Config
	cache    *LRU[*cacheEntry]
	start    time.Time
	requests atomic.Uint64
	updates  atomic.Uint64
	hs       *http.Server

	// Planner counters for /healthz: how many searches asked for "auto"
	// and what the planner resolved them to.
	autoRequests atomic.Uint64
	autoChosePE  atomic.Uint64
	autoChoseLE  atomic.Uint64

	// boundPruned accumulates PlanInfo.BoundPruned across executed
	// searches (leader runs and prepared executions; cache hits and
	// coalesced followers did no enumeration).
	boundPruned atomic.Int64

	// abias is the adaptive planner-feedback accumulator (nil = off):
	// leader and prepared executions feed their stage timings in, and
	// "auto" requests without an explicit auto_bias read the learned
	// effective bias out.
	abias *kbtable.AdaptiveBias

	// Prepared-query registry. Handles live exactly one epoch: the
	// publish path drops every handle bound to a superseded epoch, and
	// registration re-checks the published epoch under preparedMu so a
	// prepare racing an update can never leave a stale handle behind.
	preparedMu       sync.Mutex
	preparedByID     map[string]*preparedHandle
	preparedSeq      uint64
	prepares         atomic.Uint64
	preparedSearches atomic.Uint64
	preparedExpired  atomic.Uint64

	// Durability counters: completed background/explicit checkpoints,
	// failures, the busy latch that keeps at most one background
	// checkpoint goroutine alive, and the mutex that serializes actual
	// checkpoint work (background vs CheckpointNow on shutdown).
	checkpoints  atomic.Uint64
	ckptErrors   atomic.Uint64
	ckptBusy     atomic.Bool
	ckptRunMu    sync.Mutex
	lastCkptUnix atomic.Int64

	// cur is the published epoch. swapMu fences cache writes against the
	// invalidate-then-publish sequence so a result computed on epoch N
	// can never enter the cache after the invalidation pass for epoch
	// N+1 ran (which would leak a stale answer into the new epoch).
	//
	// Updates are pipelined: applyMu serializes the in-memory apply
	// chain (tail is the newest applied-but-unpublished engine), the
	// WAL fsync happens OUTSIDE applyMu so concurrent updates share one
	// group commit, and pubMu/pubCond re-serialize publication in epoch
	// order — searches always observe epochs 1, 2, 3, … with no gaps.
	cur     atomic.Pointer[engineState]
	applyMu sync.Mutex
	tail    *engineState // nil = no unpublished state; rebase off cur
	pubMu   sync.Mutex
	pubCond *sync.Cond
	swapMu  sync.RWMutex

	// Serving-path machinery: read coalescing and admission control.
	flights flightGroup
	gate    *gate // nil = admission control disabled
	metrics metrics
}

// New returns a Server ready to ListenAndServe.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		cache:        NewLRU[*cacheEntry](cfg.CacheSize),
		start:        time.Now(),
		preparedByID: make(map[string]*preparedHandle),
	}
	s.pubCond = sync.NewCond(&s.pubMu)
	if cfg.AdaptiveBias {
		s.abias = kbtable.NewAdaptiveBias(0)
	}
	if cfg.MaxConcurrent > 0 {
		s.gate = newGate(cfg.MaxConcurrent, cfg.MaxQueue)
	}
	st := &engineState{eng: cfg.Engine, epoch: 0}
	// ReadOnly gates only the HTTP handler, not the facet: the
	// replication path (Apply) must keep writing through a server whose
	// own /update endpoint is closed to clients.
	st.upd, _ = cfg.Engine.(Updater)
	st.words, _ = cfg.Engine.(wordResolver)
	st.shards, _ = cfg.Engine.(shardInfoer)
	st.plans, _ = cfg.Engine.(planner)
	st.preps, _ = cfg.Engine.(preparer)
	st.dur, _ = cfg.Engine.(durableEngine)
	st.durAsync, _ = cfg.Engine.(asyncDurableEngine)
	st.dist, _ = cfg.Engine.(distributedSearcher)
	s.cur.Store(st)
	// A server recovered with a long WAL suffix should not wait for the
	// next update to reclaim it: evaluate the checkpoint lag once at
	// startup too.
	s.maybeCheckpoint()
	s.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.Timeout + 5*time.Second,
		WriteTimeout:      cfg.Timeout + 5*time.Second,
	}
	return s
}

// Handler returns the route table, usable directly in tests or behind
// custom middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Every endpoint lives under /v1; the historical unversioned paths
	// remain aliases for one release and serve identical bytes.
	route := func(path, name string, h http.HandlerFunc) {
		mux.Handle("/"+api.Version+path, s.instrument(name, h))
		mux.Handle(path, s.instrument(name, h))
	}
	route("/search", "search", s.handleSearch)
	route("/prepare", "prepare", s.handlePrepare)
	route("/update", "update", s.handleUpdate)
	route("/healthz", "healthz", s.handleHealthz)
	route("/metrics", "metrics", s.handleMetrics)
	mux.Handle("/"+api.Version+"/shards", s.instrument("shards", s.handleShards))
	mux.Handle("/"+api.Version+"/wal/segments", s.instrument("wal_segments", s.handleWALSegments))
	// Unknown paths answer the JSON envelope, not net/http's text 404.
	mux.Handle("/", s.instrument("notfound", s.handleNotFound))
	return mux
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, api.CodeNotFound,
		fmt.Sprintf("no such endpoint %q (the API lives under /%s)", r.URL.Path, api.Version))
}

// CurrentEngine returns the currently published engine snapshot and its
// epoch. Cluster node handlers execute shard legs against exactly this
// pinned pair, so a concurrently applied update can never mix epochs
// inside one scattered query.
func (s *Server) CurrentEngine() (Searcher, uint64) {
	st := s.cur.Load()
	return st.eng, st.epoch
}

// Epoch returns the currently published epoch number.
func (s *Server) Epoch() uint64 { return s.cur.Load().epoch }

// SetHandler replaces what ListenAndServe serves (a cluster node wraps
// Handler with the coordinator-facing leg endpoints). Call it before
// ListenAndServe.
func (s *Server) SetHandler(h http.Handler) { s.hs.Handler = h }

// ListenAndServe blocks serving on addr until Shutdown or a listener
// error; it returns nil after a clean shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	err := s.hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests and stops the listener, bounded by
// ctx (the graceful-shutdown half of ListenAndServe).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// The wire types live in internal/api — the versioned /v1 contract
// shared with internal/client and internal/cluster — and are aliased
// here so server code (and its tests) keep their historical names.
type (
	SearchRequest   = api.SearchRequest
	SearchAnswer    = api.SearchAnswer
	SearchResponse  = api.SearchResponse
	PlanOut         = api.PlanOut
	PrepareRequest  = api.PrepareRequest
	PrepareResponse = api.PrepareResponse
	UpdateRequest   = api.UpdateRequest
	UpdateResponse  = api.UpdateResponse

	CacheStats         = api.CacheStats
	ShardHealth        = api.ShardHealth
	IndexHealth        = api.IndexHealth
	PlannerHealth      = api.PlannerHealth
	PlanCacheHealth    = api.PlanCacheHealth
	AdaptiveBiasHealth = api.AdaptiveBiasHealth
	PreparedHealth     = api.PreparedHealth
	DurabilityHealth   = api.DurabilityHealth
	ServingHealth      = api.ServingHealth
	HealthResponse     = api.HealthResponse
)

// planOut converts a facade PlanInfo to the wire form.
func planOut(pi kbtable.PlanInfo) *PlanOut {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return &PlanOut{
		Algorithm:      wireName(pi.Algorithm),
		Auto:           pi.Auto,
		Reason:         pi.Reason,
		CandidateRoots: pi.CandidateRoots,
		RootTypes:      pi.RootTypes,
		PatternSpace:   pi.PatternSpace,
		Frontier:       pi.Frontier,
		PrepareMS:      ms(pi.Prepare),
		EnumerateMS:    ms(pi.Enumerate),
		AggregateMS:    ms(pi.Aggregate),
		RankMS:         ms(pi.Rank),
		BoundPruned:    pi.BoundPruned,
	}
}

// indexStatser is the optional engine facet exposing footprint stats.
type indexStatser interface {
	IndexStats() kbtable.IndexStats
}

// ParseAlgorithm maps a wire name ("pe", "patternenum", "le",
// "linearenum", "baseline", "auto", "") onto the kbtable algorithm and
// its canonical wire name. Exposed so kbserve can validate its
// -default-algo flag at startup.
func ParseAlgorithm(s string) (kbtable.Algorithm, string, error) {
	return parseAlgorithm(s)
}

// parseAlgorithm maps the wire names onto kbtable algorithms.
func parseAlgorithm(s string) (kbtable.Algorithm, string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "pe", "patternenum":
		return kbtable.PatternEnum, "patternenum", nil
	case "le", "linearenum":
		return kbtable.LinearEnum, "linearenum", nil
	case "baseline":
		return kbtable.Baseline, "baseline", nil
	case "auto":
		return kbtable.Auto, "auto", nil
	}
	return 0, "", fmt.Errorf("unknown algorithm %q (want patternenum, linearenum, baseline or auto)", s)
}

// wireName is parseAlgorithm's inverse for resolved algorithms.
func wireName(a kbtable.Algorithm) string {
	switch a {
	case kbtable.LinearEnum:
		return "linearenum"
	case kbtable.Baseline:
		return "baseline"
	case kbtable.Auto:
		return "auto"
	}
	return "patternenum"
}

// normalizeQuery canonicalizes a query through the engine's own
// tokenization: lowercased maximal letter/digit runs joined by single
// spaces. Punctuation the tokenizer drops never reaches the cache key, so
// "foo," and "foo" (and every punctuation variant between them) occupy
// ONE cache entry instead of fragmenting the result cache. Keyword order
// is preserved: it determines answer column order.
func normalizeQuery(q string) string {
	return kbtable.NormalizeQuery(q)
}

// normalizeRequest canonicalizes a request before it reaches the cache
// key: the query's whitespace and case fold, and the K/D/MaxRows defaults
// are applied, so logically identical requests — {"k":0} and {"k":10},
// "  Foo  Bar" and "foo bar" — occupy ONE cache entry. Validation that
// depends on the normalized values (limits, the engine's d) happens here
// too. Returns an HTTP error message and status, or status 0 when valid.
func (s *Server) normalizeRequest(req *SearchRequest) (string, int) {
	req.Query = normalizeQuery(req.Query)
	if req.Query == "" {
		return "query must not be empty", http.StatusBadRequest
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > s.cfg.MaxK {
		return fmt.Sprintf("k=%d exceeds the maximum %d", req.K, s.cfg.MaxK), http.StatusBadRequest
	}
	if req.D == 0 {
		req.D = s.cfg.D
	}
	if req.D != s.cfg.D {
		return fmt.Sprintf("this engine is indexed for d=%d, not d=%d", s.cfg.D, req.D), http.StatusBadRequest
	}
	if req.MaxRows <= 0 {
		req.MaxRows = s.cfg.MaxRows
	}
	if req.Algorithm == "" {
		req.Algorithm = s.cfg.DefaultAlgorithm
	}
	if msg := checkAutoBias(req.AutoBias); msg != "" {
		return msg, http.StatusBadRequest
	}
	return "", 0
}

// checkAutoBias validates the auto_bias request field: 0 means "planner
// default", any positive finite value is a legal crossover override, and
// everything else (negative, NaN, ±Inf) would silently corrupt the
// planner's comparison, so it is rejected up front. Returns an error
// message, or "" when valid.
func checkAutoBias(b float64) string {
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return fmt.Sprintf("auto_bias must be a finite non-negative number, got %v", b)
	}
	return ""
}

// cacheKey identifies one (query, options) result in the LRU. algo is the
// *resolved* algorithm name: an "auto" request whose plan resolves to
// patternenum shares its entry with explicit patternenum requests (the
// answers are bit-identical by the planner's equivalence guarantee).
//
// The variable-length fields are length-prefixed, making the encoding
// injective: a query containing the field separator (or any future algo
// name) can never re-parse as a different (query, algo) split the way a
// plain join would ("a|b"+"c" vs "a"+"b|c"). The numeric tail needs no
// prefixes — "|%d" never contains another separator.
func cacheKey(query, algo string, k, d, maxRows int) string {
	return fmt.Sprintf("%d:%s|%d:%s|%d|%d|%d", len(query), query, len(algo), algo, k, d, maxRows)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	if !requireJSON(w, r) {
		return
	}
	var req SearchRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.PreparedID != "" {
		s.servePrepared(w, r, &req)
		return
	}
	if msg, status := s.normalizeRequest(&req); status != 0 {
		writeError(w, status, api.CodeBadRequest, msg)
		return
	}
	algo, algoName, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	prioName := r.Header.Get("X-KB-Priority")
	if prioName == "" {
		prioName = req.Priority
	}
	prio, err := parsePriority(prioName)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}

	// Admission control: hold an execution slot for the rest of the
	// request. Under overload the wait is bounded and the queue finite,
	// so excess load turns into prompt 429s the client can back off on.
	if s.gate != nil {
		if err := s.gate.acquire(r.Context(), prio, s.cfg.QueueTimeout); err != nil {
			switch {
			case errors.Is(err, errShedFull), errors.Is(err, errShedTimeout):
				writeShed(w, err.Error())
			default:
				writeError(w, http.StatusServiceUnavailable, api.CodeCanceled, "request canceled while queued")
			}
			return
		}
		defer s.gate.release()
	}

	// Pin this request to the currently published snapshot: even if an
	// update lands mid-query, we keep searching (and report) this epoch.
	st := s.cur.Load()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	opts := kbtable.SearchOptions{
		K:               req.K,
		Algorithm:       algo,
		MaxRowsPerTable: req.MaxRows,
		AutoBias:        req.AutoBias,
	}

	// Resolve "auto" before touching the cache: the planner names the
	// algorithm the query would run as, the cache is keyed under that
	// name, and execution (on a miss) requests it explicitly — so auto
	// answers share entries with explicit requests in both directions,
	// and are byte-identical to them. Engines without a planner run
	// "auto" end to end and key under "auto" (no sharing, still correct).
	// The probe repeats prepare-stage lookups that a miss's execution
	// redoes; that double work is the price of knowing the key before the
	// lookup, and is small next to enumeration (it is exactly the
	// prepare_ms share of the plan's stage timings).
	var chosen *kbtable.PlanInfo
	if algo == kbtable.Auto {
		s.autoRequests.Add(1)
		if s.abias != nil && opts.AutoBias == 0 {
			// Adaptive feedback: requests without an explicit bias run
			// under the learned crossover. The bias steers only the PE/LE
			// choice — the resolved algorithm still keys the cache, so a
			// drifting bias can never serve mismatched bytes.
			opts.AutoBias = s.abias.Effective()
		}
		if st.plans != nil {
			var pi kbtable.PlanInfo
			var err error
			if dist := s.distributor(st); dist != nil {
				// Coordinator mode: the prepare-stage probe scatters to
				// the owner nodes (a plan-cache hit skips it entirely).
				pi, err = st.dist.PlanDistributed(s.pinSeq(ctx, st), dist, req.Query, opts)
			} else {
				pi, err = st.plans.Plan(ctx, req.Query, opts)
			}
			if err != nil {
				s.writeSearchError(w, err)
				return
			}
			chosen = &pi
			algo, algoName = pi.Algorithm, wireName(pi.Algorithm)
			opts.Algorithm = algo
			if algo == kbtable.LinearEnum {
				s.autoChoseLE.Add(1)
			} else {
				s.autoChosePE.Add(1)
			}
		}
	}

	key := cacheKey(req.Query, algoName, req.K, req.D, req.MaxRows)
	if hit, ok := s.cache.Get(key); ok {
		resp := *hit.resp // shallow copy: answers are shared read-only
		resp.Cached = true
		// The plan must reflect THIS request, not whichever request
		// populated the shared entry: an auto hit carries this request's
		// planner decision and probe statistics, an explicit hit carries
		// neither, even when the entry was computed the other way
		// around. Stage timings stay those of the run that computed it.
		resp.Plan = personalizePlan(resp.Plan, chosen)
		writeJSON(w, http.StatusOK, &resp)
		return
	}

	// Read coalescing: identical concurrent misses — same cache key AND
	// same pinned epoch — share one execution. The epoch in the flight
	// key keeps the freshness contract intact: a request that loaded
	// epoch N+1 never receives bytes computed on epoch N.
	flightKey := fmt.Sprintf("%d|%s", st.epoch, key)
	resp, joined, err := s.flights.do(ctx, flightKey, func() (*SearchResponse, error) {
		// The leader runs detached from its own request context:
		// followers depend on this execution, so one impatient client
		// disconnecting must not fail everyone sharing the flight.
		lctx, lcancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
		defer lcancel()

		t0 := time.Now()
		var answers []kbtable.Answer
		var plan *PlanOut
		var lerr error
		if dist := s.distributor(st); dist != nil {
			// Coordinator mode: scatter the per-shard legs to owner
			// nodes and gather their partials on the local engine —
			// bit-identical to SearchPlan by the Theorem-5 fold, with
			// failed legs re-executed locally inside the engine.
			var pi kbtable.PlanInfo
			answers, pi, lerr = st.dist.SearchDistributed(s.pinSeq(lctx, st), dist, req.Query, opts)
			if lerr == nil {
				if chosen != nil {
					pi.Auto, pi.Reason = true, chosen.Reason
					pi.CandidateRoots = chosen.CandidateRoots
					pi.RootTypes = chosen.RootTypes
					pi.PatternSpace = chosen.PatternSpace
					pi.Frontier = chosen.Frontier
				}
				s.observePlan(pi)
				plan = planOut(pi)
			}
		} else if st.plans != nil {
			var pi kbtable.PlanInfo
			answers, pi, lerr = st.plans.SearchPlan(lctx, req.Query, opts)
			if lerr == nil {
				if chosen != nil {
					// The run executed the resolved algorithm explicitly;
					// surface the planner's decision and the (richer)
					// statistics it was based on, keeping the run's timings.
					pi.Auto, pi.Reason = true, chosen.Reason
					pi.CandidateRoots = chosen.CandidateRoots
					pi.RootTypes = chosen.RootTypes
					pi.PatternSpace = chosen.PatternSpace
					pi.Frontier = chosen.Frontier
				}
				s.observePlan(pi)
				plan = planOut(pi)
			}
		} else {
			answers, lerr = st.eng.SearchContext(lctx, req.Query, opts)
		}
		if lerr != nil {
			return nil, lerr
		}

		resp := &SearchResponse{
			Query:     req.Query,
			K:         req.K,
			Algorithm: algoName,
			D:         req.D,
			Epoch:     st.epoch,
			ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
			Plan:      plan,
			Answers:   wireAnswers(answers),
		}
		ent := &cacheEntry{resp: resp}
		if st.words != nil {
			ent.words = st.words.QueryWords(req.Query)
		}
		s.cachePut(st.epoch, key, ent)
		return resp, nil
	})
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	if joined {
		// A follower shares the leader's bytes but not its request
		// shape: copy, mark, and personalize the plan exactly like a
		// cache hit (the flight's response is shared read-only).
		s.metrics.coalesced.Add(1)
		out := *resp
		out.Coalesced = true
		out.Plan = personalizePlan(out.Plan, chosen)
		writeJSON(w, http.StatusOK, &out)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// personalizePlan adapts a shared (cached or coalesced) response's plan
// to the requesting side's planner decision: chosen non-nil marks an
// auto request and grafts its probe statistics, nil marks an explicit
// request. The input is not mutated.
func personalizePlan(plan *PlanOut, chosen *kbtable.PlanInfo) *PlanOut {
	if plan == nil {
		return nil
	}
	p := *plan
	if chosen != nil {
		p.Auto, p.Reason = true, chosen.Reason
		p.CandidateRoots, p.RootTypes = chosen.CandidateRoots, chosen.RootTypes
		p.PatternSpace, p.Frontier = chosen.PatternSpace, chosen.Frontier
	} else {
		p.Auto, p.Reason = false, ""
	}
	return &p
}

// wireAnswers converts engine answers to the wire form.
func wireAnswers(answers []kbtable.Answer) []SearchAnswer {
	out := make([]SearchAnswer, 0, len(answers))
	for _, a := range answers {
		out = append(out, SearchAnswer{
			Rank:        a.Rank,
			Score:       a.Score,
			NumRows:     a.NumRows,
			Pattern:     a.Pattern,
			Columns:     a.Columns,
			FullColumns: a.FullColumns,
			Rows:        a.Rows,
		})
	}
	return out
}

// distributor returns the configured cluster executor when this engine
// state can scatter-gather through it, nil otherwise.
func (s *Server) distributor(st *engineState) kbtable.ShardExecutor {
	if s.cfg.Distributor == nil || st.dist == nil {
		return nil
	}
	return s.cfg.Distributor
}

// pinSeq stamps the pinned engine state's WAL position onto ctx so the
// cluster transport can demand owner nodes at exactly that position
// (api.SeqFrom on the other side), keeping every scattered leg on the
// same snapshot this request is answering from.
func (s *Server) pinSeq(ctx context.Context, st *engineState) context.Context {
	if st.dur != nil {
		return api.WithSeq(ctx, st.dur.Seq())
	}
	return ctx
}

// observePlan folds one executed query's plan into the server's
// execution-side accounting: the bound-pruned counter and, when enabled,
// the adaptive-bias accumulator. Only runs that actually enumerated call
// it — cache hits and coalesced followers carry another run's timings.
func (s *Server) observePlan(pi kbtable.PlanInfo) {
	s.boundPruned.Add(pi.BoundPruned)
	if s.abias != nil {
		s.abias.Observe(pi)
	}
}

// handlePrepare runs the prepare stage for a query and registers a
// handle for repeated execution via /search {"prepared_id": ...}.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	if !requireJSON(w, r) {
		return
	}
	var preq PrepareRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&preq); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	req := SearchRequest{
		Query:     preq.Query,
		K:         preq.K,
		Algorithm: preq.Algorithm,
		D:         preq.D,
		MaxRows:   preq.MaxRows,
		AutoBias:  preq.AutoBias,
	}
	if msg, status := s.normalizeRequest(&req); status != 0 {
		writeError(w, status, api.CodeBadRequest, msg)
		return
	}
	algo, algoName, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if algo == kbtable.Baseline {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "baseline has no prepare stage and cannot be prepared")
		return
	}
	req.Algorithm = algoName

	st := s.cur.Load()
	if st.preps == nil {
		writeError(w, http.StatusNotImplemented, api.CodeNotImplemented, "this engine does not support prepared queries")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	pq, err := st.preps.PrepareContext(ctx, req.Query, kbtable.SearchOptions{
		K:               req.K,
		Algorithm:       algo,
		MaxRowsPerTable: req.MaxRows,
		AutoBias:        req.AutoBias,
	})
	if err != nil {
		s.writeSearchError(w, err)
		return
	}

	// Register under preparedMu, re-checking the published epoch inside
	// the same critical section the invalidation pass uses: if an update
	// published while we prepared, the handle answers from a superseded
	// snapshot and must not be handed out.
	s.preparedMu.Lock()
	if s.cur.Load().epoch != st.epoch {
		s.preparedMu.Unlock()
		writeError(w, http.StatusConflict, api.CodeStaleEpoch, "knowledge base updated during prepare; retry")
		return
	}
	s.preparedSeq++
	h := &preparedHandle{
		id:    fmt.Sprintf("p%d-%d", st.epoch, s.preparedSeq),
		epoch: st.epoch,
		req:   req,
		auto:  algo == kbtable.Auto,
		pq:    pq,
	}
	s.preparedByID[h.id] = h
	s.preparedMu.Unlock()
	s.prepares.Add(1)

	writeJSON(w, http.StatusOK, &PrepareResponse{
		ID:        h.id,
		Epoch:     h.epoch,
		Query:     req.Query,
		K:         req.K,
		Algorithm: algoName,
		D:         req.D,
		MaxRows:   req.MaxRows,
		Plan:      planOut(pq.Plan()),
	})
}

// servePrepared answers a /search carrying prepared_id: look the handle
// up, execute only enumerate → aggregate → rank on the snapshot it was
// prepared against, and bypass the result cache and read coalescing (the
// execution IS the fast path). Admission control still applies.
func (s *Server) servePrepared(w http.ResponseWriter, r *http.Request, req *SearchRequest) {
	if req.Query != "" || req.Algorithm != "" || req.K != 0 || req.D != 0 || req.MaxRows != 0 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "prepared_id fixes query/k/algorithm/d/max_rows at prepare time; only auto_bias and priority may accompany it")
		return
	}
	if msg := checkAutoBias(req.AutoBias); msg != "" {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, msg)
		return
	}
	prioName := r.Header.Get("X-KB-Priority")
	if prioName == "" {
		prioName = req.Priority
	}
	prio, err := parsePriority(prioName)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if s.gate != nil {
		if err := s.gate.acquire(r.Context(), prio, s.cfg.QueueTimeout); err != nil {
			switch {
			case errors.Is(err, errShedFull), errors.Is(err, errShedTimeout):
				writeShed(w, err.Error())
			default:
				writeError(w, http.StatusServiceUnavailable, api.CodeCanceled, "request canceled while queued")
			}
			return
		}
		defer s.gate.release()
	}

	s.preparedMu.Lock()
	h := s.preparedByID[req.PreparedID]
	s.preparedMu.Unlock()
	if h == nil {
		writeError(w, http.StatusGone, api.CodePreparedGone, fmt.Sprintf("unknown or expired prepared query %q: POST /prepare again on the current epoch", req.PreparedID))
		return
	}

	bias := h.req.AutoBias
	if req.AutoBias != 0 {
		bias = req.AutoBias
	}
	if h.auto && bias == 0 && s.abias != nil {
		bias = s.abias.Effective()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	t0 := time.Now()
	answers, pi, err := h.pq.SearchBias(ctx, bias)
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	s.observePlan(pi)
	s.preparedSearches.Add(1)
	writeJSON(w, http.StatusOK, &SearchResponse{
		Query:      h.req.Query,
		K:          h.req.K,
		Algorithm:  wireName(pi.Algorithm),
		D:          h.req.D,
		Epoch:      h.epoch,
		PreparedID: h.id,
		ElapsedMS:  float64(time.Since(t0).Microseconds()) / 1000,
		Plan:       planOut(pi),
		Answers:    wireAnswers(answers),
	})
}

// dropPrepared expires every prepared handle bound to a superseded
// epoch. Called after each epoch publish; a prepare racing the publish
// either registered before (and is dropped here) or re-checks the epoch
// under the same mutex and refuses to register.
func (s *Server) dropPrepared() {
	cur := s.cur.Load().epoch
	s.preparedMu.Lock()
	for id, h := range s.preparedByID {
		if h.epoch != cur {
			delete(s.preparedByID, id)
			s.preparedExpired.Add(1)
		}
	}
	s.preparedMu.Unlock()
}

// writeSearchError maps a search failure onto an HTTP status.
func (s *Server) writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout, "query timed out")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, api.CodeCanceled, "request canceled")
	default:
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
	}
}

// cachePut inserts a computed result unless its epoch has been superseded.
// The read-lock excludes the invalidate-and-publish critical section: if
// the published epoch still equals the computing epoch, the next update's
// invalidation pass has not run yet and will see (and judge) this entry;
// if it no longer does, the invalidation already ran and inserting would
// smuggle a stale result past it, so the insert is dropped.
func (s *Server) cachePut(epoch uint64, key string, ent *cacheEntry) {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	if s.cur.Load().epoch == epoch {
		s.cache.Put(key, ent)
	}
}

// handleUpdate applies an atomic batch of KB mutations and publishes the
// next epoch. Updates are serialized; searches are never blocked — they
// run on the old snapshot until the new one is atomically swapped in, and
// only cached entries whose query words the update touched are dropped.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	if !requireJSON(w, r) {
		return
	}
	if s.cfg.ReadOnly {
		writeError(w, http.StatusNotImplemented, api.CodeReadOnly, "this server is read-only")
		return
	}
	var req UpdateRequest
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "update has no ops")
		return
	}
	if len(req.Ops) > s.cfg.MaxUpdateOps {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("update has %d ops, limit is %d", len(req.Ops), s.cfg.MaxUpdateOps))
		return
	}

	resp, err := s.applyUpdate(kbtable.Update{Ops: req.Ops})
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errEngineReadOnly):
		writeError(w, http.StatusNotImplemented, api.CodeReadOnly, err.Error())
	case errors.Is(err, kbtable.ErrDurability):
		// The batch was valid but could not be persisted; nothing was
		// published, and the store refuses further appends.
		writeError(w, http.StatusServiceUnavailable, api.CodeDurability, err.Error())
	default:
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
	}
}

// errEngineReadOnly reports an apply on an engine without an update
// surface (distinct from Config.ReadOnly, which gates only the handler).
var errEngineReadOnly = errors.New("this engine does not support updates")

// Apply applies one update batch through the full serving pipeline —
// in-order epoch publish, word-precise cache invalidation, prepared
// handle expiry, durability when configured — exactly like POST
// /v1/update, and returns the newly published epoch. It is the
// replication entry point: a follower node replays WAL records shipped
// from its coordinator through Apply so every serving invariant holds
// on followers too. Config.ReadOnly does not gate Apply.
func (s *Server) Apply(u kbtable.Update) (uint64, error) {
	resp, err := s.applyUpdate(u)
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// applyUpdate is the shared update pipeline behind POST /v1/update and
// Apply.
func (s *Server) applyUpdate(u kbtable.Update) (*UpdateResponse, error) {
	// Apply in memory on the newest state in the chain — published or
	// not. applyMu serializes only the (fast, copy-on-write) apply and
	// the WAL enqueue; the fsync happens after it is released, so
	// concurrent updates overlap their applies with each other's fsyncs
	// and the store group-commits their WAL records together.
	s.applyMu.Lock()
	base := s.tail
	if base == nil {
		base = s.cur.Load()
	}
	if base.upd == nil {
		s.applyMu.Unlock()
		return nil, errEngineReadOnly
	}
	t0 := time.Now()
	var newEng *kbtable.Engine
	var res kbtable.UpdateResult
	var commit *kbtable.Commit
	var err error
	durable := s.cfg.Store != nil && base.dur != nil
	switch {
	case durable && base.durAsync != nil:
		// Pipelined durable path: the accepted batch still reaches the
		// write-ahead log (fsync) before the epoch swap publishes it —
		// commit.Wait() below resolves before publication — so by the
		// time any search can observe this update, a crash can no
		// longer lose it. The wait just no longer serializes fsyncs.
		newEng, res, commit, err = base.durAsync.ApplyLoggedAsync(s.cfg.Store, u)
	case durable:
		// Serial durable fallback (engines exposing only ApplyLogged):
		// apply + fsync under applyMu, exactly the pre-group-commit path.
		newEng, res, err = base.dur.ApplyLogged(s.cfg.Store, u)
	default:
		newEng, res, err = base.upd.ApplyUpdate(u)
	}
	if err != nil {
		s.applyMu.Unlock()
		return nil, err
	}
	next := &engineState{eng: newEng, upd: newEng, words: newEng, shards: newEng, plans: newEng, preps: newEng, dist: newEng, epoch: base.epoch + 1}
	if base.dur != nil {
		// Durability stays engaged only when the whole chain was durable:
		// an engine wrapped by a non-durable fake produced an unlogged
		// first update, so logging later ones would leave a WAL that
		// replays into a different history.
		next.dur = newEng
	}
	if base.durAsync != nil {
		next.durAsync = newEng
	}
	s.tail = next
	s.applyMu.Unlock()

	if commit != nil {
		if _, err := commit.Wait(); err != nil {
			// The batch never became durable: unpublish the poisoned
			// chain so later applies rebase off the published state.
			// Every WAL record enqueued after this one fails too (the
			// store is read-only after an append failure), so no handler
			// downstream of this epoch is left waiting to publish.
			s.applyMu.Lock()
			s.tail = nil
			s.applyMu.Unlock()
			return nil, err
		}
	}

	touched := make(map[string]bool, len(res.TouchedWords))
	for _, wd := range res.TouchedWords {
		touched[wd] = true
	}
	// Publish strictly in epoch order: a handler whose predecessor is
	// still fsyncing parks here until that epoch lands, so searches
	// observe epochs 1, 2, 3, … with no gaps and every response's epoch
	// matches exactly the update history it reflects.
	s.pubMu.Lock()
	for s.cur.Load().epoch+1 != next.epoch {
		s.pubCond.Wait()
	}
	s.swapMu.Lock()
	invalidated := s.cache.DeleteFunc(func(_ string, ent *cacheEntry) bool {
		if res.ScoresRefreshed {
			// PageRank moved globally: no cached answer is provably
			// unchanged, word precision does not apply.
			return true
		}
		if ent.words == nil {
			return true // untagged: cannot prove it unaffected
		}
		for _, wd := range ent.words {
			if touched[wd] {
				return true
			}
		}
		return false
	})
	s.cur.Store(next)
	s.swapMu.Unlock()
	s.pubCond.Broadcast()
	s.pubMu.Unlock()
	// Prepared handles are bound to their snapshot: every one from a
	// superseded epoch now answers 410 and the client re-prepares.
	s.dropPrepared()
	s.updates.Add(1)
	s.maybeCheckpoint()

	ids := make([]int64, 0, len(res.NewEntities))
	for _, id := range res.NewEntities {
		ids = append(ids, int64(id))
	}
	return &UpdateResponse{
		Epoch:            next.epoch,
		NewEntities:      ids,
		Entities:         res.Entities,
		Attributes:       res.Attributes,
		EntriesRemoved:   res.EntriesRemoved,
		EntriesAdded:     res.EntriesAdded,
		DirtyRoots:       res.DirtyRoots,
		TouchedWords:     len(res.TouchedWords),
		InvalidatedCache: invalidated,
		AffectedShards:   res.AffectedShards,
		ElapsedMS:        float64(time.Since(t0).Microseconds()) / 1000,
	}, nil
}

// maybeCheckpoint starts a background checkpoint when the WAL has
// grown CheckpointEvery records past the last snapshot. At most one
// checkpoint runs at a time; the engine snapshot it serializes is
// immutable, so searches and further updates are never blocked (the
// WAL suffix appended meanwhile simply survives the truncation).
func (s *Server) maybeCheckpoint() {
	if s.cfg.Store == nil || s.cfg.CheckpointEvery < 0 {
		return
	}
	st := s.cur.Load()
	if st.dur == nil {
		return
	}
	ss := s.cfg.Store.Stats()
	seq := st.dur.Seq()
	if seq < ss.SnapshotSeq {
		// The engine is behind the store's snapshot (a Config pairing an
		// engine with a store it was not recovered from). Unsigned
		// subtraction would wrap and fire a doomed checkpoint on every
		// update; there is nothing useful to snapshot, so stand down.
		return
	}
	if seq-ss.SnapshotSeq < uint64(s.cfg.CheckpointEvery) {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return // one goroutine at a time; the next update re-evaluates
	}
	go func() {
		defer s.ckptBusy.Store(false)
		_ = s.runCheckpoint()
	}()
}

// runCheckpoint serializes the CURRENT engine into the store and
// maintains the /healthz counters. The run mutex orders concurrent
// callers (background goroutine vs shutdown's CheckpointNow), and the
// published engine is loaded inside it: the second runner then sees a
// seq >= the snapshot the first one wrote, so it either skips or
// checkpoints strictly newer state — never a spurious regression error
// or a double count.
func (s *Server) runCheckpoint() error {
	s.ckptRunMu.Lock()
	defer s.ckptRunMu.Unlock()
	st := s.cur.Load()
	if st.dur == nil {
		return nil
	}
	cs, err := st.dur.Checkpoint(s.cfg.Store)
	if err != nil {
		s.ckptErrors.Add(1)
		return err
	}
	if !cs.Skipped {
		s.checkpoints.Add(1)
		s.lastCkptUnix.Store(time.Now().Unix())
	}
	return nil
}

// CheckpointNow synchronously checkpoints the currently published
// engine (kbserve calls it on graceful shutdown, so a clean restart
// replays no WAL). Without a store or a durable engine it is a no-op.
func (s *Server) CheckpointNow() error {
	if s.cfg.Store == nil {
		return nil
	}
	return s.runCheckpoint()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	st := s.cur.Load()
	resp := &HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Epoch:         st.epoch,
		Updates:       s.updates.Load(),
		Updatable:     st.upd != nil && !s.cfg.ReadOnly,
		Cache:         s.cache.Stats(),
		Planner: PlannerHealth{
			AutoRequests:     s.autoRequests.Load(),
			ChosePatternEnum: s.autoChosePE.Load(),
			ChoseLinearEnum:  s.autoChoseLE.Load(),
			Prepared: PreparedHealth{
				Live:     s.preparedLive(),
				Prepares: s.prepares.Load(),
				Searches: s.preparedSearches.Load(),
				Expired:  s.preparedExpired.Load(),
			},
		},
		Serving: ServingHealth{Coalesced: s.metrics.coalesced.Load()},
	}
	if pcs, ok := st.eng.(planCacheStatser); ok {
		if cs := pcs.PlanCacheStats(); cs.Capacity > 0 {
			resp.Planner.PlanCache = &PlanCacheHealth{
				Size:        cs.Size,
				Capacity:    cs.Capacity,
				Epoch:       cs.Epoch,
				Hits:        cs.Hits,
				Misses:      cs.Misses,
				Invalidated: cs.Invalidated,
			}
		}
	}
	if s.abias != nil {
		bs := s.abias.Stats()
		resp.Planner.AdaptiveBias = &AdaptiveBiasHealth{
			Base:           bs.Base,
			Effective:      bs.Effective,
			PEObservations: bs.PEObservations,
			LEObservations: bs.LEObservations,
			PENsPerUnit:    bs.PENsPerUnit,
			LENsPerUnit:    bs.LENsPerUnit,
		}
	}
	if s.gate != nil {
		resp.Serving.MaxConcurrent = s.cfg.MaxConcurrent
		resp.Serving.InFlight, resp.Serving.QueueDepth = s.gate.depth()
		resp.Serving.ShedQueueFull = s.gate.shedFull.Load()
		resp.Serving.ShedQueueTimeout = s.gate.shedTimeout.Load()
	}
	if is, ok := st.eng.(indexStatser); ok {
		ixs := is.IndexStats()
		resp.Index = &IndexHealth{
			Bytes:         ixs.Bytes,
			BytesPerEntry: ixs.BytesPerEntry,
			Entries:       ixs.Entries,
			Patterns:      ixs.Patterns,
			D:             ixs.D,
		}
	}
	if st.shards != nil {
		info := st.shards.ShardInfo()
		resp.Shards = &ShardHealth{
			Count:   info.Count,
			Epochs:  info.Epochs,
			Roots:   info.Roots,
			Entries: info.Entries,
		}
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		resp.Durability = &DurabilityHealth{
			DataDir:             ss.Dir,
			WALSeq:              ss.LastSeq,
			SnapshotSeq:         ss.SnapshotSeq,
			PendingRecords:      ss.LastSeq - ss.SnapshotSeq,
			WALBytes:            ss.WALBytes,
			Checkpoints:         s.checkpoints.Load(),
			CheckpointErrors:    s.ckptErrors.Load(),
			CheckpointEvery:     s.cfg.CheckpointEvery,
			LastCheckpointUnix:  s.lastCkptUnix.Load(),
			TornOnOpen:          ss.TornOnOpen,
			WALBroken:           ss.Broken,
			GroupCommitBatches:  ss.GroupCommitBatches,
			GroupCommitRecords:  ss.GroupCommitRecords,
			GroupCommitMaxBatch: ss.GroupCommitMaxBatch,
		}
		if ss.Broken {
			resp.Status = "degraded"
		}
	}
	if s.cfg.Cluster != nil {
		resp.Cluster = s.cfg.Cluster()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShards reports which shards this node hosts and at what WAL
// sequence — the membership probe a coordinator or operator uses to
// check a node's role and replication progress. v1-only (no legacy
// alias: the endpoint postdates the unversioned API).
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	st := s.cur.Load()
	resp := &api.ShardsResponse{Epoch: st.epoch, Role: "standalone"}
	if so, ok := st.eng.(shardOwner); ok {
		resp.Owned = so.OwnedShards()
		resp.Complete = so.Complete()
	}
	if st.shards != nil {
		resp.Shards = st.shards.ShardInfo().Count
	}
	if st.dur != nil {
		resp.Seq = st.dur.Seq()
	}
	if s.cfg.Cluster != nil {
		if ch := s.cfg.Cluster(); ch != nil {
			resp.Role, resp.NodeID = ch.Role, ch.NodeID
			if ch.Seq > resp.Seq {
				resp.Seq = ch.Seq
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWALSegments streams committed WAL records after a sequence
// cursor — the replication pull a follower replays through Apply.
// Responses are bounded (max records per pull) and More tells the
// follower to pull again immediately instead of sleeping. A cursor
// older than the retained history (checkpoint truncated it away)
// answers 410 wal_gap: the follower must reseed from a snapshot.
func (s *Server) handleWALSegments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, api.CodeNotImplemented, "this server has no write-ahead log")
		return
	}
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad after cursor: "+err.Error())
			return
		}
		after = n
	}
	max := 256
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad max: must be a positive integer")
			return
		}
		max = n
	}
	recs, err := s.cfg.Store.ReadWAL(after, max)
	if err != nil {
		if errors.Is(err, kbtable.ErrWALGap) {
			writeError(w, http.StatusGone, api.CodeWALGap, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	if recs == nil {
		recs = []kbtable.WALRecord{}
	}
	resp := &api.WALSegmentsResponse{After: after, Records: recs}
	if len(recs) > 0 {
		resp.LastSeq = recs[len(recs)-1].Seq
		resp.More = resp.LastSeq < s.cfg.Store.Stats().LastSeq
	} else {
		resp.LastSeq = after
	}
	writeJSON(w, http.StatusOK, resp)
}

// preparedLive counts the currently registered prepared handles.
func (s *Server) preparedLive() int {
	s.preparedMu.Lock()
	defer s.preparedMu.Unlock()
	return len(s.preparedByID)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the structured error envelope: a stable machine
// code (api.Code*) plus human-readable detail.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.ErrorResponse{Error: api.ErrorBody{Code: code, Message: msg}})
}

// writeShed writes the 429 shed envelope with its retry hint in both
// the Retry-After header (seconds) and the body (milliseconds).
func writeShed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, api.ErrorResponse{
		Error: api.ErrorBody{Code: api.CodeShed, Message: msg, RetryAfterMS: 1000},
	})
}

// requireJSON rejects a POST whose declared Content-Type is something
// other than JSON (an absent header is accepted for curl-friendliness).
// Returns false after writing the 415 envelope.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt := strings.TrimSpace(strings.ToLower(strings.SplitN(ct, ";", 2)[0]))
	if mt == "application/json" || strings.HasSuffix(mt, "+json") {
		return true
	}
	writeError(w, http.StatusUnsupportedMediaType, api.CodeBadRequest,
		fmt.Sprintf("unsupported content type %q: use application/json", ct))
	return false
}
