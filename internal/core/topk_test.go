package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	q := NewTopK[string](2)
	q.Offer(1, "a", "A")
	q.Offer(3, "c", "C")
	q.Offer(2, "b", "B")
	if got := q.Results(); !reflect.DeepEqual(got, []string{"C", "B"}) {
		t.Errorf("Results = %v", got)
	}
	if got := q.ResultScores(); !reflect.DeepEqual(got, []float64{3, 2}) {
		t.Errorf("Scores = %v", got)
	}
}

func TestTopKTieBreakByKey(t *testing.T) {
	q := NewTopK[string](2)
	q.Offer(1, "z", "Z")
	q.Offer(1, "a", "A")
	q.Offer(1, "m", "M")
	// All score 1: keep the two smallest keys, ordered ascending.
	if got := q.Results(); !reflect.DeepEqual(got, []string{"A", "M"}) {
		t.Errorf("Results = %v", got)
	}
}

func TestTopKZero(t *testing.T) {
	q := NewTopK[int](0)
	if q.Offer(5, "x", 1) {
		t.Errorf("k=0 should reject everything")
	}
	if q.Len() != 0 || len(q.Results()) != 0 {
		t.Errorf("k=0 should stay empty")
	}
	if q.WouldAccept(100) {
		t.Errorf("k=0 should not accept")
	}
}

func TestTopKWouldAccept(t *testing.T) {
	q := NewTopK[int](1)
	if !q.WouldAccept(0) {
		t.Errorf("empty queue accepts anything")
	}
	q.Offer(5, "a", 1)
	if q.WouldAccept(4) {
		t.Errorf("score below min should not be accepted")
	}
	if !q.WouldAccept(5) || !q.WouldAccept(6) {
		t.Errorf("score >= min should be considered")
	}
}

func TestTopKDeterministicUnderPermutation(t *testing.T) {
	items := make([]topkItem[int], 50)
	for i := range items {
		items[i] = topkItem[int]{score: float64(i % 7), key: fmt.Sprintf("k%02d", i), val: i}
	}
	ref := NewTopK[int](10)
	for _, it := range items {
		ref.Offer(it.score, it.key, it.val)
	}
	want := ref.Results()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(items))
		q := NewTopK[int](10)
		for _, i := range perm {
			q.Offer(items[i].score, items[i].key, items[i].val)
		}
		if got := q.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation changed results: %v vs %v", got, want)
		}
	}
}

// TestTopKMatchesSort cross-checks the heap against a full sort on random
// inputs (property-based).
func TestTopKMatchesSort(t *testing.T) {
	f := func(scores []float64, k8 uint8) bool {
		k := int(k8%20) + 1
		type pair struct {
			s float64
			k string
		}
		var all []pair
		q := NewTopK[string](k)
		for i, s := range scores {
			key := fmt.Sprintf("key%03d", i)
			q.Offer(s, key, key)
			all = append(all, pair{s, key})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].s != all[j].s {
				return all[i].s > all[j].s
			}
			return all[i].k < all[j].k
		})
		want := []string{}
		for i := 0; i < len(all) && i < k; i++ {
			want = append(want, all[i].k)
		}
		got := q.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
