package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteCSV writes the table as RFC-4180 CSV with a header row.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		head[i] = c.Name
	}
	if err := cw.Write(head); err != nil {
		return fmt.Errorf("core: write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("core: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the JSON shape of a table answer.
type tableJSON struct {
	Columns     []string   `json:"columns"`
	FullColumns []string   `json:"fullColumns"`
	Rows        [][]string `json:"rows"`
}

// WriteJSON writes the table as a JSON object with columns, formal column
// names and rows.
func (t Table) WriteJSON(w io.Writer) error {
	out := tableJSON{Rows: t.Rows}
	if out.Rows == nil {
		out.Rows = [][]string{}
	}
	for _, c := range t.Columns {
		out.Columns = append(out.Columns, c.Name)
		out.FullColumns = append(out.FullColumns, c.Full)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("core: write json: %w", err)
	}
	return nil
}

// Markdown renders the table as a GitHub-flavored Markdown table with at
// most maxRows rows (negative = all). Pipe characters in cells are escaped.
func (t Table) Markdown(maxRows int) string {
	if len(t.Columns) == 0 {
		return "*(empty table)*\n"
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	var sb strings.Builder
	sb.WriteByte('|')
	for _, c := range t.Columns {
		sb.WriteString(" " + esc(c.Name) + " |")
	}
	sb.WriteByte('\n')
	sb.WriteByte('|')
	for range t.Columns {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	n := len(t.Rows)
	if maxRows >= 0 && n > maxRows {
		n = maxRows
	}
	for _, row := range t.Rows[:n] {
		sb.WriteByte('|')
		for _, cell := range row {
			sb.WriteString(" " + esc(cell) + " |")
		}
		sb.WriteByte('\n')
	}
	if n < len(t.Rows) {
		fmt.Fprintf(&sb, "\n*(%d more rows)*\n", len(t.Rows)-n)
	}
	return sb.String()
}
