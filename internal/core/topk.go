package core

import (
	"container/heap"
	"sort"
)

// TopK keeps the k highest-scoring items seen so far. Ranking is by score
// descending with ties broken by key ascending, so results are
// deterministic across runs regardless of insertion order. Insertion is
// O(log k) per the paper's Exp-IV analysis.
type TopK[T any] struct {
	k     int
	items topkHeap[T]
}

type topkItem[T any] struct {
	score float64
	key   string
	val   T
}

// topkHeap is a min-heap: the root is the *worst* retained item.
type topkHeap[T any] []topkItem[T]

func (h topkHeap[T]) Len() int { return len(h) }
func (h topkHeap[T]) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].key > h[j].key // larger key = worse on ties
}
func (h topkHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *topkHeap[T]) Push(x any)   { *h = append(*h, x.(topkItem[T])) }
func (h *topkHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewTopK returns a TopK retaining at most k items; k <= 0 retains none.
func NewTopK[T any](k int) *TopK[T] {
	return &TopK[T]{k: k}
}

// Offer considers an item. It returns true if the item was retained.
func (t *TopK[T]) Offer(score float64, key string, val T) bool {
	if t.k <= 0 {
		return false
	}
	it := topkItem[T]{score: score, key: key, val: val}
	if len(t.items) < t.k {
		heap.Push(&t.items, it)
		return true
	}
	worst := t.items[0]
	if worst.score > score || (worst.score == score && worst.key <= key) {
		return false
	}
	t.items[0] = it
	heap.Fix(&t.items, 0)
	return true
}

// Reset empties the queue in place, retaining capacity. The streaming
// executor keeps one shard-local bounded heap per worker and resets it at
// every shard boundary, so pruning decisions depend only on the shard's
// own enumeration prefix (never on which worker ran the preceding shards)
// while the heap's backing array is allocated once.
func (t *TopK[T]) Reset() {
	var zero topkItem[T]
	for i := range t.items {
		t.items[i] = zero // drop value references so the GC can reclaim them
	}
	t.items = t.items[:0]
}

// Merge offers every item retained by src into t. Because ranking is a
// total order on (score, key) and Offer keeps the best k of everything it
// has seen, merging per-worker queues yields the same retained set in any
// merge order — the property parallel query execution relies on.
func (t *TopK[T]) Merge(src *TopK[T]) {
	for _, it := range src.items {
		t.Offer(it.score, it.key, it.val)
	}
}

// WouldAccept reports whether an item with the given score could enter the
// queue, letting callers skip expensive materialization for hopeless items.
func (t *TopK[T]) WouldAccept(score float64) bool {
	if t.k <= 0 {
		return false
	}
	if len(t.items) < t.k {
		return true
	}
	return score >= t.items[0].score
}

// Len returns the number of retained items.
func (t *TopK[T]) Len() int { return len(t.items) }

// Results returns the retained items sorted best-first.
func (t *TopK[T]) Results() []T {
	sorted := make([]topkItem[T], len(t.items))
	copy(sorted, t.items)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].score != sorted[j].score {
			return sorted[i].score > sorted[j].score
		}
		return sorted[i].key < sorted[j].key
	})
	out := make([]T, len(sorted))
	for i, it := range sorted {
		out[i] = it.val
	}
	return out
}

// ResultScores returns the retained scores sorted best-first, parallel to
// Results.
func (t *TopK[T]) ResultScores() []float64 {
	sorted := make([]topkItem[T], len(t.items))
	copy(sorted, t.items)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].score != sorted[j].score {
			return sorted[i].score > sorted[j].score
		}
		return sorted[i].key < sorted[j].key
	})
	out := make([]float64, len(sorted))
	for i, it := range sorted {
		out[i] = it.score
	}
	return out
}
