package core

import (
	"math/rand"
	"testing"

	"kbtable/internal/kg"
)

// randomTreesFixture builds a random graph plus a set of subtrees sharing
// one tree pattern, to property-test table composition.
func randomTreesFixture(seed int64) (*kg.Graph, *PatternTable, TreePattern, []Subtree, bool) {
	rng := rand.New(rand.NewSource(seed))
	b := kg.NewBuilder()
	nRoots := 2 + rng.Intn(4)
	depth := 1 + rng.Intn(2)
	var roots []kg.NodeID
	for i := 0; i < nRoots; i++ {
		r := b.Entity("Root", "root entity")
		roots = append(roots, r)
		cur := r
		for dep := 0; dep < depth; dep++ {
			nxt := b.Entity("Mid", "mid entity")
			b.Attr(cur, "step", nxt)
			cur = nxt
		}
	}
	g := b.MustFreeze()
	pt := NewPatternTable()
	var trees []Subtree
	var tp TreePattern
	for _, r := range roots {
		// Two keyword paths: the root itself and the chain to the leaf.
		var edges []kg.EdgeID
		cur := r
		for dep := 0; dep < depth; dep++ {
			first, n := g.OutEdges(cur)
			if n == 0 {
				return nil, nil, TreePattern{}, nil, false
			}
			edges = append(edges, first)
			cur = g.Edge(first).Dst
		}
		st := Subtree{
			Root: r,
			Paths: []Path{
				{Root: r},
				{Root: r, Edges: edges},
			},
			Terms: []ScoreTerms{{Len: 1, PR: 1, Sim: 1}, {Len: depth + 1, PR: 1, Sim: 0.5}},
		}
		if tp.Paths == nil {
			tp = TreePattern{Paths: []PatternID{
				pt.Intern(st.Paths[0].Pattern(g)),
				pt.Intern(st.Paths[1].Pattern(g)),
			}}
		}
		trees = append(trees, st)
	}
	return g, pt, tp, trees, true
}

// TestComposeTableInvariants: for any generated pattern, every row has
// exactly one cell per column, the root column is first, and the number
// of rows equals the number of subtrees.
func TestComposeTableInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g, pt, tp, trees, ok := randomTreesFixture(seed)
		if !ok {
			continue
		}
		tab := ComposeTable(g, pt, tp, trees)
		if len(tab.Rows) != len(trees) {
			t.Fatalf("seed %d: rows %d != trees %d", seed, len(tab.Rows), len(trees))
		}
		if len(tab.Columns) == 0 {
			t.Fatalf("seed %d: no columns", seed)
		}
		if tab.Columns[0].Name != "Root" {
			t.Errorf("seed %d: first column should be the root type, got %q", seed, tab.Columns[0].Name)
		}
		for ri, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Fatalf("seed %d row %d: %d cells for %d columns", seed, ri, len(row), len(tab.Columns))
			}
			for ci, cell := range row {
				if cell == "" {
					t.Errorf("seed %d row %d col %d: empty cell", seed, ri, ci)
				}
			}
		}
		// Column names unique.
		seen := map[string]bool{}
		for _, c := range tab.Columns {
			if seen[c.Name] {
				t.Errorf("seed %d: duplicate column name %q", seed, c.Name)
			}
			seen[c.Name] = true
		}
	}
}

// TestSubtreeSizeVsPathLens: the union size of a subtree never exceeds
// the sum of its path lengths and is at least the longest path.
func TestSubtreeSizeVsPathLens(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, _, _, trees, ok := randomTreesFixture(seed)
		if !ok {
			continue
		}
		for _, st := range trees {
			sum, max := 0, 0
			for _, p := range st.Paths {
				sum += p.Len()
				if p.Len() > max {
					max = p.Len()
				}
			}
			size := st.Size(g)
			if size > sum || size < max {
				t.Errorf("seed %d: size %d outside [%d, %d]", seed, size, max, sum)
			}
			if !st.IsTreeShaped(g) {
				t.Errorf("seed %d: chain fixture must be tree shaped", seed)
			}
		}
	}
}
