package core

import (
	"fmt"
	"strings"

	"kbtable/internal/kg"
)

// Column describes one column of a table answer. Name is a short,
// deduplicated header like Figure 3's ("Software", "Revenue"); Full is the
// paper's formal name τ(v_{i-1}) α(e_i) τ(v_i) (Section 2.2.2).
type Column struct {
	Name string
	Full string
}

// Table is a table answer: one row per valid subtree of a tree pattern
// (Figure 3).
type Table struct {
	Columns []Column
	Rows    [][]string
}

// columnSlot identifies a pre-merge column: the dep-th node on keyword
// word's path (dep 0 is the shared root).
type columnSlot struct {
	word, dep int
}

// ComposeTable converts the valid subtrees of one tree pattern into a table
// answer. For each keyword path v1 e1 … vl it creates one column per node;
// when an edge appears in more than one root-leaf path the column is
// created once (Section 2.2.2). Because two paths with equal *patterns* may
// still bind different concrete edges, columns are merged only when the
// concrete prefixes agree in every row, which keeps the scheme uniform.
func ComposeTable(g *kg.Graph, pt *PatternTable, tp TreePattern, trees []Subtree) Table {
	if len(trees) == 0 || len(tp.Paths) == 0 {
		return Table{}
	}
	m := len(tp.Paths)
	pats := make([]PathPattern, m)
	depths := make([]int, m) // column count per word = Len (nodes incl. root)
	for i, pid := range tp.Paths {
		pats[i] = pt.Get(pid)
		depths[i] = pats[i].Len()
	}

	// mergeDepth[i][j] = deepest column depth at which word i's and word
	// j's paths provably share concrete edges across all trees.
	mergeDepth := make([][]int, m)
	for i := range mergeDepth {
		mergeDepth[i] = make([]int, m)
		for j := range mergeDepth[i] {
			if i == j {
				mergeDepth[i][j] = depths[i] - 1
				continue
			}
			maxShared := min(depths[i], depths[j]) - 1
			for _, t := range trees {
				shared := commonEdgePrefix(t.Paths[i].Edges, t.Paths[j].Edges)
				if shared < maxShared {
					maxShared = shared
				}
				if maxShared == 0 {
					break
				}
			}
			mergeDepth[i][j] = maxShared
		}
	}

	// Union-find over slots; slots (i,dep) and (j,dep) merge when
	// dep <= mergeDepth[i][j]. Depth 0 (the root) always merges.
	slotID := func(w, dep int) int { return w*16 + dep } // dep < 16 given d bounds
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra // smaller id wins: earliest (word, depth)
		}
	}
	for i := 0; i < m; i++ {
		for dep := 0; dep < depths[i]; dep++ {
			find(slotID(i, dep))
		}
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			for dep := 0; dep <= mergeDepth[i][j]; dep++ {
				union(slotID(i, dep), slotID(j, dep))
			}
		}
	}

	// Collect representative slots in (word, depth) order.
	var reps []columnSlot
	seen := map[int]bool{}
	for i := 0; i < m; i++ {
		for dep := 0; dep < depths[i]; dep++ {
			r := find(slotID(i, dep))
			if !seen[r] {
				seen[r] = true
				reps = append(reps, columnSlot{word: r / 16, dep: r % 16})
			}
		}
	}

	cols := make([]Column, len(reps))
	shortCount := map[string]int{}
	for ci, rep := range reps {
		name, full := columnNames(g, pats[rep.word], rep.dep)
		shortCount[name]++
		if n := shortCount[name]; n > 1 {
			name = fmt.Sprintf("%s #%d", name, n)
		}
		cols[ci] = Column{Name: name, Full: full}
	}

	rows := make([][]string, 0, len(trees))
	for _, t := range trees {
		row := make([]string, len(reps))
		for ci, rep := range reps {
			row[ci] = g.Text(nodeAtDepth(g, t.Paths[rep.word], rep.dep))
		}
		rows = append(rows, row)
	}
	return Table{Columns: cols, Rows: rows}
}

// commonEdgePrefix returns how many leading EdgeIDs a and b share.
func commonEdgePrefix(a, b []kg.EdgeID) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// nodeAtDepth returns the dep-th node on the path (0 = root). For an edge
// match the deepest column (dep = len(Edges)) is the matched edge's target.
func nodeAtDepth(g *kg.Graph, p Path, dep int) kg.NodeID {
	if dep == 0 {
		return p.Root
	}
	return g.Edge(p.Edges[dep-1]).Dst
}

// columnNames derives the short header and the paper's formal column name
// for the dep-th column of a path with the given pattern.
func columnNames(g *kg.Graph, pat PathPattern, dep int) (name, full string) {
	if dep == 0 {
		n := g.TypeName(pat.Types[0])
		return n, n
	}
	attr := g.AttrName(pat.Attrs[dep-1])
	prevType := g.TypeName(pat.Types[dep-1])
	edgeTarget := pat.EdgeEnd && dep == len(pat.Attrs)
	var targetType string
	if !edgeTarget {
		targetType = g.TypeName(pat.Types[dep])
	}
	switch {
	case edgeTarget:
		// Column holds the matched edge's target (often a Literal); name it
		// after the attribute, like Figure 3's "Revenue".
		return attr, prevType + "." + attr
	case pat.Types[dep] == kg.LiteralType:
		return attr, prevType + "." + attr
	default:
		return targetType, prevType + "." + attr + "." + targetType
	}
}

// Render prints the table in a fixed-width ASCII layout for examples and
// the kbsearch CLI. maxRows < 0 prints all rows.
func (t Table) Render(maxRows int) string {
	if len(t.Columns) == 0 {
		return "(empty table)\n"
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c.Name)
	}
	n := len(t.Rows)
	if maxRows >= 0 && n > maxRows {
		n = maxRows
	}
	for _, row := range t.Rows[:n] {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	head := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		head[i] = c.Name
	}
	writeRow(head)
	total := 0
	for i := range widths {
		total += widths[i]
		if i > 0 {
			total += 3
		}
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows[:n] {
		writeRow(row)
	}
	if n < len(t.Rows) {
		fmt.Fprintf(&sb, "... (%d more rows)\n", len(t.Rows)-n)
	}
	return sb.String()
}
