package core

import (
	"strings"
	"testing"

	"kbtable/internal/kg"
)

// buildP1Trees builds the pattern P1 of Figure 2(a) and its two valid
// subtrees T1, T2 of Figure 1(d) against the fig1 graph, for the query
// "database software company revenue".
func buildP1Trees(t *testing.T) (*kg.Graph, *PatternTable, TreePattern, []Subtree) {
	t.Helper()
	g, ids := fig1(t)
	pt := NewPatternTable()

	mkTree := func(root kg.NodeID, genreE, devE, revE kg.EdgeID) Subtree {
		return Subtree{
			Root: root,
			Paths: []Path{
				{Root: root, Edges: []kg.EdgeID{genreE}},                    // database -> Model node
				{Root: root},                                                // software -> root type
				{Root: root, Edges: []kg.EdgeID{devE}},                      // company -> Company node
				{Root: root, Edges: []kg.EdgeID{devE, revE}, EdgeEnd: true}, // revenue -> attribute
			},
			Terms: []ScoreTerms{{Len: 2, PR: 1, Sim: 0.5}, {Len: 1, PR: 1, Sim: 1}, {Len: 2, PR: 1, Sim: 1}, {Len: 3, PR: 1, Sim: 1}},
		}
	}
	t1 := mkTree(ids["sqlserver"],
		edgeFrom(t, g, ids["sqlserver"], "Genre"),
		edgeFrom(t, g, ids["sqlserver"], "Developer"),
		edgeFrom(t, g, ids["microsoft"], "Revenue"))
	t2 := mkTree(ids["oracledb"],
		edgeFrom(t, g, ids["oracledb"], "Genre"),
		edgeFrom(t, g, ids["oracledb"], "Developer"),
		edgeFrom(t, g, ids["oracle"], "Revenue"))

	tp := TreePattern{Paths: make([]PatternID, 4)}
	for i, p := range t1.Paths {
		tp.Paths[i] = pt.Intern(p.Pattern(g))
	}
	// Sanity: T2 must have the same pattern.
	for i, p := range t2.Paths {
		if pt.Intern(p.Pattern(g)) != tp.Paths[i] {
			t.Fatalf("T2 pattern mismatch at path %d", i)
		}
	}
	return g, pt, tp, []Subtree{t1, t2}
}

func TestComposeTableFigure3(t *testing.T) {
	g, pt, tp, trees := buildP1Trees(t)
	tab := ComposeTable(g, pt, tp, trees)

	// Figure 3: Software | Genre->Model | Company | Revenue. The root
	// column is shared; the Developer edge appears in both the "company"
	// and "revenue" paths and must yield ONE Company column.
	if len(tab.Columns) != 4 {
		names := []string{}
		for _, c := range tab.Columns {
			names = append(names, c.Name)
		}
		t.Fatalf("columns = %v, want 4 (Software, Model, Company, Revenue)", names)
	}
	wantCols := []string{"Software", "Model", "Company", "Revenue"}
	for i, w := range wantCols {
		if tab.Columns[i].Name != w {
			t.Errorf("column %d = %q, want %q", i, tab.Columns[i].Name, w)
		}
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	row1 := tab.Rows[0]
	want1 := []string{"SQL Server", "Relational database", "Microsoft", "US$ 77 billion"}
	for i := range want1 {
		if row1[i] != want1[i] {
			t.Errorf("row1[%d] = %q, want %q", i, row1[i], want1[i])
		}
	}
	row2 := tab.Rows[1]
	want2 := []string{"Oracle DB", "O-R database", "Oracle Corp", "US$ 37 billion"}
	for i := range want2 {
		if row2[i] != want2[i] {
			t.Errorf("row2[%d] = %q, want %q", i, row2[i], want2[i])
		}
	}
}

func TestComposeTableFullNames(t *testing.T) {
	g, pt, tp, trees := buildP1Trees(t)
	tab := ComposeTable(g, pt, tp, trees)
	if tab.Columns[0].Full != "Software" {
		t.Errorf("root full name = %q", tab.Columns[0].Full)
	}
	if tab.Columns[2].Full != "Software.Developer.Company" {
		t.Errorf("company full name = %q", tab.Columns[2].Full)
	}
	if tab.Columns[3].Full != "Company.Revenue" {
		t.Errorf("revenue full name = %q", tab.Columns[3].Full)
	}
}

func TestComposeTableNoMergeOnDivergentEdges(t *testing.T) {
	// Two words whose patterns share a prefix but bind different concrete
	// edges must NOT merge beyond the root: company1/company2 via two
	// different Products edges of the same attribute type.
	b := kg.NewBuilder()
	ms := b.Entity("Company", "Microsoft")
	w := b.Entity("Software", "Windows Database")
	bing := b.Entity("Software", "Bing Search")
	b.Attr(ms, "Products", w)
	b.Attr(ms, "Products", bing)
	g := b.MustFreeze()
	first, _ := g.OutEdges(ms)
	e1, e2 := first, first+1

	pt := NewPatternTable()
	tree := Subtree{
		Root: ms,
		Paths: []Path{
			{Root: ms, Edges: []kg.EdgeID{e1}},
			{Root: ms, Edges: []kg.EdgeID{e2}},
		},
		Terms: []ScoreTerms{{Len: 2, PR: 1, Sim: 1}, {Len: 2, PR: 1, Sim: 1}},
	}
	tp := TreePattern{Paths: []PatternID{
		pt.Intern(tree.Paths[0].Pattern(g)),
		pt.Intern(tree.Paths[1].Pattern(g)),
	}}
	tab := ComposeTable(g, pt, tp, []Subtree{tree})
	// Root merges; the two Software columns stay separate: 3 columns.
	if len(tab.Columns) != 3 {
		t.Fatalf("columns = %d, want 3", len(tab.Columns))
	}
	if tab.Rows[0][1] == tab.Rows[0][2] {
		t.Errorf("divergent product columns should differ: %v", tab.Rows[0])
	}
	// Duplicate short names get disambiguated.
	if tab.Columns[1].Name == tab.Columns[2].Name {
		t.Errorf("duplicate column names should be disambiguated: %v", tab.Columns)
	}
}

func TestComposeTableEmpty(t *testing.T) {
	g, _ := fig1(t)
	pt := NewPatternTable()
	tab := ComposeTable(g, pt, TreePattern{}, nil)
	if len(tab.Columns) != 0 || len(tab.Rows) != 0 {
		t.Errorf("empty input should give empty table")
	}
	if !strings.Contains(tab.Render(-1), "empty") {
		t.Errorf("empty table render should say so")
	}
}

func TestTableRender(t *testing.T) {
	g, pt, tp, trees := buildP1Trees(t)
	tab := ComposeTable(g, pt, tp, trees)
	out := tab.Render(-1)
	for _, want := range []string{"Software", "Microsoft", "US$ 37 billion"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// maxRows truncation note.
	out1 := tab.Render(1)
	if !strings.Contains(out1, "1 more rows") {
		t.Errorf("truncated render should count remaining rows:\n%s", out1)
	}
}

func TestIsTreeShaped(t *testing.T) {
	g, ids := fig1(t)
	devE := edgeFrom(t, g, ids["sqlserver"], "Developer")
	revE := edgeFrom(t, g, ids["microsoft"], "Revenue")
	tree := Subtree{
		Root: ids["sqlserver"],
		Paths: []Path{
			{Root: ids["sqlserver"], Edges: []kg.EdgeID{devE}},
			{Root: ids["sqlserver"], Edges: []kg.EdgeID{devE, revE}},
		},
	}
	if !tree.IsTreeShaped(g) {
		t.Errorf("shared-prefix paths form a tree")
	}
	if n := tree.Size(g); n != 3 {
		t.Errorf("Size = %d, want 3 (root, microsoft, revenue)", n)
	}
}

func TestIsTreeShapedDiamond(t *testing.T) {
	// r -> a -> x and r -> b -> x re-converge at x: not a tree.
	b := kg.NewBuilder()
	r := b.Entity("T", "r")
	a := b.Entity("T", "a")
	bb := b.Entity("T", "b")
	x := b.Entity("T", "x")
	b.Attr(r, "p", a)
	b.Attr(r, "q", bb)
	b.Attr(a, "p", x)
	b.Attr(bb, "q", x)
	g := b.MustFreeze()
	pa := Path{Root: r, Edges: []kg.EdgeID{edgeFrom(t, g, r, "p"), edgeFrom(t, g, a, "p")}}
	pb := Path{Root: r, Edges: []kg.EdgeID{edgeFrom(t, g, r, "q"), edgeFrom(t, g, bb, "q")}}
	tree := Subtree{Root: r, Paths: []Path{pa, pb}}
	if tree.IsTreeShaped(g) {
		t.Errorf("diamond should not be tree-shaped")
	}
}

func TestIsTreeShapedCycleToRoot(t *testing.T) {
	b := kg.NewBuilder()
	r := b.Entity("T", "r")
	a := b.Entity("T", "a")
	b.Attr(r, "p", a)
	b.Attr(a, "p", r)
	g := b.MustFreeze()
	p := Path{Root: r, Edges: []kg.EdgeID{edgeFrom(t, g, r, "p"), edgeFrom(t, g, a, "p")}}
	tree := Subtree{Root: r, Paths: []Path{p}}
	if tree.IsTreeShaped(g) {
		t.Errorf("path cycling back to root is not a tree")
	}
}
