package core

import "math"

// ScoreTerms are the per-(keyword, path) components of the paper's scoring
// functions (Section 2.2.3), precomputed at index-construction time so that
// online scoring is a cheap fold:
//
//	Len — |T(w)|, the number of nodes on the path (score1 term)
//	PR  — PageRank of the node containing w (score2 term)
//	Sim — Jaccard similarity between w and the matched text (score3 term)
type ScoreTerms struct {
	Len int
	PR  float64
	Sim float64
}

// Scorer evaluates score(T, q) = score1^z1 · score2^z2 · score3^z3
// (Equation 3) where score1 = Σ|T(w)|, score2 = ΣPR(f(w)),
// score3 = Σ sim(w, f(w)) (Equations 4–6).
type Scorer struct {
	Z1, Z2, Z3 float64
}

// DefaultScorer returns the paper's default weights z1=-1, z2=1, z3=1:
// smaller trees, more important nodes, better text matches score higher.
func DefaultScorer() Scorer { return Scorer{Z1: -1, Z2: 1, Z3: 1} }

// Tree computes the relevance score of a valid subtree from its per-path
// terms.
func (s Scorer) Tree(terms []ScoreTerms) float64 {
	sumLen := 0
	sumPR := 0.0
	sumSim := 0.0
	for _, t := range terms {
		sumLen += t.Len
		sumPR += t.PR
		sumSim += t.Sim
	}
	return pow(float64(sumLen), s.Z1) * pow(sumPR, s.Z2) * pow(sumSim, s.Z3)
}

// pow is math.Pow with fast paths for the exponents the default scorer
// uses; scoring sits on the hot path of all three algorithms.
func pow(x, z float64) float64 {
	switch z {
	case 0:
		return 1
	case 1:
		return x
	case -1:
		if x == 0 {
			return 0
		}
		return 1 / x
	}
	if x == 0 && z < 0 {
		return 0
	}
	return math.Pow(x, z)
}

// TreeUB returns an upper bound on Tree() over every term vector whose
// summed Len/PR/Sim components lie in the given closed intervals. The
// streaming executor pushes the running k-th-score bound down into
// enumeration with it: a pattern whose TreeUB-derived aggregate bound
// cannot enter the top-k heap is pruned before any path expansion.
// Intervals must satisfy 0 <= lo <= hi (score terms are non-negative);
// the bound is conservative (+Inf) when a negative exponent meets a zero
// lower endpoint.
func (s Scorer) TreeUB(lenLo, lenHi, prLo, prHi, simLo, simHi float64) float64 {
	return maxPow(lenLo, lenHi, s.Z1) * maxPow(prLo, prHi, s.Z2) * maxPow(simLo, simHi, s.Z3)
}

// maxPow maximizes pow(x, z) over x in [lo, hi]: x^z is monotone on the
// non-negative reals, so the maximum sits at hi for z >= 0 and at lo for
// z < 0. A zero lower endpoint under a negative exponent is unbounded —
// return +Inf rather than pow's 0-for-empty fast path, which exists for
// actual scores (a zero sum means no match), not for interval bounds.
func maxPow(lo, hi, z float64) float64 {
	if z >= 0 {
		return pow(hi, z)
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return pow(lo, z)
}

// Agg selects how subtree scores aggregate into a pattern score
// (Section 2.2.3): the paper's default is Sum; Count, Avg and Max are the
// alternatives it names.
type Agg int

// Aggregation functions for pattern scores.
const (
	AggSum Agg = iota
	AggCount
	AggAvg
	AggMax
)

// String implements fmt.Stringer for experiment reports.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	case AggMax:
		return "max"
	}
	return "unknown"
}

// PatternScore accumulates subtree scores for one tree pattern in a way
// that supports all aggregation functions in one pass.
type PatternScore struct {
	Sum   float64
	Max   float64
	Count int
}

// Add folds one subtree score into the accumulator.
func (p *PatternScore) Add(treeScore float64) {
	p.Sum += treeScore
	if p.Count == 0 || treeScore > p.Max {
		p.Max = treeScore
	}
	p.Count++
}

// Merge folds another accumulator in (used when pattern scores are
// decomposed per candidate root, Theorem 5).
func (p *PatternScore) Merge(o PatternScore) {
	p.Sum += o.Sum
	if p.Count == 0 || o.Max > p.Max {
		p.Max = o.Max
	}
	p.Count += o.Count
}

// Value returns the aggregate under a.
func (p PatternScore) Value(a Agg) float64 {
	switch a {
	case AggSum:
		return p.Sum
	case AggCount:
		return float64(p.Count)
	case AggAvg:
		if p.Count == 0 {
			return 0
		}
		return p.Sum / float64(p.Count)
	case AggMax:
		return p.Max
	}
	return 0
}

// Scale returns a copy with Sum and Max multiplied by f and the count
// scaled, used to turn a ρ-sample accumulator into an unbiased estimate
// ŝ = (1/ρ)·Σ_{r∈R+} s(r) (Section 4.2.2). Max is left unscaled (max of a
// sample is already an estimate of max) and Count is scaled and rounded.
func (p PatternScore) Scale(f float64) PatternScore {
	return PatternScore{
		Sum:   p.Sum * f,
		Max:   p.Max,
		Count: int(float64(p.Count)*f + 0.5),
	}
}
