package core

import "kbtable/internal/kg"

// Path is a concrete root-to-keyword path in the knowledge graph. For a
// node match, the keyword is on the node reached by the last edge (or the
// root itself when Edges is empty). For an edge match (EdgeEnd), the keyword
// is on the last edge's attribute type; the edge's target node is still part
// of the subtree (it is the leaf the edge points to).
type Path struct {
	Root    kg.NodeID
	Edges   []kg.EdgeID
	EdgeEnd bool
}

// Len returns the number of nodes on the path T(w): uniformly
// 1 + len(Edges), counting the matched edge's target node for edge matches
// (see PathPattern.Len and the paper's Example 2.4).
func (p Path) Len() int { return len(p.Edges) + 1 }

// MatchNode returns the node f(w) is attached to: the end node for a node
// match, or the source node of the matched edge for an edge match (the node
// "that has an out-going edge containing word w", Section 2.2.3).
func (p Path) MatchNode(g *kg.Graph) kg.NodeID {
	if p.EdgeEnd {
		return g.Edge(p.Edges[len(p.Edges)-1]).Src
	}
	if len(p.Edges) == 0 {
		return p.Root
	}
	return g.Edge(p.Edges[len(p.Edges)-1]).Dst
}

// Leaf returns the deepest node on the path, including the matched edge's
// target for edge matches (needed for minimality and table rendering).
func (p Path) Leaf(g *kg.Graph) kg.NodeID {
	if len(p.Edges) == 0 {
		return p.Root
	}
	return g.Edge(p.Edges[len(p.Edges)-1]).Dst
}

// Nodes returns the node sequence from the root to the leaf (inclusive of
// the edge-match target node when EdgeEnd).
func (p Path) Nodes(g *kg.Graph) []kg.NodeID {
	out := make([]kg.NodeID, 0, len(p.Edges)+1)
	out = append(out, p.Root)
	for _, e := range p.Edges {
		out = append(out, g.Edge(e).Dst)
	}
	return out
}

// Pattern computes the path pattern of p (Section 2.2.2). Index
// construction calls this once per stored path; queries use interned IDs.
func (p Path) Pattern(g *kg.Graph) PathPattern {
	var pp PathPattern
	pp.EdgeEnd = p.EdgeEnd
	n := len(p.Edges)
	if p.EdgeEnd {
		pp.Types = make([]kg.TypeID, 0, n)
		pp.Attrs = make([]kg.AttrID, 0, n)
	} else {
		pp.Types = make([]kg.TypeID, 0, n+1)
		pp.Attrs = make([]kg.AttrID, 0, n)
	}
	pp.Types = append(pp.Types, g.Type(p.Root))
	for i, e := range p.Edges {
		edge := g.Edge(e)
		pp.Attrs = append(pp.Attrs, edge.Attr)
		if i < n-1 || !p.EdgeEnd {
			pp.Types = append(pp.Types, g.Type(edge.Dst))
		}
	}
	return pp
}

// Subtree is a valid subtree for an m-keyword query: one path per keyword,
// all sharing the same root (Section 2.2.1). Terms carries the precomputed
// score components of each path, parallel to Paths.
//
// Following Algorithms 2–3 and the count NR = Σ_r Π_i |Paths(wi,r)|, a
// subtree is the *ordered tuple* of paths joined at the root; tuples whose
// union re-converges are still counted (see DESIGN.md). Use IsTreeShaped to
// filter them when strict tree semantics are wanted.
type Subtree struct {
	Root  kg.NodeID
	Paths []Path
	Terms []ScoreTerms
}

// IsTreeShaped reports whether the union of the subtree's paths forms a
// directed tree: every node in the union is reached through at most one
// distinct in-edge, and the root through none.
func (s Subtree) IsTreeShaped(g *kg.Graph) bool {
	parent := map[kg.NodeID]kg.EdgeID{}
	for _, p := range s.Paths {
		cur := p.Root
		for _, eid := range p.Edges {
			e := g.Edge(eid)
			_ = cur
			dst := e.Dst
			if dst == s.Root {
				return false // cycle back to root
			}
			if prev, ok := parent[dst]; ok {
				if prev != eid {
					return false // two distinct in-edges
				}
			} else {
				parent[dst] = eid
			}
			cur = dst
		}
	}
	return true
}

// Size returns the total number of distinct nodes in the subtree's union,
// a convenience for diagnostics (the paper's score1 uses per-path lengths,
// not this).
func (s Subtree) Size(g *kg.Graph) int {
	seen := map[kg.NodeID]struct{}{s.Root: {}}
	for _, p := range s.Paths {
		for _, v := range p.Nodes(g) {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}
