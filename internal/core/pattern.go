// Package core implements the paper's central model (Section 2.2): path
// patterns, tree patterns, valid subtrees, the class of relevance scoring
// functions, top-k selection, and the composition of tree patterns into
// table answers.
package core

import (
	"encoding/binary"
	"strings"
	"sync"

	"kbtable/internal/kg"
)

// PatternID interns a path pattern. IDs are dense per PatternTable.
type PatternID int32

// PathPattern is the type sequence of a root-to-keyword path (Section
// 2.2.2): τ(v1) α(e1) τ(v2) … . If the keyword matched a node, the pattern
// ends with that node's type (len(Attrs) = len(Types)-1). If it matched an
// edge's attribute type, the pattern ends with that attribute
// (EdgeEnd = true, len(Attrs) = len(Types)).
type PathPattern struct {
	Types   []kg.TypeID
	Attrs   []kg.AttrID
	EdgeEnd bool
}

// Len is the pattern length |pattern(T(w))|: the number of nodes on the
// path T(w). Per the paper's Example 2.4 (score1(T1) = 2+1+2+3 where the
// edge-matched "revenue" path contributes 3), an edge match counts the
// matched edge's target node, so Len is uniformly #attrs + 1: for a node
// match this equals len(Types); for an edge match it is len(Types)+1.
func (p PathPattern) Len() int { return len(p.Attrs) + 1 }

// RootType returns τ(v1), the type of the path's root.
func (p PathPattern) RootType() kg.TypeID { return p.Types[0] }

// Key returns a compact binary key uniquely identifying the pattern,
// suitable as a map key.
func (p PathPattern) Key() string {
	var sb strings.Builder
	sb.Grow(len(p.Types)*4 + len(p.Attrs)*4 + 1)
	var buf [4]byte
	if p.EdgeEnd {
		sb.WriteByte(1)
	} else {
		sb.WriteByte(0)
	}
	for i, t := range p.Types {
		binary.LittleEndian.PutUint32(buf[:], uint32(t))
		sb.Write(buf[:])
		if i < len(p.Attrs) {
			binary.LittleEndian.PutUint32(buf[:], uint32(p.Attrs[i]))
			sb.Write(buf[:])
		}
	}
	return sb.String()
}

// Render prints the pattern in the paper's notation, e.g.
// "(Software) (Developer) (Company) (Revenue)".
func (p PathPattern) Render(g *kg.Graph) string {
	var sb strings.Builder
	for i, t := range p.Types {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString("(" + g.TypeName(t) + ")")
		if i < len(p.Attrs) {
			sb.WriteString(" (" + g.AttrName(p.Attrs[i]) + ")")
		}
	}
	return sb.String()
}

// PatternTable interns path patterns to dense PatternIDs. It is safe for
// concurrent use so that parallel index construction can intern patterns
// from multiple workers.
type PatternTable struct {
	mu    sync.RWMutex
	byKey map[string]PatternID
	pats  []PathPattern
}

// NewPatternTable returns an empty table.
func NewPatternTable() *PatternTable {
	return &PatternTable{byKey: make(map[string]PatternID)}
}

// Intern returns the ID for p, registering it if new. The caller must not
// mutate p's slices afterwards.
func (t *PatternTable) Intern(p PathPattern) PatternID {
	key := p.Key()
	t.mu.RLock()
	id, ok := t.byKey[key]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byKey[key]; ok {
		return id
	}
	id = PatternID(len(t.pats))
	t.byKey[key] = id
	t.pats = append(t.pats, p)
	return id
}

// Get returns the pattern for id. The returned value shares slices with the
// table and must be treated as read-only.
func (t *PatternTable) Get(id PatternID) PathPattern {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pats[id]
}

// Len returns the number of interned patterns.
func (t *PatternTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.pats)
}

// Snapshot returns a copy of all interned patterns in ID order (for index
// persistence).
func (t *PatternTable) Snapshot() []PathPattern {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]PathPattern, len(t.pats))
	for i, p := range t.pats {
		out[i] = PathPattern{
			Types:   append([]kg.TypeID(nil), p.Types...),
			Attrs:   append([]kg.AttrID(nil), p.Attrs...),
			EdgeEnd: p.EdgeEnd,
		}
	}
	return out
}

// TableFromSnapshot reconstructs a PatternTable with identical IDs from a
// Snapshot.
func TableFromSnapshot(pats []PathPattern) *PatternTable {
	t := NewPatternTable()
	for _, p := range pats {
		t.Intern(p)
	}
	return t
}

// TreePattern is the answer unit of the paper: a vector with the i-th entry
// the path pattern of the root-leaf path containing keyword wi (Equation 1).
// All member path patterns share the same root type.
type TreePattern struct {
	Paths []PatternID
}

// Key returns a map key uniquely identifying the tree pattern.
func (tp TreePattern) Key() string {
	var sb strings.Builder
	sb.Grow(len(tp.Paths) * 4)
	var buf [4]byte
	for _, p := range tp.Paths {
		binary.LittleEndian.PutUint32(buf[:], uint32(p))
		sb.Write(buf[:])
	}
	return sb.String()
}

// ContentKey returns a key derived from the path patterns' contents rather
// than their interned IDs. Interning order depends on construction
// parallelism, so ranking tie-breaks use this key to stay reproducible
// across runs.
func (tp TreePattern) ContentKey(t *PatternTable) string {
	var sb strings.Builder
	for _, p := range tp.Paths {
		k := t.Get(p).Key()
		var buf [2]byte
		binary.LittleEndian.PutUint16(buf[:], uint16(len(k)))
		sb.Write(buf[:])
		sb.WriteString(k)
	}
	return sb.String()
}

// RootType returns the shared root type of the pattern's paths.
func (tp TreePattern) RootType(t *PatternTable) kg.TypeID {
	return t.Get(tp.Paths[0]).RootType()
}

// Height returns H(pattern): the maximum path-pattern length (Section 2.2.2).
func (tp TreePattern) Height(t *PatternTable) int {
	h := 0
	for _, p := range tp.Paths {
		if l := t.Get(p).Len(); l > h {
			h = l
		}
	}
	return h
}

// Render prints the tree pattern as one line per keyword path.
func (tp TreePattern) Render(g *kg.Graph, t *PatternTable, keywords []string) string {
	var sb strings.Builder
	for i, p := range tp.Paths {
		if i > 0 {
			sb.WriteByte('\n')
		}
		kw := ""
		if i < len(keywords) {
			kw = keywords[i]
		}
		sb.WriteString(kw + ": " + t.Get(p).Render(g))
	}
	return sb.String()
}
