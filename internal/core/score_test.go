package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScorerExample24(t *testing.T) {
	// Example 2.4 with uniform PageRank 1: T1 has score1 = 8, score2 = 4,
	// score3 = 3.5, so score(T1) = (1/8)*4*3.5 = 1.75.
	s := DefaultScorer()
	termsT1 := []ScoreTerms{
		{Len: 2, PR: 1, Sim: 0.5}, // database at "Relational database"
		{Len: 1, PR: 1, Sim: 1},   // software at type
		{Len: 2, PR: 1, Sim: 1},   // company at type
		{Len: 3, PR: 1, Sim: 1},   // revenue at attribute
	}
	got := s.Tree(termsT1)
	want := (1.0 / 8) * 4 * 3.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("score(T1) = %v, want %v", got, want)
	}

	// T3: score1 = 7, score2 = 4, score3 = 1/6+1/6+1+1.
	termsT3 := []ScoreTerms{
		{Len: 1, PR: 1, Sim: 1.0 / 6},
		{Len: 1, PR: 1, Sim: 1.0 / 6},
		{Len: 2, PR: 1, Sim: 1},
		{Len: 3, PR: 1, Sim: 1},
	}
	gotT3 := s.Tree(termsT3)
	wantT3 := (1.0 / 7) * 4 * (1.0/6 + 1.0/6 + 2)
	if math.Abs(gotT3-wantT3) > 1e-12 {
		t.Errorf("score(T3) = %v, want %v", gotT3, wantT3)
	}
	// Pattern P1 = {T1, T2} beats P2 = {T3} under sum aggregation.
	var p1, p2 PatternScore
	p1.Add(got)
	p1.Add(got) // T2 has identical terms to T1
	p2.Add(gotT3)
	if p1.Value(AggSum) <= p2.Value(AggSum) {
		t.Errorf("score(P1)=%v should exceed score(P2)=%v", p1.Value(AggSum), p2.Value(AggSum))
	}
}

func TestScorerZeroExponents(t *testing.T) {
	s := Scorer{} // z1=z2=z3=0: every tree scores 1
	if got := s.Tree([]ScoreTerms{{Len: 5, PR: 0.1, Sim: 0.3}}); got != 1 {
		t.Errorf("zero-exponent score = %v, want 1", got)
	}
}

func TestScorerSizeOnly(t *testing.T) {
	s := Scorer{Z1: -1}
	small := s.Tree([]ScoreTerms{{Len: 2}})
	large := s.Tree([]ScoreTerms{{Len: 8}})
	if small <= large {
		t.Errorf("smaller trees should score higher with z1=-1")
	}
}

func TestPowFastPathsAgreeWithMathPow(t *testing.T) {
	for _, x := range []float64{0.5, 1, 2, 7.25} {
		for _, z := range []float64{-1, 0, 1, 2, -2, 0.5} {
			got := pow(x, z)
			want := math.Pow(x, z)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("pow(%v,%v) = %v, want %v", x, z, got, want)
			}
		}
	}
	// Zero-base negative exponent is defined as 0 (not +Inf): empty paths
	// cannot dominate ranking.
	if pow(0, -1) != 0 || pow(0, -2) != 0 {
		t.Errorf("pow(0,negative) should be 0")
	}
}

func TestPatternScoreAggregations(t *testing.T) {
	var p PatternScore
	for _, v := range []float64{1, 3, 2} {
		p.Add(v)
	}
	if p.Value(AggSum) != 6 {
		t.Errorf("sum = %v", p.Value(AggSum))
	}
	if p.Value(AggCount) != 3 {
		t.Errorf("count = %v", p.Value(AggCount))
	}
	if p.Value(AggAvg) != 2 {
		t.Errorf("avg = %v", p.Value(AggAvg))
	}
	if p.Value(AggMax) != 3 {
		t.Errorf("max = %v", p.Value(AggMax))
	}
	var empty PatternScore
	if empty.Value(AggAvg) != 0 {
		t.Errorf("avg of empty should be 0")
	}
}

func TestPatternScoreMerge(t *testing.T) {
	var a, b PatternScore
	a.Add(1)
	a.Add(5)
	b.Add(3)
	a.Merge(b)
	if a.Count != 3 || a.Sum != 9 || a.Max != 5 {
		t.Errorf("merge wrong: %+v", a)
	}
	var c PatternScore
	c.Merge(a) // merging into empty adopts values
	if c.Count != 3 || c.Max != 5 {
		t.Errorf("merge into empty wrong: %+v", c)
	}
}

func TestPatternScoreMergeCommutes(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b, ab, ba PatternScore
		for _, x := range xs {
			a.Add(float64(x) / 64)
		}
		for _, y := range ys {
			b.Add(float64(y) / 64)
		}
		ab = a
		ab.Merge(b)
		ba = b
		ba.Merge(a)
		return ab.Count == ba.Count && math.Abs(ab.Sum-ba.Sum) < 1e-9 && ab.Max == ba.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternScoreScale(t *testing.T) {
	var p PatternScore
	p.Add(2)
	p.Add(4)
	s := p.Scale(10)
	if s.Sum != 60 {
		t.Errorf("scaled sum = %v, want 60", s.Sum)
	}
	if s.Count != 20 {
		t.Errorf("scaled count = %v, want 20", s.Count)
	}
	if s.Max != 4 {
		t.Errorf("max should not scale, got %v", s.Max)
	}
}

func TestAggString(t *testing.T) {
	cases := map[Agg]string{AggSum: "sum", AggCount: "count", AggAvg: "avg", AggMax: "max", Agg(99): "unknown"}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("String(%d) = %q, want %q", a, a.String(), want)
		}
	}
}
