package core

import (
	"strings"
	"sync"
	"testing"

	"kbtable/internal/kg"
)

// fig1 builds the knowledge graph of Figure 1(d): SQL Server / Oracle DB /
// their companies and revenues, plus the book path for pattern P2.
// Returns graph and the named node IDs.
func fig1(t testing.TB) (*kg.Graph, map[string]kg.NodeID) {
	t.Helper()
	b := kg.NewBuilder()
	ids := map[string]kg.NodeID{}
	ids["sqlserver"] = b.Entity("Software", "SQL Server")
	ids["reldb"] = b.Entity("Model", "Relational database")
	ids["microsoft"] = b.Entity("Company", "Microsoft")
	ids["msrev"] = b.Entity("Literal", "US$ 77 billion")
	ids["cpp"] = b.Entity("Programming Language", "C++")
	ids["billgates"] = b.Entity("Person", "Bill Gates")
	ids["oracledb"] = b.Entity("Software", "Oracle DB")
	ids["ordb"] = b.Entity("Model", "O-R database")
	ids["oracle"] = b.Entity("Company", "Oracle Corp")
	ids["orev"] = b.Entity("Literal", "US$ 37 billion")
	ids["book"] = b.Entity("Book", "Handbook of Database Systems")
	ids["springer"] = b.Entity("Company", "Springer")
	ids["sprev"] = b.Entity("Literal", "US$ 1 billion")

	b.Attr(ids["sqlserver"], "Genre", ids["reldb"])
	b.Attr(ids["sqlserver"], "Developer", ids["microsoft"])
	b.Attr(ids["sqlserver"], "Written in", ids["cpp"])
	b.Attr(ids["sqlserver"], "Reference", ids["book"])
	b.Attr(ids["microsoft"], "Revenue", ids["msrev"])
	b.Attr(ids["microsoft"], "Founder", ids["billgates"])
	b.Attr(ids["oracledb"], "Genre", ids["ordb"])
	b.Attr(ids["oracledb"], "Developer", ids["oracle"])
	b.Attr(ids["oracledb"], "Written in", ids["cpp"])
	b.Attr(ids["oracle"], "Revenue", ids["orev"])
	b.Attr(ids["book"], "Publisher", ids["springer"])
	b.Attr(ids["springer"], "Revenue", ids["sprev"])
	g, err := b.Freeze()
	if err != nil {
		t.Fatalf("fig1 freeze: %v", err)
	}
	return g, ids
}

// edgeFrom finds the EdgeID from src with the given attribute name.
func edgeFrom(t testing.TB, g *kg.Graph, src kg.NodeID, attr string) kg.EdgeID {
	t.Helper()
	first, n := g.OutEdges(src)
	for i := 0; i < n; i++ {
		e := first + kg.EdgeID(i)
		if g.AttrName(g.Edge(e).Attr) == attr {
			return e
		}
	}
	t.Fatalf("no edge %q from node %d", attr, src)
	return 0
}

func TestPathPatternFromPath(t *testing.T) {
	g, ids := fig1(t)
	// Path for w1="database" in T1: v1 --Genre--> v2 (node match).
	p := Path{Root: ids["sqlserver"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["sqlserver"], "Genre")}}
	pat := p.Pattern(g)
	if got := pat.Render(g); got != "(Software) (Genre) (Model)" {
		t.Errorf("pattern = %q", got)
	}
	if pat.Len() != 2 {
		t.Errorf("Len = %d, want 2", pat.Len())
	}
	if pat.RootType() != g.LookupType("Software") {
		t.Errorf("root type wrong")
	}
}

func TestEdgeEndPattern(t *testing.T) {
	g, ids := fig1(t)
	// Path for w4="revenue" in T1: v1 -Developer-> v3 -Revenue-> (edge match).
	p := Path{
		Root: ids["sqlserver"],
		Edges: []kg.EdgeID{
			edgeFrom(t, g, ids["sqlserver"], "Developer"),
			edgeFrom(t, g, ids["microsoft"], "Revenue"),
		},
		EdgeEnd: true,
	}
	pat := p.Pattern(g)
	if got := pat.Render(g); got != "(Software) (Developer) (Company) (Revenue)" {
		t.Errorf("pattern = %q", got)
	}
	// Example 2.4: the revenue path contributes 3 to score1.
	if pat.Len() != 3 || p.Len() != 3 {
		t.Errorf("Len = %d/%d, want 3/3", pat.Len(), p.Len())
	}
	if p.MatchNode(g) != ids["microsoft"] {
		t.Errorf("MatchNode should be the edge's source")
	}
	if p.Leaf(g) != ids["msrev"] {
		t.Errorf("Leaf should be the edge target")
	}
}

func TestRootOnlyPath(t *testing.T) {
	g, ids := fig1(t)
	p := Path{Root: ids["sqlserver"]}
	pat := p.Pattern(g)
	if pat.Len() != 1 || p.Len() != 1 {
		t.Errorf("root-only path length should be 1")
	}
	if p.MatchNode(g) != ids["sqlserver"] || p.Leaf(g) != ids["sqlserver"] {
		t.Errorf("root-only path match/leaf should be root")
	}
	if got := pat.Render(g); got != "(Software)" {
		t.Errorf("render = %q", got)
	}
}

func TestPatternKeyUniqueness(t *testing.T) {
	g, ids := fig1(t)
	p1 := Path{Root: ids["sqlserver"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["sqlserver"], "Genre")}}
	p2 := Path{Root: ids["sqlserver"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["sqlserver"], "Developer")}}
	p3 := Path{Root: ids["oracledb"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["oracledb"], "Genre")}}
	k1 := p1.Pattern(g).Key()
	k2 := p2.Pattern(g).Key()
	k3 := p3.Pattern(g).Key()
	if k1 == k2 {
		t.Errorf("different attrs must give different keys")
	}
	if k1 != k3 {
		t.Errorf("same type sequence from different roots must give same key")
	}
	// Edge-end and node-end with same types/attrs differ.
	pe := Path{Root: ids["sqlserver"], Edges: p1.Edges, EdgeEnd: true}
	if pe.Pattern(g).Key() == k1 {
		t.Errorf("edge-end flag must distinguish keys")
	}
}

func TestPatternTableIntern(t *testing.T) {
	g, ids := fig1(t)
	pt := NewPatternTable()
	p1 := Path{Root: ids["sqlserver"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["sqlserver"], "Genre")}}.Pattern(g)
	p2 := Path{Root: ids["oracledb"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["oracledb"], "Genre")}}.Pattern(g)
	id1 := pt.Intern(p1)
	id2 := pt.Intern(p2)
	if id1 != id2 {
		t.Errorf("equal patterns should intern to one ID")
	}
	if pt.Len() != 1 {
		t.Errorf("table should hold 1 pattern, has %d", pt.Len())
	}
	got := pt.Get(id1)
	if got.Render(g) != "(Software) (Genre) (Model)" {
		t.Errorf("Get returned wrong pattern")
	}
}

func TestPatternTableConcurrent(t *testing.T) {
	g, ids := fig1(t)
	pt := NewPatternTable()
	pats := []PathPattern{
		Path{Root: ids["sqlserver"]}.Pattern(g),
		Path{Root: ids["sqlserver"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["sqlserver"], "Genre")}}.Pattern(g),
		Path{Root: ids["book"]}.Pattern(g),
	}
	var wg sync.WaitGroup
	ids32 := make([][]PatternID, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ids32[w] = append(ids32[w], pt.Intern(pats[i%len(pats)]))
			}
		}(w)
	}
	wg.Wait()
	if pt.Len() != len(pats) {
		t.Fatalf("expected %d interned patterns, got %d", len(pats), pt.Len())
	}
	for w := 1; w < 8; w++ {
		for i := range ids32[w] {
			if ids32[w][i] != ids32[0][i] {
				t.Fatalf("worker %d interned different ID at %d", w, i)
			}
		}
	}
}

func TestTreePatternKeyAndHeight(t *testing.T) {
	g, ids := fig1(t)
	pt := NewPatternTable()
	genre := pt.Intern(Path{Root: ids["sqlserver"], Edges: []kg.EdgeID{edgeFrom(t, g, ids["sqlserver"], "Genre")}}.Pattern(g))
	root := pt.Intern(Path{Root: ids["sqlserver"]}.Pattern(g))
	rev := pt.Intern(Path{
		Root: ids["sqlserver"],
		Edges: []kg.EdgeID{
			edgeFrom(t, g, ids["sqlserver"], "Developer"),
			edgeFrom(t, g, ids["microsoft"], "Revenue"),
		},
		EdgeEnd: true,
	}.Pattern(g))

	tp1 := TreePattern{Paths: []PatternID{genre, root, rev}}
	tp2 := TreePattern{Paths: []PatternID{genre, root, rev}}
	tp3 := TreePattern{Paths: []PatternID{root, genre, rev}}
	if tp1.Key() != tp2.Key() {
		t.Errorf("equal tree patterns must share key")
	}
	if tp1.Key() == tp3.Key() {
		t.Errorf("keyword order matters for tree patterns")
	}
	if h := tp1.Height(pt); h != 3 {
		t.Errorf("Height = %d, want 3", h)
	}
	if tp1.RootType(pt) != g.LookupType("Software") {
		t.Errorf("RootType wrong")
	}
	r := tp1.Render(g, pt, []string{"database", "software", "revenue"})
	if !strings.Contains(r, "database: (Software) (Genre) (Model)") {
		t.Errorf("Render missing line: %s", r)
	}
}

func TestPathNodes(t *testing.T) {
	g, ids := fig1(t)
	p := Path{
		Root: ids["sqlserver"],
		Edges: []kg.EdgeID{
			edgeFrom(t, g, ids["sqlserver"], "Developer"),
			edgeFrom(t, g, ids["microsoft"], "Revenue"),
		},
		EdgeEnd: true,
	}
	nodes := p.Nodes(g)
	want := []kg.NodeID{ids["sqlserver"], ids["microsoft"], ids["msrev"]}
	if len(nodes) != 3 || nodes[0] != want[0] || nodes[1] != want[1] || nodes[2] != want[2] {
		t.Errorf("Nodes = %v, want %v", nodes, want)
	}
}
