package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func exportFixture() Table {
	return Table{
		Columns: []Column{
			{Name: "Software", Full: "Software"},
			{Name: "Company", Full: "Software.Developer.Company"},
		},
		Rows: [][]string{
			{"SQL Server", "Microsoft"},
			{"Oracle DB", "Oracle, Corp"}, // embedded comma exercises quoting
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	r := csv.NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("want header + 2 rows, got %d", len(recs))
	}
	if recs[0][0] != "Software" || recs[2][1] != "Oracle, Corp" {
		t.Errorf("csv content wrong: %v", recs)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got struct {
		Columns     []string   `json:"columns"`
		FullColumns []string   `json:"fullColumns"`
		Rows        [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(got.Columns) != 2 || got.FullColumns[1] != "Software.Developer.Company" {
		t.Errorf("columns wrong: %+v", got)
	}
	if len(got.Rows) != 2 || got.Rows[0][0] != "SQL Server" {
		t.Errorf("rows wrong: %+v", got.Rows)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Table{}).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON empty: %v", err)
	}
	if !strings.Contains(buf.String(), `"rows":[]`) {
		t.Errorf("empty table should serialize rows as [], got %s", buf.String())
	}
}

func TestMarkdown(t *testing.T) {
	tab := exportFixture()
	tab.Rows = append(tab.Rows, []string{"Post|greSQL", "none"})
	md := tab.Markdown(-1)
	if !strings.Contains(md, "| Software | Company |") {
		t.Errorf("header wrong:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Errorf("separator wrong:\n%s", md)
	}
	if !strings.Contains(md, `Post\|greSQL`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
	// Truncation note.
	short := tab.Markdown(1)
	if !strings.Contains(short, "2 more rows") {
		t.Errorf("truncation note missing:\n%s", short)
	}
	if got := (Table{}).Markdown(5); !strings.Contains(got, "empty") {
		t.Errorf("empty markdown wrong: %q", got)
	}
}
