package search

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// The candidate-root frontier of all three algorithms factors into
// independent shards — PATTERNENUM by (root type, first path-pattern
// choice), LINEARENUM-TOPK and the baseline by root type — because every
// tree pattern is aggregated entirely inside one shard: a tree pattern's
// paths share a single root type, and within a shard subtree scores are
// folded in the same order the serial pass uses. Shards therefore produce
// bit-identical pattern scores regardless of scheduling, and the global
// top-k (a total order on (score, content key) with distinct keys) is
// independent of merge order. That is what lets the parallel path promise
// exact result equivalence with Workers=1 rather than "close enough".

// resolveWorkers maps Options.Workers to an effective pool size:
// 0 (or negative) means GOMAXPROCS, 1 forces the serial path.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// runShards executes n independent shards on a pool of at most `workers`
// goroutines, handing each invocation the worker slot it runs on so shards
// can write into per-worker state without locks. Shards are claimed from an
// atomic counter (work stealing), so skewed shard costs still balance.
// A canceled context stops the pool between shards; the error is returned.
func runShards(ctx context.Context, workers, n int, shard func(worker, i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			shard(0, i)
		}
		// A cancellation that lands inside the final shard (caught only by
		// its pollCancel) must still surface — the parallel path below
		// reports it, and callers discard partial results on error.
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				shard(worker, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// workerState is the lock-free per-worker accumulator: a local bounded
// top-k heap plus local query statistics. Locals are merged into the
// global result after the pool drains; the merge is order-independent
// (distinct content keys, additive stats), so results stay deterministic.
type workerState[T any] struct {
	top   *core.TopK[T]
	stats QueryStats
}

// newWorkerStates allocates one accumulator per worker slot.
func newWorkerStates[T any](workers, k int) []workerState[T] {
	ws := make([]workerState[T], workers)
	for i := range ws {
		ws[i].top = core.NewTopK[T](k)
	}
	return ws
}

// mergeWorkerStates folds every per-worker top-k and stat counter into the
// global accumulators.
func mergeWorkerStates[T any](ws []workerState[T], top *core.TopK[T], stats *QueryStats) {
	for i := range ws {
		top.Merge(ws[i].top)
		stats.CandidateRoots += ws[i].stats.CandidateRoots
		stats.SampledRoots += ws[i].stats.SampledRoots
		stats.PatternsFound += ws[i].stats.PatternsFound
		stats.TreesFound += ws[i].stats.TreesFound
		stats.EmptyChecked += ws[i].stats.EmptyChecked
		stats.BoundPruned += ws[i].stats.BoundPruned
	}
}

// pollCancel is a cheap in-shard cancellation probe: shards poll it inside
// their hot loops so a query dominated by one huge shard still honors the
// caller's timeout, but the context is only consulted every 512th call (a
// context Err can take a lock; per-iteration checks would tax tight loops).
// One instance per shard — it is not safe for concurrent use.
type pollCancel struct {
	ctx      context.Context
	calls    uint32
	canceled bool
}

// hit reports whether the shard should abandon its work. A nil poller
// (callers outside any cancellation scope, e.g. reference tests) never hits.
func (p *pollCancel) hit() bool {
	if p == nil {
		return false
	}
	if p.canceled {
		return true
	}
	p.calls++
	if p.calls&511 == 0 && p.ctx.Err() != nil {
		p.canceled = true
	}
	return p.canceled
}

// typeRNG derives the sampling source for one root type. Both the serial
// and the parallel path seed sampling per type (rather than drawing from
// one stream across types), so the sampled root set of a type does not
// depend on which worker processed the preceding types.
func typeRNG(seed int64, c kg.TypeID) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	mix := uint64(c+1) * 0x9E3779B97F4A7C15 // Fibonacci hashing spreads dense type IDs
	return rand.New(rand.NewSource(seed ^ int64(mix>>1)))
}

// materializeAll fills in the valid subtrees of the ranked patterns,
// fanning the per-pattern materialization across the worker pool (each
// pattern's trees are independent, so slots never contend).
func materializeAll(ctx context.Context, ix *index.Index, words []text.WordID, patterns []RankedPattern, o Options) error {
	workers := resolveWorkers(o.Workers)
	return runShards(ctx, workers, len(patterns), func(_, i int) {
		patterns[i].Trees = materializeTrees(ix, words, patterns[i].Pattern, o, &pollCancel{ctx: ctx})
	})
}
