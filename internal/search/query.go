// Package search implements the paper's three query-processing approaches
// for the d-height tree pattern problem:
//
//	PETopK   — PATTERNENUM (Section 4.1, Algorithm 2): enumerate path-pattern
//	           combinations per root type over the pattern-first index and
//	           join them at candidate roots.
//	LETopK   — LINEARENUM-TOPK (Section 4.2, Algorithms 3–4): find candidate
//	           roots over the root-first index, expand per root, partition by
//	           root type, and optionally sample roots (Λ, ρ) to estimate
//	           pattern scores.
//	Baseline — the enumeration–aggregation adaption of prior subtree-search
//	           work (Section 2.3): online backward search for candidate
//	           roots, online path enumeration, group-by pattern.
package search

import (
	"context"
	"fmt"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// Options configure a query.
type Options struct {
	// K is the number of tree patterns to return; defaults to 100
	// (the paper's default in Section 5.1).
	K int
	// Agg aggregates subtree scores into pattern scores; default sum.
	Agg core.Agg
	// Scorer weighs score1/score2/score3; zero value means the paper's
	// defaults z1=-1, z2=1, z3=1.
	Scorer *core.Scorer
	// Lambda is LETopK's sampling threshold Λ: sampling activates for a
	// root type when its valid-subtree count NR >= Lambda. Lambda <= 0
	// disables sampling entirely (Λ = +∞ in the paper's notation).
	Lambda int64
	// Rho is LETopK's sampling rate ρ in (0,1]; values outside the range
	// disable sampling.
	Rho float64
	// Seed drives sampling; fixed default keeps runs reproducible.
	Seed int64
	// RequireTreeShape drops path tuples whose union re-converges
	// (ablation; see DESIGN.md).
	RequireTreeShape bool
	// CollectTrees materializes the valid subtrees of the final top-k
	// patterns (needed for table answers). Default true; experiments that
	// only time ranking can switch it off.
	SkipTrees bool
	// MaxTreesPerPattern caps materialized subtrees per pattern
	// (0 = unlimited). Scoring always uses all subtrees.
	MaxTreesPerPattern int
	// Workers bounds intra-query parallelism: the candidate-root frontier
	// is sharded across a worker pool of this size (PATTERNENUM by root
	// type and first pattern choice, LINEARENUM-TOPK and the baseline by
	// root type), with per-worker top-k heaps merged into the global
	// queue. 0 (or negative) means GOMAXPROCS; 1 forces the serial path.
	// Parallel execution returns exactly the serial results (parallel.go
	// explains why the sharding preserves bit-identical scores).
	Workers int
	// CollectRootAggs records, per ranked pattern, the per-candidate-root
	// partial aggregates (Theorem 5's decomposition). A scatter-gather
	// engine whose shards partition the candidate roots needs these to
	// merge the same tree pattern across shards bit-exactly: partials are
	// re-folded in ascending root order, reproducing the unsharded fold.
	CollectRootAggs bool
	// SampleSelectK decouples LINEARENUM's sampled-selection width from K
	// (0 means "use K"): the estimated per-type local top-SampleSelectK
	// is re-scored exactly, everything else is dropped. The shard layer
	// retains every pattern (K is effectively unbounded there) but must
	// keep sampling's work bound at the caller's k. Ignored when sampling
	// is off.
	SampleSelectK int
	// AutoBias scales the planner's PATTERNENUM preference when the
	// executor resolves AlgoAuto: PE is chosen iff its estimated cost
	// (the pattern-combination space) is at most AutoBias times
	// LINEARENUM's (candidate roots + half the subtree frontier). 0 means
	// DefaultAutoBias; values > 1 favor PE, values < 1 favor LE. Ignored
	// for explicit algorithms.
	AutoBias float64
	// Staged reverts to the original staged enumerate→aggregate execution:
	// no top-k bound pushdown, no predicate pushdown below pattern
	// expansion, and per-(pattern, root) fetch allocations instead of
	// reused scratch buffers (see stream.go for the streaming pipeline it
	// disables). Answers are bit-identical either way — only cost differs —
	// so the flag exists as the ablation baseline the benchmark suite and
	// the equivalence tests compare streaming against.
	Staged bool
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 100
	}
	if o.Scorer == nil {
		s := core.DefaultScorer()
		o.Scorer = &s
	}
	if o.Rho <= 0 || o.Rho > 1 {
		o.Rho = 1
	}
	return o
}

// samplingEnabled reports whether (Λ, ρ) actually activate sampling.
func (o Options) samplingEnabled() bool { return o.Lambda > 0 && o.Rho < 1 }

// RankedPattern is one answer: a tree pattern with its aggregate score and
// (optionally) the valid subtrees that compose its table rows.
type RankedPattern struct {
	Pattern core.TreePattern
	Agg     core.PatternScore
	Score   float64
	Trees   []core.Subtree
	// RootAggs is the per-root decomposition of Agg in ascending root
	// order, populated only under Options.CollectRootAggs. Folding these
	// with PatternScore.Merge in root order reproduces Agg bit-exactly.
	RootAggs []RootAgg
}

// RootAgg is one candidate root's contribution to a pattern's aggregate.
type RootAgg struct {
	Root kg.NodeID
	Agg  core.PatternScore
}

// QueryStats instruments one query execution.
type QueryStats struct {
	Surfaces       []string // query tokens as typed
	Words          []text.WordID
	Elapsed        time.Duration
	Stages         StageTimings // per-stage wall clock of the staged pipeline
	CandidateRoots int
	SampledRoots   int
	PatternsFound  int   // nonempty tree patterns seen
	TreesFound     int64 // valid subtrees aggregated (sampled runs count sampled trees)
	EmptyChecked   int64 // pattern combinations checked that had no subtree (PETopK waste)
	// BoundPruned counts enumeration units the streaming executor's
	// k-th-score bound discarded before expansion: tree-pattern
	// combinations (PATTERNENUM) or candidate roots (TopTrees). Pruned
	// units never reach PatternsFound or EmptyChecked. Always 0 under
	// Options.Staged, under CollectRootAggs (the shard scatter must
	// surface every pattern regardless of local rank), and in LINEARENUM
	// (its per-root partial aggregates are lower bounds of the final
	// pattern scores, so no sound mid-enumeration cut exists).
	BoundPruned int64
}

// Result is the output of one query.
type Result struct {
	Patterns []RankedPattern
	Stats    QueryStats
	// Plan records the resolved algorithm and the planner's statistics.
	Plan Plan
	// Table resolves Pattern IDs when the executing algorithm interned
	// its own pattern table (the baseline); nil means the index's table.
	Table *core.PatternTable
}

// ResolveQuery tokenizes q against the index dictionary and returns the
// distinct canonical word IDs. Words absent from the corpus resolve to
// text.NoWord: the query then has no answers (every keyword must be
// contained in each subtree), and callers get an empty result rather than
// an error.
func ResolveQuery(ix *index.Index, q string) (ids []text.WordID, surfaces []string) {
	raw, surf := ix.Dict().QueryTokens(q)
	seen := map[text.WordID]bool{}
	for i, id := range raw {
		if id != text.NoWord && seen[id] {
			continue // q is a set of words
		}
		seen[id] = true
		ids = append(ids, id)
		surfaces = append(surfaces, surf[i])
	}
	return ids, surfaces
}

// queryable reports whether all keywords have postings; a query with an
// unknown or unmatched keyword has no valid subtrees.
func queryable(ix *index.Index, words []text.WordID) bool {
	if len(words) == 0 {
		return false
	}
	for _, w := range words {
		if w == text.NoWord || len(ix.Roots(w)) == 0 {
			return false
		}
	}
	return true
}

// intersectSorted intersects sorted NodeID lists, smallest-first with
// binary probing, the root-intersection primitive of Algorithm 2 line 5 and
// Algorithm 3 line 1.
func intersectSorted(lists [][]kg.NodeID) []kg.NodeID {
	if len(lists) == 0 {
		return nil
	}
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	if len(lists[smallest]) == 0 {
		return nil
	}
	out := make([]kg.NodeID, 0, len(lists[smallest]))
	cursors := make([]int, len(lists))
outer:
	for _, v := range lists[smallest] {
		for i, l := range lists {
			if i == smallest {
				continue
			}
			c := cursors[i]
			// Gallop forward: candidate lists are sorted ascending.
			for c < len(l) && l[c] < v {
				c++
			}
			cursors[i] = c
			if c == len(l) {
				if len(out) == 0 {
					return nil
				}
				break outer
			}
			if l[c] != v {
				continue outer
			}
		}
		out = append(out, v)
	}
	return out
}

// tupleVisitor receives each valid subtree enumerated from a path product.
type tupleVisitor func(paths []core.Path, terms []core.ScoreTerms)

// productPaths enumerates the cartesian product of per-keyword path lists
// rooted at the same node (Algorithm 2 line 7 / Algorithm 3 line 9): each
// combination is one valid subtree. The visitor's arguments are reused
// across calls; it must copy what it keeps. pc is polled once per tuple so
// a canceled query stops inside a huge single-root product rather than
// only at the next root or pattern boundary — on a hit the recursion
// unwinds the whole product immediately (every frame returns false) and
// the remaining tuples are never visited. sc, when non-nil, lends the
// tuple buffers so the hot path allocates nothing per (pattern, root).
func productPaths(g *kg.Graph, lists [][]pathTerm, requireTree bool, root kg.NodeID, pc *pollCancel, sc *aggScratch, visit tupleVisitor) {
	m := len(lists)
	var paths []core.Path
	var terms []core.ScoreTerms
	if sc != nil {
		paths, terms = sc.tuple(m)
	} else {
		paths = make([]core.Path, m)
		terms = make([]core.ScoreTerms, m)
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == m {
			if pc.hit() {
				return false
			}
			if requireTree {
				st := core.Subtree{Root: root, Paths: paths}
				if !st.IsTreeShaped(g) {
					return true
				}
			}
			visit(paths, terms)
			return true
		}
		for _, pt := range lists[i] {
			paths[i] = pt.path
			terms[i] = pt.terms
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// pathTerm pairs a concrete path with its precomputed score terms.
type pathTerm struct {
	path  core.Path
	terms core.ScoreTerms
}

// pathsPF fetches Paths(w, P, r) from the pattern-first index as pathTerms.
func pathsPF(ix *index.Index, w text.WordID, p core.PatternID, r kg.NodeID) []pathTerm {
	ps, ok := ix.FindPathsPF(w, p, r)
	if !ok {
		return nil
	}
	out := make([]pathTerm, ps.Len())
	var e index.Entry
	for k := range out {
		ps.At(k, &e)
		out[k] = pathTerm{path: ix.Path(w, &e), terms: e.Terms}
	}
	return out
}

// appendPathsPF is pathsPF into a caller-owned buffer: the streaming
// executor fetches every (pattern, root) run into per-worker scratch that
// is truncated and refilled instead of reallocated. The PathSet cursor
// materializes postings one at a time from the columnar arrays, so the
// run itself is never allocated.
func appendPathsPF(dst []pathTerm, ix *index.Index, w text.WordID, p core.PatternID, r kg.NodeID) []pathTerm {
	ps, ok := ix.FindPathsPF(w, p, r)
	if !ok {
		return dst
	}
	var e index.Entry
	for k, n := 0, ps.Len(); k < n; k++ {
		ps.At(k, &e)
		dst = append(dst, pathTerm{path: ix.Path(w, &e), terms: e.Terms})
	}
	return dst
}

// pathsRF fetches Paths(w, r, P) from the root-first index as pathTerms.
func pathsRF(ix *index.Index, w text.WordID, r kg.NodeID, p core.PatternID) []pathTerm {
	var out []pathTerm
	ix.PathsRF(w, r, p, func(e *index.Entry) {
		out = append(out, pathTerm{path: ix.Path(w, e), terms: e.Terms})
	})
	return out
}

// aggregatePattern scores every subtree of tree pattern tp across the given
// roots using the pattern-first index, without materializing trees. A hit
// on pc returns early with a partial score; the caller is aborting anyway.
//
// The fold is canonically two-level — subtree scores fold into a per-root
// partial, per-root partials Merge in ascending root order — so that the
// shard layer, which re-folds per-root partials gathered from disjoint
// root partitions, reproduces exactly these bits (see Options.
// CollectRootAggs). Every aggregation site in this package uses the same
// shape.
//
// sc, when non-nil, lends the per-keyword list and tuple buffers so the
// streaming hot path performs zero allocations per (pattern, root); a nil
// sc keeps the original allocating behavior (the Options.Staged baseline).
func aggregatePattern(ix *index.Index, words []text.WordID, tp core.TreePattern, roots []kg.NodeID, o Options, pc *pollCancel, sc *aggScratch) (core.PatternScore, int64, []RootAgg) {
	var agg core.PatternScore
	var n int64
	var rootAggs []RootAgg
	var lists [][]pathTerm
	if sc != nil {
		lists = sc.listsFor(len(words))
	} else {
		lists = make([][]pathTerm, len(words))
	}
	for _, r := range roots {
		if pc.hit() {
			break
		}
		ok := true
		for i, w := range words {
			if sc != nil {
				lists[i] = appendPathsPF(lists[i][:0], ix, w, tp.Paths[i], r)
			} else {
				lists[i] = pathsPF(ix, w, tp.Paths[i], r)
			}
			if len(lists[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var local core.PatternScore
		productPaths(ix.Graph(), lists, o.RequireTreeShape, r, pc, sc, func(_ []core.Path, terms []core.ScoreTerms) {
			local.Add(o.Scorer.Tree(terms))
			n++
		})
		if local.Count == 0 {
			continue // every tuple filtered out (RequireTreeShape)
		}
		agg.Merge(local)
		if o.CollectRootAggs {
			rootAggs = append(rootAggs, RootAgg{Root: r, Agg: local})
		}
	}
	return agg, n, rootAggs
}

// materializeTrees collects the valid subtrees of tp (up to the per-pattern
// cap) across all roots where it is nonempty, via the pattern-first index.
func materializeTrees(ix *index.Index, words []text.WordID, tp core.TreePattern, o Options, pc *pollCancel) []core.Subtree {
	rootLists := make([][]kg.NodeID, len(words))
	for i, w := range words {
		rootLists[i] = ix.RootsOf(w, tp.Paths[i])
	}
	roots := intersectSorted(rootLists)
	var out []core.Subtree
	lists := make([][]pathTerm, len(words))
	for _, r := range roots {
		if pc.hit() {
			break
		}
		ok := true
		for i, w := range words {
			lists[i] = pathsPF(ix, w, tp.Paths[i], r)
			if len(lists[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		productPaths(ix.Graph(), lists, o.RequireTreeShape, r, pc, nil, func(paths []core.Path, terms []core.ScoreTerms) {
			if o.MaxTreesPerPattern > 0 && len(out) >= o.MaxTreesPerPattern {
				return
			}
			st := core.Subtree{
				Root:  r,
				Paths: append([]core.Path(nil), paths...),
				Terms: append([]core.ScoreTerms(nil), terms...),
			}
			out = append(out, st)
		})
		if o.MaxTreesPerPattern > 0 && len(out) >= o.MaxTreesPerPattern {
			break
		}
	}
	return out
}

// MaterializeTrees collects the valid subtrees of one ranked tree pattern
// (up to Options.MaxTreesPerPattern, in ascending root order) through the
// pattern-first index. The scatter-gather engine uses it to fill in tables
// for globally ranked patterns after the per-shard searches ran with
// SkipTrees.
func MaterializeTrees(ctx context.Context, ix *index.Index, words []text.WordID, tp core.TreePattern, opts Options) []core.Subtree {
	o := opts.withDefaults()
	return materializeTrees(ix, words, tp, o, &pollCancel{ctx: ctx})
}

// Table renders a ranked pattern as a table answer.
func (rp RankedPattern) Table(ix *index.Index) core.Table {
	return core.ComposeTable(ix.Graph(), ix.PatternTable(), rp.Pattern, rp.Trees)
}

// Describe renders the pattern for humans.
func (rp RankedPattern) Describe(ix *index.Index, surfaces []string) string {
	return fmt.Sprintf("score=%.4f trees=%d\n%s", rp.Score, rp.Agg.Count,
		rp.Pattern.Render(ix.Graph(), ix.PatternTable(), surfaces))
}
