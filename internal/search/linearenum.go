package search

import (
	"context"
	"math"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// LETopK runs LINEARENUM-TOPK (Algorithms 3–4): candidate roots are the
// intersection of the per-keyword root lists; each root is expanded through
// the root-first index into the tree patterns and valid subtrees under it.
// Roots are processed one type at a time, which bounds the aggregation
// dictionary by the largest per-type answer set (Section 4.2.1). When the
// per-type subtree count NR reaches opts.Lambda, roots are sampled with
// rate opts.Rho and pattern scores are estimated; the estimated local top-k
// patterns are then re-scored exactly before entering the global queue
// (Section 4.2.2).
func LETopK(ix *index.Index, query string, opts Options) *Result {
	res, _ := LETopKCtx(context.Background(), ix, query, opts)
	return res
}

// LETopKCtx is LETopK with cancellation: a canceled or expired context
// stops the expansion between root types and returns the context's error.
func LETopKCtx(ctx context.Context, ix *index.Index, query string, opts Options) (*Result, error) {
	return Execute(ctx, ix, query, AlgoLE, opts)
}

// dictEntry is one tree pattern accumulating in TreeDict.
type dictEntry struct {
	tp       core.TreePattern
	agg      core.PatternScore
	rootAggs []RootAgg // per-root partials, kept under CollectRootAggs
}

// LETopKWords is LETopK on pre-resolved keywords.
func LETopKWords(ix *index.Index, words []text.WordID, surfaces []string, opts Options) *Result {
	res, _ := LETopKWordsCtx(context.Background(), ix, words, surfaces, opts)
	return res
}

// LETopKWordsCtx is LETopKWords with cancellation; it runs the staged
// executor with the algorithm pinned to LINEARENUM-TOPK.
func LETopKWordsCtx(ctx context.Context, ix *index.Index, words []text.WordID, surfaces []string, opts Options) (*Result, error) {
	return ExecuteWords(ctx, ix, words, surfaces, AlgoLE, opts)
}

// leEnumerate is LINEARENUM-TOPK's enumerate stage over the prepared
// candidate roots (Algorithm 3 line 1 ran in prepare; lines 2-3's by-type
// partition too). Root types are sharded across the worker pool configured
// by Options.Workers; a type's whole pipeline — subtree counting,
// sampling, expansion, estimation, exact re-scoring — runs inside one
// shard, and sampling is seeded per type, so the parallel run returns
// exactly the serial results. The caller folds the returned per-worker
// accumulators in the aggregate stage.
func leEnumerate(ctx context.Context, ix *index.Index, prep *prepared, o Options) ([]workerState[RankedPattern], error) {
	words := prep.words
	pt := ix.PatternTable()
	workers := resolveWorkers(o.Workers)
	ws := newWorkerStates[RankedPattern](workers, o.K)
	// Streaming mode expands roots through per-worker arena scratch with
	// the keyword predicate pushed below pattern expansion (leScratch.
	// fetch); LINEARENUM gets no score pruning — its per-root partials
	// are lower bounds, so no mid-type cut is sound (stream.go).
	var scratches []leScratch
	if !o.Staged {
		scratches = make([]leScratch, workers)
	}
	err := runShards(ctx, workers, len(prep.types), func(worker, ti int) {
		c := prep.types[ti]
		rc := prep.byType[c]
		st := &ws[worker].stats
		ltop := ws[worker].top
		pc := &pollCancel{ctx: ctx}
		var sc *leScratch
		if !o.Staged {
			sc = &scratches[worker]
		}

		// Line 4: NR = Σ_r Π_i |Paths(wi, r)| without enumeration.
		nr := prep.typeNR(ix, ti)
		rate := 1.0
		if o.samplingEnabled() && nr >= o.Lambda {
			rate = o.Rho
		}
		rng := typeRNG(o.Seed, c)

		// Lines 6-8: expand (a sample of) the roots of this type.
		treeDict := map[string]*dictEntry{}
		for _, r := range rc {
			if pc.hit() {
				return
			}
			if rate < 1 && rng.Float64() >= rate {
				continue
			}
			st.SampledRoots++
			expandRoot(ix, words, r, o, treeDict, pc, sc)
		}

		st.PatternsFound += len(treeDict)
		for _, de := range treeDict {
			st.TreesFound += int64(de.agg.Count)
		}

		if rate < 1 {
			// Lines 9-11: rank by estimated score, then re-score the local
			// top-k exactly over all roots of this type in one filtered
			// pass (each root only expands pattern combinations that can
			// still hit a selected pattern).
			selK := o.SampleSelectK
			if selK <= 0 {
				selK = o.K
			}
			local := core.NewTopK[*dictEntry](selK)
			for _, de := range treeDict {
				est := de.agg.Scale(1 / rate).Value(o.Agg)
				local.Offer(est, de.tp.ContentKey(pt), de)
			}
			selected := local.Results()
			exacts := aggregateSelected(ix, words, selected, rc, o, pc)
			for _, de := range selected {
				exact, ok := exacts[de.tp.Key()]
				if !ok || exact.agg.Count == 0 {
					continue
				}
				ltop.Offer(exact.agg.Value(o.Agg), de.tp.ContentKey(pt),
					RankedPattern{Pattern: de.tp, Agg: exact.agg, Score: exact.agg.Value(o.Agg), RootAggs: exact.rootAggs})
			}
		} else {
			for _, de := range treeDict {
				ltop.Offer(de.agg.Value(o.Agg), de.tp.ContentKey(pt),
					RankedPattern{Pattern: de.tp, Agg: de.agg, Score: de.agg.Value(o.Agg), RootAggs: de.rootAggs})
			}
		}
	})
	return ws, err
}

// NumCandidateRoots returns |∩_i Roots(wi)| for a query: the number of
// nodes that can root a valid subtree (Algorithm 3 line 1), without any
// expansion. Used by query explanation.
func NumCandidateRoots(ix *index.Index, query string) int {
	words, _ := ResolveQuery(ix, query)
	if !queryable(ix, words) {
		return 0
	}
	rootLists := make([][]kg.NodeID, len(words))
	for i, w := range words {
		rootLists[i] = ix.Roots(w)
	}
	return len(intersectSorted(rootLists))
}

// SubtreeCount returns the query's total valid-subtree count
// Σ_r Π_i |Paths(wi, r)| over the candidate roots, without enumerating
// anything (index lookups only). The sharded Explain sums this across
// shards before deciding whether pattern enumeration fits its budget.
func SubtreeCount(ix *index.Index, query string) int64 {
	words, _ := ResolveQuery(ix, query)
	if !queryable(ix, words) {
		return 0
	}
	rootLists := make([][]kg.NodeID, len(words))
	for i, w := range words {
		rootLists[i] = ix.Roots(w)
	}
	return subtreeCount(ix, words, intersectSorted(rootLists))
}

// subtreeCount computes NR = Σ_r Π_i |Paths(wi, r)|, saturating at
// MaxInt64 to stay meaningful on explosive queries.
func subtreeCount(ix *index.Index, words []text.WordID, roots []kg.NodeID) int64 {
	return subtreeCountPoll(ix, words, roots, nil)
}

// subtreeCountPoll is subtreeCount with a cancellation probe: a hit stops
// the count early with the partial total (the caller is aborting anyway).
func subtreeCountPoll(ix *index.Index, words []text.WordID, roots []kg.NodeID, pc *pollCancel) int64 {
	var total int64
	for _, r := range roots {
		if pc.hit() {
			break
		}
		prod := 1.0
		for _, w := range words {
			prod *= float64(ix.NumPathsAt(w, r))
		}
		if prod >= math.MaxInt64-float64(total) {
			return math.MaxInt64
		}
		total += int64(prod)
	}
	return total
}

// expandRoot is subroutine EXPANDROOT of Algorithm 3: the product of
// Patterns(wi, r) gives the (necessarily non-empty) tree patterns under r;
// for each, the product of Paths(wi, r, Pi) gives its valid subtrees, which
// are folded into TreeDict.
//
// sc, when non-nil, switches to the streaming fetch: the keyword predicate
// is evaluated from the run table before anything is materialized, and
// each keyword's paths arrive in one root-first arena walk — replacing
// |Patterns(wi, r)| binary-searched fetches and their allocations with the
// same (pattern, path) sequences, so the fold is bit-identical. A nil sc
// keeps the original per-pattern fetches (the Options.Staged baseline).
func expandRoot(ix *index.Index, words []text.WordID, r kg.NodeID, o Options, treeDict map[string]*dictEntry, pc *pollCancel, sc *leScratch) {
	m := len(words)
	var patLists [][]core.PatternID
	var pathLists [][][]pathTerm
	var choice []core.PatternID
	var chosenPaths [][]pathTerm
	var psc *aggScratch
	if sc != nil {
		patLists, pathLists = sc.fetch(ix, words, r)
		if patLists == nil {
			return // some keyword has no path at r: predicate pushdown
		}
		choice, chosenPaths = sc.choice[:m], sc.chosen[:m]
		psc = &sc.agg
	} else {
		patLists = make([][]core.PatternID, m)
		pathLists = make([][][]pathTerm, m)
		for i, w := range words {
			patLists[i] = ix.PatternsAt(w, r)
			if len(patLists[i]) == 0 {
				return // not a candidate root for this keyword
			}
			pathLists[i] = make([][]pathTerm, len(patLists[i]))
			for j, p := range patLists[i] {
				pathLists[i][j] = pathsRF(ix, w, r, p)
			}
		}
		choice = make([]core.PatternID, m)
		chosenPaths = make([][]pathTerm, m)
	}

	var rec func(i int)
	rec = func(i int) {
		if i == m {
			// Two-level fold (see aggregatePattern): this root's subtrees
			// fold into a local partial that merges into the dictionary
			// entry, so LE produces the same bits as PE and as the
			// re-folded shard gather.
			var local core.PatternScore
			productPaths(ix.Graph(), chosenPaths, o.RequireTreeShape, r, pc, psc, func(_ []core.Path, terms []core.ScoreTerms) {
				local.Add(o.Scorer.Tree(terms))
			})
			if local.Count == 0 {
				return // every tuple filtered out (RequireTreeShape)
			}
			tp := core.TreePattern{Paths: choice}
			key := tp.Key()
			de, ok := treeDict[key]
			if !ok {
				de = &dictEntry{tp: core.TreePattern{Paths: append([]core.PatternID(nil), choice...)}}
				treeDict[key] = de
			}
			de.agg.Merge(local)
			if o.CollectRootAggs {
				de.rootAggs = append(de.rootAggs, RootAgg{Root: r, Agg: local})
			}
			return
		}
		for j, p := range patLists[i] {
			choice[i] = p
			chosenPaths[i] = pathLists[i][j]
			rec(i + 1)
		}
	}
	rec(0)
}

// aggregatePatternRF exactly scores pattern tp over the given roots using
// the root-first index (used by tests as the re-scoring reference). The
// fold is two-level like every aggregation site (see aggregatePattern).
func aggregatePatternRF(ix *index.Index, words []text.WordID, tp core.TreePattern, roots []kg.NodeID, o Options) core.PatternScore {
	var agg core.PatternScore
	lists := make([][]pathTerm, len(words))
	for _, r := range roots {
		ok := true
		for i, w := range words {
			lists[i] = pathsRF(ix, w, r, tp.Paths[i])
			if len(lists[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var local core.PatternScore
		productPaths(ix.Graph(), lists, o.RequireTreeShape, r, nil, nil, func(_ []core.Path, terms []core.ScoreTerms) {
			local.Add(o.Scorer.Tree(terms))
		})
		if local.Count > 0 {
			agg.Merge(local)
		}
	}
	return agg
}

// selAgg is one selected pattern's exact re-score with its per-root
// decomposition.
type selAgg struct {
	agg      core.PatternScore
	rootAggs []RootAgg
}

// aggregateSelected exactly scores a set of selected tree patterns over
// the given roots in one pass: per root, each keyword's pattern list is
// intersected with the patterns the selection uses at that position, and
// only surviving combinations are expanded. Roots containing none of the
// selected patterns are skipped after m sorted intersections. A hit on pc
// returns early with partial scores; the caller is aborting anyway.
func aggregateSelected(ix *index.Index, words []text.WordID, selected []*dictEntry, roots []kg.NodeID, o Options, pc *pollCancel) map[string]*selAgg {
	m := len(words)
	out := make(map[string]*selAgg, len(selected))
	pos := make([]map[core.PatternID]bool, m)
	for i := range pos {
		pos[i] = map[core.PatternID]bool{}
	}
	for _, de := range selected {
		out[de.tp.Key()] = &selAgg{}
		for i, p := range de.tp.Paths {
			pos[i][p] = true
		}
	}
	cand := make([][]core.PatternID, m)
	chosen := make([][]pathTerm, m)
	choice := make([]core.PatternID, m)
	for _, r := range roots {
		if pc.hit() {
			break
		}
		ok := true
		for i, w := range words {
			cand[i] = cand[i][:0]
			for _, p := range ix.PatternsAt(w, r) {
				if pos[i][p] {
					cand[i] = append(cand[i], p)
				}
			}
			if len(cand[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var rec func(i int)
		rec = func(i int) {
			if i == m {
				sa, hit := out[core.TreePattern{Paths: choice}.Key()]
				if !hit {
					return // combination exists but was not selected
				}
				var local core.PatternScore
				productPaths(ix.Graph(), chosen, o.RequireTreeShape, r, pc, nil, func(_ []core.Path, terms []core.ScoreTerms) {
					local.Add(o.Scorer.Tree(terms))
				})
				if local.Count == 0 {
					return
				}
				sa.agg.Merge(local)
				if o.CollectRootAggs {
					sa.rootAggs = append(sa.rootAggs, RootAgg{Root: r, Agg: local})
				}
				return
			}
			for _, p := range cand[i] {
				choice[i] = p
				chosen[i] = pathsRF(ix, words[i], r, p)
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out
}

// CountAll reports, for grouping queries in the experiments of Section 5,
// the total number of (non-empty) tree patterns and valid subtrees of a
// query, without ranking. Subtrees are counted as Σ_r Π_i |Paths(wi, r)|;
// patterns by enumerating the pattern products of every candidate root.
func CountAll(ix *index.Index, query string) (patterns int, trees int64) {
	patterns, trees, _ = CountAllCapped(ix, query, 0)
	return patterns, trees
}

// CountAllCapped is CountAll with a work budget: when the query has more
// than cap valid subtrees (cap > 0), pattern enumeration — whose cost is
// bounded by the subtree count — is skipped and exceeded is true with
// patterns = -1. The experiment harness uses this to identify explosion
// queries cheaply.
func CountAllCapped(ix *index.Index, query string, budget int64) (patterns int, trees int64, exceeded bool) {
	seen, trees, exceeded := countAllKeyed(ix, query, budget, func(tp core.TreePattern) string { return tp.Key() })
	if exceeded {
		return -1, trees, true
	}
	return len(seen), trees, false
}

// CountAllContent is CountAllCapped with content-derived pattern keys: the
// returned set identifies tree patterns by their path-pattern contents, so
// sets computed over indexes with independently interned PatternIDs (the
// per-shard indexes of a scatter-gather engine) union correctly. A nil set
// with exceeded=true means the budget was hit.
func CountAllContent(ix *index.Index, query string, budget int64) (patterns map[string]struct{}, trees int64, exceeded bool) {
	pt := ix.PatternTable()
	return countAllKeyed(ix, query, budget, func(tp core.TreePattern) string { return tp.ContentKey(pt) })
}

// countAllKeyed enumerates the candidate roots' pattern products, filing
// each distinct tree pattern under keyFn.
func countAllKeyed(ix *index.Index, query string, budget int64, keyFn func(core.TreePattern) string) (map[string]struct{}, int64, bool) {
	words, _ := ResolveQuery(ix, query)
	if !queryable(ix, words) {
		return map[string]struct{}{}, 0, false
	}
	rootLists := make([][]kg.NodeID, len(words))
	for i, w := range words {
		rootLists[i] = ix.Roots(w)
	}
	candidates := intersectSorted(rootLists)
	trees := subtreeCount(ix, words, candidates)
	if budget > 0 && trees > budget {
		return nil, trees, true
	}

	seen := map[string]struct{}{}
	m := len(words)
	patLists := make([][]core.PatternID, m)
	choice := make([]core.PatternID, m)
	for _, r := range candidates {
		ok := true
		for i, w := range words {
			patLists[i] = ix.PatternsAt(w, r)
			if len(patLists[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var rec func(i int)
		rec = func(i int) {
			if i == m {
				seen[keyFn(core.TreePattern{Paths: choice})] = struct{}{}
				return
			}
			for _, p := range patLists[i] {
				choice[i] = p
				rec(i + 1)
			}
		}
		rec(0)
	}
	return seen, trees, false
}
