package search

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/rank"
	"kbtable/internal/text"
)

// BaselineIndex is the "proper preprocessing" granted to the
// enumeration–aggregation baseline of Section 2.3: a plain keyword →
// matching-element inverted index (the same footing BANKS-style systems
// assume), but crucially *no* materialized path patterns. Everything
// path-shaped is recomputed online per query.
type BaselineIndex struct {
	g    *kg.Graph
	d    int
	dict *text.Dict
	pr   []float64

	nodeMatches [][]nodeMatch // per canonical word
	attrMatches [][]attrMatch // per canonical word
	edgesByAttr [][]kg.EdgeID // attr -> edges carrying it

	rootFilter func(kg.NodeID) bool // nil = every node may root answers
}

type nodeMatch struct {
	Node kg.NodeID
	Sim  float64
}

type attrMatch struct {
	Attr kg.AttrID
	Sim  float64
}

// BaselineOptions configure baseline preprocessing.
type BaselineOptions struct {
	// D is the height threshold, as for the path index.
	D int
	// PageRank or UniformPR as in index.Options.
	PageRank  []float64
	UniformPR bool
	// Synonyms as in index.Options.
	Synonyms map[string]string
	// RootFilter, when non-nil, restricts candidate roots to nodes it
	// accepts (the shard layer passes its partition's ownership test).
	// Keyword matches anywhere in the graph still count — only the roots
	// of answers are filtered.
	RootFilter func(kg.NodeID) bool
}

// NewBaseline builds the baseline's keyword-match index.
func NewBaseline(g *kg.Graph, opts BaselineOptions) (*BaselineIndex, error) {
	if opts.D < 1 {
		return nil, fmt.Errorf("search: baseline height threshold D must be >= 1, got %d", opts.D)
	}
	pr := opts.PageRank
	if pr == nil {
		if opts.UniformPR {
			pr = rank.Uniform(g)
		} else {
			pr = rank.PageRank(g, rank.Options{})
		}
	}
	if len(pr) != g.NumNodes() {
		return nil, fmt.Errorf("search: PageRank vector has %d entries for %d nodes", len(pr), g.NumNodes())
	}
	b := &BaselineIndex{g: g, d: opts.D, dict: text.NewDict(), pr: pr, rootFilter: opts.RootFilter}
	for alias, canon := range opts.Synonyms {
		b.dict.AddSynonym(alias, canon)
	}

	typeSims := make([][]wordSimPair, g.NumTypes())
	for t := 0; t < g.NumTypes(); t++ {
		if kg.TypeID(t) == kg.LiteralType {
			continue // dummy entities' type is omitted, like the path index
		}
		typeSims[t] = wordSimPairs(b.dict, g.TypeName(kg.TypeID(t)))
	}
	grow := func(w text.WordID) {
		for int(w) >= len(b.nodeMatches) {
			b.nodeMatches = append(b.nodeMatches, nil)
			b.attrMatches = append(b.attrMatches, nil)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		best := map[text.WordID]float64{}
		for _, ws := range wordSimPairs(b.dict, g.Text(kg.NodeID(v))) {
			if ws.Sim > best[ws.Word] {
				best[ws.Word] = ws.Sim
			}
		}
		for _, ws := range typeSims[g.Type(kg.NodeID(v))] {
			if ws.Sim > best[ws.Word] {
				best[ws.Word] = ws.Sim
			}
		}
		for w, sim := range best {
			grow(w)
			b.nodeMatches[w] = append(b.nodeMatches[w], nodeMatch{Node: kg.NodeID(v), Sim: sim})
		}
	}
	for a := 0; a < g.NumAttrs(); a++ {
		for _, ws := range wordSimPairs(b.dict, g.AttrName(kg.AttrID(a))) {
			grow(ws.Word)
			b.attrMatches[ws.Word] = append(b.attrMatches[ws.Word], attrMatch{Attr: kg.AttrID(a), Sim: ws.Sim})
		}
	}
	b.edgesByAttr = make([][]kg.EdgeID, g.NumAttrs())
	for e := 0; e < g.NumEdges(); e++ {
		a := g.Edge(kg.EdgeID(e)).Attr
		b.edgesByAttr[a] = append(b.edgesByAttr[a], kg.EdgeID(e))
	}
	return b, nil
}

// wordSimPair mirrors index.wordSim for the baseline's own dictionary.
type wordSimPair struct {
	Word text.WordID
	Sim  float64
}

func wordSimPairs(d *text.Dict, s string) []wordSimPair {
	toks := text.TokenSet(s)
	if len(toks) == 0 {
		return nil
	}
	sim := 1.0 / float64(len(toks))
	seen := map[text.WordID]struct{}{}
	out := make([]wordSimPair, 0, len(toks))
	for _, t := range toks {
		id := d.Canonical(d.Intern(t))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, wordSimPair{Word: id, Sim: sim})
	}
	return out
}

// D returns the baseline's height threshold.
func (b *BaselineIndex) D() int { return b.d }

// Graph returns the underlying graph.
func (b *BaselineIndex) Graph() *kg.Graph { return b.g }

// BaselineResult mirrors Result but against the baseline's own pattern
// table (it interns patterns online).
type BaselineResult struct {
	Patterns []RankedPattern
	Table    *core.PatternTable
	Stats    QueryStats
	Plan     Plan
}

// Search runs the enumeration–aggregation approach: (1) adapted backward
// search finds candidate roots that reach every keyword within the height
// bound; (2) per root, paths to keyword matches are enumerated online and
// their products grouped by tree pattern in a full in-memory dictionary;
// (3) the dictionary is ranked. The group-by dictionary over *all* patterns
// and subtrees is the bottleneck the paper describes.
func (b *BaselineIndex) Search(query string, opts Options) *BaselineResult {
	res, _ := b.SearchCtx(context.Background(), query, opts)
	return res
}

// SearchCtx is Search with cancellation. Candidate roots are grouped by
// type and the groups sharded across the worker pool configured by
// Options.Workers; a tree pattern's subtrees all root at nodes of one type,
// so each pattern aggregates entirely inside one shard in serial root order
// and the parallel run returns exactly the serial results (the online
// pattern table interns concurrently, so interned IDs — never exposed
// content — may differ across runs).
func (b *BaselineIndex) SearchCtx(ctx context.Context, query string, opts Options) (*BaselineResult, error) {
	start := time.Now()
	o := opts.withDefaults()
	pt := core.NewPatternTable()
	stats := QueryStats{}
	plan := Plan{Algo: AlgoBaseline}
	top := core.NewTopK[*baselineEntry](o.K)

	// Prepare stage: resolve keywords against the baseline dictionary (it
	// has no prebuilt path postings; backward search below is its posting
	// lookup, so it counts toward prepare too).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	raw, surf := b.dict.QueryTokens(query)
	var words []text.WordID
	seen := map[text.WordID]bool{}
	for i, id := range raw {
		if id != text.NoWord && seen[id] {
			continue
		}
		seen[id] = true
		words = append(words, id)
		stats.Surfaces = append(stats.Surfaces, surf[i])
	}
	stats.Words = words
	empty := func() (*BaselineResult, error) {
		stats.Stages.Prepare = time.Since(start)
		stats.Elapsed = time.Since(start)
		return &BaselineResult{Table: pt, Stats: stats, Plan: plan}, nil
	}
	if len(words) == 0 || len(words) > 16 {
		// The backward-search bitmask supports up to 16 distinct keywords;
		// the paper's workloads use at most 10.
		return empty()
	}
	for _, w := range words {
		if w == text.NoWord || int(w) >= len(b.nodeMatches) ||
			(len(b.nodeMatches[w]) == 0 && len(b.attrMatches[w]) == 0) {
			return empty()
		}
	}

	// Step 1: backward search. dist_i(v) = fewest edges from v to a match
	// of word i (edge matches charge one edge for the matched edge itself).
	candidates := b.backward(words)
	stats.CandidateRoots = len(candidates)
	plan.Stats.CandidateRoots = len(candidates)
	stats.Stages.Prepare = time.Since(start)

	// Step 2 (enumerate stage): online enumeration + aggregation, one
	// dictionary per root type (backward returns roots in node order, so
	// each group keeps the serial order and per-pattern aggregation is
	// bit-identical).
	tEnum := time.Now()
	byType := map[kg.TypeID][]kg.NodeID{}
	for _, r := range candidates {
		byType[b.g.Type(r)] = append(byType[b.g.Type(r)], r)
	}
	types := make([]kg.TypeID, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })

	workers := resolveWorkers(o.Workers)
	ws := newWorkerStates[*baselineEntry](workers, o.K)
	err := runShards(ctx, workers, len(types), func(worker, ti int) {
		st := &ws[worker].stats
		pc := &pollCancel{ctx: ctx}
		treeDict := map[string]*baselineEntry{}
		for _, r := range byType[types[ti]] {
			if pc.hit() {
				return
			}
			lists := b.onlinePaths(words, r, pt)
			ok := true
			for _, l := range lists {
				if len(l) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			b.expandOnline(words, r, lists, o, pt, treeDict)
		}
		// Step 3 per shard: rank the dictionary.
		st.PatternsFound += len(treeDict)
		for _, de := range treeDict {
			st.TreesFound += int64(de.agg.Count)
			ws[worker].top.Offer(de.agg.Value(o.Agg), de.tp.ContentKey(pt), de)
		}
	})
	stats.Stages.Enumerate = time.Since(tEnum)
	tAgg := time.Now()
	mergeWorkerStates(ws, top, &stats)
	stats.Stages.Aggregate = time.Since(tAgg)
	if err != nil {
		return nil, err
	}
	tRank := time.Now()
	var patterns []RankedPattern
	for _, de := range top.Results() {
		rp := RankedPattern{Pattern: de.tp, Agg: de.agg, Score: de.agg.Value(o.Agg), RootAggs: de.rootAggs}
		if !o.SkipTrees {
			rp.Trees = de.trees
		}
		patterns = append(patterns, rp)
	}
	stats.Stages.Rank = time.Since(tRank)
	stats.Elapsed = time.Since(start)
	return &BaselineResult{Patterns: patterns, Table: pt, Stats: stats, Plan: plan}, nil
}

// baselineEntry is a TreeDict slot: the paper's baseline keeps every valid
// subtree of every pattern in memory, which is exactly its bottleneck.
type baselineEntry struct {
	tp       core.TreePattern
	agg      core.PatternScore
	trees    []core.Subtree
	rootAggs []RootAgg // per-root partials, kept under CollectRootAggs
}

// backward runs one multi-source reverse BFS per keyword and intersects
// the "reaches within d-1 edges" sets.
func (b *BaselineIndex) backward(words []text.WordID) []kg.NodeID {
	n := b.g.NumNodes()
	reach := make([]uint16, n) // bitmask per word; m <= 16 enforced by caller size
	var queue []kg.NodeID
	for i, w := range words {
		bit := uint16(1) << uint(i)
		dist := make([]int32, n)
		for j := range dist {
			dist[j] = -1
		}
		queue = queue[:0]
		for _, m := range b.nodeMatches[w] {
			if dist[m.Node] < 0 {
				dist[m.Node] = 0
				queue = append(queue, m.Node)
			}
		}
		// Edge matches: the edge source reaches the keyword in one edge.
		for _, am := range b.attrMatches[w] {
			for _, eid := range b.edgesByAttr[am.Attr] {
				src := b.g.Edge(eid).Src
				if dist[src] < 0 {
					dist[src] = 1
					queue = append(queue, src)
				}
			}
		}
		budget := int32(b.d - 1)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if dist[v] >= budget {
				continue
			}
			for _, eid := range b.g.InEdgeIDs(v) {
				u := b.g.Edge(eid).Src
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for v := 0; v < n; v++ {
			if dist[v] >= 0 && dist[v] <= budget {
				reach[v] |= bit
			}
		}
	}
	all := uint16(1)<<uint(len(words)) - 1
	var out []kg.NodeID
	for v := 0; v < n; v++ {
		if reach[v] == all && (b.rootFilter == nil || b.rootFilter(kg.NodeID(v))) {
			out = append(out, kg.NodeID(v))
		}
	}
	return out
}

// onlinePaths enumerates, by DFS from r, every simple path of at most d-1
// edges ending at a node or edge matching each keyword — the per-query work
// the path index precomputes offline.
func (b *BaselineIndex) onlinePaths(words []text.WordID, r kg.NodeID, pt *core.PatternTable) [][]patternedPath {
	m := len(words)
	out := make([][]patternedPath, m)
	nodeSim := make([]map[kg.NodeID]float64, m)
	attrSim := make([]map[kg.AttrID]float64, m)
	for i, w := range words {
		nodeSim[i] = map[kg.NodeID]float64{}
		for _, nm := range b.nodeMatches[w] {
			nodeSim[i][nm.Node] = nm.Sim
		}
		attrSim[i] = map[kg.AttrID]float64{}
		for _, am := range b.attrMatches[w] {
			attrSim[i][am.Attr] = am.Sim
		}
	}

	var edges []kg.EdgeID
	types := []kg.TypeID{b.g.Type(r)}
	var attrs []kg.AttrID
	onPath := map[kg.NodeID]bool{r: true}

	snapshot := func(edgeEnd bool) (core.Path, core.PatternID) {
		p := core.Path{Root: r, Edges: append([]kg.EdgeID(nil), edges...), EdgeEnd: edgeEnd}
		pid := pt.Intern(core.PathPattern{
			Types:   append([]kg.TypeID(nil), types...),
			Attrs:   append([]kg.AttrID(nil), attrs...),
			EdgeEnd: edgeEnd,
		})
		return p, pid
	}

	var visit func(v kg.NodeID)
	visit = func(v kg.NodeID) {
		for i := range words {
			if sim, ok := nodeSim[i][v]; ok {
				p, pid := snapshot(false)
				out[i] = append(out[i], patternedPath{
					pt:  pathTerm{path: p, terms: core.ScoreTerms{Len: len(edges) + 1, PR: b.pr[v], Sim: sim}},
					pid: pid,
				})
			}
		}
		if len(edges) >= b.d-1 {
			return
		}
		first, n := b.g.OutEdges(v)
		for k := 0; k < n; k++ {
			eid := first + kg.EdgeID(k)
			e := b.g.Edge(eid)
			if onPath[e.Dst] {
				continue
			}
			matched := false
			for i := range words {
				if _, ok := attrSim[i][e.Attr]; ok {
					matched = true
					break
				}
			}
			if matched {
				edges = append(edges, eid)
				attrs = append(attrs, e.Attr)
				for i := range words {
					if sim, ok := attrSim[i][e.Attr]; ok {
						p, pid := snapshot(true)
						out[i] = append(out[i], patternedPath{
							pt:  pathTerm{path: p, terms: core.ScoreTerms{Len: len(edges) + 1, PR: b.pr[v], Sim: sim}},
							pid: pid,
						})
					}
				}
				edges = edges[:len(edges)-1]
				attrs = attrs[:len(attrs)-1]
			}
			edges = append(edges, eid)
			attrs = append(attrs, e.Attr)
			types = append(types, b.g.Type(e.Dst))
			onPath[e.Dst] = true
			visit(e.Dst)
			onPath[e.Dst] = false
			types = types[:len(types)-1]
			attrs = attrs[:len(attrs)-1]
			edges = edges[:len(edges)-1]
		}
	}
	visit(r)
	return out
}

// patternedPath is a concrete path with its online-interned pattern.
type patternedPath struct {
	pt  pathTerm
	pid core.PatternID
}

// expandOnline products the per-keyword path lists of one root and folds
// each tuple into the dictionary under its tree pattern. Subtree scores
// fold into per-(pattern, root) partials that merge into the dictionary at
// the end of the root's expansion — the same two-level fold as
// aggregatePattern, so baseline scores are bit-identical to PE/LE and to
// the re-folded shard gather.
func (b *BaselineIndex) expandOnline(words []text.WordID, r kg.NodeID, lists [][]patternedPath, o Options, pt *core.PatternTable, treeDict map[string]*baselineEntry) {
	m := len(words)
	choice := make([]core.PatternID, m)
	paths := make([]core.Path, m)
	terms := make([]core.ScoreTerms, m)
	locals := map[string]*core.PatternScore{}
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			if o.RequireTreeShape {
				st := core.Subtree{Root: r, Paths: paths}
				if !st.IsTreeShaped(b.g) {
					return
				}
			}
			tp := core.TreePattern{Paths: choice}
			key := tp.Key()
			de, ok := treeDict[key]
			if !ok {
				de = &baselineEntry{tp: core.TreePattern{Paths: append([]core.PatternID(nil), choice...)}}
				treeDict[key] = de
			}
			local, ok := locals[key]
			if !ok {
				local = &core.PatternScore{}
				locals[key] = local
			}
			local.Add(o.Scorer.Tree(terms))
			if o.MaxTreesPerPattern == 0 || len(de.trees) < o.MaxTreesPerPattern {
				de.trees = append(de.trees, core.Subtree{
					Root:  r,
					Paths: append([]core.Path(nil), paths...),
					Terms: append([]core.ScoreTerms(nil), terms...),
				})
			}
			return
		}
		for _, pp := range lists[i] {
			choice[i] = pp.pid
			paths[i] = pp.pt.path
			terms[i] = pp.pt.terms
			rec(i + 1)
		}
	}
	rec(0)
	for key, local := range locals {
		de := treeDict[key]
		de.agg.Merge(*local)
		if o.CollectRootAggs {
			de.rootAggs = append(de.rootAggs, RootAgg{Root: r, Agg: *local})
		}
	}
}
