package search

import (
	"math"
	"strings"
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

const fig1Query = "database software company revenue"

func buildFig1Index(t testing.TB, d int) (*index.Index, dataset.Fig1Nodes) {
	t.Helper()
	g, nodes := dataset.Fig1()
	ix, err := index.Build(g, index.Options{D: d, UniformPR: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix, nodes
}

// renderResult maps rendered tree pattern -> (score, tree count) for
// cross-algorithm comparison.
type renderedPattern struct {
	Score float64
	Count int
}

func renderPE(ix *index.Index, res *Result) map[string]renderedPattern {
	out := map[string]renderedPattern{}
	for _, rp := range res.Patterns {
		key := rp.Pattern.Render(ix.Graph(), ix.PatternTable(), res.Stats.Surfaces)
		out[key] = renderedPattern{Score: rp.Score, Count: rp.Agg.Count}
	}
	return out
}

func renderBL(g *kg.Graph, res *BaselineResult) map[string]renderedPattern {
	out := map[string]renderedPattern{}
	for _, rp := range res.Patterns {
		key := rp.Pattern.Render(g, res.Table, res.Stats.Surfaces)
		out[key] = renderedPattern{Score: rp.Score, Count: rp.Agg.Count}
	}
	return out
}

const p1Render = `database: (Software) (Genre) (Model)
software: (Software)
company: (Software) (Developer) (Company)
revenue: (Software) (Developer) (Company) (Revenue)`

const p2Render = `database: (Book)
software: (Book)
company: (Book) (Publisher) (Company)
revenue: (Book) (Publisher) (Company) (Revenue)`

func TestPETopKFindsPaperPatterns(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	res := PETopK(ix, fig1Query, Options{K: 100})
	got := renderPE(ix, res)

	p1, ok := got[p1Render]
	if !ok {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		t.Fatalf("pattern P1 missing; got patterns:\n%s", strings.Join(keys, "\n---\n"))
	}
	if p1.Count != 2 {
		t.Errorf("P1 should aggregate T1 and T2, got %d trees", p1.Count)
	}
	// Example 2.4: score(T1) = (1/8)*4*3.5 = 1.75. Our tokenizer splits
	// "O-R database" into three tokens (the paper counts two), so
	// score(T2) = (1/8)*4*(1/3+3) = 5/3 and score(P1) = 1.75 + 5/3.
	wantP1 := 1.75 + 5.0/3
	if math.Abs(p1.Score-wantP1) > 1e-9 {
		t.Errorf("score(P1) = %v, want %v", p1.Score, wantP1)
	}

	p2, ok := got[p2Render]
	if !ok {
		t.Fatalf("pattern P2 missing")
	}
	if p2.Count != 1 {
		t.Errorf("P2 should have exactly T3, got %d trees", p2.Count)
	}
	// (1/7) * 4 * (1/4 + 1/4 + 1 + 1) = 10/7.
	if math.Abs(p2.Score-10.0/7) > 1e-9 {
		t.Errorf("score(P2) = %v, want %v", p2.Score, 10.0/7)
	}
	if p1.Score <= p2.Score {
		t.Errorf("P1 must outrank P2")
	}
	// P1 is the top answer for this query on this graph.
	if res.Patterns[0].Pattern.Render(ix.Graph(), ix.PatternTable(), res.Stats.Surfaces) != p1Render {
		t.Errorf("top-1 should be P1, got:\n%s",
			res.Patterns[0].Pattern.Render(ix.Graph(), ix.PatternTable(), res.Stats.Surfaces))
	}
}

func TestLETopKAgreesWithPETopK(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	for _, q := range []string{
		fig1Query,
		"database software",
		"company revenue",
		"bill gates",
		"microsoft products",
		"database",
		"oracle",
	} {
		pe := PETopK(ix, q, Options{K: 100})
		le := LETopK(ix, q, Options{K: 100})
		gotPE := renderPE(ix, pe)
		gotLE := renderPE(ix, le)
		if len(gotPE) != len(gotLE) {
			t.Errorf("q=%q: pattern counts differ: PE=%d LE=%d", q, len(gotPE), len(gotLE))
			continue
		}
		for k, v := range gotPE {
			lv, ok := gotLE[k]
			if !ok {
				t.Errorf("q=%q: LETopK missing pattern:\n%s", q, k)
				continue
			}
			if math.Abs(v.Score-lv.Score) > 1e-9 || v.Count != lv.Count {
				t.Errorf("q=%q: pattern %q disagrees: PE=%+v LE=%+v", q, k, v, lv)
			}
		}
		// Ranked order must agree too.
		for i := range pe.Patterns {
			a := pe.Patterns[i].Pattern.Render(ix.Graph(), ix.PatternTable(), pe.Stats.Surfaces)
			b := le.Patterns[i].Pattern.Render(ix.Graph(), ix.PatternTable(), le.Stats.Surfaces)
			if a != b {
				t.Errorf("q=%q: rank %d differs:\n%s\nvs\n%s", q, i, a, b)
			}
		}
	}
}

func TestBaselineAgreesWithPETopK(t *testing.T) {
	g, _ := dataset.Fig1()
	ix, err := index.Build(g, index.Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := NewBaseline(g, BaselineOptions{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{fig1Query, "database software", "company revenue", "microsoft"} {
		pe := PETopK(ix, q, Options{K: 100})
		blres := bl.Search(q, Options{K: 100})
		gotPE := renderPE(ix, pe)
		gotBL := renderBL(g, blres)
		if len(gotPE) != len(gotBL) {
			t.Errorf("q=%q: pattern counts differ: PE=%d BL=%d", q, len(gotPE), len(gotBL))
			continue
		}
		for k, v := range gotPE {
			bv, ok := gotBL[k]
			if !ok {
				t.Errorf("q=%q: baseline missing pattern:\n%s", q, k)
				continue
			}
			if math.Abs(v.Score-bv.Score) > 1e-9 || v.Count != bv.Count {
				t.Errorf("q=%q: pattern %q disagrees: PE=%+v BL=%+v", q, k, v, bv)
			}
		}
	}
}

func TestTopKTruncation(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	all := PETopK(ix, fig1Query, Options{K: 1000})
	for _, k := range []int{1, 2, 3} {
		res := PETopK(ix, fig1Query, Options{K: k})
		if len(res.Patterns) != k {
			t.Fatalf("K=%d returned %d patterns (total %d)", k, len(res.Patterns), len(all.Patterns))
		}
		for i := 0; i < k; i++ {
			if res.Patterns[i].Score != all.Patterns[i].Score {
				t.Errorf("K=%d rank %d score differs", k, i)
			}
		}
	}
}

func TestMaterializedTreesAreValid(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	res := LETopK(ix, fig1Query, Options{K: 10})
	g := ix.Graph()
	pt := ix.PatternTable()
	if len(res.Patterns) == 0 {
		t.Fatalf("no patterns")
	}
	for _, rp := range res.Patterns {
		if len(rp.Trees) != rp.Agg.Count {
			t.Errorf("materialized %d trees, scored %d", len(rp.Trees), rp.Agg.Count)
		}
		if h := rp.Pattern.Height(pt); h > ix.D() {
			t.Errorf("pattern height %d exceeds d=%d", h, ix.D())
		}
		for _, st := range rp.Trees {
			if len(st.Paths) != len(res.Stats.Words) {
				t.Fatalf("tree has %d paths for %d keywords", len(st.Paths), len(res.Stats.Words))
			}
			for i, p := range st.Paths {
				if p.Root != st.Root {
					t.Errorf("path %d root %d != tree root %d", i, p.Root, st.Root)
				}
				// The path's pattern must equal the tree pattern's i-th entry.
				if pt.Intern(p.Pattern(g)) != rp.Pattern.Paths[i] {
					t.Errorf("path %d pattern mismatch", i)
				}
				if p.Len() > ix.D() {
					t.Errorf("path longer than d")
				}
			}
		}
	}
}

func TestUnknownKeywordGivesEmptyResult(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	for _, q := range []string{"zebra", "database zebra", ""} {
		for _, res := range []*Result{PETopK(ix, q, Options{}), LETopK(ix, q, Options{})} {
			if len(res.Patterns) != 0 {
				t.Errorf("q=%q should have no answers", q)
			}
		}
	}
	g, _ := dataset.Fig1()
	bl, _ := NewBaseline(g, BaselineOptions{D: 3, UniformPR: true})
	if res := bl.Search("database zebra", Options{}); len(res.Patterns) != 0 {
		t.Errorf("baseline should have no answers for unknown keyword")
	}
}

func TestDuplicateKeywordsCollapse(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	a := PETopK(ix, "database database software", Options{K: 50})
	b := PETopK(ix, "database software", Options{K: 50})
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("duplicate keyword changed result size: %d vs %d", len(a.Patterns), len(b.Patterns))
	}
	if len(a.Stats.Words) != 2 {
		t.Errorf("duplicates should collapse to 2 words, got %d", len(a.Stats.Words))
	}
}

func TestCountAll(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	patterns, trees := CountAll(ix, fig1Query)
	// Exhaustive run must agree.
	res := PETopK(ix, fig1Query, Options{K: 100000})
	if patterns != res.Stats.PatternsFound {
		t.Errorf("CountAll patterns = %d, PETopK found %d", patterns, res.Stats.PatternsFound)
	}
	if trees != res.Stats.TreesFound {
		t.Errorf("CountAll trees = %d, PETopK found %d", trees, res.Stats.TreesFound)
	}
	if p, tr := CountAll(ix, "zebra"); p != 0 || tr != 0 {
		t.Errorf("unknown word should count zero")
	}
}

func TestSamplingExactWhenBelowThreshold(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	// Λ larger than any NR on this tiny graph: no sampling happens even
	// with a tiny ρ.
	exact := LETopK(ix, fig1Query, Options{K: 100})
	sampled := LETopK(ix, fig1Query, Options{K: 100, Lambda: 1 << 40, Rho: 0.01})
	if len(exact.Patterns) != len(sampled.Patterns) {
		t.Fatalf("Λ=∞ should be exact: %d vs %d", len(exact.Patterns), len(sampled.Patterns))
	}
	for i := range exact.Patterns {
		if exact.Patterns[i].Score != sampled.Patterns[i].Score {
			t.Errorf("rank %d scores differ", i)
		}
	}
	if sampled.Stats.SampledRoots != exact.Stats.SampledRoots {
		t.Errorf("no root should be skipped below threshold")
	}
}

func TestSamplingReturnsExactScoresForSurvivors(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	// Force sampling on everything (Λ=1). Survivor patterns must carry
	// exact scores (they are re-scored over all roots of their type).
	exact := renderPE(ix, PETopK(ix, fig1Query, Options{K: 1000}))
	res := LETopK(ix, fig1Query, Options{K: 5, Lambda: 1, Rho: 0.6, Seed: 7})
	for _, rp := range res.Patterns {
		key := rp.Pattern.Render(ix.Graph(), ix.PatternTable(), res.Stats.Surfaces)
		want, ok := exact[key]
		if !ok {
			t.Errorf("sampled result contains unknown pattern:\n%s", key)
			continue
		}
		if math.Abs(rp.Score-want.Score) > 1e-9 {
			t.Errorf("survivor score %v != exact %v for\n%s", rp.Score, want.Score, key)
		}
		if rp.Agg.Count != want.Count {
			t.Errorf("survivor count %d != exact %d", rp.Agg.Count, want.Count)
		}
	}
	if res.Stats.SampledRoots >= res.Stats.CandidateRoots {
		t.Logf("note: sampling kept all roots (tiny graph); sampled=%d candidates=%d",
			res.Stats.SampledRoots, res.Stats.CandidateRoots)
	}
}

func TestSamplingDeterministicBySeed(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	a := LETopK(ix, fig1Query, Options{K: 5, Lambda: 1, Rho: 0.5, Seed: 42})
	b := LETopK(ix, fig1Query, Options{K: 5, Lambda: 1, Rho: 0.5, Seed: 42})
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("same seed, different result sizes")
	}
	for i := range a.Patterns {
		if a.Patterns[i].Score != b.Patterns[i].Score {
			t.Errorf("same seed, different scores at rank %d", i)
		}
	}
}

func TestAggregationModes(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	sum := PETopK(ix, fig1Query, Options{K: 100, Agg: core.AggSum})
	cnt := PETopK(ix, fig1Query, Options{K: 100, Agg: core.AggCount})
	mx := PETopK(ix, fig1Query, Options{K: 100, Agg: core.AggMax})
	avg := PETopK(ix, fig1Query, Options{K: 100, Agg: core.AggAvg})
	if len(sum.Patterns) != len(cnt.Patterns) || len(sum.Patterns) != len(mx.Patterns) {
		t.Fatalf("agg mode should not change the pattern set size")
	}
	for _, rp := range cnt.Patterns {
		if rp.Score != float64(rp.Agg.Count) {
			t.Errorf("count mode score %v != count %d", rp.Score, rp.Agg.Count)
		}
	}
	for _, rp := range avg.Patterns {
		if rp.Agg.Count > 0 && math.Abs(rp.Score-rp.Agg.Sum/float64(rp.Agg.Count)) > 1e-12 {
			t.Errorf("avg mode score wrong")
		}
	}
	for _, rp := range mx.Patterns {
		if rp.Score != rp.Agg.Max {
			t.Errorf("max mode score wrong")
		}
	}
}

func TestSkipTrees(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	res := PETopK(ix, fig1Query, Options{K: 10, SkipTrees: true})
	for _, rp := range res.Patterns {
		if rp.Trees != nil {
			t.Errorf("SkipTrees should leave trees nil")
		}
	}
}

func TestMaxTreesPerPattern(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	res := PETopK(ix, fig1Query, Options{K: 10, MaxTreesPerPattern: 1})
	for _, rp := range res.Patterns {
		if len(rp.Trees) > 1 {
			t.Errorf("cap exceeded: %d trees", len(rp.Trees))
		}
		// Scores still reflect ALL trees.
		if rp.Agg.Count > 1 && len(rp.Trees) != 1 {
			t.Errorf("capped pattern should still keep one tree")
		}
	}
}

func TestRequireTreeShapeFiltersDiamonds(t *testing.T) {
	// Build a diamond: r -> a -> x, r -> b -> x where the two words sit on
	// a and b's texts and x... here the tuple (path to x via a, path to x
	// via b) re-converges at x.
	b := kg.NewBuilder()
	r := b.Entity("Root", "start")
	a := b.Entity("Mid", "alpha")
	bb := b.Entity("Mid", "beta")
	x := b.Entity("End", "omega")
	b.Attr(r, "p", a)
	b.Attr(r, "q", bb)
	b.Attr(a, "z", x)
	b.Attr(bb, "z", x)
	g := b.MustFreeze()
	ix, err := index.Build(g, index.Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	// Query "omega omega" is one word; use "alpha omega" + "beta omega"?
	// The diamond tuple arises for query {omega} x {omega}? A single
	// keyword has a single path per tuple, always tree-shaped. Use two
	// keywords that both reach x: "omega" via a and via b is the SAME
	// keyword. Instead query "start omega": paths (r) and (r,p,a,z,x) /
	// (r,q,b,z,x) — trees, no diamond. The diamond needs two words each
	// matched at x through different branches: impossible to distinguish
	// words at the same node... unless the second word is on a/b types.
	// Query "mid omega": mid matches a and b (type), omega matches x via
	// both branches. Tuple (mid@a, omega via b-branch) IS tree shaped
	// (paths diverge); tuple (mid@a, omega via a-branch) shares the prefix.
	// No diamond within m=2 here. Diamonds need m>=2 words BOTH below the
	// re-convergence point: "end omega" — end matches x (type), omega
	// matches x (text): tuple (end via a, omega via b) re-converges at x.
	resAll := PETopK(ix, "end omega", Options{K: 100})
	resTree := PETopK(ix, "end omega", Options{K: 100, RequireTreeShape: true})
	var allTrees, treeTrees int64
	for _, rp := range resAll.Patterns {
		allTrees += int64(rp.Agg.Count)
	}
	for _, rp := range resTree.Patterns {
		treeTrees += int64(rp.Agg.Count)
	}
	if allTrees <= treeTrees {
		t.Errorf("tree-shape filter should remove re-converging tuples: all=%d filtered=%d", allTrees, treeTrees)
	}
	if treeTrees == 0 {
		t.Errorf("straight tuples should survive the filter")
	}
}

func TestPETopKEmptyCombinationAccounting(t *testing.T) {
	// Worst-case sketch of Section 4.1: two roots of the same type whose
	// keyword matches never co-occur under one root still generate
	// combinations that all turn out empty.
	b := kg.NewBuilder()
	r1 := b.Entity("C", "left")
	r2 := b.Entity("C", "right")
	for i := 0; i < 3; i++ {
		x := b.Entity("T", "wordone")
		b.Attr(r1, "a"+string(rune('0'+i)), x)
		y := b.Entity("T", "wordtwo")
		b.Attr(r2, "b"+string(rune('0'+i)), y)
	}
	g := b.MustFreeze()
	ix, err := index.Build(g, index.Options{D: 2, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	res := PETopK(ix, "wordone wordtwo", Options{K: 10})
	if len(res.Patterns) != 0 {
		t.Fatalf("no pattern joins at a single root, got %d", len(res.Patterns))
	}
	// 3x3 combinations under root type C, plus the ((T),(T)) combination
	// under root type T (the matched leaves are themselves type-T roots).
	if res.Stats.EmptyChecked != 10 {
		t.Errorf("PETopK should have checked 10 empty combinations, got %d", res.Stats.EmptyChecked)
	}
	// LINEARENUM never touches empty combinations.
	le := LETopK(ix, "wordone wordtwo", Options{K: 10})
	if le.Stats.CandidateRoots != 0 {
		t.Errorf("no candidate roots expected, got %d", le.Stats.CandidateRoots)
	}
}

func TestTableFromSearchResult(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	res := PETopK(ix, fig1Query, Options{K: 1})
	if len(res.Patterns) != 1 {
		t.Fatalf("want 1 pattern")
	}
	tab := res.Patterns[0].Table(ix)
	if len(tab.Rows) != 2 {
		t.Fatalf("P1 table should have 2 rows, got %d", len(tab.Rows))
	}
	found := 0
	for _, row := range tab.Rows {
		for _, cell := range row {
			if cell == "US$ 77 billion" || cell == "US$ 37 billion" {
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("revenue cells missing from table:\n%s", tab.Render(-1))
	}
}
