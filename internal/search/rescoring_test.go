package search

import (
	"math"
	"math/rand"
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// TestAggregateSelectedMatchesPerPatternRescoring checks that the batched
// one-pass exact re-scoring (aggregateSelected) agrees with the per-pattern
// reference (aggregatePatternRF) on random graphs — the two
// implementations of Algorithm 4 line 11.
func TestAggregateSelectedMatchesPerPatternRescoring(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		g := randomGraph(rng)
		ix, err := index.Build(g, index.Options{D: 3, UniformPR: true})
		if err != nil {
			t.Fatal(err)
		}
		words, _ := ResolveQuery(ix, "alpha beta")
		if !queryable(ix, words) {
			continue
		}
		o := Options{}.withDefaults()

		// Collect all patterns and candidate roots via a full expansion.
		rootLists := make([][]kg.NodeID, len(words))
		for i, w := range words {
			rootLists[i] = ix.Roots(w)
		}
		roots := intersectSorted(rootLists)
		treeDict := map[string]*dictEntry{}
		for _, r := range roots {
			expandRoot(ix, words, r, o, treeDict, nil, nil)
		}
		if len(treeDict) == 0 {
			continue
		}
		var selected []*dictEntry
		for _, de := range treeDict {
			selected = append(selected, de)
		}

		batched := aggregateSelected(ix, words, selected, roots, o, nil)
		for _, de := range selected {
			ref := aggregatePatternRF(ix, words, de.tp, roots, o)
			got, ok := batched[de.tp.Key()]
			if !ok {
				t.Fatalf("seed %d: pattern missing from batched result", seed)
			}
			if got.agg.Count != ref.Count || math.Abs(got.agg.Sum-ref.Sum) > 1e-9 || got.agg.Max != ref.Max {
				t.Fatalf("seed %d: batched %+v != reference %+v", seed, got.agg, ref)
			}
			// Both must also equal the expansion-time accumulation.
			if got.agg.Count != de.agg.Count || math.Abs(got.agg.Sum-de.agg.Sum) > 1e-9 {
				t.Fatalf("seed %d: re-scoring disagrees with expansion: %+v vs %+v", seed, got.agg, de.agg)
			}
		}
	}
}

// TestSamplingNeverInventsPatterns: every pattern a sampled run returns
// must exist in the exhaustive pattern set with exactly the reported score.
func TestSamplingNeverInventsPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng)
	ix, err := index.Build(g, index.Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	exact := PETopK(ix, "alpha beta", Options{K: 1 << 20, SkipTrees: true})
	truth := map[string]float64{}
	for _, rp := range exact.Patterns {
		truth[rp.Pattern.ContentKey(ix.PatternTable())] = rp.Score
	}
	for s := int64(0); s < 10; s++ {
		res := LETopK(ix, "alpha beta", Options{K: 10, Lambda: 1, Rho: 0.4, Seed: s + 1, SkipTrees: true})
		for _, rp := range res.Patterns {
			want, ok := truth[rp.Pattern.ContentKey(ix.PatternTable())]
			if !ok {
				t.Fatalf("seed %d: sampled run invented a pattern", s)
			}
			if math.Abs(rp.Score-want) > 1e-9 {
				t.Fatalf("seed %d: sampled survivor score %v != exact %v", s, rp.Score, want)
			}
		}
	}
}

// TestSamplingAggModes: estimated ranking + exact re-scoring must stay
// consistent under every aggregation function.
func TestSamplingAggModes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng)
	ix, err := index.Build(g, index.Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []core.Agg{core.AggSum, core.AggCount, core.AggAvg, core.AggMax} {
		exact := PETopK(ix, "alpha", Options{K: 1 << 20, SkipTrees: true, Agg: agg})
		truth := map[string]float64{}
		for _, rp := range exact.Patterns {
			truth[rp.Pattern.ContentKey(ix.PatternTable())] = rp.Score
		}
		res := LETopK(ix, "alpha", Options{K: 5, Lambda: 1, Rho: 0.5, Seed: 3, SkipTrees: true, Agg: agg})
		for _, rp := range res.Patterns {
			want, ok := truth[rp.Pattern.ContentKey(ix.PatternTable())]
			if !ok || math.Abs(rp.Score-want) > 1e-9 {
				t.Fatalf("agg=%v: survivor score %v, want %v (found=%v)", agg, rp.Score, want, ok)
			}
		}
	}
}
