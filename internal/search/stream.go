package search

import (
	"math"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// This file holds the streaming executor's moving parts. Streaming is the
// default execution mode; Options.Staged reverts to the original staged
// pipeline as the ablation baseline. The answers are bit-identical either
// way — the streaming rewrite changes when work happens and how much of
// it is skipped, never what survives into the top-k:
//
//	lazy enumerate→aggregate  Each enumeration unit (a tree-pattern
//	    combination in PATTERNENUM, a root expansion in LINEARENUM-TOPK)
//	    is scored and offered into a per-worker heap the moment it is
//	    produced, instead of the walk materializing per-(pattern, root)
//	    path lists through allocating fetches. Per-worker scratch buffers
//	    (aggScratch, leScratch) make the steady state allocation-free.
//
//	top-k bound pushdown  PATTERNENUM keeps a shard-local bounded heap
//	    (reset at every shard boundary, see core.TopK.Reset) and, once it
//	    holds K items, bounds each leaf combination's best possible
//	    aggregate from the per-(word, pattern) posting envelopes
//	    (index.PatternBounds) before aggregating it. A combination whose
//	    bound cannot displace the shard-local k-th score is pruned without
//	    fetching a single path. Soundness: the pruned pattern scores
//	    strictly below K already-retained patterns from the same shard, so
//	    it cannot be in the global top-k under the (score desc, key asc)
//	    total order; the retained set of a TopK is insertion-order
//	    independent, so dropping it never changes the answer. Because the
//	    heap is shard-local, the pruning decisions — and therefore every
//	    QueryStats counter — are identical in serial and parallel runs.
//	    Pruning is disabled under CollectRootAggs: the shard scatter must
//	    surface every pattern because a locally dominated pattern can win
//	    globally once partials from other shards merge in.
//
//	predicate pushdown  LINEARENUM-TOPK evaluates the keyword predicate
//	    (does this root reach wi at all?) from the run table before
//	    fetching anything, and pulls each keyword's paths in one root-first
//	    arena walk instead of one binary-searched fetch per pattern.
//	    LINEARENUM gets no score pruning: its per-root partials are lower
//	    bounds of the final pattern aggregates, so no cut mid-type is
//	    sound.
//
//	cancellation pushdown  productPaths polls the shard's pollCancel once
//	    per tuple, so a canceled query aborts inside a combinatorial
//	    product instead of waiting for the next root or pattern boundary.
//	    This applies in both modes — it is a correctness fix, not a
//	    streaming optimization.

// aggScratch is the per-worker buffer set of the streaming PATTERNENUM
// walk: the per-keyword path-list headers and the product's tuple buffers.
// One instance per worker slot; never shared across goroutines.
type aggScratch struct {
	lists [][]pathTerm
	paths []core.Path
	terms []core.ScoreTerms
}

// listsFor returns the per-keyword list headers, (re)allocating only when
// the keyword count changes.
func (sc *aggScratch) listsFor(m int) [][]pathTerm {
	if len(sc.lists) != m {
		sc.lists = make([][]pathTerm, m)
	}
	return sc.lists
}

// tuple returns the product's path/term buffers, m wide.
func (sc *aggScratch) tuple(m int) ([]core.Path, []core.ScoreTerms) {
	if cap(sc.paths) < m {
		sc.paths = make([]core.Path, m)
		sc.terms = make([]core.ScoreTerms, m)
	}
	return sc.paths[:m], sc.terms[:m]
}

// leScratch is the per-worker buffer set of the streaming LINEARENUM root
// expansion: per-keyword pattern lists, path segments, and one pathTerm
// arena per keyword that a single index.PathsAt walk fills. Segment slices
// alias the arena, which is pre-sized to the root's exact path count
// (NumPathsAt) so appends never reallocate under them.
type leScratch struct {
	pats   [][]core.PatternID
	segs   [][][]pathTerm
	arena  [][]pathTerm
	choice []core.PatternID
	chosen [][]pathTerm
	agg    aggScratch // tuple buffers for productPaths
}

// fetch loads root r's per-keyword pattern lists and path segments in one
// root-first walk per keyword. It returns (nil, nil) as soon as any
// keyword has no path at r — the predicate is read off the run table
// before any entry is materialized, so non-candidate roots cost m counter
// lookups and nothing else. Iteration is in (pattern, path) posting order,
// the same order the staged per-pattern fetches produce, so downstream
// folds see identical sequences.
func (sc *leScratch) fetch(ix *index.Index, words []text.WordID, r kg.NodeID) ([][]core.PatternID, [][][]pathTerm) {
	m := len(words)
	if len(sc.pats) < m {
		sc.pats = make([][]core.PatternID, m)
		sc.segs = make([][][]pathTerm, m)
		sc.arena = make([][]pathTerm, m)
		sc.choice = make([]core.PatternID, m)
		sc.chosen = make([][]pathTerm, m)
	}
	for i, w := range words {
		n := ix.NumPathsAt(w, r)
		if n == 0 {
			return nil, nil
		}
		if cap(sc.arena[i]) < n {
			sc.arena[i] = make([]pathTerm, 0, n)
		}
		arena := sc.arena[i][:0]
		pats := sc.pats[i][:0]
		segs := sc.segs[i][:0]
		segStart := 0
		var cur core.PatternID
		ix.PathsAt(w, r, func(e *index.Entry) {
			if len(arena) > segStart && e.Pattern != cur {
				segs = append(segs, arena[segStart:len(arena):len(arena)])
				pats = append(pats, cur)
				segStart = len(arena)
			}
			cur = e.Pattern
			arena = append(arena, pathTerm{path: ix.Path(w, e), terms: e.Terms})
		})
		segs = append(segs, arena[segStart:len(arena):len(arena)])
		pats = append(pats, cur)
		sc.arena[i], sc.pats[i], sc.segs[i] = arena, pats, segs
	}
	return sc.pats[:m], sc.segs[:m]
}

// peLeafUB bounds the best aggregate score any tree pattern assembled from
// the given per-keyword posting envelopes can reach over nRoots candidate
// roots. Per keyword the envelope bounds every path's score terms and the
// per-root run length; summing the term intervals bounds any subtree's
// score via Scorer.TreeUB, and nRoots·Π MaxRun bounds the subtree count.
// The bound dispatches on the aggregation function: Count is bounded by
// the subtree count, Max and Avg by the best single subtree, Sum by their
// product. Always an over-approximation (possibly +Inf), never under.
func peLeafUB(bounds []index.PatternBounds, nRoots int, o Options) float64 {
	var lenLo, lenHi, prLo, prHi, simLo, simHi float64
	trees := float64(nRoots)
	for i := range bounds {
		b := &bounds[i]
		lenLo += float64(b.MinLen)
		lenHi += float64(b.MaxLen)
		prLo += b.MinPR
		prHi += b.MaxPR
		simLo += b.MinSim
		simHi += b.MaxSim
		trees *= float64(b.MaxRun)
	}
	tree := o.Scorer.TreeUB(lenLo, lenHi, prLo, prHi, simLo, simHi)
	switch o.Agg {
	case core.AggCount:
		return trees
	case core.AggMax, core.AggAvg:
		return tree
	default: // AggSum; unknown Aggs score 0, which trees*tree >= 0 covers
		return trees * tree
	}
}

// rootTreeUB bounds the best single-subtree score root r can produce, for
// TopTrees' per-root pruning, from pattern metadata alone (no path is
// fetched). It also returns the root's exact subtree count — the number of
// product tuples enumeration would have visited — so a pruned root can
// credit TreesFound as if it had been expanded. ok is false when any
// pattern lacks bounds (never prune what cannot be bounded).
func rootTreeUB(ix *index.Index, words []text.WordID, r kg.NodeID, o Options) (ub float64, tuples int64, ok bool) {
	var lenLo, lenHi, prLo, prHi, simLo, simHi float64
	prod := 1.0
	for _, w := range words {
		n := ix.NumPathsAt(w, r)
		if n == 0 {
			return 0, 0, false // not a candidate root; caller handles it
		}
		prod *= float64(n)
		first := true
		var kb index.PatternBounds
		for _, p := range ix.PatternsAt(w, r) {
			b, bok := ix.PatternBounds(w, p)
			if !bok {
				return 0, 0, false
			}
			if first {
				kb = b
				first = false
				continue
			}
			if b.MinLen < kb.MinLen {
				kb.MinLen = b.MinLen
			}
			if b.MaxLen > kb.MaxLen {
				kb.MaxLen = b.MaxLen
			}
			kb.MinPR = math.Min(kb.MinPR, b.MinPR)
			kb.MaxPR = math.Max(kb.MaxPR, b.MaxPR)
			kb.MinSim = math.Min(kb.MinSim, b.MinSim)
			kb.MaxSim = math.Max(kb.MaxSim, b.MaxSim)
		}
		lenLo += float64(kb.MinLen)
		lenHi += float64(kb.MaxLen)
		prLo += kb.MinPR
		prHi += kb.MaxPR
		simLo += kb.MinSim
		simHi += kb.MaxSim
	}
	if prod >= math.MaxInt64 {
		tuples = math.MaxInt64
	} else {
		tuples = int64(prod)
	}
	return o.Scorer.TreeUB(lenLo, lenHi, prLo, prHi, simLo, simHi), tuples, true
}
