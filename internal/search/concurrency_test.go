package search

import (
	"sync"
	"testing"
)

// TestConcurrentQueries exercises read-concurrency on a shared index: the
// paper's setting is an online search service, so many queries run against
// one immutable index at once. Run with -race to validate the claim that
// queries never mutate shared state.
func TestConcurrentQueries(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	queries := []string{
		fig1Query,
		"database software",
		"company revenue",
		"microsoft products",
		"bill gates",
	}
	ref := make([]*Result, len(queries))
	for i, q := range queries {
		ref[i] = PETopK(ix, q, Options{K: 20})
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				qi := (w + rep) % len(queries)
				var got *Result
				switch rep % 3 {
				case 0:
					got = PETopK(ix, queries[qi], Options{K: 20})
				case 1:
					got = LETopK(ix, queries[qi], Options{K: 20})
				default:
					got = LETopK(ix, queries[qi], Options{K: 20, Lambda: 1, Rho: 0.7, Seed: int64(w + 1)})
				}
				if rep%3 != 2 && len(got.Patterns) != len(ref[qi].Patterns) {
					errs <- queries[qi]
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("concurrent run diverged for %q", q)
	}
}

// TestConcurrentBaseline checks the baseline's read path too (it interns
// patterns into a per-query table, so nothing shared is written).
func TestConcurrentBaseline(t *testing.T) {
	g, _ := buildFig1Index(t, 3)
	bl, err := NewBaseline(g.Graph(), BaselineOptions{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				res := bl.Search("database software", Options{K: 10})
				if len(res.Patterns) == 0 {
					t.Error("baseline found nothing")
					return
				}
			}
		}()
	}
	wg.Wait()
}
