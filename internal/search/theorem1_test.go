package search

import (
	"fmt"
	"math/rand"
	"testing"

	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// TestTheorem1Reduction executes the paper's Appendix A reduction from
// s-t PATHS to COUNTPAT: given a directed graph G with nodes s and t, two
// disjoint copies of G are joined under a fresh root r with edges to both
// copies of s, every node/edge gets a unique type and text, and the query
// holds the two copies of t's text. The number of tree patterns with
// height d = |V|+1 must then equal N², where N is the number of simple
// s-t paths in G. Verifying the square on random DAGs demonstrates the
// reduction (and exercises pattern counting through genuinely distinct
// path structures).
func TestTheorem1Reduction(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Random DAG over n nodes, edges only forward: simple paths are
		// countable by DP, and all paths are simple.
		n := 4 + rng.Intn(3)
		adj := make([][]int, n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					adj[u] = append(adj[u], v)
				}
			}
		}
		s, tt := 0, n-1
		// Count simple s-t paths by DP over the DAG.
		paths := make([]int64, n)
		paths[tt] = 1
		for u := n - 2; u >= 0; u-- {
			for _, v := range adj[u] {
				paths[u] += paths[v]
			}
		}
		nPaths := paths[s]

		// Build the reduction's knowledge graph G2.
		b := kg.NewBuilder()
		mkCopy := func(tag string) []kg.NodeID {
			ids := make([]kg.NodeID, n)
			for u := 0; u < n; u++ {
				ids[u] = b.Entity(fmt.Sprintf("T%s%d", tag, u), fmt.Sprintf("node%s%d", tag, u))
			}
			for u := 0; u < n; u++ {
				for _, v := range adj[u] {
					b.Attr(ids[u], fmt.Sprintf("a%s%d_%d", tag, u, v), ids[v])
				}
			}
			return ids
		}
		c1 := mkCopy("x")
		c2 := mkCopy("y")
		root := b.Entity("Root", "rootnode")
		b.Attr(root, "toX", c1[s])
		b.Attr(root, "toY", c2[s])
		g := b.MustFreeze()

		ix, err := index.Build(g, index.Options{D: n + 1, UniformPR: true})
		if err != nil {
			t.Fatal(err)
		}
		// Query: the texts of the two copies of t.
		q := fmt.Sprintf("nodex%d nodey%d", tt, tt)
		got, trees := CountAll(ix, q)
		want := nPaths * nPaths
		if int64(got) != want {
			t.Errorf("seed %d: COUNTPAT = %d, want N^2 = %d (N=%d s-t paths)", seed, got, want, nPaths)
		}
		// With unique types, patterns and subtrees are in bijection here.
		if trees != want {
			t.Errorf("seed %d: trees = %d, want %d", seed, trees, want)
		}
	}
}
