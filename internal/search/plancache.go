package search

import (
	"container/list"
	"strings"
	"sync"
)

// PlanCache is an epoch-tagged LRU of merged prepare-stage statistics,
// keyed on the normalized query words. Repeat query shapes skip the
// planner probe (a full needCost prepare — on a sharded engine, one per
// shard): the cached PlanStats feed ChoosePlan directly, which is a pure
// function of (PlanStats, Options), so the resolved Plan is re-derived
// per request with the live bias. That keeps AutoBias — including the
// adaptive learned bias — out of the key entirely: bias changes never
// need invalidation, because cached statistics are Options-independent
// (they depend only on the word set and the index contents).
//
// Invalidation is word-precise and epoch-fenced. The facade owns one
// PlanCache per engine chain; ApplyUpdate calls Invalidate with the
// update's touched words (the exact set of canonical words whose posting
// lists changed), which bumps the cache epoch and evicts every entry
// depending on a touched word. Structural PageRank moves flush the whole
// cache. Each engine snapshot remembers the epoch it was created at:
// Get and Put from a superseded snapshot (stale epoch) are refused, so a
// slow request racing an update can never install pre-update statistics
// into the post-update cache.
type PlanCache struct {
	mu          sync.Mutex
	cap         int
	epoch       uint64
	ll          *list.List
	items       map[string]*list.Element
	hits        uint64
	misses      uint64
	invalidated uint64
}

// planCacheEntry is one cached shape: its merged statistics plus the
// sorted canonical words it depends on (the invalidation tags).
type planCacheEntry struct {
	key   string
	stats PlanStats
	words []string
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	Size        int
	Capacity    int
	Epoch       uint64
	Hits        uint64
	Misses      uint64
	Invalidated uint64
}

// DefaultPlanCacheSize bounds the facade's per-engine-chain plan cache.
const DefaultPlanCacheSize = 512

// NewPlanCache returns an empty cache holding at most capacity entries
// (a non-positive capacity gets DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// PlanCacheKey derives the cache key for a query's resolved canonical
// words (sorted and deduplicated, as Engine.QueryWords returns them —
// PlanStats are set-valued, so word order cannot matter). The separator
// cannot occur inside a token, so the encoding is injective.
func PlanCacheKey(words []string) string { return strings.Join(words, "\x1f") }

// Epoch returns the cache's current epoch. An engine snapshot captures
// it at creation and passes it back on every Get/Put.
func (c *PlanCache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Get returns the cached statistics for key, refusing snapshots whose
// epoch is stale (their view of the index predates an invalidation).
func (c *PlanCache) Get(key string, epoch uint64) (PlanStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		c.misses++
		return PlanStats{}, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return PlanStats{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*planCacheEntry).stats, true
}

// Put caches stats under key, tagged with the canonical words the entry
// depends on. A Put from a stale epoch is dropped: the statistics were
// computed against a superseded snapshot.
func (c *PlanCache) Put(key string, epoch uint64, stats PlanStats, words []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*planCacheEntry)
		ent.stats = stats
		ent.words = words
		return
	}
	el := c.ll.PushFront(&planCacheEntry{key: key, stats: stats, words: words})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*planCacheEntry).key)
	}
}

// Invalidate bumps the cache epoch and evicts every entry that depends
// on a touched word (or all entries when flush is set — structural
// PageRank refreshes move scores everywhere). It returns the new epoch,
// which the successor engine snapshot records as its own. Entries whose
// words are untouched survive: their posting lists — and therefore their
// statistics — are unchanged by the update.
func (c *PlanCache) Invalidate(touched []string, flush bool) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	if flush {
		c.invalidated += uint64(c.ll.Len())
		c.ll.Init()
		c.items = make(map[string]*list.Element, c.cap)
		return c.epoch
	}
	if len(touched) == 0 {
		return c.epoch
	}
	tset := make(map[string]struct{}, len(touched))
	for _, w := range touched {
		tset[w] = struct{}{}
	}
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*planCacheEntry)
		for _, w := range ent.words {
			if _, hit := tset[w]; hit {
				c.ll.Remove(el)
				delete(c.items, ent.key)
				c.invalidated++
				break
			}
		}
		el = next
	}
	return c.epoch
}

// Stats snapshots cache effectiveness counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Size:        c.ll.Len(),
		Capacity:    c.cap,
		Epoch:       c.epoch,
		Hits:        c.hits,
		Misses:      c.misses,
		Invalidated: c.invalidated,
	}
}
