package search

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// equalRanked asserts two results rank identical patterns with
// bit-identical scores, aggregates and trees. Work counters are NOT
// compared: the streaming executor's bound pushdown legitimately skips
// enumeration units the staged baseline counts (BoundPruned accounts for
// them), so only the answers must match.
func equalRanked(t *testing.T, label string, ix *index.Index, a, b *Result) {
	t.Helper()
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("%s: %d patterns vs %d", label, len(a.Patterns), len(b.Patterns))
	}
	pt := ix.PatternTable()
	for i := range a.Patterns {
		ap, bp := a.Patterns[i], b.Patterns[i]
		if ap.Score != bp.Score {
			t.Errorf("%s: rank %d score %v != %v", label, i, ap.Score, bp.Score)
		}
		if ap.Pattern.ContentKey(pt) != bp.Pattern.ContentKey(pt) {
			t.Errorf("%s: rank %d pattern content differs", label, i)
		}
		if ap.Agg != bp.Agg {
			t.Errorf("%s: rank %d aggregate %+v != %+v", label, i, ap.Agg, bp.Agg)
		}
		if !reflect.DeepEqual(ap.Trees, bp.Trees) {
			t.Errorf("%s: rank %d materialized trees differ", label, i)
		}
		if !reflect.DeepEqual(ap.RootAggs, bp.RootAggs) {
			t.Errorf("%s: rank %d root decompositions differ", label, i)
		}
	}
}

// TestStreamingMatchesStagedExecutor is the streaming executor's core
// guarantee: for every algorithm, worker count and query, the streaming
// default returns bit-identical answers to the Options.Staged baseline.
// Small K makes the bound pushdown actually fire; the CollectRootAggs
// round exercises streaming's fetch paths with pruning auto-disabled.
func TestStreamingMatchesStagedExecutor(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algo{AlgoPE, AlgoLE, AlgoAuto} {
			for _, workers := range []int{1, 4} {
				for _, collect := range []bool{false, true} {
					for _, q := range tc.queries {
						opts := Options{K: 5, Workers: workers, CollectRootAggs: collect}
						staged := opts
						staged.Staged = true
						sres, err := Execute(context.Background(), ix, q, algo, staged)
						if err != nil {
							t.Fatal(err)
						}
						stream, err := Execute(context.Background(), ix, q, algo, opts)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("%s/%v/w=%d/collect=%v/%q", tc.name, algo, workers, collect, q)
						equalRanked(t, label, ix, sres, stream)
						if sres.Stats.BoundPruned != 0 {
							t.Errorf("%s: staged run reports BoundPruned=%d", label, sres.Stats.BoundPruned)
						}
						if collect && stream.Stats.BoundPruned != 0 {
							t.Errorf("%s: pruning fired under CollectRootAggs", label)
						}
					}
				}
			}
		}
	}
}

// TestStreamingTopTreesMatchesStaged: individual-tree ranking under the
// streaming per-root bound pushdown returns the staged answers
// bit-identically, and its TreesFound still reports the full enumerated
// frontier (pruned roots credit their exact subtree count).
func TestStreamingTopTreesMatchesStaged(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 5} {
			for _, q := range tc.queries {
				sTrees, sStats := TopTrees(ix, q, k, Options{Staged: true})
				trees, stats := TopTrees(ix, q, k, Options{})
				label := fmt.Sprintf("%s/k=%d/%q", tc.name, k, q)
				if !reflect.DeepEqual(sTrees, trees) {
					t.Errorf("%s: streaming trees differ from staged", label)
				}
				if sStats.TreesFound != stats.TreesFound {
					t.Errorf("%s: TreesFound %d != staged %d (pruned-root credit broken)",
						label, stats.TreesFound, sStats.TreesFound)
				}
				if sStats.BoundPruned != 0 {
					t.Errorf("%s: staged run reports BoundPruned=%d", label, sStats.BoundPruned)
				}
			}
		}
	}
}

// TestStreamingPruningFires guards against the bound pushdown silently
// degrading into a no-op: across a realistic workload at small K, at
// least some enumeration units must actually be pruned (each individually
// verified sound by the equivalence tests above).
func TestStreamingPruningFires(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 1500, Types: 40})
	ix, err := index.Build(g, index.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	var pePruned, ttPruned int64
	for _, q := range dataset.Workload(g, dataset.WorkloadConfig{PerM: 3, MaxM: 4}) {
		res, err := Execute(context.Background(), ix, q.Text, AlgoPE, Options{K: 2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		pePruned += res.Stats.BoundPruned
		_, stats := TopTrees(ix, q.Text, 2, Options{})
		ttPruned += stats.BoundPruned
	}
	if pePruned == 0 {
		t.Errorf("PATTERNENUM bound pushdown never fired across the workload")
	}
	if ttPruned == 0 {
		t.Errorf("TopTrees bound pushdown never fired across the workload")
	}
}

// starGraph builds a worst-case single-root product: one hub entity whose
// subtree contains `fan` children per keyword, each child matching exactly
// one keyword through the same attribute (so each keyword contributes one
// pattern with `fan` paths). The query "alpha beta gamma" then has ONE
// candidate root, ONE pattern combination, and fan^3 valid subtrees — all
// cancellation opportunities the pre-streaming executor had (between
// shards, roots and patterns) collapse, leaving only the per-tuple poll
// inside productPaths.
func starGraph(fan int) *kg.Graph {
	b := kg.NewBuilder()
	hub := b.Entity("Hub", "hub")
	for _, w := range []string{"alpha", "beta", "gamma"} {
		for i := 0; i < fan; i++ {
			b.Attr(hub, "has", b.Entity("Leaf", fmt.Sprintf("%s %d", w, i)))
		}
	}
	return b.MustFreeze()
}

// TestCancellationInsideProduct pins the satellite fix: a query canceled
// in the middle of one enormous path product must return promptly with
// context.Canceled instead of enumerating ~10^8 remaining tuples to
// completion (and, through the serial runShards bug this PR also fixes,
// returning a truncated result with a nil error).
func TestCancellationInsideProduct(t *testing.T) {
	g := starGraph(500) // 500^3 = 1.25e8 tuples under the single root
	ix, err := index.Build(g, index.Options{D: 2, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algo{AlgoPE, AlgoLE} {
		for _, staged := range []bool{false, true} {
			ctx, cancel := context.WithCancel(context.Background())
			time.AfterFunc(25*time.Millisecond, cancel)
			start := time.Now()
			_, err := Execute(ctx, ix, "alpha beta gamma", algo, Options{K: 5, Workers: 1, Staged: staged})
			elapsed := time.Since(start)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v/staged=%v: err = %v, want context.Canceled (after %v)", algo, staged, err, elapsed)
			}
		}
	}
}

// TestPeLeafUBIsSound cross-checks the PATTERNENUM leaf bound against the
// exact aggregates on real corpora: for every enumerated combination, the
// envelope bound must dominate the exact pattern aggregate.
func TestPeLeafUBIsSound(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	words, _ := ResolveQuery(ix, fig1Query)
	for _, agg := range []core.Agg{core.AggSum, core.AggCount, core.AggAvg, core.AggMax} {
		o := Options{Agg: agg}.withDefaults()
		res, err := Execute(context.Background(), ix, fig1Query, AlgoPE, Options{K: 100, Agg: agg, CollectRootAggs: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, rp := range res.Patterns {
			bounds := make([]index.PatternBounds, len(words))
			for i, w := range words {
				b, ok := ix.PatternBounds(w, rp.Pattern.Paths[i])
				if !ok {
					t.Fatalf("agg=%v: ranked pattern lacks bounds", agg)
				}
				bounds[i] = b
			}
			nRoots := len(rp.RootAggs)
			if ub := peLeafUB(bounds, nRoots, o); ub < rp.Score {
				t.Errorf("agg=%v: peLeafUB=%v < exact score %v", agg, ub, rp.Score)
			}
		}
	}
}
