package search

import (
	"context"
	"sort"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// PETopK runs PATTERNENUM (Algorithm 2): for each root type C it enumerates
// every combination of per-keyword path patterns rooted at C from the
// pattern-first index, checks non-emptiness by intersecting the root lists,
// and scores the non-empty tree patterns. Valid subtrees of a pattern are
// generated at one time, so no online aggregation dictionary is needed.
func PETopK(ix *index.Index, query string, opts Options) *Result {
	res, _ := PETopKCtx(context.Background(), ix, query, opts)
	return res
}

// PETopKCtx is PETopK with cancellation: a canceled or expired context
// stops the enumeration between shards and returns the context's error.
func PETopKCtx(ctx context.Context, ix *index.Index, query string, opts Options) (*Result, error) {
	return Execute(ctx, ix, query, AlgoPE, opts)
}

// PETopKWords is PETopK on pre-resolved keywords.
func PETopKWords(ix *index.Index, words []text.WordID, surfaces []string, opts Options) *Result {
	res, _ := PETopKWordsCtx(context.Background(), ix, words, surfaces, opts)
	return res
}

// PETopKWordsCtx is PETopKWords with cancellation; it runs the staged
// executor with the algorithm pinned to PATTERNENUM.
func PETopKWordsCtx(ctx context.Context, ix *index.Index, words []text.WordID, surfaces []string, opts Options) (*Result, error) {
	return ExecuteWords(ctx, ix, words, surfaces, AlgoPE, opts)
}

// peType is the per-root-type precomputation of Algorithm 2 line 3:
// PatternsC(wi) and the cached root list per pattern, plus the keyword
// enumeration order (selective first, so empty prefixes prune the
// combination tree as early as possible; choice[] stays indexed by the
// original keyword position, so the output is unchanged).
type peType struct {
	pats  [][]core.PatternID
	roots [][][]kg.NodeID
	order []int
}

// peEnumerate is PATTERNENUM's enumerate stage. The enumeration is sharded
// by (root type, first path-pattern choice) across the worker pool
// configured by Options.Workers; every tree pattern is scored entirely
// inside one shard, so the parallel run returns exactly the serial
// results. The caller folds the returned per-worker accumulators in the
// aggregate stage.
func peEnumerate(ctx context.Context, ix *index.Index, prep *prepared, o Options) ([]workerState[RankedPattern], error) {
	words := prep.words
	m := len(words)
	pt := ix.PatternTable()

	// Serial prelude: fetch the per-type pattern and root lists (cheap
	// index lookups) and cut the enumeration into shards. One shard is the
	// subtree of combinations under one choice of the most selective
	// keyword's pattern — disjoint by construction, and fine-grained
	// enough to balance a skewed type distribution across workers.
	types := make([]peType, len(prep.rootTypes))
	type peShard struct{ t, j int }
	var shards []peShard
	for ti, c := range prep.rootTypes {
		tt := &types[ti]
		tt.pats = make([][]core.PatternID, m)
		tt.roots = make([][][]kg.NodeID, m)
		for i, w := range words {
			tt.pats[i] = ix.PatternsOfType(w, c)
			tt.roots[i] = make([][]kg.NodeID, len(tt.pats[i]))
			for j, p := range tt.pats[i] {
				tt.roots[i][j] = ix.RootsOf(w, p)
			}
		}
		tt.order = make([]int, m)
		for i := range tt.order {
			tt.order[i] = i
		}
		sort.Slice(tt.order, func(a, b int) bool {
			return len(tt.pats[tt.order[a]]) < len(tt.pats[tt.order[b]])
		})
		for j := range tt.pats[tt.order[0]] {
			shards = append(shards, peShard{t: ti, j: j})
		}
	}

	// Lines 4-8 per shard: enumerate the tree-pattern product. The root
	// intersection of line 5 is computed incrementally along the
	// combination prefix, so a prefix with an empty intersection prunes
	// its whole subtree of combinations at once (the wasted
	// set-intersections on empty patterns are PATTERNENUM's worst case,
	// Section 4.1; the pruning does not change the output).
	workers := resolveWorkers(o.Workers)
	ws := newWorkerStates[RankedPattern](workers, o.K)
	err := runShards(ctx, workers, len(shards), func(worker, si int) {
		sh := shards[si]
		tt := &types[sh.t]
		st := &ws[worker].stats
		ltop := ws[worker].top
		pc := &pollCancel{ctx: ctx}
		w0 := tt.order[0]
		r0 := tt.roots[w0][sh.j]
		if len(r0) == 0 {
			st.EmptyChecked++
			return
		}
		choice := make([]core.PatternID, m)
		choice[w0] = tt.pats[w0][sh.j]
		var rec func(i int, r []kg.NodeID)
		rec = func(i int, r []kg.NodeID) {
			if i == m {
				tp := core.TreePattern{Paths: append([]core.PatternID(nil), choice...)}
				agg, n, rootAggs := aggregatePattern(ix, words, tp, r, o, pc)
				if pc.hit() {
					return // partial aggregate; the query is aborting
				}
				if agg.Count == 0 {
					// All tuples filtered out (RequireTreeShape).
					st.EmptyChecked++
					return
				}
				st.PatternsFound++
				st.TreesFound += n
				ltop.Offer(agg.Value(o.Agg), tp.ContentKey(pt),
					RankedPattern{Pattern: tp, Agg: agg, Score: agg.Value(o.Agg), RootAggs: rootAggs})
				return
			}
			w := tt.order[i]
			for j, p := range tt.pats[w] {
				if pc.hit() {
					return
				}
				next := intersectSorted([][]kg.NodeID{r, tt.roots[w][j]})
				if len(next) == 0 {
					st.EmptyChecked++
					continue
				}
				choice[w] = p
				rec(i+1, next)
			}
		}
		rec(1, r0)
	})
	return ws, err
}

// intersectTypes intersects sorted TypeID lists.
func intersectTypes(lists [][]kg.TypeID) []kg.TypeID {
	if len(lists) == 0 {
		return nil
	}
	out := lists[0]
	for _, l := range lists[1:] {
		var next []kg.TypeID
		i, j := 0, 0
		for i < len(out) && j < len(l) {
			switch {
			case out[i] == l[j]:
				next = append(next, out[i])
				i++
				j++
			case out[i] < l[j]:
				i++
			default:
				j++
			}
		}
		out = next
		if len(out) == 0 {
			return nil
		}
	}
	return out
}
