package search

import (
	"context"
	"sort"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// PETopK runs PATTERNENUM (Algorithm 2): for each root type C it enumerates
// every combination of per-keyword path patterns rooted at C from the
// pattern-first index, checks non-emptiness by intersecting the root lists,
// and scores the non-empty tree patterns. Valid subtrees of a pattern are
// generated at one time, so no online aggregation dictionary is needed.
func PETopK(ix *index.Index, query string, opts Options) *Result {
	res, _ := PETopKCtx(context.Background(), ix, query, opts)
	return res
}

// PETopKCtx is PETopK with cancellation: a canceled or expired context
// stops the enumeration between shards and returns the context's error.
func PETopKCtx(ctx context.Context, ix *index.Index, query string, opts Options) (*Result, error) {
	return Execute(ctx, ix, query, AlgoPE, opts)
}

// PETopKWords is PETopK on pre-resolved keywords.
func PETopKWords(ix *index.Index, words []text.WordID, surfaces []string, opts Options) *Result {
	res, _ := PETopKWordsCtx(context.Background(), ix, words, surfaces, opts)
	return res
}

// PETopKWordsCtx is PETopKWords with cancellation; it runs the staged
// executor with the algorithm pinned to PATTERNENUM.
func PETopKWordsCtx(ctx context.Context, ix *index.Index, words []text.WordID, surfaces []string, opts Options) (*Result, error) {
	return ExecuteWords(ctx, ix, words, surfaces, AlgoPE, opts)
}

// peType is the per-root-type precomputation of Algorithm 2 line 3:
// PatternsC(wi) and the cached root list per pattern, plus the keyword
// enumeration order (selective first, so empty prefixes prune the
// combination tree as early as possible; choice[] stays indexed by the
// original keyword position, so the output is unchanged). bounds carries
// the per-pattern posting envelopes the streaming bound pushdown reads;
// it is only populated when pruning is enabled.
type peType struct {
	pats   [][]core.PatternID
	roots  [][][]kg.NodeID
	bounds [][]index.PatternBounds
	order  []int
}

// peEnumerate is PATTERNENUM's fused enumerate→aggregate walk. The
// enumeration is sharded by (root type, first path-pattern choice) across
// the worker pool configured by Options.Workers; every tree pattern is
// scored entirely inside one shard, so the parallel run returns exactly
// the serial results. The caller folds the returned per-worker
// accumulators in the aggregate stage.
//
// In streaming mode (the default) each worker scores into a shard-local
// bounded heap and, once that heap holds K patterns, prunes leaf
// combinations whose posting-envelope bound (peLeafUB) cannot displace
// the shard-local k-th score — before any path is fetched. stream.go's
// package comment argues soundness and determinism; Options.Staged or
// CollectRootAggs disable the pruning (the shard scatter must surface
// every pattern). Pruning applies only at leaves: interior prefixes keep
// the original empty-intersection pruning, so EmptyChecked counts exactly
// the combinations the staged walk counts.
// peShard is one unit of PATTERNENUM's enumeration cut: the subtree of
// combinations under pattern choice j of type t's most selective keyword.
type peShard struct{ t, j int }

// peTables is the serial prelude's output — everything the combination
// walk reads but never writes. It depends only on the retained prepare,
// the immutable index, and whether pruning is enabled, so a Prepared
// caches one per pruning mode and repeat executions skip the prelude.
type peTables struct {
	types  []peType
	shards []peShard
}

// pePrelude fetches the per-type pattern and root lists (cheap index
// lookups) and cuts the enumeration into shards. One shard is the
// subtree of combinations under one choice of the most selective
// keyword's pattern — disjoint by construction, and fine-grained enough
// to balance a skewed type distribution across workers.
func pePrelude(ix *index.Index, prep *prepared, pruneOK bool) *peTables {
	words := prep.words
	m := len(words)
	tb := &peTables{types: make([]peType, len(prep.rootTypes))}
	for ti, c := range prep.rootTypes {
		tt := &tb.types[ti]
		tt.pats = make([][]core.PatternID, m)
		tt.roots = make([][][]kg.NodeID, m)
		if pruneOK {
			tt.bounds = make([][]index.PatternBounds, m)
		}
		for i, w := range words {
			tt.pats[i] = ix.PatternsOfType(w, c)
			tt.roots[i] = make([][]kg.NodeID, len(tt.pats[i]))
			if pruneOK {
				tt.bounds[i] = make([]index.PatternBounds, len(tt.pats[i]))
			}
			for j, p := range tt.pats[i] {
				tt.roots[i][j] = ix.RootsOf(w, p)
				if pruneOK {
					tt.bounds[i][j], _ = ix.PatternBounds(w, p)
				}
			}
		}
		tt.order = make([]int, m)
		for i := range tt.order {
			tt.order[i] = i
		}
		sort.Slice(tt.order, func(a, b int) bool {
			return len(tt.pats[tt.order[a]]) < len(tt.pats[tt.order[b]])
		})
		for j := range tt.pats[tt.order[0]] {
			tb.shards = append(tb.shards, peShard{t: ti, j: j})
		}
	}
	return tb
}

func peEnumerate(ctx context.Context, ix *index.Index, prep *prepared, o Options) ([]workerState[RankedPattern], error) {
	words := prep.words
	m := len(words)
	pt := ix.PatternTable()
	pruneOK := !o.Staged && !o.CollectRootAggs
	tb := prep.peTables(ix, pruneOK)
	types, shards := tb.types, tb.shards

	// Lines 4-8 per shard: enumerate the tree-pattern product. The root
	// intersection of line 5 is computed incrementally along the
	// combination prefix, so a prefix with an empty intersection prunes
	// its whole subtree of combinations at once (the wasted
	// set-intersections on empty patterns are PATTERNENUM's worst case,
	// Section 4.1; the pruning does not change the output).
	workers := resolveWorkers(o.Workers)
	ws := newWorkerStates[RankedPattern](workers, o.K)
	streaming := !o.Staged
	var locals []*core.TopK[RankedPattern]
	var scratches []aggScratch
	if streaming {
		scratches = make([]aggScratch, workers)
	}
	if pruneOK {
		locals = make([]*core.TopK[RankedPattern], workers)
		for i := range locals {
			locals[i] = core.NewTopK[RankedPattern](o.K)
		}
	}
	err := runShards(ctx, workers, len(shards), func(worker, si int) {
		sh := shards[si]
		tt := &types[sh.t]
		st := &ws[worker].stats
		sink := ws[worker].top
		var sc *aggScratch
		if streaming {
			sc = &scratches[worker]
		}
		if pruneOK {
			// Score into a fresh shard-local heap (backing array reused
			// across the worker's shards) so the pruning bound depends only
			// on this shard's own enumeration prefix — never on which
			// worker ran the preceding shards — keeping serial and parallel
			// runs, and their counters, identical.
			sink = locals[worker]
			sink.Reset()
		}
		pc := &pollCancel{ctx: ctx}
		w0 := tt.order[0]
		r0 := tt.roots[w0][sh.j]
		if len(r0) == 0 {
			st.EmptyChecked++
			return
		}
		choice := make([]core.PatternID, m)
		choice[w0] = tt.pats[w0][sh.j]
		var chosenB []index.PatternBounds
		if pruneOK {
			chosenB = make([]index.PatternBounds, m)
			chosenB[w0] = tt.bounds[w0][sh.j]
		}
		var rec func(i int, r []kg.NodeID)
		rec = func(i int, r []kg.NodeID) {
			if i == m {
				// Top-k bound pushdown: bound the combination's best
				// possible aggregate from the posting envelopes before
				// paying for the path-product aggregation.
				if pruneOK && sink.Len() >= o.K && !sink.WouldAccept(peLeafUB(chosenB, len(r), o)) {
					st.BoundPruned++
					return
				}
				tp := core.TreePattern{Paths: append([]core.PatternID(nil), choice...)}
				agg, n, rootAggs := aggregatePattern(ix, words, tp, r, o, pc, sc)
				if pc.hit() {
					return // partial aggregate; the query is aborting
				}
				if agg.Count == 0 {
					// All tuples filtered out (RequireTreeShape).
					st.EmptyChecked++
					return
				}
				st.PatternsFound++
				st.TreesFound += n
				sink.Offer(agg.Value(o.Agg), tp.ContentKey(pt),
					RankedPattern{Pattern: tp, Agg: agg, Score: agg.Value(o.Agg), RootAggs: rootAggs})
				return
			}
			w := tt.order[i]
			for j, p := range tt.pats[w] {
				if pc.hit() {
					return
				}
				next := intersectSorted([][]kg.NodeID{r, tt.roots[w][j]})
				if len(next) == 0 {
					st.EmptyChecked++
					continue
				}
				choice[w] = p
				if pruneOK {
					chosenB[w] = tt.bounds[w][j]
				}
				rec(i+1, next)
			}
		}
		rec(1, r0)
		if pruneOK {
			ws[worker].top.Merge(sink)
		}
	})
	return ws, err
}

// intersectTypes intersects sorted TypeID lists.
func intersectTypes(lists [][]kg.TypeID) []kg.TypeID {
	if len(lists) == 0 {
		return nil
	}
	out := lists[0]
	for _, l := range lists[1:] {
		var next []kg.TypeID
		i, j := 0, 0
		for i < len(out) && j < len(l) {
			switch {
			case out[i] == l[j]:
				next = append(next, out[i])
				i++
				j++
			case out[i] < l[j]:
				i++
			default:
				j++
			}
		}
		out = next
		if len(out) == 0 {
			return nil
		}
	}
	return out
}
