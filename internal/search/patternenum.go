package search

import (
	"sort"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// PETopK runs PATTERNENUM (Algorithm 2): for each root type C it enumerates
// every combination of per-keyword path patterns rooted at C from the
// pattern-first index, checks non-emptiness by intersecting the root lists,
// and scores the non-empty tree patterns. Valid subtrees of a pattern are
// generated at one time, so no online aggregation dictionary is needed.
func PETopK(ix *index.Index, query string, opts Options) *Result {
	words, surfaces := ResolveQuery(ix, query)
	return PETopKWords(ix, words, surfaces, opts)
}

// PETopKWords is PETopK on pre-resolved keywords.
func PETopKWords(ix *index.Index, words []text.WordID, surfaces []string, opts Options) *Result {
	start := time.Now()
	o := opts.withDefaults()
	stats := QueryStats{Surfaces: surfaces, Words: words}
	top := core.NewTopK[RankedPattern](o.K)
	if !queryable(ix, words) {
		return finalize(ix, words, top, o, stats, start)
	}
	m := len(words)
	pt := ix.PatternTable()

	// Root types under which every keyword has at least one pattern
	// (line 2 iterates all types; types failing this cannot contribute).
	typeLists := make([][]kg.TypeID, m)
	for i, w := range words {
		typeLists[i] = ix.RootTypes(w)
	}
	rootTypes := intersectTypes(typeLists)

	for _, c := range rootTypes {
		// PatternsC(wi) and the cached root list per pattern (line 3).
		pats := make([][]core.PatternID, m)
		roots := make([][][]kg.NodeID, m)
		for i, w := range words {
			pats[i] = ix.PatternsOfType(w, c)
			roots[i] = make([][]kg.NodeID, len(pats[i]))
			for j, p := range pats[i] {
				roots[i][j] = ix.RootsOf(w, p)
			}
		}
		// Enumerate selective keywords first so empty prefixes prune the
		// combination tree as early as possible; choice[] stays indexed by
		// the original keyword position, so the output is unchanged.
		order := make([]int, m)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return len(pats[order[a]]) < len(pats[order[b]]) })

		// Lines 4-8: enumerate the tree-pattern product. The root
		// intersection of line 5 is computed incrementally along the
		// combination prefix, so a prefix with an empty intersection
		// prunes its whole subtree of combinations at once (the wasted
		// set-intersections on empty patterns are PATTERNENUM's worst
		// case, Section 4.1; the pruning does not change its output).
		choice := make([]core.PatternID, m)
		var rec func(i int, r []kg.NodeID)
		rec = func(i int, r []kg.NodeID) {
			if i == m {
				tp := core.TreePattern{Paths: append([]core.PatternID(nil), choice...)}
				agg, n := aggregatePattern(ix, words, tp, r, o)
				if agg.Count == 0 {
					// All tuples filtered out (RequireTreeShape).
					stats.EmptyChecked++
					return
				}
				stats.PatternsFound++
				stats.TreesFound += n
				top.Offer(agg.Value(o.Agg), tp.ContentKey(pt), RankedPattern{Pattern: tp, Agg: agg, Score: agg.Value(o.Agg)})
				return
			}
			w := order[i]
			for j, p := range pats[w] {
				next := roots[w][j]
				if i > 0 {
					next = intersectSorted([][]kg.NodeID{r, next})
				}
				if len(next) == 0 {
					stats.EmptyChecked++
					continue
				}
				choice[w] = p
				rec(i+1, next)
			}
		}
		rec(0, nil)
	}
	stats.CandidateRoots = -1 // PATTERNENUM never materializes the root set
	return finalize(ix, words, top, o, stats, start)
}

// intersectTypes intersects sorted TypeID lists.
func intersectTypes(lists [][]kg.TypeID) []kg.TypeID {
	if len(lists) == 0 {
		return nil
	}
	out := lists[0]
	for _, l := range lists[1:] {
		var next []kg.TypeID
		i, j := 0, 0
		for i < len(out) && j < len(l) {
			switch {
			case out[i] == l[j]:
				next = append(next, out[i])
				i++
				j++
			case out[i] < l[j]:
				i++
			default:
				j++
			}
		}
		out = next
		if len(out) == 0 {
			return nil
		}
	}
	return out
}
