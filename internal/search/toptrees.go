package search

import (
	"encoding/binary"
	"strings"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// RankedTree is one individually-ranked valid subtree (Section 5.3
// compares these against tree patterns).
type RankedTree struct {
	Tree    core.Subtree
	Pattern core.TreePattern
	Score   float64
}

// TopTrees ranks individual valid subtrees by their tree scores
// (Equation 3), the "individual top-k" of Section 5.3 and the case study
// of Figures 14-15. It enumerates every valid subtree through the
// root-first index and keeps the top k.
func TopTrees(ix *index.Index, query string, k int, opts Options) ([]RankedTree, QueryStats) {
	start := time.Now()
	o := opts.withDefaults()
	words, surfaces := ResolveQuery(ix, query)
	stats := QueryStats{Surfaces: surfaces, Words: words}
	top := core.NewTopK[RankedTree](k)
	if !queryable(ix, words) {
		stats.Elapsed = time.Since(start)
		return top.Results(), stats
	}
	rootLists := make([][]kg.NodeID, len(words))
	for i, w := range words {
		rootLists[i] = ix.Roots(w)
	}
	candidates := intersectSorted(rootLists)
	stats.CandidateRoots = len(candidates)

	// Streaming mode pulls each root through the arena fetch (leScratch)
	// and, once the heap is full, skips whole roots whose posting-envelope
	// bound cannot displace the current k-th tree score — before any path
	// is fetched. A pruned root credits TreesFound with its exact subtree
	// count (Π NumPathsAt), so the counter still reports the full frontier
	// a staged run enumerates; that bookkeeping is only exact without the
	// tree-shape filter, so RequireTreeShape disables the pruning. The
	// heap is the single serial top-k, so pruning decisions are
	// deterministic, and soundness follows as in stream.go: every tree
	// under a pruned root scores strictly below k retained trees.
	streaming := !o.Staged
	pruneRoots := streaming && !o.RequireTreeShape
	m := len(words)
	var sc *leScratch
	var staged struct {
		patLists  [][]core.PatternID
		pathLists [][][]pathTerm
		choice    []core.PatternID
		chosen    [][]pathTerm
	}
	if streaming {
		sc = &leScratch{}
	} else {
		staged.patLists = make([][]core.PatternID, m)
		staged.pathLists = make([][][]pathTerm, m)
		staged.choice = make([]core.PatternID, m)
		staged.chosen = make([][]pathTerm, m)
	}
	for _, r := range candidates {
		if pruneRoots && top.Len() >= k {
			if ub, tuples, ok := rootTreeUB(ix, words, r, o); ok && !top.WouldAccept(ub) {
				stats.BoundPruned++
				stats.TreesFound += tuples
				continue
			}
		}
		var patLists [][]core.PatternID
		var pathLists [][][]pathTerm
		var choice []core.PatternID
		var chosen [][]pathTerm
		var psc *aggScratch
		if streaming {
			patLists, pathLists = sc.fetch(ix, words, r)
			if patLists == nil {
				continue // some keyword has no path at r
			}
			choice, chosen = sc.choice[:m], sc.chosen[:m]
			psc = &sc.agg
		} else {
			patLists, pathLists = staged.patLists, staged.pathLists
			choice, chosen = staged.choice, staged.chosen
			ok := true
			for i, w := range words {
				patLists[i] = ix.PatternsAt(w, r)
				if len(patLists[i]) == 0 {
					ok = false
					break
				}
				pathLists[i] = make([][]pathTerm, len(patLists[i]))
				for j, p := range patLists[i] {
					pathLists[i][j] = pathsRF(ix, w, r, p)
				}
			}
			if !ok {
				continue
			}
		}
		var rec func(i int)
		rec = func(i int) {
			if i == m {
				productPaths(ix.Graph(), chosen, o.RequireTreeShape, r, nil, psc, func(paths []core.Path, terms []core.ScoreTerms) {
					stats.TreesFound++
					score := o.Scorer.Tree(terms)
					if !top.WouldAccept(score) {
						return
					}
					st := core.Subtree{
						Root:  r,
						Paths: append([]core.Path(nil), paths...),
						Terms: append([]core.ScoreTerms(nil), terms...),
					}
					tp := core.TreePattern{Paths: append([]core.PatternID(nil), choice...)}
					top.Offer(score, treeKey(ix.PatternTable(), tp, st), RankedTree{Tree: st, Pattern: tp, Score: score})
				})
				return
			}
			for j, p := range patLists[i] {
				choice[i] = p
				chosen[i] = pathLists[i][j]
				rec(i + 1)
			}
		}
		rec(0)
	}
	stats.Elapsed = time.Since(start)
	return top.Results(), stats
}

// treeKey builds a deterministic tie-break key for an individual subtree:
// pattern content, then root, then the concrete edge IDs of each path.
func treeKey(pt *core.PatternTable, tp core.TreePattern, st core.Subtree) string {
	var sb strings.Builder
	sb.WriteString(tp.ContentKey(pt))
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(st.Root))
	sb.Write(buf[:])
	for _, p := range st.Paths {
		for _, e := range p.Edges {
			binary.LittleEndian.PutUint32(buf[:], uint32(e))
			sb.Write(buf[:])
		}
		if p.EdgeEnd {
			sb.WriteByte(1)
		} else {
			sb.WriteByte(0)
		}
	}
	return sb.String()
}

// TreeMergeKey is the deterministic ranking key of an individual subtree,
// derived from pattern content, root and concrete edges — never from
// interned PatternIDs. Shard gathers use it to merge per-shard TopTrees
// results into a global top-k with exactly the tie-breaks a single engine
// would apply (tree ranking is exact under sharding: an individual subtree
// lives wholly on the shard owning its root).
func TreeMergeKey(ix *index.Index, rt RankedTree) string {
	return treeKey(ix.PatternTable(), rt.Pattern, rt.Tree)
}

// wordIDsOf is a small helper for tests needing raw resolution.
func wordIDsOf(ix *index.Index, q string) []text.WordID {
	ids, _ := ResolveQuery(ix, q)
	return ids
}
