package search

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kbtable/internal/kg"
)

// refIntersect is the obvious map-based reference for intersectSorted.
func refIntersect(lists [][]kg.NodeID) []kg.NodeID {
	if len(lists) == 0 {
		return nil
	}
	count := map[kg.NodeID]int{}
	for _, l := range lists {
		seen := map[kg.NodeID]bool{}
		for _, v := range l {
			if !seen[v] {
				seen[v] = true
				count[v]++
			}
		}
	}
	var out []kg.NodeID
	for v, c := range count {
		if c == len(lists) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestIntersectSortedProperty cross-checks the galloping intersection
// against the reference on random sorted inputs (testing/quick).
func TestIntersectSortedProperty(t *testing.T) {
	f := func(raw [][]uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		lists := make([][]kg.NodeID, len(raw))
		for i, r := range raw {
			seen := map[kg.NodeID]bool{}
			for _, v := range r {
				id := kg.NodeID(v % 40) // force overlap
				if !seen[id] {
					seen[id] = true
					lists[i] = append(lists[i], id)
				}
			}
			sort.Slice(lists[i], func(a, b int) bool { return lists[i][a] < lists[i][b] })
		}
		got := intersectSorted(lists)
		want := refIntersect(lists)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersectSortedEdgeCases(t *testing.T) {
	if got := intersectSorted(nil); got != nil {
		t.Errorf("nil input should give nil")
	}
	if got := intersectSorted([][]kg.NodeID{{}, {1}}); len(got) != 0 {
		t.Errorf("empty member list gives empty intersection")
	}
	single := intersectSorted([][]kg.NodeID{{3, 5, 9}})
	if !reflect.DeepEqual(single, []kg.NodeID{3, 5, 9}) {
		t.Errorf("single-list intersection should be the list itself, got %v", single)
	}
}

func TestIntersectTypesProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(r []uint8) []kg.TypeID {
			seen := map[kg.TypeID]bool{}
			var out []kg.TypeID
			for _, v := range r {
				id := kg.TypeID(v % 20)
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		la, lb := mk(a), mk(b)
		got := intersectTypes([][]kg.TypeID{la, lb})
		inB := map[kg.TypeID]bool{}
		for _, v := range lb {
			inB[v] = true
		}
		var want []kg.TypeID
		for _, v := range la {
			if inB[v] {
				want = append(want, v)
			}
		}
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
