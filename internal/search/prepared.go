package search

import (
	"context"
	"fmt"
	"time"

	"kbtable/internal/index"
)

// Prepared retains one query's prepare-stage output — resolved keywords,
// per-keyword posting handles, and the planner's statistics — so repeat
// executions of the same shape run only enumerate→aggregate→rank. A
// Prepared is bound to the index snapshot it was built from: engines are
// immutable, so the retained posting handles stay valid for the life of
// that snapshot, and callers re-prepare after an update (the serve layer
// invalidates prepared handles on epoch swap).
//
// The enumerate stage only reads the retained output, so one Prepared may
// back any number of concurrent executions.
type Prepared struct {
	algo Algo
	prep *prepared
}

// PrepareQuery runs stage 1 (keyword resolution + posting lookups +
// statistics) for query and retains the output. algo may be AlgoAuto —
// the prepare then gathers the planner's cost statistics too, and each
// execution re-resolves the plan with its own Options (so AutoBias
// changes between executions take effect without re-preparing). The
// baseline has no prepare stage and is rejected.
func PrepareQuery(ctx context.Context, ix *index.Index, query string, algo Algo, opts Options) (*Prepared, error) {
	if algo == AlgoBaseline {
		return nil, fmt.Errorf("search: the baseline has no prepare stage")
	}
	words, surfaces := ResolveQuery(ix, query)
	prep, err := prepare(ctx, ix, words, surfaces, needFor(algo))
	if err != nil {
		return nil, err
	}
	return &Prepared{algo: algo, prep: prep}, nil
}

// Algo returns the algorithm the query was prepared for (possibly
// AlgoAuto).
func (p *Prepared) Algo() Algo { return p.algo }

// Stats returns the prepare-stage statistics.
func (p *Prepared) Stats() PlanStats { return p.prep.stats }

// Plan resolves the execution plan the prepared query would run under
// opts, without executing.
func (p *Prepared) Plan(opts Options) Plan {
	return ChoosePlan(p.algo, p.prep.stats, opts.withDefaults())
}

// ExecutePrepared runs stages 2-4 — enumerate, aggregate, rank — over a
// retained prepare. algo must be the algorithm the query was prepared
// for, or, when it was prepared for AlgoAuto, any algorithm the planner
// can resolve to (the shard scatter resolves Auto once from the merged
// statistics and executes every shard's prepared under the resolved
// algorithm). Passing AlgoAuto re-resolves from the retained statistics
// with opts' bias.
func ExecutePrepared(ctx context.Context, ix *index.Index, p *Prepared, algo Algo, opts Options) (*Result, error) {
	start := time.Now()
	o := opts.withDefaults()
	if algo == AlgoBaseline {
		return nil, fmt.Errorf("search: the baseline has no prepared execution")
	}
	if algo != p.algo && p.algo != AlgoAuto {
		return nil, fmt.Errorf("search: prepared for %v, cannot execute as %v", p.algo, algo)
	}
	return runStages(ctx, ix, p.prep, algo, o, start)
}
