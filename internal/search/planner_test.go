package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
)

// equalAnswers asserts two results rank identical patterns with
// bit-identical scores, aggregates and trees. Unlike equalResults it does
// not compare QueryStats.CandidateRoots: an Auto run computes the
// candidate intersection for the planner even when it resolves to
// PATTERNENUM, which reports -1 when run explicitly.
func equalAnswers(t *testing.T, label string, ix *index.Index, a, b *Result) {
	t.Helper()
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("%s: %d patterns vs %d", label, len(a.Patterns), len(b.Patterns))
	}
	pt := ix.PatternTable()
	for i := range a.Patterns {
		ap, bp := a.Patterns[i], b.Patterns[i]
		if ap.Score != bp.Score {
			t.Errorf("%s: rank %d score %v != %v", label, i, ap.Score, bp.Score)
		}
		if ap.Pattern.ContentKey(pt) != bp.Pattern.ContentKey(pt) {
			t.Errorf("%s: rank %d pattern content differs", label, i)
		}
		if ap.Agg != bp.Agg {
			t.Errorf("%s: rank %d aggregate %+v != %+v", label, i, ap.Agg, bp.Agg)
		}
		if !reflect.DeepEqual(ap.Trees, bp.Trees) {
			t.Errorf("%s: rank %d materialized trees differ", label, i)
		}
	}
	as, bs := a.Stats, b.Stats
	if as.SampledRoots != bs.SampledRoots || as.PatternsFound != bs.PatternsFound ||
		as.TreesFound != bs.TreesFound || as.EmptyChecked != bs.EmptyChecked {
		t.Errorf("%s: work counters diverge: %+v vs %+v", label, as, bs)
	}
}

// TestPlanProbeStats pins the prepare-stage statistics against the
// independent counting entry points.
func TestPlanProbeStats(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range tc.queries {
			st, err := PlanProbe(context.Background(), ix, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if want := NumCandidateRoots(ix, q); st.CandidateRoots != want {
				t.Errorf("%s/%q: CandidateRoots = %d, NumCandidateRoots = %d", tc.name, q, st.CandidateRoots, want)
			}
			if want := SubtreeCount(ix, q); st.Frontier != want {
				t.Errorf("%s/%q: Frontier = %d, SubtreeCount = %d", tc.name, q, st.Frontier, want)
			}
			if st.CandidateRoots > 0 && st.PatternSpace <= 0 {
				t.Errorf("%s/%q: answerable query has PatternSpace = %d", tc.name, q, st.PatternSpace)
			}
		}
	}
}

// TestAutoEquivalence is the planner's core guarantee at the executor
// level: AlgoAuto answers are bit-identical to explicitly requesting the
// algorithm the plan names, under every bias (which forces both planner
// branches to be exercised).
func TestAutoEquivalence(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, bias := range []float64{0, 1e-12, 1e12} {
			for _, q := range tc.queries {
				opts := Options{K: 20, AutoBias: bias}
				auto, err := Execute(context.Background(), ix, q, AlgoAuto, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !auto.Plan.Auto {
					t.Fatalf("%s/%q: Auto result not marked planner-chosen", tc.name, q)
				}
				if auto.Plan.Algo != AlgoPE && auto.Plan.Algo != AlgoLE {
					t.Fatalf("%s/%q: Auto resolved to %v", tc.name, q, auto.Plan.Algo)
				}
				if auto.Plan.Reason == "" {
					t.Fatalf("%s/%q: Auto plan has no reason", tc.name, q)
				}
				explicit, err := Execute(context.Background(), ix, q, auto.Plan.Algo, opts)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/bias=%g/%q -> %v", tc.name, bias, q, auto.Plan.Algo)
				equalAnswers(t, label, ix, explicit, auto)
			}
		}
	}
}

// TestAutoBiasForcesBranch pins the override semantics README documents:
// a huge bias forces PATTERNENUM, a tiny one LINEARENUM-TOPK (on any
// answerable query — both costs are then on the same side of the
// threshold).
func TestAutoBiasForcesBranch(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	q := "database software company revenue"
	st, err := PlanProbe(context.Background(), ix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidateRoots == 0 {
		t.Fatal("fig1 query should be answerable")
	}
	if p := ChoosePlan(AlgoAuto, st, Options{AutoBias: 1e12}); p.Algo != AlgoPE {
		t.Errorf("bias 1e12 resolved to %v, want PE", p.Algo)
	}
	if p := ChoosePlan(AlgoAuto, st, Options{AutoBias: 1e-12}); p.Algo != AlgoLE {
		t.Errorf("bias 1e-12 resolved to %v, want LE", p.Algo)
	}
	// Explicit algorithms pass through regardless of statistics.
	if p := ChoosePlan(AlgoLE, st, Options{}); p.Algo != AlgoLE || p.Auto {
		t.Errorf("explicit LE resolved to %+v", p)
	}
}

// TestChoosePlanDeterministic: the planner is a pure function of
// (PlanStats, Options) — repeated calls agree exactly.
func TestChoosePlanDeterministic(t *testing.T) {
	st := PlanStats{CandidateRoots: 100, RootTypes: 7, PatternSpace: 5000, Frontier: 9000}
	first := ChoosePlan(AlgoAuto, st, Options{})
	for i := 0; i < 10; i++ {
		if got := ChoosePlan(AlgoAuto, st, Options{}); !reflect.DeepEqual(got, first) {
			t.Fatalf("plan changed across calls: %+v vs %+v", got, first)
		}
	}
}

// TestPlanStatsMerge pins the shard-layer merge semantics: disjoint
// partitions sum, -1 poisons, RootTypes maxes.
func TestPlanStatsMerge(t *testing.T) {
	a := PlanStats{CandidateRoots: 3, RootTypes: 2, PatternSpace: 10, Frontier: 20, PostingRoots: []int{4, 5}}
	b := PlanStats{CandidateRoots: 7, RootTypes: 5, PatternSpace: 1, Frontier: 2, PostingRoots: []int{1, 1}}
	a.Merge(b)
	want := PlanStats{CandidateRoots: 10, RootTypes: 5, PatternSpace: 11, Frontier: 22, PostingRoots: []int{5, 6}}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("merge = %+v, want %+v", a, want)
	}
	c := PlanStats{CandidateRoots: -1}
	c.Merge(b)
	if c.CandidateRoots != -1 {
		t.Errorf("-1 should poison the sum, got %d", c.CandidateRoots)
	}
}

// TestPlanStatsMergeAsymmetricPostingRoots is the regression test for the
// length-dependent merge bug: when the receiver's PostingRoots vector was
// shorter than the argument's, the tail entries were silently dropped,
// under-counting posting sizes in the merged plan. The merge must sum
// positionally over the longer vector regardless of which side is longer.
func TestPlanStatsMergeAsymmetricPostingRoots(t *testing.T) {
	a := PlanStats{PostingRoots: []int{4}}
	a.Merge(PlanStats{PostingRoots: []int{1, 7, 9}})
	if want := []int{5, 7, 9}; !reflect.DeepEqual(a.PostingRoots, want) {
		t.Errorf("short receiver: merged PostingRoots = %v, want %v", a.PostingRoots, want)
	}
	b := PlanStats{PostingRoots: []int{1, 7, 9}}
	b.Merge(PlanStats{PostingRoots: []int{4}})
	if want := []int{5, 7, 9}; !reflect.DeepEqual(b.PostingRoots, want) {
		t.Errorf("long receiver: merged PostingRoots = %v, want %v", b.PostingRoots, want)
	}
	var c PlanStats
	c.Merge(PlanStats{PostingRoots: []int{2, 3}})
	if want := []int{2, 3}; !reflect.DeepEqual(c.PostingRoots, want) {
		t.Errorf("nil receiver: merged PostingRoots = %v, want %v", c.PostingRoots, want)
	}
}

// TestChoosePlanSaturation is the regression test for the cost-compare
// overflow bugs on explosive queries:
//
//  1. When candidate roots + half the frontier saturated, the former
//     "+ 1" wrapped LINEARENUM's cost to MinInt64, making every bias
//     choose LE — precisely on the queries PATTERNENUM exists for.
//  2. At the default bias the costs were compared as float64, which
//     collapses distinct int64 values above 2^53 onto one rounding
//     bucket and could flip near-saturated decisions.
func TestChoosePlanSaturation(t *testing.T) {
	// Case 1: LE cost saturates, PE cost is trivial — PE must win.
	st := PlanStats{
		CandidateRoots: math.MaxInt64 - 10,
		RootTypes:      1,
		PatternSpace:   1,
		Frontier:       math.MaxInt64,
	}
	for _, bias := range []float64{0, 1, 1e-6} {
		if p := ChoosePlan(AlgoAuto, st, Options{AutoBias: bias}); p.Algo != AlgoPE {
			t.Errorf("bias=%g: saturated LE cost resolved to %v, want PE (leCost must not wrap negative)", bias, p.Algo)
		}
	}
	// Case 2: costs 1 apart above 2^53 — float64 would see them equal
	// and pick PE; the exact integer compare must pick LE.
	leCost := int64(1)<<59 + 1 // cand 0 + frontier/2 + 1
	st = PlanStats{
		CandidateRoots: 0,
		RootTypes:      1,
		PatternSpace:   leCost + 1,
		Frontier:       1 << 60,
	}
	if p := ChoosePlan(AlgoAuto, st, Options{}); p.Algo != AlgoLE {
		t.Errorf("peCost=leCost+1 above 2^53 resolved to %v, want LE (default bias must compare exactly)", p.Algo)
	}
	st.PatternSpace = leCost // exactly equal: tie goes to PE
	if p := ChoosePlan(AlgoAuto, st, Options{}); p.Algo != AlgoPE {
		t.Errorf("peCost=leCost resolved to %v, want PE", p.Algo)
	}
	// Both costs saturated: indistinguishable, the tie still resolves
	// deterministically (PE at default bias) and never panics.
	st = PlanStats{CandidateRoots: math.MaxInt64 - 10, PatternSpace: math.MaxInt64, Frontier: math.MaxInt64}
	if p := ChoosePlan(AlgoAuto, st, Options{}); p.Algo != AlgoPE {
		t.Errorf("both-saturated costs resolved to %v, want PE", p.Algo)
	}
}

// TestPrepareCancellation pins the satellite fix: a context that is
// already done aborts the query inside the prepare stage — before any
// posting lookup or enumeration work — for every algorithm, including the
// planner probe.
func TestPrepareCancellation(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 800, Types: 20})
	ix, err := index.Build(g, index.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := "city population"
	for _, algo := range []Algo{AlgoPE, AlgoLE, AlgoAuto} {
		if _, err := Execute(ctx, ix, q, algo, Options{K: 5}); !errors.Is(err, context.Canceled) {
			t.Errorf("%v on canceled ctx: err = %v, want context.Canceled", algo, err)
		}
	}
	if _, err := PlanProbe(ctx, ix, q, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanProbe on canceled ctx: err = %v, want context.Canceled", err)
	}
	bl, err := NewBaseline(g, BaselineOptions{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.SearchCtx(ctx, q, Options{K: 5}); !errors.Is(err, context.Canceled) {
		t.Errorf("baseline on canceled ctx: err = %v, want context.Canceled", err)
	}
}
