package search

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
)

// equalAnswers asserts two results rank identical patterns with
// bit-identical scores, aggregates and trees. Unlike equalResults it does
// not compare QueryStats.CandidateRoots: an Auto run computes the
// candidate intersection for the planner even when it resolves to
// PATTERNENUM, which reports -1 when run explicitly.
func equalAnswers(t *testing.T, label string, ix *index.Index, a, b *Result) {
	t.Helper()
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("%s: %d patterns vs %d", label, len(a.Patterns), len(b.Patterns))
	}
	pt := ix.PatternTable()
	for i := range a.Patterns {
		ap, bp := a.Patterns[i], b.Patterns[i]
		if ap.Score != bp.Score {
			t.Errorf("%s: rank %d score %v != %v", label, i, ap.Score, bp.Score)
		}
		if ap.Pattern.ContentKey(pt) != bp.Pattern.ContentKey(pt) {
			t.Errorf("%s: rank %d pattern content differs", label, i)
		}
		if ap.Agg != bp.Agg {
			t.Errorf("%s: rank %d aggregate %+v != %+v", label, i, ap.Agg, bp.Agg)
		}
		if !reflect.DeepEqual(ap.Trees, bp.Trees) {
			t.Errorf("%s: rank %d materialized trees differ", label, i)
		}
	}
	as, bs := a.Stats, b.Stats
	if as.SampledRoots != bs.SampledRoots || as.PatternsFound != bs.PatternsFound ||
		as.TreesFound != bs.TreesFound || as.EmptyChecked != bs.EmptyChecked {
		t.Errorf("%s: work counters diverge: %+v vs %+v", label, as, bs)
	}
}

// TestPlanProbeStats pins the prepare-stage statistics against the
// independent counting entry points.
func TestPlanProbeStats(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range tc.queries {
			st, err := PlanProbe(context.Background(), ix, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if want := NumCandidateRoots(ix, q); st.CandidateRoots != want {
				t.Errorf("%s/%q: CandidateRoots = %d, NumCandidateRoots = %d", tc.name, q, st.CandidateRoots, want)
			}
			if want := SubtreeCount(ix, q); st.Frontier != want {
				t.Errorf("%s/%q: Frontier = %d, SubtreeCount = %d", tc.name, q, st.Frontier, want)
			}
			if st.CandidateRoots > 0 && st.PatternSpace <= 0 {
				t.Errorf("%s/%q: answerable query has PatternSpace = %d", tc.name, q, st.PatternSpace)
			}
		}
	}
}

// TestAutoEquivalence is the planner's core guarantee at the executor
// level: AlgoAuto answers are bit-identical to explicitly requesting the
// algorithm the plan names, under every bias (which forces both planner
// branches to be exercised).
func TestAutoEquivalence(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, bias := range []float64{0, 1e-12, 1e12} {
			for _, q := range tc.queries {
				opts := Options{K: 20, AutoBias: bias}
				auto, err := Execute(context.Background(), ix, q, AlgoAuto, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !auto.Plan.Auto {
					t.Fatalf("%s/%q: Auto result not marked planner-chosen", tc.name, q)
				}
				if auto.Plan.Algo != AlgoPE && auto.Plan.Algo != AlgoLE {
					t.Fatalf("%s/%q: Auto resolved to %v", tc.name, q, auto.Plan.Algo)
				}
				if auto.Plan.Reason == "" {
					t.Fatalf("%s/%q: Auto plan has no reason", tc.name, q)
				}
				explicit, err := Execute(context.Background(), ix, q, auto.Plan.Algo, opts)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/bias=%g/%q -> %v", tc.name, bias, q, auto.Plan.Algo)
				equalAnswers(t, label, ix, explicit, auto)
			}
		}
	}
}

// TestAutoBiasForcesBranch pins the override semantics README documents:
// a huge bias forces PATTERNENUM, a tiny one LINEARENUM-TOPK (on any
// answerable query — both costs are then on the same side of the
// threshold).
func TestAutoBiasForcesBranch(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	q := "database software company revenue"
	st, err := PlanProbe(context.Background(), ix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidateRoots == 0 {
		t.Fatal("fig1 query should be answerable")
	}
	if p := ChoosePlan(AlgoAuto, st, Options{AutoBias: 1e12}); p.Algo != AlgoPE {
		t.Errorf("bias 1e12 resolved to %v, want PE", p.Algo)
	}
	if p := ChoosePlan(AlgoAuto, st, Options{AutoBias: 1e-12}); p.Algo != AlgoLE {
		t.Errorf("bias 1e-12 resolved to %v, want LE", p.Algo)
	}
	// Explicit algorithms pass through regardless of statistics.
	if p := ChoosePlan(AlgoLE, st, Options{}); p.Algo != AlgoLE || p.Auto {
		t.Errorf("explicit LE resolved to %+v", p)
	}
}

// TestChoosePlanDeterministic: the planner is a pure function of
// (PlanStats, Options) — repeated calls agree exactly.
func TestChoosePlanDeterministic(t *testing.T) {
	st := PlanStats{CandidateRoots: 100, RootTypes: 7, PatternSpace: 5000, Frontier: 9000}
	first := ChoosePlan(AlgoAuto, st, Options{})
	for i := 0; i < 10; i++ {
		if got := ChoosePlan(AlgoAuto, st, Options{}); !reflect.DeepEqual(got, first) {
			t.Fatalf("plan changed across calls: %+v vs %+v", got, first)
		}
	}
}

// TestPlanStatsMerge pins the shard-layer merge semantics: disjoint
// partitions sum, -1 poisons, RootTypes maxes.
func TestPlanStatsMerge(t *testing.T) {
	a := PlanStats{CandidateRoots: 3, RootTypes: 2, PatternSpace: 10, Frontier: 20, PostingRoots: []int{4, 5}}
	b := PlanStats{CandidateRoots: 7, RootTypes: 5, PatternSpace: 1, Frontier: 2, PostingRoots: []int{1, 1}}
	a.Merge(b)
	want := PlanStats{CandidateRoots: 10, RootTypes: 5, PatternSpace: 11, Frontier: 22, PostingRoots: []int{5, 6}}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("merge = %+v, want %+v", a, want)
	}
	c := PlanStats{CandidateRoots: -1}
	c.Merge(b)
	if c.CandidateRoots != -1 {
		t.Errorf("-1 should poison the sum, got %d", c.CandidateRoots)
	}
}

// TestPrepareCancellation pins the satellite fix: a context that is
// already done aborts the query inside the prepare stage — before any
// posting lookup or enumeration work — for every algorithm, including the
// planner probe.
func TestPrepareCancellation(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 800, Types: 20})
	ix, err := index.Build(g, index.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := "city population"
	for _, algo := range []Algo{AlgoPE, AlgoLE, AlgoAuto} {
		if _, err := Execute(ctx, ix, q, algo, Options{K: 5}); !errors.Is(err, context.Canceled) {
			t.Errorf("%v on canceled ctx: err = %v, want context.Canceled", algo, err)
		}
	}
	if _, err := PlanProbe(ctx, ix, q, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanProbe on canceled ctx: err = %v, want context.Canceled", err)
	}
	bl, err := NewBaseline(g, BaselineOptions{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.SearchCtx(ctx, q, Options{K: 5}); !errors.Is(err, context.Canceled) {
		t.Errorf("baseline on canceled ctx: err = %v, want context.Canceled", err)
	}
}
