package search

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// randomGraph builds a random typed knowledge graph whose node texts are
// drawn from a small vocabulary, so that multi-keyword queries have
// answers and patterns genuinely aggregate.
func randomGraph(rng *rand.Rand) *kg.Graph {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	types := []string{"City", "Person", "Company", "Product"}
	attrs := []string{"knows", "owns", "near", "makes"}
	b := kg.NewBuilder()
	n := 8 + rng.Intn(20)
	ids := make([]kg.NodeID, n)
	for i := 0; i < n; i++ {
		nw := 1 + rng.Intn(2)
		txt := ""
		for j := 0; j < nw; j++ {
			if j > 0 {
				txt += " "
			}
			txt += vocab[rng.Intn(len(vocab))]
		}
		ids[i] = b.Entity(types[rng.Intn(len(types))], txt)
	}
	en := rng.Intn(3 * n)
	for i := 0; i < en; i++ {
		b.Attr(ids[rng.Intn(n)], attrs[rng.Intn(len(attrs))], ids[rng.Intn(n)])
	}
	return b.MustFreeze()
}

// TestAlgorithmsAgreeOnRandomGraphs is the central equivalence property:
// on arbitrary graphs and queries, PATTERNENUM, LINEARENUM (exact) and the
// enumeration-aggregation baseline must produce identical pattern sets,
// scores and tree counts.
func TestAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	queries := []string{
		"alpha", "alpha beta", "gamma delta", "company alpha",
		"knows beta", "owns city", "alpha beta gamma",
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		d := 2 + rng.Intn(2) // d in {2,3}
		ix, err := index.Build(g, index.Options{D: d, UniformPR: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bl, err := NewBaseline(g, BaselineOptions{D: d, UniformPR: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, q := range queries {
			pe := PETopK(ix, q, Options{K: 100000, SkipTrees: true})
			le := LETopK(ix, q, Options{K: 100000, SkipTrees: true})
			blres := bl.Search(q, Options{K: 100000, SkipTrees: true})

			gotPE := renderPE(ix, pe)
			gotLE := renderPE(ix, le)
			gotBL := renderBL(g, blres)
			label := fmt.Sprintf("seed=%d d=%d q=%q", seed, d, q)
			if len(gotPE) != len(gotLE) || len(gotPE) != len(gotBL) {
				t.Errorf("%s: pattern counts differ PE=%d LE=%d BL=%d", label, len(gotPE), len(gotLE), len(gotBL))
				continue
			}
			for k, v := range gotPE {
				for name, other := range map[string]map[string]renderedPattern{"LE": gotLE, "BL": gotBL} {
					ov, ok := other[k]
					if !ok {
						t.Errorf("%s: %s missing pattern\n%s", label, name, k)
						continue
					}
					if math.Abs(v.Score-ov.Score) > 1e-9 || v.Count != ov.Count {
						t.Errorf("%s: %s disagrees on %q: %+v vs %+v", label, name, k, v, ov)
					}
				}
			}
			// CountAll must agree with the exhaustive run.
			np, nt := CountAll(ix, q)
			if np != pe.Stats.PatternsFound || nt != pe.Stats.TreesFound {
				t.Errorf("%s: CountAll (%d,%d) != PETopK (%d,%d)", label, np, nt, pe.Stats.PatternsFound, pe.Stats.TreesFound)
			}
		}
	}
}

// TestSamplingPrecisionImproves checks Theorem 5's direction empirically:
// higher sampling rates give (weakly) better average precision against the
// exact top-k, on a graph large enough for sampling to engage.
func TestSamplingPrecisionImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// A larger random graph with repetitive structure: many roots share
	// patterns, so per-type subtree counts exceed the sampling threshold.
	b := kg.NewBuilder()
	edgeTypes := []string{"stars", "cameo", "directedBy", "writtenBy"}
	var movies []kg.NodeID
	for i := 0; i < 300; i++ {
		r := b.Entity("Movie", fmt.Sprintf("film %d", i))
		movies = append(movies, r)
		for _, et := range edgeTypes {
			if rng.Float64() < 0.6 {
				a := b.Entity("Person", fmt.Sprintf("actor %d", rng.Intn(80)))
				b.Attr(r, et, a)
			}
		}
		if i > 0 && rng.Float64() < 0.5 {
			// Sequel links create length-3 patterns like
			// (Movie)(sequelOf)(Movie)(stars)(Person).
			b.Attr(r, "sequelOf", movies[rng.Intn(i)])
		}
	}
	g := b.MustFreeze()
	ix, err := index.Build(g, index.Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	q := "film actor"
	k := 10
	exact := LETopK(ix, q, Options{K: k, SkipTrees: true})
	if len(exact.Patterns) == 0 {
		t.Fatalf("query should have answers")
	}
	exactKeys := map[string]bool{}
	for _, rp := range exact.Patterns {
		exactKeys[rp.Pattern.Render(ix.Graph(), ix.PatternTable(), exact.Stats.Surfaces)] = true
	}
	if len(exactKeys) < 5 {
		t.Fatalf("test graph too uniform: only %d exact patterns", len(exactKeys))
	}
	denom := float64(len(exactKeys))
	precision := func(rho float64) float64 {
		total := 0.0
		const trials = 5
		for s := int64(1); s <= trials; s++ {
			res := LETopK(ix, q, Options{K: k, Lambda: 1, Rho: rho, Seed: s, SkipTrees: true})
			hit := 0
			for _, rp := range res.Patterns {
				if exactKeys[rp.Pattern.Render(ix.Graph(), ix.PatternTable(), res.Stats.Surfaces)] {
					hit++
				}
			}
			total += float64(hit) / denom
		}
		return total / trials
	}
	p10 := precision(0.10)
	p50 := precision(0.50)
	p100 := precision(1.0)
	t.Logf("precision: rho=0.1 %.2f, rho=0.5 %.2f, rho=1.0 %.2f", p10, p50, p100)
	if p100 < 0.999 {
		t.Errorf("rho=1 must be exact, got %v", p100)
	}
	if p50 < p10-0.2 {
		t.Errorf("precision should not collapse as rho grows: p50=%v p10=%v", p50, p10)
	}
	if p10 < 0.3 {
		t.Errorf("rho=0.1 precision suspiciously low: %v", p10)
	}
}
