package search

import (
	"strings"
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/index"
)

// buildIMDB builds a small SynthIMDB index shared by the integration tests.
func buildIMDB(t testing.TB) *index.Index {
	t.Helper()
	g := dataset.SynthIMDB(dataset.IMDBConfig{Movies: 400, Seed: 9})
	ix, err := index.Build(g, index.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestIMDBActorMovies: the paper's "Mel Gibson movies" intent. The top
// pattern for "gibson movie" must be rooted at Movie and route "gibson"
// through a person edge, so the table lists movies as rows.
func TestIMDBActorMovies(t *testing.T) {
	ix := buildIMDB(t)
	res := PETopK(ix, "gibson movie", Options{K: 5})
	if len(res.Patterns) == 0 {
		t.Fatalf("no answers")
	}
	g := ix.Graph()
	pt := ix.PatternTable()
	top := res.Patterns[0]
	if got := g.TypeName(top.Pattern.RootType(pt)); got != "Movie" {
		t.Errorf("top pattern rooted at %s, want Movie", got)
	}
	rendered := top.Pattern.Render(g, pt, res.Stats.Surfaces)
	if !strings.Contains(rendered, "(Person)") {
		t.Errorf("gibson should match through a Person path:\n%s", rendered)
	}
	// The aggregated table has one row per matching movie-person pair.
	if top.Agg.Count < 2 {
		t.Errorf("expected multiple gibson movies, got %d", top.Agg.Count)
	}
	tab := core.ComposeTable(g, pt, top.Pattern, top.Trees)
	if len(tab.Rows) != top.Agg.Count {
		t.Errorf("table rows %d != tree count %d", len(tab.Rows), top.Agg.Count)
	}
	for _, row := range tab.Rows {
		hasGibson := false
		for _, cell := range row {
			if strings.Contains(strings.ToLower(cell), "gibson") {
				hasGibson = true
			}
		}
		if !hasGibson {
			t.Errorf("row lacks the keyword entity: %v", row)
		}
	}
}

// TestIMDBGenreCompany: a 3-keyword join across two branches (genre and
// production company under the same movie root).
func TestIMDBGenreCompany(t *testing.T) {
	ix := buildIMDB(t)
	res := LETopK(ix, "action movie paramount", Options{K: 10})
	if len(res.Patterns) == 0 {
		t.Skip("seeded data has no action/paramount movie (rare)")
	}
	g := ix.Graph()
	pt := ix.PatternTable()
	for _, rp := range res.Patterns {
		if rp.Pattern.Height(pt) > 3 {
			t.Errorf("pattern higher than d=3")
		}
		for _, st := range rp.Trees {
			if len(st.Paths) != 3 {
				t.Errorf("want 3 keyword paths, got %d", len(st.Paths))
			}
		}
	}
	top := res.Patterns[0]
	rendered := top.Pattern.Render(g, pt, res.Stats.Surfaces)
	if !strings.Contains(rendered, "(Genre)") || !strings.Contains(rendered, "(Company)") {
		t.Errorf("expected genre+company branches:\n%s", rendered)
	}
}

// TestIMDBAttributeKeyword: "starring" only occurs as an attribute type,
// so its paths must be edge matches ending at the starring edge.
func TestIMDBAttributeKeyword(t *testing.T) {
	ix := buildIMDB(t)
	res := PETopK(ix, "starring comedy", Options{K: 3})
	if len(res.Patterns) == 0 {
		t.Fatalf("no answers")
	}
	pt := ix.PatternTable()
	found := false
	for _, rp := range res.Patterns {
		for i, surf := range res.Stats.Surfaces {
			if surf != "starring" {
				continue
			}
			if pt.Get(rp.Pattern.Paths[i]).EdgeEnd {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("'starring' should match as an edge-end pattern")
	}
}

// TestIMDBDeepPattern: "character movie" needs the 3-node chain
// Movie -> Person -> Character, the longest path the schema allows.
func TestIMDBDeepPattern(t *testing.T) {
	ix := buildIMDB(t)
	res := PETopK(ix, "character movie", Options{K: 20, SkipTrees: true})
	if len(res.Patterns) == 0 {
		t.Fatalf("no answers")
	}
	g := ix.Graph()
	pt := ix.PatternTable()
	foundDeep := false
	for _, rp := range res.Patterns {
		r := rp.Pattern.Render(g, pt, res.Stats.Surfaces)
		if strings.Contains(r, "(Movie) (starring) (Person) (role) (Character)") ||
			strings.Contains(r, "(Person) (role) (Character)") {
			foundDeep = true
		}
	}
	if !foundDeep {
		t.Errorf("no Movie->Person->Character pattern found among %d patterns", len(res.Patterns))
	}
}

// TestWikiWorkloadEndToEnd: every answerable workload query must give
// identical pattern sets under both indexed algorithms — the equivalence
// property on realistic (not adversarial) data.
func TestWikiWorkloadEndToEnd(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 1200, Types: 30, Seed: 5})
	ix, err := index.Build(g, index.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.Workload(g, dataset.WorkloadConfig{PerM: 3, MaxM: 5, Seed: 5})
	answered := 0
	for _, q := range qs {
		pe := PETopK(ix, q.Text, Options{K: 30, SkipTrees: true})
		le := LETopK(ix, q.Text, Options{K: 30, SkipTrees: true})
		if len(pe.Patterns) != len(le.Patterns) {
			t.Fatalf("q=%q: PE %d vs LE %d patterns", q.Text, len(pe.Patterns), len(le.Patterns))
		}
		for i := range pe.Patterns {
			if pe.Patterns[i].Score != le.Patterns[i].Score {
				t.Fatalf("q=%q rank %d: scores differ", q.Text, i)
			}
		}
		if len(pe.Patterns) > 0 {
			answered++
		}
	}
	if answered == 0 {
		t.Fatalf("workload entirely unanswerable")
	}
}
