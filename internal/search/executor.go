package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/text"
	"sync"
)

// This file is the streaming query executor: every query — whichever
// algorithm answers it — runs the same four-stage pipeline
//
//	prepare    resolve keywords, fetch the per-keyword posting metadata
//	           (root lists, root-type lists) and, when a cost decision is
//	           needed, the per-type hit statistics the planner consumes.
//	           The only stage that differs per algorithm is how much of
//	           this metadata it needs; cancellation is honored between
//	           posting lookups.
//	enumerate  the algorithm's fused, lazy enumerate→aggregate walk:
//	           PATTERNENUM's combination tree with the running k-th-score
//	           bound pushed into it, LINEARENUM-TOPK's per-root expansion
//	           with the keyword predicate pushed below pattern expansion
//	           (both sharded across the worker pool; each enumeration unit
//	           is scored and offered into a per-worker heap the moment it
//	           is produced — see stream.go, and Options.Staged for the
//	           non-pruning ablation baseline).
//	aggregate  fold the per-worker accumulators — local top-k heaps and
//	           stat counters — into the global queue (the cross-worker
//	           half of the canonical two-level root fold; the in-shard
//	           half runs inside enumerate, unchanged).
//	rank       extract the ranked patterns and materialize their subtrees.
//
// The planner (ChoosePlan) sits between prepare and enumerate: given the
// prepare-stage statistics it resolves AlgoAuto to PATTERNENUM or
// LINEARENUM-TOPK per query. Resolution is pure — a deterministic function
// of (PlanStats, Options) — and execution after resolution is exactly the
// explicit algorithm's, so an Auto answer is bit-identical to the answer
// of the algorithm the plan names.

// Algo identifies an execution strategy for the staged executor.
type Algo int

// Execution strategies. The zero value is PATTERNENUM, matching the
// engine-level default.
const (
	// AlgoPE is PATTERNENUM (Section 4.1).
	AlgoPE Algo = iota
	// AlgoLE is LINEARENUM-TOPK (Section 4.2).
	AlgoLE
	// AlgoBaseline is the enumeration–aggregation baseline (Section 2.3);
	// executing it requires an Executor with a BaselineIndex.
	AlgoBaseline
	// AlgoAuto defers the PE/LE choice to the cost-based planner.
	AlgoAuto
)

func (a Algo) String() string {
	switch a {
	case AlgoPE:
		return "PETopK"
	case AlgoLE:
		return "LETopK"
	case AlgoBaseline:
		return "Baseline"
	case AlgoAuto:
		return "Auto"
	}
	return "unknown"
}

// PlanStats are the prepare-stage statistics the planner consumes. They
// are mergeable across disjoint root partitions (Merge), which is how the
// sharded engine decides once from per-shard probes.
type PlanStats struct {
	// CandidateRoots is |∩_i Roots(wi)|, or -1 when the stage did not
	// compute the intersection (explicit PATTERNENUM never needs it).
	CandidateRoots int
	// RootTypes is the number of distinct root types under which every
	// keyword has at least one path pattern.
	RootTypes int
	// PatternSpace is Σ_C Π_i |PatternsOfType(wi, C)| — the number of
	// pattern combinations PATTERNENUM enumerates (before pruning), its
	// cost driver. Saturates at MaxInt64.
	PatternSpace int64
	// Frontier is NR = Σ_r Π_i |Paths(wi, r)| — the total valid-subtree
	// count, LINEARENUM's cost driver. Saturates at MaxInt64.
	Frontier int64
	// PostingRoots is the per-keyword root-posting length |Roots(wi)|.
	PostingRoots []int
}

// Merge folds another partition's statistics in: counts add (root
// partitions are disjoint, so sums are exact for CandidateRoots, Frontier
// and PostingRoots), RootTypes takes the max (a type common to every
// keyword globally need not be common within one shard, so the max is a
// lower bound), and a -1 CandidateRoots poisons the sum.
func (s *PlanStats) Merge(o PlanStats) {
	if s.CandidateRoots < 0 || o.CandidateRoots < 0 {
		s.CandidateRoots = -1
	} else {
		s.CandidateRoots += o.CandidateRoots
	}
	if o.RootTypes > s.RootTypes {
		s.RootTypes = o.RootTypes
	}
	s.PatternSpace = satAdd(s.PatternSpace, o.PatternSpace)
	s.Frontier = satAdd(s.Frontier, o.Frontier)
	// Sum PostingRoots positionally over the longer of the two vectors: a
	// shard that resolved fewer keywords (or probed first) must not
	// silently truncate the other partition's posting counts.
	if len(o.PostingRoots) > len(s.PostingRoots) {
		grown := make([]int, len(o.PostingRoots))
		copy(grown, s.PostingRoots)
		s.PostingRoots = grown
	}
	for i, n := range o.PostingRoots {
		s.PostingRoots[i] += n
	}
}

// satAdd adds non-negative int64s saturating at MaxInt64.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// Plan records how a query executed (or would execute): the resolved
// algorithm, whether the planner chose it, why, and the statistics the
// decision was based on.
type Plan struct {
	// Algo is the resolved strategy — never AlgoAuto.
	Algo Algo
	// Auto reports that the planner (not the caller) picked Algo.
	Auto bool
	// Reason is the planner's one-line cost rationale (empty for explicit
	// algorithm requests).
	Reason string
	// Stats are the prepare-stage statistics the plan was based on.
	Stats PlanStats
}

// StageTimings instruments the pipeline, one wall-clock duration per
// stage. Enumerate covers the fused enumerate→aggregate walk (scoring and
// per-worker top-k maintenance happen inside it — there is no separate
// aggregation pass over materialized candidates); Aggregate covers only
// the final cross-worker fold. Rank includes subtree materialization (the
// paper's table composition) since it only runs for the ranked winners.
type StageTimings struct {
	Prepare   time.Duration
	Enumerate time.Duration
	Aggregate time.Duration
	Rank      time.Duration
}

// DefaultAutoBias is the planner's default PE-preference multiplier; see
// Options.AutoBias.
const DefaultAutoBias = 1.0

// ChoosePlan resolves algo against prepare-stage statistics. Explicit
// algorithms pass through untouched; AlgoAuto is resolved by the cost
// model:
//
//	cost(PE) ≈ PatternSpace            — one root-list intersection per
//	                                     enumerated combination, empty or
//	                                     not (PE's worst case, Section 4.1)
//	cost(LE) ≈ CandidateRoots          — one expansion per candidate root
//	         + Frontier/2              — the per-subtree aggregation-
//	                                     dictionary overhead PE avoids
//
// (both algorithms score every valid subtree once, so the shared Frontier
// term cancels; only LE's dictionary constant survives). PE is chosen iff
// cost(PE) <= bias·cost(LE). The decision is a pure function of
// (PlanStats, Options), so any engine holding the same merged statistics
// — in particular every shard of a scatter — resolves identically.
//
// The comparison is saturation-safe: cost terms saturate at MaxInt64
// (never wrap negative — an overflowed LE cost would otherwise force
// LINEARENUM on precisely the explosive queries PE exists for), and the
// default bias compares costs in integer space, where float64 would
// collapse distinct values near 2^63 onto the same rounding bucket and
// flip decisions between near-saturated plans.
func ChoosePlan(algo Algo, st PlanStats, o Options) Plan {
	if algo != AlgoAuto {
		return Plan{Algo: algo, Stats: st}
	}
	bias := o.AutoBias
	if bias <= 0 {
		bias = DefaultAutoBias
	}
	cand := int64(0)
	if st.CandidateRoots > 0 {
		cand = int64(st.CandidateRoots)
	}
	peCost := st.PatternSpace
	leCost := satAdd(satAdd(cand, st.Frontier/2), 1)
	p := Plan{Auto: true, Stats: st}
	var pePreferred bool
	if bias == 1 {
		pePreferred = peCost <= leCost
	} else {
		pePreferred = float64(peCost) <= bias*float64(leCost)
	}
	if pePreferred {
		p.Algo = AlgoPE
		p.Reason = fmt.Sprintf("pattern space %d <= %.3g x linear cost %d (roots %d + frontier %d / 2): PATTERNENUM",
			peCost, bias, leCost, cand, st.Frontier)
	} else {
		p.Algo = AlgoLE
		p.Reason = fmt.Sprintf("pattern space %d > %.3g x linear cost %d (roots %d + frontier %d / 2): LINEARENUM-TOPK",
			peCost, bias, leCost, cand, st.Frontier)
	}
	return p
}

// prepNeed flags what the prepare stage must compute beyond keyword
// resolution and the per-keyword root postings.
type prepNeed int

const (
	// needTypes: the common-root-type intersection (PATTERNENUM line 2).
	needTypes prepNeed = 1 << iota
	// needRoots: the candidate-root intersection partitioned by type
	// (LINEARENUM lines 1-3).
	needRoots
	// needCost: the planner's pattern-space and frontier estimates
	// (implies needTypes and needRoots).
	needCost
)

// prepared is the prepare stage's output: everything the enumerate stage
// reads, plus the planner's statistics.
type prepared struct {
	words    []text.WordID
	surfaces []string
	// ok reports the query is answerable: every keyword resolved and has
	// a nonempty root posting. When false nothing else is populated.
	ok bool

	rootLists  [][]kg.NodeID // per keyword, from the root-first index
	rootTypes  []kg.TypeID   // needTypes: common root types
	candidates []kg.NodeID   // needRoots: ∩ rootLists
	byType     map[kg.TypeID][]kg.NodeID
	types      []kg.TypeID // needRoots: sorted keys of byType

	stats PlanStats

	// peTabs memoizes PATTERNENUM's serial prelude per pruning mode
	// (index 1 = pruneOK). The tables depend only on this prepare and
	// the immutable index, so a retained Prepared computes them once
	// and repeat executions go straight to the combination walk.
	peOnce [2]sync.Once
	peTabs [2]*peTables

	// leNR memoizes LINEARENUM's per-type subtree count NR (Algorithm 3
	// line 4) — like peTabs a pure function of the prepare and the
	// index. One Once per type keeps the fresh path's per-type
	// parallelism: each worker computes only the types it shards.
	leNROnce []sync.Once
	leNR     []int64
}

// typeNR returns the memoized subtree count for prep.types[ti],
// computing it on first use.
func (p *prepared) typeNR(ix *index.Index, ti int) int64 {
	p.leNROnce[ti].Do(func() {
		p.leNR[ti] = subtreeCount(ix, p.words, p.byType[p.types[ti]])
	})
	return p.leNR[ti]
}

// peTables returns the memoized PATTERNENUM prelude tables for the given
// pruning mode, computing them on first use. Safe for concurrent
// executions of one Prepared: the walk only reads the tables.
func (p *prepared) peTables(ix *index.Index, pruneOK bool) *peTables {
	idx := 0
	if pruneOK {
		idx = 1
	}
	p.peOnce[idx].Do(func() { p.peTabs[idx] = pePrelude(ix, p, pruneOK) })
	return p.peTabs[idx]
}

// prepare runs the shared prepare stage: posting lookups and statistics,
// honoring ctx between lookups (a canceled request stops before any
// enumeration work starts).
func prepare(ctx context.Context, ix *index.Index, words []text.WordID, surfaces []string, need prepNeed) (*prepared, error) {
	if need&needCost != 0 {
		need |= needTypes | needRoots
	}
	p := &prepared{words: words, surfaces: surfaces}
	// CandidateRoots semantics: 0 when the set is provably empty (an
	// unresolvable keyword), -1 when the plan did not need the
	// intersection (explicit PATTERNENUM on an answerable query).
	p.stats.CandidateRoots = 0
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(words) == 0 {
		return p, nil
	}
	p.ok = true
	p.rootLists = make([][]kg.NodeID, len(words))
	p.stats.PostingRoots = make([]int, len(words))
	for i, w := range words {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if w == text.NoWord {
			p.ok = false
			return p, nil
		}
		p.rootLists[i] = ix.Roots(w)
		p.stats.PostingRoots[i] = len(p.rootLists[i])
		if len(p.rootLists[i]) == 0 {
			p.ok = false
			return p, nil
		}
	}
	p.stats.CandidateRoots = -1

	if need&needTypes != 0 {
		typeLists := make([][]kg.TypeID, len(words))
		for i, w := range words {
			typeLists[i] = ix.RootTypes(w)
		}
		p.rootTypes = intersectTypes(typeLists)
		p.stats.RootTypes = len(p.rootTypes)
	}
	if need&needRoots != 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p.candidates = intersectSorted(p.rootLists)
		p.stats.CandidateRoots = len(p.candidates)
		p.byType = map[kg.TypeID][]kg.NodeID{}
		for _, r := range p.candidates {
			t := ix.Graph().Type(r)
			p.byType[t] = append(p.byType[t], r)
		}
		p.types = make([]kg.TypeID, 0, len(p.byType))
		for t := range p.byType {
			p.types = append(p.types, t)
		}
		sortTypes(p.types)
		p.leNROnce = make([]sync.Once, len(p.types))
		p.leNR = make([]int64, len(p.types))
	}
	if need&needCost != 0 {
		pc := &pollCancel{ctx: ctx}
		p.stats.Frontier = subtreeCountPoll(ix, words, p.candidates, pc)
		for _, c := range p.rootTypes {
			prod := int64(1)
			for _, w := range words {
				n := int64(len(ix.PatternsOfType(w, c)))
				if n == 0 || prod > math.MaxInt64/n {
					prod = math.MaxInt64
					break
				}
				prod *= n
			}
			p.stats.PatternSpace = satAdd(p.stats.PatternSpace, prod)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// needFor maps a (possibly unresolved) algorithm to its prepare needs.
func needFor(algo Algo) prepNeed {
	switch algo {
	case AlgoPE:
		return needTypes
	case AlgoLE:
		return needRoots
	default:
		return needCost
	}
}

// PlanProbe runs only the prepare stage and the planner over one index:
// the statistics and resolved plan for a query, without executing it. The
// shard layer scatters probes and merges their PlanStats; the facade's
// Plan API and the serve layer's cache keying use it directly.
func PlanProbe(ctx context.Context, ix *index.Index, query string, opts Options) (PlanStats, error) {
	words, surfaces := ResolveQuery(ix, query)
	prep, err := prepare(ctx, ix, words, surfaces, needCost)
	if err != nil {
		return PlanStats{}, err
	}
	return prep.stats, nil
}

// Execute runs one query through the staged pipeline on a path index.
// algo may be AlgoAuto (resolved by the planner after prepare) but not
// AlgoBaseline — the baseline needs its own index; use Executor for a
// surface that dispatches all three.
func Execute(ctx context.Context, ix *index.Index, query string, algo Algo, opts Options) (*Result, error) {
	words, surfaces := ResolveQuery(ix, query)
	return ExecuteWords(ctx, ix, words, surfaces, algo, opts)
}

// ExecuteWords is Execute on pre-resolved keywords.
func ExecuteWords(ctx context.Context, ix *index.Index, words []text.WordID, surfaces []string, algo Algo, opts Options) (*Result, error) {
	start := time.Now()
	o := opts.withDefaults()
	if algo == AlgoBaseline {
		return nil, fmt.Errorf("search: the baseline needs a BaselineIndex; use Executor")
	}

	// Stage 1: prepare (posting lookups + statistics).
	prep, err := prepare(ctx, ix, words, surfaces, needFor(algo))
	if err != nil {
		return nil, err
	}
	return runStages(ctx, ix, prep, algo, o, start)
}

// runStages runs stages 2-4 of the pipeline over prepare-stage output:
// resolve the plan, enumerate, fold the per-worker accumulators, rank.
// The prepare output may be freshly computed (ExecuteWords) or retained
// from an earlier request (ExecutePrepared) — enumeration only reads it,
// so one prepared may back any number of concurrent executions. start
// anchors Stages.Prepare and Elapsed: for a retained prepared it is the
// execution start, so Prepare reports (approximately) zero.
func runStages(ctx context.Context, ix *index.Index, prep *prepared, algo Algo, o Options, start time.Time) (*Result, error) {
	plan := ChoosePlan(algo, prep.stats, o)
	stats := QueryStats{Surfaces: prep.surfaces, Words: prep.words}
	stats.CandidateRoots = prep.stats.CandidateRoots
	stats.Stages.Prepare = time.Since(start)

	// Stage 2: enumerate (the resolved algorithm's frontier walk, sharded
	// across the worker pool with scoring fused in).
	t1 := time.Now()
	top := core.NewTopK[RankedPattern](o.K)
	var ws []workerState[RankedPattern]
	var err error
	if prep.ok {
		switch plan.Algo {
		case AlgoPE:
			ws, err = peEnumerate(ctx, ix, prep, o)
		case AlgoLE:
			ws, err = leEnumerate(ctx, ix, prep, o)
		default:
			return nil, fmt.Errorf("search: plan resolved to unexecutable algorithm %v", plan.Algo)
		}
	}
	stats.Stages.Enumerate = time.Since(t1)

	// Stage 3: aggregate (fold per-worker heaps and counters into the
	// global queue). The runShards error is checked after the fold so a
	// canceled query still pays for no extra work, matching the previous
	// per-algorithm control flow.
	t2 := time.Now()
	mergeWorkerStates(ws, top, &stats)
	stats.Stages.Aggregate = time.Since(t2)
	if err != nil {
		return nil, err
	}

	// Stage 4: rank (extract winners, materialize their subtrees).
	t3 := time.Now()
	patterns := top.Results()
	if !o.SkipTrees {
		if err := materializeAll(ctx, ix, prep.words, patterns, o); err != nil {
			return nil, err
		}
	}
	stats.Stages.Rank = time.Since(t3)
	stats.Elapsed = time.Since(start)
	return &Result{Patterns: patterns, Stats: stats, Plan: plan}, nil
}

// Executor is the front door of the staged pipeline when all three
// strategies must be dispatchable: a path index plus (optionally) the
// baseline's keyword-match index.
type Executor struct {
	Ix *index.Index
	// BL enables AlgoBaseline; nil executors reject it. The planner never
	// resolves Auto to the baseline (it exists for comparison, not
	// production), so Auto works on executors without one.
	BL *BaselineIndex
}

// Search runs one query through the staged pipeline, dispatching any
// strategy including AlgoBaseline and AlgoAuto.
func (ex Executor) Search(ctx context.Context, query string, algo Algo, opts Options) (*Result, error) {
	if algo != AlgoBaseline {
		return Execute(ctx, ex.Ix, query, algo, opts)
	}
	if ex.BL == nil {
		return nil, fmt.Errorf("search: executor has no baseline index")
	}
	res, err := ex.BL.SearchCtx(ctx, query, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Patterns: res.Patterns, Stats: res.Stats, Plan: res.Plan, Table: res.Table}, nil
}

// sortTypes sorts TypeIDs ascending (the deterministic per-type iteration
// order every aggregation site relies on).
func sortTypes(ts []kg.TypeID) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}
