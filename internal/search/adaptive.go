package search

import (
	"sync"
	"time"
)

// AdaptiveBias closes the planner's feedback loop: it folds observed
// enumerate-stage timings, per resolved algorithm, back into the
// effective AutoBias. The cost model compares
//
//	cost(PE) = PatternSpace        against
//	cost(LE) = CandidateRoots + Frontier/2 + 1
//
// in abstract units; the hand-tuned bias is the exchange rate between
// them. AdaptiveBias learns that rate from the workload itself: each
// executed query contributes its enumerate nanoseconds divided by its
// plan's cost units to a per-algorithm EWMA, and the effective bias is
// the base scaled by the observed LE/PE per-unit cost ratio — if LE
// units are measured to cost 2x what PE units cost on this corpus, PE
// should win up to twice the static crossover. The scale factor is
// clamped to [1/8, 8] so a burst of degenerate observations cannot pin
// the planner to one algorithm forever, and until BOTH algorithms have
// been observed the base bias is returned unchanged.
//
// The bias steers only the PE/LE choice; answers are bit-identical under
// either algorithm (the Auto-equivalence property), so any learned value
// is answer-preserving by construction.
type AdaptiveBias struct {
	mu    sync.Mutex
	base  float64
	alpha float64
	pe    ewma
	le    ewma
}

// ewma is an exponentially-weighted moving average seeded by its first
// observation.
type ewma struct {
	v float64
	n uint64
}

func (e *ewma) observe(x, alpha float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v = alpha*x + (1-alpha)*e.v
	}
	e.n++
}

// AdaptiveBiasStats snapshots the accumulator for observability.
type AdaptiveBiasStats struct {
	// Base is the static bias the learned scale applies to.
	Base float64
	// Effective is the current learned bias (== Base until both
	// algorithms have been observed).
	Effective float64
	// PEObservations / LEObservations count folded executions.
	PEObservations uint64
	LEObservations uint64
	// PENsPerUnit / LENsPerUnit are the current EWMA estimates of
	// enumerate nanoseconds per cost-model unit.
	PENsPerUnit float64
	LENsPerUnit float64
}

// adaptiveAlpha is the EWMA smoothing factor: recent executions dominate
// after a few tens of observations, but one outlier moves the estimate
// at most 20%.
const adaptiveAlpha = 0.2

// adaptiveClamp bounds the learned scale factor applied to the base.
const adaptiveClamp = 8.0

// NewAdaptiveBias returns an accumulator around the given base bias (a
// non-positive base gets DefaultAutoBias, matching ChoosePlan).
func NewAdaptiveBias(base float64) *AdaptiveBias {
	if base <= 0 {
		base = DefaultAutoBias
	}
	return &AdaptiveBias{base: base, alpha: adaptiveAlpha}
}

// Observe folds one executed query's enumerate timing into the per-unit
// estimate of the algorithm that ran. Queries that did no enumeration
// work (zero duration or an unanswerable shape) are ignored.
func (a *AdaptiveBias) Observe(algo Algo, st PlanStats, enumerate time.Duration) {
	ns := float64(enumerate.Nanoseconds())
	if ns <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch algo {
	case AlgoPE:
		units := float64(st.PatternSpace)
		if units < 1 {
			units = 1
		}
		a.pe.observe(ns/units, a.alpha)
	case AlgoLE:
		cand := 0
		if st.CandidateRoots > 0 {
			cand = st.CandidateRoots
		}
		units := float64(cand) + float64(st.Frontier)/2 + 1
		a.le.observe(ns/units, a.alpha)
	}
}

// Effective returns the current learned bias. It is always positive, so
// it can be passed straight into Options.AutoBias (where 0 means "use
// the default").
func (a *AdaptiveBias) Effective() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.effectiveLocked()
}

func (a *AdaptiveBias) effectiveLocked() float64 {
	if a.pe.n == 0 || a.le.n == 0 || a.pe.v <= 0 {
		return a.base
	}
	scale := a.le.v / a.pe.v
	if scale > adaptiveClamp {
		scale = adaptiveClamp
	} else if scale < 1/adaptiveClamp {
		scale = 1 / adaptiveClamp
	}
	return a.base * scale
}

// Stats snapshots the accumulator.
func (a *AdaptiveBias) Stats() AdaptiveBiasStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdaptiveBiasStats{
		Base:           a.base,
		Effective:      a.effectiveLocked(),
		PEObservations: a.pe.n,
		LEObservations: a.le.n,
		PENsPerUnit:    a.pe.v,
		LENsPerUnit:    a.le.v,
	}
}
