package search

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// equalResults asserts that two query results are identical: same ranked
// patterns (content, not interned IDs), bit-identical scores and
// aggregates, same materialized trees, and the same work counters.
func equalResults(t *testing.T, label string, ix *index.Index, serial, parallel *Result) {
	t.Helper()
	if len(serial.Patterns) != len(parallel.Patterns) {
		t.Fatalf("%s: serial returned %d patterns, parallel %d", label, len(serial.Patterns), len(parallel.Patterns))
	}
	pt := ix.PatternTable()
	for i := range serial.Patterns {
		sp, pp := serial.Patterns[i], parallel.Patterns[i]
		if sp.Score != pp.Score {
			t.Errorf("%s: rank %d score %v != %v", label, i, sp.Score, pp.Score)
		}
		if sp.Pattern.ContentKey(pt) != pp.Pattern.ContentKey(pt) {
			t.Errorf("%s: rank %d pattern content differs", label, i)
		}
		if sp.Agg != pp.Agg {
			t.Errorf("%s: rank %d aggregate %+v != %+v", label, i, sp.Agg, pp.Agg)
		}
		if !reflect.DeepEqual(sp.Trees, pp.Trees) {
			t.Errorf("%s: rank %d materialized trees differ", label, i)
		}
	}
	ss, ps := serial.Stats, parallel.Stats
	if ss.CandidateRoots != ps.CandidateRoots || ss.SampledRoots != ps.SampledRoots ||
		ss.PatternsFound != ps.PatternsFound || ss.TreesFound != ps.TreesFound ||
		ss.EmptyChecked != ps.EmptyChecked {
		t.Errorf("%s: stats diverge: serial %+v parallel %+v", label, ss, ps)
	}
}

// equalBaselineResults compares baseline runs at the content level (the
// baseline interns patterns online, so IDs differ across runs by design).
func equalBaselineResults(t *testing.T, label string, serial, parallel *BaselineResult) {
	t.Helper()
	if len(serial.Patterns) != len(parallel.Patterns) {
		t.Fatalf("%s: serial returned %d patterns, parallel %d", label, len(serial.Patterns), len(parallel.Patterns))
	}
	for i := range serial.Patterns {
		sp, pp := serial.Patterns[i], parallel.Patterns[i]
		if sp.Score != pp.Score {
			t.Errorf("%s: rank %d score %v != %v", label, i, sp.Score, pp.Score)
		}
		if sp.Pattern.ContentKey(serial.Table) != pp.Pattern.ContentKey(parallel.Table) {
			t.Errorf("%s: rank %d pattern content differs", label, i)
		}
		if sp.Agg != pp.Agg {
			t.Errorf("%s: rank %d aggregate %+v != %+v", label, i, sp.Agg, pp.Agg)
		}
		if len(sp.Trees) != len(pp.Trees) {
			t.Errorf("%s: rank %d tree count %d != %d", label, i, len(sp.Trees), len(pp.Trees))
		}
	}
	if serial.Stats.CandidateRoots != parallel.Stats.CandidateRoots ||
		serial.Stats.PatternsFound != parallel.Stats.PatternsFound ||
		serial.Stats.TreesFound != parallel.Stats.TreesFound {
		t.Errorf("%s: stats diverge: serial %+v parallel %+v", label, serial.Stats, parallel.Stats)
	}
}

// synthCases builds the reduced-scale synthetic IMDB and Wiki datasets the
// paper evaluates on, with a workload spanning 1..4 keywords.
func synthCases(t *testing.T) []struct {
	name    string
	g       *kg.Graph
	queries []string
} {
	t.Helper()
	wiki := dataset.SynthWiki(dataset.WikiConfig{Entities: 1500, Types: 40})
	imdb := dataset.SynthIMDB(dataset.IMDBConfig{Movies: 400})
	cases := []struct {
		name    string
		g       *kg.Graph
		queries []string
	}{
		{name: "wiki", g: wiki},
		{name: "imdb", g: imdb},
	}
	for i := range cases {
		for _, q := range dataset.Workload(cases[i].g, dataset.WorkloadConfig{PerM: 3, MaxM: 4}) {
			cases[i].queries = append(cases[i].queries, q.Text)
		}
	}
	return cases
}

// TestParallelEquivalenceExact drives PATTERNENUM and exact
// LINEARENUM-TOPK over synthetic IMDB and Wiki workloads and asserts the
// parallel path (Workers=4 and GOMAXPROCS) reproduces the serial path
// (Workers=1) exactly — scores bit-identical, not approximately equal.
func TestParallelEquivalenceExact(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 0} {
			for _, q := range tc.queries {
				serialPE := PETopK(ix, q, Options{K: 20, Workers: 1})
				parallelPE := PETopK(ix, q, Options{K: 20, Workers: workers})
				equalResults(t, fmt.Sprintf("%s/PE/w=%d/%q", tc.name, workers, q), ix, serialPE, parallelPE)

				serialLE := LETopK(ix, q, Options{K: 20, Workers: 1})
				parallelLE := LETopK(ix, q, Options{K: 20, Workers: workers})
				equalResults(t, fmt.Sprintf("%s/LE/w=%d/%q", tc.name, workers, q), ix, serialLE, parallelLE)
			}
		}
	}
}

// TestParallelEquivalenceSampling repeats the check for sampled
// LINEARENUM-TOPK: sampling is seeded per root type, so the sampled root
// set — and therefore every estimated and re-scored pattern — must not
// depend on worker scheduling.
func TestParallelEquivalenceSampling(t *testing.T) {
	for _, tc := range synthCases(t) {
		ix, err := index.Build(tc.g, index.Options{D: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range tc.queries {
			opts := Options{K: 10, Lambda: 4, Rho: 0.5, Seed: 7}
			opts.Workers = 1
			serial := LETopK(ix, q, opts)
			opts.Workers = 4
			parallel := LETopK(ix, q, opts)
			equalResults(t, fmt.Sprintf("%s/LE-sampled/%q", tc.name, q), ix, serial, parallel)
		}
	}
}

// TestParallelEquivalenceBaseline covers the third algorithm. The baseline
// is orders slower, so it runs on the Figure 1 graph plus a slice of the
// IMDB workload.
func TestParallelEquivalenceBaseline(t *testing.T) {
	ixg, _ := buildFig1Index(t, 3)
	cases := []struct {
		name    string
		g       *kg.Graph
		queries []string
	}{
		{name: "fig1", g: ixg.Graph(), queries: []string{fig1Query, "database software", "company revenue"}},
	}
	imdb := dataset.SynthIMDB(dataset.IMDBConfig{Movies: 120})
	qs := dataset.Workload(imdb, dataset.WorkloadConfig{PerM: 2, MaxM: 3})
	tc := struct {
		name    string
		g       *kg.Graph
		queries []string
	}{name: "imdb", g: imdb}
	for _, q := range qs {
		tc.queries = append(tc.queries, q.Text)
	}
	cases = append(cases, tc)

	for _, c := range cases {
		bl, err := NewBaseline(c.g, BaselineOptions{D: 3, UniformPR: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range c.queries {
			serial := bl.Search(q, Options{K: 10, Workers: 1})
			parallel := bl.Search(q, Options{K: 10, Workers: 4})
			equalBaselineResults(t, fmt.Sprintf("%s/baseline/%q", c.name, q), serial, parallel)
		}
	}
}

// TestParallelCancellation verifies a canceled context aborts the query
// with the context's error instead of returning a partial result.
func TestParallelCancellation(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := PETopKCtx(ctx, ix, fig1Query, Options{K: 10}); err == nil || res != nil {
		t.Errorf("PETopKCtx on canceled ctx: res=%v err=%v, want nil result and error", res, err)
	}
	if res, err := LETopKCtx(ctx, ix, fig1Query, Options{K: 10}); err == nil || res != nil {
		t.Errorf("LETopKCtx on canceled ctx: res=%v err=%v, want nil result and error", res, err)
	}
	bl, err := NewBaseline(ix.Graph(), BaselineOptions{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := bl.SearchCtx(ctx, fig1Query, Options{K: 10}); err == nil || res != nil {
		t.Errorf("SearchCtx on canceled ctx: res=%v err=%v, want nil result and error", res, err)
	}
}

// TestPollCancel pins the in-shard cancellation probe: it observes a
// canceled context within one poll stride, stays canceled, and a nil
// poller (reference/test callers) never trips.
func TestPollCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pc := &pollCancel{ctx: ctx}
	for i := 0; i < 2000; i++ {
		if pc.hit() {
			t.Fatal("hit before cancellation")
		}
	}
	cancel()
	hit := false
	for i := 0; i < 1024 && !hit; i++ {
		hit = pc.hit()
	}
	if !hit {
		t.Fatal("pollCancel never observed the canceled context")
	}
	if !pc.hit() {
		t.Fatal("cancellation must be sticky")
	}
	var nilPC *pollCancel
	if nilPC.hit() {
		t.Fatal("nil poller must never hit")
	}
}

// TestResolveWorkers pins the Workers contract: non-positive means
// GOMAXPROCS, anything else passes through.
func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(1); got != 1 {
		t.Errorf("resolveWorkers(1) = %d", got)
	}
	if got := resolveWorkers(7); got != 7 {
		t.Errorf("resolveWorkers(7) = %d", got)
	}
	if got := resolveWorkers(0); got < 1 {
		t.Errorf("resolveWorkers(0) = %d, want >= 1", got)
	}
	if got := resolveWorkers(-3); got < 1 {
		t.Errorf("resolveWorkers(-3) = %d, want >= 1", got)
	}
}
