package search

import (
	"sort"
	"testing"

	"kbtable/internal/text"
)

func TestTopTreesRanksIndividuals(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	trees, stats := TopTrees(ix, fig1Query, 5, Options{})
	if len(trees) == 0 {
		t.Fatalf("no trees")
	}
	// Scores descending.
	for i := 1; i < len(trees); i++ {
		if trees[i].Score > trees[i-1].Score {
			t.Errorf("trees not sorted at %d", i)
		}
	}
	// Total enumerated must match CountAll.
	_, wantTrees := CountAll(ix, fig1Query)
	if stats.TreesFound != wantTrees {
		t.Errorf("TreesFound = %d, CountAll = %d", stats.TreesFound, wantTrees)
	}
	// Every returned tree's per-path patterns must match its Pattern.
	g := ix.Graph()
	pt := ix.PatternTable()
	for _, rt := range trees {
		for i, p := range rt.Tree.Paths {
			if pt.Intern(p.Pattern(g)) != rt.Pattern.Paths[i] {
				t.Errorf("tree path %d pattern mismatch", i)
			}
		}
		if rt.Score != (Options{}).withDefaults().Scorer.Tree(rt.Tree.Terms) {
			t.Errorf("score mismatch for returned tree")
		}
	}
}

func TestTopTreesBestIsP2Single(t *testing.T) {
	// Individual ranking differs from pattern ranking: T3 (the book tree,
	// score1=7) has per-tree score 10/7 ≈ 1.43 < T1's 1.75, so T1 must be
	// the top individual tree, and every P1/P2 tree must appear in top-3.
	ix, _ := buildFig1Index(t, 3)
	trees, _ := TopTrees(ix, fig1Query, 3, Options{})
	if len(trees) != 3 {
		t.Fatalf("want 3 trees, got %d", len(trees))
	}
	if trees[0].Score < trees[1].Score {
		t.Errorf("ordering broken")
	}
	var scores []float64
	for _, rt := range trees {
		scores = append(scores, rt.Score)
	}
	sort.Float64s(scores)
	if scores[2] != 1.75 {
		t.Errorf("best individual tree should be T1 at 1.75, got %v", scores[2])
	}
}

func TestTopTreesUnknownWord(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	trees, _ := TopTrees(ix, "xyzzy", 5, Options{})
	if len(trees) != 0 {
		t.Errorf("unknown word should yield no trees")
	}
	if ids := wordIDsOf(ix, "xyzzy"); len(ids) != 1 || ids[0] != text.NoWord {
		t.Errorf("resolution should yield NoWord")
	}
}

func TestTopTreesDeterministic(t *testing.T) {
	ix, _ := buildFig1Index(t, 3)
	a, _ := TopTrees(ix, "database software", 10, Options{})
	b, _ := TopTrees(ix, "database software", 10, Options{})
	if len(a) != len(b) {
		t.Fatalf("sizes differ")
	}
	for i := range a {
		if a[i].Score != b[i].Score || a[i].Tree.Root != b[i].Tree.Root {
			t.Errorf("nondeterministic at %d", i)
		}
	}
}
