package search

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// updateSequences is the per-dataset count of randomized update sequences
// the maintenance property is checked over (the PR's acceptance floor is
// 200 per dataset).
const updateSequences = 200

// renderFull snapshots a Result at row-level fidelity: rank order, exact
// score bits, the rendered pattern, and the composed table. Two indexes
// that agree on this for every query are indistinguishable to users.
func renderFull(ix *index.Index, res *Result) []string {
	out := make([]string, 0, len(res.Patterns))
	for _, rp := range res.Patterns {
		var sb strings.Builder
		fmt.Fprintf(&sb, "score=%.17g count=%d\n", rp.Score, rp.Agg.Count)
		sb.WriteString(rp.Pattern.Render(ix.Graph(), ix.PatternTable(), res.Stats.Surfaces))
		sb.WriteByte('\n')
		sb.WriteString(core.ComposeTable(ix.Graph(), ix.PatternTable(), rp.Pattern, rp.Trees).Render(-1))
		out = append(out, sb.String())
	}
	return out
}

// renderBaseline snapshots a BaselineResult at pattern/score/count
// fidelity for cross-algorithm comparison.
func renderBaseline(g *kg.Graph, res *BaselineResult) map[string]renderedPattern {
	out := map[string]renderedPattern{}
	for _, rp := range res.Patterns {
		out[rp.Pattern.Render(g, res.Table, res.Stats.Surfaces)] = renderedPattern{Score: rp.Score, Count: rp.Agg.Count}
	}
	return out
}

// sampleQueries derives a deterministic query workload from the graph's
// own texts, so every query has a fighting chance of answers.
func sampleQueries(g *kg.Graph) []string {
	var words []string
	seen := map[string]bool{}
	for v := 0; v < g.NumNodes() && len(words) < 8; v++ {
		for _, f := range strings.Fields(strings.ToLower(g.Text(kg.NodeID(v)))) {
			if len(f) > 2 && !seen[f] {
				seen[f] = true
				words = append(words, f)
			}
			if len(words) >= 8 {
				break
			}
		}
	}
	qs := make([]string, 0, 5)
	for i := 0; i < len(words) && len(qs) < 3; i++ {
		qs = append(qs, words[i])
	}
	if len(words) >= 4 {
		qs = append(qs, words[0]+" "+words[3])
	}
	if len(words) >= 6 {
		qs = append(qs, words[2]+" "+words[5])
	}
	return qs
}

// randomGraphUpdate stages 1..4 random valid mutations drawn from the
// graph's existing type/attribute vocabulary (ops failing eager validation
// — e.g. picking a literal as an edge source — are skipped).
func randomGraphUpdate(rng *rand.Rand, g *kg.Graph) (*kg.Changed, error) {
	d := kg.NewDelta(g)
	typeName := func() string {
		t := kg.TypeID(1 + rng.Intn(g.NumTypes()-1)) // never Literal
		return g.TypeName(t)
	}
	attrName := func() string { return g.AttrName(kg.AttrID(rng.Intn(g.NumAttrs()))) }
	node := func() kg.NodeID { return kg.NodeID(rng.Intn(g.NumNodes())) }
	texts := []string{"nova blend", "quartz", "ember field", "cobalt", "drift"}
	staged := 0
	for op := 0; op < 1+rng.Intn(4) || staged == 0; op++ {
		if op > 40 {
			break
		}
		switch rng.Intn(6) {
		case 0:
			if _, err := d.AddEntity(typeName(), texts[rng.Intn(len(texts))]); err == nil {
				staged++
			}
		case 1:
			if d.AddAttr(node(), attrName(), node()) == nil {
				staged++
			}
		case 2:
			if _, err := d.AddTextAttr(node(), attrName(), texts[rng.Intn(len(texts))]); err == nil {
				staged++
			}
		case 3:
			if g.NumEdges() > 0 {
				e := g.Edge(kg.EdgeID(rng.Intn(g.NumEdges())))
				if _, err := d.RemoveEdge(e.Src, g.AttrName(e.Attr), e.Dst); err == nil {
					staged++
				}
			}
		case 4:
			if d.RemoveEntity(node()) == nil {
				staged++
			}
		case 5:
			if d.SetText(node(), texts[rng.Intn(len(texts))]) == nil {
				staged++
			}
		}
	}
	return d.Apply()
}

// checkUpdateEquivalence drives one dataset through `seqs` randomized
// update sequences. After each sequence the incrementally maintained index
// must yield bit-identical top-k results to a from-scratch index.Build of
// the final snapshot — for PATTERNENUM and LINEARENUM-TOPK, serial and
// parallel — and the graph-driven baseline must agree on patterns, scores
// and tree counts (serial and parallel), which also cross-checks the
// delta-produced CSR itself.
func checkUpdateEquivalence(t *testing.T, name string, base *kg.Graph, opts index.Options, seqs int) {
	t.Helper()
	baseIx, err := index.Build(base, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	queries := sampleQueries(base)
	if len(queries) < 3 {
		t.Fatalf("%s: dataset too small to derive queries (%v)", name, queries)
	}
	sopts := func(workers int) Options {
		return Options{K: 8, MaxTreesPerPattern: 4, Workers: workers}
	}
	for seq := 0; seq < seqs; seq++ {
		rng := rand.New(rand.NewSource(int64(seq) + 1))
		cur := baseIx
		steps := 1 + rng.Intn(2)
		for s := 0; s < steps; s++ {
			ch, err := randomGraphUpdate(rng, cur.Graph())
			if err != nil {
				t.Fatalf("%s seq %d step %d: %v", name, seq, s, err)
			}
			next, _, err := cur.ApplyDelta(ch, opts)
			if err != nil {
				t.Fatalf("%s seq %d step %d: %v", name, seq, s, err)
			}
			cur = next
		}
		g := cur.Graph()
		reb, err := index.Build(g, opts)
		if err != nil {
			t.Fatalf("%s seq %d rebuild: %v", name, seq, err)
		}
		bl, err := NewBaseline(g, BaselineOptions{D: opts.D, UniformPR: opts.UniformPR})
		if err != nil {
			t.Fatalf("%s seq %d baseline: %v", name, seq, err)
		}
		for _, q := range queries {
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s seq=%d q=%q workers=%d", name, seq, q, workers)
				o := sopts(workers)
				peInc, peReb := PETopK(cur, q, o), PETopK(reb, q, o)
				if err := equalRenders(renderFull(cur, peInc), renderFull(reb, peReb)); err != nil {
					t.Fatalf("%s: PATTERNENUM incremental != rebuild: %v", label, err)
				}
				leInc, leReb := LETopK(cur, q, o), LETopK(reb, q, o)
				if err := equalRenders(renderFull(cur, leInc), renderFull(reb, leReb)); err != nil {
					t.Fatalf("%s: LINEARENUM incremental != rebuild: %v", label, err)
				}
				// Cross-algorithm: the baseline works straight off the
				// delta-produced graph, so agreement here also vouches for
				// the new CSR. Compare the full (untruncated) pattern sets.
				oAll := Options{K: 100000, SkipTrees: true, Workers: workers}
				blRes := bl.Search(q, oAll)
				gotBL := renderBaseline(g, blRes)
				gotPE := renderPE(cur, PETopK(cur, q, oAll))
				if len(gotBL) != len(gotPE) {
					t.Fatalf("%s: baseline finds %d patterns, PATTERNENUM %d", label, len(gotBL), len(gotPE))
				}
				for k, v := range gotPE {
					ov, ok := gotBL[k]
					if !ok {
						t.Fatalf("%s: baseline missing pattern\n%s", label, k)
					}
					if math.Abs(v.Score-ov.Score) > 1e-9 || v.Count != ov.Count {
						t.Fatalf("%s: baseline disagrees on %q: %+v vs %+v", label, k, v, ov)
					}
				}
			}
		}
	}
}

func equalRenders(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d answers", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("answer %d differs:\n--- incremental ---\n%s\n--- rebuild ---\n%s", i, a[i], b[i])
		}
	}
	return nil
}

// TestIncrementalIndexEquivalenceSynthWiki checks the maintenance property
// on the Wikipedia-like generator with uniform PageRank.
func TestIncrementalIndexEquivalenceSynthWiki(t *testing.T) {
	seqs := updateSequences
	if testing.Short() {
		seqs = 25
	}
	g := dataset.SynthWiki(dataset.WikiConfig{
		Entities: 70, Types: 6, AttrVocab: 8, Vocab: 30,
		MaxAttrsPerType: 4, FillProb: 0.7, Seed: 11,
	})
	checkUpdateEquivalence(t, "wiki", g, index.Options{D: 3, UniformPR: true}, seqs)
}

// TestIncrementalIndexEquivalenceSynthIMDB checks the maintenance property
// on the IMDB-like generator with real PageRank scoring, exercising the
// PR-refresh pass of ApplyDelta end to end.
func TestIncrementalIndexEquivalenceSynthIMDB(t *testing.T) {
	seqs := updateSequences
	if testing.Short() {
		seqs = 25
	}
	g := dataset.SynthIMDB(dataset.IMDBConfig{Movies: 28, Seed: 11})
	checkUpdateEquivalence(t, "imdb", g, index.Options{D: 3}, seqs)
}
