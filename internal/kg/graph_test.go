package kg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// buildTiny builds a 4-node graph:
//
//	s(Software) --Developer--> c(Company) --Revenue--> r(Literal "US$ 77 billion")
//	s(Software) --Genre-->     m(Model "Relational database")
func buildTiny(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	b := NewBuilder()
	s := b.Entity("Software", "SQL Server")
	c := b.Entity("Company", "Microsoft")
	m := b.Entity("Model", "Relational database")
	b.Attr(s, "Developer", c)
	b.Attr(s, "Genre", m)
	r := b.TextAttr(c, "Revenue", "US$ 77 billion")
	g, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return g, s, c, m, r
}

func TestBuilderBasics(t *testing.T) {
	g, s, c, m, r := buildTiny(t)
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.TypeName(g.Type(s)) != "Software" {
		t.Errorf("type of s = %q", g.TypeName(g.Type(s)))
	}
	if g.Type(r) != LiteralType {
		t.Errorf("text attr node should have LiteralType, got %d", g.Type(r))
	}
	if g.Text(r) != "US$ 77 billion" {
		t.Errorf("literal text = %q", g.Text(r))
	}
	if g.Text(c) != "Microsoft" || g.Text(m) != "Relational database" {
		t.Errorf("entity text wrong")
	}
}

func TestOutEdgesCSR(t *testing.T) {
	g, s, c, m, r := buildTiny(t)
	out := g.OutEdgeSlice(s)
	if len(out) != 2 {
		t.Fatalf("s should have 2 out-edges, got %d", len(out))
	}
	// Insertion order preserved: Developer then Genre.
	if g.AttrName(out[0].Attr) != "Developer" || out[0].Dst != c {
		t.Errorf("first out-edge wrong: %+v", out[0])
	}
	if g.AttrName(out[1].Attr) != "Genre" || out[1].Dst != m {
		t.Errorf("second out-edge wrong: %+v", out[1])
	}
	if g.OutDegree(r) != 0 {
		t.Errorf("literal node should have no out-edges")
	}
	first, n := g.OutEdges(s)
	if n != 2 || g.Edge(first) != out[0] {
		t.Errorf("OutEdges range inconsistent with OutEdgeSlice")
	}
}

func TestInEdgesCSR(t *testing.T) {
	g, s, c, _, r := buildTiny(t)
	in := g.InEdgeIDs(c)
	if len(in) != 1 {
		t.Fatalf("c should have 1 in-edge, got %d", len(in))
	}
	e := g.Edge(in[0])
	if e.Src != s || e.Dst != c {
		t.Errorf("in-edge of c wrong: %+v", e)
	}
	if len(g.InEdgeIDs(s)) != 0 {
		t.Errorf("s should have no in-edges")
	}
	if len(g.InEdgeIDs(r)) != 1 {
		t.Errorf("r should have 1 in-edge")
	}
}

func TestNodesByType(t *testing.T) {
	g, s, _, _, r := buildTiny(t)
	sw := g.NodesOfType(g.LookupType("Software"))
	if len(sw) != 1 || sw[0] != s {
		t.Errorf("NodesOfType(Software) = %v", sw)
	}
	lits := g.NodesOfType(LiteralType)
	if len(lits) != 1 || lits[0] != r {
		t.Errorf("NodesOfType(Literal) = %v", lits)
	}
}

func TestLookupHelpers(t *testing.T) {
	g, s, _, _, _ := buildTiny(t)
	if g.LookupType("Software") < 0 || g.LookupType("Nope") != -1 {
		t.Errorf("LookupType wrong")
	}
	if g.LookupAttr("Developer") < 0 || g.LookupAttr("Nope") != -1 {
		t.Errorf("LookupAttr wrong")
	}
	if got := g.FindEntity("SQL Server", "Software"); got != s {
		t.Errorf("FindEntity = %d, want %d", got, s)
	}
	if got := g.FindEntity("SQL Server", "Company"); got != -1 {
		t.Errorf("FindEntity with wrong type should be -1, got %d", got)
	}
	if got := g.FindEntity("X", "NoType"); got != -1 {
		t.Errorf("FindEntity with unknown type should be -1")
	}
}

func TestFreezeRejectsBadEdges(t *testing.T) {
	b := NewBuilder()
	v := b.Entity("T", "x")
	b.AttrT(v, b.AttrID("a"), NodeID(99))
	if _, err := b.Freeze(); err == nil {
		t.Errorf("Freeze should reject out-of-range edge")
	}
}

func TestMultiValuedAttributes(t *testing.T) {
	b := NewBuilder()
	ms := b.Entity("Company", "Microsoft")
	w := b.Entity("Software", "Windows")
	bing := b.Entity("Software", "Bing")
	b.Attr(ms, "Products", w)
	b.Attr(ms, "Products", bing)
	g := b.MustFreeze()
	out := g.OutEdgeSlice(ms)
	if len(out) != 2 || out[0].Attr != out[1].Attr {
		t.Fatalf("multi-valued attribute should yield two edges of same attr: %+v", out)
	}
	if out[0].Dst != w || out[1].Dst != bing {
		t.Errorf("edge order should follow insertion order")
	}
}

func TestGobRoundTrip(t *testing.T) {
	g, _, _, _, _ := buildTiny(t)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch")
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Text(v) != g2.Text(v) || g.Type(v) != g2.Type(v) {
			t.Errorf("node %d mismatch after roundtrip", v)
		}
		if !reflect.DeepEqual(g.OutEdgeSlice(v), g2.OutEdgeSlice(v)) {
			t.Errorf("out-edges of %d mismatch", v)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g, _, _, _, _ := buildTiny(t)
	path := t.TempDir() + "/g.gob"
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if g2.String() != g.String() {
		t.Errorf("stats mismatch: %s vs %s", g2, g)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Errorf("LoadFile of missing file should error")
	}
}

func TestInduceSubgraph(t *testing.T) {
	g, s, c, m, r := buildTiny(t)
	// Keep s and c: only the Developer edge survives.
	sub, remap := Induce(g, []NodeID{c, s, s}) // dup + unordered on purpose
	if sub.NumNodes() != 2 {
		t.Fatalf("induced nodes = %d, want 2", sub.NumNodes())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("induced edges = %d, want 1", sub.NumEdges())
	}
	ns, ok1 := remap[s]
	nc, ok2 := remap[c]
	if !ok1 || !ok2 {
		t.Fatalf("remap missing entries: %v", remap)
	}
	e := sub.OutEdgeSlice(ns)
	if len(e) != 1 || e[0].Dst != nc || sub.AttrName(e[0].Attr) != "Developer" {
		t.Errorf("induced edge wrong: %+v", e)
	}
	if _, ok := remap[m]; ok {
		t.Errorf("m should not be in remap")
	}
	_ = r
	// Types and attrs tables are shared.
	if sub.NumTypes() != g.NumTypes() || sub.NumAttrs() != g.NumAttrs() {
		t.Errorf("type/attr tables should carry over")
	}
}

func TestInduceEmpty(t *testing.T) {
	g, _, _, _, _ := buildTiny(t)
	sub, remap := Induce(g, nil)
	if sub.NumNodes() != 0 || sub.NumEdges() != 0 || len(remap) != 0 {
		t.Errorf("empty induce should be empty graph")
	}
}

// TestCSRInvariant checks on random graphs that every edge appears exactly
// once in its source's out-list and once in its destination's in-list.
func TestCSRInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			b.Entity("T", "node")
		}
		en := rng.Intn(120)
		type key struct{ s, d NodeID }
		want := map[key]int{}
		for i := 0; i < en; i++ {
			s := NodeID(rng.Intn(n))
			d := NodeID(rng.Intn(n))
			b.Attr(s, "a", d)
			want[key{s, d}]++
		}
		g := b.MustFreeze()
		gotOut := map[key]int{}
		for v := NodeID(0); int(v) < n; v++ {
			for _, e := range g.OutEdgeSlice(v) {
				if e.Src != v {
					return false
				}
				gotOut[key{e.Src, e.Dst}]++
			}
		}
		gotIn := map[key]int{}
		for v := NodeID(0); int(v) < n; v++ {
			for _, id := range g.InEdgeIDs(v) {
				e := g.Edge(id)
				if e.Dst != v {
					return false
				}
				gotIn[key{e.Src, e.Dst}]++
			}
		}
		return reflect.DeepEqual(want, gotOut) && reflect.DeepEqual(want, gotIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
