package kg

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// fig1Builder assembles the paper's Figure 1 mini KB.
func fig1Builder() (*Builder, map[string]NodeID) {
	b := NewBuilder()
	ids := map[string]NodeID{}
	ids["sql"] = b.Entity("Software", "SQL Server")
	ids["rel"] = b.Entity("Model", "Relational database")
	ids["ms"] = b.Entity("Company", "Microsoft")
	ids["gates"] = b.Entity("Person", "Bill Gates")
	b.Attr(ids["sql"], "Genre", ids["rel"])
	b.Attr(ids["sql"], "Developer", ids["ms"])
	ids["rev"] = b.TextAttr(ids["ms"], "Revenue", "US$ 77 billion")
	b.Attr(ids["ms"], "Founder", ids["gates"])
	return b, ids
}

func TestDeltaAddAndRemove(t *testing.T) {
	b, ids := fig1Builder()
	g := b.MustFreeze()

	d := NewDelta(g)
	oracle, err := d.AddEntity("Company", "Oracle Corp")
	if err != nil {
		t.Fatal(err)
	}
	odb, err := d.AddEntity("Software", "Oracle DB")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddAttr(odb, "Developer", oracle); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddTextAttr(oracle, "Revenue", "US$ 37 billion"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveEdge(ids["sql"], "Genre", ids["rel"]); err != nil {
		t.Fatal(err)
	}
	if err := d.SetText(ids["gates"], "William Gates III"); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	ng := ch.New

	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("base graph mutated: %v", g)
	}
	if ng.NumNodes() != 8 { // 5 + oracle + odb + revenue literal
		t.Fatalf("new graph has %d nodes, want 8", ng.NumNodes())
	}
	if ng.NumEdges() != 5 { // 4 - Genre + Developer + Revenue
		t.Fatalf("new graph has %d edges, want 5", ng.NumEdges())
	}
	if ng.Text(ids["gates"]) != "William Gates III" {
		t.Fatalf("retext lost: %q", ng.Text(ids["gates"]))
	}
	if got := ng.Text(oracle); got != "Oracle Corp" {
		t.Fatalf("new node text %q", got)
	}
	// Surviving nodes keep IDs and types.
	for name, id := range ids {
		if ng.Type(id) != g.Type(id) {
			t.Fatalf("%s changed type", name)
		}
	}
	// EdgeMap: surviving old edges resolve to identical triples.
	if ch.EdgeMap == nil {
		t.Fatal("expected a non-identity edge map")
	}
	for old, nu := range ch.EdgeMap {
		oe := g.Edge(EdgeID(old))
		if oe.Attr == g.LookupAttr("Genre") {
			if nu != -1 {
				t.Fatalf("removed edge mapped to %d", nu)
			}
			continue
		}
		if nu < 0 {
			t.Fatalf("surviving edge %d unmapped", old)
		}
		ne := ng.Edge(nu)
		if oe.Src != ne.Src || oe.Dst != ne.Dst || g.AttrName(oe.Attr) != ng.AttrName(ne.Attr) {
			t.Fatalf("edge %d remapped to a different triple: %+v vs %+v", old, oe, ne)
		}
	}
}

func TestDeltaRemoveEntityCascades(t *testing.T) {
	b, ids := fig1Builder()
	g := b.MustFreeze()

	d := NewDelta(g)
	if err := d.RemoveEntity(ids["ms"]); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	ng := ch.New
	if !ng.Removed(ids["ms"]) {
		t.Fatal("node not tombstoned")
	}
	if ng.Type(ids["ms"]) != LiteralType || ng.Text(ids["ms"]) != "" {
		t.Fatal("tombstone is not inert")
	}
	// All three incident edges (Developer in, Revenue out, Founder out) gone.
	if ng.NumEdges() != g.NumEdges()-3 {
		t.Fatalf("cascade removed %d edges, want 3", g.NumEdges()-ng.NumEdges())
	}
	if _, n := ng.OutEdges(ids["ms"]); n != 0 {
		t.Fatal("tombstone still has out-edges")
	}
	if len(ng.InEdgeIDs(ids["ms"])) != 0 {
		t.Fatal("tombstone still has in-edges")
	}
	// Excluded from the type partition.
	for _, v := range ng.NodesOfType(g.Type(ids["ms"])) {
		if v == ids["ms"] {
			t.Fatal("tombstone listed in NodesOfType")
		}
	}
	if ng.NumRemoved() != 1 {
		t.Fatalf("NumRemoved = %d", ng.NumRemoved())
	}

	// A second delta must reject references to the tombstone.
	d2 := NewDelta(ng)
	if err := d2.AddAttr(ids["sql"], "Developer", ids["ms"]); err == nil {
		t.Fatal("edge to removed node accepted")
	}
	if err := d2.RemoveEntity(ids["ms"]); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestDeltaValidation(t *testing.T) {
	b, ids := fig1Builder()
	g := b.MustFreeze()
	d := NewDelta(g)

	if _, err := d.AddEntity("Literal", "x"); err == nil {
		t.Fatal("reserved Literal type accepted")
	}
	if _, err := d.AddEntity("", "x"); err == nil {
		t.Fatal("empty type accepted")
	}
	if err := d.AddAttr(ids["rev"], "Publisher", ids["ms"]); err == nil {
		t.Fatal("out-edge from a literal accepted")
	}
	if err := d.AddAttr(ids["sql"], "", ids["ms"]); err == nil {
		t.Fatal("empty attribute name accepted")
	}
	if err := d.AddAttr(99, "Developer", ids["ms"]); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := d.RemoveEdge(ids["sql"], "Publisher", ids["ms"]); err == nil {
		t.Fatal("removing via unknown attribute accepted")
	}
	if _, err := d.RemoveEdge(ids["sql"], "Developer", ids["gates"]); err == nil {
		t.Fatal("removing a nonexistent triple accepted")
	}
	if err := d.SetText(-1, "x"); err == nil {
		t.Fatal("retext of negative node accepted")
	}
	if _, err := NewDelta(g).Apply(); err == nil {
		t.Fatal("empty delta applied")
	}

	// Within-delta consistency: an entity added then removed in the same
	// batch, and an edge added then removed.
	d3 := NewDelta(g)
	tmp, _ := d3.AddEntity("Company", "Transient Inc")
	if err := d3.AddAttr(ids["sql"], "Developer", tmp); err != nil {
		t.Fatal(err)
	}
	if err := d3.RemoveEntity(tmp); err != nil {
		t.Fatal(err)
	}
	ch, err := d3.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if ch.New.NumEdges() != g.NumEdges() {
		t.Fatal("edge to transient node survived")
	}
	if !ch.New.Removed(tmp) {
		t.Fatal("transient node not tombstoned")
	}
}

// TestDeltaEquivalentToRebuild: applying a delta must produce a graph
// byte-equivalent (modulo the removed bitmap) to building the same final
// state from scratch through a Builder.
func TestDeltaEquivalentToRebuild(t *testing.T) {
	b, ids := fig1Builder()
	g := b.MustFreeze()

	d := NewDelta(g)
	oracle, _ := d.AddEntity("Company", "Oracle Corp")
	if err := d.AddAttr(ids["sql"], "Competitor", oracle); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveEdge(ids["sql"], "Genre", ids["rel"]); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}

	// From-scratch: same insertion order (original order minus removed,
	// added at the end).
	b2 := NewBuilder()
	b2.Entity("Software", "SQL Server")
	b2.Entity("Model", "Relational database")
	b2.Entity("Company", "Microsoft")
	b2.Entity("Person", "Bill Gates")
	// Keep type-registration order identical to the delta path: Literal,
	// Software, Model, Company, Person.
	b2.EntityT(LiteralType, "US$ 77 billion")
	b2.Attr(ids["sql"], "Developer", ids["ms"])
	b2.Attr(ids["ms"], "Revenue", ids["rev"])
	b2.Attr(ids["ms"], "Founder", ids["gates"])
	b2.Entity("Company", "Oracle Corp")
	b2.Attr(ids["sql"], "Competitor", oracle)
	want := b2.MustFreeze()

	got := ch.New
	// Attribute IDs may differ ("Genre" is still interned in the delta
	// graph), so compare triples by name rather than raw structs.
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape differs: %v vs %v", got, want)
	}
	for v := 0; v < got.NumNodes(); v++ {
		if got.Text(NodeID(v)) != want.Text(NodeID(v)) ||
			got.TypeName(got.Type(NodeID(v))) != want.TypeName(want.Type(NodeID(v))) {
			t.Fatalf("node %d differs", v)
		}
	}
	for e := 0; e < got.NumEdges(); e++ {
		ge, we := got.Edge(EdgeID(e)), want.Edge(EdgeID(e))
		if ge.Src != we.Src || ge.Dst != we.Dst ||
			got.AttrName(ge.Attr) != want.AttrName(we.Attr) {
			t.Fatalf("edge %d differs: %+v vs %+v", e, ge, we)
		}
	}
}

// chainGraph builds r0 -> r1 -> ... -> r(n-1) so backward reachability
// depths are easy to reason about.
func chainGraph(n int) (*Graph, []NodeID) {
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = b.Entity("T", "node")
	}
	for i := 0; i+1 < n; i++ {
		b.Attr(ids[i], "next", ids[i+1])
	}
	return b.MustFreeze(), ids
}

func TestAffectedRootsDepth(t *testing.T) {
	g, ids := chainGraph(6)
	d := NewDelta(g)
	if err := d.SetText(ids[4], "changed"); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	for depth, want := range map[int][]NodeID{
		0: {ids[4]},
		1: {ids[3], ids[4]},
		2: {ids[2], ids[3], ids[4]},
		5: {ids[0], ids[1], ids[2], ids[3], ids[4]},
	} {
		got := AffectedRoots(ch, depth)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("depth %d: got %v want %v", depth, got, want)
		}
	}
}

func TestAffectedRootsSeesRemovedPaths(t *testing.T) {
	// Removing the edge 1->2 must dirty roots 0 and 1 (they could reach
	// the edge in the OLD graph even though it is gone from the new one).
	g, ids := chainGraph(4)
	d := NewDelta(g)
	if _, err := d.RemoveEdge(ids[1], "next", ids[2]); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	got := AffectedRoots(ch, 2)
	want := []NodeID{ids[0], ids[1], ids[2]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

// TestDeltaCSRInvariantsRandom applies random deltas to random graphs and
// checks the CSR structures stay internally consistent.
func TestDeltaCSRInvariantsRandom(t *testing.T) {
	types := []string{"A", "B", "C"}
	attrs := []string{"x", "y", "z"}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := 4 + rng.Intn(12)
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = b.Entity(types[rng.Intn(len(types))], "t")
		}
		for i := 0; i < 2*n; i++ {
			b.Attr(ids[rng.Intn(n)], attrs[rng.Intn(len(attrs))], ids[rng.Intn(n)])
		}
		g := b.MustFreeze()

		for step := 0; step < 3; step++ {
			d := NewDelta(g)
			did := 0
			for op := 0; op < 1+rng.Intn(4); op++ {
				switch rng.Intn(5) {
				case 0:
					if _, err := d.AddEntity(types[rng.Intn(len(types))], "fresh"); err == nil {
						did++
					}
				case 1:
					if d.AddAttr(NodeID(rng.Intn(g.NumNodes())), attrs[rng.Intn(len(attrs))], NodeID(rng.Intn(g.NumNodes()))) == nil {
						did++
					}
				case 2:
					if g.NumEdges() > 0 {
						e := g.Edge(EdgeID(rng.Intn(g.NumEdges())))
						if _, err := d.RemoveEdge(e.Src, g.AttrName(e.Attr), e.Dst); err == nil {
							did++
						}
					}
				case 3:
					if d.RemoveEntity(NodeID(rng.Intn(g.NumNodes()))) == nil {
						did++
					}
				case 4:
					if d.SetText(NodeID(rng.Intn(g.NumNodes())), "re") == nil {
						did++
					}
				}
			}
			if did == 0 {
				continue
			}
			ch, err := d.Apply()
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			verifyCSR(t, ch.New)
			g = ch.New
		}
	}
}

// verifyCSR checks forward/backward adjacency agree and stay sorted.
func verifyCSR(t *testing.T, g *Graph) {
	t.Helper()
	seen := 0
	for v := 0; v < g.NumNodes(); v++ {
		first, n := g.OutEdges(NodeID(v))
		seen += n
		for i := 0; i < n; i++ {
			e := g.Edge(first + EdgeID(i))
			if e.Src != NodeID(v) {
				t.Fatalf("out-edge of %d has Src %d", v, e.Src)
			}
		}
		if g.Removed(NodeID(v)) && n != 0 {
			t.Fatalf("tombstone %d has out-edges", v)
		}
		for _, id := range g.InEdgeIDs(NodeID(v)) {
			if g.Edge(id).Dst != NodeID(v) {
				t.Fatalf("in-edge of %d has Dst %d", v, g.Edge(id).Dst)
			}
		}
	}
	if seen != g.NumEdges() {
		t.Fatalf("outStart covers %d edges, graph has %d", seen, g.NumEdges())
	}
	total := 0
	for ty := 0; ty < g.NumTypes(); ty++ {
		l := g.NodesOfType(TypeID(ty))
		total += len(l)
		if !sort.SliceIsSorted(l, func(i, j int) bool { return l[i] < l[j] }) {
			t.Fatalf("NodesOfType(%d) not sorted", ty)
		}
		for _, v := range l {
			if g.Removed(v) {
				t.Fatalf("tombstone %d in NodesOfType", v)
			}
			if g.Type(v) != TypeID(ty) {
				t.Fatalf("node %d in wrong type bucket", v)
			}
		}
	}
	if total != g.NumNodes()-g.NumRemoved() {
		t.Fatalf("type partition covers %d nodes, want %d", total, g.NumNodes()-g.NumRemoved())
	}
}

// TestTombstonesSurviveSaveLoad: the wire format must carry the removed
// bitmap — otherwise persisting a mutated KB resurrects removed entities
// (they would regain their type words and accept new edges after a
// save/load round-trip).
func TestTombstonesSurviveSaveLoad(t *testing.T) {
	b, ids := fig1Builder()
	g := b.MustFreeze()
	d := NewDelta(g)
	if err := d.RemoveEntity(ids["ms"]); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.kb")
	if err := ch.New.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRemoved() != 1 || !loaded.Removed(ids["ms"]) {
		t.Fatalf("tombstone lost in round-trip: NumRemoved=%d", loaded.NumRemoved())
	}
	d2 := NewDelta(loaded)
	if err := d2.SetText(ids["ms"], "zombie"); err == nil {
		t.Fatal("removed entity accepted a mutation after save/load")
	}
	if err := d2.RemoveEntity(ids["ms"]); err == nil {
		t.Fatal("double remove accepted after save/load")
	}
	verifyCSR(t, loaded)
}
