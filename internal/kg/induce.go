package kg

import "sort"

// Induce returns the subgraph induced by keep: the selected nodes with
// every edge whose endpoints are both kept. Node IDs are re-numbered densely
// in ascending order of the original IDs; the mapping old→new is returned.
//
// Experiment Exp-III (Figure 10) evaluates algorithms on induced subgraphs
// of 10%–100% of the entities.
func Induce(g *Graph, keep []NodeID) (*Graph, map[NodeID]NodeID) {
	remap := make(map[NodeID]NodeID, len(keep))
	b := &Builder{
		typeIDs:   make(map[string]TypeID, len(g.typeNames)),
		typeNames: g.typeNames,
		attrIDs:   make(map[string]AttrID, len(g.attrNames)),
		attrNames: g.attrNames,
	}
	for i, n := range g.typeNames {
		b.typeIDs[n] = TypeID(i)
	}
	for i, n := range g.attrNames {
		b.attrIDs[n] = AttrID(i)
	}

	// Deduplicate and order selected nodes by original ID for determinism.
	seen := make(map[NodeID]bool, len(keep))
	var ordered []NodeID
	for _, v := range keep {
		if !seen[v] {
			seen[v] = true
			ordered = append(ordered, v)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	for _, v := range ordered {
		remap[v] = b.EntityT(g.Type(v), g.Text(v))
	}
	for _, v := range ordered {
		for _, e := range g.OutEdgeSlice(v) {
			if nd, ok := remap[e.Dst]; ok {
				b.AttrT(remap[v], e.Attr, nd)
			}
		}
	}
	sub := b.MustFreeze()
	return sub, remap
}
