package kg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph (or a neighborhood of it) in Graphviz DOT
// format for visual inspection. maxNodes bounds output size: nodes beyond
// the bound are skipped together with their edges (0 = all). Node labels
// show "text : type"; edge labels show the attribute type.
func (g *Graph) WriteDOT(w io.Writer, maxNodes int) error {
	if maxNodes <= 0 || maxNodes > g.NumNodes() {
		maxNodes = g.NumNodes()
	}
	var sb strings.Builder
	sb.WriteString("digraph kb {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for v := 0; v < maxNodes; v++ {
		id := NodeID(v)
		label := g.Text(id)
		if g.Type(id) != LiteralType {
			label += "\\n: " + g.TypeName(g.Type(id))
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", v, dotEscape(label))
	}
	for v := 0; v < maxNodes; v++ {
		for _, e := range g.OutEdgeSlice(NodeID(v)) {
			if int(e.Dst) >= maxNodes {
				continue
			}
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%s\", fontsize=9];\n",
				e.Src, e.Dst, dotEscape(g.AttrName(e.Attr)))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
